module gluon

go 1.22
