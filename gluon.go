// Package gluon is the public API of this repository: a Go implementation
// of Gluon, the communication-optimizing substrate for distributed
// heterogeneous graph analytics (Dathathri et al., PLDI 2018), together
// with the three distributed systems built on it — D-Ligra, D-Galois, and
// D-IrGL — and the Gemini-style baseline the paper compares against.
//
// # Quick start
//
//	cfg := gluon.GraphConfig{Kind: "rmat", Scale: 16, EdgeFactor: 16, Seed: 1}
//	numNodes, edges, _ := gluon.Generate(cfg)
//	res, _ := gluon.Run(numNodes, edges, gluon.RunConfig{
//		Hosts:  4,
//		Policy: gluon.CVC,
//		Opt:    gluon.Opt(),
//	}, gluon.NewBFS(gluon.DGalois, 0, 0))
//	fmt.Println(res.Time, res.TotalCommBytes)
//
// The deeper layers are available for advanced use: the substrate itself
// (internal/gluon), the partitioner (internal/partition), the engines
// (internal/engine/...), and the transports (internal/comm). This facade
// re-exports the types needed to run the distributed systems end to end.
package gluon

import (
	"fmt"

	"gluon/internal/algorithms/bc"
	"gluon/internal/algorithms/bfs"
	"gluon/internal/algorithms/cc"
	"gluon/internal/algorithms/kcore"
	"gluon/internal/algorithms/pr"
	"gluon/internal/algorithms/sssp"
	"gluon/internal/autotune"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// Edge is a directed edge in global-ID space.
type Edge = graph.Edge

// CSR is the compressed-sparse-row graph representation.
type CSR = graph.CSR

// GraphConfig selects a synthetic input graph (see internal/generate for
// the available kinds: rmat, kron, webcrawl, twitterlike, random, grid,
// chain, star).
type GraphConfig = generate.Config

// Options toggles Gluon's communication optimizations.
type Options = gluon.Options

// Opt returns the fully-optimized configuration (structural invariants +
// temporal invariance, the paper's OSTI).
func Opt() Options { return gluon.Opt() }

// Unopt returns the baseline configuration with both optimizations off.
func Unopt() Options { return gluon.Unopt() }

// PolicyKind names a partitioning strategy.
type PolicyKind = partition.Kind

// The four partitioning strategies of the paper (§3.1).
const (
	OEC = partition.OEC // outgoing edge-cut
	IEC = partition.IEC // incoming edge-cut
	CVC = partition.CVC // Cartesian (2-D) vertex-cut
	HVC = partition.HVC // hybrid vertex-cut (unconstrained)
)

// RunConfig configures a distributed run.
type RunConfig = dsys.RunConfig

// Result reports a distributed run.
type Result = dsys.Result

// ProgramFactory builds one host's program instance.
type ProgramFactory = dsys.ProgramFactory

// System selects which shared-memory engine each host runs.
type System string

// The three Gluon-based systems.
const (
	// DLigra runs the frontier-based, direction-optimizing Ligra engine.
	DLigra System = "d-ligra"
	// DGalois runs the asynchronous worklist Galois engine.
	DGalois System = "d-galois"
	// DIrGL runs the bulk-synchronous device (simulated GPU) engine.
	DIrGL System = "d-irgl"
)

// AllSystems lists the Gluon-based systems.
func AllSystems() []System { return []System{DLigra, DGalois, DIrGL} }

// Generate produces a synthetic graph's edge list and node count.
func Generate(cfg GraphConfig) (uint64, []Edge, error) {
	edges, err := generate.Edges(cfg)
	if err != nil {
		return 0, nil, err
	}
	return cfg.NumNodes(), edges, nil
}

// Run executes a program factory over the in-process cluster.
func Run(numNodes uint64, edges []Edge, cfg RunConfig, factory ProgramFactory) (*Result, error) {
	return dsys.Run(numNodes, edges, cfg, factory)
}

// NewBFS returns the breadth-first-search program for the given system.
// workers is the per-host worker count (0 = GOMAXPROCS).
func NewBFS(sys System, source uint64, workers int) ProgramFactory {
	switch sys {
	case DLigra:
		return bfs.NewLigra(source, workers)
	case DGalois:
		return bfs.NewGalois(source, workers)
	case DIrGL:
		return bfs.NewIrGL(source, workers)
	default:
		return errFactory(fmt.Errorf("gluon: unknown system %q", sys))
	}
}

// NewSSSP returns the single-source shortest-paths program (requires a
// weighted graph).
func NewSSSP(sys System, source uint64, workers int) ProgramFactory {
	switch sys {
	case DLigra:
		return sssp.NewLigra(source, workers)
	case DGalois:
		return sssp.NewGalois(source, workers)
	case DIrGL:
		return sssp.NewIrGL(source, workers)
	default:
		return errFactory(fmt.Errorf("gluon: unknown system %q", sys))
	}
}

// NewCC returns the connected-components program (expects a symmetrized
// graph; see Symmetrize).
func NewCC(sys System, workers int) ProgramFactory {
	switch sys {
	case DLigra:
		return cc.NewLigra(workers)
	case DGalois:
		return cc.NewGalois(workers)
	case DIrGL:
		return cc.NewIrGL(workers)
	default:
		return errFactory(fmt.Errorf("gluon: unknown system %q", sys))
	}
}

// NewPageRankPush returns the push-style (residual) PageRank program on
// the Galois engine — the paper's §2.3 push-pagerank, whose mirror fields
// reset to 0 after each reduce.
func NewPageRankPush(tol float64, workers int) ProgramFactory {
	return pr.NewGaloisPush(tol, workers)
}

// NewPageRank returns the pull-style PageRank program. tol <= 0 uses the
// default tolerance; pair with RunConfig.MaxRounds (the paper caps at 100).
func NewPageRank(sys System, tol float64, workers int) ProgramFactory {
	switch sys {
	case DLigra:
		return pr.NewLigra(tol, workers)
	case DGalois:
		return pr.NewGalois(tol, workers)
	case DIrGL:
		return pr.NewIrGL(tol, workers)
	default:
		return errFactory(fmt.Errorf("gluon: unknown system %q", sys))
	}
}

// NewSSSPDelta returns the delta-stepping sssp program (Galois engine):
// within each round, work drains in ascending distance buckets of width
// delta (0 = a default suited to weights in [1, 100]), avoiding most of
// the wasted relaxations of FIFO scheduling.
func NewSSSPDelta(source uint64, delta uint32, workers int) ProgramFactory {
	return sssp.NewGaloisDelta(source, delta, workers)
}

// NewKCore returns the k-core decomposition program (expects a symmetrized
// graph). A node's final value is 1 if it survives in the k-core.
func NewKCore(sys System, k uint64, workers int) ProgramFactory {
	switch sys {
	case DLigra:
		return kcore.NewLigra(k, workers)
	case DGalois:
		return kcore.NewGalois(k, workers)
	case DIrGL:
		return kcore.NewIrGL(k, workers)
	default:
		return errFactory(fmt.Errorf("gluon: unknown system %q", sys))
	}
}

// NewBC returns the single-source betweenness-centrality program (Brandes
// dependencies). A node's final value is its dependency δ from the source.
func NewBC(source uint64, workers int) ProgramFactory {
	return bc.New(source, workers)
}

// Symmetrize adds a reverse edge for every edge, the preprocessing step
// connected-components workloads use.
func Symmetrize(edges []Edge) []Edge { return ref.Symmetrize(edges) }

// AutotunePolicy probes the program under every partitioning policy for a
// few rounds and returns the best one by communication volume (§3.3's
// auto-tuning). Use the returned policy in a subsequent full Run.
func AutotunePolicy(numNodes uint64, edges []Edge, hosts int, factory ProgramFactory) (PolicyKind, error) {
	kind, _, err := autotune.Pick(numNodes, edges, autotune.Config{
		Hosts:     hosts,
		Opt:       Opt(),
		Criterion: autotune.MinVolume,
	}, factory)
	return kind, err
}

// BuildCSR assembles an edge list into CSR form (for single-host use and
// reference computations).
func BuildCSR(numNodes uint64, edges []Edge, weighted bool) (*CSR, error) {
	return graph.FromEdges(numNodes, edges, weighted)
}

func errFactory(err error) ProgramFactory {
	return func(*partition.Partition, *gluon.Gluon) (dsys.Program, error) { return nil, err }
}
