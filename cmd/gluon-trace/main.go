// Command gluon-trace analyzes a substrate trace produced by gluon-run or
// gluon-bench (-trace flag): it reads either export format (Chrome
// trace_event JSON or JSONL) and prints the paper-style tables — per-round
// communication volume and time, per-peer skew, phase time breakdown, the
// encoding-mode histogram, and any fault timeline.
//
// With -critical it prints the critical-path attribution instead: per round,
// which host arrived at the termination barrier last and which of its phases
// (compute / encode / wire / recv-wait / fold / apply / straggler-wait)
// dominated, plus the optimization-effectiveness ledger — bytes shipped
// against a modeled naive dense broadcast, split by compression, update-mask
// sparsity, and invariant skips, with the sync time each saving is worth at
// the observed wire rate.
//
// With -serve it becomes the standalone trace collector for multi-process
// clusters: every process points its trace shipper at the listen address,
// and gluon-trace merges the shipped events onto one clock-aligned timeline,
// writes it to -o, and prints the same tables. gluon-top can attach to the
// same address while the run is live.
//
// Usage:
//
//	gluon-trace [-json] [-critical] [-top n] trace-file
//	gluon-trace -serve :9123 -sessions 4 -o cluster.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gluon/internal/trace"
)

// logger is the CLI's structured log sink.
var logger = trace.NewLogger("gluon-trace")

func main() {
	asJSON := flag.Bool("json", false, "emit the summary as JSON instead of tables")
	label := flag.String("label", "", "override the label shown in the header")
	critical := flag.Bool("critical", false, "print critical-path attribution (gating host/phase per round + optimization ledger) instead of the standard tables")
	top := flag.Int("top", 20, "cap the per-peer skew table at the n heaviest pairs (0 = all)")
	serve := flag.String("serve", "", "run as a trace collector listening on this address instead of reading a file")
	sessions := flag.Int("sessions", 0, "with -serve: exit after this many shipper sessions complete (0 = run until interrupted)")
	out := flag.String("o", "", "with -serve: write the merged cluster trace to this file (.jsonl = JSONL, else Chrome)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gluon-trace [-json] [-critical] [-top n] trace-file\n")
		fmt.Fprintf(os.Stderr, "       gluon-trace -serve addr [-sessions n] [-o merged.json]\n\n")
		fmt.Fprintf(os.Stderr, "Reads a Chrome trace_event or JSONL export written by gluon-run/gluon-bench -trace\nand prints per-round, per-peer, and per-phase tables (-critical for barrier-gating\nattribution and the optimization ledger), or (with -serve) collects and merges\ntraces shipped live from a multi-process cluster.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	opts := reportOpts{asJSON: *asJSON, critical: *critical, peerCap: *top}

	if *serve != "" {
		if err := runCollector(*serve, *sessions, *out, *label, opts); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	events, meta, err := trace.ReadFileMeta(path)
	if err != nil {
		fatal(err)
	}
	// An empty trace is an error, not an empty table: it means the producer
	// never recorded anything (tracing off, crash before export, truncation).
	if len(events) == 0 {
		fatal(fmt.Errorf("%s: trace contains no events", path))
	}
	if *label != "" {
		meta.Label = *label
	}
	if err := report(meta, events, opts); err != nil {
		fatal(err)
	}
	trace.LogDropped(logger, meta.Dropped)
}

// runCollector is the -serve mode: accept shipper sessions until the target
// count completes (or an interrupt arrives), then merge, export, summarize.
func runCollector(addr string, wantSessions int, out, label string, opts reportOpts) error {
	col, err := trace.ListenAndCollect(addr)
	if err != nil {
		return err
	}
	finish := "Ctrl-C to finish"
	if wantSessions > 0 {
		finish = fmt.Sprintf("exiting after %d sessions", wantSessions)
	}
	logger.Info("collecting (point trace shippers here; gluon-top attaches live)", "addr", col.Addr(), "until", finish)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
wait:
	for {
		select {
		case <-sig:
			logger.Info("interrupted; merging what arrived")
			break wait
		case <-time.After(100 * time.Millisecond):
			if _, done := col.Sessions(); wantSessions > 0 && done >= wantSessions {
				break wait
			}
		}
	}
	col.Close()
	sessionErrs := col.Errs()
	for _, e := range sessionErrs {
		logger.Error("shipper session ended in error", "err", e)
	}
	broken := 0
	for _, si := range col.SessionInfos() {
		if si.State == "error" {
			broken++
			logger.Error("shipper session disconnected without bye",
				"session", si.ID, "addr", si.Addr, "hosts", si.Hosts, "reason", si.Error)
		}
	}
	events, meta := col.Merged()
	if len(events) == 0 {
		return fmt.Errorf("no trace events collected (were shippers pointed at %s?)", col.Addr())
	}
	if label != "" {
		meta.Label = label
	}
	if out != "" {
		if err := trace.WriteFileMeta(out, meta, events); err != nil {
			return err
		}
		logger.Info("wrote merged trace", "events", len(events), "path", out)
	}
	if err := report(meta, events, opts); err != nil {
		return err
	}
	// A collector that lost sessions must not exit 0: the merged timeline is
	// incomplete, and scripts gating on it would silently trust partial data.
	if len(sessionErrs) > 0 || broken > 0 {
		n := len(sessionErrs)
		if broken > n {
			n = broken
		}
		return fmt.Errorf("%d shipper session(s) ended in error (listed above); merged trace is incomplete", n)
	}
	return nil
}

type reportOpts struct {
	asJSON   bool
	critical bool
	peerCap  int
}

func report(meta trace.Meta, events []trace.Event, opts reportOpts) error {
	if opts.critical {
		cp := trace.ComputeCriticalPath(meta, events)
		if opts.asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(cp)
		}
		return cp.WriteTables(os.Stdout)
	}
	s := trace.SummarizeMeta(meta, events)
	s.PeerCap = opts.peerCap
	if opts.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	return s.WriteTables(os.Stdout)
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
