// Command gluon-trace analyzes a substrate trace produced by gluon-run or
// gluon-bench (-trace flag): it reads either export format (Chrome
// trace_event JSON or JSONL) and prints the paper-style tables — per-round
// communication volume and time, per-peer skew, phase time breakdown, the
// encoding-mode histogram, and any fault timeline.
//
// Usage:
//
//	gluon-trace [-json] trace-file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gluon/internal/trace"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the summary as JSON instead of tables")
	label := flag.String("label", "", "override the label shown in the header")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gluon-trace [-json] trace-file\n\n")
		fmt.Fprintf(os.Stderr, "Reads a Chrome trace_event or JSONL export written by gluon-run/gluon-bench -trace\nand prints per-round, per-peer, and per-phase tables.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	events, dropped, err := trace.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gluon-trace: %v\n", err)
		os.Exit(1)
	}
	s := trace.Summarize(*label, events, dropped)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintf(os.Stderr, "gluon-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := s.WriteTables(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gluon-trace: %v\n", err)
		os.Exit(1)
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "gluon-trace: warning: %d events were dropped to ring overwrites; totals undercount\n", dropped)
	}
}
