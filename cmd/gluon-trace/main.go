// Command gluon-trace analyzes a substrate trace produced by gluon-run or
// gluon-bench (-trace flag): it reads either export format (Chrome
// trace_event JSON or JSONL) and prints the paper-style tables — per-round
// communication volume and time, per-peer skew, phase time breakdown, the
// encoding-mode histogram, and any fault timeline.
//
// With -serve it becomes the standalone trace collector for multi-process
// clusters: every process points its trace shipper at the listen address,
// and gluon-trace merges the shipped events onto one clock-aligned timeline,
// writes it to -o, and prints the same tables.
//
// Usage:
//
//	gluon-trace [-json] trace-file
//	gluon-trace -serve :9123 -sessions 4 -o cluster.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gluon/internal/trace"
)

// logger is the CLI's structured log sink.
var logger = trace.NewLogger("gluon-trace")

func main() {
	asJSON := flag.Bool("json", false, "emit the summary as JSON instead of tables")
	label := flag.String("label", "", "override the label shown in the header")
	serve := flag.String("serve", "", "run as a trace collector listening on this address instead of reading a file")
	sessions := flag.Int("sessions", 0, "with -serve: exit after this many shipper sessions complete (0 = run until interrupted)")
	out := flag.String("o", "", "with -serve: write the merged cluster trace to this file (.jsonl = JSONL, else Chrome)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gluon-trace [-json] trace-file\n")
		fmt.Fprintf(os.Stderr, "       gluon-trace -serve addr [-sessions n] [-o merged.json]\n\n")
		fmt.Fprintf(os.Stderr, "Reads a Chrome trace_event or JSONL export written by gluon-run/gluon-bench -trace\nand prints per-round, per-peer, and per-phase tables, or (with -serve) collects\nand merges traces shipped live from a multi-process cluster.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *serve != "" {
		if err := runCollector(*serve, *sessions, *out, *label, *asJSON); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	events, meta, err := trace.ReadFileMeta(path)
	if err != nil {
		fatal(err)
	}
	// An empty trace is an error, not an empty table: it means the producer
	// never recorded anything (tracing off, crash before export, truncation).
	if len(events) == 0 {
		fatal(fmt.Errorf("%s: trace contains no events", path))
	}
	if *label != "" {
		meta.Label = *label
	}
	if err := report(trace.SummarizeMeta(meta, events), *asJSON); err != nil {
		fatal(err)
	}
	trace.LogDropped(logger, meta.Dropped)
}

// runCollector is the -serve mode: accept shipper sessions until the target
// count completes (or an interrupt arrives), then merge, export, summarize.
func runCollector(addr string, wantSessions int, out, label string, asJSON bool) error {
	col, err := trace.ListenAndCollect(addr)
	if err != nil {
		return err
	}
	finish := "Ctrl-C to finish"
	if wantSessions > 0 {
		finish = fmt.Sprintf("exiting after %d sessions", wantSessions)
	}
	logger.Info("collecting (point trace shippers here)", "addr", col.Addr(), "until", finish)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
wait:
	for {
		select {
		case <-sig:
			logger.Info("interrupted; merging what arrived")
			break wait
		case <-time.After(100 * time.Millisecond):
			if _, done := col.Sessions(); wantSessions > 0 && done >= wantSessions {
				break wait
			}
		}
	}
	col.Close()
	sessionErrs := col.Errs()
	for _, e := range sessionErrs {
		logger.Error("shipper session ended in error", "err", e)
	}
	events, meta := col.Merged()
	if len(events) == 0 {
		return fmt.Errorf("no trace events collected (were shippers pointed at %s?)", col.Addr())
	}
	if label != "" {
		meta.Label = label
	}
	if out != "" {
		if err := trace.WriteFileMeta(out, meta, events); err != nil {
			return err
		}
		logger.Info("wrote merged trace", "events", len(events), "path", out)
	}
	if err := report(trace.SummarizeMeta(meta, events), asJSON); err != nil {
		return err
	}
	// A collector that lost sessions must not exit 0: the merged timeline is
	// incomplete, and scripts gating on it would silently trust partial data.
	if len(sessionErrs) > 0 {
		return fmt.Errorf("%d shipper session(s) ended in error (listed above); merged trace is incomplete", len(sessionErrs))
	}
	return nil
}

func report(s *trace.Summary, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	return s.WriteTables(os.Stdout)
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
