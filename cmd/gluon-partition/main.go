// Command gluon-partition inspects what each partitioning policy does to a
// graph: replication factor, edge balance, mirror counts, and the
// structural properties Gluon's communication optimizer exploits (how many
// mirrors have incoming/outgoing edges under each policy).
//
// Usage:
//
//	gluon-partition -scale 18 -hosts 8
//	gluon-partition -input edges.txt -hosts 16 -policy cvc
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gluon/internal/generate"
	"gluon/internal/gio"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// logger is the CLI's structured log sink.
var logger = trace.NewLogger("gluon-partition")

func main() {
	var (
		scale  = flag.Uint("scale", 16, "generated graphs have 2^scale nodes")
		ef     = flag.Uint("edgefactor", 16, "average out-degree")
		kind   = flag.String("graph", "rmat", "graph kind for generation")
		input  = flag.String("input", "", "load a text edge list instead of generating")
		hosts  = flag.Int("hosts", 8, "number of hosts")
		policy = flag.String("policy", "", "restrict to one policy (default: all)")
		seed   = flag.Uint64("seed", 2018, "generation seed")
		save   = flag.String("save", "", "directory to save partitions to (one file per host; requires -policy)")
	)
	flag.Parse()

	var numNodes uint64
	var edges []graph.Edge
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fatal(ferr)
		}
		edges, numNodes, err = gio.ReadEdgeList(f)
		f.Close()
	} else {
		edges, err = generate.Edges(generate.Config{
			Kind: *kind, Scale: *scale, EdgeFactor: *ef, Seed: *seed,
		})
		numNodes = uint64(1) << *scale
	}
	if err != nil {
		fatal(err)
	}
	g, err := graph.FromEdges(numNodes, edges, false)
	if err != nil {
		fatal(err)
	}
	out := make([]uint32, numNodes)
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	popt := partition.Options{OutDegrees: out, InDegrees: g.InDegrees()}

	kinds := partition.AllKinds()
	if *policy != "" {
		kinds = []partition.Kind{partition.Kind(*policy)}
	}

	fmt.Printf("graph: %d nodes, %d edges, %d hosts\n\n", numNodes, len(edges), *hosts)
	fmt.Printf("%-6s %10s %12s %12s %14s %14s %10s\n",
		"policy", "repl", "imbalance", "mirrors", "mirrors w/in", "mirrors w/out", "time")
	for _, k := range kinds {
		pol, err := partition.NewPolicy(k, numNodes, *hosts, popt)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		parts, err := partition.PartitionAll(numNodes, edges, pol)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		stats := partition.ComputeStats(parts)
		var mirrorsIn, mirrorsOut uint64
		for _, p := range parts {
			for lid := p.NumMasters; lid < p.NumProxies(); lid++ {
				if p.HasIn.Test(lid) {
					mirrorsIn++
				}
				if p.HasOut.Test(lid) {
					mirrorsOut++
				}
			}
		}
		fmt.Printf("%-6s %10.3f %12.3f %12d %14d %14d %10v\n",
			k, stats.ReplicationFactor, stats.EdgeImbalance,
			stats.TotalMirrors, mirrorsIn, mirrorsOut, elapsed.Round(time.Millisecond))

		if *save != "" && *policy != "" {
			if err := os.MkdirAll(*save, 0o755); err != nil {
				fatal(err)
			}
			for _, p := range parts {
				path := filepath.Join(*save, fmt.Sprintf("part-%s-h%02d.glpt", k, p.HostID))
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := gio.WritePartition(f, p); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
			fmt.Printf("saved %d partition files to %s\n", len(parts), *save)
		}
	}
	fmt.Println("\nrepl = average proxies per node; imbalance = max/mean edges per host")
	fmt.Println("mirrors w/in participate in reduce; mirrors w/out receive broadcast (push-style fields)")
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
