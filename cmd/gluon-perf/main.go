// Command gluon-perf is the trend analyzer over the machine-fingerprinted
// benchmark history (BENCH_history.jsonl) that gluon-bench appends to: it
// prints per-benchmark trend tables and sparklines grouped by host
// fingerprint, flags regressions (latest point vs trailing median, beyond
// the noise band), and rebuilds BENCH_sync.json snapshots from the history
// so re-pinning is a projection instead of an ad-hoc measurement.
//
// Usage:
//
//	gluon-perf                              # trend tables for ./BENCH_history.jsonl
//	gluon-perf -db path/to/history.jsonl    # explicit history
//	gluon-perf -check                       # exit 1 if the newest record regresses
//	gluon-perf -check -tol 0.08 -window 12  # wider band, longer trailing median
//	gluon-perf -pin BENCH_sync.json         # snapshot the newest record for this host
//	gluon-perf -fp 1a2b3c4d5e6f             # restrict tables to one machine class
//
// The regression check never compares across fingerprints: a new machine
// establishes a fresh series (its first record passes vacuously), while a
// slowdown on the machine the history already knows is flagged by
// benchmark name with its trend line. See DESIGN.md §4.9.
package main

import (
	"flag"
	"fmt"
	"os"

	"gluon/internal/bench"
	"gluon/internal/perfdb"
	"gluon/internal/trace"
)

var logger = trace.NewLogger("gluon-perf")

func main() {
	var (
		db     = flag.String("db", "BENCH_history.jsonl", "perfdb history file (JSONL, appended by gluon-bench)")
		check  = flag.Bool("check", false, "flag regressions in the newest record vs its fingerprint's trailing history; exit 1 if any")
		tol    = flag.Float64("tol", 0.05, "fractional ns/op regression allowed before noise widening (-check)")
		window = flag.Int("window", 8, "trailing points forming the reference median and sparklines")
		pin    = flag.String("pin", "", "write a BENCH_sync.json snapshot of the newest full record for this host's fingerprint to this file, then exit")
		fp     = flag.String("fp", "", "restrict trend tables to this fingerprint ID (prefix match)")
		label  = flag.String("label", "", "with -pin: restrict to records with this label (default: newest with snapshot coordinates)")
	)
	flag.Parse()

	recs, skipped, err := perfdb.Read(*db)
	if err != nil {
		fatal(err)
	}
	if skipped > 0 {
		logger.Warn("skipped unreadable history lines (torn append or foreign schema)", "path", *db, "lines", skipped)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("%s holds no readable records — run `make bench-pin` or `gluon-bench -sync-record -perfdb %s`", *db, *db))
	}

	if *pin != "" {
		if err := pinSnapshot(*pin, recs, *label); err != nil {
			fatal(err)
		}
		return
	}

	if *fp != "" {
		var kept []perfdb.Record
		for _, r := range recs {
			if len(*fp) <= len(r.FingerprintID) && r.FingerprintID[:len(*fp)] == *fp {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("no records match fingerprint %q (host is %s)", *fp, perfdb.Probe().ID()))
		}
		recs = kept
	}

	if err := perfdb.WriteTrends(os.Stdout, recs, *window); err != nil {
		fatal(err)
	}

	if *check {
		regs := perfdb.Check(recs, perfdb.CheckOptions{Tol: *tol, Window: *window})
		if len(regs) == 0 {
			fmt.Printf("\nno regressions: newest record within band of its fingerprint's trailing median ✓\n")
			return
		}
		fmt.Println()
		for _, r := range regs {
			fmt.Println(r.String())
		}
		os.Exit(1)
	}
}

// pinSnapshot rebuilds a BENCH_sync.json document from the newest record
// carrying full snapshot coordinates, preferring this host's fingerprint
// so a pin on a new machine starts that machine's own baseline.
func pinSnapshot(path string, recs []perfdb.Record, label string) error {
	host := perfdb.Probe().ID()
	rec, err := perfdb.Latest(recs, label, host)
	if err != nil {
		// No record from this machine yet: fall back to the newest overall
		// (the ratio gate is machine-independent, so a foreign snapshot
		// still gates correctly; the absolute mode will refuse it).
		if rec, err = perfdb.Latest(recs, label, ""); err != nil {
			return fmt.Errorf("history holds no record to pin (label %q)", label)
		}
		logger.Warn("no record from this machine; pinning newest foreign record",
			"record_fp", rec.FingerprintID, "host_fp", host)
	}
	rep, err := bench.ReportFromRecord(rec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteReportJSON(f, rep); err != nil {
		return err
	}
	logger.Info("pinned snapshot from history", "path", path, "fp", rep.FingerprintID,
		"time", rec.Time.Format("2006-01-02T15:04:05Z"), "rows", len(rep.Results))
	return nil
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
