// Command gluon-gen emits the Gluon synchronization boilerplate for a node
// field — the Figure 5 structs the paper's Galois compiler generates from
// the operator's field accesses (§3.3).
//
// Usage:
//
//	gluon-gen -package myapp -field dist -type uint32 -op min -id 1 \
//	          -write dst -read src
//	gluon-gen -package myapp -field contrib -type float64 -op add -id 2
package main

import (
	"flag"
	"os"

	"gluon/internal/gluon"
	"gluon/internal/trace"
	"gluon/internal/vprog"
)

// logger is the CLI's structured log sink.
var logger = trace.NewLogger("gluon-gen")

func main() {
	var (
		pkg    = flag.String("package", "main", "package name for the generated file")
		field  = flag.String("field", "dist", "field name")
		typ    = flag.String("type", "uint32", "element type (uint32|uint64|int32|int64|float32|float64)")
		op     = flag.String("op", "min", "reduction: min | add")
		id     = flag.Uint("id", 1, "gluon field ID")
		write  = flag.String("write", "dst", "write location: src | dst | any")
		read   = flag.String("read", "src", "read location: src | dst | any")
		output = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	loc := func(s string) gluon.Location {
		switch s {
		case "src":
			return gluon.AtSource
		case "dst":
			return gluon.AtDestination
		default:
			return gluon.Anywhere
		}
	}
	src, err := vprog.Generate(vprog.GenSpec{
		Package:  *pkg,
		Operator: vprog.Operator{Name: *field + "-op", Style: vprog.Push},
		Fields: []vprog.GenField{{
			FieldUse: vprog.FieldUse{
				Name:      *field,
				WrittenAt: loc(*write),
				ReadAt:    loc(*read),
				Reduction: true,
			},
			GoType: *typ,
			Op:     vprog.Reduction(*op),
			ID:     uint32(*id),
		}},
	})
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	if *output == "" {
		os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*output, src, 0o644); err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
}
