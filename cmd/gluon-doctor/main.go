// Command gluon-doctor performs causal crash diagnosis on the postmortem
// bundles a dead cluster left behind. Point it at the -postmortem-dir the
// run was armed with (collect the bundles from every surviving host into
// one directory first, for multi-machine clusters) and it prints the
// operator transcript: which rank failed first and why, how the poison
// propagated through the survivors, what the stalled host was last doing,
// and how many rounds of work a checkpoint restore would replay.
//
// Bundles from different processes carry unrelated session clocks;
// gluon-doctor aligns them with the sideband-measured clock offsets when
// every session shipped traces, falling back to wall-clock alignment
// otherwise. With -o it also writes the merged, aligned Chrome trace of
// the cluster's final seconds for chrome://tracing or Perfetto.
//
// Usage:
//
//	gluon-doctor [-o final.trace.json] [-window 10s] [-json] bundle-dir
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gluon/internal/trace"
)

func main() {
	out := flag.String("o", "", "write the merged, clock-aligned Chrome trace of the final window to this file")
	window := flag.Duration("window", 10*time.Second, "with -o: trailing timeline to keep (0 = everything)")
	asJSON := flag.Bool("json", false, "emit the structured diagnosis as JSON instead of the transcript")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gluon-doctor [-o final.trace.json] [-window 10s] [-json] bundle-dir\n\n")
		fmt.Fprintf(os.Stderr, "Loads the postmortem bundles written by an armed flight recorder (gluon-run\n-postmortem-dir), aligns them onto one clock, and prints a causal diagnosis of\nthe cluster's death: first-failing rank, trigger, poison cascade, last-known\nactivity, and the recompute distance from the last checkpoint.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	dir := flag.Arg(0)

	bundles, bad, err := trace.LoadBundles(dir)
	for _, e := range bad {
		fmt.Fprintf(os.Stderr, "gluon-doctor: warning: skipping corrupt bundle: %v\n", e)
	}
	if err != nil {
		fatal(err)
	}
	d := trace.Diagnose(bundles)

	if *asJSON {
		// The merged ring events can run to megabytes; the JSON verdict is
		// for scripting, so it carries the diagnosis without the raw events
		// (use -o for the timeline).
		slim := *d
		slim.Merged = nil
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&slim); err != nil {
			fatal(err)
		}
	} else {
		d.WriteReport(os.Stdout)
	}

	if *out != "" {
		events := trace.FinalWindow(d.Merged, *window)
		meta := trace.Meta{Label: "postmortem " + dir, Dropped: d.MergedDropped, Clocks: d.MergedClocks}
		if err := trace.WriteFileMeta(*out, meta, events); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gluon-doctor: wrote %d aligned event(s) to %s\n", len(events), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gluon-doctor:", err)
	os.Exit(1)
}
