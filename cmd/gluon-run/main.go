// Command gluon-run executes one distributed graph analytics configuration
// and reports time, rounds, and communication volume.
//
// Usage:
//
//	gluon-run -system d-galois -bench bfs -policy cvc -hosts 8 -scale 18
//	gluon-run -system gemini  -bench pr  -hosts 4
//	gluon-run -bench sssp -graph webcrawl -unopt        # optimizations off
//	gluon-run -bench bfs -input edges.txt               # load an edge list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gluon"
	"gluon/internal/autotune"
	"gluon/internal/ckpt"
	"gluon/internal/comm"
	"gluon/internal/gemini"
	"gluon/internal/gio"
	"gluon/internal/trace"
	"gluon/internal/validate"
)

// logger is the CLI's structured log sink: compact stderr lines that the
// armed flight recorder also tees into postmortem bundles.
var logger = trace.NewLogger("gluon-run")

func main() {
	var (
		system   = flag.String("system", "d-galois", "d-ligra | d-galois | d-irgl | gemini")
		benchFlg = flag.String("bench", "bfs", "bfs | cc | pr | pr-push | sssp | sssp-delta | kcore | bc")
		kFlag    = flag.Uint64("k", 4, "core number for -bench kcore")
		policy   = flag.String("policy", "cvc", "oec | iec | cvc | hvc | auto (probe all, pick by volume)")
		hosts    = flag.Int("hosts", 4, "number of simulated hosts")
		workers  = flag.Int("workers", 0, "workers per host (0 = GOMAXPROCS)")
		scale    = flag.Uint("scale", 16, "generated graphs have 2^scale nodes")
		ef       = flag.Uint("edgefactor", 16, "average out-degree")
		kind     = flag.String("graph", "rmat", "rmat | kron | webcrawl | twitterlike | random | grid")
		input    = flag.String("input", "", "load a text edge list instead of generating")
		seed     = flag.Uint64("seed", 2018, "generation seed")
		unopt    = flag.Bool("unopt", false, "disable Gluon's communication optimizations")
		compress = flag.String("compress", "off", "message compression: off | static (fixed size threshold) | adaptive (per-field tuner)")
		verify   = flag.Bool("verify", false, "collect values and print a result digest")
		check    = flag.Bool("validate", false, "property-check the result (graph500-style, no reference recomputation)")

		traceOut     = flag.String("trace", "", "write a trace of the run (Chrome trace_event JSON; .jsonl suffix = JSONL)")
		metricsAddr  = flag.String("metrics-addr", "", "serve live trace counters (JSON + Prometheus) and pprof capture over HTTP at this address")
		traceSummary = flag.Duration("trace-summary", 0, "print periodic trace summaries to stderr at this interval")
		traceShip    = flag.String("trace-ship", "", "stream the trace to a collector at this address (gluon-trace -serve)")
		topAddr      = flag.String("top-addr", "", "embed a live collector at this address so gluon-top can attach to this run")
		pprofAddr    = flag.String("pprof-addr", "", "serve /debug/pprof/ at this address with sync phases labeled in CPU profiles")
		watchdog     = flag.Bool("watchdog", false, "run the straggler/stall watchdog (reports to stderr)")
		wdStall      = flag.Duration("watchdog-stall", 0, "escalate a flagged stall to a cluster failure after this long (0 = warn only)")
		pmDir        = flag.String("postmortem-dir", "", "arm the black-box flight recorder: failures write postmortem bundles (gluon-doctor input) under this directory")

		ckptDir   = flag.String("ckpt-dir", "", "write periodic per-host checkpoints under this directory (requires a checkpointable benchmark)")
		ckptEvery = flag.Int("ckpt-every", 0, "checkpoint every N rounds (0 = ckpt package default)")
		ckptKeep  = flag.Int("ckpt-keep", 0, "retain the last K checkpoint epochs per host (0 = ckpt package default)")
		restore   = flag.Bool("restore", false, "resume from the newest complete checkpoint in -ckpt-dir instead of starting fresh")
	)
	flag.Parse()

	if *pprofAddr != "" {
		ps, err := trace.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer ps.Close()
		logger.Info("serving pprof (sync phases labeled gluon_phase)", "url", fmt.Sprintf("http://%s/debug/pprof/", ps.Addr()))
	}

	// Any observability flag turns tracing on; the trace object is shared by
	// the substrate, the metrics endpoint, the periodic summary, and the
	// collection sideband.
	var tr *trace.Trace
	var shipClock trace.ClockInfo
	if *traceOut != "" || *metricsAddr != "" || *traceSummary > 0 || *traceShip != "" || *topAddr != "" {
		tr = trace.New(trace.Config{Label: fmt.Sprintf("gluon-run %s/%s", *system, *benchFlg)})
		if *metricsAddr != "" {
			ms, err := trace.ServeMetrics(*metricsAddr, tr)
			if err != nil {
				fatal(err)
			}
			defer ms.Close()
			logger.Info("serving trace metrics", "url", fmt.Sprintf("http://%s/metrics", ms.Addr()))
		}
		if *traceSummary > 0 {
			stop := trace.StartSummary(os.Stderr, tr, *traceSummary)
			defer stop()
		}
		if *topAddr != "" {
			// An embedded collector makes this single process watchable: the
			// local trace feeds the critical-path engine directly, and any
			// gluon-top (or remote shipper) can attach at this address.
			col, err := trace.ListenAndCollect(*topAddr)
			if err != nil {
				fatal(err)
			}
			col.SetLocal(tr)
			defer col.Close()
			logger.Info("live dashboard collector listening", "addr", col.Addr(), "watch", "gluon-top "+col.Addr())
		}
		if *traceShip != "" {
			sh, err := trace.StartShipper(trace.ShipperConfig{Addr: *traceShip, Trace: tr})
			if err != nil {
				fatal(err)
			}
			defer func() {
				if err := sh.Close(); err != nil {
					logger.Error("trace shipper failed", "err", err)
				}
			}()
			shipClock = sh.Clock()
			logger.Info("shipping trace", "to", *traceShip, "clock", fmt.Sprint(shipClock))
		}
	}

	// Arming the flight recorder costs nothing on the hot path: without
	// explicit tracing it keeps a private always-on ring that dsys adopts,
	// and failure paths anywhere in the process dump bundles through it.
	if *pmDir != "" {
		fr := trace.NewFlightRecorder(trace.FlightConfig{Dir: *pmDir, Trace: tr})
		fr.SetRunConfig("gluon-run " + strings.Join(os.Args[1:], " "))
		fr.SetPoolCounters(comm.PoolCounters)
		if shipClock.Samples > 0 {
			fr.SetClock(shipClock)
		}
		trace.Arm(fr)
		logger.Info("flight recorder armed", "dir", *pmDir)
	}

	weighted := *benchFlg == "sssp" || *benchFlg == "sssp-delta"
	var numNodes uint64
	var edges []gluon.Edge
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fatal(ferr)
		}
		edges, numNodes, err = gio.ReadEdgeList(f)
		f.Close()
	} else {
		numNodes, edges, err = gluon.Generate(gluon.GraphConfig{
			Kind: *kind, Scale: *scale, EdgeFactor: *ef, Seed: *seed, Weighted: weighted,
		})
	}
	if err != nil {
		fatal(err)
	}
	if *benchFlg == "cc" || *benchFlg == "kcore" {
		edges = gluon.Symmetrize(edges)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, weighted)
	if err != nil {
		fatal(err)
	}
	source := uint64(csr.MaxOutDegreeNode())

	if *system == "gemini" {
		if tr != nil {
			logger.Warn("the gemini baseline is not instrumented; trace output will be empty")
		}
		res, err := gemini.Run(numNodes, edges, gemini.Algorithm(*benchFlg), gemini.Config{
			Hosts: *hosts, Workers: *workers, Source: source,
			Tolerance: 1e-6, MaxIters: 100, CollectValues: *verify,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("system=gemini bench=%s hosts=%d time=%v rounds=%d comm=%d bytes\n",
			*benchFlg, *hosts, res.Time, res.Rounds, res.TotalCommBytes)
		if *verify {
			printDigest(res.Values)
		}
		writeTrace(tr, *traceOut)
		return
	}

	opt := gluon.Opt()
	if *unopt {
		opt = gluon.Unopt()
	}
	switch *compress {
	case "off":
	case "static":
		opt.Compress = true
		opt.CompressThreshold = 512
	case "adaptive":
		opt.Compress = true
		opt.CompressPolicy = autotune.NewCompressTuner(autotune.CompressConfig{MinSize: 512})
	default:
		fatal(fmt.Errorf("unknown -compress mode %q (off | static | adaptive)", *compress))
	}
	var factory gluon.ProgramFactory
	maxRounds := 0
	switch *benchFlg {
	case "bfs":
		factory = gluon.NewBFS(gluon.System(*system), source, *workers)
	case "sssp":
		factory = gluon.NewSSSP(gluon.System(*system), source, *workers)
	case "cc":
		factory = gluon.NewCC(gluon.System(*system), *workers)
	case "pr":
		factory = gluon.NewPageRank(gluon.System(*system), 1e-6, *workers)
		maxRounds = 100
	case "pr-push":
		factory = gluon.NewPageRankPush(1e-9, *workers)
		maxRounds = 500
	case "sssp-delta":
		factory = gluon.NewSSSPDelta(source, 0, *workers)
	case "kcore":
		factory = gluon.NewKCore(gluon.System(*system), *kFlag, *workers)
	case "bc":
		factory = gluon.NewBC(source, *workers)
		maxRounds = 100000
	default:
		fatal(fmt.Errorf("unknown benchmark %q", *benchFlg))
	}

	chosen := gluon.PolicyKind(*policy)
	if *policy == "auto" {
		var err error
		chosen, err = gluon.AutotunePolicy(numNodes, edges, *hosts, factory)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("autotune selected policy %s\n", chosen)
	}

	var wcfg *trace.WatchdogConfig
	if *watchdog || *wdStall > 0 {
		wcfg = &trace.WatchdogConfig{StallTimeout: *wdStall}
	}
	var ckptOpts *ckpt.Options
	if *ckptDir != "" {
		ckptOpts = &ckpt.Options{Dir: *ckptDir, Every: *ckptEvery, Keep: *ckptKeep}
	} else if *restore {
		fatal(fmt.Errorf("-restore requires -ckpt-dir"))
	}
	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts:         *hosts,
		Policy:        chosen,
		Opt:           opt,
		CollectValues: *verify || *check,
		MaxRounds:     maxRounds,
		Trace:         tr,
		Watchdog:      wcfg,
		Checkpoint:    ckptOpts,
		Restore:       *restore,
	}, factory)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("system=%s bench=%s policy=%s hosts=%d time=%v rounds=%d comm=%d bytes imbalance=%.2f\n",
		*system, *benchFlg, *policy, *hosts, res.Time, res.Rounds, res.TotalCommBytes, res.LoadImbalance())
	writeTrace(tr, *traceOut)
	if *verify {
		printDigest(res.Values)
	}
	if *check {
		if err := validateResult(*benchFlg, csr, uint32(source), *kFlag, res.Values); err != nil {
			fatal(fmt.Errorf("validation FAILED: %w", err))
		}
		fmt.Println("validation passed ✓")
	}
}

// validateResult property-checks the collected values for the benchmarks
// with known validators.
func validateResult(benchName string, csr *gluon.CSR, source uint32, k uint64, values []float64) error {
	switch benchName {
	case "bfs", "sssp", "sssp-delta":
		dist := make([]uint32, len(values))
		for i, v := range values {
			dist[i] = uint32(v)
		}
		if benchName == "bfs" {
			return validate.BFS(csr, source, dist)
		}
		return validate.SSSP(csr, source, dist)
	case "cc":
		comp := make([]uint32, len(values))
		for i, v := range values {
			comp[i] = uint32(v)
		}
		return validate.CC(csr, comp)
	case "pr":
		return validate.PageRank(csr, 0.85, values, 1e-6)
	case "kcore":
		inCore := make([]bool, len(values))
		for i, v := range values {
			inCore[i] = v == 1
		}
		return validate.KCore(csr, k, inCore)
	default:
		return fmt.Errorf("no validator for %q", benchName)
	}
}

// printDigest summarizes converged values (reachable count, sum) so two
// runs can be compared quickly.
func printDigest(values []float64) {
	var sum float64
	reached := 0
	for _, v := range values {
		if v != float64(^uint32(0)) {
			reached++
			sum += v
		}
	}
	fmt.Printf("digest: %d/%d nodes with finite values, sum=%.6g\n", reached, len(values), sum)
}

// writeTrace exports the trace (if one was recorded and a path given) and
// reports how much it captured; a non-zero drop count means the ring
// overwrote old events and totals will undercount.
func writeTrace(tr *trace.Trace, path string) {
	if tr == nil || path == "" {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		fatal(err)
	}
	events := tr.Live().Events
	logger.Info("wrote trace", "events", events, "path", path, "analyze", "gluon-trace "+path)
	trace.LogDropped(logger, tr.Dropped())
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
