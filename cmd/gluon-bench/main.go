// Command gluon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gluon-bench                 # run everything at default scale
//	gluon-bench -table 3        # one table
//	gluon-bench -figure 10      # one figure
//	gluon-bench -scale 18 -hosts 1,2,4,8,16
//
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gluon/internal/bench"
	"gluon/internal/comm"
	"gluon/internal/perfdb"
	"gluon/internal/trace"
)

// logger is the CLI's structured log sink (teed into the armed flight
// recorder's recent-log ring, when one is armed).
var logger = trace.NewLogger("gluon-bench")

func main() {
	var (
		table      = flag.Int("table", 0, "run only this table (1-5)")
		figure     = flag.String("figure", "", "run only this figure (8, 9, 10)")
		scale      = flag.Uint("scale", 16, "graphs have 2^scale nodes")
		ef         = flag.Uint("edgefactor", 16, "average out-degree")
		hosts      = flag.String("hosts", "1,2,4,8", "comma-separated host counts")
		devices    = flag.String("devices", "1,2,4,8", "comma-separated device counts for D-IrGL")
		workers    = flag.Int("workers", 2, "workers per simulated host")
		seed       = flag.Uint64("seed", 2018, "graph generation seed")
		prIters    = flag.Int("pr-iters", 50, "pagerank iteration cap")
		prTol      = flag.Float64("pr-tol", 1e-6, "pagerank tolerance")
		netLat     = flag.Duration("net-latency", 50*time.Microsecond, "simulated per-message link latency (0 disables)")
		netBW      = flag.Float64("net-bandwidth", 50e6, "simulated link bandwidth, bytes/s (0 = infinite)")
		syncOut    = flag.String("sync-json", "", "run the sync hot-path microbenchmark and write JSON to this file (\"-\" for stdout), then exit")
		syncRecord = flag.Bool("sync-record", false, "run the sync hot-path microbenchmark and append it to the -perfdb history without writing a report file, then exit")
		perfDB     = flag.String("perfdb", "", "append sync measurements to this perfdb history file (JSONL; \"\" disables recording)")

		syncGuard     = flag.String("sync-guard", "", "compare the sync hot path (tracing disabled) against this baseline JSON and exit non-zero on regression")
		guardTol      = flag.Float64("guard-tol", 0.10, "fractional tolerance for -sync-guard before noise widening (allocs/op may never regress)")
		guardMode     = flag.String("guard-mode", "ratio", "sync-guard comparison: \"ratio\" (opt/unopt, machine-independent) or \"abs\" (absolute ns/op, same machine only)")
		forceBaseline = flag.Bool("force-baseline", false, "gate absolute ns/op against a baseline pinned on a different machine anyway")
		syncTiers     = flag.String("sync-tiers", "", "with -sync-json/-sync-record: measure only these comma-separated encodings (default: all)")
		syncHosts     = flag.String("sync-hosts", "2,8", "with -sync-json/-sync-record: comma-separated host counts to measure")

		traceOut     = flag.String("trace", "", "record every Gluon-based run into a trace file (Chrome trace_event JSON; .jsonl suffix = JSONL)")
		metricsAddr  = flag.String("metrics-addr", "", "serve live trace counters as JSON over HTTP at this address")
		traceSummary = flag.Duration("trace-summary", 0, "print periodic trace summaries to stderr at this interval")
		pprofAddr    = flag.String("pprof-addr", "", "serve /debug/pprof/ at this address with sync phases labeled in CPU profiles")
	)
	flag.Parse()

	if *pprofAddr != "" {
		ps, err := trace.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer ps.Close()
		logger.Info("serving pprof (sync phases labeled gluon_phase)", "url", fmt.Sprintf("http://%s/debug/pprof/", ps.Addr()))
	}

	p := bench.DefaultParams()
	p.Scale = *scale
	p.EdgeFactor = *ef
	p.Workers = *workers
	p.Seed = *seed
	p.PRMaxIters = *prIters
	p.PRTolerance = *prTol
	p.Net = comm.NetModel{Latency: *netLat, Bandwidth: *netBW}
	var err error
	if p.Hosts, err = parseInts(*hosts); err != nil {
		fatal(err)
	}
	if p.Devices, err = parseInts(*devices); err != nil {
		fatal(err)
	}

	if *syncGuard != "" {
		mode := bench.GuardMode(*guardMode)
		if mode != bench.GuardRatio && mode != bench.GuardAbs {
			fatal(fmt.Errorf("unknown -guard-mode %q (want ratio or abs)", *guardMode))
		}
		opts := bench.GuardOptions{Mode: mode, ForceBaseline: *forceBaseline, PerfDB: *perfDB}
		if err := bench.GuardSyncBench(os.Stdout, p, *syncGuard, *guardTol, opts); err != nil {
			fatal(err)
		}
		fmt.Println("sync hot path within tolerance of baseline ✓")
		return
	}

	var tr *trace.Trace
	if *traceOut != "" || *metricsAddr != "" || *traceSummary > 0 {
		tr = trace.New(trace.Config{Label: "gluon-bench sweep"})
		p.Trace = tr
		if *metricsAddr != "" {
			ms, err := trace.ServeMetrics(*metricsAddr, tr)
			if err != nil {
				fatal(err)
			}
			defer ms.Close()
			logger.Info("serving trace metrics", "url", fmt.Sprintf("http://%s/metrics", ms.Addr()))
		}
		if *traceSummary > 0 {
			stop := trace.StartSummary(os.Stderr, tr, *traceSummary)
			defer stop()
		}
	}

	if *syncOut != "" || *syncRecord {
		fmt.Fprintf(os.Stderr, "host fingerprint: %s\n", perfdb.Probe())
		rep, err := runSyncBench(p, *syncTiers, *syncHosts, *syncOut)
		if err != nil {
			fatal(fmt.Errorf("sync bench: %w", err))
		}
		if *perfDB != "" {
			if err := perfdb.Append(*perfDB, rep.Record("sync-bench")); err != nil {
				fatal(err)
			}
			logger.Info("appended sync measurement to perf history", "path", *perfDB, "fp", rep.FingerprintID)
		} else if *syncRecord {
			fatal(fmt.Errorf("-sync-record needs -perfdb to record into"))
		}
		return
	}

	type experiment struct {
		name string
		run  func() error
	}
	all := []experiment{
		{"table1", func() error { return bench.Table1(os.Stdout, p) }},
		{"table2", func() error { return bench.Table2(os.Stdout, p) }},
		{"table3", func() error { return bench.Table3(os.Stdout, p) }},
		{"table4", func() error { return bench.Table4(os.Stdout, p) }},
		{"table5", func() error { return bench.Table5(os.Stdout, p) }},
		{"figure8", func() error { return bench.Figure8(os.Stdout, p) }},
		{"figure9", func() error { return bench.Figure9(os.Stdout, p) }},
		{"figure10", func() error { return bench.Figure10(os.Stdout, p) }},
		{"ablations", func() error {
			if err := bench.AblationEncodings(os.Stdout, p); err != nil {
				return err
			}
			fmt.Println()
			if err := bench.AblationSubsets(os.Stdout, p); err != nil {
				return err
			}
			fmt.Println()
			if err := bench.AblationCompression(os.Stdout, p); err != nil {
				return err
			}
			fmt.Println()
			return bench.AblationScheduling(os.Stdout, p)
		}},
	}

	want := func(name string) bool {
		if *table == 0 && *figure == "" {
			return true
		}
		if *table != 0 && name == fmt.Sprintf("table%d", *table) {
			return true
		}
		if *figure == "ablations" && name == "ablations" {
			return true
		}
		if *figure != "" && name == "figure"+strings.TrimPrefix(*figure, "figure") {
			return true
		}
		return false
	}

	ran := 0
	for _, e := range all {
		if !want(e.name) {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		if err := e.run(); err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("no experiment matched -table %d -figure %q", *table, *figure))
	}
	if tr != nil && *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		logger.Info("wrote trace", "events", tr.Live().Events, "path", *traceOut, "analyze", "gluon-trace "+*traceOut)
		trace.LogDropped(logger, tr.Dropped())
	}
}

// runSyncBench measures the requested sync tiers × host counts (defaults:
// every encoding, the pinned {2,8}), attaches the comm-probe counters, and
// writes the report to outPath ("" = don't, "-" = stdout).
func runSyncBench(p bench.Params, tiersCSV, hostsCSV, outPath string) (*bench.SyncBenchReport, error) {
	hosts, err := parseInts(hostsCSV)
	if err != nil {
		return nil, err
	}
	names := bench.AllSyncEncodings()
	if tiersCSV != "" {
		names = nil
		for _, t := range strings.Split(tiersCSV, ",") {
			names = append(names, strings.TrimSpace(t))
		}
	}
	rep, err := bench.SyncBenchTiers(p, hosts, names)
	if err != nil {
		return nil, err
	}
	if comm, err := bench.CommProbe(p, hosts[0]); err == nil {
		rep.Comm = comm
	} else {
		logger.Warn("comm probe failed; report carries timings only", "err", err)
	}
	if outPath == "" {
		return rep, nil
	}
	out := os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		out = f
	}
	return rep, bench.WriteReportJSON(out, rep)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad int list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
