// Command gluon-top is a live terminal dashboard for a running gluon
// cluster. It attaches to any trace collector's sideband address — the
// standalone `gluon-trace -serve` process or a collector embedded with
// `gluon-run -top-addr` / `examples/tcp-cluster -collect` — subscribes to
// the live update stream, and refreshes a top(1)-style view:
//
//   - per-host round cursor, current phase, heartbeat staleness, and a
//     proportional path-breakdown bar (compute/encode/wire/recv-wait/fold/
//     apply/straggler-wait) from the critical-path engine
//   - shipper session states, so a host that died shows as DISCONNECTED
//     with the reason instead of silently freezing
//   - the rolling critical-path verdict and the last few per-round gating
//     attributions
//   - a communication-volume sparkline and the optimization ledger
//
// With -o jsonl it prints each update as one JSON line instead of drawing,
// for scripting; -once exits after the first update (the snapshot).
//
// Usage:
//
//	gluon-top [-refresh 1s] [-rounds 8] [-o jsonl] [-once] collector-addr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"gluon/internal/trace"
)

var logger = trace.NewLogger("gluon-top")

// staleAfter is when a host's heartbeat is flagged as stale on the board.
const staleAfter = 3 * time.Second

func main() {
	refresh := flag.Duration("refresh", time.Second, "minimum redraw interval")
	rounds := flag.Int("rounds", 8, "trailing critical-path rounds to show")
	output := flag.String("o", "", `"jsonl" streams updates as JSON lines instead of drawing`)
	once := flag.Bool("once", false, "print one update and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gluon-top [-refresh d] [-rounds n] [-o jsonl] [-once] collector-addr\n\n")
		fmt.Fprintf(os.Stderr, "Attaches to a gluon trace collector (gluon-trace -serve, gluon-run -top-addr,\nor examples/tcp-cluster -collect) and renders a live cluster dashboard.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	addr := flag.Arg(0)

	w, err := trace.AttachWatcher(addr, 5*time.Second)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	defer w.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	jsonl := *output == "jsonl"
	board := newBoard(*rounds, addr)
	if !jsonl {
		fmt.Print("\x1b[?25l\x1b[2J") // hide cursor, clear once
		defer fmt.Print("\x1b[?25h\n")
	}
	enc := json.NewEncoder(os.Stdout)
	lastDraw := time.Time{}
	for {
		select {
		case <-sig:
			return
		case u, ok := <-w.Updates():
			if !ok {
				if err := w.Err(); err != nil {
					if !jsonl {
						fmt.Print("\x1b[?25h\n")
					}
					logger.Error("subscription ended", "err", err)
					os.Exit(1)
				}
				return
			}
			board.observe(&u)
			if jsonl {
				if err := enc.Encode(&u); err != nil {
					logger.Error(err.Error())
					os.Exit(1)
				}
			} else {
				// Updates can arrive faster than a terminal is worth
				// redrawing; coalesce to the refresh interval (but never
				// skip the first frame or a final -once frame).
				if time.Since(lastDraw) >= *refresh || lastDraw.IsZero() || *once {
					board.draw(os.Stdout, &u)
					lastDraw = time.Now()
				}
			}
			if *once {
				return
			}
		}
	}
}

// board holds the cross-update state a dashboard needs: the byte-volume
// history behind the sparkline.
type board struct {
	rounds    int
	addr      string
	lastBytes uint64
	lastNs    int64
	rates     []float64 // bytes/sec samples, newest last
}

func newBoard(rounds int, addr string) *board {
	return &board{rounds: rounds, addr: addr}
}

// observe folds an update into the rate history.
func (b *board) observe(u *trace.ViewUpdate) {
	total := u.Stats.ValueBytes + u.Stats.MetaBytes + u.Stats.GIDBytes
	if b.lastNs != 0 && u.NowNs > b.lastNs && total >= b.lastBytes {
		dt := float64(u.NowNs-b.lastNs) / 1e9
		b.rates = append(b.rates, float64(total-b.lastBytes)/dt)
		if len(b.rates) > 48 {
			b.rates = b.rates[len(b.rates)-48:]
		}
	}
	b.lastBytes, b.lastNs = total, u.NowNs
}

func (b *board) draw(out *os.File, u *trace.ViewUpdate) {
	var s strings.Builder
	s.WriteString("\x1b[H") // home; \x1b[K per line, \x1b[J at end
	line := func(format string, args ...any) {
		fmt.Fprintf(&s, format, args...)
		s.WriteString("\x1b[K\n")
	}

	label := u.Label
	if label == "" {
		label = "gluon"
	}
	line("gluon-top — %s @ %s    round %d    seq %d    %s",
		label, b.addr, u.Stats.MaxRound, u.Seq, time.Now().Format("15:04:05"))
	line("")

	// Session states: a disconnected shipper is the load-bearing fact.
	disconnected := map[int32]string{}
	if len(u.Sessions) > 0 {
		parts := make([]string, 0, len(u.Sessions))
		for _, si := range u.Sessions {
			name := fmt.Sprintf("#%d", si.ID)
			if len(si.Hosts) > 0 {
				name = fmt.Sprintf("#%d hosts %v", si.ID, si.Hosts)
			}
			switch si.State {
			case "error":
				parts = append(parts, fmt.Sprintf("\x1b[31m%s DISCONNECTED (%s)\x1b[0m", name, si.Error))
				for _, h := range si.Hosts {
					disconnected[h] = si.Error
				}
			case "done":
				parts = append(parts, fmt.Sprintf("%s done", name))
			default:
				parts = append(parts, fmt.Sprintf("%s active", name))
			}
		}
		line("sessions: %s", strings.Join(parts, " · "))
		line("")
	}

	// Per-host rows: heartbeat cursor + path-breakdown bar.
	hosts := hostRows(u)
	if len(hosts) > 0 {
		line("%5s %7s %-10s %7s %10s  %-34s", "host", "round", "phase", "beat", "bytes", "path breakdown (attributed rounds)")
		for _, h := range hosts {
			status := ""
			switch {
			case disconnected[h.host] != "":
				status = "  \x1b[31mDISCONNECTED\x1b[0m"
			case h.haveBeat && h.stale > staleAfter:
				status = fmt.Sprintf("  \x1b[33mSTALE %v\x1b[0m", h.stale.Round(time.Second))
			}
			beat := "-"
			if h.haveBeat {
				beat = h.stale.Round(100 * time.Millisecond).String()
			}
			line("%5d %7s %-10s %7s %10s  %-34s%s",
				h.host, h.round, h.phase, beat, h.bytes, h.bar, status)
		}
		line("")
	}

	// Comm-volume sparkline.
	if len(b.rates) > 0 {
		cur := b.rates[len(b.rates)-1]
		line("comm  %s  %s/s", sparkline(b.rates, 48), fmtBytes(uint64(cur)))
		line("")
	}

	// Trailing critical-path rounds + rolling verdict.
	tail := u.Rounds
	if len(tail) > b.rounds {
		tail = tail[len(tail)-b.rounds:]
	}
	if len(tail) > 0 {
		line("critical path (last %d rounds):", len(tail))
		for i := range tail {
			r := &tail[i]
			line("  round %-5d wall %-10v gate host %-3d %-15s margin %v",
				r.Round, time.Duration(r.WallNs).Round(time.Microsecond), r.Gate,
				r.GatePhase, time.Duration(r.MarginNs).Round(time.Microsecond))
		}
	}
	line("verdict: %s", u.Verdict.String())
	if u.Ledger.BaselineBytes > 0 {
		line("ledger: shipped %s vs naive %s — sparsity %s · invariants %s · compression %s",
			fmtBytes(u.Ledger.ShippedBytes), fmtBytes(u.Ledger.BaselineBytes),
			fmtBytes(u.Ledger.SparsitySavedBytes), fmtBytes(u.Ledger.InvariantSavedBytes),
			fmtBytes(u.Ledger.CompressionSavedBytes))
	}
	s.WriteString("\x1b[J") // clear whatever an earlier, taller frame left
	out.WriteString(s.String())
}

// hostRow is one rendered host line.
type hostRow struct {
	host     int32
	round    string
	phase    string
	haveBeat bool
	stale    time.Duration
	bytes    string
	bar      string
}

// hostRows joins heartbeats (live cursor) with the attribution totals
// (breakdown bar), keyed by host.
func hostRows(u *trace.ViewUpdate) []hostRow {
	rows := map[int32]*hostRow{}
	get := func(h int32) *hostRow {
		r := rows[h]
		if r == nil {
			r = &hostRow{host: h, round: "-", phase: "-", bytes: "-", bar: ""}
			rows[h] = r
		}
		return r
	}
	for _, hb := range u.Hearts {
		r := get(hb.Host)
		r.round = fmt.Sprintf("%d", hb.Round)
		r.phase = hb.Phase.String()
		r.haveBeat = true
		r.stale = time.Duration(u.NowNs - hb.BeatNs)
		if r.stale < 0 {
			r.stale = 0
		}
		r.bytes = fmtBytes(hb.Bytes)
	}
	for i := range u.Hosts {
		hp := &u.Hosts[i]
		r := get(hp.Host)
		r.bar = phaseBar(hp, 34)
		if r.bytes == "-" {
			r.bytes = fmtBytes(hp.Bytes)
		}
	}
	out := make([]hostRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].host < out[j].host })
	return out
}

// barGlyphs maps each CritPhase to the character filling its bar segment.
var barGlyphs = [trace.NumCritPhases]byte{'c', 'e', 'w', 'r', 'f', 'a', '~'}

// phaseBar renders a host's taxonomy split as a fixed-width proportional
// bar: c=compute e=encode w=wire r=recvwait f=fold a=apply ~=straggler-wait.
func phaseBar(h *trace.HostPhaseSum, width int) string {
	total := h.TotalNs()
	if total <= 0 {
		return strings.Repeat(".", width)
	}
	var bar []byte
	for p := trace.CritPhase(0); p < trace.NumCritPhases; p++ {
		n := int(float64(h.SubNs[p]) / float64(total) * float64(width))
		for i := 0; i < n && len(bar) < width; i++ {
			bar = append(bar, barGlyphs[p])
		}
	}
	for len(bar) < width {
		bar = append(bar, '.')
	}
	return string(bar)
}

// sparkGlyphs are the eight block heights of the comm sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(vals))
	}
	var s strings.Builder
	for _, v := range vals {
		i := int(v / max * float64(len(sparkGlyphs)-1))
		s.WriteRune(sparkGlyphs[i])
	}
	return s.String()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
