// Webcrawl analytics: the paper's motivating scenario — ranking and
// clustering a web-crawl-shaped graph whose heavy-tailed degree
// distribution makes the choice of partitioning policy matter. This
// example runs PageRank and connected components over every policy and
// shows how replication factor drives communication volume, the effect the
// paper's §5.2 and Figure 8(b) report.
//
//	go run ./examples/webcrawl
package main

import (
	"fmt"
	"log"

	"gluon"
	"gluon/internal/partition"
)

const hosts = 8

func main() {
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "webcrawl", Scale: 14, EdgeFactor: 16, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web crawl: %d pages, %d hyperlinks, %d hosts\n\n", numNodes, len(edges), hosts)

	// PageRank across the four partitioning policies. The application code
	// is identical; only the runtime policy flag changes — the paper's
	// auto-tuning story (§3.3).
	fmt.Println("PageRank (25 iterations max):")
	fmt.Printf("%-6s %12s %8s %14s %10s\n", "policy", "time", "rounds", "comm volume", "repl")
	for _, pol := range []gluon.PolicyKind{gluon.OEC, gluon.IEC, gluon.CVC, gluon.HVC} {
		repl := replicationFactor(numNodes, edges, pol)
		res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
			Hosts:     hosts,
			Policy:    pol,
			Opt:       gluon.Opt(),
			MaxRounds: 25,
		}, gluon.NewPageRank(gluon.DGalois, 1e-6, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12v %8d %14d %10.2f\n", pol, res.Time, res.Rounds, res.TotalCommBytes, repl)
	}

	// Connected components on the symmetrized crawl.
	sym := gluon.Symmetrize(edges)
	fmt.Println("\nConnected components (symmetrized):")
	res, err := gluon.Run(numNodes, sym, gluon.RunConfig{
		Hosts:         hosts,
		Policy:        gluon.CVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
	}, gluon.NewCC(gluon.DGalois, 0))
	if err != nil {
		log.Fatal(err)
	}
	comps := map[float64]int{}
	for _, v := range res.Values {
		comps[v]++
	}
	largest := 0
	for _, size := range comps {
		if size > largest {
			largest = size
		}
	}
	fmt.Printf("%d components; giant component has %d/%d pages (%.1f%%)\n",
		len(comps), largest, numNodes, 100*float64(largest)/float64(numNodes))
	fmt.Printf("cc: %v, %d rounds, %d bytes\n", res.Time, res.Rounds, res.TotalCommBytes)
}

// replicationFactor partitions the graph to measure the average number of
// proxies per node under a policy.
func replicationFactor(numNodes uint64, edges []gluon.Edge, kind gluon.PolicyKind) float64 {
	g, err := gluon.BuildCSR(numNodes, edges, false)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]uint32, numNodes)
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	pol, err := partition.NewPolicy(kind, numNodes, hosts,
		partition.Options{OutDegrees: out, InDegrees: g.InDegrees()})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		log.Fatal(err)
	}
	return partition.ComputeStats(parts).ReplicationFactor
}
