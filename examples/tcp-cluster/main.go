// TCP cluster: run a Gluon system over real sockets instead of the
// in-process hub. Each host gets its own TCP endpoint; the byte streams
// crossing the connections are exactly the payloads Gluon hands to MPI in
// the original system.
//
// Two modes:
//
//   - Demo (default): all hosts live in one process, dialing each other on
//     localhost. Self-contained, verifies against sequential Dijkstra.
//
//     go run ./examples/tcp-cluster
//
//   - Multi-process: launch the binary once per host with -host N and the
//     shared address list. Every process regenerates the same deterministic
//     graph, partitions it identically, and drives only its own rank; the
//     processes rendezvous over TCP exactly like MPI ranks. Each process
//     verifies the masters it owns against Dijkstra.
//
//     go run ./examples/tcp-cluster -host 0 -addrs 127.0.0.1:39200,127.0.0.1:39201 &
//     go run ./examples/tcp-cluster -host 1 -addrs 127.0.0.1:39200,127.0.0.1:39201
//
// With -collect, each process streams its trace to a gluon-trace collector
// (`gluon-trace -serve :9123 -sessions N -o cluster.json`), which aligns
// the per-process clocks and merges everything onto one timeline — and,
// while the run is live, `gluon-top :9123` attaches to the same collector
// and shows per-host round progress, the barrier-gating verdict, and any
// disconnected rank. See README.md in this directory for the full recipe.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"gluon"
	"gluon/internal/algorithms/sssp"
	"gluon/internal/bitset"
	"gluon/internal/ckpt"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	igluon "gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/ref"
	"gluon/internal/trace"
)

func main() {
	var (
		host     = flag.Int("host", -1, "drive only this rank (multi-process mode; requires -addrs)")
		addrsCSV = flag.String("addrs", "", "comma-separated host:port list, one per rank (its length is the cluster size)")
		collect  = flag.String("collect", "", "stream this process's trace to a gluon-trace -serve collector at this address")
		traceOut = flag.String("trace", "", "write this process's trace to a file")
		watchdog = flag.Bool("watchdog", false, "run the straggler watchdog over heartbeat gossip")
		wdStall  = flag.Duration("watchdog-stall", 0, "escalate a flagged stall to a cluster failure after this long")
		scale    = flag.Uint("scale", 13, "generated graph has 2^scale nodes")

		ckptDir   = flag.String("ckpt-dir", "", "write periodic per-host checkpoints under this directory (multi-process mode)")
		ckptEvery = flag.Int("ckpt-every", 0, "checkpoint every N rounds (0 = ckpt package default)")
		ckptKeep  = flag.Int("ckpt-keep", 0, "retain the last K checkpoint epochs per host (0 = ckpt package default)")
		restore   = flag.Bool("restore", false, "start as a replacement: load the newest checkpoint from -ckpt-dir and rejoin the live mesh")
		cold      = flag.Bool("cold-restore", false, "with -restore: the whole cluster is restarting together, so form a fresh mesh instead of dialing into a live one")
		rejoin    = flag.Bool("rejoin", false, "survive peer death: roll back to the newest checkpoint and wait for a replacement instead of failing")
		delay     = flag.Duration("round-delay", 0, "sleep this long per round (demo aid: widens the window for killing a rank mid-run)")
		pmDir     = flag.String("postmortem-dir", "", "arm the black-box flight recorder: failures write postmortem bundles (gluon-doctor input) under this directory")
	)
	flag.Parse()

	// Every process must derive the identical graph and partitioning, so all
	// inputs are deterministic: fixed generator seed, fixed policy.
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: *scale, EdgeFactor: 8, Seed: 5, Weighted: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, true)
	if err != nil {
		log.Fatal(err)
	}
	source := csr.MaxOutDegreeNode()

	hosts := 4
	var addrs []string
	if *addrsCSV != "" {
		addrs = strings.Split(*addrsCSV, ",")
		hosts = len(addrs)
	} else {
		addrs = make([]string, hosts)
		for h := range addrs {
			addrs[h] = fmt.Sprintf("127.0.0.1:%d", 39200+h)
		}
	}

	// Partition for the cluster with the hybrid vertex-cut. In multi-process
	// mode every process runs this full partitioning and keeps one slice —
	// wasteful but simple, and bitwise identical across processes.
	out := make([]uint32, numNodes)
	for u := uint32(0); u < csr.NumNodes(); u++ {
		out[u] = csr.OutDegree(u)
	}
	pol, err := partition.NewPolicy(partition.HVC, numNodes, hosts,
		partition.Options{OutDegrees: out, InDegrees: csr.InDegrees()})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		log.Fatal(err)
	}

	var wcfg *trace.WatchdogConfig
	if *watchdog || *wdStall > 0 {
		wcfg = &trace.WatchdogConfig{StallTimeout: *wdStall}
	}

	var ckptOpts *ckpt.Options
	if *ckptDir != "" {
		ckptOpts = &ckpt.Options{Dir: *ckptDir, Every: *ckptEvery, Keep: *ckptKeep}
	} else if *restore || *rejoin {
		log.Fatal("-restore and -rejoin require -ckpt-dir")
	}

	if *host >= 0 {
		runOneHost(*host, addrs, parts, csr, source, wcfg, *collect, *traceOut, *pmDir, ckptOpts, *restore, *cold, *rejoin, *delay)
		return
	}
	runDemo(addrs, parts, csr, source, wcfg, *collect, *traceOut, *pmDir)
}

// armRecorder arms the process-global flight recorder when the operator
// asked for postmortems. The run's trace session is reused when one exists;
// otherwise the recorder keeps its own modest always-on ring that dsys
// adopts, so bundles carry a timeline even with tracing off.
func armRecorder(dir string, tr *trace.Trace, host int, runDesc string) {
	if dir == "" {
		return
	}
	fr := trace.NewFlightRecorder(trace.FlightConfig{Dir: dir, Trace: tr, Host: host})
	fr.SetRunConfig(runDesc)
	fr.SetPoolCounters(comm.PoolCounters)
	trace.Arm(fr)
	log.Printf("flight recorder armed: bundles will land in %s (diagnose with: gluon-doctor %s)", dir, dir)
}

// slowProgram wraps a checkpointable program with a fixed per-round sleep,
// so a human running the kill/replace recipe has time to kill a rank.
type slowProgram struct {
	dsys.Program
	delay time.Duration
}

func (s *slowProgram) Round(f *bitset.Bitset) (*bitset.Bitset, error) {
	time.Sleep(s.delay)
	return s.Program.Round(f)
}

func (s *slowProgram) ExportState() ([]ckpt.Section, error) {
	return s.Program.(dsys.Checkpointable).ExportState()
}

func (s *slowProgram) ImportState(secs []ckpt.Section) error {
	return s.Program.(dsys.Checkpointable).ImportState(secs)
}

// runOneHost is multi-process mode: this process drives exactly one rank.
func runOneHost(host int, addrs []string, parts []*partition.Partition, csr *gluon.CSR, source uint32, wcfg *trace.WatchdogConfig, collect, traceOut, pmDir string, ckptOpts *ckpt.Options, restore, cold, rejoin bool, delay time.Duration) {
	if host >= len(addrs) {
		log.Fatalf("-host %d out of range for %d addrs", host, len(addrs))
	}
	hosts := len(addrs)
	prefix := fmt.Sprintf("host %d: ", host)

	var tr *trace.Trace
	if collect != "" || traceOut != "" {
		tr = trace.New(trace.Config{Label: fmt.Sprintf("tcp-cluster host %d/%d", host, hosts)})
	}
	armRecorder(pmDir, tr, host, fmt.Sprintf("tcp-cluster -host %d of %d", host, hosts))

	// Rendezvous with the other processes. The dial is bounded: a rank that
	// never launches fails the mesh with an error naming it. A replacement
	// host (-restore) instead dials into the already-established mesh with
	// the rejoin handshake; the survivors hold at the checkpoint rendezvous
	// until it arrives. A whole-cluster cold restart (-restore -cold-restore
	// on every rank) forms a fresh mesh the normal way and restores from
	// checkpoint once it is up.
	var ep *comm.TCPEndpoint
	var err error
	if restore && !cold {
		ep, err = comm.RejoinTCP(host, addrs, comm.DialConfig{Timeout: 30 * time.Second})
	} else {
		ep, err = comm.DialTCPConfig(host, addrs, comm.DialConfig{Timeout: 30 * time.Second})
	}
	if err != nil {
		log.Fatal(prefix, err)
	}
	defer ep.Close()

	if collect != "" {
		sh, err := trace.StartShipper(trace.ShipperConfig{Addr: collect, Trace: tr})
		if err != nil {
			log.Fatal(prefix, err)
		}
		log.Printf("%sshipping trace to %s (%v); watch live: gluon-top %s", prefix, collect, sh.Clock(), collect)
		trace.Armed().SetClock(sh.Clock())
		defer func() {
			if err := sh.Close(); err != nil {
				log.Printf("%strace shipper: %v", prefix, err)
			}
		}()
	}

	res, err := dsys.RunSingle(parts[host], ep, dsys.RunConfig{
		Hosts:         hosts,
		Policy:        partition.HVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
		Trace:         tr,
		Watchdog:      wcfg,
		Checkpoint:    ckptOpts,
		Restore:       restore,
		Rejoin:        rejoin,
	}, func(p *partition.Partition, g *igluon.Gluon) (dsys.Program, error) {
		prog, err := sssp.NewGalois(uint64(source), 0)(p, g)
		if err != nil || delay <= 0 {
			return prog, err
		}
		return &slowProgram{Program: prog, delay: delay}, nil
	})
	if err != nil {
		if pmDir != "" {
			log.Printf("%spostmortem bundles are under %s — diagnose with: gluon-doctor %s", prefix, pmDir, pmDir)
		}
		var pe *comm.PeerError
		if errors.As(err, &pe) {
			log.Fatalf("%scluster failed: host %d is dead: %v", prefix, pe.Host, err)
		}
		log.Fatal(prefix, err)
	}

	// The run converged: disarm before teardown. Ranks exit at their own
	// pace, so a faster peer's EOF during our verification below is an
	// orderly goodbye, not a death worth a postmortem bundle.
	trace.Arm(nil)

	// Each process can only check the masters it owns; together the
	// processes cover every node.
	want := ref.SSSP(csr, source)
	p := parts[host]
	for lid := uint32(0); lid < p.NumMasters; lid++ {
		gid := p.GID(lid)
		if float64(want[gid]) != res.Values[gid] {
			log.Fatalf("%snode %d: tcp run got %v, dijkstra got %d", prefix, gid, res.Values[gid], want[gid])
		}
	}
	writeTrace(tr, traceOut, prefix)
	fmt.Printf("%ssssp over TCP: rank %d of %d, %v, %d rounds, %d sync bytes sent; %d local masters verified ✓\n",
		prefix, host, hosts, res.Time, res.Rounds, res.TotalCommBytes, p.NumMasters)
}

// runDemo is the self-contained mode: every rank lives in this process.
func runDemo(addrs []string, parts []*partition.Partition, csr *gluon.CSR, source uint32, wcfg *trace.WatchdogConfig, collect, traceOut, pmDir string) {
	hosts := len(addrs)

	var tr *trace.Trace
	if collect != "" || traceOut != "" {
		tr = trace.New(trace.Config{Label: fmt.Sprintf("tcp-cluster demo %d hosts", hosts)})
	}
	armRecorder(pmDir, tr, 0, fmt.Sprintf("tcp-cluster demo, %d in-process ranks", hosts))

	// Bring up the TCP mesh on localhost. Mesh establishment is bounded: a
	// host that never comes up fails the dial with an error naming it,
	// instead of blocking Accept forever.
	endpoints := make([]comm.Transport, hosts)
	var wg sync.WaitGroup
	var dialErr error
	var mu sync.Mutex
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			ep, err := comm.DialTCPConfig(h, addrs, comm.DialConfig{Timeout: 10 * time.Second})
			if err != nil {
				mu.Lock()
				dialErr = err
				mu.Unlock()
				return
			}
			endpoints[h] = ep
		}(h)
	}
	wg.Wait()
	if dialErr != nil {
		log.Fatal(dialErr)
	}
	defer func() {
		for _, ep := range endpoints {
			if ep != nil {
				ep.Close()
			}
		}
	}()

	if collect != "" {
		sh, err := trace.StartShipper(trace.ShipperConfig{Addr: collect, Trace: tr})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("shipping trace to %s (%v); watch live: gluon-top %s", collect, sh.Clock(), collect)
		defer func() {
			if err := sh.Close(); err != nil {
				log.Printf("trace shipper: %v", err)
			}
		}()
	}

	res, err := dsys.RunWithTransports(parts, endpoints, dsys.RunConfig{
		Hosts:         hosts,
		Policy:        partition.HVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
		Trace:         tr,
		Watchdog:      wcfg,
	}, sssp.NewGalois(uint64(source), 0))
	if err != nil {
		// A host dying mid-run surfaces as a typed *comm.PeerError naming
		// the dead rank (the cluster fails loudly instead of hanging).
		var pe *comm.PeerError
		if errors.As(err, &pe) {
			log.Fatalf("cluster failed: host %d is dead: %v", pe.Host, err)
		}
		log.Fatal(err)
	}

	trace.Arm(nil) // converged: endpoint teardown below is not a crash

	want := ref.SSSP(csr, source)
	for i, w := range want {
		if float64(w) != res.Values[i] {
			log.Fatalf("node %d: tcp run got %v, dijkstra got %d", i, res.Values[i], w)
		}
	}
	var wire uint64
	for _, ep := range endpoints {
		wire += ep.Stats().BytesSent
	}
	writeTrace(tr, traceOut, "")
	fmt.Printf("sssp over TCP: %d hosts on localhost, %v, %d rounds\n", hosts, res.Time, res.Rounds)
	fmt.Printf("field-sync payload: %d bytes; total wire traffic incl. barriers: %d bytes\n",
		res.TotalCommBytes, wire)
	fmt.Println("results verified identical to sequential Dijkstra ✓")
}

func writeTrace(tr *trace.Trace, path, prefix string) {
	if tr == nil || path == "" {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		log.Fatal(prefix, err)
	}
	log.Printf("%swrote trace to %s", prefix, path)
}
