// TCP cluster: run a Gluon system over real sockets instead of the
// in-process hub. Each host gets its own TCP endpoint on localhost; the
// byte streams crossing the connections are exactly the payloads Gluon
// hands to MPI in the original system. The same binary could be launched
// as separate OS processes, one per host, each dialing the shared address
// list (this example keeps them in one process for a self-contained demo).
//
//	go run ./examples/tcp-cluster
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"gluon"
	"gluon/internal/algorithms/sssp"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

const hosts = 4

func main() {
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: 13, EdgeFactor: 8, Seed: 5, Weighted: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, true)
	if err != nil {
		log.Fatal(err)
	}
	source := csr.MaxOutDegreeNode()

	// Partition for 4 hosts with the hybrid vertex-cut.
	out := make([]uint32, numNodes)
	for u := uint32(0); u < csr.NumNodes(); u++ {
		out[u] = csr.OutDegree(u)
	}
	pol, err := partition.NewPolicy(partition.HVC, numNodes, hosts,
		partition.Options{OutDegrees: out, InDegrees: csr.InDegrees()})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		log.Fatal(err)
	}

	// Bring up the TCP mesh on localhost. Mesh establishment is bounded: a
	// host that never comes up fails the dial with an error naming it,
	// instead of blocking Accept forever.
	addrs := make([]string, hosts)
	for h := range addrs {
		addrs[h] = fmt.Sprintf("127.0.0.1:%d", 39200+h)
	}
	endpoints := make([]comm.Transport, hosts)
	var wg sync.WaitGroup
	var dialErr error
	var mu sync.Mutex
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			ep, err := comm.DialTCPConfig(h, addrs, comm.DialConfig{Timeout: 10 * time.Second})
			if err != nil {
				mu.Lock()
				dialErr = err
				mu.Unlock()
				return
			}
			endpoints[h] = ep
		}(h)
	}
	wg.Wait()
	if dialErr != nil {
		log.Fatal(dialErr)
	}
	defer func() {
		for _, ep := range endpoints {
			if ep != nil {
				ep.Close()
			}
		}
	}()

	res, err := dsys.RunWithTransports(parts, endpoints, dsys.RunConfig{
		Hosts:         hosts,
		Policy:        partition.HVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
	}, sssp.NewGalois(uint64(source), 0))
	if err != nil {
		// A host dying mid-run surfaces as a typed *comm.PeerError naming
		// the dead rank (the cluster fails loudly instead of hanging).
		var pe *comm.PeerError
		if errors.As(err, &pe) {
			log.Fatalf("cluster failed: host %d is dead: %v", pe.Host, err)
		}
		log.Fatal(err)
	}

	want := ref.SSSP(csr, source)
	for i, w := range want {
		if float64(w) != res.Values[i] {
			log.Fatalf("node %d: tcp run got %v, dijkstra got %d", i, res.Values[i], w)
		}
	}
	var wire uint64
	for _, ep := range endpoints {
		wire += ep.Stats().BytesSent
	}
	fmt.Printf("sssp over TCP: %d hosts on localhost, %v, %d rounds\n", hosts, res.Time, res.Rounds)
	fmt.Printf("field-sync payload: %d bytes; total wire traffic incl. barriers: %d bytes\n",
		res.TotalCommBytes, wire)
	fmt.Println("results verified identical to sequential Dijkstra ✓")
}
