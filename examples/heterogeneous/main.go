// Heterogeneous cluster: the Figure 1 scenario — some hosts run a CPU
// engine (Galois worklists), others run the device engine (IrGL-style bulk
// kernels), all coupled through the same Gluon substrate. The program
// factory picks an engine per host ID; Gluon neither knows nor cares which
// engine produced the field updates it synchronizes.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"gluon"
	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	coregluon "gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

func main() {
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: 14, EdgeFactor: 16, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, false)
	if err != nil {
		log.Fatal(err)
	}
	source := uint64(csr.MaxOutDegreeNode())

	// Hosts 0-1 are "CPU hosts" running the Galois engine; hosts 2-3 are
	// "GPU hosts" running the IrGL-style device engine. The factory closes
	// over both constructors and dispatches on the partition's host ID.
	cpuFactory := bfs.NewGalois(source, 0)
	gpuFactory := bfs.NewIrGL(source, 0)
	mixed := func(p *partition.Partition, g *coregluon.Gluon) (dsys.Program, error) {
		if p.HostID < 2 {
			return cpuFactory(p, g)
		}
		return gpuFactory(p, g)
	}

	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts:         4,
		Policy:        gluon.CVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
	}, mixed)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against sequential BFS: heterogeneity must not change results.
	want := ref.BFS(csr, uint32(source))
	for i, w := range want {
		if float64(w) != res.Values[i] {
			log.Fatalf("node %d: heterogeneous run got %v, sequential got %d", i, res.Values[i], w)
		}
	}
	fmt.Printf("heterogeneous bfs on %d nodes: 2 Galois hosts + 2 IrGL device hosts\n", numNodes)
	fmt.Printf("time=%v rounds=%d comm=%d bytes\n", res.Time, res.Rounds, res.TotalCommBytes)
	fmt.Println("results verified identical to sequential BFS ✓")
	for _, h := range res.Hosts {
		engine := "galois (CPU)"
		if h.Host >= 2 {
			engine = "irgl (device)"
		}
		fmt.Printf("  host %d [%s]: compute=%v sync=%v sent=%d bytes\n",
			h.Host, engine, h.ComputeTime, h.SyncTime, h.Gluon.BytesSent())
	}
}
