// Offline partitioning: real deployments partition once, write each host's
// partition to disk, and each host loads only its own file at startup —
// the workflow behind the paper's Table 2 timings. This example partitions
// a graph, saves the partitions, reloads them (as a separate process
// would), runs distributed sssp over the reloaded partitions, and verifies
// against Dijkstra.
//
//	go run ./examples/offline-partition
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gluon"
	"gluon/internal/algorithms/sssp"
	"gluon/internal/dsys"
	"gluon/internal/gio"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

const hosts = 4

func main() {
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: 13, EdgeFactor: 8, Seed: 6, Weighted: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, true)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]uint32, numNodes)
	for u := uint32(0); u < csr.NumNodes(); u++ {
		out[u] = csr.OutDegree(u)
	}

	// Phase 1 (offline): partition and save, one file per host.
	dir, err := os.MkdirTemp("", "gluon-parts-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: out, InDegrees: csr.InDegrees()})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		log.Fatal(err)
	}
	var onDisk int64
	for _, p := range parts {
		path := filepath.Join(dir, fmt.Sprintf("host%02d.glpt", p.HostID))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := gio.WritePartition(f, p); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		st, _ := os.Stat(path)
		onDisk += st.Size()
	}
	fmt.Printf("partitioned %d nodes / %d edges into %d files (%d KB) in %v\n",
		numNodes, len(edges), hosts, onDisk/1024, time.Since(start).Round(time.Millisecond))

	// Phase 2 (startup): each host loads its own partition.
	start = time.Now()
	loaded := make([]*partition.Partition, hosts)
	for h := 0; h < hosts; h++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("host%02d.glpt", h)))
		if err != nil {
			log.Fatal(err)
		}
		loaded[h], err = gio.ReadPartition(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reloaded %d partitions in %v\n", hosts, time.Since(start).Round(time.Millisecond))

	// Phase 3: run on the reloaded partitions and verify.
	source := csr.MaxOutDegreeNode()
	res, err := dsys.RunPartitioned(loaded, dsys.RunConfig{
		Hosts: hosts, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, sssp.NewGalois(uint64(source), 0))
	if err != nil {
		log.Fatal(err)
	}
	want := ref.SSSP(csr, source)
	for i, w := range want {
		if float64(w) != res.Values[i] {
			log.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
		}
	}
	fmt.Printf("sssp over reloaded partitions: %v, %d rounds, %d bytes\n",
		res.Time, res.Rounds, res.TotalCommBytes)
	fmt.Println("results verified identical to sequential Dijkstra ✓")
}
