// Quickstart: run distributed BFS with D-Galois on a generated scale-free
// graph across four simulated hosts, then inspect how much the Gluon
// communication optimizations saved compared to an unoptimized run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gluon"
)

func main() {
	// 1. Generate an RMAT graph: 2^14 nodes, average out-degree 16,
	//    graph500 probabilities.
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: 14, EdgeFactor: 16, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, false)
	if err != nil {
		log.Fatal(err)
	}
	source := uint64(csr.MaxOutDegreeNode())
	fmt.Printf("graph: %d nodes, %d edges; bfs from max-degree node %d\n",
		numNodes, len(edges), source)

	// 2. Run distributed BFS: 4 hosts, Cartesian vertex-cut partitioning,
	//    all Gluon optimizations on.
	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts:         4,
		Policy:        gluon.CVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
	}, gluon.NewBFS(gluon.DGalois, source, 0))
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	maxLevel := 0.0
	for _, v := range res.Values {
		if v != float64(^uint32(0)) {
			reached++
			if v > maxLevel {
				maxLevel = v
			}
		}
	}
	fmt.Printf("optimized:   %v, %d rounds, %d bytes communicated\n",
		res.Time, res.Rounds, res.TotalCommBytes)
	fmt.Printf("result: %d/%d nodes reached, eccentricity %d\n",
		reached, numNodes, int(maxLevel))

	// 3. Same run with the communication optimizations disabled — the
	//    gather-apply-scatter baseline with global IDs on the wire.
	unopt, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts:  4,
		Policy: gluon.CVC,
		Opt:    gluon.Unopt(),
	}, gluon.NewBFS(gluon.DGalois, source, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unoptimized: %v, %d rounds, %d bytes communicated\n",
		unopt.Time, unopt.Rounds, unopt.TotalCommBytes)
	fmt.Printf("Gluon's optimizations moved %.1fx fewer bytes\n",
		float64(unopt.TotalCommBytes)/float64(res.TotalCommBytes))
}
