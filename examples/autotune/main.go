// Autotune: the §3.3 payoff of decoupling applications from partitioning —
// since the same program runs under any policy, the runtime can probe all
// of them and pick the best for this graph, algorithm, and host count.
// This example tunes PageRank on two graphs with very different degree
// structure and shows the winner differing.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"gluon"
	"gluon/internal/autotune"
)

const hosts = 8

func main() {
	for _, kind := range []string{"rmat", "webcrawl"} {
		numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
			Kind: kind, Scale: 14, EdgeFactor: 16, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		factory := gluon.NewPageRank(gluon.DGalois, 1e-6, 0)

		choice, probes, err := autotune.Pick(numNodes, edges, autotune.Config{
			Hosts:       hosts,
			Opt:         gluon.Opt(),
			ProbeRounds: 5,
			Criterion:   autotune.MinVolume,
		}, factory)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s (%d nodes, %d edges, %d hosts) ==\n", kind, numNodes, len(edges), hosts)
		fmt.Printf("%-6s %12s %12s %8s\n", "policy", "probe vol", "probe time", "repl")
		for _, p := range probes {
			marker := " "
			if p.Policy == choice {
				marker = "*"
			}
			fmt.Printf("%-6s %12d %12v %7.2f %s\n",
				p.Policy, p.CommBytes, p.Time, p.ReplicationFactor, marker)
		}

		// Full run under the tuned policy.
		res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
			Hosts: hosts, Policy: choice, Opt: gluon.Opt(), MaxRounds: 50,
		}, factory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tuned full run (%s): %v, %d rounds, %d bytes\n\n",
			choice, res.Time, res.Rounds, res.TotalCommBytes)
	}
}
