// Social-network analysis: a realistic multi-algorithm pipeline on a
// twitter-shaped graph — the kind of workload the paper's introduction
// motivates. One partitioning of the follower graph is reused across four
// analyses, each with a different synchronization shape:
//
//	influence   PageRank        (pull: sum-reduce + broadcast)
//	community   connected components on the symmetrized graph (min-reduce)
//	resilience  k-core decomposition (reduce-only trims + broadcast deaths)
//	brokerage   betweenness from the top influencer (incl. the
//	            write-at-source/read-at-destination backward phase)
//
//	go run ./examples/social-network
package main

import (
	"fmt"
	"log"
	"sort"

	"gluon"
)

const (
	hosts = 6
	scale = 13
)

func main() {
	numNodes, follows, err := gluon.Generate(gluon.GraphConfig{
		Kind: "twitterlike", Scale: scale, EdgeFactor: 16, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower graph: %d users, %d follow edges, %d hosts, HVC partitioning\n\n",
		numNodes, len(follows), hosts)

	run := func(what string, edges []gluon.Edge, factory gluon.ProgramFactory, maxRounds int) *gluon.Result {
		res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
			Hosts:         hosts,
			Policy:        gluon.HVC,
			Opt:           gluon.Opt(),
			CollectValues: true,
			MaxRounds:     maxRounds,
		}, factory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %12v  %4d rounds  %10d bytes\n", what, res.Time, res.Rounds, res.TotalCommBytes)
		return res
	}

	// Influence: who would a recommendation engine surface?
	pr := run("influence", follows, gluon.NewPageRank(gluon.DGalois, 1e-8, 0), 100)
	top := topK(pr.Values, 3)
	fmt.Printf("            top influencers: %v\n\n", top)

	// Community: weakly connected components of the mutual-follow graph.
	sym := gluon.Symmetrize(follows)
	cc := run("community", sym, gluon.NewCC(gluon.DGalois, 0), 0)
	comps := map[float64]int{}
	for _, v := range cc.Values {
		comps[v]++
	}
	giant := 0
	for _, size := range comps {
		if size > giant {
			giant = size
		}
	}
	fmt.Printf("            %d communities; largest covers %.1f%% of users\n\n",
		len(comps), 100*float64(giant)/float64(numNodes))

	// Resilience: the 8-core — users embedded in dense mutual engagement.
	kc := run("resilience", sym, gluon.NewKCore(gluon.DGalois, 8, 0), 0)
	inCore := 0
	for _, v := range kc.Values {
		if v == 1 {
			inCore++
		}
	}
	fmt.Printf("            %d users (%.1f%%) in the 8-core\n\n",
		inCore, 100*float64(inCore)/float64(numNodes))

	// Brokerage: dependency centrality from the most prolific follower (the
	// max out-degree user — a PageRank-style influencer has high IN-degree
	// and may follow nobody, which would make every dependency zero).
	csr, err := gluon.BuildCSR(numNodes, follows, false)
	if err != nil {
		log.Fatal(err)
	}
	hub := csr.MaxOutDegreeNode()
	bc := run("brokerage", follows, gluon.NewBC(uint64(hub), 0), 100000)
	brokers := topK(bc.Values, 3)
	fmt.Printf("            top brokers from user %d: %v (δ=%.1f, %.1f, %.1f)\n",
		hub, brokers, bc.Values[brokers[0]], bc.Values[brokers[1]], bc.Values[brokers[2]])
}

// topK returns the indices of the k largest values.
func topK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
