package gluon_test

import (
	"fmt"
	"log"

	"gluon"
)

// ExampleRun demonstrates the quick-start flow: generate a graph, run
// distributed BFS on four simulated hosts under the Cartesian vertex-cut,
// and inspect the results. Everything is deterministic in the seed.
func ExampleRun() {
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, false)
	if err != nil {
		log.Fatal(err)
	}
	source := uint64(csr.MaxOutDegreeNode())

	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts:         4,
		Policy:        gluon.CVC,
		Opt:           gluon.Opt(),
		CollectValues: true,
	}, gluon.NewBFS(gluon.DGalois, source, 2))
	if err != nil {
		log.Fatal(err)
	}

	reached := 0
	for _, v := range res.Values {
		if v != float64(^uint32(0)) {
			reached++
		}
	}
	fmt.Printf("nodes: %d\n", numNodes)
	fmt.Printf("reached from source %d: %d\n", source, reached)
	fmt.Printf("communicated: %t\n", res.TotalCommBytes > 0)
	// Output:
	// nodes: 1024
	// reached from source 0: 698
	// communicated: true
}

// ExampleAutotunePolicy shows runtime policy selection (§3.3): probe every
// partitioning strategy with the actual program and use the winner.
func ExampleAutotunePolicy() {
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "webcrawl", Scale: 10, EdgeFactor: 8, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := gluon.AutotunePolicy(numNodes, edges, 4,
		gluon.NewPageRank(gluon.DGalois, 1e-6, 2))
	if err != nil {
		log.Fatal(err)
	}
	valid := map[gluon.PolicyKind]bool{
		gluon.OEC: true, gluon.IEC: true, gluon.CVC: true, gluon.HVC: true,
	}
	fmt.Println("picked a valid policy:", valid[policy])
	// Output:
	// picked a valid policy: true
}
