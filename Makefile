# Development targets. `make check` is the required gate before sending
# changes: formatting, vet, a full build, the race detector over every
# package (the sync pipeline overlaps encode workers with the receive loop,
# so gluon and comm must always pass under -race), the trace-overhead guard,
# and a traced smoke run analyzed by gluon-trace.

GO ?= go

.PHONY: check fmt vet build test race race-fault restore-gate bench sync-bench bench-pin perf perf-trend trace-guard trace-smoke watchdog-smoke doctor-smoke top-smoke

# trace-guard runs before the race gates: it measures wall time, and the
# race suites leave the machine hot enough to skew it.
check: fmt vet build trace-guard perf-trend trace-smoke watchdog-smoke doctor-smoke top-smoke race-fault restore-gate race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-tolerance gate: the transport and BSP-runner fault suites (peer
# death, injected faults, shutdown mid-collective) must pass under the race
# detector, uncached, on every check (DESIGN.md §4.2).
race-fault:
	$(GO) test -race -count=1 ./internal/comm/... ./internal/dsys/...

# Survivability gate: the crash matrix (a rank killed at every round
# boundary and mid-sync of a 3-host pr run, restored from checkpoint, with
# results pinned byte-identical to the fault-free golden), the live TCP
# kill/replace rejoin, and the buffer-pool leak audit under injected faults
# — all under the race detector, uncached (DESIGN.md §4.6).
restore-gate:
	$(GO) test -race -count=1 -run 'TestCrashMatrix|TestRejoinTCP|TestRestoreRequiresCheckpointable|TestPoolBalanceUnderFaults' ./internal/dsys/
	$(GO) test -race -count=1 ./internal/ckpt/

# Sync hot-path microbenchmark (BenchmarkSyncHotPath) straight from go test.
bench:
	$(GO) test -run=NONE -bench=SyncHotPath -benchmem ./internal/gluon/

# Run the sync microbenchmark at the pinned parameters and append it to the
# perfdb history (no snapshot write; use bench-pin to refresh BENCH_sync.json).
sync-bench:
	$(GO) run ./cmd/gluon-bench -sync-record -perfdb BENCH_history.jsonl -scale 12 -edgefactor 8 -seed 7 -workers 0

# Re-pin the BENCH_sync.json baseline in one step: take a fresh measurement
# into the perfdb history, then project the newest record for this machine
# back out as the snapshot (DESIGN.md §4.9).
bench-pin: sync-bench
	$(GO) run ./cmd/gluon-perf -db BENCH_history.jsonl -pin BENCH_sync.json

# Hot-path guard: the sync hot path with tracing disabled must stay within
# tolerance of the BENCH_sync.json baseline (DESIGN.md §4.3), gated across
# all three compression tiers — off (auto), static threshold (comp-static),
# and the adaptive CompressTuner policy (comp-adaptive) — plus the unopt
# wire format (DESIGN.md §4.5). The gate is the self-calibrating opt/unopt
# RATIO (DESIGN.md §4.9): machine speed cancels, so an unmodified checkout
# passes on any machine without re-pinning; allocs/op must never regress.
# Each run appends its measurement to BENCH_history.jsonl for gluon-perf.
trace-guard:
	$(GO) run ./cmd/gluon-bench -sync-guard BENCH_sync.json -guard-mode ratio -guard-tol 0.10 -perfdb BENCH_history.jsonl -scale 12 -edgefactor 8 -seed 7 -workers 0

# Trend smoke gate: build a short throwaway history at a small scale and run
# the gluon-perf regression check over it — proves the record → history →
# trend-analysis path end to end on every check. The lenient tolerance keeps
# this a plumbing gate, not a perf gate (trace-guard is the perf gate).
perf-trend:
	@rm -f /tmp/gluon-perf-trend.jsonl
	$(GO) run ./cmd/gluon-bench -sync-record -perfdb /tmp/gluon-perf-trend.jsonl -scale 10 -edgefactor 8 -seed 7 -workers 0 -sync-tiers auto,unopt -sync-hosts 2
	$(GO) run ./cmd/gluon-bench -sync-record -perfdb /tmp/gluon-perf-trend.jsonl -scale 10 -edgefactor 8 -seed 7 -workers 0 -sync-tiers auto,unopt -sync-hosts 2
	$(GO) run ./cmd/gluon-perf -db /tmp/gluon-perf-trend.jsonl -check -tol 0.5

# Trend tables over the committed history, grouped by machine fingerprint.
perf:
	$(GO) run ./cmd/gluon-perf -db BENCH_history.jsonl

# Watchdog smoke: a host deliberately stalled with FaultTransport delay
# injection must be named — host ID and phase — by the watchdog and
# escalated into a typed cluster failure before the BSP deadline fires
# (DESIGN.md §4.4).
watchdog-smoke:
	$(GO) test -count=1 -run 'TestWatchdog' ./internal/dsys/ ./internal/trace/

# Doctor smoke: a fault-injected 3-host run with the flight recorder armed
# must leave postmortem bundles that diagnose into the killed rank, the
# trigger, and the round — under the race detector (DESIGN.md §4.7).
doctor-smoke:
	$(GO) test -race -count=1 -run 'TestDoctorSmoke' ./internal/dsys/

# Top smoke: a traced in-process cluster shipped over the sideband with a
# programmatic live subscription attached (the gluon-top path) must observe
# nonzero round progress and emit a critical-path verdict, under the race
# detector (DESIGN.md §4.8).
top-smoke:
	$(GO) test -race -count=1 -run 'TestTopSmoke' ./internal/dsys/

# Trace smoke: record a 4-host BFS run, then run the analyzer over the
# export — proves the end-to-end trace path (emit, export, parse, tables).
trace-smoke:
	$(GO) run ./cmd/gluon-run -bench bfs -hosts 4 -scale 10 -edgefactor 8 -trace /tmp/gluon-trace-smoke.json
	$(GO) run ./cmd/gluon-trace /tmp/gluon-trace-smoke.json
