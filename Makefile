# Development targets. `make check` is the required gate before sending
# changes: formatting, vet, a full build, the race detector over every
# package (the sync pipeline overlaps encode workers with the receive loop,
# so gluon and comm must always pass under -race), the trace-overhead guard,
# and a traced smoke run analyzed by gluon-trace.

GO ?= go

.PHONY: check fmt vet build test race race-fault restore-gate bench sync-bench trace-guard trace-smoke watchdog-smoke doctor-smoke top-smoke

# trace-guard runs before the race gates: it measures wall time, and the
# race suites leave the machine hot enough to skew it.
check: fmt vet build trace-guard trace-smoke watchdog-smoke doctor-smoke top-smoke race-fault restore-gate race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-tolerance gate: the transport and BSP-runner fault suites (peer
# death, injected faults, shutdown mid-collective) must pass under the race
# detector, uncached, on every check (DESIGN.md §4.2).
race-fault:
	$(GO) test -race -count=1 ./internal/comm/... ./internal/dsys/...

# Survivability gate: the crash matrix (a rank killed at every round
# boundary and mid-sync of a 3-host pr run, restored from checkpoint, with
# results pinned byte-identical to the fault-free golden), the live TCP
# kill/replace rejoin, and the buffer-pool leak audit under injected faults
# — all under the race detector, uncached (DESIGN.md §4.6).
restore-gate:
	$(GO) test -race -count=1 -run 'TestCrashMatrix|TestRejoinTCP|TestRestoreRequiresCheckpointable|TestPoolBalanceUnderFaults' ./internal/dsys/
	$(GO) test -race -count=1 ./internal/ckpt/

# Sync hot-path microbenchmark (BenchmarkSyncHotPath) straight from go test.
bench:
	$(GO) test -run=NONE -bench=SyncHotPath -benchmem ./internal/gluon/

# Regenerate the BENCH_sync.json snapshot at the pinned parameters.
sync-bench:
	$(GO) run ./cmd/gluon-bench -sync-json BENCH_sync.json -scale 12 -edgefactor 8 -seed 7 -workers 0

# Hot-path guard: the sync hot path with tracing disabled must stay within
# 5% time and zero allocation regression of the BENCH_sync.json baseline
# (DESIGN.md §4.3), gated across all three compression tiers — off (auto),
# static threshold (comp-static), and the adaptive CompressTuner policy
# (comp-adaptive) — plus the unopt wire format (DESIGN.md §4.5). Same
# pinned parameters as sync-bench.
trace-guard:
	$(GO) run ./cmd/gluon-bench -sync-guard BENCH_sync.json -guard-tol 0.05 -scale 12 -edgefactor 8 -seed 7 -workers 0

# Watchdog smoke: a host deliberately stalled with FaultTransport delay
# injection must be named — host ID and phase — by the watchdog and
# escalated into a typed cluster failure before the BSP deadline fires
# (DESIGN.md §4.4).
watchdog-smoke:
	$(GO) test -count=1 -run 'TestWatchdog' ./internal/dsys/ ./internal/trace/

# Doctor smoke: a fault-injected 3-host run with the flight recorder armed
# must leave postmortem bundles that diagnose into the killed rank, the
# trigger, and the round — under the race detector (DESIGN.md §4.7).
doctor-smoke:
	$(GO) test -race -count=1 -run 'TestDoctorSmoke' ./internal/dsys/

# Top smoke: a traced in-process cluster shipped over the sideband with a
# programmatic live subscription attached (the gluon-top path) must observe
# nonzero round progress and emit a critical-path verdict, under the race
# detector (DESIGN.md §4.8).
top-smoke:
	$(GO) test -race -count=1 -run 'TestTopSmoke' ./internal/dsys/

# Trace smoke: record a 4-host BFS run, then run the analyzer over the
# export — proves the end-to-end trace path (emit, export, parse, tables).
trace-smoke:
	$(GO) run ./cmd/gluon-run -bench bfs -hosts 4 -scale 10 -edgefactor 8 -trace /tmp/gluon-trace-smoke.json
	$(GO) run ./cmd/gluon-trace /tmp/gluon-trace-smoke.json
