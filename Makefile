# Development targets. `make check` is the required gate before sending
# changes: formatting, vet, a full build, and the race detector over every
# package (the sync pipeline overlaps encode workers with the receive loop,
# so gluon and comm must always pass under -race).

GO ?= go

.PHONY: check fmt vet build test race race-fault bench sync-bench

check: fmt vet build race-fault race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-tolerance gate: the transport and BSP-runner fault suites (peer
# death, injected faults, shutdown mid-collective) must pass under the race
# detector, uncached, on every check (DESIGN.md §4.2).
race-fault:
	$(GO) test -race -count=1 ./internal/comm/... ./internal/dsys/...

# Sync hot-path microbenchmark (BenchmarkSyncHotPath) straight from go test.
bench:
	$(GO) test -run=NONE -bench=SyncHotPath -benchmem ./internal/gluon/

# Regenerate the BENCH_sync.json snapshot at the pinned parameters.
sync-bench:
	$(GO) run ./cmd/gluon-bench -sync-json BENCH_sync.json -scale 12 -edgefactor 8 -seed 7 -workers 0
