package gluon_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each iteration regenerates the full experiment at a reduced scale;
// cmd/gluon-bench runs the same code at presentation scale and prints the
// rows. Per-iteration reported metrics make the headline comparisons
// visible in -bench output:
//
//	unopt-bytes/osti-bytes   Figure 10's volume reduction
//	gemini-bytes/gluon-bytes Figure 8(b)'s baseline gap
//
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured outcomes.

import (
	"io"
	"testing"

	"gluon/internal/bench"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// benchParams sizes the experiments for benchmarking: large enough that
// communication dominates as in the paper, small enough for -bench runs.
func benchParams() bench.Params {
	p := bench.TestParams()
	p.Scale = 12
	p.EdgeFactor = 16
	p.Hosts = []int{1, 2, 4}
	p.Devices = []int{1, 2, 4}
	return p
}

func BenchmarkTable1InputProperties(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Partitioning(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Table2(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3BestSystems(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Table3(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4SingleHost(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Table4(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5DevicePolicies(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Table5(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Scaling(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure8(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9IrGLScaling(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure9(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10OptBreakdown(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.Figure10(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEncodings runs the adaptive-vs-fixed metadata encoding
// ablation (design choice behind §4.2).
func BenchmarkAblationEncodings(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.AblationEncodings(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSubsets runs the structural-subset ablation per policy
// (design choice behind §3.2).
func BenchmarkAblationSubsets(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := bench.AblationSubsets(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizationVolume reports the Figure 10 headline numbers as
// custom metrics: bytes moved per run under UNOPT and OSTI for bfs.
func BenchmarkOptimizationVolume(b *testing.B) {
	p := benchParams()
	wl, err := bench.NewWorkload("rmat", p, false)
	if err != nil {
		b.Fatal(err)
	}
	var unoptBytes, ostiBytes uint64
	for i := 0; i < b.N; i++ {
		mu, err := bench.RunSpec(bench.Spec{System: bench.DGalois, Benchmark: "bfs",
			Hosts: 4, Policy: partition.CVC, Opt: gluon.Unopt()}, wl, p)
		if err != nil {
			b.Fatal(err)
		}
		mo, err := bench.RunSpec(bench.Spec{System: bench.DGalois, Benchmark: "bfs",
			Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt()}, wl, p)
		if err != nil {
			b.Fatal(err)
		}
		unoptBytes, ostiBytes = mu.CommBytes, mo.CommBytes
	}
	b.ReportMetric(float64(unoptBytes), "unopt-bytes")
	b.ReportMetric(float64(ostiBytes), "osti-bytes")
	b.ReportMetric(float64(unoptBytes)/float64(ostiBytes), "volume-reduction-x")
}

// BenchmarkBaselineVolumeGap reports the Figure 8(b) headline: baseline
// bytes versus D-Galois bytes for bfs on 4 hosts.
func BenchmarkBaselineVolumeGap(b *testing.B) {
	p := benchParams()
	wl, err := bench.NewWorkload("rmat", p, false)
	if err != nil {
		b.Fatal(err)
	}
	var gemBytes, galBytes uint64
	for i := 0; i < b.N; i++ {
		mg, err := bench.RunSpec(bench.Spec{System: bench.Gemini, Benchmark: "bfs", Hosts: 4}, wl, p)
		if err != nil {
			b.Fatal(err)
		}
		md, err := bench.RunSpec(bench.Spec{System: bench.DGalois, Benchmark: "bfs",
			Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt()}, wl, p)
		if err != nil {
			b.Fatal(err)
		}
		gemBytes, galBytes = mg.CommBytes, md.CommBytes
	}
	b.ReportMetric(float64(gemBytes), "gemini-bytes")
	b.ReportMetric(float64(galBytes), "gluon-bytes")
	b.ReportMetric(float64(gemBytes)/float64(galBytes), "baseline-gap-x")
}
