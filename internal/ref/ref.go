// Package ref provides simple, obviously-correct sequential implementations
// of the benchmark algorithms. Tests compare every distributed system ×
// partitioning policy × optimization configuration against these oracles.
package ref

import (
	"container/heap"

	"gluon/internal/fields"
	"gluon/internal/graph"
)

// BFS returns each node's BFS level from source (Infinity if unreachable).
func BFS(g *graph.CSR, source uint32) []uint32 {
	n := g.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = fields.InfinityU32
	}
	if source >= n {
		return dist
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == fields.InfinityU32 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node uint32
	dist uint32
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// SSSP returns shortest-path distances from source via Dijkstra
// (weights must be non-negative; unweighted graphs count hops).
func SSSP(g *graph.CSR, source uint32) []uint32 {
	n := g.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = fields.InfinityU32
	}
	if source >= n {
		return dist
	}
	dist[source] = 0
	q := &pq{{node: source, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		nbrs := g.Neighbors(it.node)
		ws := g.EdgeWeights(it.node)
		for i, v := range nbrs {
			w := uint32(1)
			if ws != nil {
				w = ws[i]
			}
			nd := it.dist + w
			if nd < it.dist { // overflow saturation, mirrors sssp.relax
				nd = fields.InfinityU32 - 1
			}
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		}
	}
	return dist
}

// CC returns, for each node, the minimum node ID in its connected component,
// treating edges as undirected (matching label propagation on a
// symmetrized graph). Union-find with path halving.
func CC(g *graph.CSR) []uint32 {
	n := g.NumNodes()
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Root at the smaller ID so labels are min-IDs.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for u := uint32(0); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			union(u, v)
		}
	}
	out := make([]uint32, n)
	for u := uint32(0); u < n; u++ {
		out[u] = find(u)
	}
	return out
}

// PageRank runs the damped pull recurrence rank(v) = (1-alpha) +
// alpha·Σ rank(u)/outdeg(u) until no rank moves more than tol, up to
// maxIter rounds. It matches the distributed programs' formulation exactly
// (including termination), so results are comparable to within float
// reassociation error.
func PageRank(g *graph.CSR, alpha, tol float64, maxIter int) []float64 {
	n := g.NumNodes()
	in := g.Transpose()
	outdeg := make([]uint64, n)
	for u := uint32(0); u < n; u++ {
		outdeg[u] = uint64(g.OutDegree(u))
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 - alpha
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for v := uint32(0); v < n; v++ {
			var sum float64
			for _, u := range in.Neighbors(v) {
				sum += rank[u] / float64(outdeg[u])
			}
			next[v] = (1 - alpha) + alpha*sum
			if abs(next[v]-rank[v]) > tol {
				changed = true
			}
		}
		rank, next = next, rank
		if !changed {
			break
		}
	}
	return rank
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Symmetrize returns the edge list with every reverse edge added, the
// preprocessing cc workloads use.
func Symmetrize(edges []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return out
}
