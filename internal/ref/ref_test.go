package ref

import (
	"math"
	"testing"

	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/graph"
)

func line(t *testing.T) *graph.CSR {
	t.Helper()
	// 0 →(1) 1 →(2) 2 →(3) 3, plus shortcut 0 →(10) 3
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3},
		{Src: 0, Dst: 3, Weight: 10},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSLine(t *testing.T) {
	g := line(t)
	d := BFS(g, 0)
	want := []uint32{0, 1, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v, want %v", d, want)
		}
	}
	if d2 := BFS(g, 3); d2[0] != fields.InfinityU32 {
		t.Fatal("unreachable node got finite distance")
	}
}

func TestSSSPLine(t *testing.T) {
	g := line(t)
	d := SSSP(g, 0)
	want := []uint32{0, 1, 3, 6} // path through edges beats the shortcut 10
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v, want %v", d, want)
		}
	}
}

func TestSSSPOutOfRangeSource(t *testing.T) {
	g := line(t)
	d := SSSP(g, 99)
	for _, v := range d {
		if v != fields.InfinityU32 {
			t.Fatal("out-of-range source produced finite distances")
		}
	}
}

// TestBFSEqualsSSPWithUnitWeights: on a unit-weight graph the two agree.
func TestBFSEqualsSSSPWithUnitWeights(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 3}
	edges, _ := generate.Edges(cfg)
	for i := range edges {
		edges[i].Weight = 1
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, true)
	if err != nil {
		t.Fatal(err)
	}
	src := g.MaxOutDegreeNode()
	b := BFS(g, src)
	s := SSSP(g, src)
	for u := range b {
		if b[u] != s[u] {
			t.Fatalf("node %d: bfs %d, sssp %d", u, b[u], s[u])
		}
	}
}

func TestCCProperties(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; edges given directed, CC treats
	// them as undirected.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 4, Dst: 3},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	c := CC(g)
	if c[0] != 0 || c[1] != 0 || c[2] != 0 {
		t.Fatalf("component A labels %v", c)
	}
	if c[3] != 3 || c[4] != 3 {
		t.Fatalf("component B labels %v", c)
	}
}

// TestCCLabelsAreComponentMinima on a random symmetrized graph.
func TestCCLabelsAreComponentMinima(t *testing.T) {
	cfg := generate.Config{Kind: "random", Scale: 9, EdgeFactor: 2, Seed: 8}
	edges, _ := generate.Edges(cfg)
	sym := Symmetrize(edges)
	g, err := graph.FromEdges(cfg.NumNodes(), sym, false)
	if err != nil {
		t.Fatal(err)
	}
	c := CC(g)
	// Each node's label must be <= its ID and shared with all neighbors.
	for u := uint32(0); u < g.NumNodes(); u++ {
		if c[u] > u {
			t.Fatalf("node %d label %d above own ID", u, c[u])
		}
		for _, v := range g.Neighbors(u) {
			if c[u] != c[v] {
				t.Fatalf("edge (%d,%d) across labels %d,%d", u, v, c[u], c[v])
			}
		}
		// The label's node must itself carry that label (canonical).
		if c[c[u]] != c[u] {
			t.Fatalf("label %d not canonical", c[u])
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 2}
	edges, _ := generate.Edges(cfg)
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	rank := PageRank(g, 0.85, 1e-10, 200)
	for u, r := range rank {
		if r < 0.15-1e-9 {
			t.Fatalf("node %d rank %f below teleport mass", u, r)
		}
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("node %d rank %f", u, r)
		}
	}
	// A node with no in-edges keeps exactly the teleport mass.
	in := g.InDegrees()
	for u, d := range in {
		if d == 0 {
			if math.Abs(rank[u]-0.15) > 1e-12 {
				t.Fatalf("dangling-in node %d rank %f", u, rank[u])
			}
			break
		}
	}
}

func TestSymmetrize(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 2, Weight: 9}}
	sym := Symmetrize(edges)
	if len(sym) != 2 {
		t.Fatalf("len %d", len(sym))
	}
	if sym[1].Src != 2 || sym[1].Dst != 1 || sym[1].Weight != 9 {
		t.Fatalf("reverse edge %v", sym[1])
	}
}
