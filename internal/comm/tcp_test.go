package comm

import (
	"fmt"
	"sync"
	"testing"
)

// dialMesh brings up an n-host TCP mesh on loopback with the given base
// port and returns the endpoints.
func dialMesh(t *testing.T, n, basePort int) []*TCPEndpoint {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]*TCPEndpoint, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = DialTCP(i, addrs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial host %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func TestTCPSendRecv(t *testing.T) {
	eps := dialMesh(t, 3, 41200)
	if err := eps[0].Send(2, TagUser, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	got, err := eps[2].Recv(0, TagUser)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over the wire" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPSelfSend(t *testing.T) {
	eps := dialMesh(t, 2, 41210)
	eps[1].Send(1, TagUser, []byte("loop"))
	got, err := eps[1].Recv(1, TagUser)
	if err != nil || string(got) != "loop" {
		t.Fatalf("self-send over tcp: %q %v", got, err)
	}
}

func TestTCPFIFO(t *testing.T) {
	eps := dialMesh(t, 2, 41220)
	const msgs = 500
	go func() {
		for i := 0; i < msgs; i++ {
			eps[0].Send(1, TagUser, []byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < msgs; i++ {
		got, err := eps[1].Recv(0, TagUser)
		if err != nil {
			t.Fatal(err)
		}
		if int(got[0])|int(got[1])<<8 != i {
			t.Fatalf("message %d out of order", i)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	eps := dialMesh(t, 2, 41230)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	// Send owns (and may pool) the payload once called; compare against a copy.
	want := make([]byte, len(payload))
	copy(want, payload)
	go eps[0].Send(1, TagUser, payload)
	got, err := eps[1].Recv(0, TagUser)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestTCPCollectives(t *testing.T) {
	eps := dialMesh(t, 4, 41240)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for h := 0; h < 4; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			if err := Barrier(eps[h]); err != nil {
				errs[h] = err
				return
			}
			sum, err := AllReduceSum(eps[h], uint64(h))
			if err != nil {
				errs[h] = err
				return
			}
			if sum != 6 {
				errs[h] = fmt.Errorf("sum = %d", sum)
			}
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
}

func TestTCPCloseUnblocks(t *testing.T) {
	eps := dialMesh(t, 2, 41250)
	done := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv(1, TagUser)
		done <- err
	}()
	eps[0].Close()
	if err := <-done; err == nil {
		t.Fatal("Recv survived Close")
	}
	if err := eps[0].Send(1, TagUser, nil); err == nil {
		t.Fatal("Send succeeded after Close")
	}
}

func TestTCPBadRank(t *testing.T) {
	if _, err := DialTCP(5, []string{"127.0.0.1:41260"}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}
