package comm

import (
	"fmt"
	"sync"
	"time"

	"gluon/internal/trace"
)

// Hub connects n in-process endpoints. Hosts are goroutines; Send is a
// direct enqueue into the receiver's mailbox. This is the default transport
// for experiments: it carries the exact byte payloads Gluon would hand to
// MPI, so communication-volume measurements are faithful, while keeping
// whole clusters inside one test binary. An optional NetModel adds
// simulated per-link delivery costs for timing experiments.
type Hub struct {
	endpoints []*inprocEndpoint
	model     NetModel
	links     [][]linkState // links[from][to]
	closeOnce sync.Once
}

type linkState struct {
	mu        sync.Mutex
	busyUntil time.Time
}

// NewHub creates a hub with n endpoints and instant delivery.
func NewHub(n int) *Hub { return NewHubWithModel(n, NetModel{}) }

// NewHubWithModel creates a hub whose message deliveries pay the modeled
// link costs.
func NewHubWithModel(n int, m NetModel) *Hub {
	h := &Hub{endpoints: make([]*inprocEndpoint, n), model: m}
	if m.Enabled() {
		h.links = make([][]linkState, n)
		for i := range h.links {
			h.links[i] = make([]linkState, n)
		}
	}
	for i := 0; i < n; i++ {
		h.endpoints[i] = &inprocEndpoint{hub: h, id: i, mbox: newMailbox()}
	}
	return h
}

// deliveryTime reserves the link from→to for one message of the given size
// and returns when it arrives.
func (h *Hub) deliveryTime(from, to, size int) time.Time {
	l := &h.links[from][to]
	cost := h.model.cost(size)
	l.mu.Lock()
	defer l.mu.Unlock()
	start := time.Now()
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	l.busyUntil = start.Add(cost)
	return l.busyUntil
}

// Endpoint returns host i's transport.
func (h *Hub) Endpoint(i int) Transport { return h.endpoints[i] }

// Endpoints returns all transports, indexed by host ID.
func (h *Hub) Endpoints() []Transport {
	out := make([]Transport, len(h.endpoints))
	for i, e := range h.endpoints {
		out[i] = e
	}
	return out
}

// Close shuts down every endpoint.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		for _, e := range h.endpoints {
			e.mbox.close()
		}
	})
}

type inprocEndpoint struct {
	hub  *Hub
	id   int
	mbox *mailbox
	ctr  counters
	traceRef
}

func (e *inprocEndpoint) HostID() int   { return e.id }
func (e *inprocEndpoint) NumHosts() int { return len(e.hub.endpoints) }

func (e *inprocEndpoint) Send(to int, tag Tag, payload []byte) error {
	if to < 0 || to >= len(e.hub.endpoints) {
		// The payload transferred to the transport at the call boundary, so
		// even a rejected send must release it (ownership contract).
		PutBuf(payload)
		return fmt.Errorf("comm: send to host %d of %d", to, len(e.hub.endpoints))
	}
	if len(payload) > MaxFrameSize {
		PutBuf(payload)
		return fmt.Errorf("comm: send to host %d: %d-byte frame: %w", to, len(payload), ErrFrameTooLarge)
	}
	e.ctr.msgsSent.Add(1)
	e.ctr.bytesSent.Add(uint64(len(payload)))
	dst := e.hub.endpoints[to]
	dst.ctr.msgsRecvd.Add(1)
	dst.ctr.bytesRecvd.Add(uint64(len(payload)))
	if e.hub.model.Enabled() && to != e.id {
		dst.mbox.putAt(e.id, tag, payload, e.hub.deliveryTime(e.id, to, len(payload)))
	} else {
		dst.mbox.put(e.id, tag, payload)
	}
	traceFrame(e.rec(), trace.PhaseFrameSend, to, tag, len(payload))
	return nil
}

// SendVec implements Transport. In-process delivery hands the receiver one
// contiguous buffer, so a non-empty header is coalesced with the payload
// into a fresh pooled buffer here (the payload buffer is released); the
// nil-header case stays the zero-copy enqueue Send performs.
func (e *inprocEndpoint) SendVec(to int, tag Tag, header, payload []byte) error {
	if len(header) == 0 {
		return e.Send(to, tag, payload)
	}
	if n := len(header) + len(payload); n > MaxFrameSize {
		PutBuf(payload)
		return fmt.Errorf("comm: send to host %d: %d-byte frame: %w", to, n, ErrFrameTooLarge)
	}
	buf := GetBuf(len(header) + len(payload))
	copy(buf, header)
	copy(buf[len(header):], payload)
	PutBuf(payload)
	return e.Send(to, tag, buf)
}

func (e *inprocEndpoint) Recv(from int, tag Tag) ([]byte, error) {
	p, err := e.mbox.get(from, tag)
	if err == nil {
		traceFrame(e.rec(), trace.PhaseFrameRecv, from, tag, len(p))
	}
	return p, err
}

func (e *inprocEndpoint) RecvAny(tag Tag, from []int) (int, []byte, error) {
	h, p, err := e.mbox.getAny(tag, from)
	if err == nil {
		traceFrame(e.rec(), trace.PhaseFrameRecv, h, tag, len(p))
	}
	return h, p, err
}

func (e *inprocEndpoint) Stats() Stats { return e.ctr.snapshot() }

// FailPeer implements PeerFailer: it poisons this endpoint's mailbox for
// the given peer. In-process hosts are goroutines, so the transport cannot
// observe a peer "dying" on its own — the dsys runner (or a FaultTransport)
// calls this when a host fails, making the survivors' blocked receives
// return *PeerError instead of hanging.
func (e *inprocEndpoint) FailPeer(host int, err error) {
	traceFaultf(e.rec(), host, "peer declared dead: %v", err)
	crashDump(e.rec(), trace.TriggerDeadHost, e.id, host, err)
	e.mbox.poison(host, err)
}

// FlushAndCure implements Rejoiner (see the interface in comm.go): the
// checkpoint rendezvous uses it to drop rolled-back in-flight data and
// clear peer poisons once every host has announced HOLD.
func (e *inprocEndpoint) FlushAndCure() {
	e.mbox.flushAndCure()
}

// ConnGeneration implements Rejoiner: in-process links are never replaced.
func (e *inprocEndpoint) ConnGeneration(int) int { return 0 }

func (e *inprocEndpoint) Close() error {
	e.mbox.close()
	return nil
}
