package comm

// Checkpoint-rendezvous wire support (DESIGN.md §4.6). The rendezvous
// itself — who sends HOLD/RESUME when, and how the rollback epoch is
// agreed — lives in dsys; this file owns the frame format, the TCP-side
// HOLD interception, and the replacement-host handshake that re-forms the
// mesh around a restored rank.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Rejoin frame kinds, carried in the first payload byte on TagRejoin.
const (
	// RejoinHold announces "I am rolling back to a checkpoint; stop
	// trusting in-flight data from me and meet me at the rendezvous". The
	// frame carries the sender's newest complete on-disk epoch.
	RejoinHold byte = 1
	// RejoinResume announces "I have flushed stale state and cured my
	// mailbox; everything I send after this frame is post-rollback".
	RejoinResume byte = 2
	// RejoinHoldReply is a HOLD re-sent to a replacement host whose new
	// connection superseded the one the original HOLD was written to. It
	// carries the same epoch but, unlike RejoinHold, is NOT intercepted by
	// the TCP poison path: the receiver is already at the rendezvous, and
	// a duplicate arriving after its FlushAndCure must not re-poison the
	// cured peer.
	RejoinHoldReply byte = 3
)

const rejoinFrameLen = 9 // kind byte + epoch u64

// EncodeRejoinFrame builds a pooled HOLD/RESUME payload.
func EncodeRejoinFrame(kind byte, epoch uint64) []byte {
	p := GetBuf(rejoinFrameLen)
	p[0] = kind
	binary.LittleEndian.PutUint64(p[1:], epoch)
	return p
}

// DecodeRejoinFrame parses a TagRejoin payload (not releasing it).
func DecodeRejoinFrame(p []byte) (kind byte, epoch uint64, err error) {
	if len(p) != rejoinFrameLen {
		return 0, 0, fmt.Errorf("comm: rejoin frame is %d bytes, want %d", len(p), rejoinFrameLen)
	}
	k := p[0]
	if k != RejoinHold && k != RejoinResume && k != RejoinHoldReply {
		return 0, 0, fmt.Errorf("comm: unknown rejoin frame kind %d", k)
	}
	return k, binary.LittleEndian.Uint64(p[1:]), nil
}

// rejoinBit marks a rank handshake as a post-establishment rejoin dial
// rather than a mesh-formation dial. Mesh formation only ever carries
// ranks below the acceptor's id, so the bit is unambiguous.
const rejoinBit = uint32(1) << 31

// rejoinHandshakeTimeout bounds the rank read on an accepted rejoin
// connection; a half-open dialer must not wedge the accept loop.
const rejoinHandshakeTimeout = 10 * time.Second

// acceptRejoins runs for the life of the endpoint, accepting replacement
// hosts on the (still open) mesh listener. A replacement dials every
// survivor with rejoinBit|rank; the survivor installs the connection over
// the dead peer's slot and starts a fresh read loop. Poisons are NOT
// cleared here — that happens in FlushAndCure once the dsys rendezvous has
// collected HOLD frames from everyone — but the new read loop delivers the
// replacement's TagRejoin frames immediately (TagRejoin is exempt from
// poison fail-fast).
func (e *TCPEndpoint) acceptRejoins() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			// Closed endpoint (or a transient accept error after close).
			if e.closed.Load() {
				return
			}
			// Transient error on a live endpoint: keep accepting.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		conn.SetDeadline(time.Now().Add(rejoinHandshakeTimeout))
		var rank [4]byte
		if _, err := io.ReadFull(conn, rank[:]); err != nil {
			conn.Close()
			continue
		}
		raw := binary.LittleEndian.Uint32(rank[:])
		if raw&rejoinBit == 0 {
			// A stray mesh-formation dial arriving after establishment.
			conn.Close()
			continue
		}
		peer := int(raw &^ rejoinBit)
		if peer < 0 || peer >= len(e.addrs) || peer == e.id {
			conn.Close()
			continue
		}
		conn.SetDeadline(time.Time{})
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := e.conns[peer]
		c.mu.Lock()
		if old := c.conn; old != nil {
			// Sever the dead incarnation; its read loop exits (the peer is
			// already poisoned, so the duplicate poison is a no-op).
			old.Close()
		}
		c.conn = conn
		c.gen++
		c.mu.Unlock()
		traceFaultf(e.rec(), peer, "replacement connection accepted")
		e.wg.Add(1)
		go e.readLoop(peer, conn)
	}
}

// FlushAndCure implements Rejoiner (see comm.go).
func (e *TCPEndpoint) FlushAndCure() {
	e.mbox.flushAndCure()
}

// ConnGeneration implements Rejoiner: it returns how many times the link
// to peer has been replaced by a rejoining host. The rendezvous layer
// compares generations across its HOLD exchange — a send on a TCP
// connection whose remote has died can "succeed" into the socket buffer
// and silently vanish, so send errors cannot tell a host that its HOLD
// was lost; a generation bump can.
func (e *TCPEndpoint) ConnGeneration(peer int) int {
	if peer < 0 || peer >= len(e.conns) {
		return 0
	}
	c := e.conns[peer]
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// RejoinTCP builds the replacement host's endpoint of an existing n-host
// mesh: it listens on addrs[id] (the dead rank's address, so later
// replacements can find it) and dials every survivor with the rejoin
// handshake, reusing the DialTCPConfig hardening (deadline-bounded dial
// retries with backoff). The caller is expected to have loaded a
// checkpoint and to enter the dsys rendezvous immediately; survivors hold
// there until this endpoint's HOLD frames arrive.
func RejoinTCP(id int, addrs []string, cfg DialConfig) (*TCPEndpoint, error) {
	n := len(addrs)
	if id < 0 || id >= n {
		return nil, fmt.Errorf("comm: host id %d out of range [0,%d)", id, n)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)

	e := &TCPEndpoint{id: id, addrs: addrs, mbox: newMailbox(), conns: make([]*tcpConn, n)}
	for i := range e.conns {
		e.conns[i] = &tcpConn{}
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("comm: rejoin listen %s: %w", addrs[id], err)
	}
	e.listener = ln

	for i := 0; i < n; i++ {
		if i == id {
			continue
		}
		conn, err := dialRetry(addrs[i], deadline)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("comm: rejoin dial host %d (%s): %w", i, addrs[i], err)
		}
		conn.SetDeadline(deadline)
		var rank [4]byte
		binary.LittleEndian.PutUint32(rank[:], rejoinBit|uint32(id))
		if _, err := conn.Write(rank[:]); err != nil {
			conn.Close()
			e.Close()
			return nil, fmt.Errorf("comm: rejoin handshake to host %d: %w", i, err)
		}
		conn.SetDeadline(time.Time{})
		e.conns[i].mu.Lock()
		e.conns[i].conn = conn
		e.conns[i].mu.Unlock()
	}
	for i, c := range e.conns {
		if i == id || c.conn == nil {
			continue
		}
		e.wg.Add(1)
		go e.readLoop(i, c.conn)
	}
	e.wg.Add(1)
	go e.acceptRejoins()
	return e, nil
}
