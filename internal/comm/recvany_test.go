package comm

import (
	"testing"
	"time"
)

// TestRecvAnyOutOfOrder sends a large message from host 0 and a small one
// from host 1 under a bandwidth-limited NetModel, and asserts RecvAny hands
// back host 1's message first even though host 0 is listed first and sent
// first: completion order, not rank order.
func TestRecvAnyOutOfOrder(t *testing.T) {
	hub := NewHubWithModel(3, NetModel{Latency: time.Millisecond, Bandwidth: 1e7})
	defer hub.Close()

	big := make([]byte, 200_000) // ~21ms modeled transfer
	big[0] = 'B'
	small := []byte{'s'} // ~1ms modeled transfer
	if err := hub.Endpoint(0).Send(2, TagUser, big); err != nil {
		t.Fatal(err)
	}
	if err := hub.Endpoint(1).Send(2, TagUser, small); err != nil {
		t.Fatal(err)
	}

	rx := hub.Endpoint(2)
	from, p, err := rx.RecvAny(TagUser, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || len(p) != 1 || p[0] != 's' {
		t.Fatalf("first completion: from=%d len=%d, want the small message from host 1", from, len(p))
	}
	from, p, err = rx.RecvAny(TagUser, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 || len(p) != len(big) || p[0] != 'B' {
		t.Fatalf("second completion: from=%d len=%d, want the big message from host 0", from, len(p))
	}
}

// TestRecvAnyFIFOPerSender interleaves sequence-numbered streams from two
// senders and drains them with RecvAny, checking each sender's stream is
// still observed in send order.
func TestRecvAnyFIFOPerSender(t *testing.T) {
	hub := NewHub(3)
	defer hub.Close()

	const msgs = 200
	for i := 0; i < msgs; i++ {
		for src := 0; src < 2; src++ {
			if err := hub.Endpoint(src).Send(2, TagUser, []byte{byte(src), byte(i), byte(i >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	next := [2]int{}
	rx := hub.Endpoint(2)
	for n := 0; n < 2*msgs; n++ {
		from, p, err := rx.RecvAny(TagUser, nil)
		if err != nil {
			t.Fatal(err)
		}
		if int(p[0]) != from {
			t.Fatalf("message claims sender %d, transport says %d", p[0], from)
		}
		seq := int(p[1]) | int(p[2])<<8
		if seq != next[from] {
			t.Fatalf("sender %d: got seq %d, want %d", from, seq, next[from])
		}
		next[from]++
	}
	if next[0] != msgs || next[1] != msgs {
		t.Fatalf("drained %d+%d messages, want %d each", next[0], next[1], msgs)
	}
}

// TestRecvAnyPeerFilter checks the peer list is honored: a queued message
// from an unlisted sender is not returned, and remains retrievable later.
func TestRecvAnyPeerFilter(t *testing.T) {
	hub := NewHub(3)
	defer hub.Close()

	hub.Endpoint(0).Send(2, TagUser, []byte("from0"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		from, p, err := hub.Endpoint(2).RecvAny(TagUser, []int{1})
		if err != nil || from != 1 || string(p) != "from1" {
			t.Errorf("filtered RecvAny: from=%d payload=%q err=%v", from, p, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let RecvAny block past host 0's message
	hub.Endpoint(1).Send(2, TagUser, []byte("from1"))
	<-done

	p, err := hub.Endpoint(2).Recv(0, TagUser)
	if err != nil || string(p) != "from0" {
		t.Fatalf("host 0's message lost: %q %v", p, err)
	}
}

// TestRecvAnyTagIsolation checks RecvAny with a nil peer list only matches
// its own tag.
func TestRecvAnyTagIsolation(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()

	hub.Endpoint(0).Send(1, TagUser+1, []byte("other"))
	hub.Endpoint(0).Send(1, TagUser, []byte("mine"))
	from, p, err := hub.Endpoint(1).RecvAny(TagUser, nil)
	if err != nil || from != 0 || string(p) != "mine" {
		t.Fatalf("RecvAny crossed tags: from=%d payload=%q err=%v", from, p, err)
	}
}

// TestRecvAnyCloseUnblocks checks Close wakes a pending RecvAny with an
// error on the in-process transport.
func TestRecvAnyCloseUnblocks(t *testing.T) {
	hub := NewHub(2)
	done := make(chan error, 1)
	go func() {
		_, _, err := hub.Endpoint(1).RecvAny(TagUser, []int{0})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	hub.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RecvAny survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvAny still blocked after Close")
	}
}

// TestTCPRecvAny covers RecvAny over real sockets: it completes for
// whichever sender's message arrives first (no waiting on silent peers),
// preserves per-sender FIFO order, and reports the right sender.
func TestTCPRecvAny(t *testing.T) {
	eps := dialMesh(t, 3, 41270)

	// Host 1 sends while host 0 stays silent: RecvAny must complete without
	// host 0's message, which a fixed rank-order Recv(0) could not.
	if err := eps[1].Send(2, TagUser, []byte("eager")); err != nil {
		t.Fatal(err)
	}
	from, p, err := eps[2].RecvAny(TagUser, []int{0, 1})
	if err != nil || from != 1 || string(p) != "eager" {
		t.Fatalf("RecvAny: from=%d payload=%q err=%v", from, p, err)
	}

	// Interleaved numbered streams from both senders stay FIFO per sender.
	const msgs = 100
	for i := 0; i < msgs; i++ {
		if err := eps[0].Send(2, TagUser, []byte{0, byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := eps[1].Send(2, TagUser, []byte{1, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	next := [2]int{}
	for n := 0; n < 2*msgs; n++ {
		from, p, err := eps[2].RecvAny(TagUser, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if int(p[0]) != from {
			t.Fatalf("message claims sender %d, transport says %d", p[0], from)
		}
		if int(p[1]) != next[from] {
			t.Fatalf("sender %d: got seq %d, want %d", from, p[1], next[from])
		}
		next[from]++
	}
}

// TestTCPRecvAnyCloseUnblocks checks Close wakes a pending RecvAny with an
// error on the TCP transport.
func TestTCPRecvAnyCloseUnblocks(t *testing.T) {
	eps := dialMesh(t, 2, 41280)
	done := make(chan error, 1)
	go func() {
		_, _, err := eps[0].RecvAny(TagUser, []int{1})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	eps[0].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RecvAny survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvAny still blocked after Close")
	}
}

// TestBufPoolRoundTrip checks GetBuf/PutBuf size-class behavior.
func TestBufPoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 16} {
		b := GetBuf(n)
		if len(b) != n && n > 0 {
			t.Fatalf("GetBuf(%d) length %d", n, len(b))
		}
		if n <= 0 && b != nil {
			t.Fatalf("GetBuf(%d) = non-nil", n)
		}
		PutBuf(b)
		b2 := GetBuf(n)
		if len(b2) != n && n > 0 {
			t.Fatalf("re-GetBuf(%d) length %d", n, len(b2))
		}
	}
	// A pooled buffer must never be handed out shorter than requested.
	PutBuf(make([]byte, 100)) // capacity 100 files under class 64
	if b := GetBuf(100); len(b) != 100 {
		t.Fatalf("GetBuf(100) length %d", len(b))
	}
}
