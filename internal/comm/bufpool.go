package comm

// The process-wide payload buffer pool backing the transport release
// contract (see Transport). Senders build messages in GetBuf buffers; the
// party that finishes with a buffer — the TCP sender after its wire copy,
// the receiver of an in-process message after decoding — returns it with
// PutBuf. Buffers are pooled in power-of-two size classes so one giant
// message cannot pin memory for every small one that follows.

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool accounting pins the ownership contract in tests: with accounting on,
// every GetBuf increments gets and every PutBuf of a non-nil buffer
// increments puts, regardless of whether the buffer is actually pooled.
// A fault suite that ends with gets != puts has leaked (or double-freed) a
// payload on some error path. Off by default: two relaxed atomic adds are
// cheap but not free, and the hot path stays untouched when disabled.
var (
	poolAccounting atomic.Bool
	poolGets       atomic.Int64
	poolPuts       atomic.Int64
)

// SetPoolAccounting enables or disables get/put accounting, resetting the
// counters either way.
func SetPoolAccounting(on bool) {
	poolGets.Store(0)
	poolPuts.Store(0)
	poolAccounting.Store(on)
}

// PoolCounters returns the gets and puts recorded since accounting was
// last enabled.
func PoolCounters() (gets, puts int64) {
	return poolGets.Load(), poolPuts.Load()
}

const (
	// minBufClass is the smallest pooled class, 1<<minBufClass bytes.
	minBufClass = 6
	// maxBufClass caps pooled buffers at 1<<maxBufClass bytes; larger
	// buffers are allocated and collected normally.
	maxBufClass = 30
)

var bufPools [maxBufClass + 1]sync.Pool

// GetBuf returns a byte slice of length n, reusing a pooled buffer when one
// is available. The contents are unspecified: callers must overwrite every
// byte they send. n <= 0 returns nil.
func GetBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	if poolAccounting.Load() {
		poolGets.Add(1)
	}
	class := bufClass(n)
	if class > maxBufClass {
		return make([]byte, n)
	}
	if b, ok := bufPools[class].Get().(*[]byte); ok && b != nil {
		return (*b)[:n]
	}
	return make([]byte, n, 1<<class)
}

// PutBuf returns a buffer to the pool. Callers must not touch the slice (or
// any alias of it) afterwards. Nil, tiny, and oversized buffers are dropped.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	if poolAccounting.Load() {
		poolPuts.Add(1)
	}
	c := cap(b)
	if c < 1<<minBufClass {
		return
	}
	// File under the largest class the capacity fully covers, so GetBuf's
	// length request is always within capacity.
	class := bits.Len(uint(c)) - 1
	if class > maxBufClass {
		return
	}
	b = b[:c]
	bufPools[class].Put(&b)
}

// bufClass returns the smallest class whose buffers hold n bytes.
func bufClass(n int) int {
	class := bits.Len(uint(n - 1))
	if class < minBufClass {
		class = minBufClass
	}
	return class
}
