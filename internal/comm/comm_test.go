package comm

import (
	"fmt"
	"sync"
	"testing"
)

func TestInprocSendRecv(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	if err := a.Send(1, TagUser, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(0, TagUser)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestInprocFIFOPerTag(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	for i := 0; i < 100; i++ {
		if err := a.Send(1, TagUser, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := b.Recv(0, TagUser)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, got[0])
		}
	}
}

func TestInprocTagDemux(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	a.Send(1, TagUser+1, []byte("one"))
	a.Send(1, TagUser+2, []byte("two"))
	// Receive in reverse tag order.
	got2, _ := b.Recv(0, TagUser+2)
	got1, _ := b.Recv(0, TagUser+1)
	if string(got1) != "one" || string(got2) != "two" {
		t.Fatalf("demux wrong: %q %q", got1, got2)
	}
}

func TestInprocSelfSend(t *testing.T) {
	hub := NewHub(1)
	defer hub.Close()
	e := hub.Endpoint(0)
	if err := e.Send(0, TagUser, []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := e.Recv(0, TagUser)
	if err != nil || string(got) != "self" {
		t.Fatalf("self-send: %q %v", got, err)
	}
}

func TestInprocSendOutOfRange(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	if err := hub.Endpoint(0).Send(5, TagUser, nil); err == nil {
		t.Fatal("send out of range accepted")
	}
}

func TestInprocCloseUnblocksRecv(t *testing.T) {
	hub := NewHub(2)
	done := make(chan error, 1)
	go func() {
		_, err := hub.Endpoint(0).Recv(1, TagUser)
		done <- err
	}()
	hub.Close()
	if err := <-done; err == nil {
		t.Fatal("Recv returned nil after close")
	}
}

func TestStatsCounting(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	a.Send(1, TagUser, make([]byte, 10))
	a.Send(1, TagUser, make([]byte, 20))
	b.Recv(0, TagUser)
	b.Recv(0, TagUser)
	as, bs := a.Stats(), b.Stats()
	if as.MessagesSent != 2 || as.BytesSent != 30 {
		t.Fatalf("sender stats %+v", as)
	}
	if bs.MessagesRecvd != 2 || bs.BytesRecvd != 30 {
		t.Fatalf("receiver stats %+v", bs)
	}
}

func runCollective(t *testing.T, n int, fn func(tp Transport) error) {
	t.Helper()
	hub := NewHub(n)
	defer hub.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for h := 0; h < n; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			errs[h] = fn(hub.Endpoint(h))
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			var mu sync.Mutex
			phase := make([]int, n)
			runCollective(t, n, func(tp Transport) error {
				for round := 0; round < 5; round++ {
					mu.Lock()
					phase[tp.HostID()] = round
					// No host may be more than one barrier ahead.
					for h := 0; h < n; h++ {
						if phase[h] < round-1 || phase[h] > round+1 {
							mu.Unlock()
							return fmt.Errorf("round %d: host %d at phase %d", round, h, phase[h])
						}
					}
					mu.Unlock()
					if err := Barrier(tp); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		runCollective(t, n, func(tp Transport) error {
			got, err := AllReduceSum(tp, uint64(tp.HostID()+1))
			if err != nil {
				return err
			}
			want := uint64(n * (n + 1) / 2)
			if got != want {
				return fmt.Errorf("sum = %d, want %d", got, want)
			}
			return nil
		})
	}
}

func TestAllReduceMax(t *testing.T) {
	runCollective(t, 6, func(tp Transport) error {
		got, err := AllReduceMax(tp, uint64(tp.HostID()*10))
		if err != nil {
			return err
		}
		if got != 50 {
			return fmt.Errorf("max = %d, want 50", got)
		}
		return nil
	})
}

func TestAllReduceRepeated(t *testing.T) {
	// Consecutive collectives must not cross-contaminate.
	runCollective(t, 4, func(tp Transport) error {
		for round := uint64(0); round < 20; round++ {
			got, err := AllReduceSum(tp, round)
			if err != nil {
				return err
			}
			if got != 4*round {
				return fmt.Errorf("round %d: sum = %d", round, got)
			}
		}
		return nil
	})
}

func TestAllGather(t *testing.T) {
	runCollective(t, 5, func(tp Transport) error {
		mine := []byte{byte(tp.HostID())}
		all, err := AllGather(tp, mine)
		if err != nil {
			return err
		}
		for h := 0; h < 5; h++ {
			if len(all[h]) != 1 || all[h][0] != byte(h) {
				return fmt.Errorf("gathered[%d] = %v", h, all[h])
			}
		}
		return nil
	})
}

func TestConcurrentSenders(t *testing.T) {
	hub := NewHub(3)
	defer hub.Close()
	var wg sync.WaitGroup
	const msgs = 200
	for src := 0; src < 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				hub.Endpoint(src).Send(2, TagUser, []byte{byte(src), byte(i)})
			}
		}(src)
	}
	recv := hub.Endpoint(2)
	for src := 0; src < 2; src++ {
		for i := 0; i < msgs; i++ {
			got, err := recv.Recv(src, TagUser)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != byte(src) || got[1] != byte(i) {
				t.Fatalf("from %d msg %d: got %v", src, i, got)
			}
		}
	}
	wg.Wait()
}

func BenchmarkInprocRoundTrip(b *testing.B) {
	hub := NewHub(2)
	defer hub.Close()
	a, c := hub.Endpoint(0), hub.Endpoint(1)
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(1, TagUser, payload)
		c.Recv(0, TagUser)
	}
}

func BenchmarkBarrier8(b *testing.B) {
	hub := NewHub(8)
	defer hub.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for h := 0; h < 8; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				Barrier(hub.Endpoint(h))
			}(h)
		}
		wg.Wait()
	}
}
