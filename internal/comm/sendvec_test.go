package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"gluon/internal/trace"
)

// Vectored-send contract tests: SendVec delivers one contiguous message,
// oversized frames fail at send time with ErrFrameTooLarge (no poisoning),
// and the TCP self-send fast path emits the same frame trace instants a
// wire frame would.

func TestTCPSendVecWire(t *testing.T) {
	eps := dialMesh(t, 2, 41300)
	hdr := []byte{0xAA, 0xBB, 0xCC}
	payload := GetBuf(5)
	copy(payload, "hello")
	if err := eps[0].SendVec(1, TagUser, hdr, payload); err != nil {
		t.Fatal(err)
	}
	// The header slice stays caller-owned after SendVec returns.
	if !bytes.Equal(hdr, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("header mutated by SendVec: %x", hdr)
	}
	got, err := eps[1].Recv(0, TagUser)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xAA, 0xBB, 0xCC, 'h', 'e', 'l', 'l', 'o'}) {
		t.Fatalf("receiver saw %x, want contiguous header+payload", got)
	}
	st := eps[0].Stats()
	if st.MessagesSent != 1 || st.BytesSent != 8 {
		t.Fatalf("sender stats %+v, want 1 msg / 8 bytes", st)
	}
}

func TestTCPSendVecSelf(t *testing.T) {
	eps := dialMesh(t, 2, 41310)
	payload := GetBuf(3)
	copy(payload, "oop")
	if err := eps[0].SendVec(0, TagUser, []byte("l"), payload); err != nil {
		t.Fatal(err)
	}
	got, err := eps[0].Recv(0, TagUser)
	if err != nil || string(got) != "loop" {
		t.Fatalf("self SendVec: %q %v", got, err)
	}
}

func TestInprocSendVec(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	payload := GetBuf(4)
	copy(payload, "body")
	if err := a.SendVec(1, TagUser, []byte("hd:"), payload); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(0, TagUser)
	if err != nil || string(got) != "hd:body" {
		t.Fatalf("inproc SendVec: %q %v", got, err)
	}
	// Empty header: the zero-copy delegation to Send.
	p2 := GetBuf(4)
	copy(p2, "bare")
	if err := a.SendVec(1, TagUser, nil, p2); err != nil {
		t.Fatal(err)
	}
	got, err = b.Recv(0, TagUser)
	if err != nil || string(got) != "bare" {
		t.Fatalf("inproc SendVec nil header: %q %v", got, err)
	}
}

// TestTCPSelfSendFrameTracing pins the self-send fast-path fix: loopback
// frames must appear in frame-level timelines with both the send and recv
// instants, exactly like a frame that crossed a socket.
func TestTCPSelfSendFrameTracing(t *testing.T) {
	eps := dialMesh(t, 2, 41320)
	tr := trace.New(trace.Config{})
	eps[0].SetTrace(tr.Recorder(0))

	if err := eps[0].Send(0, TagUser, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Recv(0, TagUser); err != nil {
		t.Fatal(err)
	}
	events, _ := tr.Snapshot()
	sends := collectPhase(events, trace.PhaseFrameSend)
	recvs := collectPhase(events, trace.PhaseFrameRecv)
	if len(sends) != 1 || len(recvs) != 1 {
		t.Fatalf("self-send emitted %d frame-send / %d frame-recv events, want 1/1",
			len(sends), len(recvs))
	}
	if s := sends[0]; s.Peer != 0 || s.Value != 4 || s.Field != uint32(TagUser) {
		t.Errorf("self frame-send wrong: %+v", s)
	}
	if r := recvs[0]; r.Peer != 0 || r.Value != 4 {
		t.Errorf("self frame-recv wrong: %+v", r)
	}

	// The vectored self path traces too.
	payload := GetBuf(2)
	copy(payload, "ab")
	if err := eps[0].SendVec(0, TagUser, []byte("x"), payload); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Recv(0, TagUser); err != nil {
		t.Fatal(err)
	}
	events, _ = tr.Snapshot()
	if sends := collectPhase(events, trace.PhaseFrameSend); len(sends) != 2 {
		t.Fatalf("vectored self-send not traced: %d frame-send events, want 2", len(sends))
	}
}

// TestSendTooLarge: both transports reject oversized frames at send time
// with the typed error, without poisoning the peer — the link stays usable.
func TestSendTooLarge(t *testing.T) {
	huge := make([]byte, MaxFrameSize+1)

	t.Run("tcp", func(t *testing.T) {
		eps := dialMesh(t, 2, 41330)
		if err := eps[0].Send(1, TagUser, huge); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
		var pe *PeerError
		if err := eps[0].Send(1, TagUser, huge); errors.As(err, &pe) {
			t.Fatalf("oversize rejection poisoned the peer: %v", err)
		}
		// The link survived: a normal message still goes through.
		if err := eps[0].Send(1, TagUser, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if got, err := eps[1].Recv(0, TagUser); err != nil || string(got) != "ok" {
			t.Fatalf("link unusable after oversize rejection: %q %v", got, err)
		}
	})

	t.Run("tcp-self", func(t *testing.T) {
		eps := dialMesh(t, 2, 41340)
		if err := eps[0].Send(0, TagUser, huge); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
	})

	t.Run("tcp-vectored", func(t *testing.T) {
		// Header plus payload together cross the limit even though neither
		// does alone.
		eps := dialMesh(t, 2, 41350)
		err := eps[0].SendVec(1, TagUser, huge[:16], huge[:MaxFrameSize-8])
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge on combined overflow, got %v", err)
		}
	})

	t.Run("inproc", func(t *testing.T) {
		hub := NewHub(2)
		defer hub.Close()
		a := hub.Endpoint(0)
		if err := a.Send(1, TagUser, huge); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
		if err := a.SendVec(1, TagUser, huge[:16], huge[:MaxFrameSize-8]); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge on vectored overflow, got %v", err)
		}
		if err := a.Send(1, TagUser, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if got, err := hub.Endpoint(1).Recv(0, TagUser); err != nil || string(got) != "ok" {
			t.Fatalf("hub unusable after oversize rejection: %q %v", got, err)
		}
	})
}

// TestTCPPartialVectoredFrame kills the connection mid-frame — after the
// 8-byte frame header but before the payload — and asserts the receiver
// detects the truncation and poisons the sender instead of waiting forever.
// This is the failure a vectored write split by a dying link produces.
func TestTCPPartialVectoredFrame(t *testing.T) {
	eps := dialMesh(t, 2, 41360)
	c := eps[0].conns[1]
	c.mu.Lock()
	// Forge a frame header promising 100 payload bytes, then sever the link.
	hdr := make([]byte, tcpHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(TagUser))
	binary.LittleEndian.PutUint32(hdr[4:], 100)
	if _, err := c.conn.Write(hdr); err != nil {
		c.mu.Unlock()
		t.Fatal(err)
	}
	c.conn.Close()
	c.mu.Unlock()

	if _, err := eps[1].Recv(0, TagUser); err == nil {
		t.Fatal("receiver accepted a truncated vectored frame")
	} else {
		var pe *PeerError
		if !errors.As(err, &pe) || pe.Host != 0 {
			t.Fatalf("want *PeerError naming host 0, got %v", err)
		}
	}
}

// TestFaultTransportTruncateVecSend: the injected mid-writev death — header
// flushed, payload lost — fails the send with ErrTruncatedFrame and marks
// the peer dead, modelling a vectored write split by a crash.
func TestFaultTransportTruncateVecSend(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	ft := NewFaultTransport(hub.Endpoint(0), FaultConfig{TruncateVecSendAfter: 2})

	// Plain sends and nil-header SendVecs never count toward the trigger.
	if err := ft.Send(1, TagUser, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if err := ft.SendVec(1, TagUser, nil, []byte("bare")); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plain", "bare"} {
		if got, err := hub.Endpoint(1).Recv(0, TagUser); err != nil || string(got) != want {
			t.Fatalf("want %q, got %q %v", want, got, err)
		}
	}
	// First vectored send passes intact...
	if err := ft.SendVec(1, TagUser, []byte("h1"), []byte("p1")); err != nil {
		t.Fatal(err)
	}
	if got, err := hub.Endpoint(1).Recv(0, TagUser); err != nil || string(got) != "h1p1" {
		t.Fatalf("pre-fault vectored send: %q %v", got, err)
	}
	// ...the second dies mid-frame.
	err := ft.SendVec(1, TagUser, []byte("h2"), []byte("p2"))
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("want ErrTruncatedFrame, got %v", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Host != 1 {
		t.Fatalf("want *PeerError naming host 1, got %v", err)
	}
	// The destination is poisoned on the wrapped transport: receives
	// involving it fail immediately instead of waiting on the dead link.
	if _, err := ft.Recv(1, TagUser); !errors.As(err, &pe) || pe.Host != 1 {
		t.Fatalf("peer not poisoned after injected truncation: %v", err)
	}
}
