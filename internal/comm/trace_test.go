package comm

import (
	"errors"
	"strings"
	"testing"

	"gluon/internal/trace"
)

// hasFault reports whether some fault event targets peer and mentions substr.
func hasFault(faults []trace.Event, peer int32, substr string) bool {
	for _, f := range faults {
		if f.Peer == peer && strings.Contains(f.Detail, substr) {
			return true
		}
	}
	return false
}

// collectPhase filters a snapshot to one phase.
func collectPhase(events []trace.Event, p trace.Phase) []trace.Event {
	var out []trace.Event
	for _, e := range events {
		if e.Phase == p {
			out = append(out, e)
		}
	}
	return out
}

// TestInprocFrameTracing: the in-process endpoints emit one frame-send and
// one frame-recv instant per message, tagged with peer, tag, and length.
func TestInprocFrameTracing(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	tr := trace.New(trace.Config{})
	a.(TraceCarrier).SetTrace(tr.Recorder(0))
	b.(TraceCarrier).SetTrace(tr.Recorder(1))

	if err := a.Send(1, TagUser, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0, TagUser); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, TagUser, []byte("any")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RecvAny(TagUser, []int{0}); err != nil {
		t.Fatal(err)
	}

	events, _ := tr.Snapshot()
	sends := collectPhase(events, trace.PhaseFrameSend)
	recvs := collectPhase(events, trace.PhaseFrameRecv)
	if len(sends) != 2 || len(recvs) != 2 {
		t.Fatalf("got %d frame-send / %d frame-recv events, want 2/2", len(sends), len(recvs))
	}
	if s := sends[0]; s.Host != 0 || s.Peer != 1 || s.Field != uint32(TagUser) || s.Value != 5 {
		t.Errorf("frame-send wrong: %+v", s)
	}
	if r := recvs[0]; r.Host != 1 || r.Peer != 0 || r.Value != 5 {
		t.Errorf("frame-recv wrong: %+v", r)
	}
}

// TestInprocFailPeerTracing: declaring a peer dead leaves a fault instant in
// the timeline.
func TestInprocFailPeerTracing(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	a := hub.Endpoint(0)
	tr := trace.New(trace.Config{})
	a.(TraceCarrier).SetTrace(tr.Recorder(0))

	a.(PeerFailer).FailPeer(1, errors.New("lost heartbeat"))
	events, _ := tr.Snapshot()
	faults := collectPhase(events, trace.PhaseFault)
	if len(faults) != 1 {
		t.Fatalf("got %d fault events, want 1", len(faults))
	}
	f := faults[0]
	if f.Peer != 1 || !strings.Contains(f.Detail, "peer declared dead") || !strings.Contains(f.Detail, "lost heartbeat") {
		t.Errorf("fault event wrong: %+v", f)
	}
}

// TestFaultTransportTracing: each injected fault kind (kill, delay,
// truncate) leaves a fault instant naming what was injected, and the
// recorder passes through to the wrapped endpoint's frame events.
func TestFaultTransportTracing(t *testing.T) {
	t.Run("kill", func(t *testing.T) {
		hub := NewHub(2)
		defer hub.Close()
		ft := NewFaultTransport(hub.Endpoint(0), FaultConfig{KillAfterSends: 1, KillPeer: 1})
		tr := trace.New(trace.Config{})
		ft.SetTrace(tr.Recorder(0))

		if err := ft.Send(1, TagUser, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := ft.Send(1, TagUser, []byte("dropped")); err == nil {
			t.Fatal("send past kill threshold succeeded")
		}
		// The injection is recorded, and so is the dead-peer declaration it
		// triggers on the wrapped endpoint — the whole cascade is visible.
		events, _ := tr.Snapshot()
		faults := collectPhase(events, trace.PhaseFault)
		if !hasFault(faults, 1, "injected kill after 1 sends") {
			t.Errorf("kill injection not recorded: %+v", faults)
		}
		if !hasFault(faults, 1, "peer declared dead") {
			t.Errorf("cascaded dead-peer declaration not recorded: %+v", faults)
		}
		// The surviving send crossed the wrapped endpoint with the same
		// recorder attached.
		if sends := collectPhase(events, trace.PhaseFrameSend); len(sends) != 1 {
			t.Errorf("got %d frame-send events through the wrapper, want 1", len(sends))
		}
	})

	t.Run("delay", func(t *testing.T) {
		hub := NewHub(2)
		defer hub.Close()
		ft := NewFaultTransport(hub.Endpoint(0), FaultConfig{DelayEvery: 2, Delay: 1})
		tr := trace.New(trace.Config{})
		ft.SetTrace(tr.Recorder(0))

		for i := 0; i < 4; i++ {
			if err := ft.Send(1, TagUser, []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
		events, _ := tr.Snapshot()
		faults := collectPhase(events, trace.PhaseFault)
		if len(faults) != 2 {
			t.Fatalf("got %d delay fault events, want 2", len(faults))
		}
		if !strings.Contains(faults[0].Detail, "injected delay") {
			t.Errorf("delay fault detail wrong: %+v", faults[0])
		}
	})

	t.Run("truncate", func(t *testing.T) {
		hub := NewHub(2)
		defer hub.Close()
		ft := NewFaultTransport(hub.Endpoint(1), FaultConfig{TruncateRecvAfter: 1})
		tr := trace.New(trace.Config{})
		ft.SetTrace(tr.Recorder(1))

		if err := hub.Endpoint(0).Send(1, TagUser, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		if _, err := ft.Recv(0, TagUser); !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("want ErrTruncatedFrame, got %v", err)
		}
		events, _ := tr.Snapshot()
		faults := collectPhase(events, trace.PhaseFault)
		if !hasFault(faults, 0, "injected truncated frame (6 bytes discarded)") {
			t.Errorf("truncate injection not recorded: %+v", faults)
		}
	})
}

// TestTCPFrameAndFaultTracing: the TCP endpoints emit the same frame
// instants and record poisonings, with the recorder attachable after the
// read loops are already running.
func TestTCPFrameAndFaultTracing(t *testing.T) {
	eps := dialMesh(t, 2, 42180)
	tr := trace.New(trace.Config{})
	for i, e := range eps {
		e.SetTrace(tr.Recorder(i))
	}
	if err := eps[0].Send(1, TagUser, []byte("wire")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[1].Recv(0, TagUser); err != nil {
		t.Fatal(err)
	}
	eps[1].FailPeer(0, errors.New("gone"))
	events, _ := tr.Snapshot()
	sends := collectPhase(events, trace.PhaseFrameSend)
	recvs := collectPhase(events, trace.PhaseFrameRecv)
	if len(sends) != 1 || sends[0].Host != 0 || sends[0].Value != 4 {
		t.Errorf("tcp frame-send wrong: %+v", sends)
	}
	if len(recvs) != 1 || recvs[0].Host != 1 || recvs[0].Peer != 0 {
		t.Errorf("tcp frame-recv wrong: %+v", recvs)
	}
	// FailPeer records the declaration; severing the link may also surface a
	// poisoning from the read loop, so look for the declaration specifically.
	declared := false
	for _, f := range collectPhase(events, trace.PhaseFault) {
		if f.Peer == 0 && strings.Contains(f.Detail, "peer declared dead") {
			declared = true
		}
	}
	if !declared {
		t.Errorf("no dead-peer declaration fault event: %+v", events)
	}
}
