package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gluon/internal/trace"
)

// TCPEndpoint is a Transport over real sockets. Each endpoint listens on an
// address; a full mesh of connections is established at dial time. The wire
// format per message is an 8-byte header — tag uint32, length uint32,
// little-endian — followed by the payload. The sender's rank is implicit in
// the connection (each conn carries exactly one peer pair, established by
// the rank handshake at dial time).
//
// It exists so clusters of separate OS processes can run Gluon systems (see
// examples/tcp-cluster); functionally it is interchangeable with Hub.
//
// Fault behavior: when a connection dies or delivers a malformed frame, the
// peer is poisoned — pending and future Recv/RecvAny involving it return a
// *PeerError naming the host — and Sends to it fail the same way. The rest
// of the mesh keeps working, so the layer above decides whether one dead
// peer is fatal (for BSP it always is, and dsys propagates the failure).
type TCPEndpoint struct {
	id    int
	addrs []string
	mbox  *mailbox
	ctr   counters
	traceRef

	conns    []*tcpConn // conns[i] carries traffic to/from host i; conns[id] unused
	listener net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// poison marks a peer dead on the mailbox, emitting a fault trace event so
// fault-suite runs produce a readable timeline. Organic poisonings (a lost
// connection, a malformed frame) additionally freeze a postmortem bundle
// when a flight recorder is armed; a rejoin hold is an orderly rendezvous,
// not a failure, and dumps nothing.
func (e *TCPEndpoint) poison(from int, err error) {
	traceFaultf(e.rec(), from, "peer poisoned: %v", err)
	if !errors.Is(err, ErrRejoinHold) {
		crashDump(e.rec(), trace.TriggerPeerPoison, e.id, from, err)
	}
	e.mbox.poison(from, err)
}

// tcpConn is one peer link. Writes are serialized per connection — not per
// endpoint — so one slow peer never blocks sends to the others. The hdr and
// vec fields are per-conn write scratch, reused under mu so the vectored
// send path allocates nothing: vec aliases vecArr, whose slots are cleared
// after every write so the conn never pins a released payload buffer.
type tcpConn struct {
	mu     sync.Mutex
	conn   net.Conn // nil until the mesh handshake installs it
	gen    int      // bumped when acceptRejoins replaces conn (see ConnGeneration)
	hdr    [tcpHeaderLen]byte
	vecArr [3][]byte // frame header + optional caller header + payload
	vec    net.Buffers
}

const tcpHeaderLen = 8 // tag uint32 + length uint32

// MaxFrameSize bounds the payload length a TCPEndpoint will accept in one
// frame. A decoded length above it marks the frame malformed and poisons the
// peer instead of letting a corrupt (or hostile) header drive an arbitrary
// allocation.
const MaxFrameSize = 1 << 30

// DefaultDialTimeout bounds mesh establishment when DialConfig.Timeout is
// zero. Generous, because higher-ranked peers legitimately start later; the
// point is to turn "a peer never came up" into an error instead of an
// unbounded hang.
const DefaultDialTimeout = 30 * time.Second

// DialConfig tunes TCP mesh establishment.
type DialConfig struct {
	// Timeout bounds the whole mesh establishment — dialing higher-ranked
	// peers (with backoff retries) and accepting lower-ranked ones,
	// handshakes included. A peer that never appears fails the dial with an
	// error naming it, instead of blocking Accept forever. Zero means
	// DefaultDialTimeout.
	Timeout time.Duration
}

// DialTCP creates host id's endpoint of an n-host TCP communicator with the
// default mesh-establishment timeout. addrs[i] is the listen address of
// host i; addrs[id] is where this endpoint listens. DialTCP blocks until
// the full connection mesh is established: each endpoint accepts
// connections from lower-ranked hosts and dials higher-ranked hosts.
func DialTCP(id int, addrs []string) (*TCPEndpoint, error) {
	return DialTCPConfig(id, addrs, DialConfig{})
}

// DialTCPConfig is DialTCP with explicit establishment parameters.
func DialTCPConfig(id int, addrs []string, cfg DialConfig) (*TCPEndpoint, error) {
	n := len(addrs)
	if id < 0 || id >= n {
		return nil, fmt.Errorf("comm: host id %d out of range [0,%d)", id, n)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)

	e := &TCPEndpoint{id: id, addrs: addrs, mbox: newMailbox(), conns: make([]*tcpConn, n)}
	for i := range e.conns {
		e.conns[i] = &tcpConn{}
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[id], err)
	}
	e.listener = ln
	if tl, ok := ln.(*net.TCPListener); ok {
		// Bound Accept by the mesh deadline so a lower-ranked peer that
		// never dials fails the whole establishment instead of hanging.
		tl.SetDeadline(deadline)
	}

	errc := make(chan error, 2)
	var setup sync.WaitGroup

	// Accept connections from lower-ranked peers; each sends its rank first.
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := 0; i < id; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("comm: accept (waiting for %d lower-ranked peers): %w", id-i, err)
				return
			}
			conn.SetDeadline(deadline)
			var rank [4]byte
			if _, err := io.ReadFull(conn, rank[:]); err != nil {
				errc <- fmt.Errorf("comm: handshake read: %w", err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(rank[:]))
			if peer >= id || peer < 0 || peer >= n {
				errc <- fmt.Errorf("comm: unexpected peer rank %d", peer)
				return
			}
			conn.SetDeadline(time.Time{})
			e.conns[peer].mu.Lock()
			e.conns[peer].conn = conn
			e.conns[peer].mu.Unlock()
		}
	}()

	// Dial higher-ranked peers, announcing our rank.
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := id + 1; i < n; i++ {
			conn, err := dialRetry(addrs[i], deadline)
			if err != nil {
				errc <- fmt.Errorf("comm: dial host %d (%s): %w", i, addrs[i], err)
				return
			}
			conn.SetDeadline(deadline)
			var rank [4]byte
			binary.LittleEndian.PutUint32(rank[:], uint32(id))
			if _, err := conn.Write(rank[:]); err != nil {
				errc <- fmt.Errorf("comm: handshake write to host %d: %w", i, err)
				return
			}
			conn.SetDeadline(time.Time{})
			e.conns[i].mu.Lock()
			e.conns[i].conn = conn
			e.conns[i].mu.Unlock()
		}
	}()

	setup.Wait()
	select {
	case err := <-errc:
		e.Close()
		return nil, err
	default:
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}

	for i, c := range e.conns {
		if i == id || c.conn == nil {
			continue
		}
		e.wg.Add(1)
		go e.readLoop(i, c.conn)
	}
	// The listener stays open for the life of the endpoint: replacement
	// hosts for a dead rank dial back in with the rejoin handshake
	// (DESIGN.md §4.6) and are accepted here.
	e.wg.Add(1)
	go e.acceptRejoins()
	return e, nil
}

// dialRetry dials addr until it succeeds or the deadline expires, backing
// off exponentially between refused attempts (a peer's listener may simply
// not be up yet) instead of hammering the address in a busy-loop.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := time.Millisecond
	const maxBackoff = 250 * time.Millisecond
	var lastErr error
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, nil
		}
		lastErr = err
		if !time.Now().Add(backoff).Before(deadline) {
			return nil, fmt.Errorf("deadline exceeded, last attempt: %w", lastErr)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// readLoop drains one peer connection into the mailbox. Any read error or
// malformed frame on a live endpoint poisons the peer: blocked receives
// involving it return *PeerError immediately rather than waiting for a
// message that will never arrive.
func (e *TCPEndpoint) readLoop(from int, conn net.Conn) {
	defer e.wg.Done()
	hdr := make([]byte, tcpHeaderLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			if !e.closed.Load() && e.connCurrent(from, conn) {
				e.poison(from, fmt.Errorf("connection lost: %w", err))
			}
			return
		}
		tag := Tag(binary.LittleEndian.Uint32(hdr[0:]))
		length := binary.LittleEndian.Uint32(hdr[4:])
		if length > MaxFrameSize {
			// Validate before allocating: a corrupt header must not drive
			// a giant allocation, and the stream is unrecoverable once
			// framing is lost.
			e.poison(from, fmt.Errorf("malformed frame: length %d exceeds max %d", length, MaxFrameSize))
			conn.Close()
			return
		}
		payload := GetBuf(int(length))
		if _, err := io.ReadFull(conn, payload); err != nil {
			PutBuf(payload)
			if !e.closed.Load() && e.connCurrent(from, conn) {
				e.poison(from, fmt.Errorf("truncated frame (wanted %d payload bytes): %w", length, err))
			}
			return
		}
		// A HOLD frame doubles as a curable poison: every receive blocked on
		// this peer's data tags unblocks with ErrRejoinHold and the layer
		// above routes into the rendezvous instead of escalating. The kind
		// byte is inspected before the enqueue — after mbox.put the receiver
		// owns the buffer.
		hold := tag == TagRejoin && length == rejoinFrameLen && payload[0] == RejoinHold
		e.ctr.msgsRecvd.Add(1)
		e.ctr.bytesRecvd.Add(uint64(length))
		e.mbox.put(from, tag, payload)
		if hold {
			e.poison(from, ErrRejoinHold)
		}
		traceFrame(e.rec(), trace.PhaseFrameRecv, from, tag, int(length))
	}
}

// connCurrent reports whether conn is still the installed link for the
// peer. A read loop whose connection was superseded by a replacement
// (acceptRejoins) must exit without poisoning: the poison may have already
// been cured by the rendezvous, and re-poisoning would wedge the cluster.
func (e *TCPEndpoint) connCurrent(from int, conn net.Conn) bool {
	c := e.conns[from]
	c.mu.Lock()
	cur := c.conn
	c.mu.Unlock()
	return cur == conn
}

// HostID implements Transport.
func (e *TCPEndpoint) HostID() int { return e.id }

// NumHosts implements Transport.
func (e *TCPEndpoint) NumHosts() int { return len(e.addrs) }

// Send implements Transport. Writes are serialized per peer connection, so
// a slow or stalled peer only delays further sends to that same peer.
func (e *TCPEndpoint) Send(to int, tag Tag, payload []byte) error {
	return e.SendVec(to, tag, nil, payload)
}

// SendVec implements Transport. The frame header, the caller's header, and
// the payload go to the socket as one vectored write (net.Buffers → writev),
// so the payload is never copied between the encode buffer and the kernel.
// Oversized frames are rejected here, before any byte reaches the wire, with
// an error wrapping ErrFrameTooLarge — the peer is not poisoned, because no
// framing was corrupted.
func (e *TCPEndpoint) SendVec(to int, tag Tag, header, payload []byte) error {
	n := len(header) + len(payload)
	if n > MaxFrameSize {
		PutBuf(payload)
		return fmt.Errorf("comm: send to host %d: %d-byte frame: %w", to, n, ErrFrameTooLarge)
	}
	if to == e.id {
		// Loopback: deliver through the mailbox without touching the socket
		// layer. A caller header still has to be coalesced — the receiver
		// sees one contiguous message — but the common nil-header case stays
		// zero-copy. Self frames get the same send/recv trace instants a
		// wire frame would, so they are visible in frame-level timelines.
		if len(header) > 0 {
			buf := GetBuf(n)
			copy(buf, header)
			copy(buf[len(header):], payload)
			PutBuf(payload)
			payload = buf
		}
		e.ctr.msgsSent.Add(1)
		e.ctr.bytesSent.Add(uint64(n))
		e.ctr.msgsRecvd.Add(1)
		e.ctr.bytesRecvd.Add(uint64(n))
		e.mbox.put(e.id, tag, payload)
		traceFrame(e.rec(), trace.PhaseFrameSend, to, tag, n)
		traceFrame(e.rec(), trace.PhaseFrameRecv, to, tag, n)
		return nil
	}
	if to < 0 || to >= len(e.addrs) {
		PutBuf(payload)
		return fmt.Errorf("comm: send to host %d of %d", to, len(e.addrs))
	}
	c := e.conns[to]
	c.mu.Lock()
	if e.closed.Load() || c.conn == nil {
		c.mu.Unlock()
		PutBuf(payload)
		return fmt.Errorf("comm: send to host %d: %w", to, ErrClosed)
	}
	binary.LittleEndian.PutUint32(c.hdr[0:], uint32(tag))
	binary.LittleEndian.PutUint32(c.hdr[4:], uint32(n))
	c.vecArr[0] = c.hdr[:]
	nv := 1
	if len(header) > 0 {
		c.vecArr[nv] = header
		nv++
	}
	if len(payload) > 0 {
		c.vecArr[nv] = payload
		nv++
	}
	// vec aliases the conn-owned array, so WriteTo consuming it allocates
	// nothing; the slots are cleared below so released buffers aren't pinned.
	c.vec = net.Buffers(c.vecArr[:nv])
	_, err := c.vec.WriteTo(c.conn)
	c.vecArr[1], c.vecArr[2] = nil, nil
	c.mu.Unlock()
	// The payload is on the wire (or the link is dead): release it per the
	// Transport contract so pooled sender buffers are reclaimed here.
	PutBuf(payload)
	if err != nil {
		// The conn is shared by both directions — a failed write means the
		// peer link is gone for reads too.
		e.poison(to, fmt.Errorf("send failed: %w", err))
		return &PeerError{Host: to, Err: err}
	}
	e.ctr.msgsSent.Add(1)
	e.ctr.bytesSent.Add(uint64(n))
	traceFrame(e.rec(), trace.PhaseFrameSend, to, tag, n)
	return nil
}

// Recv implements Transport.
func (e *TCPEndpoint) Recv(from int, tag Tag) ([]byte, error) {
	return e.mbox.get(from, tag)
}

// RecvAny implements Transport.
func (e *TCPEndpoint) RecvAny(tag Tag, from []int) (int, []byte, error) {
	return e.mbox.getAny(tag, from)
}

// Stats implements Transport.
func (e *TCPEndpoint) Stats() Stats { return e.ctr.snapshot() }

// FailPeer implements PeerFailer: it poisons the mailbox for the peer and
// severs its connection, so blocked receives fail with *PeerError and the
// peer's read loop terminates.
func (e *TCPEndpoint) FailPeer(host int, err error) {
	if host < 0 || host >= len(e.addrs) || host == e.id {
		return
	}
	traceFaultf(e.rec(), host, "peer declared dead: %v", err)
	crashDump(e.rec(), trace.TriggerDeadHost, e.id, host, err)
	e.mbox.poison(host, err)
	c := e.conns[host]
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
}

// Addr returns the address this endpoint is actually listening on (useful
// when the configured address used port 0).
func (e *TCPEndpoint) Addr() string {
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// Close implements Transport. It is safe during in-flight collectives:
// every blocked Recv/RecvAny unblocks with an error wrapping ErrClosed, and
// further Sends fail.
func (e *TCPEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	if e.listener != nil {
		e.listener.Close()
	}
	for i, c := range e.conns {
		if i == e.id {
			continue
		}
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
	}
	e.mbox.close()
	e.wg.Wait()
	return nil
}
