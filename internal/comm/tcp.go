package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPEndpoint is a Transport over real sockets. Each endpoint listens on an
// address; a full mesh of connections is established at dial time. The wire
// format per message is a 10-byte header (from uint32 for sanity checking is
// implicit in the connection; tag uint32, length uint32, then payload),
// little-endian.
//
// It exists so clusters of separate OS processes can run Gluon systems (see
// examples/tcp-cluster); functionally it is interchangeable with Hub.
type TCPEndpoint struct {
	id    int
	addrs []string
	mbox  *mailbox
	ctr   counters

	mu       sync.Mutex
	conns    []net.Conn // conns[i] carries traffic to/from host i
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
}

const tcpHeaderLen = 8 // tag uint32 + length uint32

// DialTCP creates host id's endpoint of an n-host TCP communicator.
// addrs[i] is the listen address of host i; addrs[id] is where this
// endpoint listens. DialTCP blocks until the full connection mesh is
// established: each endpoint accepts connections from lower-ranked hosts
// and dials higher-ranked hosts.
func DialTCP(id int, addrs []string) (*TCPEndpoint, error) {
	n := len(addrs)
	if id < 0 || id >= n {
		return nil, fmt.Errorf("comm: host id %d out of range [0,%d)", id, n)
	}
	e := &TCPEndpoint{id: id, addrs: addrs, mbox: newMailbox(), conns: make([]net.Conn, n)}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[id], err)
	}
	e.listener = ln

	errc := make(chan error, 2)
	var setup sync.WaitGroup

	// Accept connections from lower-ranked peers; each sends its rank first.
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := 0; i < id; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("comm: accept: %w", err)
				return
			}
			var rank [4]byte
			if _, err := io.ReadFull(conn, rank[:]); err != nil {
				errc <- fmt.Errorf("comm: handshake read: %w", err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(rank[:]))
			if peer >= id || peer < 0 || peer >= n {
				errc <- fmt.Errorf("comm: unexpected peer rank %d", peer)
				return
			}
			e.mu.Lock()
			e.conns[peer] = conn
			e.mu.Unlock()
		}
	}()

	// Dial higher-ranked peers, announcing our rank.
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := id + 1; i < n; i++ {
			conn, err := dialRetry(addrs[i])
			if err != nil {
				errc <- fmt.Errorf("comm: dial host %d (%s): %w", i, addrs[i], err)
				return
			}
			var rank [4]byte
			binary.LittleEndian.PutUint32(rank[:], uint32(id))
			if _, err := conn.Write(rank[:]); err != nil {
				errc <- fmt.Errorf("comm: handshake write: %w", err)
				return
			}
			e.mu.Lock()
			e.conns[i] = conn
			e.mu.Unlock()
		}
	}()

	setup.Wait()
	select {
	case err := <-errc:
		e.Close()
		return nil, err
	default:
	}

	for i, conn := range e.conns {
		if i == id || conn == nil {
			continue
		}
		e.wg.Add(1)
		go e.readLoop(i, conn)
	}
	return e, nil
}

func dialRetry(addr string) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < 200; attempt++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (e *TCPEndpoint) readLoop(from int, conn net.Conn) {
	defer e.wg.Done()
	hdr := make([]byte, tcpHeaderLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return // connection closed
		}
		tag := Tag(binary.LittleEndian.Uint32(hdr[0:]))
		length := binary.LittleEndian.Uint32(hdr[4:])
		payload := GetBuf(int(length))
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		e.ctr.msgsRecvd.Add(1)
		e.ctr.bytesRecvd.Add(uint64(length))
		e.mbox.put(from, tag, payload)
	}
}

// HostID implements Transport.
func (e *TCPEndpoint) HostID() int { return e.id }

// NumHosts implements Transport.
func (e *TCPEndpoint) NumHosts() int { return len(e.addrs) }

// Send implements Transport.
func (e *TCPEndpoint) Send(to int, tag Tag, payload []byte) error {
	if to == e.id {
		e.ctr.msgsSent.Add(1)
		e.ctr.bytesSent.Add(uint64(len(payload)))
		e.ctr.msgsRecvd.Add(1)
		e.ctr.bytesRecvd.Add(uint64(len(payload)))
		e.mbox.put(e.id, tag, payload)
		return nil
	}
	if to < 0 || to >= len(e.addrs) {
		return fmt.Errorf("comm: send to host %d of %d", to, len(e.addrs))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("comm: endpoint closed")
	}
	conn := e.conns[to]
	n := len(payload)
	buf := GetBuf(tcpHeaderLen + n)
	binary.LittleEndian.PutUint32(buf[0:], uint32(tag))
	binary.LittleEndian.PutUint32(buf[4:], uint32(n))
	copy(buf[tcpHeaderLen:], payload)
	_, err := conn.Write(buf)
	PutBuf(buf)
	// The payload has been copied onto the wire: release it per the
	// Transport contract so pooled sender buffers are reclaimed here.
	PutBuf(payload)
	if err != nil {
		return fmt.Errorf("comm: send to host %d: %w", to, err)
	}
	e.ctr.msgsSent.Add(1)
	e.ctr.bytesSent.Add(uint64(n))
	return nil
}

// Recv implements Transport.
func (e *TCPEndpoint) Recv(from int, tag Tag) ([]byte, error) {
	return e.mbox.get(from, tag)
}

// RecvAny implements Transport.
func (e *TCPEndpoint) RecvAny(tag Tag, from []int) (int, []byte, error) {
	return e.mbox.getAny(tag, from)
}

// Stats implements Transport.
func (e *TCPEndpoint) Stats() Stats { return e.ctr.snapshot() }

// Addr returns the address this endpoint is actually listening on (useful
// when the configured address used port 0).
func (e *TCPEndpoint) Addr() string {
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// Close implements Transport.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.mu.Unlock()

	if e.listener != nil {
		e.listener.Close()
	}
	for i, c := range conns {
		if i != e.id && c != nil {
			c.Close()
		}
	}
	e.mbox.close()
	e.wg.Wait()
	return nil
}
