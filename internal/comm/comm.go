// Package comm provides the message transport Gluon runs over.
//
// The paper's Gluon sits on MPI or LCI (Figure 1). Here the same role is
// played by a small point-to-point transport interface with two
// implementations: an in-process one over Go channels (hosts are
// goroutines) and a TCP one over net (hosts may be separate processes).
// Gluon itself is transport-agnostic: it produces byte payloads and tags,
// exactly as it hands buffers to MPI in the original system.
//
// On top of point-to-point sends the package builds the collectives BSP
// execution needs: barrier, all-reduce, and all-gather.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is the sentinel wrapped by every error a transport returns after
// Close: pending and future Recv/RecvAny unblock with an error matching
// errors.Is(err, ErrClosed), and Sends fail the same way.
var ErrClosed = errors.New("comm: transport closed")

// ErrFrameTooLarge is the sentinel wrapped by the error Send/SendVec return
// when the message (header plus payload) exceeds MaxFrameSize. The frame is
// rejected before any byte reaches the wire — the peer is not poisoned and
// the link stays usable — so an oversized message is a caller bug surfaced
// at the send site, not a malformed-frame fault discovered by the receiver's
// read loop. Match with errors.Is(err, ErrFrameTooLarge). The payload is
// still released per the ownership contract.
var ErrFrameTooLarge = errors.New("comm: frame exceeds MaxFrameSize")

// PeerError reports that a specific peer failed: its connection died, it
// delivered a malformed frame, or the runtime declared it dead (see
// PeerFailer). Every Recv/RecvAny blocked on — or later directed at — a
// failed peer returns a *PeerError naming it, so a BSP job surfaces a dead
// host as a diagnosable failure instead of a silent stall. Match with
// errors.As(err, &pe) where pe is a *PeerError.
type PeerError struct {
	// Host is the rank of the failed peer.
	Host int
	// Err is the underlying cause (connection error, malformed frame, or an
	// injected/propagated fault).
	Err error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("comm: peer %d failed: %v", e.Host, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// PeerFailer is implemented by transports that can mark a single peer as
// failed without tearing down the whole endpoint. After FailPeer(h, err),
// messages already received from h remain deliverable, but any Recv/RecvAny
// that would otherwise block waiting on h returns a *PeerError{Host: h}
// immediately. Both built-in transports and FaultTransport implement it; the
// dsys runner uses it to propagate one host's failure to the survivors so a
// cluster fails loudly instead of hanging.
type PeerFailer interface {
	FailPeer(host int, err error)
}

// NetModel adds simulated network costs to the in-process transport: each
// message occupies its (sender, receiver) link for
// Latency + size/Bandwidth, and links serialize their messages, so a
// communication-heavy system slows down in proportion to what it sends —
// the regime the paper's clusters operate in (DESIGN.md §2 explains the
// substitution). The zero value disables modeling (instant delivery).
type NetModel struct {
	// Latency is the per-message link latency.
	Latency time.Duration
	// Bandwidth is the per-link throughput in bytes/second (0 = infinite).
	Bandwidth float64
}

// Enabled reports whether any cost is modeled.
func (m NetModel) Enabled() bool { return m.Latency > 0 || m.Bandwidth > 0 }

// cost returns the link occupancy of one message of the given size.
func (m NetModel) cost(size int) time.Duration {
	d := m.Latency
	if m.Bandwidth > 0 {
		d += time.Duration(float64(size) / m.Bandwidth * float64(time.Second))
	}
	return d
}

// Tag identifies the logical stream a message belongs to. Matching is done
// on (sender, tag): a receiver asks for the next message with a given tag
// from a given peer. Gluon derives tags from (field, round parity, pattern)
// so concurrent field syncs never cross.
type Tag uint32

// Reserved tag ranges for the runtime's own protocols.
const (
	TagBarrier   Tag = 0xFFFF0001
	TagAllReduce Tag = 0xFFFF0002
	TagAllGather Tag = 0xFFFF0003
	TagMemo      Tag = 0xFFFF0004
	TagTerm      Tag = 0xFFFF0005
	// TagHeartbeat carries the watchdog's liveness gossip (see dsys); it
	// rides the data transport but never blocks a sync: heartbeats are
	// fire-and-forget and drained by a dedicated goroutine per host.
	TagHeartbeat Tag = 0xFFFF0006
	// TagRejoin carries the checkpoint/restore rendezvous (HOLD/RESUME
	// frames, see dsys and DESIGN.md §4.6). It is exempt from poison
	// fail-fast: a receive on TagRejoin keeps waiting even for a peer that
	// has been declared dead, because the whole point of the rendezvous is
	// to wait for that peer's replacement to dial back in.
	TagRejoin Tag = 0xFFFF0007
	TagUser   Tag = 0x00010000 // first tag available to applications
)

// ErrRejoinHold is the poison cause installed when a peer announces a
// checkpoint-rollback rendezvous (a HOLD frame on TagRejoin). It is
// curable: receivers unblocked by it should enter the rendezvous rather
// than escalate, and FlushAndCure clears it once the mesh re-forms.
var ErrRejoinHold = errors.New("comm: peer holding for checkpoint rejoin")

// Rejoiner is implemented by transports that support the checkpoint
// rendezvous: FlushAndCure drops every undelivered in-flight message on
// data tags (their rounds are being rolled back; buffers are released to
// the pool) while preserving queued TagRejoin frames, and clears all
// peer poisons so the re-formed mesh is usable again. ConnGeneration
// reports how many times the link to a peer has been replaced by a
// rejoining replacement host — the rendezvous re-sends its HOLD when the
// generation moved under a send, because a frame written to a dying
// connection can be silently swallowed without a send error. Transports
// whose links cannot be replaced return a constant.
type Rejoiner interface {
	FlushAndCure()
	ConnGeneration(peer int) int
}

// Transport is a reliable, ordered (per sender/tag pair) point-to-point
// message layer between NumHosts hosts.
//
// Payload ownership and release contract: ownership of the buffer passed to
// Send transfers to the transport — callers must not read or modify it
// afterwards. A transport that copies the payload onto a wire inside Send
// (TCP) releases the buffer back to the payload pool (PutBuf) before
// returning; a zero-copy transport (in-process) hands the same buffer to the
// receiver, whose Recv/RecvAny caller assumes ownership and should release
// it with PutBuf once decoded. Build payloads with GetBuf and the steady
// state is allocation-free end to end; buffers from make() simply join the
// pool. Custom Transport implementations must honor the same contract.
//
// SendVec extends the contract with a split-ownership rule: the payload
// transfers to the transport exactly as in Send, but the header slice stays
// owned by the caller — the transport consumes it (copies or writes it to
// the wire) before SendVec returns and never retains a reference to it, so
// callers may keep the header in a stack array or reused scratch buffer.
// The receiver observes a single contiguous message of
// len(header)+len(payload) bytes; the split exists only on the send side.
type Transport interface {
	// HostID returns this endpoint's rank in [0, NumHosts).
	HostID() int
	// NumHosts returns the number of hosts in the communicator.
	NumHosts() int
	// Send delivers payload to host `to` under `tag`. The payload is owned
	// by the transport after Send returns (see the release contract above);
	// callers must not touch it. Sending to self is allowed and loops back.
	Send(to int, tag Tag, payload []byte) error
	// SendVec delivers header++payload to host `to` under `tag` as one
	// message, gathering the two slices on the wire (writev on TCP) so the
	// caller never coalesces them. Ownership splits: payload transfers to
	// the transport as in Send; header remains caller-owned and is fully
	// consumed before SendVec returns. An empty header makes SendVec
	// equivalent to Send(to, tag, payload).
	SendVec(to int, tag Tag, header, payload []byte) error
	// Recv blocks until a message with the given tag arrives from host
	// `from`, and returns its payload. The caller owns the returned buffer
	// and should release it with PutBuf when done decoding.
	Recv(from int, tag Tag) ([]byte, error)
	// RecvAny blocks until a message with the given tag is available from
	// any of the listed peers, and returns the sender's rank alongside the
	// payload (owned by the caller, like Recv). A nil peer list matches any
	// sender. Per-(sender, tag) FIFO order is preserved: for each sender,
	// RecvAny always returns that sender's oldest pending message for the
	// tag. When several peers have deliverable messages, the one that
	// became deliverable earliest wins, so receivers drain messages in
	// arrival order rather than rank order.
	RecvAny(tag Tag, from []int) (int, []byte, error)
	// Stats returns cumulative transport-level counters for this endpoint.
	Stats() Stats
	// Close releases resources. Further Sends fail; pending Recvs and
	// RecvAnys unblock with an error.
	Close() error
}

// Stats counts traffic through one endpoint.
type Stats struct {
	MessagesSent  uint64
	BytesSent     uint64
	MessagesRecvd uint64
	BytesRecvd    uint64
}

type counters struct {
	msgsSent, bytesSent   atomic.Uint64
	msgsRecvd, bytesRecvd atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		MessagesSent:  c.msgsSent.Load(),
		BytesSent:     c.bytesSent.Load(),
		MessagesRecvd: c.msgsRecvd.Load(),
		BytesRecvd:    c.bytesRecvd.Load(),
	}
}

// mailbox holds arrived messages not yet claimed by Recv, keyed by
// (sender, tag). It is the demultiplexer both transports share. Entries
// carry a readiness time so the in-process transport can simulate link
// costs (see NetModel) without breaking per-(sender, tag) FIFO order.
//
// A peer can be poisoned: once dead[h] is set, messages already queued from
// h stay deliverable (they arrived intact before the failure), but a get or
// getAny that would block on h fails with *PeerError instead. The first
// recorded error wins, so the root cause survives cascading failures.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey][]mailEntry
	dead   map[int]error
	closed bool
}

type mailKey struct {
	from int
	tag  Tag
}

type mailEntry struct {
	payload []byte
	readyAt time.Time // zero means immediately available
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[mailKey][]mailEntry)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(from int, tag Tag, payload []byte) {
	m.putAt(from, tag, payload, time.Time{})
}

func (m *mailbox) putAt(from int, tag Tag, payload []byte, readyAt time.Time) {
	m.mu.Lock()
	if m.closed {
		// close() already drained the queues and every get fails with
		// ErrClosed, so an entry enqueued now is unreachable: a sender
		// racing a teardown must release the payload, not strand it.
		m.mu.Unlock()
		PutBuf(payload)
		return
	}
	k := mailKey{from, tag}
	m.queues[k] = append(m.queues[k], mailEntry{payload: payload, readyAt: readyAt})
	m.mu.Unlock()
	m.cond.Broadcast()
}

// poison marks peer `from` as failed and wakes every waiter so blocked
// receives involving it return *PeerError. Idempotent; the first error is
// kept as the cause.
func (m *mailbox) poison(from int, err error) {
	m.mu.Lock()
	if m.dead == nil {
		m.dead = make(map[int]error)
	}
	if _, ok := m.dead[from]; !ok {
		m.dead[from] = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// peerErr returns the poison error for a peer, or nil. Caller holds m.mu.
func (m *mailbox) peerErr(from int) error {
	if err, ok := m.dead[from]; ok {
		return &PeerError{Host: from, Err: err}
	}
	return nil
}

// sleepUntil waits until the modeled delivery deadline t. In-flight delays
// under NetModel are typically tens of microseconds, far below the parked
// runtime timer resolution (~1ms on Linux), so a bare time.Sleep would
// quantize every modeled hop up to the timer tick and swamp the model.
// Sleep off all but the last stretch, then yield-spin the remainder: the
// spin yields the processor every iteration, so it never starves runnable
// work, and it only burns otherwise-idle cycles.
func sleepUntil(t time.Time) {
	const spin = 200 * time.Microsecond
	if d := time.Until(t); d > spin {
		time.Sleep(d - spin)
	}
	for time.Now().Before(t) {
		runtime.Gosched()
	}
}

func (m *mailbox) get(from int, tag Tag) ([]byte, error) {
	k := mailKey{from, tag}
	m.mu.Lock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			e := q[0]
			if wait := time.Until(e.readyAt); wait > 0 {
				// Simulated transfer still in flight: sleep it off without
				// holding the lock, then re-check (the queue head cannot
				// change order — entries per key are FIFO and only get
				// consumes them, but another Recv on the same key could
				// take it, so loop).
				m.mu.Unlock()
				sleepUntil(e.readyAt)
				m.mu.Lock()
				continue
			}
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			m.mu.Unlock()
			return e.payload, nil
		}
		// Nothing queued from this peer: fail fast if it is dead rather
		// than block on a message that can never arrive. TagRejoin is
		// exempt — the rendezvous waits out the poison for a replacement.
		if tag != TagRejoin {
			if err := m.peerErr(from); err != nil {
				m.mu.Unlock()
				return nil, err
			}
		}
		if m.closed {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w while waiting for tag %#x from host %d", ErrClosed, tag, from)
		}
		m.cond.Wait()
	}
}

// getAny returns the next deliverable message with the given tag from any
// of the listed peers (nil = any sender), preferring the message whose
// modeled delivery completes earliest. Per-(sender, tag) FIFO order is
// preserved because only queue heads are considered.
func (m *mailbox) getAny(tag Tag, peers []int) (int, []byte, error) {
	m.mu.Lock()
	for {
		// Find the queue head with the earliest readiness time.
		from := -1
		var readyAt time.Time
		consider := func(k mailKey) {
			q := m.queues[k]
			if len(q) == 0 {
				return
			}
			if from < 0 || q[0].readyAt.Before(readyAt) {
				from, readyAt = k.from, q[0].readyAt
			}
		}
		if peers == nil {
			for k := range m.queues {
				if k.tag == tag {
					consider(k)
				}
			}
		} else {
			for _, p := range peers {
				consider(mailKey{p, tag})
			}
		}
		if from >= 0 {
			if wait := time.Until(readyAt); wait > 0 {
				// The earliest known message is still in modeled flight.
				// Sleep it off without holding the lock, then re-scan (the
				// same mechanism as get). A message sent later with a
				// shorter modeled delay is simply delivered on the next
				// scan — delivery order between senders is best-effort,
				// only per-(sender, tag) FIFO is guaranteed.
				m.mu.Unlock()
				sleepUntil(readyAt)
				m.mu.Lock()
				continue
			}
			k := mailKey{from, tag}
			q := m.queues[k]
			e := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			m.mu.Unlock()
			return from, e.payload, nil
		}
		// No deliverable message among the candidates. If any candidate
		// peer is dead the wait can never be satisfied by it — fail loudly
		// now instead of gambling that the live peers cover the caller.
		// TagRejoin is exempt (see get).
		if m.dead != nil && tag != TagRejoin {
			if peers == nil {
				for p := range m.dead {
					err := m.peerErr(p)
					m.mu.Unlock()
					return -1, nil, err
				}
			} else {
				for _, p := range peers {
					if err := m.peerErr(p); err != nil {
						m.mu.Unlock()
						return -1, nil, err
					}
				}
			}
		}
		if m.closed {
			m.mu.Unlock()
			return -1, nil, fmt.Errorf("%w while waiting for tag %#x from any peer", ErrClosed, tag)
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	// Queued messages are unreachable after close (get returns ErrClosed),
	// so release their buffers back to the pool instead of leaking them —
	// this is what keeps gets == puts across fault suites that tear a
	// cluster down mid-conversation.
	for k, q := range m.queues {
		for _, e := range q {
			PutBuf(e.payload)
		}
		delete(m.queues, k)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// flushAndCure implements Rejoiner for mailbox-backed transports: every
// queued message on a non-rejoin tag is dropped (released to the pool) and
// every peer poison is cleared. Called only from inside the rendezvous,
// after HOLD frames from all peers prove no stale pre-rollback data can
// still be in flight behind them (per-(sender, tag) FIFO).
func (m *mailbox) flushAndCure() {
	m.mu.Lock()
	for k, q := range m.queues {
		if k.tag == TagRejoin {
			continue
		}
		for _, e := range q {
			PutBuf(e.payload)
		}
		delete(m.queues, k)
	}
	m.dead = nil
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Barrier blocks until every host has entered the barrier. It uses a
// dissemination pattern: log2(n) rounds of pairwise messages, so it is
// correct for any transport without a coordinator.
func Barrier(t Transport) error {
	n := t.NumHosts()
	if n == 1 {
		return nil
	}
	me := t.HostID()
	for dist := 1; dist < n; dist *= 2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		if err := t.Send(to, TagBarrier, nil); err != nil {
			return err
		}
		p, err := t.Recv(from, TagBarrier)
		if err != nil {
			return err
		}
		PutBuf(p)
	}
	return nil
}

// AllReduceUint64 combines each host's value with op (must be associative
// and commutative) and returns the combined value on every host. Host 0
// gathers, reduces, and broadcasts.
func AllReduceUint64(t Transport, val uint64, op func(a, b uint64) uint64) (uint64, error) {
	n := t.NumHosts()
	if n == 1 {
		return val, nil
	}
	me := t.HostID()
	if me == 0 {
		acc := val
		for h := 1; h < n; h++ {
			p, err := t.Recv(h, TagAllReduce)
			if err != nil {
				return 0, err
			}
			acc = op(acc, binary.LittleEndian.Uint64(p))
			PutBuf(p)
		}
		for h := 1; h < n; h++ {
			out := GetBuf(8)
			binary.LittleEndian.PutUint64(out, acc)
			if err := t.Send(h, TagAllReduce, out); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	buf := GetBuf(8)
	binary.LittleEndian.PutUint64(buf, val)
	if err := t.Send(0, TagAllReduce, buf); err != nil {
		return 0, err
	}
	p, err := t.Recv(0, TagAllReduce)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(p)
	PutBuf(p)
	return v, nil
}

// AllReduceSum is AllReduceUint64 with addition.
func AllReduceSum(t Transport, val uint64) (uint64, error) {
	return AllReduceUint64(t, val, func(a, b uint64) uint64 { return a + b })
}

// AllReduceMax is AllReduceUint64 with max.
func AllReduceMax(t Transport, val uint64) (uint64, error) {
	return AllReduceUint64(t, val, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllGather sends this host's payload to every other host and returns all
// hosts' payloads indexed by host ID (own payload included, not copied).
func AllGather(t Transport, payload []byte) ([][]byte, error) {
	n := t.NumHosts()
	me := t.HostID()
	out := make([][]byte, n)
	out[me] = payload
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		cp := GetBuf(len(payload))
		copy(cp, payload)
		if err := t.Send(h, TagAllGather, cp); err != nil {
			return nil, err
		}
	}
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		p, err := t.Recv(h, TagAllGather)
		if err != nil {
			// Release the payloads already gathered (own slice excluded: it
			// is caller-owned) so a mid-collective failure doesn't leak them.
			for i := 0; i < h; i++ {
				if i != me {
					PutBuf(out[i])
				}
			}
			return nil, err
		}
		out[h] = p
	}
	return out, nil
}
