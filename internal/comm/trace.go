package comm

import (
	"fmt"
	"sync/atomic"

	"gluon/internal/trace"
)

// TraceCarrier is implemented by transports that can emit frame-level trace
// events (per-frame send/recv instants, poisonings, dead-host declarations,
// injected faults) into a per-host recorder. The dsys runner attaches each
// host's recorder through it when a run is traced.
type TraceCarrier interface {
	SetTrace(r *trace.Recorder)
}

// traceRef is the recorder slot transports embed. It is atomic because the
// recorder can be attached while transport goroutines (the TCP read loops)
// are already running.
type traceRef struct {
	p atomic.Pointer[trace.Recorder]
}

// SetTrace implements TraceCarrier for embedders.
func (t *traceRef) SetTrace(r *trace.Recorder) { t.p.Store(r) }

// rec returns the attached recorder (nil when tracing is off).
func (t *traceRef) rec() *trace.Recorder { return t.p.Load() }

// traceFrame emits a frame-level instant: one transport frame of n payload
// bytes to/from peer under tag.
func traceFrame(r *trace.Recorder, ph trace.Phase, peer int, tag Tag, n int) {
	if !r.Enabled() {
		return
	}
	r.Emit(trace.Event{Phase: ph, Start: r.Now(), Peer: int32(peer), Field: uint32(tag), Value: uint64(n)})
}

// traceFaultf emits a fault instant involving peer. Formatting only happens
// when tracing is live.
func traceFaultf(r *trace.Recorder, peer int, format string, args ...any) {
	if !r.Enabled() {
		return
	}
	r.Emit(trace.Event{Phase: trace.PhaseFault, Start: r.Now(), Peer: int32(peer), Detail: fmt.Sprintf(format, args...)})
}

// crashDump freezes a postmortem bundle through the process's armed flight
// recorder (trace.Arm); when disarmed the cost is one atomic load. The
// attached recorder supplies host/round/phase when present; self is the
// fallback rank. Only called on failure paths, never on the hot path.
func crashDump(r *trace.Recorder, trigger trace.Trigger, self, peer int, cause error) {
	if trace.Armed() == nil {
		return
	}
	info := trace.DumpInfo{
		Trigger: trigger,
		Host:    self,
		Peer:    peer,
		Round:   trace.RoundFromRecorder,
		Phase:   trace.NumPhases,
		Cause:   cause,
	}
	if r != nil {
		info.Host = int(r.Host())
		info.Round = int(r.Round())
		info.Phase = r.LivePhase()
	}
	trace.Crash(info)
}
