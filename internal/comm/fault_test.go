package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitErr asserts that fn returns within d and hands back its error. It is
// the anti-hang harness: a fault must surface as an error, never a stall.
func waitErr(t *testing.T, d time.Duration, what string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("%s still blocked after %v", what, d)
		return nil
	}
}

// asPeerError asserts err carries a *PeerError naming host.
func asPeerError(t *testing.T, err error, host int) *PeerError {
	t.Helper()
	if err == nil {
		t.Fatalf("want *PeerError for host %d, got nil", host)
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PeerError, got %T: %v", err, err)
	}
	if pe.Host != host {
		t.Fatalf("PeerError names host %d, want %d (err: %v)", pe.Host, host, err)
	}
	return pe
}

func TestFailPeerUnblocksRecv(t *testing.T) {
	hub := NewHub(3)
	defer hub.Close()
	ep := hub.Endpoint(0)

	// A pending Recv on a live peer unblocks the moment the peer fails.
	cause := errors.New("simulated death")
	go func() {
		time.Sleep(10 * time.Millisecond)
		ep.(PeerFailer).FailPeer(2, cause)
	}()
	err := waitErr(t, 5*time.Second, "Recv from failed peer", func() error {
		_, err := ep.Recv(2, TagUser)
		return err
	})
	pe := asPeerError(t, err, 2)
	if !errors.Is(pe, cause) {
		t.Fatalf("cause not preserved: %v", err)
	}

	// Future receives fail immediately too.
	if _, err := ep.Recv(2, TagUser); err == nil {
		t.Fatal("Recv from poisoned peer succeeded")
	}
	// Other peers are unaffected.
	hub.Endpoint(1).Send(0, TagUser, []byte("alive"))
	if _, err := ep.Recv(1, TagUser); err != nil {
		t.Fatalf("live peer affected by poison: %v", err)
	}
}

func TestFailPeerUnblocksRecvAny(t *testing.T) {
	hub := NewHub(3)
	defer hub.Close()
	ep := hub.Endpoint(0)

	for _, peers := range [][]int{nil, {1, 2}} {
		hub2 := NewHub(3)
		ep2 := hub2.Endpoint(0)
		go func() {
			time.Sleep(10 * time.Millisecond)
			ep2.(PeerFailer).FailPeer(1, errors.New("gone"))
		}()
		err := waitErr(t, 5*time.Second, fmt.Sprintf("RecvAny(peers=%v)", peers), func() error {
			_, _, err := ep2.RecvAny(TagUser, peers)
			return err
		})
		asPeerError(t, err, 1)
		hub2.Close()
	}

	// RecvAny scoped to live peers only is unaffected by an unrelated
	// poisoned peer.
	ep.(PeerFailer).FailPeer(2, errors.New("gone"))
	hub.Endpoint(1).Send(0, TagUser, []byte("x"))
	h, _, err := ep.RecvAny(TagUser, []int{1})
	if err != nil || h != 1 {
		t.Fatalf("RecvAny over live peers: host %d, err %v", h, err)
	}
}

func TestPoisonedPeerQueuedMessagesStayDeliverable(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	ep := hub.Endpoint(0)
	hub.Endpoint(1).Send(0, TagUser, []byte("sent before death"))
	ep.(PeerFailer).FailPeer(1, errors.New("died after sending"))

	// The message that arrived intact before the failure is still served...
	p, err := ep.Recv(1, TagUser)
	if err != nil || string(p) != "sent before death" {
		t.Fatalf("queued message lost: %q, %v", p, err)
	}
	// ...and only then does the poison surface.
	_, err = ep.Recv(1, TagUser)
	asPeerError(t, err, 1)
}

func TestFaultTransportKillAfterSends(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	ft := NewFaultTransport(hub.Endpoint(0), FaultConfig{KillAfterSends: 2, KillPeer: 1})

	for i := 0; i < 2; i++ {
		if err := ft.Send(1, TagUser, []byte("ok")); err != nil {
			t.Fatalf("send %d before the kill threshold failed: %v", i, err)
		}
	}
	err := ft.Send(1, TagUser, []byte("dropped"))
	pe := asPeerError(t, err, 1)
	if !errors.Is(pe, ErrInjectedFault) {
		t.Fatalf("want ErrInjectedFault, got %v", err)
	}
	// The kill also poisons the receive side: waiting on the dead peer
	// fails immediately instead of blocking.
	err = waitErr(t, 5*time.Second, "Recv from killed peer", func() error {
		_, err := ft.Recv(1, TagUser)
		return err
	})
	asPeerError(t, err, 1)
	// Later sends to the dead peer keep failing.
	if err := ft.Send(1, TagUser, []byte("still dead")); err == nil {
		t.Fatal("send to killed peer succeeded")
	}
}

func TestFaultTransportTruncateRecv(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	ft := NewFaultTransport(hub.Endpoint(0), FaultConfig{TruncateRecvAfter: 2})

	hub.Endpoint(1).Send(0, TagUser, []byte("first"))
	hub.Endpoint(1).Send(0, TagUser, []byte("second"))

	if p, err := ft.Recv(1, TagUser); err != nil || string(p) != "first" {
		t.Fatalf("recv before fault: %q, %v", p, err)
	}
	_, err := ft.Recv(1, TagUser)
	pe := asPeerError(t, err, 1)
	if !errors.Is(pe, ErrTruncatedFrame) {
		t.Fatalf("want ErrTruncatedFrame, got %v", err)
	}
	// The malformed frame poisoned its sender for good.
	err = waitErr(t, 5*time.Second, "Recv after truncated frame", func() error {
		_, err := ft.Recv(1, TagUser)
		return err
	})
	asPeerError(t, err, 1)
}

func TestFaultTransportDelay(t *testing.T) {
	hub := NewHub(2)
	defer hub.Close()
	const delay = 30 * time.Millisecond
	ft := NewFaultTransport(hub.Endpoint(0), FaultConfig{DelayEvery: 1, Delay: delay})

	start := time.Now()
	if err := ft.Send(1, TagUser, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Endpoint(1).Recv(0, TagUser); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("delayed frame arrived in %v, want >= %v", took, delay)
	}
}

// TestTCPMidStreamPeerDeath kills one endpoint during an active exchange
// and asserts every other host's pending Recv/RecvAny returns a *PeerError
// naming the dead host within 5 seconds — the no-hang contract.
func TestTCPMidStreamPeerDeath(t *testing.T) {
	eps := dialMesh(t, 3, 41300)

	// An active stream: host 0 sends one message to each peer, then dies.
	eps[0].Send(1, TagUser, []byte("mid-stream"))
	eps[0].Send(2, TagUser, []byte("mid-stream"))
	for _, h := range []int{1, 2} {
		if _, err := eps[h].Recv(0, TagUser); err != nil {
			t.Fatalf("host %d: recv before death: %v", h, err)
		}
	}

	// Host 1 blocks in Recv, host 2 in RecvAny, both on host 0.
	errs := make(chan error, 2)
	go func() {
		_, err := eps[1].Recv(0, TagUser)
		errs <- err
	}()
	go func() {
		_, _, err := eps[2].RecvAny(TagUser, []int{0})
		errs <- err
	}()

	time.Sleep(20 * time.Millisecond) // let both receivers park
	eps[0].Close()                    // the "process" dies

	deadline := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			asPeerError(t, err, 0)
		case <-deadline:
			t.Fatal("pending receive still blocked 5s after peer death")
		}
	}

	// Sends to the dead peer fail loudly too (possibly after the OS
	// buffers a first write; a few attempts must surface the error).
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = eps[1].Send(0, TagUser, []byte("into the void"))
		time.Sleep(time.Millisecond)
	}
	if err == nil {
		t.Fatal("sends to dead peer kept succeeding")
	}
}

// TestTCPOversizedFramePoisonsPeer feeds a frame whose header claims more
// than MaxFrameSize bytes and asserts the receiver rejects it before
// allocating, poisoning the peer.
func TestTCPOversizedFramePoisonsPeer(t *testing.T) {
	eps := dialMesh(t, 2, 41310)

	// Reach under the endpoint to corrupt a header: a Send of a legitimate
	// payload cannot produce one, so write the frame by hand.
	c := eps[0].conns[1]
	c.mu.Lock()
	hdr := make([]byte, tcpHeaderLen)
	hdr[0] = 0x01                                  // tag
	hdr[4], hdr[5], hdr[6], hdr[7] = 0, 0, 0, 0xFF // length 0xFF000000 > MaxFrameSize
	_, werr := c.conn.Write(hdr)
	c.mu.Unlock()
	if werr != nil {
		t.Fatal(werr)
	}

	err := waitErr(t, 5*time.Second, "Recv of oversized frame", func() error {
		_, err := eps[1].Recv(0, Tag(1))
		return err
	})
	pe := asPeerError(t, err, 0)
	if pe.Err == nil {
		t.Fatal("poison cause missing")
	}
}

// TestDialTimeoutMissingHigherPeer: dialing a rank whose listener never
// comes up must fail within the configured deadline, not busy-loop or hang.
func TestDialTimeoutMissingHigherPeer(t *testing.T) {
	addrs := []string{"127.0.0.1:41330", "127.0.0.1:41331"}
	start := time.Now()
	_, err := DialTCPConfig(0, addrs, DialConfig{Timeout: 400 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to absent peer succeeded")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("dial failure took %v, want bounded by the ~400ms deadline", took)
	}
}

// TestDialTimeoutMissingLowerPeer: an endpoint waiting to Accept a
// lower-ranked peer that never dials must also fail by the deadline.
func TestDialTimeoutMissingLowerPeer(t *testing.T) {
	addrs := []string{"127.0.0.1:41340", "127.0.0.1:41341"}
	start := time.Now()
	_, err := DialTCPConfig(1, addrs, DialConfig{Timeout: 400 * time.Millisecond})
	if err == nil {
		t.Fatal("mesh established without the lower-ranked peer")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("accept failure took %v, want bounded by the ~400ms deadline", took)
	}
}

// TestCloseDuringCollectives closes transports while hosts are mid-barrier
// and mid-all-reduce, and asserts every waiter unblocks with an error
// wrapping ErrClosed. Run under -race, this also exercises the shutdown
// path for data races.
func TestCloseDuringCollectives(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			const n = 4
			var eps []Transport
			var closeAll func()
			if transport == "inproc" {
				hub := NewHub(n)
				eps = hub.Endpoints()
				closeAll = hub.Close
			} else {
				tcp := dialMesh(t, n, 41350)
				for _, ep := range tcp {
					eps = append(eps, ep)
				}
				closeAll = func() {
					for _, ep := range tcp {
						ep.Close()
					}
				}
			}

			errs := make(chan error, n)
			for h := 0; h < n; h++ {
				go func(tp Transport) {
					// Collectives in a loop: the close lands mid-flight.
					for {
						if err := Barrier(tp); err != nil {
							errs <- err
							return
						}
						if _, err := AllReduceSum(tp, 1); err != nil {
							errs <- err
							return
						}
					}
				}(eps[h])
			}
			time.Sleep(10 * time.Millisecond)
			closeAll()

			deadline := time.After(5 * time.Second)
			for i := 0; i < n; i++ {
				select {
				case err := <-errs:
					// Hosts racing the close may observe either the closed
					// mailbox or (TCP) a severed peer link; both are loud.
					var pe *PeerError
					if !errors.Is(err, ErrClosed) && !errors.As(err, &pe) {
						t.Fatalf("waiter %d: unexpected error %v", i, err)
					}
				case <-deadline:
					t.Fatal("collective still blocked 5s after Close")
				}
			}
		})
	}
}

// TestFaultTransportTransparent: the zero config injects nothing and the
// wrapper behaves exactly like the wrapped transport, collectives included.
func TestFaultTransportTransparent(t *testing.T) {
	const n = 3
	hub := NewHub(n)
	defer hub.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for h := 0; h < n; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			ft := NewFaultTransport(hub.Endpoint(h), FaultConfig{})
			if err := Barrier(ft); err != nil {
				errs[h] = err
				return
			}
			sum, err := AllReduceSum(ft, uint64(h))
			if err != nil {
				errs[h] = err
				return
			}
			if sum != 3 {
				errs[h] = fmt.Errorf("sum = %d", sum)
			}
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
}
