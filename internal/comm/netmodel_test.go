package comm

import (
	"sync"
	"testing"
	"time"
)

func TestNetModelCost(t *testing.T) {
	m := NetModel{Latency: time.Millisecond, Bandwidth: 1000} // 1000 B/s
	if !m.Enabled() {
		t.Fatal("model not enabled")
	}
	if got := m.cost(0); got != time.Millisecond {
		t.Fatalf("cost(0) = %v", got)
	}
	if got := m.cost(500); got != time.Millisecond+500*time.Millisecond {
		t.Fatalf("cost(500) = %v", got)
	}
	var zero NetModel
	if zero.Enabled() {
		t.Fatal("zero model enabled")
	}
	if zero.cost(1<<20) != 0 {
		t.Fatal("zero model has cost")
	}
	latOnly := NetModel{Latency: time.Millisecond}
	if latOnly.cost(1<<20) != time.Millisecond {
		t.Fatal("latency-only model charged for bytes")
	}
}

func TestModeledDeliveryDelays(t *testing.T) {
	hub := NewHubWithModel(2, NetModel{Latency: 30 * time.Millisecond})
	defer hub.Close()
	start := time.Now()
	if err := hub.Endpoint(0).Send(1, TagUser, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Endpoint(1).Recv(0, TagUser); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivery after %v, want ≥ ~30ms", elapsed)
	}
}

func TestModeledSelfSendInstant(t *testing.T) {
	hub := NewHubWithModel(1, NetModel{Latency: time.Second})
	defer hub.Close()
	start := time.Now()
	hub.Endpoint(0).Send(0, TagUser, []byte("x"))
	hub.Endpoint(0).Recv(0, TagUser)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("self-send paid link cost")
	}
}

// TestModeledLinkSerializes: n messages on one link take ~n × cost, while
// messages on distinct links ride in parallel.
func TestModeledLinkSerializes(t *testing.T) {
	const per = 20 * time.Millisecond
	hub := NewHubWithModel(3, NetModel{Latency: per})
	defer hub.Close()

	// Same link: 4 messages → ≥ 4×per before the last arrives.
	start := time.Now()
	for i := 0; i < 4; i++ {
		hub.Endpoint(0).Send(1, TagUser, []byte{byte(i)})
	}
	for i := 0; i < 4; i++ {
		hub.Endpoint(1).Recv(0, TagUser)
	}
	serial := time.Since(start)
	if serial < 4*per-5*time.Millisecond {
		t.Fatalf("serialized link took %v, want ≥ %v", serial, 4*per)
	}

	// Distinct links: parallel.
	start = time.Now()
	var wg sync.WaitGroup
	for _, dst := range []int{1, 2} {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			hub.Endpoint(0).Send(dst, TagUser+1, []byte("y"))
			hub.Endpoint(dst).Recv(0, TagUser+1)
		}(dst)
	}
	wg.Wait()
	if parallel := time.Since(start); parallel > 3*per {
		t.Fatalf("distinct links took %v, want ~%v", parallel, per)
	}
}

// TestModeledFIFOPreserved: delivery order per (sender, tag) survives the
// delay machinery.
func TestModeledFIFOPreserved(t *testing.T) {
	hub := NewHubWithModel(2, NetModel{Latency: time.Millisecond})
	defer hub.Close()
	for i := 0; i < 50; i++ {
		hub.Endpoint(0).Send(1, TagUser, []byte{byte(i)})
	}
	for i := 0; i < 50; i++ {
		got, err := hub.Endpoint(1).Recv(0, TagUser)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, got[0])
		}
	}
}
