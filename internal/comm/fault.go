package comm

// FaultTransport wraps any Transport and injects deterministic faults:
// connections that drop after a fixed number of messages, delayed frames,
// and truncated payloads. It exists to test the reliability contract the
// rest of the system assumes from the substrate — a BSP job over a faulty
// transport must terminate with a diagnosable *PeerError, never hang. The
// wrapper is transport-agnostic: it works identically over the in-process
// hub and TCP endpoints, so fault suites run the exact code paths of both.
//
// Faults are counter-based, so a given config is fully deterministic;
// Seed only feeds the optional delay jitter, making randomized timing
// reproducible run to run.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gluon/internal/trace"
)

// Injected fault causes, distinguishable via errors.Is on the *PeerError's
// wrapped cause.
var (
	// ErrInjectedFault marks a connection dropped by FaultConfig.KillAfterSends.
	ErrInjectedFault = errors.New("comm: injected fault: connection dropped")
	// ErrTruncatedFrame marks a payload truncated by FaultConfig.TruncateRecvAfter.
	ErrTruncatedFrame = errors.New("comm: injected fault: truncated frame")
)

// FaultConfig describes the faults a FaultTransport injects. The zero value
// injects nothing (a transparent wrapper).
type FaultConfig struct {
	// Seed seeds the jitter source used by DelayJitter so randomized
	// timing is reproducible. Counter-based faults ignore it.
	Seed int64

	// KillAfterSends > 0 drops the connection to KillPeer after that many
	// successful sends to it: the next send fails with *PeerError, the
	// peer is poisoned on the underlying transport (pending and future
	// receives involving it fail immediately), and — where the transport
	// supports it — the peer link is severed for real.
	KillAfterSends int
	// KillPeer is the rank whose connection KillAfterSends drops.
	KillPeer int

	// DelayEvery > 0 delays every DelayEvery-th send (counted across all
	// peers) by Delay before it reaches the underlying transport,
	// simulating a congested or flapping link.
	DelayEvery int
	// Delay is the injected hold time per delayed frame.
	Delay time.Duration
	// DelayJitter adds a uniformly random extra in [0, DelayJitter) drawn
	// from the seeded source.
	DelayJitter time.Duration

	// TruncateRecvAfter = n > 0 truncates the payload of the n-th
	// successful receive (Recv or RecvAny, counted together): the frame is
	// treated exactly as a TCP readLoop treats a short read — the payload
	// is discarded, the sender is poisoned, and the receive returns a
	// *PeerError wrapping ErrTruncatedFrame.
	TruncateRecvAfter int

	// TruncateVecSendAfter = n > 0 kills the n-th vectored send (SendVec
	// with a non-empty header) mid-frame: the write is modeled as dying
	// after the header vector but before the payload vector reached the
	// wire, which on TCP leaves the peer's read loop holding an
	// unrecoverable short frame. The payload is discarded, the destination
	// peer is poisoned, and the send returns a *PeerError wrapping
	// ErrTruncatedFrame. Plain Sends and nil-header SendVecs don't count.
	TruncateVecSendAfter int
}

// FaultTransport implements Transport (and PeerFailer) over an inner
// transport, injecting the faults described by its FaultConfig.
type FaultTransport struct {
	inner  Transport
	cfg    FaultConfig
	tracer traceRef

	mu        sync.Mutex
	rng       *rand.Rand
	sends     int // all sends, for DelayEvery
	killSends int // sends to KillPeer, for KillAfterSends
	recvs     int // successful receives, for TruncateRecvAfter
	vecSends  int // vectored (non-empty header) sends, for TruncateVecSendAfter
	killed    bool
}

// NewFaultTransport wraps t with fault injection per cfg.
func NewFaultTransport(t Transport, cfg FaultConfig) *FaultTransport {
	return &FaultTransport{inner: t, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Inner returns the wrapped transport.
func (f *FaultTransport) Inner() Transport { return f.inner }

// SetTrace implements TraceCarrier: injected faults are recorded here, and
// the recorder is passed through so the wrapped transport's frame-level
// events land in the same timeline.
func (f *FaultTransport) SetTrace(r *trace.Recorder) {
	f.tracer.SetTrace(r)
	if tc, ok := f.inner.(TraceCarrier); ok {
		tc.SetTrace(r)
	}
}

// HostID implements Transport.
func (f *FaultTransport) HostID() int { return f.inner.HostID() }

// NumHosts implements Transport.
func (f *FaultTransport) NumHosts() int { return f.inner.NumHosts() }

// injectSend advances the send counters and decides this send's fate:
// whether the connection kill fires, how long to delay, and — for vectored
// sends with a non-empty header — whether the write dies mid-frame.
func (f *FaultTransport) injectSend(to int, vectored bool) (kill, truncate bool, delay time.Duration) {
	f.mu.Lock()
	f.sends++
	if f.cfg.DelayEvery > 0 && f.sends%f.cfg.DelayEvery == 0 {
		delay = f.cfg.Delay
		if f.cfg.DelayJitter > 0 {
			delay += time.Duration(f.rng.Int63n(int64(f.cfg.DelayJitter)))
		}
	}
	if f.cfg.KillAfterSends > 0 && to == f.cfg.KillPeer {
		if f.killed {
			kill = true
		} else {
			f.killSends++
			if f.killSends > f.cfg.KillAfterSends {
				f.killed = true
				kill = true
			}
		}
	}
	if vectored && f.cfg.TruncateVecSendAfter > 0 {
		f.vecSends++
		truncate = f.vecSends == f.cfg.TruncateVecSendAfter
	}
	f.mu.Unlock()
	return kill, truncate, delay
}

// dispatchSend applies an injectSend verdict and forwards the surviving
// message to the inner transport.
func (f *FaultTransport) dispatchSend(to int, tag Tag, header, payload []byte, kill, truncate bool, delay time.Duration) error {
	if kill {
		traceFaultf(f.tracer.rec(), f.cfg.KillPeer, "injected kill after %d sends", f.cfg.KillAfterSends)
		crashDump(f.tracer.rec(), trace.TriggerInjectedFault, f.HostID(), f.cfg.KillPeer,
			fmt.Errorf("%w (kill after %d sends to host %d)", ErrInjectedFault, f.cfg.KillAfterSends, f.cfg.KillPeer))
		f.failPeerInner(f.cfg.KillPeer, ErrInjectedFault)
		// The transport owns the payload even when the send fails.
		PutBuf(payload)
		return &PeerError{Host: f.cfg.KillPeer, Err: ErrInjectedFault}
	}
	if truncate {
		// Model a vectored write dying between the header and payload
		// vectors: the frame on the wire is short and unrecoverable, so the
		// destination link is poisoned exactly as its read loop would.
		traceFaultf(f.tracer.rec(), to, "injected mid-frame death: vectored write split after %d-byte header", len(header))
		crashDump(f.tracer.rec(), trace.TriggerInjectedFault, f.HostID(), to,
			fmt.Errorf("%w (vectored write split mid-frame)", ErrTruncatedFrame))
		PutBuf(payload)
		f.failPeerInner(to, ErrTruncatedFrame)
		return &PeerError{Host: to, Err: fmt.Errorf("%w (vectored write split mid-frame)", ErrTruncatedFrame)}
	}
	if delay > 0 {
		traceFaultf(f.tracer.rec(), to, "injected delay %v", delay)
		time.Sleep(delay)
	}
	if header == nil {
		return f.inner.Send(to, tag, payload)
	}
	return f.inner.SendVec(to, tag, header, payload)
}

// Send implements Transport, injecting kill and delay faults.
func (f *FaultTransport) Send(to int, tag Tag, payload []byte) error {
	kill, _, delay := f.injectSend(to, false)
	return f.dispatchSend(to, tag, nil, payload, kill, false, delay)
}

// SendVec implements Transport, injecting kill, delay, and mid-frame
// truncation faults. Only sends with a non-empty header count as vectored
// for TruncateVecSendAfter.
func (f *FaultTransport) SendVec(to int, tag Tag, header, payload []byte) error {
	kill, truncate, delay := f.injectSend(to, len(header) > 0)
	if len(header) == 0 {
		header = nil
	}
	return f.dispatchSend(to, tag, header, payload, kill, truncate, delay)
}

// Recv implements Transport, injecting truncation faults.
func (f *FaultTransport) Recv(from int, tag Tag) ([]byte, error) {
	p, err := f.inner.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	if f.truncateThis() {
		return nil, f.truncate(from, p)
	}
	return p, nil
}

// RecvAny implements Transport, injecting truncation faults.
func (f *FaultTransport) RecvAny(tag Tag, from []int) (int, []byte, error) {
	h, p, err := f.inner.RecvAny(tag, from)
	if err != nil {
		return h, nil, err
	}
	if f.truncateThis() {
		return -1, nil, f.truncate(h, p)
	}
	return h, p, nil
}

// truncateThis reports whether the receive that just completed is the one
// TruncateRecvAfter targets.
func (f *FaultTransport) truncateThis() bool {
	if f.cfg.TruncateRecvAfter <= 0 {
		return false
	}
	f.mu.Lock()
	f.recvs++
	hit := f.recvs == f.cfg.TruncateRecvAfter
	f.mu.Unlock()
	return hit
}

// truncate discards a received payload as a malformed frame and poisons its
// sender, mirroring what the TCP read loop does on a short read.
func (f *FaultTransport) truncate(from int, payload []byte) error {
	traceFaultf(f.tracer.rec(), from, "injected truncated frame (%d bytes discarded)", len(payload))
	crashDump(f.tracer.rec(), trace.TriggerInjectedFault, f.HostID(), from,
		fmt.Errorf("%w (payload discarded)", ErrTruncatedFrame))
	PutBuf(payload)
	f.failPeerInner(from, ErrTruncatedFrame)
	return &PeerError{Host: from, Err: fmt.Errorf("%w (payload discarded)", ErrTruncatedFrame)}
}

// failPeerInner poisons a peer on the wrapped transport when it supports
// PeerFailer, so the fault outlives this one call.
func (f *FaultTransport) failPeerInner(host int, err error) {
	if pf, ok := f.inner.(PeerFailer); ok {
		pf.FailPeer(host, err)
	}
}

// FailPeer implements PeerFailer by delegating to the wrapped transport.
func (f *FaultTransport) FailPeer(host int, err error) {
	f.failPeerInner(host, err)
}

// FlushAndCure implements Rejoiner by delegation, so a checkpoint
// rendezvous works through injected-fault wrappers.
func (f *FaultTransport) FlushAndCure() {
	if rj, ok := f.inner.(Rejoiner); ok {
		rj.FlushAndCure()
	}
}

// ConnGeneration implements Rejoiner by delegation.
func (f *FaultTransport) ConnGeneration(peer int) int {
	if rj, ok := f.inner.(Rejoiner); ok {
		return rj.ConnGeneration(peer)
	}
	return 0
}

// Stats implements Transport.
func (f *FaultTransport) Stats() Stats { return f.inner.Stats() }

// Close implements Transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }
