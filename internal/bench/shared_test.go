package bench

import (
	"testing"

	"gluon/internal/fields"
	"gluon/internal/ref"
)

// TestSharedEnginesCorrect: the Table 4 shared-memory baselines compute
// the same answers as the sequential references (they feed a comparison
// table, so silent wrongness would poison it).
func TestSharedEnginesCorrect(t *testing.T) {
	p := TestParams()
	wl, err := NewWorkload("rmat", p, true)
	if err != nil {
		t.Fatal(err)
	}

	// bfs via both engines.
	wantBFS := ref.BFS(wl.CSR, wl.Source)
	gotL := sharedLigraBFS(wl.CSR, wl.Source, 2)
	gotG := sharedGaloisLabelProp(wl.CSR, initSourceLabels(wl.CSR, wl.Source), 2, stepHop)
	for u := range wantBFS {
		if gotL[u] != wantBFS[u] {
			t.Fatalf("ligra bfs node %d: %d, want %d", u, gotL[u], wantBFS[u])
		}
		if gotG[u] != wantBFS[u] {
			t.Fatalf("galois bfs node %d: %d, want %d", u, gotG[u], wantBFS[u])
		}
	}

	// sssp via both engines (weighted workload).
	wantSSSP := ref.SSSP(wl.CSR, wl.Source)
	gotL = sharedLigraSSSP(wl.CSR, wl.Source, 2)
	gotG = sharedGaloisLabelProp(wl.CSR, initSourceLabels(wl.CSR, wl.Source), 2, stepWeight)
	for u := range wantSSSP {
		if gotL[u] != wantSSSP[u] || gotG[u] != wantSSSP[u] {
			t.Fatalf("sssp node %d: ligra %d galois %d want %d", u, gotL[u], gotG[u], wantSSSP[u])
		}
	}

	// cc on the symmetrized graph.
	_, symCSR := wl.Symmetrized()
	wantCC := ref.CC(symCSR)
	gotL = sharedLigraCC(symCSR, 2)
	gotG = sharedGaloisLabelProp(symCSR, initGIDLabels(symCSR), 2, stepNone)
	for u := range wantCC {
		if gotL[u] != wantCC[u] || gotG[u] != wantCC[u] {
			t.Fatalf("cc node %d: ligra %d galois %d want %d", u, gotL[u], gotG[u], wantCC[u])
		}
	}

	// pr against the reference power iteration.
	wantPR := ref.PageRank(wl.CSR, 0.85, 1e-9, 100)
	gotPR := sharedPR(wl.CSR, 1e-9, 100, 2)
	for u := range wantPR {
		d := gotPR[u] - wantPR[u]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("pr node %d: %g, want %g", u, gotPR[u], wantPR[u])
		}
	}
	_ = fields.InfinityU32
}

// TestRunSharedDispatch covers the string-dispatch wrapper.
func TestRunSharedDispatch(t *testing.T) {
	p := TestParams()
	wl, err := NewWorkload("rmat", p, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"ligra", "galois"} {
		for _, b := range Benchmarks {
			if _, err := RunShared(engine, b, wl, p); err != nil {
				t.Fatalf("%s/%s: %v", engine, b, err)
			}
		}
	}
	if _, err := RunShared("bogus", "bfs", wl, p); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if _, err := RunShared("ligra", "bogus", wl, p); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}
