package bench

// Ratio-gate and perfdb-plumbing coverage with synthetic reports: the gate
// must be invariant to uniform machine-speed drift (the failure mode that
// forced BENCH_sync.json re-pins on PRs 5, 8, and 9) while still catching
// a same-process slowdown of an optimized tier, and the report ↔ history
// record converters must round-trip.

import (
	"strings"
	"testing"

	"gluon/internal/perfdb"
)

// synthReport builds a schema-v2 report; ns maps "h=<hosts>/<enc>" to
// ns/op, with 1% recorded noise and the allocs the real tiers show.
func synthReport(fp perfdb.Fingerprint, ns map[string]int64, allocs map[string]int64) *SyncBenchReport {
	rep := &SyncBenchReport{
		Schema:        SyncReportSchema,
		Graph:         "rmat scale=12 ef=8 seed=7 cvc",
		Workers:       0,
		Fingerprint:   &fp,
		FingerprintID: fp.ID(),
	}
	for _, row := range []struct {
		hosts int
		enc   string
	}{
		{2, "auto"}, {2, "unopt"}, {2, "comp-static"}, {2, "comp-adaptive"},
		{8, "auto"}, {8, "unopt"}, {8, "comp-static"}, {8, "comp-adaptive"},
	} {
		key := (&SyncBenchResult{Hosts: row.hosts, Encoding: row.enc}).Name()
		key = strings.TrimPrefix(key, "sync/")
		v, ok := ns[key]
		if !ok {
			continue
		}
		a := int64(26)
		if allocs != nil {
			if av, ok := allocs[key]; ok {
				a = av
			}
		}
		rep.Results = append(rep.Results, SyncBenchResult{
			Hosts: row.hosts, Encoding: row.enc,
			NsPerOp: v, BytesPerOp: 2048, AllocsPerOp: a,
			NoiseNs: v / 100, Reps: 8,
		})
	}
	return rep
}

var synthNs = map[string]int64{
	"h=2/auto": 21000, "h=2/unopt": 37000, "h=2/comp-static": 48000, "h=2/comp-adaptive": 49000,
	"h=8/auto": 90000, "h=8/unopt": 160000, "h=8/comp-static": 200000, "h=8/comp-adaptive": 205000,
}

func scaleNs(ns map[string]int64, num, den int64) map[string]int64 {
	out := make(map[string]int64, len(ns))
	for k, v := range ns {
		out[k] = v * num / den
	}
	return out
}

// TestCompareSyncRatiosMachineDrift: a machine 2× as fast (or 2× as slow)
// halves/doubles every row; the ratios cancel the drift, so the gate holds
// with no re-pin.
func TestCompareSyncRatiosMachineDrift(t *testing.T) {
	fpA := perfdb.Fingerprint{CPUModel: "Old Xeon", Cores: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	fpB := perfdb.Fingerprint{CPUModel: "New Epyc", Cores: 32, GOMAXPROCS: 32, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	base := synthReport(fpA, synthNs, nil)
	for _, scale := range []struct {
		name     string
		num, den int64
	}{{"2x faster", 1, 2}, {"2x slower", 2, 1}, {"unchanged", 1, 1}} {
		cur := synthReport(fpB, scaleNs(synthNs, scale.num, scale.den), nil)
		if err := CompareSyncRatios(base, cur, 0.10); err != nil {
			t.Fatalf("%s machine flagged by ratio gate: %v", scale.name, err)
		}
		// The absolute gate, by contrast, trips on the slower machine —
		// exactly why it must not run across fingerprints.
		if scale.name == "2x slower" {
			if err := CompareSyncBench(base, cur, 0.10); err == nil {
				t.Fatal("absolute gate unexpectedly passed on a 2x slower machine")
			}
		}
	}
}

// TestCompareSyncRatiosOptRegression: a 10% slowdown of one optimized tier
// with the reference unchanged must fail, naming the tier; the same
// slowdown applied to every row (pure machine drift) must not.
func TestCompareSyncRatiosOptRegression(t *testing.T) {
	fp := perfdb.Fingerprint{CPUModel: "Old Xeon", Cores: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	base := synthReport(fp, synthNs, nil)
	bad := scaleNs(synthNs, 1, 1)
	bad["h=2/auto"] = bad["h=2/auto"] * 110 / 100
	cur := synthReport(fp, bad, nil)
	err := CompareSyncRatios(base, cur, 0.05)
	if err == nil {
		t.Fatal("10% optimized-path regression passed the ratio gate")
	}
	if !strings.Contains(err.Error(), "hosts=2 auto") {
		t.Fatalf("violation does not name the tier: %v", err)
	}
	if strings.Contains(err.Error(), "comp-static") {
		t.Fatalf("unregressed tier flagged: %v", err)
	}
	drift := synthReport(fp, scaleNs(synthNs, 110, 100), nil)
	if err := CompareSyncRatios(base, drift, 0.05); err != nil {
		t.Fatalf("uniform 10%% drift flagged: %v", err)
	}
}

// TestCompareSyncRatiosAllocsHardFail: allocation growth fails every mode,
// reference row included, regardless of tolerance or noise.
func TestCompareSyncRatiosAllocsHardFail(t *testing.T) {
	fp := perfdb.Fingerprint{CPUModel: "Old Xeon", Cores: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	base := synthReport(fp, synthNs, nil)
	cur := synthReport(fp, synthNs, map[string]int64{"h=8/unopt": 27})
	err := CompareSyncRatios(base, cur, 10.0)
	if err == nil {
		t.Fatal("alloc regression passed the ratio gate")
	}
	if !strings.Contains(err.Error(), "hosts=8 unopt") || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc violation not pinned: %v", err)
	}
}

// TestCompareSyncRatiosNoiseWidening: a wobble inside the recorded noise
// band passes; the band is capped so recorded garbage noise cannot
// neutralize the gate.
func TestCompareSyncRatiosNoiseWidening(t *testing.T) {
	fp := perfdb.Fingerprint{CPUModel: "Old Xeon", Cores: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	base := synthReport(fp, synthNs, nil)
	// +7% on one tier with ~4×1% noise contributions and tol 5% → inside
	// the widened band.
	wobble := scaleNs(synthNs, 1, 1)
	wobble["h=2/auto"] = wobble["h=2/auto"] * 107 / 100
	if err := CompareSyncRatios(base, synthReport(fp, wobble, nil), 0.05); err != nil {
		t.Fatalf("in-band wobble flagged: %v", err)
	}
	// +45% with absurd recorded noise still fails: the cap holds the band
	// at tol + 25%.
	bad := scaleNs(synthNs, 1, 1)
	bad["h=2/auto"] = bad["h=2/auto"] * 145 / 100
	cur := synthReport(fp, bad, nil)
	for i := range cur.Results {
		cur.Results[i].NoiseNs = cur.Results[i].NsPerOp // 100% "noise"
	}
	if err := CompareSyncRatios(base, cur, 0.05); err == nil {
		t.Fatal("noise cap did not hold; gate neutralized itself")
	}
}

// TestReportRecordRoundTrip: report → history record → report preserves
// every gate-relevant field, so a BENCH_sync.json pinned via
// `gluon-perf -pin` gates identically to one written directly.
func TestReportRecordRoundTrip(t *testing.T) {
	fp := perfdb.Probe()
	rep := synthReport(fp, synthNs, nil)
	rep.Comm = &perfdb.Comm{BytesPerRound: 2048, CompressionRatio: 1.4, InvariantSkipShare: 0.33}
	rec := rep.Record("sync-bench")
	if rec.Graph != rep.Graph || rec.Workers != rep.Workers || len(rec.Benchmarks) != len(rep.Results) {
		t.Fatalf("record header mismatch: %+v", rec)
	}
	back, err := ReportFromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if back.FingerprintID != rep.FingerprintID || back.Schema != SyncReportSchema {
		t.Fatalf("round-trip header mismatch: %+v", back)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-trip lost rows: %d != %d", len(back.Results), len(rep.Results))
	}
	for i := range rep.Results {
		if back.Results[i] != rep.Results[i] {
			t.Fatalf("row %d mismatch: %+v != %+v", i, back.Results[i], rep.Results[i])
		}
	}
	if *back.Comm != *rep.Comm {
		t.Fatalf("comm mismatch: %+v != %+v", back.Comm, rep.Comm)
	}
	if err := CompareSyncRatios(rep, back, 0.0); err != nil {
		t.Fatalf("round-tripped report does not gate clean against itself: %v", err)
	}
}

// TestCommProbe: the traced probe yields live counters — nonzero
// bytes/round, compression ratio ≥ 1, and the deliberate silent rounds
// (every third) surfacing as a nonzero invariant-skip share.
func TestCommProbe(t *testing.T) {
	p := TestParams()
	c, err := CommProbe(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.BytesPerRound <= 0 {
		t.Fatalf("bytes/round = %v, want > 0", c.BytesPerRound)
	}
	if c.CompressionRatio < 1 {
		t.Fatalf("compression ratio = %v, want >= 1", c.CompressionRatio)
	}
	// 2 silent rounds of 6; allow slack for round attribution at the edges
	// but the share must be clearly nonzero.
	if c.InvariantSkipShare < 0.2 || c.InvariantSkipShare > 0.5 {
		t.Fatalf("invariant skip share = %v, want ~1/3", c.InvariantSkipShare)
	}
}
