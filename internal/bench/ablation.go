package bench

import (
	"fmt"
	"io"

	"gluon/internal/algorithms/sssp"
	"gluon/internal/autotune"
	"gluon/internal/dsys"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Ablations beyond the paper's Figure 10: the effect of the design choices
// DESIGN.md calls out — the adaptive metadata encoding (§4.2) against each
// fixed encoding, and the structural mirror subsets per policy.

// AblationEncodings compares the adaptive per-message encoding choice
// against pinning each fixed encoding, for every benchmark on one CVC
// partitioning. The adaptive row should never lose on volume.
func AblationEncodings(w io.Writer, p Params) error {
	hosts := p.Hosts[len(p.Hosts)-1]
	fmt.Fprintf(w, "Ablation: adaptive vs fixed metadata encodings — d-galois, cvc, %d hosts\n", hosts)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s\n", "bench", "adaptive", "dense", "bitvec", "indices")
	encodings := []struct {
		name string
		enc  gluon.Encoding
	}{
		{"adaptive", gluon.EncodingAuto},
		{"dense", gluon.EncodingDense},
		{"bitvec", gluon.EncodingBitvec},
		{"indices", gluon.EncodingIndices},
	}
	for _, benchName := range Benchmarks {
		wl, err := NewWorkload("rmat", p, benchName == "sssp")
		if err != nil {
			return err
		}
		vols := make([]uint64, len(encodings))
		for i, e := range encodings {
			opt := gluon.Opt()
			opt.ForceEncoding = e.enc
			m, err := RunSpec(Spec{System: DGalois, Benchmark: benchName,
				Hosts: hosts, Policy: partition.CVC, Opt: opt}, wl, p)
			if err != nil {
				return err
			}
			vols[i] = m.CommBytes
		}
		fmt.Fprintf(w, "%-6s %12s %12s %12s %12s\n", benchName,
			fmtBytes(vols[0]), fmtBytes(vols[1]), fmtBytes(vols[2]), fmtBytes(vols[3]))
		for i := 1; i < len(vols); i++ {
			if vols[0] > vols[i] {
				fmt.Fprintf(w, "  NOTE: adaptive lost to %s on %s (%d vs %d bytes)\n",
					encodings[i].name, benchName, vols[0], vols[i])
			}
		}
	}
	return nil
}

// AblationCompression measures the optional DEFLATE wrapper (§4.2's
// "other compression techniques") on the volume-heavy pagerank run, in its
// three tiers: off, the static size threshold, and the adaptive per-field
// CompressTuner policy.
func AblationCompression(w io.Writer, p Params) error {
	hosts := p.Hosts[len(p.Hosts)-1]
	fmt.Fprintf(w, "Ablation: optional message compression — d-galois pr, cvc, %d hosts\n", hosts)
	fmt.Fprintf(w, "%-12s %14s %12s\n", "config", "volume", "time")
	wl, err := NewWorkload("rmat", p, false)
	if err != nil {
		return err
	}
	configs := []struct {
		name string
		opt  func() gluon.Options
	}{
		{"plain", gluon.Opt},
		{"deflate", func() gluon.Options {
			opt := gluon.Opt()
			opt.Compress = true
			opt.CompressThreshold = 512
			return opt
		}},
		{"adaptive", func() gluon.Options {
			opt := gluon.Opt()
			opt.Compress = true
			opt.CompressPolicy = autotune.NewCompressTuner(autotune.CompressConfig{MinSize: 512})
			return opt
		}},
	}
	for _, c := range configs {
		m, err := RunSpec(Spec{System: DGalois, Benchmark: "pr",
			Hosts: hosts, Policy: partition.CVC, Opt: c.opt()}, wl, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %14s %12s\n", c.name, fmtBytes(m.CommBytes), fmtDur(m.Time))
	}
	return nil
}

// AblationScheduling compares FIFO chaotic relaxation against
// delta-stepping priority scheduling for distributed sssp — same converged
// distances, different intra-round work discipline.
func AblationScheduling(w io.Writer, p Params) error {
	hosts := p.Hosts[len(p.Hosts)-1]
	fmt.Fprintf(w, "Ablation: worklist scheduling — d-galois sssp, cvc, %d hosts\n", hosts)
	fmt.Fprintf(w, "%-12s %12s %8s %14s\n", "schedule", "time", "rounds", "volume")
	wl, err := NewWorkload("rmat", p, true)
	if err != nil {
		return err
	}
	factories := []struct {
		name    string
		factory dsys.ProgramFactory
	}{
		{"fifo", sssp.NewGalois(uint64(wl.Source), p.Workers)},
		{"delta", sssp.NewGaloisDelta(uint64(wl.Source), 0, p.Workers)},
	}
	for _, f := range factories {
		res, err := dsys.Run(wl.NumNodes, wl.Edges, dsys.RunConfig{
			Hosts: hosts, Policy: partition.CVC, Opt: gluon.Opt(),
			PolicyOptions: wl.PolicyOptions(), Net: p.Net,
		}, f.factory)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12s %8d %14s\n", f.name, fmtDur(res.Time), res.Rounds, fmtBytes(res.TotalCommBytes))
	}
	return nil
}

// AblationSubsets compares the structurally-pruned mirror subsets (OSI)
// against the all-mirrors pattern on each policy, reporting volume — the
// per-policy decomposition behind Figure 10's OSI bars.
func AblationSubsets(w io.Writer, p Params) error {
	hosts := p.Hosts[len(p.Hosts)-1]
	fmt.Fprintf(w, "Ablation: structural mirror subsets per policy — d-galois bfs, %d hosts\n", hosts)
	fmt.Fprintf(w, "%-6s %14s %14s %8s\n", "policy", "all-mirrors", "subsets", "saving")
	wl, err := NewWorkload("rmat", p, false)
	if err != nil {
		return err
	}
	for _, pol := range partition.AllKinds() {
		var vols [2]uint64
		for i, si := range []bool{false, true} {
			opt := gluon.Options{StructuralInvariants: si, TemporalInvariance: true}
			m, err := RunSpec(Spec{System: DGalois, Benchmark: "bfs",
				Hosts: hosts, Policy: pol, Opt: opt}, wl, p)
			if err != nil {
				return err
			}
			vols[i] = m.CommBytes
		}
		saving := 0.0
		if vols[0] > 0 {
			saving = 100 * (1 - float64(vols[1])/float64(vols[0]))
		}
		fmt.Fprintf(w, "%-6s %14s %14s %7.1f%%\n", pol, fmtBytes(vols[0]), fmtBytes(vols[1]), saving)
	}
	return nil
}
