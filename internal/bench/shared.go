package bench

import (
	"fmt"
	"time"

	"gluon/internal/bitset"
	"gluon/internal/engine/galois"
	"gluon/internal/engine/ligra"
	"gluon/internal/fields"
	"gluon/internal/graph"
)

// Shared-memory (single-host, no partitioning, no Gluon) runs of the
// engines, used by Table 4 to measure the overhead the distributed layer
// adds on one host — the paper's Ligra-vs-D-Ligra / Galois-vs-D-Galois
// comparison.

// RunShared runs the benchmark on the raw engine and returns the elapsed
// time. engine is "ligra" or "galois".
func RunShared(engine, benchmark string, w *Workload, p Params) (time.Duration, error) {
	g := w.CSR
	if benchmark == "cc" {
		_, g = w.Symmetrized()
	}
	start := time.Now()
	var err error
	switch engine {
	case "ligra":
		err = runSharedLigra(benchmark, g, w, p)
	case "galois":
		err = runSharedGalois(benchmark, g, w, p)
	default:
		err = fmt.Errorf("bench: unknown shared engine %q", engine)
	}
	return time.Since(start), err
}

func runSharedLigra(benchmark string, g *graph.CSR, w *Workload, p Params) error {
	switch benchmark {
	case "bfs":
		sharedLigraBFS(g, w.Source, p.Workers)
	case "sssp":
		sharedLigraSSSP(g, w.Source, p.Workers)
	case "cc":
		sharedLigraCC(g, p.Workers)
	case "pr":
		sharedPR(g, p.PRTolerance, p.PRMaxIters, p.Workers)
	default:
		return fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	return nil
}

func runSharedGalois(benchmark string, g *graph.CSR, w *Workload, p Params) error {
	switch benchmark {
	case "bfs":
		sharedGaloisLabelProp(g, initSourceLabels(g, w.Source), p.Workers, stepHop)
	case "sssp":
		sharedGaloisLabelProp(g, initSourceLabels(g, w.Source), p.Workers, stepWeight)
	case "cc":
		sharedGaloisLabelProp(g, initGIDLabels(g), p.Workers, stepNone)
	case "pr":
		sharedPR(g, p.PRTolerance, p.PRMaxIters, p.Workers)
	default:
		return fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	return nil
}

func initSourceLabels(g *graph.CSR, source uint32) []uint32 {
	labels := make([]uint32, g.NumNodes())
	for i := range labels {
		labels[i] = fields.InfinityU32
	}
	labels[source] = 0
	return labels
}

func initGIDLabels(g *graph.CSR) []uint32 {
	labels := make([]uint32, g.NumNodes())
	for i := range labels {
		labels[i] = uint32(i)
	}
	return labels
}

func sharedLigraBFS(g *graph.CSR, source uint32, workers int) []uint32 {
	lg := ligra.NewGraph(g, true)
	dist := initSourceLabels(g, source)
	frontier := bitset.New(g.NumNodes())
	frontier.Set(source)
	for frontier.Any() {
		frontier = ligra.EdgeMap(lg, frontier, ligra.EdgeMapConfig{
			Workers: workers,
			Cond:    func(d uint32) bool { return fields.AtomicLoadU32(&dist[d]) == fields.InfinityU32 },
			Push: func(s, d, wt uint32) bool {
				ds := fields.AtomicLoadU32(&dist[s])
				if ds == fields.InfinityU32 {
					return false
				}
				return fields.AtomicMinU32(&dist[d], ds+1)
			},
			Pull: func(d, s, wt uint32) bool {
				if dist[s] != fields.InfinityU32 && dist[d] > dist[s]+1 {
					dist[d] = dist[s] + 1
					return true
				}
				return false
			},
		})
	}
	return dist
}

func sharedLigraSSSP(g *graph.CSR, source uint32, workers int) []uint32 {
	lg := ligra.NewGraph(g, false)
	dist := initSourceLabels(g, source)
	frontier := bitset.New(g.NumNodes())
	frontier.Set(source)
	for frontier.Any() {
		frontier = ligra.EdgeMap(lg, frontier, ligra.EdgeMapConfig{
			Workers: workers,
			Push: func(s, d, wt uint32) bool {
				ds := fields.AtomicLoadU32(&dist[s])
				if ds == fields.InfinityU32 {
					return false
				}
				nd := ds + wt
				if nd < ds {
					nd = fields.InfinityU32 - 1
				}
				return fields.AtomicMinU32(&dist[d], nd)
			},
		})
	}
	return dist
}

func sharedLigraCC(g *graph.CSR, workers int) []uint32 {
	lg := ligra.NewGraph(g, true)
	comp := initGIDLabels(g)
	frontier := bitset.New(g.NumNodes())
	frontier.SetAll()
	for frontier.Any() {
		frontier = ligra.EdgeMap(lg, frontier, ligra.EdgeMapConfig{
			Workers: workers,
			Push: func(s, d, wt uint32) bool {
				return fields.AtomicMinU32(&comp[d], fields.AtomicLoadU32(&comp[s]))
			},
			Pull: func(d, s, wt uint32) bool {
				cs := fields.AtomicLoadU32(&comp[s])
				if cs < comp[d] {
					fields.AtomicStoreU32(&comp[d], cs)
					return true
				}
				return false
			},
		})
	}
	return comp
}

// stepKind selects how a label advances across an edge.
type stepKind int

const (
	stepHop    stepKind = iota // bfs: label+1
	stepWeight                 // sssp: label+weight
	stepNone                   // cc: label unchanged
)

// sharedGaloisLabelProp runs the asynchronous worklist engine to full
// quiescence in one do_all (no rounds at all on shared memory), with
// duplicate scheduling suppressed by a scheduled-bit set.
func sharedGaloisLabelProp(g *graph.CSR, labels []uint32, workers int, step stepKind) []uint32 {
	e := galois.New(g, workers)
	initial := make([]uint32, 0, 64)
	inWL := bitset.New(g.NumNodes())
	for u := uint32(0); u < g.NumNodes(); u++ {
		if labels[u] != fields.InfinityU32 {
			initial = append(initial, u)
			inWL.SetUnsync(u)
		}
	}
	e.DoAll(initial, func(e *galois.Engine, u uint32, push func(uint32)) {
		inWL.Clear(u)
		lu := fields.AtomicLoadU32(&labels[u])
		if lu == fields.InfinityU32 {
			return
		}
		nbrs := e.Graph.Neighbors(u)
		ws := e.Graph.EdgeWeights(u)
		for i, d := range nbrs {
			nl := lu
			switch step {
			case stepHop:
				nl = lu + 1
			case stepWeight:
				nl = lu + ws[i]
				if nl < lu {
					nl = fields.InfinityU32 - 1
				}
			}
			if fields.AtomicMinU32(&labels[d], nl) && inWL.TestAndSet(d) {
				push(d)
			}
		}
	})
	return labels
}

// sharedPR is the engine-independent pull pagerank on one CSR.
func sharedPR(g *graph.CSR, tol float64, maxIters, workers int) []float64 {
	if tol <= 0 {
		tol = 1e-6
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	const alpha = 0.85
	in := g.Transpose()
	n := g.NumNodes()
	outdeg := make([]float64, n)
	for u := uint32(0); u < n; u++ {
		outdeg[u] = float64(g.OutDegree(u))
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 - alpha
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for v := uint32(0); v < n; v++ {
			var sum float64
			for _, u := range in.Neighbors(v) {
				if outdeg[u] > 0 {
					sum += rank[u] / outdeg[u]
				}
			}
			next[v] = (1 - alpha) + alpha*sum
			if d := next[v] - rank[v]; d > tol || d < -tol {
				changed = true
			}
		}
		rank, next = next, rank
		if !changed {
			break
		}
	}
	return rank
}
