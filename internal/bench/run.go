package bench

import (
	"fmt"
	"math"
	"time"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/algorithms/cc"
	"gluon/internal/algorithms/pr"
	"gluon/internal/algorithms/sssp"
	"gluon/internal/dsys"
	"gluon/internal/gemini"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// SystemID names a system under test.
type SystemID string

// The systems of the evaluation.
const (
	DLigra  SystemID = "d-ligra"
	DGalois SystemID = "d-galois"
	DIrGL   SystemID = "d-irgl"
	Gemini  SystemID = "gemini"
)

// Benchmarks are the four applications of the evaluation.
var Benchmarks = []string{"bfs", "cc", "pr", "sssp"}

// Spec is one experimental configuration.
type Spec struct {
	System    SystemID
	Benchmark string // bfs, cc, pr, sssp
	Hosts     int
	Policy    partition.Kind
	Opt       gluon.Options
}

// Measurement is one run's outcome.
type Measurement struct {
	Spec       Spec
	Time       time.Duration
	MaxCompute time.Duration
	// MaxComm sums per-round maxima of measured sync time across hosts
	// (dsys.Result.MaxComm); zero for systems that don't report it.
	MaxComm   time.Duration
	CommBytes uint64
	Rounds    int
}

// CommTime returns the non-overlapping communication estimate (wall minus
// max-compute), clamped at zero — the Figure 10 split.
func (m Measurement) CommTime() time.Duration {
	if m.Time <= m.MaxCompute {
		return 0
	}
	return m.Time - m.MaxCompute
}

// factoryFor builds the program factory for a Gluon-based spec.
func factoryFor(s Spec, w *Workload, p Params) (dsys.ProgramFactory, error) {
	workers := p.Workers
	switch s.Benchmark {
	case "bfs":
		switch s.System {
		case DLigra:
			return bfs.NewLigra(uint64(w.Source), workers), nil
		case DGalois:
			return bfs.NewGalois(uint64(w.Source), workers), nil
		case DIrGL:
			return bfs.NewIrGL(uint64(w.Source), workers), nil
		}
	case "sssp":
		switch s.System {
		case DLigra:
			return sssp.NewLigra(uint64(w.Source), workers), nil
		case DGalois:
			return sssp.NewGalois(uint64(w.Source), workers), nil
		case DIrGL:
			return sssp.NewIrGL(uint64(w.Source), workers), nil
		}
	case "cc":
		switch s.System {
		case DLigra:
			return cc.NewLigra(workers), nil
		case DGalois:
			return cc.NewGalois(workers), nil
		case DIrGL:
			return cc.NewIrGL(workers), nil
		}
	case "pr":
		switch s.System {
		case DLigra:
			return pr.NewLigra(p.PRTolerance, workers), nil
		case DGalois:
			return pr.NewGalois(p.PRTolerance, workers), nil
		case DIrGL:
			return pr.NewIrGL(p.PRTolerance, workers), nil
		}
	}
	return nil, fmt.Errorf("bench: no factory for %s/%s", s.System, s.Benchmark)
}

// RunSpec executes one configuration and returns the measurement.
func RunSpec(s Spec, w *Workload, p Params) (Measurement, error) {
	m := Measurement{Spec: s}
	edges := w.Edges
	popt := w.PolicyOptions()
	if s.Benchmark == "cc" {
		edges, _ = w.Symmetrized()
		popt = w.SymPolicyOptions()
	}
	maxRounds := 0
	if s.Benchmark == "pr" {
		maxRounds = p.PRMaxIters
	}

	if s.System == Gemini {
		res, err := gemini.Run(w.NumNodes, edges, gemini.Algorithm(s.Benchmark), gemini.Config{
			Hosts:     s.Hosts,
			Workers:   p.Workers,
			Source:    uint64(w.Source),
			Tolerance: p.PRTolerance,
			MaxIters:  p.PRMaxIters,
			Net:       p.Net,
		})
		if err != nil {
			return m, err
		}
		m.Time = res.Time
		m.CommBytes = res.TotalCommBytes
		m.Rounds = res.Rounds
		return m, nil
	}

	factory, err := factoryFor(s, w, p)
	if err != nil {
		return m, err
	}
	res, err := dsys.Run(w.NumNodes, edges, dsys.RunConfig{
		Hosts:         s.Hosts,
		Policy:        s.Policy,
		Opt:           s.Opt,
		PolicyOptions: popt,
		MaxRounds:     maxRounds,
		Net:           p.Net,
		Trace:         p.Trace,
	}, factory)
	if err != nil {
		return m, err
	}
	m.Time = res.Time
	m.MaxCompute = res.MaxCompute
	m.MaxComm = res.MaxComm
	m.CommBytes = res.TotalCommBytes
	m.Rounds = res.Rounds
	return m, nil
}

// RunSpecPartitioned executes a Gluon-based configuration over pre-built
// partitions (Figure 10 reuses one partitioning across optimization
// settings).
func RunSpecPartitioned(s Spec, w *Workload, p Params, parts []*partition.Partition) (Measurement, error) {
	m := Measurement{Spec: s}
	factory, err := factoryFor(s, w, p)
	if err != nil {
		return m, err
	}
	maxRounds := 0
	if s.Benchmark == "pr" {
		maxRounds = p.PRMaxIters
	}
	res, err := dsys.RunPartitioned(parts, dsys.RunConfig{
		Hosts:     s.Hosts,
		Policy:    s.Policy,
		Opt:       s.Opt,
		MaxRounds: maxRounds,
		Net:       p.Net,
		Trace:     p.Trace,
	}, factory)
	if err != nil {
		return m, err
	}
	m.Time = res.Time
	m.MaxCompute = res.MaxCompute
	m.MaxComm = res.MaxComm
	m.CommBytes = res.TotalCommBytes
	m.Rounds = res.Rounds
	return m, nil
}

// Geomean returns the geometric mean of positive ratios.
func Geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, r := range ratios {
		if r > 0 {
			sum += math.Log(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// fmtBytes renders a byte count the way the paper annotates volumes.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtDur renders a duration with ms precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
