package bench

import (
	"bytes"
	"strings"
	"testing"

	"gluon/internal/gluon"
)

// TestAllTablesAndFiguresRun smoke-tests every experiment at test scale:
// each must run without error and print a non-trivial report.
func TestAllTablesAndFiguresRun(t *testing.T) {
	p := TestParams()
	experiments := []struct {
		name string
		run  func(*bytes.Buffer) error
	}{
		{"table1", func(b *bytes.Buffer) error { return Table1(b, p) }},
		{"table2", func(b *bytes.Buffer) error { return Table2(b, p) }},
		{"table3", func(b *bytes.Buffer) error { return Table3(b, p) }},
		{"table4", func(b *bytes.Buffer) error { return Table4(b, p) }},
		{"table5", func(b *bytes.Buffer) error { return Table5(b, p) }},
		{"figure8", func(b *bytes.Buffer) error { return Figure8(b, p) }},
		{"figure9", func(b *bytes.Buffer) error { return Figure9(b, p) }},
		{"figure10", func(b *bytes.Buffer) error { return Figure10(b, p) }},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.run(&buf); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
			out := buf.String()
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("%s: report too short:\n%s", e.name, out)
			}
			t.Logf("\n%s", out)
		})
	}
}

// TestOptimizationReducesVolume checks the repository's headline claim: the
// fully-optimized configuration (OSTI) moves strictly fewer bytes than
// UNOPT for every benchmark on a vertex-cut partitioning.
func TestOptimizationReducesVolume(t *testing.T) {
	p := TestParams()
	for _, benchName := range Benchmarks {
		wl, err := NewWorkload("rmat", p, benchName == "sssp")
		if err != nil {
			t.Fatal(err)
		}
		var vols = map[string]uint64{}
		for _, oc := range OptConfigs() {
			m, err := RunSpec(Spec{System: DGalois, Benchmark: benchName, Hosts: 4,
				Policy: "cvc", Opt: oc.Opt}, wl, p)
			if err != nil {
				t.Fatal(err)
			}
			vols[oc.Name] = m.CommBytes
		}
		if vols["OSTI"] >= vols["UNOPT"] {
			t.Errorf("%s: OSTI volume %d not below UNOPT %d", benchName, vols["OSTI"], vols["UNOPT"])
		}
		t.Logf("%s: UNOPT=%d OSI=%d OTI=%d OSTI=%d", benchName,
			vols["UNOPT"], vols["OSI"], vols["OTI"], vols["OSTI"])
	}
}

// TestGeminiBaselineSendsMore checks the Figure 8b shape: the baseline's
// communication volume exceeds the Gluon systems' on vertex-cut runs.
func TestGeminiBaselineSendsMore(t *testing.T) {
	p := TestParams()
	wl, err := NewWorkload("rmat", p, false)
	if err != nil {
		t.Fatal(err)
	}
	gal, err := RunSpec(Spec{System: DGalois, Benchmark: "bfs", Hosts: 4,
		Policy: "cvc", Opt: gluon.Opt()}, wl, p)
	if err != nil {
		t.Fatal(err)
	}
	gem, err := RunSpec(Spec{System: Gemini, Benchmark: "bfs", Hosts: 4}, wl, p)
	if err != nil {
		t.Fatal(err)
	}
	if gem.CommBytes <= gal.CommBytes {
		t.Errorf("baseline volume %d not above d-galois %d", gem.CommBytes, gal.CommBytes)
	}
	t.Logf("bfs volumes: gemini=%d d-galois=%d (%.1fx)",
		gem.CommBytes, gal.CommBytes, float64(gem.CommBytes)/float64(gal.CommBytes))
}

// TestAblations runs the extra ablation studies and checks the adaptive
// encoding never loses to a fixed one on volume.
func TestAblations(t *testing.T) {
	p := TestParams()
	var buf bytes.Buffer
	if err := AblationEncodings(&buf, p); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NOTE: adaptive lost") {
		t.Fatalf("adaptive encoding lost to a fixed encoding:\n%s", buf.String())
	}
	t.Logf("\n%s", buf.String())
	buf.Reset()
	if err := AblationSubsets(&buf, p); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
}
