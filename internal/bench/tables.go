package bench

import (
	"fmt"
	"io"
	"time"

	"gluon/internal/engine/ligra"
	"gluon/internal/gemini"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Table1 reproduces "Inputs and their key properties": |V|, |E|, |E|/|V|,
// max out-degree, and max in-degree for each workload family.
func Table1(w io.Writer, p Params) error {
	fmt.Fprintf(w, "Table 1: input graphs and key properties (scale=%d, edge factor=%d)\n", p.Scale, p.EdgeFactor)
	fmt.Fprintf(w, "%-14s %12s %14s %8s %12s %12s\n", "graph", "|V|", "|E|", "|E|/|V|", "max Dout", "max Din")
	for _, kind := range workloadKinds {
		wl, err := NewWorkload(kind, p, false)
		if err != nil {
			return err
		}
		s := wl.CSR.Stats()
		fmt.Fprintf(w, "%-14s %12d %14d %8.1f %12d %12d\n",
			wl.Name, s.NumNodes, s.NumEdges, s.AvgDegree, s.MaxOutDeg, s.MaxInDeg)
	}
	return nil
}

// Table2 reproduces "Graph construction time": the time to partition the
// edge list and construct each host's in-memory representation, for
// D-Ligra, D-Galois (Gluon partitioner, CVC) and the Gemini-style baseline
// (chunked edge-cut), across host counts. D-Ligra additionally builds the
// in-edge representation its direction optimization needs, as in the paper
// ("construct different in-memory representations").
func Table2(w io.Writer, p Params) error {
	fmt.Fprintf(w, "Table 2: graph construction time (sec): partition + in-memory build\n")
	fmt.Fprintf(w, "%-14s %6s %12s %12s %12s\n", "graph", "hosts", "d-ligra", "d-galois", "gemini")
	for _, kind := range []string{"rmat", "webcrawl"} {
		wl, err := NewWorkload(kind, p, false)
		if err != nil {
			return err
		}
		popt := wl.PolicyOptions()
		for _, hosts := range p.Hosts {
			if hosts < 2 {
				continue
			}
			dGaloisTime, err := timePartition(wl, partition.CVC, hosts, popt, false)
			if err != nil {
				return err
			}
			dLigraTime, err := timePartition(wl, partition.CVC, hosts, popt, true)
			if err != nil {
				return err
			}
			gemStart := time.Now()
			if _, err := gemini.Partition(wl.NumNodes, wl.Edges, hosts, popt.OutDegrees); err != nil {
				return err
			}
			gemTime := time.Since(gemStart)
			fmt.Fprintf(w, "%-14s %6d %12s %12s %12s\n",
				wl.Name, hosts, fmtDur(dLigraTime), fmtDur(dGaloisTime), fmtDur(gemTime))
		}
	}
	return nil
}

// timePartition times partitioning + local construction; buildIn adds the
// in-edge (transpose) build D-Ligra performs.
func timePartition(wl *Workload, kind partition.Kind, hosts int, popt partition.Options, buildIn bool) (time.Duration, error) {
	start := time.Now()
	pol, err := partition.NewPolicy(kind, wl.NumNodes, hosts, popt)
	if err != nil {
		return 0, err
	}
	parts, err := partition.PartitionAll(wl.NumNodes, wl.Edges, pol)
	if err != nil {
		return 0, err
	}
	if buildIn {
		for _, part := range parts {
			ligra.NewGraph(part.Graph, true)
		}
	}
	return time.Since(start), nil
}

// Table3 reproduces "Fastest execution time of all systems using the
// best-performing number of hosts": for each benchmark × graph, the best
// time over the host sweep for D-Ligra, D-Galois, Gemini, and D-IrGL
// (device counts), with the winning count in parentheses. As in the paper —
// whose Table 3 inputs do not fit in one host's memory — only distributed
// configurations (≥ 2 hosts) compete.
func Table3(w io.Writer, p Params) error {
	hostSweep := make([]int, 0, len(p.Hosts))
	for _, h := range p.Hosts {
		if h >= 2 || len(p.Hosts) == 1 {
			hostSweep = append(hostSweep, h)
		}
	}
	if len(hostSweep) == 0 {
		hostSweep = p.Hosts
	}
	fmt.Fprintf(w, "Table 3: fastest execution time (sec), best host/device count in parens\n")
	fmt.Fprintf(w, "%-6s %-14s %16s %16s %16s %16s\n", "bench", "graph", "d-ligra", "d-galois", "gemini", "d-irgl")
	type best struct {
		t     time.Duration
		hosts int
	}
	var gluonTimes, geminiTimes []float64
	for _, benchName := range Benchmarks {
		for _, kind := range []string{"rmat", "webcrawl"} {
			wl, err := NewWorkload(kind, p, benchName == "sssp")
			if err != nil {
				return err
			}
			row := make(map[SystemID]best)
			for _, sys := range []SystemID{DLigra, DGalois, Gemini} {
				b := best{t: 1 << 62}
				for _, hosts := range hostSweep {
					m, err := RunSpec(Spec{System: sys, Benchmark: benchName, Hosts: hosts,
						Policy: partition.CVC, Opt: gluon.Opt()}, wl, p)
					if err != nil {
						return err
					}
					if m.Time < b.t {
						b = best{t: m.Time, hosts: hosts}
					}
				}
				row[sys] = b
			}
			b := best{t: 1 << 62}
			for _, devs := range p.Devices {
				if devs < 2 && len(p.Devices) > 1 {
					continue
				}
				m, err := RunSpec(Spec{System: DIrGL, Benchmark: benchName, Hosts: devs,
					Policy: partition.CVC, Opt: gluon.Opt()}, wl, p)
				if err != nil {
					return err
				}
				if m.Time < b.t {
					b = best{t: m.Time, hosts: devs}
				}
			}
			row[DIrGL] = b
			fmt.Fprintf(w, "%-6s %-14s %11s (%2d) %11s (%2d) %11s (%2d) %11s (%2d)\n",
				benchName, wl.Name,
				fmtDur(row[DLigra].t), row[DLigra].hosts,
				fmtDur(row[DGalois].t), row[DGalois].hosts,
				fmtDur(row[Gemini].t), row[Gemini].hosts,
				fmtDur(row[DIrGL].t), row[DIrGL].hosts)
			gluonTimes = append(gluonTimes, row[DGalois].t.Seconds())
			geminiTimes = append(geminiTimes, row[Gemini].t.Seconds())
		}
	}
	var ratios []float64
	for i := range gluonTimes {
		ratios = append(ratios, geminiTimes[i]/gluonTimes[i])
	}
	fmt.Fprintf(w, "geomean speedup of d-galois over gemini baseline: %.2fx (paper: ~3.9x)\n", Geomean(ratios))
	return nil
}

// Table4 reproduces "Execution time on a single node": raw shared-memory
// engines versus the distributed systems on one host — the overhead of the
// Gluon layer.
func Table4(w io.Writer, p Params) error {
	fmt.Fprintf(w, "Table 4: single-host execution time (sec)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "system", "bfs", "cc", "pr", "sssp")
	for _, kind := range []string{"twitterlike", "rmat"} {
		fmt.Fprintf(w, "-- %s --\n", kind)
		times := map[string]map[string]time.Duration{}
		for _, row := range []string{"ligra", "d-ligra", "galois", "d-galois", "gemini"} {
			times[row] = map[string]time.Duration{}
		}
		for _, benchName := range Benchmarks {
			wl, err := NewWorkload(kind, p, benchName == "sssp")
			if err != nil {
				return err
			}
			if t, err := RunShared("ligra", benchName, wl, p); err == nil {
				times["ligra"][benchName] = t
			} else {
				return err
			}
			if t, err := RunShared("galois", benchName, wl, p); err == nil {
				times["galois"][benchName] = t
			} else {
				return err
			}
			for sys, rowName := range map[SystemID]string{DLigra: "d-ligra", DGalois: "d-galois", Gemini: "gemini"} {
				m, err := RunSpec(Spec{System: sys, Benchmark: benchName, Hosts: 1,
					Policy: partition.OEC, Opt: gluon.Opt()}, wl, p)
				if err != nil {
					return err
				}
				times[rowName][benchName] = m.Time
			}
		}
		for _, row := range []string{"ligra", "d-ligra", "galois", "d-galois", "gemini"} {
			fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.3f\n", row,
				times[row]["bfs"].Seconds(), times[row]["cc"].Seconds(),
				times[row]["pr"].Seconds(), times[row]["sssp"].Seconds())
		}
	}
	return nil
}

// Table5 reproduces "Execution time on a single node with 4 devices":
// D-IrGL under each partitioning policy versus a Gunrock-style baseline
// (device engine restricted to OEC with the unoptimized GAS wire format,
// the discipline single-node multi-GPU systems use).
func Table5(w io.Writer, p Params) error {
	const devices = 4
	fmt.Fprintf(w, "Table 5: 4-device execution time (sec) by partitioning policy\n")
	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s\n", "system", "bfs", "cc", "pr", "sssp")
	for _, kind := range []string{"rmat", "twitterlike"} {
		fmt.Fprintf(w, "-- %s --\n", kind)
		rows := []struct {
			name   string
			policy partition.Kind
			opt    gluon.Options
		}{
			{"gunrock-style", partition.OEC, gluon.Unopt()},
			{"d-irgl(oec)", partition.OEC, gluon.Opt()},
			{"d-irgl(iec)", partition.IEC, gluon.Opt()},
			{"d-irgl(hvc)", partition.HVC, gluon.Opt()},
			{"d-irgl(cvc)", partition.CVC, gluon.Opt()},
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%-18s", row.name)
			for _, benchName := range Benchmarks {
				wl, err := NewWorkload(kind, p, benchName == "sssp")
				if err != nil {
					return err
				}
				m, err := RunSpec(Spec{System: DIrGL, Benchmark: benchName, Hosts: devices,
					Policy: row.policy, Opt: row.opt}, wl, p)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %8.3f", m.Time.Seconds())
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
