// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) at laptop scale. Each experiment
// has a function here (Table1..Table5, Figure8..Figure10) that runs the
// sweep and prints paper-style rows; cmd/gluon-bench is the CLI and
// bench_test.go exposes each as a testing.B benchmark.
//
// See DESIGN.md §5 for the experiment index and §2 for the workload
// substitutions (scaled-down synthetic graphs standing in for the paper's
// web crawls).
package bench

import (
	"fmt"
	"sync"
	"time"

	"gluon/internal/comm"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
	"gluon/internal/trace"
)

// Params sizes the experiment sweeps. The zero value is not valid; use
// DefaultParams (moderate, minutes for the full suite) or TestParams
// (small, for CI).
type Params struct {
	// Scale: graphs have 2^Scale nodes.
	Scale uint
	// EdgeFactor: average out-degree.
	EdgeFactor uint
	// Hosts are the host counts swept in scaling experiments.
	Hosts []int
	// Devices are the device counts for D-IrGL experiments.
	Devices []int
	// Workers is the per-host worker count (0 = GOMAXPROCS).
	Workers int
	// PRTolerance and PRMaxIters configure pagerank runs.
	PRTolerance float64
	PRMaxIters  int
	// Seed drives graph generation.
	Seed uint64
	// Net adds simulated link costs to timing experiments. Volumes are
	// unaffected. DESIGN.md §2 explains the calibration: the graphs here
	// are ~4 orders of magnitude smaller than the paper's, so the link
	// bandwidth is scaled down to keep the communication/computation ratio
	// in the paper's network-bound regime.
	Net comm.NetModel
	// Trace, when non-nil, records every Gluon-based run of the sweep into
	// one tracing session (gemini runs are not instrumented).
	Trace *trace.Trace
}

// DefaultParams is the standard configuration for cmd/gluon-bench: scaled
// graphs plus a scaled link model (100 MB/s, 50 µs) so communication
// dominates the way it does on the paper's clusters.
func DefaultParams() Params {
	return Params{
		Scale:       16,
		EdgeFactor:  16,
		Hosts:       []int{1, 2, 4, 8},
		Devices:     []int{1, 2, 4, 8},
		Workers:     2,
		PRTolerance: 1e-6,
		PRMaxIters:  50,
		Seed:        2018,
		Net:         comm.NetModel{Latency: 50 * time.Microsecond, Bandwidth: 50e6},
	}
}

// TestParams is a fast configuration for unit tests.
func TestParams() Params {
	return Params{
		Scale:       9,
		EdgeFactor:  8,
		Hosts:       []int{1, 2, 4},
		Devices:     []int{1, 2, 4},
		Workers:     2,
		PRTolerance: 1e-6,
		PRMaxIters:  30,
		Seed:        2018,
	}
}

// Workload is a prepared input graph with the artifacts the experiments
// need: the raw edge list (for partitioning), the assembled CSR (for
// properties and single-host references), and the symmetrized variant cc
// uses.
type Workload struct {
	Name     string
	Kind     string
	NumNodes uint64
	Weighted bool

	Edges []graph.Edge
	CSR   *graph.CSR

	// Source is the max-out-degree node, the paper's bfs/sssp source.
	Source uint32

	symOnce  sync.Once
	symEdges []graph.Edge
	symCSR   *graph.CSR

	poptOnce sync.Once
	popt     partition.Options
}

// workloadKinds are the graph families standing in for the paper's inputs
// (Table 1): rmat and kron as in the paper; twitterlike and webcrawl as
// scaled stand-ins for twitter40 and clueweb12/wdc12.
var workloadKinds = []string{"rmat", "kron", "twitterlike", "webcrawl"}

// NewWorkload generates one workload.
func NewWorkload(kind string, p Params, weighted bool) (*Workload, error) {
	cfg := generate.Config{
		Kind:       kind,
		Scale:      p.Scale,
		EdgeFactor: p.EdgeFactor,
		Seed:       p.Seed,
		Weighted:   weighted,
		MaxWeight:  100,
	}
	edges, err := generate.Edges(cfg)
	if err != nil {
		return nil, err
	}
	csr, err := graph.FromEdges(cfg.NumNodes(), edges, weighted)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:     fmt.Sprintf("%s%d", kind, p.Scale),
		Kind:     kind,
		NumNodes: cfg.NumNodes(),
		Weighted: weighted,
		Edges:    edges,
		CSR:      csr,
		Source:   csr.MaxOutDegreeNode(),
	}, nil
}

// Symmetrized returns the undirected variant (built once) for cc.
func (w *Workload) Symmetrized() ([]graph.Edge, *graph.CSR) {
	w.symOnce.Do(func() {
		w.symEdges = ref.Symmetrize(w.Edges)
		g, err := graph.FromEdges(w.NumNodes, w.symEdges, false)
		if err != nil {
			panic(fmt.Sprintf("bench: symmetrize %s: %v", w.Name, err))
		}
		w.symCSR = g
	})
	return w.symEdges, w.symCSR
}

// PolicyOptions returns degree-based policy options (built once).
func (w *Workload) PolicyOptions() partition.Options {
	w.poptOnce.Do(func() {
		out := make([]uint32, w.NumNodes)
		for u := uint32(0); u < w.CSR.NumNodes(); u++ {
			out[u] = w.CSR.OutDegree(u)
		}
		w.popt = partition.Options{OutDegrees: out, InDegrees: w.CSR.InDegrees()}
	})
	return w.popt
}

// SymPolicyOptions returns policy options for the symmetrized graph.
func (w *Workload) SymPolicyOptions() partition.Options {
	_, sg := w.Symmetrized()
	out := make([]uint32, w.NumNodes)
	for u := uint32(0); u < sg.NumNodes(); u++ {
		out[u] = sg.OutDegree(u)
	}
	return partition.Options{OutDegrees: out, InDegrees: sg.InDegrees()}
}
