package bench

// Sync hot-path snapshot: the same measurement as BenchmarkSyncHotPath in
// internal/gluon, exported through gluon-bench as machine-readable JSON
// (BENCH_sync.json at the repo root) so successive PRs have a perf
// trajectory to compare against. One result per encoding mode × host
// count: wall time, bytes allocated, and allocations per full cluster-wide
// Sync (every host encodes, ships, receives, and applies one round).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"gluon/internal/autotune"
	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// SyncBenchResult is one sync hot-path measurement.
type SyncBenchResult struct {
	Hosts       int    `json:"hosts"`
	Encoding    string `json:"encoding"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// SyncBenchReport is the BENCH_sync.json document.
type SyncBenchReport struct {
	Graph   string            `json:"graph"`
	Workers int               `json:"sync_workers"`
	Results []SyncBenchResult `json:"results"`
}

// syncBenchCluster mirrors the BenchmarkSyncHotPath fixture through the
// public API: per-host substrates over a CVC partitioning with a uint32
// min/set field, updates on every fifth proxy.
type syncBenchCluster struct {
	parts  []*partition.Partition
	gs     []*gluon.Gluon
	labels [][]uint32
	upds   []*bitset.Bitset
	close  func()
}

func newSyncBenchCluster(p Params, hosts int, opt gluon.Options) (*syncBenchCluster, error) {
	cfg := generate.Config{Kind: "rmat", Scale: p.Scale, EdgeFactor: p.EdgeFactor, Seed: p.Seed}
	edges, err := generate.Edges(cfg)
	if err != nil {
		return nil, err
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		return nil, err
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		return nil, err
	}
	hub := comm.NewHub(hosts)
	c := &syncBenchCluster{parts: parts, close: hub.Close}
	c.gs = make([]*gluon.Gluon, hosts)
	c.labels = make([][]uint32, hosts)
	c.upds = make([]*bitset.Bitset, hosts)
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			c.gs[h], errs[h] = gluon.New(parts[h], hub.Endpoint(h), opt)
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			hub.Close()
			return nil, err
		}
	}
	for h := 0; h < hosts; h++ {
		c.labels[h] = make([]uint32, parts[h].NumProxies())
		for i := range c.labels[h] {
			c.labels[h][i] = fields.InfinityU32
		}
		c.upds[h] = bitset.New(parts[h].NumProxies())
	}
	return c, nil
}

func (c *syncBenchCluster) markUpdates(round int) {
	for h := range c.gs {
		c.upds[h].Reset()
		n := c.parts[h].NumProxies()
		for i := uint32(0); i < n; i += 5 {
			c.upds[h].SetUnsync(i)
			c.labels[h][i] = uint32(round)
		}
	}
}

func (c *syncBenchCluster) syncAll() error {
	errs := make([]error, len(c.gs))
	var wg sync.WaitGroup
	for h := range c.gs {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			f := gluon.Field[uint32]{
				ID:        90,
				Name:      "syncbench",
				Write:     gluon.AtDestination,
				Read:      gluon.AtSource,
				Reduce:    fields.MinU32{Labels: c.labels[h]},
				Broadcast: fields.SetU32{Labels: c.labels[h]},
			}
			errs[h] = gluon.Sync(c.gs[h], f, c.upds[h])
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// encSpec pairs an encoding name with an options factory. A factory (not a
// value) because the adaptive-compression tier carries a stateful
// CompressTuner: each measured cluster must start from an untrained policy,
// or the 8-host row would inherit what the 2-host row learned.
type encSpec struct {
	name string
	opt  func() gluon.Options
}

func allEncodings() []encSpec {
	return []encSpec{
		{"auto", gluon.Opt},
		{"dense", withEncoding(gluon.EncodingDense)},
		{"bitvec", withEncoding(gluon.EncodingBitvec)},
		{"indices", withEncoding(gluon.EncodingIndices)},
		{"unopt", gluon.Unopt},
		{"comp-static", compStatic},
		{"comp-adaptive", compAdaptive},
	}
}

// compStatic is the static-threshold compression tier: every payload at or
// above CompressThreshold gets the DEFLATE attempt, the pre-policy
// behaviour.
func compStatic() gluon.Options {
	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressThreshold = 256
	return opt
}

// compAdaptive is the adaptive tier: a fresh CompressTuner decides per
// field from observed ratio and encode cost. MinSize matches the static
// tier's threshold so the two rows differ only in the adaptive decision.
func compAdaptive() gluon.Options {
	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressPolicy = autotune.NewCompressTuner(autotune.CompressConfig{MinSize: 256})
	return opt
}

// SyncBench measures the sync hot path per encoding mode × host count.
func SyncBench(p Params) (*SyncBenchReport, error) {
	return syncBenchFor(p, []int{2, 8}, allEncodings())
}

// measureReps repeats each row's measurement and keeps the fastest: wall
// time on a shared machine is noisy, and load spikes only ever inflate a
// rep, so the min estimates the true cost. Allocations are deterministic
// and identical across reps. Eight reps (not fewer) because the guard
// compares two independent min estimates against a 5% tolerance — on a
// small or busy machine both must converge to the true floor or the gate
// flaps.
const measureReps = 8

func syncBenchFor(p Params, hostCounts []int, encodings []encSpec) (*SyncBenchReport, error) {
	rep := &SyncBenchReport{
		Graph:   fmt.Sprintf("rmat scale=%d ef=%d seed=%d cvc", p.Scale, p.EdgeFactor, p.Seed),
		Workers: p.Workers,
	}
	for _, hosts := range hostCounts {
		for _, e := range encodings {
			opt := e.opt()
			opt.SyncWorkers = p.Workers
			c, err := newSyncBenchCluster(p, hosts, opt)
			if err != nil {
				return nil, fmt.Errorf("sync bench hosts=%d %s: %w", hosts, e.name, err)
			}
			var benchErr error
			var best testing.BenchmarkResult
			for trial := 0; trial < measureReps && benchErr == nil; trial++ {
				r := testing.Benchmark(func(b *testing.B) {
					// Warm one round so memoization and pools are primed.
					c.markUpdates(0)
					if err := c.syncAll(); err != nil {
						benchErr = err
						b.SkipNow()
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.markUpdates(i + 1)
						if err := c.syncAll(); err != nil {
							benchErr = err
							b.SkipNow()
						}
					}
				})
				if trial == 0 || r.NsPerOp() < best.NsPerOp() {
					best = r
				}
			}
			c.close()
			if benchErr != nil {
				return nil, fmt.Errorf("sync bench hosts=%d %s: %w", hosts, e.name, benchErr)
			}
			rep.Results = append(rep.Results, SyncBenchResult{
				Hosts:       hosts,
				Encoding:    e.name,
				NsPerOp:     best.NsPerOp(),
				BytesPerOp:  best.AllocedBytesPerOp(),
				AllocsPerOp: best.AllocsPerOp(),
			})
		}
	}
	return rep, nil
}

func withEncoding(enc gluon.Encoding) func() gluon.Options {
	return func() gluon.Options {
		opt := gluon.Opt()
		opt.ForceEncoding = enc
		return opt
	}
}

// WriteSyncBenchJSON runs SyncBench and writes the report as indented JSON.
func WriteSyncBenchJSON(w io.Writer, p Params) error {
	rep, err := SyncBench(p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// CompareSyncBench checks cur against base row by row (matched on
// hosts × encoding): time per op may regress by at most tol (fractional,
// e.g. 0.05), allocations per op may not regress at all (they are
// machine-independent, so any increase is a real hot-path change). Rows
// present in only one report are ignored. All violations are reported.
func CompareSyncBench(base, cur *SyncBenchReport, tol float64) error {
	type key struct {
		hosts    int
		encoding string
	}
	baseRows := make(map[key]SyncBenchResult, len(base.Results))
	for _, r := range base.Results {
		baseRows[key{r.Hosts, r.Encoding}] = r
	}
	var violations []string
	for _, c := range cur.Results {
		b, ok := baseRows[key{c.Hosts, c.Encoding}]
		if !ok {
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"hosts=%d %s: allocs/op regressed %d -> %d", c.Hosts, c.Encoding, b.AllocsPerOp, c.AllocsPerOp))
		}
		if limit := float64(b.NsPerOp) * (1 + tol); float64(c.NsPerOp) > limit {
			violations = append(violations, fmt.Sprintf(
				"hosts=%d %s: ns/op regressed %d -> %d (>%.0f%% over baseline)",
				c.Hosts, c.Encoding, b.NsPerOp, c.NsPerOp, tol*100))
		}
	}
	if len(violations) > 0 {
		msg := "sync hot-path regression vs baseline:"
		for _, v := range violations {
			msg += "\n  " + v
		}
		return errors.New(msg)
	}
	return nil
}

// GuardSyncBench is the hot-path regression guard behind `make check`: it
// re-measures a subset of the sync hot path with tracing disabled (the
// default — no recorder attached) and fails if time regresses more than
// tol or allocations regress at all versus the baseline report at
// baselinePath (BENCH_sync.json). The guard gates the three compression
// tiers — auto (compression off), comp-static (fixed threshold), and
// comp-adaptive (CompressTuner policy) — plus unopt: together those cover
// both wire formats, the whole compression decision surface, and all
// instrumented paths; the forced-encoding rows only vary payload layout.
//
// Both the baseline and the guard measurement are min-over-reps (see
// measureReps), so a tight tol stays meaningful on a noisy machine. Rows
// that still exceed tol are re-measured up to guardRetries times before
// the guard fails: a transient load spike clears on a later measurement,
// a real hot-path regression does not. Allocation regressions are
// deterministic, so retries never mask one.
func GuardSyncBench(w io.Writer, p Params, baselinePath string, tol float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w", err)
	}
	var base SyncBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	guardOpts := map[string]func() gluon.Options{
		"auto":          gluon.Opt,
		"unopt":         gluon.Unopt,
		"comp-static":   compStatic,
		"comp-adaptive": compAdaptive,
	}
	guard := []encSpec{
		{"auto", guardOpts["auto"]},
		{"unopt", guardOpts["unopt"]},
		{"comp-static", guardOpts["comp-static"]},
		{"comp-adaptive", guardOpts["comp-adaptive"]},
	}
	cur, err := syncBenchFor(p, []int{2, 8}, guard)
	if err != nil {
		return err
	}
	if cur.Graph != base.Graph || cur.Workers != base.Workers {
		return fmt.Errorf("bench: guard config %q workers=%d does not match baseline %q workers=%d — rerun `make sync-bench`",
			cur.Graph, cur.Workers, base.Graph, base.Workers)
	}
	// Five re-measure rounds: the DEFLATE tiers' floors take longer to
	// surface on a small machine, and a retry only ever lowers the
	// estimate, so extra rounds trade guard latency for gate stability
	// without ever masking a real regression.
	const guardRetries = 5
	for retry := 0; retry < guardRetries; retry++ {
		bad := violatingRows(&base, cur, tol)
		if len(bad) == 0 {
			break
		}
		fmt.Fprintf(w, "re-measuring %d row(s) over tolerance (transient-load check %d/%d)\n",
			len(bad), retry+1, guardRetries)
		for _, i := range bad {
			row := cur.Results[i]
			rp, err := syncBenchFor(p, []int{row.Hosts}, []encSpec{{row.Encoding, guardOpts[row.Encoding]}})
			if err != nil {
				return err
			}
			nr := rp.Results[0]
			if nr.NsPerOp < cur.Results[i].NsPerOp {
				cur.Results[i].NsPerOp = nr.NsPerOp
			}
			fmt.Fprintf(w, "  hosts=%d %s: %d ns/op\n", row.Hosts, row.Encoding, cur.Results[i].NsPerOp)
		}
	}
	baseRows := map[string]SyncBenchResult{}
	for _, r := range base.Results {
		baseRows[fmt.Sprintf("%d/%s", r.Hosts, r.Encoding)] = r
	}
	fmt.Fprintf(w, "%-6s %-8s %12s %12s %8s %10s %10s\n", "hosts", "encoding", "base ns/op", "cur ns/op", "delta", "base a/op", "cur a/op")
	for _, c := range cur.Results {
		b := baseRows[fmt.Sprintf("%d/%s", c.Hosts, c.Encoding)]
		delta := "n/a"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(c.NsPerOp)/float64(b.NsPerOp)-1))
		}
		fmt.Fprintf(w, "%-6d %-8s %12d %12d %8s %10d %10d\n",
			c.Hosts, c.Encoding, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp)
	}
	return CompareSyncBench(&base, cur, tol)
}

// violatingRows returns indices into cur.Results whose row regresses
// versus its baseline counterpart (time beyond tol, or any alloc growth).
func violatingRows(base, cur *SyncBenchReport, tol float64) []int {
	baseRows := map[string]SyncBenchResult{}
	for _, r := range base.Results {
		baseRows[fmt.Sprintf("%d/%s", r.Hosts, r.Encoding)] = r
	}
	var bad []int
	for i, c := range cur.Results {
		b, ok := baseRows[fmt.Sprintf("%d/%s", c.Hosts, c.Encoding)]
		if !ok {
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp || float64(c.NsPerOp) > float64(b.NsPerOp)*(1+tol) {
			bad = append(bad, i)
		}
	}
	return bad
}
