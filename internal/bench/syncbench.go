package bench

// Sync hot-path snapshot: the same measurement as BenchmarkSyncHotPath in
// internal/gluon, exported through gluon-bench as machine-readable JSON
// (BENCH_sync.json at the repo root) so successive PRs have a perf
// trajectory to compare against. One result per encoding mode × host
// count: wall time, bytes allocated, and allocations per full cluster-wide
// Sync (every host encodes, ships, receives, and applies one round).

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// SyncBenchResult is one sync hot-path measurement.
type SyncBenchResult struct {
	Hosts       int    `json:"hosts"`
	Encoding    string `json:"encoding"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// SyncBenchReport is the BENCH_sync.json document.
type SyncBenchReport struct {
	Graph   string            `json:"graph"`
	Workers int               `json:"sync_workers"`
	Results []SyncBenchResult `json:"results"`
}

// syncBenchCluster mirrors the BenchmarkSyncHotPath fixture through the
// public API: per-host substrates over a CVC partitioning with a uint32
// min/set field, updates on every fifth proxy.
type syncBenchCluster struct {
	parts  []*partition.Partition
	gs     []*gluon.Gluon
	labels [][]uint32
	upds   []*bitset.Bitset
	close  func()
}

func newSyncBenchCluster(p Params, hosts int, opt gluon.Options) (*syncBenchCluster, error) {
	cfg := generate.Config{Kind: "rmat", Scale: p.Scale, EdgeFactor: p.EdgeFactor, Seed: p.Seed}
	edges, err := generate.Edges(cfg)
	if err != nil {
		return nil, err
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		return nil, err
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		return nil, err
	}
	hub := comm.NewHub(hosts)
	c := &syncBenchCluster{parts: parts, close: hub.Close}
	c.gs = make([]*gluon.Gluon, hosts)
	c.labels = make([][]uint32, hosts)
	c.upds = make([]*bitset.Bitset, hosts)
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			c.gs[h], errs[h] = gluon.New(parts[h], hub.Endpoint(h), opt)
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			hub.Close()
			return nil, err
		}
	}
	for h := 0; h < hosts; h++ {
		c.labels[h] = make([]uint32, parts[h].NumProxies())
		for i := range c.labels[h] {
			c.labels[h][i] = fields.InfinityU32
		}
		c.upds[h] = bitset.New(parts[h].NumProxies())
	}
	return c, nil
}

func (c *syncBenchCluster) markUpdates(round int) {
	for h := range c.gs {
		c.upds[h].Reset()
		n := c.parts[h].NumProxies()
		for i := uint32(0); i < n; i += 5 {
			c.upds[h].SetUnsync(i)
			c.labels[h][i] = uint32(round)
		}
	}
}

func (c *syncBenchCluster) syncAll() error {
	errs := make([]error, len(c.gs))
	var wg sync.WaitGroup
	for h := range c.gs {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			f := gluon.Field[uint32]{
				ID:        90,
				Name:      "syncbench",
				Write:     gluon.AtDestination,
				Read:      gluon.AtSource,
				Reduce:    fields.MinU32{Labels: c.labels[h]},
				Broadcast: fields.SetU32{Labels: c.labels[h]},
			}
			errs[h] = gluon.Sync(c.gs[h], f, c.upds[h])
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SyncBench measures the sync hot path per encoding mode × host count.
func SyncBench(p Params) (*SyncBenchReport, error) {
	encodings := []struct {
		name string
		opt  gluon.Options
	}{
		{"auto", gluon.Opt()},
		{"dense", withEncoding(gluon.EncodingDense)},
		{"bitvec", withEncoding(gluon.EncodingBitvec)},
		{"indices", withEncoding(gluon.EncodingIndices)},
		{"unopt", gluon.Unopt()},
	}
	rep := &SyncBenchReport{
		Graph:   fmt.Sprintf("rmat scale=%d ef=%d seed=%d cvc", p.Scale, p.EdgeFactor, p.Seed),
		Workers: p.Workers,
	}
	for _, hosts := range []int{2, 8} {
		for _, e := range encodings {
			opt := e.opt
			opt.SyncWorkers = p.Workers
			c, err := newSyncBenchCluster(p, hosts, opt)
			if err != nil {
				return nil, fmt.Errorf("sync bench hosts=%d %s: %w", hosts, e.name, err)
			}
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				// Warm one round so memoization and pools are primed.
				c.markUpdates(0)
				if err := c.syncAll(); err != nil {
					benchErr = err
					b.SkipNow()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.markUpdates(i + 1)
					if err := c.syncAll(); err != nil {
						benchErr = err
						b.SkipNow()
					}
				}
			})
			c.close()
			if benchErr != nil {
				return nil, fmt.Errorf("sync bench hosts=%d %s: %w", hosts, e.name, benchErr)
			}
			rep.Results = append(rep.Results, SyncBenchResult{
				Hosts:       hosts,
				Encoding:    e.name,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
	}
	return rep, nil
}

func withEncoding(enc gluon.Encoding) gluon.Options {
	opt := gluon.Opt()
	opt.ForceEncoding = enc
	return opt
}

// WriteSyncBenchJSON runs SyncBench and writes the report as indented JSON.
func WriteSyncBenchJSON(w io.Writer, p Params) error {
	rep, err := SyncBench(p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
