package bench

// Sync hot-path snapshot and regression gates: the same measurement as
// BenchmarkSyncHotPath in internal/gluon, exported through gluon-bench as
// machine-readable JSON (BENCH_sync.json at the repo root) and appended to
// the machine-fingerprinted perfdb history (BENCH_history.jsonl) so
// successive PRs have a perf trajectory to compare against. One result per
// encoding mode × host count: wall time, bytes allocated, allocations, and
// a MAD noise estimate per full cluster-wide Sync (every host encodes,
// ships, receives, and applies one round).
//
// The `make check` gate is the self-calibrating RATIO gate (DESIGN.md
// §4.9): it measures the unoptimized reference wire format and the
// optimized tiers in the same process and compares the opt/unopt ratio
// against the baseline's ratio, so the check passes on any machine — a 2×
// faster host scales numerator and denominator together. Absolute ns/op
// comparison (the pre-PR-10 gate that had to be re-pinned per machine)
// survives as an explicit mode that refuses to run against a baseline
// fingerprinted on different hardware.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"gluon/internal/autotune"
	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/perfdb"
	"gluon/internal/trace"
)

// SyncReportSchema versions the BENCH_sync.json document. Version 2 added
// the host fingerprint, per-row noise estimates, and the comm-volume
// counters; version 1 (implicit, field absent) carried bare timings.
const SyncReportSchema = 2

// SyncBenchResult is one sync hot-path measurement.
type SyncBenchResult struct {
	Hosts       int    `json:"hosts"`
	Encoding    string `json:"encoding"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// NoiseNs is the median absolute deviation of ns/op across the
	// measurement reps — how trustworthy NsPerOp is on this machine right
	// now. The ratio gate widens its tolerance by it.
	NoiseNs int64 `json:"noise_ns,omitempty"`
	// Reps is how many repetitions the min and MAD were taken over.
	Reps int `json:"reps,omitempty"`
}

// Name is the perfdb series key for this row.
func (r *SyncBenchResult) Name() string {
	return fmt.Sprintf("sync/h=%d/%s", r.Hosts, r.Encoding)
}

// SyncBenchReport is the BENCH_sync.json document.
type SyncBenchReport struct {
	Schema  int    `json:"schema,omitempty"`
	Graph   string `json:"graph"`
	Workers int    `json:"sync_workers"`
	// Fingerprint identifies the machine the snapshot was pinned on;
	// FingerprintID is its hash, the history grouping key.
	Fingerprint   *perfdb.Fingerprint `json:"fingerprint,omitempty"`
	FingerprintID string              `json:"fingerprint_id,omitempty"`
	// Comm carries the comm-volume counters from the traced probe run
	// (trace ledger distillation), so the snapshot pins bytes as well as
	// nanoseconds.
	Comm    *perfdb.Comm      `json:"comm,omitempty"`
	Results []SyncBenchResult `json:"results"`
}

// Record converts the report into a perfdb history record.
func (rep *SyncBenchReport) Record(label string) *perfdb.Record {
	rec := &perfdb.Record{
		Label:   label,
		Graph:   rep.Graph,
		Workers: rep.Workers,
		Comm:    rep.Comm,
	}
	if rep.Fingerprint != nil {
		rec.Fingerprint = *rep.Fingerprint
		rec.FingerprintID = rec.Fingerprint.ID()
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		rec.Benchmarks = append(rec.Benchmarks, perfdb.BenchResult{
			Name:        r.Name(),
			Hosts:       r.Hosts,
			Encoding:    r.Encoding,
			NsPerOp:     r.NsPerOp,
			BytesPerOp:  r.BytesPerOp,
			AllocsPerOp: r.AllocsPerOp,
			NoiseNs:     r.NoiseNs,
			Reps:        r.Reps,
		})
	}
	return rec
}

// ReportFromRecord rebuilds a BENCH_sync.json snapshot from a perfdb
// history record — the `gluon-perf -pin` path, which makes re-pinning a
// projection of the history instead of a fresh ad-hoc measurement.
func ReportFromRecord(rec *perfdb.Record) (*SyncBenchReport, error) {
	rep := &SyncBenchReport{
		Schema:        SyncReportSchema,
		Graph:         rec.Graph,
		Workers:       rec.Workers,
		Fingerprint:   &rec.Fingerprint,
		FingerprintID: rec.FingerprintID,
		Comm:          rec.Comm,
	}
	for _, b := range rec.Benchmarks {
		if b.Hosts == 0 || b.Encoding == "" {
			return nil, fmt.Errorf("bench: record benchmark %q has no hosts/encoding coordinates", b.Name)
		}
		rep.Results = append(rep.Results, SyncBenchResult{
			Hosts:       b.Hosts,
			Encoding:    b.Encoding,
			NsPerOp:     b.NsPerOp,
			BytesPerOp:  b.BytesPerOp,
			AllocsPerOp: b.AllocsPerOp,
			NoiseNs:     b.NoiseNs,
			Reps:        b.Reps,
		})
	}
	if len(rep.Results) == 0 {
		return nil, errors.New("bench: record carries no benchmarks")
	}
	return rep, nil
}

// syncBenchCluster mirrors the BenchmarkSyncHotPath fixture through the
// public API: per-host substrates over a CVC partitioning with a uint32
// min/set field, updates on every fifth proxy.
type syncBenchCluster struct {
	parts  []*partition.Partition
	gs     []*gluon.Gluon
	labels [][]uint32
	upds   []*bitset.Bitset
	close  func()
}

func newSyncBenchCluster(p Params, hosts int, opt gluon.Options) (*syncBenchCluster, error) {
	cfg := generate.Config{Kind: "rmat", Scale: p.Scale, EdgeFactor: p.EdgeFactor, Seed: p.Seed}
	edges, err := generate.Edges(cfg)
	if err != nil {
		return nil, err
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		return nil, err
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		return nil, err
	}
	hub := comm.NewHub(hosts)
	c := &syncBenchCluster{parts: parts, close: hub.Close}
	c.gs = make([]*gluon.Gluon, hosts)
	c.labels = make([][]uint32, hosts)
	c.upds = make([]*bitset.Bitset, hosts)
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			c.gs[h], errs[h] = gluon.New(parts[h], hub.Endpoint(h), opt)
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			hub.Close()
			return nil, err
		}
	}
	for h := 0; h < hosts; h++ {
		c.labels[h] = make([]uint32, parts[h].NumProxies())
		for i := range c.labels[h] {
			c.labels[h][i] = fields.InfinityU32
		}
		c.upds[h] = bitset.New(parts[h].NumProxies())
	}
	return c, nil
}

func (c *syncBenchCluster) markUpdates(round int) {
	for h := range c.gs {
		c.upds[h].Reset()
		n := c.parts[h].NumProxies()
		for i := uint32(0); i < n; i += 5 {
			c.upds[h].SetUnsync(i)
			c.labels[h][i] = uint32(round)
		}
	}
}

func (c *syncBenchCluster) syncAll() error {
	errs := make([]error, len(c.gs))
	var wg sync.WaitGroup
	for h := range c.gs {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			f := gluon.Field[uint32]{
				ID:        90,
				Name:      "syncbench",
				Write:     gluon.AtDestination,
				Read:      gluon.AtSource,
				Reduce:    fields.MinU32{Labels: c.labels[h]},
				Broadcast: fields.SetU32{Labels: c.labels[h]},
			}
			errs[h] = gluon.Sync(c.gs[h], f, c.upds[h])
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// encSpec pairs an encoding name with an options factory. A factory (not a
// value) because the adaptive-compression tier carries a stateful
// CompressTuner: each measured cluster must start from an untrained policy,
// or the 8-host row would inherit what the 2-host row learned.
type encSpec struct {
	name string
	opt  func() gluon.Options
}

func allEncodings() []encSpec {
	return []encSpec{
		{"auto", gluon.Opt},
		{"dense", withEncoding(gluon.EncodingDense)},
		{"bitvec", withEncoding(gluon.EncodingBitvec)},
		{"indices", withEncoding(gluon.EncodingIndices)},
		{"unopt", gluon.Unopt},
		{"comp-static", compStatic},
		{"comp-adaptive", compAdaptive},
	}
}

// compStatic is the static-threshold compression tier: every payload at or
// above CompressThreshold gets the DEFLATE attempt, the pre-policy
// behaviour.
func compStatic() gluon.Options {
	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressThreshold = 256
	return opt
}

// compAdaptive is the adaptive tier: a fresh CompressTuner decides per
// field from observed ratio and encode cost. MinSize matches the static
// tier's threshold so the two rows differ only in the adaptive decision.
func compAdaptive() gluon.Options {
	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressPolicy = autotune.NewCompressTuner(autotune.CompressConfig{MinSize: 256})
	return opt
}

// AllSyncEncodings names every measurable encoding tier, in report order.
func AllSyncEncodings() []string {
	all := allEncodings()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.name
	}
	return names
}

// SyncBenchTiers measures only the named encodings (see allEncodings for
// the valid names) — the cheap path behind the perf-trend smoke gate and
// the root-level ratio benchmark.
func SyncBenchTiers(p Params, hostCounts []int, names []string) (*SyncBenchReport, error) {
	all := allEncodings()
	var specs []encSpec
	for _, n := range names {
		found := false
		for _, e := range all {
			if e.name == n {
				specs = append(specs, e)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown sync encoding %q", n)
		}
	}
	return syncBenchFor(p, hostCounts, specs)
}

// measureReps repeats each row's measurement and keeps the fastest: wall
// time on a shared machine is noisy, and load spikes only ever inflate a
// rep, so the min estimates the true cost. Allocations are deterministic
// and identical across reps. Eight reps (not fewer) because the gates
// compare two independent min estimates against a tight tolerance — on a
// small or busy machine both must converge to the true floor or the gate
// flaps. The spread of the reps (MAD) rides along as the row's noise
// estimate.
const measureReps = 8

func syncBenchFor(p Params, hostCounts []int, encodings []encSpec) (*SyncBenchReport, error) {
	fp := perfdb.Probe()
	rep := &SyncBenchReport{
		Schema:        SyncReportSchema,
		Graph:         fmt.Sprintf("rmat scale=%d ef=%d seed=%d cvc", p.Scale, p.EdgeFactor, p.Seed),
		Workers:       p.Workers,
		Fingerprint:   &fp,
		FingerprintID: fp.ID(),
	}
	for _, hosts := range hostCounts {
		for _, e := range encodings {
			opt := e.opt()
			opt.SyncWorkers = p.Workers
			c, err := newSyncBenchCluster(p, hosts, opt)
			if err != nil {
				return nil, fmt.Errorf("sync bench hosts=%d %s: %w", hosts, e.name, err)
			}
			var benchErr error
			var best testing.BenchmarkResult
			reps := make([]int64, 0, measureReps)
			for trial := 0; trial < measureReps && benchErr == nil; trial++ {
				r := testing.Benchmark(func(b *testing.B) {
					// Warm one round so memoization and pools are primed.
					c.markUpdates(0)
					if err := c.syncAll(); err != nil {
						benchErr = err
						b.SkipNow()
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.markUpdates(i + 1)
						if err := c.syncAll(); err != nil {
							benchErr = err
							b.SkipNow()
						}
					}
				})
				reps = append(reps, r.NsPerOp())
				if trial == 0 || r.NsPerOp() < best.NsPerOp() {
					best = r
				}
			}
			c.close()
			if benchErr != nil {
				return nil, fmt.Errorf("sync bench hosts=%d %s: %w", hosts, e.name, benchErr)
			}
			rep.Results = append(rep.Results, SyncBenchResult{
				Hosts:       hosts,
				Encoding:    e.name,
				NsPerOp:     best.NsPerOp(),
				BytesPerOp:  best.AllocedBytesPerOp(),
				AllocsPerOp: best.AllocsPerOp(),
				NoiseNs:     perfdb.MAD(reps),
				Reps:        len(reps),
			})
		}
	}
	return rep, nil
}

func withEncoding(enc gluon.Encoding) func() gluon.Options {
	return func() gluon.Options {
		opt := gluon.Opt()
		opt.ForceEncoding = enc
		return opt
	}
}

// commProbeRounds is how many BSP rounds the traced probe runs; every
// third round ships nothing, exercising the temporal-invariance silent
// path so the invariant-skip share is a live number, not a constant zero.
const commProbeRounds = 6

// CommProbe runs a small instrumented cluster (static-threshold
// compression, so the compression counters are live) for a few rounds and
// distills the trace ledger into the comm-volume counters a perf-history
// record carries. Timing is irrelevant here — tracing overhead doesn't
// matter, only bytes and round structure do.
func CommProbe(p Params, hosts int) (*perfdb.Comm, error) {
	opt := compStatic()
	opt.SyncWorkers = p.Workers
	c, err := newSyncBenchCluster(p, hosts, opt)
	if err != nil {
		return nil, err
	}
	defer c.close()
	tr := trace.New(trace.Config{Label: "syncbench comm probe"})
	recs := make([]*trace.Recorder, hosts)
	for h := 0; h < hosts; h++ {
		recs[h] = tr.Recorder(h)
		c.gs[h].SetRecorder(recs[h])
	}
	for round := 0; round < commProbeRounds; round++ {
		for _, rec := range recs {
			rec.SetRound(int32(round))
		}
		if round%3 == 2 {
			// Silent round: the fields converged, no host ships. A barrier
			// span marks the round's existence so the ledger charges every
			// channel one round of invariant savings.
			for _, rec := range recs {
				rec.Emit(trace.Event{Start: rec.Now(), Dur: 1, Phase: trace.PhaseBarrier, Peer: -1})
			}
			continue
		}
		c.markUpdates(round + 1)
		if err := c.syncAll(); err != nil {
			return nil, err
		}
	}
	ledger := trace.LedgerOf(tr)
	if ledger.Rounds == 0 || ledger.ShippedBytes == 0 {
		return nil, errors.New("bench: comm probe recorded no attributable rounds")
	}
	counters := ledger.Counters()
	return &perfdb.Comm{
		BytesPerRound:      counters.BytesPerRound,
		CompressionRatio:   counters.CompressionRatio,
		InvariantSkipShare: counters.InvariantSkipShare,
	}, nil
}

// WriteReportJSON writes an already-built report as indented JSON (the
// `gluon-perf -pin` snapshot path).
func WriteReportJSON(w io.Writer, rep *SyncBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// CompareSyncBench checks cur against base row by row (matched on
// hosts × encoding) on ABSOLUTE numbers: time per op may regress by at
// most tol (fractional, e.g. 0.05), allocations per op may not regress at
// all (they are machine-independent, so any increase is a real hot-path
// change). Rows present in only one report are ignored. All violations are
// reported. Only meaningful when base and cur come from the same machine —
// GuardSyncBench enforces that with the fingerprint check.
func CompareSyncBench(base, cur *SyncBenchReport, tol float64) error {
	type key struct {
		hosts    int
		encoding string
	}
	baseRows := make(map[key]SyncBenchResult, len(base.Results))
	for _, r := range base.Results {
		baseRows[key{r.Hosts, r.Encoding}] = r
	}
	var violations []string
	for _, c := range cur.Results {
		b, ok := baseRows[key{c.Hosts, c.Encoding}]
		if !ok {
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"hosts=%d %s: allocs/op regressed %d -> %d", c.Hosts, c.Encoding, b.AllocsPerOp, c.AllocsPerOp))
		}
		if limit := float64(b.NsPerOp) * (1 + tol); float64(c.NsPerOp) > limit {
			violations = append(violations, fmt.Sprintf(
				"hosts=%d %s: ns/op regressed %d -> %d (>%.0f%% over baseline)",
				c.Hosts, c.Encoding, b.NsPerOp, c.NsPerOp, tol*100))
		}
	}
	if len(violations) > 0 {
		msg := "sync hot-path regression vs baseline:"
		for _, v := range violations {
			msg += "\n  " + v
		}
		return errors.New(msg)
	}
	return nil
}

// ratioNoiseCap bounds how far recorded rep noise may widen the ratio
// band, so one chaotic measurement cannot disable the gate.
const ratioNoiseCap = 0.25

// refEncoding is the denominator of every ratio: the unoptimized
// reference wire format, measured in the same process as the optimized
// tiers.
const refEncoding = "unopt"

// CompareSyncRatios gates cur against base on the opt/unopt RATIO per
// (hosts, tier): ratio_cur may exceed ratio_base by at most tol plus the
// summed relative noise of the four measurements behind the two ratios
// (capped at ratioNoiseCap). Machine speed cancels out of both sides, so
// the comparison holds across hardware; allocations are still compared
// absolutely because they are machine-independent. Rows missing a unopt
// reference for their host count are skipped.
func CompareSyncRatios(base, cur *SyncBenchReport, tol float64) error {
	violations := ratioViolations(base, cur, tol)
	if len(violations) == 0 {
		return nil
	}
	msg := "sync hot-path ratio regression vs baseline (opt/unopt, machine-independent):"
	for _, v := range violations {
		msg += "\n  " + v.String()
	}
	return errors.New(msg)
}

// ratioViolation is one failed (hosts, tier) comparison.
type ratioViolation struct {
	Hosts      int
	Encoding   string
	BaseRatio  float64
	CurRatio   float64
	Band       float64
	AllocsBase int64
	AllocsCur  int64
	Alloc      bool
}

func (v ratioViolation) String() string {
	if v.Alloc {
		return fmt.Sprintf("hosts=%d %s: allocs/op regressed %d -> %d", v.Hosts, v.Encoding, v.AllocsBase, v.AllocsCur)
	}
	return fmt.Sprintf("hosts=%d %s: opt/unopt ratio regressed %.3f -> %.3f (+%.1f%%, band +%.1f%%)",
		v.Hosts, v.Encoding, v.BaseRatio, v.CurRatio, 100*(v.CurRatio/v.BaseRatio-1), 100*v.Band)
}

func rowIndex(rep *SyncBenchReport) map[string]*SyncBenchResult {
	idx := make(map[string]*SyncBenchResult, len(rep.Results))
	for i := range rep.Results {
		r := &rep.Results[i]
		idx[r.Name()] = r
	}
	return idx
}

func relNoise(r *SyncBenchResult) float64 {
	if r.NsPerOp <= 0 {
		return 0
	}
	return float64(r.NoiseNs) / float64(r.NsPerOp)
}

// ratioBand is the tolerance for one (hosts, tier) ratio comparison: tol
// plus every contributing measurement's relative noise, capped.
func ratioBand(tol float64, rows ...*SyncBenchResult) float64 {
	noise := 0.0
	for _, r := range rows {
		noise += relNoise(r)
	}
	if noise > ratioNoiseCap {
		noise = ratioNoiseCap
	}
	return tol + noise
}

func ratioViolations(base, cur *SyncBenchReport, tol float64) []ratioViolation {
	baseIdx, curIdx := rowIndex(base), rowIndex(cur)
	var out []ratioViolation
	for _, c := range cur.Results {
		b, ok := baseIdx[c.Name()]
		if !ok {
			continue
		}
		// Allocations gate every row, the reference included.
		if c.AllocsPerOp > b.AllocsPerOp {
			out = append(out, ratioViolation{Hosts: c.Hosts, Encoding: c.Encoding,
				Alloc: true, AllocsBase: b.AllocsPerOp, AllocsCur: c.AllocsPerOp})
		}
		if c.Encoding == refEncoding {
			continue
		}
		cRef := curIdx[(&SyncBenchResult{Hosts: c.Hosts, Encoding: refEncoding}).Name()]
		bRef := baseIdx[(&SyncBenchResult{Hosts: c.Hosts, Encoding: refEncoding}).Name()]
		if cRef == nil || bRef == nil || cRef.NsPerOp <= 0 || bRef.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		curRatio := float64(c.NsPerOp) / float64(cRef.NsPerOp)
		baseRatio := float64(b.NsPerOp) / float64(bRef.NsPerOp)
		cc := c
		band := ratioBand(tol, &cc, cRef, b, bRef)
		if curRatio > baseRatio*(1+band) {
			out = append(out, ratioViolation{Hosts: c.Hosts, Encoding: c.Encoding,
				BaseRatio: baseRatio, CurRatio: curRatio, Band: band})
		}
	}
	return out
}

// GuardMode selects which comparison GuardSyncBench runs.
type GuardMode string

const (
	// GuardRatio is the default self-calibrating gate: opt/unopt ratios,
	// valid on any machine.
	GuardRatio GuardMode = "ratio"
	// GuardAbs is the legacy absolute-ns/op gate. It refuses to compare
	// against a baseline fingerprinted on different hardware.
	GuardAbs GuardMode = "abs"
)

// GuardOptions parameterizes GuardSyncBench beyond the tolerance.
type GuardOptions struct {
	Mode GuardMode
	// ForceBaseline overrides the fingerprint refusal in GuardAbs mode.
	ForceBaseline bool
	// PerfDB, when non-empty, appends the guard's measurements (absolute
	// numbers, noise, comm counters) to this history file regardless of
	// gate outcome — the trajectory must record regressions too.
	PerfDB string
}

// GuardSyncBench is the hot-path regression guard behind `make check`: it
// re-measures the sync hot path with tracing disabled (the default — no
// recorder attached) across the three compression tiers — auto
// (compression off), comp-static (fixed threshold), comp-adaptive
// (CompressTuner policy) — plus the unopt reference wire format, all in
// the same process (DESIGN.md §4.5, §4.9). Together those cover both wire
// formats, the whole compression decision surface, and all instrumented
// paths; the forced-encoding rows only vary payload layout.
//
// In GuardRatio mode (the default) it gates on opt/unopt ratios with a
// noise-aware band — machine-independent, so BENCH_sync.json never needs
// re-pinning for hardware churn. In GuardAbs mode it gates absolute ns/op
// like the pre-PR-10 guard, but refuses a baseline fingerprinted on a
// different machine instead of silently failing against it. Allocation
// regressions hard-fail in both modes.
//
// Both the baseline and the guard measurement are min-over-reps (see
// measureReps), so a tight tol stays meaningful on a noisy machine. Rows
// that still exceed tol are re-measured up to guardRetries times before
// the guard fails: a transient load spike clears on a later measurement, a
// real hot-path regression does not. Allocation regressions are
// deterministic, so retries never mask one.
func GuardSyncBench(w io.Writer, p Params, baselinePath string, tol float64, opts GuardOptions) error {
	if opts.Mode == "" {
		opts.Mode = GuardRatio
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w", err)
	}
	var base SyncBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	host := perfdb.Probe()
	fmt.Fprintf(w, "host fingerprint:     %s\n", host)
	switch {
	case base.Fingerprint != nil:
		fmt.Fprintf(w, "baseline fingerprint: %s\n", *base.Fingerprint)
	default:
		fmt.Fprintf(w, "baseline fingerprint: unrecorded (schema v1 baseline — run `make bench-pin`)\n")
	}
	sameMachine := base.Fingerprint != nil && base.Fingerprint.ID() == host.ID()
	if opts.Mode == GuardAbs && !sameMachine && !opts.ForceBaseline {
		baseFP := "unrecorded"
		if base.Fingerprint != nil {
			baseFP = base.Fingerprint.String()
		}
		return fmt.Errorf("bench: refusing to gate absolute ns/op against a baseline pinned on a different machine:\n"+
			"  baseline: %s\n  this host: %s\n"+
			"absolute timings do not transfer across hardware — use the ratio gate (default), re-pin with `make bench-pin`, or override with -force-baseline",
			baseFP, host)
	}

	guardOpts := map[string]func() gluon.Options{
		"auto":          gluon.Opt,
		"unopt":         gluon.Unopt,
		"comp-static":   compStatic,
		"comp-adaptive": compAdaptive,
	}
	guard := []encSpec{
		{"auto", guardOpts["auto"]},
		{"unopt", guardOpts["unopt"]},
		{"comp-static", guardOpts["comp-static"]},
		{"comp-adaptive", guardOpts["comp-adaptive"]},
	}
	cur, err := syncBenchFor(p, []int{2, 8}, guard)
	if err != nil {
		return err
	}
	if cur.Graph != base.Graph || cur.Workers != base.Workers {
		return fmt.Errorf("bench: guard config %q workers=%d does not match baseline %q workers=%d — rerun `make bench-pin`",
			cur.Graph, cur.Workers, base.Graph, base.Workers)
	}
	// Five re-measure rounds: the DEFLATE tiers' floors take longer to
	// surface on a small machine, and a retry only ever lowers the
	// estimate, so extra rounds trade guard latency for gate stability
	// without ever masking a real regression. In ratio mode the unopt
	// reference of an offending host count is re-measured alongside the
	// tier — both ends of the ratio deserve the transient-load benefit.
	const guardRetries = 5
	for retry := 0; retry < guardRetries; retry++ {
		bad := violatingRows(&base, cur, tol, opts.Mode)
		if len(bad) == 0 {
			break
		}
		fmt.Fprintf(w, "re-measuring %d row(s) over tolerance (transient-load check %d/%d)\n",
			len(bad), retry+1, guardRetries)
		for _, i := range bad {
			row := cur.Results[i]
			names := []string{row.Encoding}
			if opts.Mode == GuardRatio && row.Encoding != refEncoding {
				names = append(names, refEncoding)
			}
			for _, name := range names {
				rp, err := syncBenchFor(p, []int{row.Hosts}, []encSpec{{name, guardOpts[name]}})
				if err != nil {
					return err
				}
				nr := rp.Results[0]
				for j := range cur.Results {
					cr := &cur.Results[j]
					if cr.Hosts == row.Hosts && cr.Encoding == name && nr.NsPerOp < cr.NsPerOp {
						cr.NsPerOp = nr.NsPerOp
						cr.NoiseNs = nr.NoiseNs
					}
				}
				fmt.Fprintf(w, "  hosts=%d %s: %d ns/op\n", row.Hosts, name, nr.NsPerOp)
			}
		}
	}
	if opts.PerfDB != "" {
		if comm, err := CommProbe(p, 2); err == nil {
			cur.Comm = comm
		} else {
			fmt.Fprintf(w, "comm probe failed (history record carries timings only): %v\n", err)
		}
		if err := perfdb.Append(opts.PerfDB, cur.Record("sync-guard")); err != nil {
			return fmt.Errorf("bench: recording guard measurement: %w", err)
		}
		fmt.Fprintf(w, "recorded to %s (gluon-perf shows the trajectory)\n", opts.PerfDB)
	}
	writeGuardTable(w, &base, cur, opts.Mode)
	if opts.Mode == GuardAbs {
		return CompareSyncBench(&base, cur, tol)
	}
	return CompareSyncRatios(&base, cur, tol)
}

// writeGuardTable prints the comparison the guard just gated on.
func writeGuardTable(w io.Writer, base, cur *SyncBenchReport, mode GuardMode) {
	baseIdx, curIdx := rowIndex(base), rowIndex(cur)
	if mode == GuardRatio {
		fmt.Fprintf(w, "%-6s %-14s %11s %11s %8s %7s %10s %10s\n",
			"hosts", "tier", "base ratio", "cur ratio", "delta", "noise", "base a/op", "cur a/op")
	} else {
		fmt.Fprintf(w, "%-6s %-14s %12s %12s %8s %10s %10s\n",
			"hosts", "tier", "base ns/op", "cur ns/op", "delta", "base a/op", "cur a/op")
	}
	for _, c := range cur.Results {
		b := baseIdx[c.Name()]
		if mode == GuardAbs {
			delta := "n/a"
			var bNs, bAllocs int64
			if b != nil {
				bNs, bAllocs = b.NsPerOp, b.AllocsPerOp
				if b.NsPerOp > 0 {
					delta = fmt.Sprintf("%+.1f%%", 100*(float64(c.NsPerOp)/float64(b.NsPerOp)-1))
				}
			}
			fmt.Fprintf(w, "%-6d %-14s %12d %12d %8s %10d %10d\n",
				c.Hosts, c.Encoding, bNs, c.NsPerOp, delta, bAllocs, c.AllocsPerOp)
			continue
		}
		if c.Encoding == refEncoding {
			var bAllocs int64
			if b != nil {
				bAllocs = b.AllocsPerOp
			}
			fmt.Fprintf(w, "%-6d %-14s %11s %11s %8s %7s %10d %10d   (%d ns/op reference)\n",
				c.Hosts, c.Encoding, "1.000", "1.000", "ref", "", bAllocs, c.AllocsPerOp, c.NsPerOp)
			continue
		}
		cRef := curIdx[(&SyncBenchResult{Hosts: c.Hosts, Encoding: refEncoding}).Name()]
		bRef := baseIdx[(&SyncBenchResult{Hosts: c.Hosts, Encoding: refEncoding}).Name()]
		ratioStr, baseStr, deltaStr, noiseStr := "n/a", "n/a", "n/a", ""
		var bAllocs int64
		if cRef != nil && cRef.NsPerOp > 0 {
			cc := c
			curRatio := float64(c.NsPerOp) / float64(cRef.NsPerOp)
			ratioStr = fmt.Sprintf("%.3f", curRatio)
			noiseStr = fmt.Sprintf("±%.1f%%", 100*(relNoise(&cc)+relNoise(cRef)))
			if b != nil && bRef != nil && bRef.NsPerOp > 0 {
				baseRatio := float64(b.NsPerOp) / float64(bRef.NsPerOp)
				baseStr = fmt.Sprintf("%.3f", baseRatio)
				deltaStr = fmt.Sprintf("%+.1f%%", 100*(curRatio/baseRatio-1))
			}
		}
		if b != nil {
			bAllocs = b.AllocsPerOp
		}
		fmt.Fprintf(w, "%-6d %-14s %11s %11s %8s %7s %10d %10d\n",
			c.Hosts, c.Encoding, baseStr, ratioStr, deltaStr, noiseStr, bAllocs, c.AllocsPerOp)
	}
}

// violatingRows returns indices into cur.Results whose row regresses
// versus its baseline counterpart under the given mode.
func violatingRows(base, cur *SyncBenchReport, tol float64, mode GuardMode) []int {
	var bad []int
	if mode == GuardAbs {
		baseIdx := rowIndex(base)
		for i, c := range cur.Results {
			b, ok := baseIdx[c.Name()]
			if !ok {
				continue
			}
			if c.AllocsPerOp > b.AllocsPerOp || float64(c.NsPerOp) > float64(b.NsPerOp)*(1+tol) {
				bad = append(bad, i)
			}
		}
		return bad
	}
	for _, v := range ratioViolations(base, cur, tol) {
		for i, c := range cur.Results {
			if c.Hosts == v.Hosts && c.Encoding == v.Encoding {
				bad = append(bad, i)
				break
			}
		}
	}
	return bad
}
