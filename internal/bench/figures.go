package bench

import (
	"fmt"
	"io"

	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Figure8 reproduces the strong-scaling study: execution time (8a) and
// communication volume (8b) of D-Ligra, D-Galois, and the Gemini-style
// baseline across host counts, per benchmark per graph.
func Figure8(w io.Writer, p Params) error {
	fmt.Fprintf(w, "Figure 8: strong scaling — execution time (s) and communication volume\n")
	fmt.Fprintf(w, "%-6s %-14s %6s | %10s %12s | %10s %12s | %10s %12s\n",
		"bench", "graph", "hosts", "dligra(s)", "vol", "dgalois(s)", "vol", "gemini(s)", "vol")
	for _, benchName := range Benchmarks {
		for _, kind := range []string{"rmat", "webcrawl"} {
			wl, err := NewWorkload(kind, p, benchName == "sssp")
			if err != nil {
				return err
			}
			for _, hosts := range p.Hosts {
				var ms [3]Measurement
				for i, sys := range []SystemID{DLigra, DGalois, Gemini} {
					m, err := RunSpec(Spec{System: sys, Benchmark: benchName, Hosts: hosts,
						Policy: partition.CVC, Opt: gluon.Opt()}, wl, p)
					if err != nil {
						return err
					}
					ms[i] = m
				}
				fmt.Fprintf(w, "%-6s %-14s %6d | %10.3f %12s | %10.3f %12s | %10.3f %12s\n",
					benchName, wl.Name, hosts,
					ms[0].Time.Seconds(), fmtBytes(ms[0].CommBytes),
					ms[1].Time.Seconds(), fmtBytes(ms[1].CommBytes),
					ms[2].Time.Seconds(), fmtBytes(ms[2].CommBytes))
			}
		}
	}
	return nil
}

// Figure9 reproduces the D-IrGL strong-scaling study across device counts.
func Figure9(w io.Writer, p Params) error {
	fmt.Fprintf(w, "Figure 9: D-IrGL strong scaling — execution time (s) by device count\n")
	fmt.Fprintf(w, "%-6s %-14s", "bench", "graph")
	for _, d := range p.Devices {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("%d dev", d))
	}
	fmt.Fprintln(w)
	for _, benchName := range Benchmarks {
		for _, kind := range []string{"rmat", "kron"} {
			wl, err := NewWorkload(kind, p, benchName == "sssp")
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-6s %-14s", benchName, wl.Name)
			for _, devs := range p.Devices {
				m, err := RunSpec(Spec{System: DIrGL, Benchmark: benchName, Hosts: devs,
					Policy: partition.CVC, Opt: gluon.Opt()}, wl, p)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %9.3f", m.Time.Seconds())
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// OptConfig names one Figure 10 optimization setting.
type OptConfig struct {
	Name string
	Opt  gluon.Options
}

// OptConfigs are the four Figure 10 settings in paper order.
func OptConfigs() []OptConfig {
	return []OptConfig{
		{"UNOPT", gluon.Options{}},
		{"OSI", gluon.Options{StructuralInvariants: true}},
		{"OTI", gluon.Options{TemporalInvariance: true}},
		{"OSTI", gluon.Options{StructuralInvariants: true, TemporalInvariance: true}},
	}
}

// Figure10 reproduces the communication-optimization breakdown: for each
// benchmark and each of {CVC, OEC} partitionings of one graph, the
// execution time split into max-compute and non-overlapping communication,
// and the communication volume, under UNOPT / OSI / OTI / OSTI. One
// partitioning is built per policy and reused across all four settings,
// exactly as in the paper.
func Figure10(w io.Writer, p Params) error {
	return Figure10System(w, p, DGalois, "rmat")
}

// Figure10System is Figure10 parameterized by system and graph kind (the
// paper's 10a-10f panels vary these).
func Figure10System(w io.Writer, p Params, sys SystemID, kind string) error {
	hosts := p.Hosts[len(p.Hosts)-1]
	fmt.Fprintf(w, "Figure 10: communication optimizations — %s on %s, %d hosts\n", sys, kind, hosts)
	// comm(s) is the modeled estimate (wall minus max-compute); sync(s) is
	// measured per-round max-across-hosts sync time (dsys.Result.MaxComm).
	fmt.Fprintf(w, "%-6s %-6s %-6s %10s %10s %10s %10s %12s %8s\n",
		"bench", "policy", "config", "total(s)", "comp(s)", "comm(s)", "sync(s)", "volume", "rounds")

	var unopt, osti []float64
	for _, benchName := range Benchmarks {
		wl, err := NewWorkload(kind, p, benchName == "sssp")
		if err != nil {
			return err
		}
		edges := wl.Edges
		popt := wl.PolicyOptions()
		if benchName == "cc" {
			edges, _ = wl.Symmetrized()
			popt = wl.SymPolicyOptions()
		}
		for _, polKind := range []partition.Kind{partition.CVC, partition.OEC} {
			pol, err := partition.NewPolicy(polKind, wl.NumNodes, hosts, popt)
			if err != nil {
				return err
			}
			parts, err := partition.PartitionAll(wl.NumNodes, edges, pol)
			if err != nil {
				return err
			}
			for _, oc := range OptConfigs() {
				m, err := RunSpecPartitioned(Spec{System: sys, Benchmark: benchName,
					Hosts: hosts, Policy: polKind, Opt: oc.Opt}, wl, p, parts)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-6s %-6s %-6s %10.3f %10.3f %10.3f %10.3f %12s %8d\n",
					benchName, polKind, oc.Name, m.Time.Seconds(),
					m.MaxCompute.Seconds(), m.CommTime().Seconds(), m.MaxComm.Seconds(),
					fmtBytes(m.CommBytes), m.Rounds)
				switch oc.Name {
				case "UNOPT":
					unopt = append(unopt, m.Time.Seconds())
				case "OSTI":
					osti = append(osti, m.Time.Seconds())
				}
			}
		}
	}
	var ratios []float64
	for i := range unopt {
		ratios = append(ratios, unopt[i]/osti[i])
	}
	fmt.Fprintf(w, "geomean speedup of OSTI over UNOPT: %.2fx (paper: ~2.6x)\n", Geomean(ratios))
	return nil
}
