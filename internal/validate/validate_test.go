package validate_test

import (
	"testing"

	"gluon/internal/algorithms/pr"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/ref"
	"gluon/internal/validate"
)

func testGraph(t *testing.T, weighted bool) *graph.CSR {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 81, Weighted: weighted}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSAcceptsCorrectRejectsCorrupt(t *testing.T) {
	g := testGraph(t, false)
	source := g.MaxOutDegreeNode()
	dist := ref.BFS(g, source)
	if err := validate.BFS(g, source, dist); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
	// Corrupt one reachable non-source node in each direction.
	victim := uint32(0)
	for u := uint32(0); u < g.NumNodes(); u++ {
		if u != source && dist[u] != fields.InfinityU32 && dist[u] > 1 {
			victim = u
			break
		}
	}
	bad := append([]uint32(nil), dist...)
	bad[victim]++ // level too deep: loses achievability or violates an edge
	if err := validate.BFS(g, source, bad); err == nil {
		t.Fatal("level-too-deep accepted")
	}
	bad = append([]uint32(nil), dist...)
	bad[victim]-- // level too shallow: not achievable
	if err := validate.BFS(g, source, bad); err == nil {
		t.Fatal("level-too-shallow accepted")
	}
	if err := validate.BFS(g, source, dist[:10]); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestSSSPAcceptsCorrectRejectsCorrupt(t *testing.T) {
	g := testGraph(t, true)
	source := g.MaxOutDegreeNode()
	dist := ref.SSSP(g, source)
	if err := validate.SSSP(g, source, dist); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
	victim := uint32(0)
	for u := uint32(0); u < g.NumNodes(); u++ {
		if u != source && dist[u] != fields.InfinityU32 && dist[u] > 0 {
			victim = u
			break
		}
	}
	bad := append([]uint32(nil), dist...)
	bad[victim] += 3 // distance not witnessed / violates some edge
	if err := validate.SSSP(g, source, bad); err == nil {
		t.Fatal("inflated distance accepted")
	}
	bad = append([]uint32(nil), dist...)
	bad[victim] = 0 // fake zero distance
	if err := validate.SSSP(g, source, bad); err == nil {
		t.Fatal("deflated distance accepted")
	}
}

func TestCCAcceptsCorrectRejectsCorrupt(t *testing.T) {
	g := testGraph(t, false)
	sym := ref.Symmetrize(collectEdges(g))
	symG, err := graph.FromEdges(uint64(g.NumNodes()), sym, false)
	if err != nil {
		t.Fatal(err)
	}
	comp := ref.CC(symG)
	if err := validate.CC(symG, comp); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
	bad := append([]uint32(nil), comp...)
	// Split one node off its component (pick one with a neighbor).
	for u := uint32(0); u < symG.NumNodes(); u++ {
		if symG.OutDegree(u) > 0 && bad[u] != u {
			bad[u] = u
			break
		}
	}
	if err := validate.CC(symG, bad); err == nil {
		t.Fatal("split component accepted")
	}
}

func TestPageRankAcceptsCorrectRejectsCorrupt(t *testing.T) {
	g := testGraph(t, false)
	rank := ref.PageRank(g, pr.Alpha, 1e-10, 300)
	if err := validate.PageRank(g, pr.Alpha, rank, 1e-6); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
	bad := append([]float64(nil), rank...)
	bad[3] += 0.5
	if err := validate.PageRank(g, pr.Alpha, bad, 1e-6); err == nil {
		t.Fatal("perturbed rank accepted")
	}
	bad = append([]float64(nil), rank...)
	bad[3] = 0.01 // below teleport mass
	if err := validate.PageRank(g, pr.Alpha, bad, 1e-6); err == nil {
		t.Fatal("sub-teleport rank accepted")
	}
}

func TestKCoreAcceptsCorrectRejectsCorrupt(t *testing.T) {
	g := testGraph(t, false)
	sym := ref.Symmetrize(collectEdges(g))
	symG, err := graph.FromEdges(uint64(g.NumNodes()), sym, false)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	inCore := refPeel(symG, k)
	if err := validate.KCore(symG, k, inCore); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
	bad := append([]bool(nil), inCore...)
	for u := range bad {
		if !bad[u] {
			bad[u] = true // resurrect a peeled node
			break
		}
	}
	if err := validate.KCore(symG, k, bad); err == nil {
		t.Fatal("resurrected node accepted")
	}
	bad = append([]bool(nil), inCore...)
	for u := range bad {
		if bad[u] {
			bad[u] = false // kill a core member: breaks maximality
			break
		}
	}
	if err := validate.KCore(symG, k, bad); err == nil {
		t.Fatal("under-approximated core accepted")
	}
}

// collectEdges flattens a CSR back to an edge list.
func collectEdges(g *graph.CSR) []graph.Edge {
	var out []graph.Edge
	for u := uint32(0); u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			out = append(out, graph.Edge{Src: uint64(u), Dst: uint64(v)})
		}
	}
	return out
}

// refPeel is sequential peeling returning in-core flags.
func refPeel(g *graph.CSR, k uint64) []bool {
	n := g.NumNodes()
	deg := make([]uint64, n)
	for u := uint32(0); u < n; u++ {
		deg[u] = uint64(g.OutDegree(u))
	}
	dead := make([]bool, n)
	var queue []uint32
	for u := uint32(0); u < n; u++ {
		if deg[u] < k {
			dead[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !dead[v] {
				deg[v]--
				if deg[v] < k {
					dead[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	in := make([]bool, n)
	for u := range dead {
		in[u] = !dead[u]
	}
	return in
}
