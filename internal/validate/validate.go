// Package validate checks analytics results by their defining properties
// rather than by recomputing them sequentially — the graph500-style
// validation discipline. Property checks run in O(|E|) and therefore work
// at scales where a Dijkstra or power-iteration oracle would be slower
// than the distributed run being checked.
package validate

import (
	"fmt"
	"math"

	"gluon/internal/fields"
	"gluon/internal/graph"
)

// BFS checks that dist is a valid BFS level assignment from source:
//
//	(1) dist[source] == 0 and every other finite level is positive;
//	(2) every edge (u,v) with finite dist[u] satisfies
//	    dist[v] <= dist[u]+1 (no edge is "skipped");
//	(3) every node with finite level > 0 has an in-neighbor exactly one
//	    level closer (its level is achieved, not invented);
//	(4) no finite-level node is adjacent from an unreached one... (follows
//	    from (2): unreached u imposes nothing; reached u bounds v).
func BFS(g *graph.CSR, source uint32, dist []uint32) error {
	n := g.NumNodes()
	if uint32(len(dist)) != n {
		return fmt.Errorf("validate: %d levels for %d nodes", len(dist), n)
	}
	if dist[source] != 0 {
		return fmt.Errorf("validate: source level %d, want 0", dist[source])
	}
	for u := uint32(0); u < n; u++ {
		if u != source && dist[u] == 0 {
			return fmt.Errorf("validate: node %d has level 0 but is not the source", u)
		}
	}
	// (2): edge relaxation.
	for u := uint32(0); u < n; u++ {
		if dist[u] == fields.InfinityU32 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] > dist[u]+1 {
				return fmt.Errorf("validate: edge (%d,%d) skipped: levels %d → %d", u, v, dist[u], dist[v])
			}
		}
	}
	// (3): achievability, via one transpose pass.
	achieved := make([]bool, n)
	achieved[source] = true
	for u := uint32(0); u < n; u++ {
		if dist[u] == fields.InfinityU32 {
			achieved[u] = true // nothing to achieve
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == dist[u]+1 {
				achieved[v] = true
			}
		}
	}
	for u := uint32(0); u < n; u++ {
		if !achieved[u] {
			return fmt.Errorf("validate: node %d at level %d has no predecessor at level %d", u, dist[u], dist[u]-1)
		}
	}
	return nil
}

// SSSP checks that dist is a valid shortest-path assignment from source:
// triangle inequality over every edge, plus achievability (every finite
// distance is witnessed by an incoming edge that is tight).
func SSSP(g *graph.CSR, source uint32, dist []uint32) error {
	n := g.NumNodes()
	if uint32(len(dist)) != n {
		return fmt.Errorf("validate: %d distances for %d nodes", len(dist), n)
	}
	if dist[source] != 0 {
		return fmt.Errorf("validate: source distance %d, want 0", dist[source])
	}
	tight := make([]bool, n)
	tight[source] = true
	for u := uint32(0); u < n; u++ {
		if dist[u] == fields.InfinityU32 {
			continue
		}
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			w := uint32(1)
			if ws != nil {
				w = ws[i]
			}
			if dist[v] > dist[u]+w {
				return fmt.Errorf("validate: edge (%d,%d,w=%d) violates triangle inequality: %d → %d",
					u, v, w, dist[u], dist[v])
			}
			if dist[v] == dist[u]+w {
				tight[v] = true
			}
		}
	}
	for u := uint32(0); u < n; u++ {
		if dist[u] != fields.InfinityU32 && !tight[u] {
			return fmt.Errorf("validate: node %d distance %d not witnessed by any edge", u, dist[u])
		}
	}
	return nil
}

// CC checks that comp is a valid minimum-label component assignment on an
// undirected (symmetrized) graph: endpoints of every edge share a label,
// labels are canonical (comp[comp[u]] == comp[u]), no label exceeds its
// node's ID, and the label's node is actually connected to u — which,
// given per-edge consistency and canonicality, reduces to comp[u] <= u
// with equality achieved at the canonical node.
func CC(g *graph.CSR, comp []uint32) error {
	n := g.NumNodes()
	if uint32(len(comp)) != n {
		return fmt.Errorf("validate: %d labels for %d nodes", len(comp), n)
	}
	for u := uint32(0); u < n; u++ {
		if comp[u] > u {
			return fmt.Errorf("validate: node %d label %d above own ID", u, comp[u])
		}
		if comp[comp[u]] != comp[u] {
			return fmt.Errorf("validate: label %d of node %d is not canonical", comp[u], u)
		}
		for _, v := range g.Neighbors(u) {
			if comp[u] != comp[v] {
				return fmt.Errorf("validate: edge (%d,%d) crosses labels %d and %d", u, v, comp[u], comp[v])
			}
		}
	}
	return nil
}

// PageRank checks the damped fixed point: every rank is at least the
// teleport mass, finite, and satisfies the recurrence
// rank(v) ≈ (1-α) + α·Σ rank(u)/outdeg(u) within tol.
func PageRank(g *graph.CSR, alpha float64, rank []float64, tol float64) error {
	n := g.NumNodes()
	if uint32(len(rank)) != n {
		return fmt.Errorf("validate: %d ranks for %d nodes", len(rank), n)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	for u, r := range rank {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("validate: node %d rank %v", u, r)
		}
		if r < (1-alpha)-tol {
			return fmt.Errorf("validate: node %d rank %g below teleport mass %g", u, r, 1-alpha)
		}
	}
	in := g.Transpose()
	outdeg := make([]float64, n)
	for u := uint32(0); u < n; u++ {
		outdeg[u] = float64(g.OutDegree(u))
	}
	for v := uint32(0); v < n; v++ {
		var sum float64
		for _, u := range in.Neighbors(v) {
			if outdeg[u] > 0 {
				sum += rank[u] / outdeg[u]
			}
		}
		want := (1 - alpha) + alpha*sum
		// Relative tolerance: iterative convergence at tol leaves residual
		// error proportional to the rank's magnitude (hubs can carry ranks
		// orders of magnitude above the teleport mass).
		if math.Abs(rank[v]-want) > tol*10*(1+math.Abs(want)) {
			return fmt.Errorf("validate: node %d rank %g not a fixed point (recurrence gives %g)", v, rank[v], want)
		}
	}
	return nil
}

// KCore checks the k-core fixed point: every surviving node has at least k
// surviving neighbors, and — via one peeling replay — every removed node
// was genuinely peelable (the survivor set is the *maximal* k-core).
func KCore(g *graph.CSR, k uint64, inCore []bool) error {
	n := g.NumNodes()
	if uint32(len(inCore)) != n {
		return fmt.Errorf("validate: %d flags for %d nodes", len(inCore), n)
	}
	for u := uint32(0); u < n; u++ {
		if !inCore[u] {
			continue
		}
		var surviving uint64
		for _, v := range g.Neighbors(u) {
			if inCore[v] {
				surviving++
			}
		}
		if surviving < k {
			return fmt.Errorf("validate: node %d in %d-core with only %d surviving neighbors", u, k, surviving)
		}
	}
	// Maximality: peeling the full graph must remove every non-survivor.
	deg := make([]uint64, n)
	for u := uint32(0); u < n; u++ {
		deg[u] = uint64(g.OutDegree(u))
	}
	dead := make([]bool, n)
	var queue []uint32
	for u := uint32(0); u < n; u++ {
		if deg[u] < k {
			dead[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !dead[v] {
				deg[v]--
				if deg[v] < k {
					dead[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	for u := uint32(0); u < n; u++ {
		if inCore[u] == dead[u] {
			return fmt.Errorf("validate: node %d in-core=%v but peeling says dead=%v", u, inCore[u], dead[u])
		}
	}
	return nil
}
