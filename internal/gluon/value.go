package gluon

import (
	"encoding/binary"
	"math"
)

// Value constrains the node-field element types Gluon can synchronize:
// fixed-width numerics with a defined little-endian wire encoding. The
// paper's benchmarks all use 32-bit labels; 64-bit and float fields are
// supported for pagerank-style algorithms.
type Value interface {
	uint32 | uint64 | int32 | int64 | float32 | float64
}

// valSize returns the wire size of V in bytes.
func valSize[V Value]() int {
	var v V
	switch any(v).(type) {
	case uint32, int32, float32:
		return 4
	default:
		return 8
	}
}

// putVal encodes v at the start of b (little-endian).
func putVal[V Value](b []byte, v V) {
	switch x := any(v).(type) {
	case uint32:
		binary.LittleEndian.PutUint32(b, x)
	case int32:
		binary.LittleEndian.PutUint32(b, uint32(x))
	case float32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(x))
	case uint64:
		binary.LittleEndian.PutUint64(b, x)
	case int64:
		binary.LittleEndian.PutUint64(b, uint64(x))
	case float64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(x))
	}
}

// getVal decodes a V from the start of b.
func getVal[V Value](b []byte) V {
	var v V
	switch any(v).(type) {
	case uint32:
		return any(binary.LittleEndian.Uint32(b)).(V)
	case int32:
		return any(int32(binary.LittleEndian.Uint32(b))).(V)
	case float32:
		return any(math.Float32frombits(binary.LittleEndian.Uint32(b))).(V)
	case uint64:
		return any(binary.LittleEndian.Uint64(b)).(V)
	case int64:
		return any(int64(binary.LittleEndian.Uint64(b))).(V)
	default:
		return any(math.Float64frombits(binary.LittleEndian.Uint64(b))).(V)
	}
}
