package gluon_test

// Black-box end-to-end tests of the substrate's Sync machinery: a
// hand-checkable two-host partition, a full reduce+broadcast cycle, and
// behavioural invariants (frontier semantics, encoding forcing,
// BroadcastAll reconciliation).

import (
	"sync"
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

// twoHosts builds a 2-host OEC partitioning of the Figure 2-style graph:
// nodes 0..5, host 0 owns {0,1,2}, host 1 owns {3,4,5}; cross edges create
// mirrors.
func twoHosts(t *testing.T, opt gluon.Options) ([]*partition.Partition, []*gluon.Gluon, func()) {
	t.Helper()
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 3}, {Src: 1, Dst: 4}, // host0-owned sources
		{Src: 3, Dst: 5}, {Src: 4, Dst: 2}, {Src: 5, Dst: 0}, // host1-owned sources
	}
	pol, err := partition.NewPolicy(partition.OEC, 6, 2, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(6, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(2)
	gs := make([]*gluon.Gluon, 2)
	var wg sync.WaitGroup
	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			g, err := gluon.New(parts[h], hub.Endpoint(h), opt)
			if err != nil {
				panic(err)
			}
			gs[h] = g
		}(h)
	}
	wg.Wait()
	return parts, gs, hub.Close
}

// syncBoth runs fn on both hosts concurrently (Sync is collective).
func syncBoth(t *testing.T, fn func(h int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			errs[h] = fn(h)
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
}

func mkField(id uint32, labels []uint32) gluon.Field[uint32] {
	return gluon.Field[uint32]{
		ID:        id,
		Name:      "test",
		Write:     gluon.AtDestination,
		Read:      gluon.AtSource,
		Reduce:    fields.MinU32{Labels: labels},
		Broadcast: fields.SetU32{Labels: labels},
	}
}

// TestReduceMovesMirrorValueToMaster: host 0 writes a value on its mirror
// of node 4 (owned by host 1); after Sync, host 1's master holds the min.
func TestReduceMovesMirrorValueToMaster(t *testing.T) {
	parts, gs, closeHub := twoHosts(t, gluon.Opt())
	defer closeHub()

	labels := make([][]uint32, 2)
	for h := range labels {
		labels[h] = make([]uint32, parts[h].NumProxies())
		for i := range labels[h] {
			labels[h][i] = fields.InfinityU32
		}
	}
	// Host 0 has a mirror of global node 4 (edge 1→4 is OEC-assigned to
	// host 0, source owner).
	m4, ok := parts[0].LID(4)
	if !ok || parts[0].IsMaster(m4) {
		t.Fatalf("expected mirror of 4 on host 0 (lid %d, ok %v)", m4, ok)
	}
	labels[0][m4] = 7

	syncBoth(t, func(h int) error {
		upd := bitset.New(parts[h].NumProxies())
		if h == 0 {
			upd.SetUnsync(m4)
		}
		return gluon.Sync(gs[h], mkField(21, labels[h]), upd)
	})

	lid4, _ := parts[1].LID(4)
	if !parts[1].IsMaster(lid4) {
		t.Fatal("node 4 not mastered on host 1")
	}
	if labels[1][lid4] != 7 {
		t.Fatalf("master label = %d, want 7", labels[1][lid4])
	}
}

// TestSyncUpdatesFrontierSemantics: after Sync, the updated bitset holds
// exactly the master(s) that changed (shipped mirror bits are consumed,
// and OEC needs no broadcast).
func TestSyncUpdatesFrontierSemantics(t *testing.T) {
	parts, gs, closeHub := twoHosts(t, gluon.Opt())
	defer closeHub()
	labels := make([][]uint32, 2)
	for h := range labels {
		labels[h] = make([]uint32, parts[h].NumProxies())
		for i := range labels[h] {
			labels[h][i] = fields.InfinityU32
		}
	}
	m4, _ := parts[0].LID(4)
	labels[0][m4] = 3
	upds := make([]*bitset.Bitset, 2)
	syncBoth(t, func(h int) error {
		upds[h] = bitset.New(parts[h].NumProxies())
		if h == 0 {
			upds[h].SetUnsync(m4)
		}
		return gluon.Sync(gs[h], mkField(22, labels[h]), upds[h])
	})
	if upds[0].Any() {
		t.Fatalf("host 0 updated not consumed: %v", upds[0])
	}
	lid4, _ := parts[1].LID(4)
	if !upds[1].Test(lid4) || upds[1].Count() != 1 {
		t.Fatalf("host 1 updated = %v, want exactly master of 4", upds[1])
	}
}

// TestForceEncodingStillCorrect: pinning each encoding changes bytes but
// never results.
func TestForceEncodingStillCorrect(t *testing.T) {
	for _, enc := range []gluon.Encoding{gluon.EncodingDense, gluon.EncodingBitvec, gluon.EncodingIndices} {
		opt := gluon.Opt()
		opt.ForceEncoding = enc
		parts, gs, closeHub := twoHosts(t, opt)
		labels := make([][]uint32, 2)
		for h := range labels {
			labels[h] = make([]uint32, parts[h].NumProxies())
			for i := range labels[h] {
				labels[h][i] = fields.InfinityU32
			}
		}
		m4, _ := parts[0].LID(4)
		labels[0][m4] = 9
		syncBoth(t, func(h int) error {
			upd := bitset.New(parts[h].NumProxies())
			if h == 0 {
				upd.SetUnsync(m4)
			}
			return gluon.Sync(gs[h], mkField(23, labels[h]), upd)
		})
		lid4, _ := parts[1].LID(4)
		if labels[1][lid4] != 9 {
			t.Fatalf("encoding %d: master = %d, want 9", enc, labels[1][lid4])
		}
		closeHub()
	}
}

// TestBroadcastAllReconciles: masters' values reach every mirror,
// including mirrors OEC would normally skip.
func TestBroadcastAllReconciles(t *testing.T) {
	parts, gs, closeHub := twoHosts(t, gluon.Opt())
	defer closeHub()
	labels := make([][]uint32, 2)
	for h := range labels {
		labels[h] = make([]uint32, parts[h].NumProxies())
		for lid := range labels[h] {
			if parts[h].IsMaster(uint32(lid)) {
				labels[h][lid] = uint32(parts[h].GID(uint32(lid))) * 10
			} else {
				labels[h][lid] = fields.InfinityU32
			}
		}
	}
	syncBoth(t, func(h int) error {
		return gluon.BroadcastAll(gs[h], mkField(24, labels[h]))
	})
	for h := range parts {
		for lid := uint32(0); lid < parts[h].NumProxies(); lid++ {
			want := uint32(parts[h].GID(lid)) * 10
			if labels[h][lid] != want {
				t.Fatalf("host %d lid %d: %d, want %d", h, lid, labels[h][lid], want)
			}
		}
	}
}

// TestStatsSplitAfterRealSync: GID bytes appear only under UNOPT.
func TestStatsSplitAfterRealSync(t *testing.T) {
	for _, ti := range []bool{true, false} {
		opt := gluon.Options{StructuralInvariants: true, TemporalInvariance: ti}
		parts, gs, closeHub := twoHosts(t, opt)
		labels := make([][]uint32, 2)
		for h := range labels {
			labels[h] = make([]uint32, parts[h].NumProxies())
		}
		m4, _ := parts[0].LID(4)
		syncBoth(t, func(h int) error {
			upd := bitset.New(parts[h].NumProxies())
			if h == 0 {
				labels[h][m4] = 1
				upd.SetUnsync(m4)
			}
			return gluon.Sync(gs[h], mkField(25, labels[h]), upd)
		})
		st := gs[0].Stats()
		if ti && st.GIDBytes != 0 {
			t.Fatalf("optimized sync sent %d GID bytes", st.GIDBytes)
		}
		if !ti && st.GIDBytes == 0 {
			t.Fatal("unoptimized sync sent no GID bytes")
		}
		closeHub()
	}
}
