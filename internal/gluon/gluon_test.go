package gluon

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

// buildCluster partitions a small rmat graph and constructs a Gluon
// instance per host over an in-process hub.
func buildCluster(t testing.TB, kind partition.Kind, hosts int, opt Options) []*Gluon {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 8, EdgeFactor: 8, Seed: 21}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, cfg.NumNodes())
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	pol, err := partition.NewPolicy(kind, cfg.NumNodes(), hosts,
		partition.Options{OutDegrees: out, InDegrees: g.InDegrees()})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(cfg.NumNodes(), edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(hosts)
	t.Cleanup(hub.Close)
	gs := make([]*Gluon, hosts)
	var wg sync.WaitGroup
	errs := make([]error, hosts)
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			gs[h], errs[h] = New(parts[h], hub.Endpoint(h), opt)
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
	return gs
}

// TestMemoizationAlignment: for every host pair, the sender's mirror list
// and the receiver's master list have identical lengths and refer to the
// same global IDs in the same order — the §4.1 contract that lets values
// travel without IDs.
func TestMemoizationAlignment(t *testing.T) {
	for _, kind := range partition.AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			gs := buildCluster(t, kind, 4, Opt())
			for a := range gs {
				for b := range gs {
					if a == b {
						continue
					}
					mirrors := gs[a].mirrors.lists[b]
					masters := gs[b].masters.lists[a]
					if len(mirrors) != len(masters) {
						t.Fatalf("pair (%d,%d): %d mirrors vs %d masters", a, b, len(mirrors), len(masters))
					}
					for i := range mirrors {
						ga := gs[a].Part.GID(mirrors[i])
						gb := gs[b].Part.GID(masters[i])
						if ga != gb {
							t.Fatalf("pair (%d,%d) position %d: gid %d vs %d", a, b, i, ga, gb)
						}
					}
					// Structural subsets align too.
					for i := range gs[a].mirrorsIn.lists[b] {
						if gs[a].Part.GID(gs[a].mirrorsIn.lists[b][i]) != gs[b].Part.GID(gs[b].mastersIn.lists[a][i]) {
							t.Fatalf("pair (%d,%d): mirrorsIn misaligned at %d", a, b, i)
						}
					}
					for i := range gs[a].mirrorsOut.lists[b] {
						if gs[a].Part.GID(gs[a].mirrorsOut.lists[b][i]) != gs[b].Part.GID(gs[b].mastersOut.lists[a][i]) {
							t.Fatalf("pair (%d,%d): mirrorsOut misaligned at %d", a, b, i)
						}
					}
				}
				if err := gs[a].VerifyMemoization(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestStructuralPatternsPerPolicy: the §3.2 table — which sync patterns a
// push-style (write-at-destination, read-at-source) field needs under each
// policy.
func TestStructuralPatternsPerPolicy(t *testing.T) {
	cases := []struct {
		kind          partition.Kind
		wantReduce    bool
		wantBroadcast bool
	}{
		{partition.OEC, true, false}, // reduce only
		{partition.IEC, false, true}, // broadcast only
		{partition.CVC, true, true},  // both, on subsets
		{partition.HVC, true, true},  // both
	}
	for _, c := range cases {
		t.Run(string(c.kind), func(t *testing.T) {
			gs := buildCluster(t, c.kind, 4, Opt())
			anyReduce, anyBroadcast := false, false
			for _, g := range gs {
				if g.ReduceNeeded(AtDestination) {
					anyReduce = true
				}
				if g.BroadcastNeeded(AtSource) {
					anyBroadcast = true
				}
			}
			if anyReduce != c.wantReduce {
				t.Errorf("reduce needed = %v, want %v", anyReduce, c.wantReduce)
			}
			if anyBroadcast != c.wantBroadcast {
				t.Errorf("broadcast needed = %v, want %v", anyBroadcast, c.wantBroadcast)
			}
		})
	}
}

// TestCVCSubsetsAreProper: under CVC, the structurally-pruned mirror sets
// are strictly smaller than the full mirror sets (the whole point of OSI).
func TestCVCSubsetsAreProper(t *testing.T) {
	gs := buildCluster(t, partition.CVC, 4, Opt())
	var full, inSub, outSub int
	for _, g := range gs {
		for h := range g.mirrors.lists {
			full += len(g.mirrors.lists[h])
			inSub += len(g.mirrorsIn.lists[h])
			outSub += len(g.mirrorsOut.lists[h])
		}
	}
	if inSub >= full || outSub >= full {
		t.Fatalf("cvc subsets not proper: full=%d in=%d out=%d", full, inSub, outSub)
	}
	if inSub+outSub != full {
		// Under CVC a mirror has in- xor out-edges (or neither, if it only
		// exists... it can't: a proxy exists because an edge touches it).
		t.Fatalf("cvc: in+out=%d != full=%d", inSub+outSub, full)
	}
}

// TestPartnersShrinkWithOptimizations: the §5.6 partner-count effect —
// structural invariants never increase, and under CVC strictly decrease,
// the set of hosts a broadcast touches compared to the all-mirrors pattern.
func TestPartnersShrinkWithOptimizations(t *testing.T) {
	const hosts = 9 // 3x3 CVC grid
	optOn := buildCluster(t, partition.CVC, hosts, Opt())
	optOff := buildCluster(t, partition.CVC, hosts, Options{TemporalInvariance: true})

	var onMax, offMax int
	for h := 0; h < hosts; h++ {
		_, bOn := optOn[h].Partners(AtDestination, AtSource)
		_, bOff := optOff[h].Partners(AtDestination, AtSource)
		if bOn > onMax {
			onMax = bOn
		}
		if bOff > offMax {
			offMax = bOff
		}
		if bOn > bOff {
			t.Fatalf("host %d: optimized broadcast partners %d exceed unoptimized %d", h, bOn, bOff)
		}
	}
	if onMax >= offMax {
		t.Fatalf("CVC broadcast partners did not shrink: opt %d vs unopt %d", onMax, offMax)
	}
	t.Logf("max broadcast partners: optimized %d, unoptimized %d (of %d possible)", onMax, offMax, hosts-1)
}

// fakeGluon builds a 1-host Gluon for encode/decode testing (no peers, so
// memoization is trivial).
func fakeGluon(t *testing.T, opt Options) *Gluon {
	t.Helper()
	gs := buildClusterSingle(t, opt)
	return gs
}

func buildClusterSingle(t *testing.T, opt Options) *Gluon {
	t.Helper()
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	pol, err := partition.NewPolicy(partition.OEC, 4, 1, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(4, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(1)
	t.Cleanup(hub.Close)
	g, err := New(parts[0], hub.Endpoint(0), opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEncodeDecodeRoundTripModes: every encoding mode reproduces exactly
// the updated (position, value) pairs.
func TestEncodeDecodeRoundTripModes(t *testing.T) {
	g := fakeGluon(t, Opt())
	// Order over the local proxies of the single host (all masters).
	n := int(g.Part.NumProxies())
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	vals := []uint32{100, 200, 300, 400}

	cases := []struct {
		name    string
		updated []uint32 // nil means all
	}{
		{"empty", []uint32{}},
		{"one", []uint32{2}},
		{"some", []uint32{0, 3}},
		{"all-dense", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var upd *bitset.Bitset
			want := map[uint32]uint32{}
			if c.updated != nil {
				upd = bitset.New(uint32(n))
				for _, i := range c.updated {
					upd.SetUnsync(i)
					want[i] = vals[i]
				}
			} else {
				for i, v := range vals {
					want[uint32(i)] = v
				}
			}
			payload, sent := encodeForTest(g, order, upd, gatherU32(func(lid uint32) uint32 { return vals[lid] }))
			if c.updated != nil && len(sent) < len(c.updated) {
				t.Fatalf("sent %d lids, want at least %d", len(sent), len(c.updated))
			}
			if c.updated != nil && payload[0] != modeDense && len(sent) != len(c.updated) {
				t.Fatalf("sparse mode sent %d lids, want exactly %d", len(sent), len(c.updated))
			}
			got := map[uint32]uint32{}
			if err := decodeMsg(g, payload, order, func(lid uint32, v uint32) {
				got[lid] = v
			}); err != nil {
				t.Fatal(err)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("lid %d: got %d, want %d", k, got[k], v)
				}
			}
			// Dense mode may deliver extra (unchanged) values; sparse modes
			// must deliver exactly the updates.
			if payload[0] == modeBitvec || payload[0] == modeIndices || payload[0] == modeGIDs {
				if len(got) != len(want) {
					t.Fatalf("sparse mode delivered %d values, want %d", len(got), len(want))
				}
			}
		})
	}
}

// TestEncodeModeSelection: the encoder picks the expected mode by density.
func TestEncodeModeSelection(t *testing.T) {
	g := fakeGluon(t, Opt())
	const n = 1024
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i % 4) // lids just need to be valid
	}
	extract := gatherU32(func(lid uint32) uint32 { return lid })

	mk := func(k int) *bitset.Bitset {
		b := bitset.New(uint32(g.Part.NumProxies()))
		// Mark k of the 4 distinct lids as updated: we need density over the
		// order, so instead mark via positions — use a fresh order of unique
		// lids for this test.
		_ = k
		return b
	}
	_ = mk

	// Unique-lid order over a larger fake proxy space is not available on
	// this tiny partition, so test mode selection through payload size
	// directly with the 4-proxy order repeated: updated=nil forces dense.
	payload, _ := encodeForTest(g, order, nil, extract)
	if payload[0] != modeDense {
		t.Fatalf("nil updated: mode %d, want dense", payload[0])
	}
	// No updates: empty.
	empty := bitset.New(uint32(g.Part.NumProxies()))
	payload, _ = encodeForTest(g, order[:16], empty, extract)
	if payload[0] != modeEmpty || len(payload) != 1 {
		t.Fatalf("no updates: mode %d len %d", payload[0], len(payload))
	}
	// One update out of many: indices beat bitvec and dense.
	one := bitset.New(uint32(g.Part.NumProxies()))
	one.SetUnsync(1)
	uniq := []uint32{0, 1, 2, 3}
	bigOrder := make([]uint32, 0, 256)
	for len(bigOrder) < 256 {
		bigOrder = append(bigOrder, uniq...)
	}
	payload, _ = encodeForTest(g, bigOrder, one, extract)
	if payload[0] != modeBitvec && payload[0] != modeIndices {
		t.Fatalf("sparse updates: mode %d, want bitvec or indices", payload[0])
	}
}

// TestUnoptUsesGIDPairs: with temporal invariance off, messages are
// (global-ID, value) pairs.
func TestUnoptUsesGIDPairs(t *testing.T) {
	g := fakeGluon(t, Options{})
	order := []uint32{0, 1, 2, 3}
	upd := bitset.New(g.Part.NumProxies())
	upd.SetUnsync(1)
	upd.SetUnsync(3)
	payload, sent := encodeForTest(g, order, upd, gatherU32(func(lid uint32) uint32 { return lid * 10 }))
	if payload[0] != modeGIDs {
		t.Fatalf("mode %d, want gid-pairs", payload[0])
	}
	if len(sent) != 2 {
		t.Fatalf("sent %d", len(sent))
	}
	got := map[uint32]uint32{}
	if err := decodeMsg(g, payload, order, func(lid, v uint32) { got[lid] = v }); err != nil {
		t.Fatal(err)
	}
	if got[1] != 10 || got[3] != 30 || len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

// TestDecodeRejectsCorruptMessages: malformed payloads error rather than
// panic or corrupt state.
func TestDecodeRejectsCorruptMessages(t *testing.T) {
	g := fakeGluon(t, Opt())
	order := []uint32{0, 1, 2, 3}
	apply := func(lid, v uint32) {}
	cases := [][]byte{
		{},                        // empty payload
		{99},                      // unknown mode
		{modeDense, 1, 2},         // dense with wrong length
		{modeBitvec, 1},           // short bitvec
		{modeIndices, 1, 0, 0, 0}, // indices count without body
		{modeGIDs, 2},             // short gid header
	}
	for i, payload := range cases {
		if err := decodeMsg[uint32](g, payload, order, apply); err == nil {
			t.Errorf("case %d: corrupt payload accepted", i)
		}
	}
	// Indices out of range.
	payload, _ := encodeForTest(g, order, func() *bitset.Bitset {
		b := bitset.New(g.Part.NumProxies())
		b.SetUnsync(0)
		return b
	}(), gatherU32(func(lid uint32) uint32 { return 0 }))
	if payload[0] == modeIndices {
		payload[5] = 200 // out-of-range position
		if err := decodeMsg[uint32](g, payload, order, apply); err == nil {
			t.Error("out-of-range index accepted")
		}
	}
}

// TestQuickEncodeDecodeRoundTrip: arbitrary update subsets and uint64
// values survive encoding under the optimized wire format.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	g := fakeGluon(t, Opt())
	order := []uint32{0, 1, 2, 3}
	f := func(updMask uint8, v0, v1, v2, v3 uint64) bool {
		vals := []uint64{v0, v1, v2, v3}
		upd := bitset.New(g.Part.NumProxies())
		want := map[uint32]uint64{}
		for i := uint32(0); i < 4; i++ {
			if updMask&(1<<i) != 0 {
				upd.SetUnsync(i)
				want[i] = vals[i]
			}
		}
		payload, _ := encodeForTest(g, order, upd, gatherU64(func(lid uint32) uint64 { return vals[lid] }))
		got := map[uint32]uint64{}
		if err := decodeMsg(g, payload, order, func(lid uint32, v uint64) { got[lid] = v }); err != nil {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAccounting: encode updates the mode counters and byte split.
func TestStatsAccounting(t *testing.T) {
	g := fakeGluon(t, Opt())
	order := []uint32{0, 1, 2, 3}
	encodeForTest(g, order, nil, gatherU32(func(lid uint32) uint32 { return 0 }))
	s := g.Stats()
	if s.MessagesSent != 1 || s.ModeCounts[modeDense] != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.ValueBytes != 16 || s.MetadataBytes != 1 {
		t.Fatalf("byte split: values=%d metadata=%d", s.ValueBytes, s.MetadataBytes)
	}
	g.ResetStats()
	if g.Stats().MessagesSent != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

// TestValueCodec: every Value type round-trips through the wire helpers.
func TestValueCodec(t *testing.T) {
	buf := make([]byte, 8)
	putVal(buf, uint32(0xdeadbeef))
	if getVal[uint32](buf) != 0xdeadbeef {
		t.Fatal("uint32")
	}
	putVal(buf, int32(-7))
	if getVal[int32](buf) != -7 {
		t.Fatal("int32")
	}
	putVal(buf, float32(1.5))
	if getVal[float32](buf) != 1.5 {
		t.Fatal("float32")
	}
	putVal(buf, uint64(1<<60))
	if getVal[uint64](buf) != 1<<60 {
		t.Fatal("uint64")
	}
	putVal(buf, int64(-1<<40))
	if getVal[int64](buf) != -1<<40 {
		t.Fatal("int64")
	}
	putVal(buf, 3.14159)
	if getVal[float64](buf) != 3.14159 {
		t.Fatal("float64")
	}
	if valSize[uint32]() != 4 || valSize[float64]() != 8 {
		t.Fatal("valSize")
	}
}

func TestNewRejectsMismatchedTransport(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}}
	pol, _ := partition.NewPolicy(partition.OEC, 2, 2, partition.Options{})
	parts, err := partition.PartitionAll(2, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(2)
	defer hub.Close()
	// Partition for host 1 with transport of host 0.
	if _, err := New(parts[1], hub.Endpoint(0), Opt()); err == nil {
		t.Fatal("mismatched host IDs accepted")
	}
}

// encodeForTest drives encodeMsg the way the sync path does — order mask,
// fresh scratch, worker-local stats folded into the instance — so codec
// tests exercise the production configuration without pooling.
func encodeForTest[V Value](g *Gluon, order []uint32, upd *bitset.Bitset, gather func([]uint32, []V) []V) ([]byte, []uint32) {
	var st Stats
	payload, sent := encodeMsg(g, order, bitset.NewOrderMask(order), upd, gather, &encodeScratch{}, &st)
	g.foldStats(&st)
	return payload, sent
}

// gatherU32 adapts a per-lid extractor into the bulk gather form encodeMsg
// takes.
func gatherU32(extract func(uint32) uint32) func([]uint32, []uint32) []uint32 {
	return func(lids []uint32, dst []uint32) []uint32 {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = extract(lid)
		}
		return dst
	}
}

func gatherU64(extract func(uint32) uint64) func([]uint32, []uint64) []uint64 {
	return func(lids []uint32, dst []uint64) []uint64 {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = extract(lid)
		}
		return dst
	}
}

func ExampleOpt() {
	o := Opt()
	fmt.Println(o.StructuralInvariants, o.TemporalInvariance)
	// Output: true true
}
