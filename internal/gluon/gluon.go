// Package gluon implements the paper's contribution: a
// communication-optimizing substrate that couples shared-memory graph
// analytics engines into a distributed-memory system.
//
// One Gluon instance lives on each host, wrapping that host's Partition and
// a comm.Transport. Engines run rounds of computation on the local graph
// and call Sync between rounds with a per-field synchronization descriptor
// (the reduce/broadcast structs of §3.3). Gluon composes the minimal
// communication pattern from
//
//   - structural invariants (§3.2): which proxies can be written/read under
//     the partitioning policy, derived from per-proxy has-in/has-out flags —
//     OEC degenerates to reduce-only, IEC to broadcast-only, CVC to
//     subset-reduce + subset-broadcast, UVC to the full gather-apply-scatter;
//   - temporal invariance (§4): a one-time memoization exchange fixes, for
//     every host pair, which proxies communicate and in what order, so no
//     global IDs are ever sent afterwards (§4.1), and per-message metadata
//     adapts between dense / bitvector / index / empty encodings by computed
//     size (§4.2).
//
// Every optimization can be disabled independently (Options), which is how
// the Figure 10 UNOPT/OSI/OTI/OSTI experiments are produced.
package gluon

import (
	"encoding/binary"
	"fmt"
	"sort"

	"gluon/internal/comm"
	"gluon/internal/partition"
)

// Encoding selects how update metadata is represented on the wire.
type Encoding uint8

// Metadata encodings (§4.2). EncodingAuto — pick the smallest per message —
// is the paper's behaviour; the fixed settings exist for ablation studies.
const (
	EncodingAuto Encoding = iota
	EncodingDense
	EncodingBitvec
	EncodingIndices
)

// Options toggles the communication optimizations, matching the paper's
// Figure 10 configurations.
type Options struct {
	// StructuralInvariants (OSI): when false, every field syncs with the
	// unconstrained gather-apply-scatter pattern — reduce from all mirrors,
	// then broadcast to all mirrors — regardless of policy.
	StructuralInvariants bool
	// TemporalInvariance (OTI): when false, messages carry (global-ID,
	// value) pairs and the adaptive metadata encodings are disabled; the
	// receiver translates IDs on arrival, as pre-Gluon systems do.
	TemporalInvariance bool
	// ForceEncoding pins the metadata encoding instead of the adaptive
	// per-message choice (ablation of §4.2; ignored when
	// TemporalInvariance is off). Empty messages are always sent as such.
	ForceEncoding Encoding
	// Compress applies deterministic DEFLATE compression to messages
	// larger than CompressThreshold — the paper's §4.2 notes "other
	// compression or encoding techniques could be used to represent the
	// bit-vector as long as they are deterministic". Compression trades
	// CPU for volume; worthwhile on slow links.
	Compress bool
	// CompressThreshold is the minimum payload size to compress
	// (0 = 1 KiB).
	CompressThreshold int
}

// Unopt returns the baseline configuration with both optimizations off.
func Unopt() Options { return Options{} }

// Opt returns the standard configuration (OSTI) with both optimizations on.
func Opt() Options {
	return Options{StructuralInvariants: true, TemporalInvariance: true}
}

// Gluon is one host's communication substrate instance.
type Gluon struct {
	Part *partition.Partition
	T    comm.Transport
	Opt  Options

	// Memoized exchange orders (§4.1), all in agreed (GID-ascending) order.
	//
	// mirrors[h]: local IDs of my mirror proxies whose master is on host h.
	// masters[h]: local IDs of my master proxies that have a mirror on h,
	// positionally aligned with h's mirrors[me].
	mirrors [][]uint32
	masters [][]uint32

	// Structural-invariant subsets (§3.2). mirrorsIn/mastersIn restrict to
	// proxies whose mirror has incoming local edges (can be written by a
	// write-at-destination operator); mirrorsOut/mastersOut to mirrors with
	// outgoing edges (will be read by a read-at-source operator).
	mirrorsIn, mirrorsOut [][]uint32
	mastersIn, mastersOut [][]uint32

	stats Stats
}

// New builds the substrate for one host and performs the memoization
// exchange with all peers. All hosts of the communicator must call New
// concurrently (it communicates).
func New(p *partition.Partition, t comm.Transport, opt Options) (*Gluon, error) {
	if p.HostID != t.HostID() || p.NumHosts != t.NumHosts() {
		return nil, fmt.Errorf("gluon: partition host %d/%d does not match transport %d/%d",
			p.HostID, p.NumHosts, t.HostID(), t.NumHosts())
	}
	g := &Gluon{Part: p, T: t, Opt: opt}
	if err := g.memoize(); err != nil {
		return nil, err
	}
	return g, nil
}

// memoize runs the §4.1 exchange: each host informs every other host of the
// global IDs of its mirrors owned by that host, together with the mirrors'
// structural flags; both sides then translate to local IDs once and never
// exchange IDs again.
//
// The exchange always runs — even under UNOPT options — because the runtime
// needs to know which host pairs communicate; UNOPT merely ignores the
// memoized ordering when encoding messages.
func (g *Gluon) memoize() error {
	p := g.Part
	me := p.HostID
	n := p.NumHosts

	byOwner := p.MirrorGIDsByOwner()
	g.mirrors = make([][]uint32, n)
	g.mirrorsIn = make([][]uint32, n)
	g.mirrorsOut = make([][]uint32, n)
	g.masters = make([][]uint32, n)
	g.mastersIn = make([][]uint32, n)
	g.mastersOut = make([][]uint32, n)

	// Send to each peer: count, gids, then per-mirror in/out flag bytes.
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		gids := byOwner[h]
		payload := make([]byte, 4+len(gids)*9)
		binary.LittleEndian.PutUint32(payload, uint32(len(gids)))
		off := 4
		lids := make([]uint32, len(gids))
		for i, gid := range gids {
			lid, ok := p.LID(gid)
			if !ok {
				return fmt.Errorf("gluon: host %d: mirror gid %d has no local ID", me, gid)
			}
			lids[i] = lid
			binary.LittleEndian.PutUint64(payload[off:], gid)
			var flags byte
			if p.HasIn.Test(lid) {
				flags |= 1
			}
			if p.HasOut.Test(lid) {
				flags |= 2
			}
			payload[off+8] = flags
			off += 9
		}
		g.mirrors[h] = lids
		for _, lid := range lids {
			if p.HasIn.Test(lid) {
				g.mirrorsIn[h] = append(g.mirrorsIn[h], lid)
			}
			if p.HasOut.Test(lid) {
				g.mirrorsOut[h] = append(g.mirrorsOut[h], lid)
			}
		}
		if err := g.T.Send(h, comm.TagMemo, payload); err != nil {
			return err
		}
	}

	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		payload, err := g.T.Recv(h, comm.TagMemo)
		if err != nil {
			return err
		}
		cnt := binary.LittleEndian.Uint32(payload)
		off := 4
		g.masters[h] = make([]uint32, cnt)
		for i := uint32(0); i < cnt; i++ {
			gid := binary.LittleEndian.Uint64(payload[off:])
			flags := payload[off+8]
			off += 9
			lid, ok := p.LID(gid)
			if !ok || !p.IsMaster(lid) {
				return fmt.Errorf("gluon: host %d: peer %d claims mirror of gid %d which is not my master", me, h, gid)
			}
			g.masters[h][i] = lid
			if flags&1 != 0 {
				g.mastersIn[h] = append(g.mastersIn[h], lid)
			}
			if flags&2 != 0 {
				g.mastersOut[h] = append(g.mastersOut[h], lid)
			}
		}
	}
	g.stats.MemoProxies = countAll(g.mirrors) + countAll(g.masters)
	return nil
}

func countAll(lists [][]uint32) uint64 {
	var c uint64
	for _, l := range lists {
		c += uint64(len(l))
	}
	return c
}

// HostID returns this instance's host rank.
func (g *Gluon) HostID() int { return g.Part.HostID }

// NumHosts returns the communicator size.
func (g *Gluon) NumHosts() int { return g.Part.NumHosts }

// Barrier blocks until all hosts reach it.
func (g *Gluon) Barrier() error { return comm.Barrier(g.T) }

// AllReduceSum sums val across hosts and returns the total on every host.
// Engines use it for termination detection (global quiescence: total
// active-work count reaches zero).
func (g *Gluon) AllReduceSum(val uint64) (uint64, error) { return comm.AllReduceSum(g.T, val) }

// AllReduceMax returns the maximum of val across hosts on every host.
func (g *Gluon) AllReduceMax(val uint64) (uint64, error) { return comm.AllReduceMax(g.T, val) }

// Stats returns a snapshot of the substrate's communication counters.
func (g *Gluon) Stats() Stats { return g.stats }

// ResetStats zeroes the communication counters (partition-time counters
// like MemoProxies are preserved).
func (g *Gluon) ResetStats() {
	memo := g.stats.MemoProxies
	g.stats = Stats{MemoProxies: memo}
}

// MirrorCount returns the total number of mirror proxies on this host.
func (g *Gluon) MirrorCount() uint32 { return g.Part.NumProxies() - g.Part.NumMasters }

// peersForReduce returns, for the given write location, the per-peer mirror
// lists this host must send during a reduce and the per-peer master lists it
// receives into, honoring or ignoring structural invariants per Options.
func (g *Gluon) peersForReduce(write Location) (sendMirrors, recvMasters [][]uint32) {
	if !g.Opt.StructuralInvariants {
		return g.mirrors, g.masters
	}
	switch write {
	case AtDestination:
		return g.mirrorsIn, g.mastersIn
	case AtSource:
		return g.mirrorsOut, g.mastersOut
	default:
		return g.mirrors, g.masters
	}
}

// peersForBroadcast returns, for the given read location, the per-peer
// master lists this host sends during a broadcast and the mirror lists it
// receives into.
func (g *Gluon) peersForBroadcast(read Location) (sendMasters, recvMirrors [][]uint32) {
	if !g.Opt.StructuralInvariants {
		return g.masters, g.mirrors
	}
	switch read {
	case AtSource:
		return g.mastersOut, g.mirrorsOut
	case AtDestination:
		return g.mastersIn, g.mirrorsIn
	default:
		return g.masters, g.mirrors
	}
}

// BroadcastNeeded reports whether, under the current options and the
// field's read location, any broadcast communication exists for this host
// pair set. The distributed runners use it to skip no-op phases.
func (g *Gluon) BroadcastNeeded(read Location) bool {
	send, recv := g.peersForBroadcast(read)
	return countAll(send)+countAll(recv) > 0
}

// ReduceNeeded is the reduce-side analogue of BroadcastNeeded.
func (g *Gluon) ReduceNeeded(write Location) bool {
	send, recv := g.peersForReduce(write)
	return countAll(send)+countAll(recv) > 0
}

// Partners reports how many peers this host exchanges field values with
// for a (write, read) location pair under the current options — the §5.6
// metric ("UNOPT results in broadcasting updated values to at most 22
// hosts while OPT broadcasts to at most 7"): structural invariants shrink
// the partner sets, CVC bounds them to a grid row/column.
func (g *Gluon) Partners(write, read Location) (reducePeers, broadcastPeers int) {
	sendMirrors, recvMasters := g.peersForReduce(write)
	sendMasters, recvMirrors := g.peersForBroadcast(read)
	for h := 0; h < g.NumHosts(); h++ {
		if h == g.HostID() {
			continue
		}
		if len(sendMirrors[h]) > 0 || len(recvMasters[h]) > 0 {
			reducePeers++
		}
		if len(sendMasters[h]) > 0 || len(recvMirrors[h]) > 0 {
			broadcastPeers++
		}
	}
	return reducePeers, broadcastPeers
}

// VerifyMemoization cross-checks the memoized orders between all hosts by
// re-exchanging GID digests; used by tests and the partition inspector.
func (g *Gluon) VerifyMemoization() error {
	p := g.Part
	for h := 0; h < p.NumHosts; h++ {
		if h == p.HostID {
			continue
		}
		if !sort.SliceIsSorted(g.mirrors[h], func(a, b int) bool {
			return p.GID(g.mirrors[h][a]) < p.GID(g.mirrors[h][b])
		}) {
			return fmt.Errorf("gluon: host %d: mirrors[%d] not in GID order", p.HostID, h)
		}
	}
	return nil
}
