// Package gluon implements the paper's contribution: a
// communication-optimizing substrate that couples shared-memory graph
// analytics engines into a distributed-memory system.
//
// One Gluon instance lives on each host, wrapping that host's Partition and
// a comm.Transport. Engines run rounds of computation on the local graph
// and call Sync between rounds with a per-field synchronization descriptor
// (the reduce/broadcast structs of §3.3). Gluon composes the minimal
// communication pattern from
//
//   - structural invariants (§3.2): which proxies can be written/read under
//     the partitioning policy, derived from per-proxy has-in/has-out flags —
//     OEC degenerates to reduce-only, IEC to broadcast-only, CVC to
//     subset-reduce + subset-broadcast, UVC to the full gather-apply-scatter;
//   - temporal invariance (§4): a one-time memoization exchange fixes, for
//     every host pair, which proxies communicate and in what order, so no
//     global IDs are ever sent afterwards (§4.1), and per-message metadata
//     adapts between dense / bitvector / index / empty encodings by computed
//     size (§4.2).
//
// Every optimization can be disabled independently (Options), which is how
// the Figure 10 UNOPT/OSI/OTI/OSTI experiments are produced.
package gluon

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// Encoding selects how update metadata is represented on the wire.
type Encoding uint8

// Metadata encodings (§4.2). EncodingAuto — pick the smallest per message —
// is the paper's behaviour; the fixed settings exist for ablation studies.
const (
	EncodingAuto Encoding = iota
	EncodingDense
	EncodingBitvec
	EncodingIndices
)

// Options toggles the communication optimizations, matching the paper's
// Figure 10 configurations.
type Options struct {
	// StructuralInvariants (OSI): when false, every field syncs with the
	// unconstrained gather-apply-scatter pattern — reduce from all mirrors,
	// then broadcast to all mirrors — regardless of policy.
	StructuralInvariants bool
	// TemporalInvariance (OTI): when false, messages carry (global-ID,
	// value) pairs and the adaptive metadata encodings are disabled; the
	// receiver translates IDs on arrival, as pre-Gluon systems do.
	TemporalInvariance bool
	// ForceEncoding pins the metadata encoding instead of the adaptive
	// per-message choice (ablation of §4.2; ignored when
	// TemporalInvariance is off). Empty messages are always sent as such.
	ForceEncoding Encoding
	// Compress applies deterministic DEFLATE compression to messages
	// larger than CompressThreshold — the paper's §4.2 notes "other
	// compression or encoding techniques could be used to represent the
	// bit-vector as long as they are deterministic". Compression trades
	// CPU for volume; worthwhile on slow links.
	Compress bool
	// CompressThreshold is the minimum payload size to compress
	// (0 = 1 KiB). Ignored when CompressPolicy is set.
	CompressThreshold int
	// CompressPolicy, when non-nil (and Compress is on), makes the
	// compress-or-ship-raw choice per message instead of the fixed
	// CompressThreshold comparison, and receives the observed outcome
	// (raw/wire sizes, compression time) of every send so it can adapt.
	// Implementations must be safe for concurrent use — parallel encode
	// workers consult one shared policy. autotune.NewCompressTuner provides
	// the adaptive per-field implementation.
	CompressPolicy CompressPolicy
	// SyncWorkers caps how many goroutines encode per-peer sync messages
	// in parallel (0 = one per CPU, 1 = serial encoding). Message bytes
	// are identical at any setting; only time changes.
	SyncWorkers int
}

// Unopt returns the baseline configuration with both optimizations off.
func Unopt() Options { return Options{} }

// Opt returns the standard configuration (OSTI) with both optimizations on.
func Opt() Options {
	return Options{StructuralInvariants: true, TemporalInvariance: true}
}

// orderSet is a family of per-peer memoized exchange orders together with
// their word-level masks: masks[h], when non-nil, is the bitset.OrderMask
// of lists[h], computed once at memoization time so the sync hot path can
// intersect an order against the updated bitset a word at a time.
type orderSet struct {
	lists [][]uint32
	masks []*bitset.OrderMask
}

// newOrderSet wraps per-peer order lists, building a mask for every
// non-empty list. Orders that are not strictly lid-ascending (possible
// only if a partition ever broke the GID-sorted layout) get a nil mask and
// fall back to per-lid scans.
func newOrderSet(lists [][]uint32) orderSet {
	masks := make([]*bitset.OrderMask, len(lists))
	for h, l := range lists {
		if len(l) > 0 {
			masks[h] = bitset.NewOrderMask(l)
		}
	}
	return orderSet{lists: lists, masks: masks}
}

// Gluon is one host's communication substrate instance.
type Gluon struct {
	Part *partition.Partition
	T    comm.Transport
	Opt  Options

	// Memoized exchange orders (§4.1), all in agreed (GID-ascending) order.
	//
	// mirrors.lists[h]: local IDs of my mirror proxies whose master is on
	// host h. masters.lists[h]: local IDs of my master proxies that have a
	// mirror on h, positionally aligned with h's mirrors.lists[me].
	mirrors orderSet
	masters orderSet

	// Structural-invariant subsets (§3.2). mirrorsIn/mastersIn restrict to
	// proxies whose mirror has incoming local edges (can be written by a
	// write-at-destination operator); mirrorsOut/mastersOut to mirrors with
	// outgoing edges (will be read by a read-at-source operator).
	mirrorsIn, mirrorsOut orderSet
	mastersIn, mastersOut orderSet

	// rec is this host's observability sink; nil (the default) disables
	// every instrumentation site at the cost of one nil check. Set it with
	// SetRecorder before the instance is used concurrently.
	rec *trace.Recorder

	// stats is guarded by statsMu: parallel encode workers fold their
	// local counters in on join, and the sync receive loop runs
	// concurrently with the senders.
	statsMu sync.Mutex
	stats   Stats
	// syncDepth and syncEnter implement the TimeInSync contract: wall time
	// accumulates once while at least one Sync* call is active, so nested
	// or concurrent syncs on the same host never double-count.
	syncDepth int
	syncEnter time.Time

	// sendWG tracks the pipelined sync send goroutines. A sync that fails
	// mid-flight (peer death) returns before its sender finishes; the
	// checkpoint rendezvous calls WaitSends to quiesce the wire before
	// announcing HOLD, so no pre-rollback frame can trail the announcement.
	sendWG sync.WaitGroup
}

// WaitSends blocks until every in-flight sync send goroutine has finished.
// Used by the rejoin rendezvous; safe to call at any quiescent point.
func (g *Gluon) WaitSends() { g.sendWG.Wait() }

// SetRecorder attaches a trace recorder to this substrate instance; sync
// calls then emit per-phase spans tagged with exact payload byte splits.
// Call it before the Gluon is used from multiple goroutines (the field is
// read without synchronization on the hot path). A nil recorder disables
// emission.
func (g *Gluon) SetRecorder(r *trace.Recorder) { g.rec = r }

// Recorder returns the attached trace recorder (nil when tracing is off).
func (g *Gluon) Recorder() *trace.Recorder { return g.rec }

// dumpInvariant freezes a postmortem bundle through the armed flight
// recorder when a sync message violates the wire contract: the bytes
// arrived intact — transport failures dump in comm under their own
// triggers — but could not be decoded against the memoized proxy order.
// Free when no flight recorder is armed; nil-safe on g.rec.
func (g *Gluon) dumpInvariant(peer int, cause error) {
	if trace.Armed() == nil {
		return
	}
	trace.Crash(trace.DumpInfo{
		Trigger: trace.TriggerSyncInvariant,
		Host:    g.HostID(),
		Peer:    peer,
		Round:   int(g.rec.Round()),
		Phase:   g.rec.LivePhase(),
		Cause:   cause,
	})
}

// syncBegin opens one Sync* call for stats purposes. Paired with syncEnd.
func (g *Gluon) syncBegin() {
	g.statsMu.Lock()
	if g.syncDepth == 0 {
		g.syncEnter = time.Now()
	}
	g.syncDepth++
	g.statsMu.Unlock()
}

// syncEnd closes one Sync* call: the outermost close banks the wall time
// since the first concurrent open, so overlapping calls count once.
func (g *Gluon) syncEnd() {
	g.statsMu.Lock()
	g.syncDepth--
	if g.syncDepth == 0 {
		g.stats.TimeInSync += time.Since(g.syncEnter)
	}
	g.stats.Syncs++
	g.statsMu.Unlock()
}

// foldStats merges a worker's local counters into the shared stats.
func (g *Gluon) foldStats(st *Stats) {
	g.statsMu.Lock()
	g.stats = g.stats.Add(*st)
	g.statsMu.Unlock()
}

// New builds the substrate for one host and performs the memoization
// exchange with all peers. All hosts of the communicator must call New
// concurrently (it communicates).
func New(p *partition.Partition, t comm.Transport, opt Options) (*Gluon, error) {
	if p.HostID != t.HostID() || p.NumHosts != t.NumHosts() {
		return nil, fmt.Errorf("gluon: partition host %d/%d does not match transport %d/%d",
			p.HostID, p.NumHosts, t.HostID(), t.NumHosts())
	}
	g := &Gluon{Part: p, T: t, Opt: opt}
	if err := g.memoize(); err != nil {
		return nil, err
	}
	return g, nil
}

// memoize runs the §4.1 exchange: each host informs every other host of the
// global IDs of its mirrors owned by that host, together with the mirrors'
// structural flags; both sides then translate to local IDs once and never
// exchange IDs again.
//
// The exchange always runs — even under UNOPT options — because the runtime
// needs to know which host pairs communicate; UNOPT merely ignores the
// memoized ordering when encoding messages.
func (g *Gluon) memoize() error {
	p := g.Part
	me := p.HostID
	n := p.NumHosts

	byOwner, mirrors, mirrorsIn, mirrorsOut, err := g.localMirrors()
	if err != nil {
		return err
	}
	masters := make([][]uint32, n)
	mastersIn := make([][]uint32, n)
	mastersOut := make([][]uint32, n)

	// Send to each peer: count, gids, then per-mirror in/out flag bytes.
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		gids := byOwner[h]
		lids := mirrors[h]
		payload := comm.GetBuf(4 + len(gids)*9)
		binary.LittleEndian.PutUint32(payload, uint32(len(gids)))
		off := 4
		for i, gid := range gids {
			binary.LittleEndian.PutUint64(payload[off:], gid)
			var flags byte
			if p.HasIn.Test(lids[i]) {
				flags |= 1
			}
			if p.HasOut.Test(lids[i]) {
				flags |= 2
			}
			payload[off+8] = flags
			off += 9
		}
		if err := g.T.Send(h, comm.TagMemo, payload); err != nil {
			return err
		}
	}

	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		payload, err := g.T.Recv(h, comm.TagMemo)
		if err != nil {
			return err
		}
		cnt := binary.LittleEndian.Uint32(payload)
		off := 4
		masters[h] = make([]uint32, cnt)
		for i := uint32(0); i < cnt; i++ {
			gid := binary.LittleEndian.Uint64(payload[off:])
			flags := payload[off+8]
			off += 9
			lid, ok := p.LID(gid)
			if !ok || !p.IsMaster(lid) {
				return fmt.Errorf("gluon: host %d: peer %d claims mirror of gid %d which is not my master", me, h, gid)
			}
			masters[h][i] = lid
			if flags&1 != 0 {
				mastersIn[h] = append(mastersIn[h], lid)
			}
			if flags&2 != 0 {
				mastersOut[h] = append(mastersOut[h], lid)
			}
		}
		comm.PutBuf(payload)
	}
	g.mirrors = newOrderSet(mirrors)
	g.mirrorsIn = newOrderSet(mirrorsIn)
	g.mirrorsOut = newOrderSet(mirrorsOut)
	g.masters = newOrderSet(masters)
	g.mastersIn = newOrderSet(mastersIn)
	g.mastersOut = newOrderSet(mastersOut)
	g.stats.MemoProxies = countAll(mirrors) + countAll(masters)
	return nil
}

func countAll(lists [][]uint32) uint64 {
	var c uint64
	for _, l := range lists {
		c += uint64(len(l))
	}
	return c
}

// localMirrors computes the mirror-side exchange orders — which of my
// proxies are mirrors owned by each peer, in agreed GID order, plus the
// structural In/Out subsets. Pure local computation over the partition; the
// master-side orders are the part that requires either the memoization
// exchange (New) or a checkpointed import (NewRestored).
func (g *Gluon) localMirrors() (byOwner [][]uint64, mirrors, mirrorsIn, mirrorsOut [][]uint32, err error) {
	p := g.Part
	n := p.NumHosts
	byOwner = p.MirrorGIDsByOwner()
	mirrors = make([][]uint32, n)
	mirrorsIn = make([][]uint32, n)
	mirrorsOut = make([][]uint32, n)
	for h := 0; h < n; h++ {
		if h == p.HostID {
			continue
		}
		gids := byOwner[h]
		lids := make([]uint32, len(gids))
		for i, gid := range gids {
			lid, ok := p.LID(gid)
			if !ok {
				return nil, nil, nil, nil, fmt.Errorf("gluon: host %d: mirror gid %d has no local ID", p.HostID, gid)
			}
			lids[i] = lid
		}
		mirrors[h] = lids
		for _, lid := range lids {
			if p.HasIn.Test(lid) {
				mirrorsIn[h] = append(mirrorsIn[h], lid)
			}
			if p.HasOut.Test(lid) {
				mirrorsOut[h] = append(mirrorsOut[h], lid)
			}
		}
	}
	return byOwner, mirrors, mirrorsIn, mirrorsOut, nil
}

// ExportMemo serializes the master-side memoized orders (masters,
// mastersIn, mastersOut) for checkpointing. A replacement host cannot
// re-run the memoization exchange — the survivors are holding at the
// rendezvous, not in New — so the checkpoint carries the only state the
// exchange would have produced; the mirror side is recomputed locally.
// Layout: u32 numHosts, then for each of the three sets, per host a u32
// count followed by that many u32 local IDs.
func (g *Gluon) ExportMemo() []byte {
	n := g.Part.NumHosts
	size := 4
	for _, set := range []*orderSet{&g.masters, &g.mastersIn, &g.mastersOut} {
		size += 4 * n
		size += 4 * int(countAll(set.lists))
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for _, set := range []*orderSet{&g.masters, &g.mastersIn, &g.mastersOut} {
		for h := 0; h < n; h++ {
			lids := set.lists[h]
			out = binary.LittleEndian.AppendUint32(out, uint32(len(lids)))
			for _, lid := range lids {
				out = binary.LittleEndian.AppendUint32(out, lid)
			}
		}
	}
	return out
}

// importMemo inverts ExportMemo, validating every local ID against the
// partition (it must name a master proxy) so a stale or foreign checkpoint
// fails loudly instead of corrupting the exchange orders.
func (g *Gluon) importMemo(data []byte) error {
	p := g.Part
	n := p.NumHosts
	if len(data) < 4 {
		return fmt.Errorf("gluon: memo section too short (%d bytes)", len(data))
	}
	if got := int(binary.LittleEndian.Uint32(data)); got != n {
		return fmt.Errorf("gluon: memo section is for %d hosts, cluster has %d", got, n)
	}
	off := 4
	sets := make([][][]uint32, 3)
	for s := 0; s < 3; s++ {
		lists := make([][]uint32, n)
		for h := 0; h < n; h++ {
			if off+4 > len(data) {
				return fmt.Errorf("gluon: memo section truncated at host %d", h)
			}
			cnt := int(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			if off+4*cnt > len(data) {
				return fmt.Errorf("gluon: memo section truncated in host %d order", h)
			}
			if cnt == 0 {
				continue
			}
			lids := make([]uint32, cnt)
			for i := range lids {
				lid := binary.LittleEndian.Uint32(data[off:])
				off += 4
				if lid >= p.NumProxies() || !p.IsMaster(lid) {
					return fmt.Errorf("gluon: memo section names lid %d which is not a master here", lid)
				}
				lids[i] = lid
			}
			lists[h] = lids
		}
		sets[s] = lists
	}
	if off != len(data) {
		return fmt.Errorf("gluon: %d trailing bytes in memo section", len(data)-off)
	}
	g.masters = newOrderSet(sets[0])
	g.mastersIn = newOrderSet(sets[1])
	g.mastersOut = newOrderSet(sets[2])
	return nil
}

// NewRestored builds the substrate for a host resuming from a checkpoint:
// the mirror-side orders are recomputed locally and the master-side orders
// come from the checkpoint's memo section (ExportMemo), so no memoization
// exchange runs — the peers are holding at the rejoin rendezvous and could
// not answer one.
func NewRestored(p *partition.Partition, t comm.Transport, opt Options, memo []byte) (*Gluon, error) {
	if p.HostID != t.HostID() || p.NumHosts != t.NumHosts() {
		return nil, fmt.Errorf("gluon: partition host %d/%d does not match transport %d/%d",
			p.HostID, p.NumHosts, t.HostID(), t.NumHosts())
	}
	g := &Gluon{Part: p, T: t, Opt: opt}
	_, mirrors, mirrorsIn, mirrorsOut, err := g.localMirrors()
	if err != nil {
		return nil, err
	}
	g.mirrors = newOrderSet(mirrors)
	g.mirrorsIn = newOrderSet(mirrorsIn)
	g.mirrorsOut = newOrderSet(mirrorsOut)
	if err := g.importMemo(memo); err != nil {
		return nil, err
	}
	g.stats.MemoProxies = countAll(mirrors) + countAll(g.masters.lists)
	return g, nil
}

// HostID returns this instance's host rank.
func (g *Gluon) HostID() int { return g.Part.HostID }

// NumHosts returns the communicator size.
func (g *Gluon) NumHosts() int { return g.Part.NumHosts }

// Barrier blocks until all hosts reach it.
func (g *Gluon) Barrier() error { return comm.Barrier(g.T) }

// AllReduceSum sums val across hosts and returns the total on every host.
// Engines use it for termination detection (global quiescence: total
// active-work count reaches zero).
func (g *Gluon) AllReduceSum(val uint64) (uint64, error) { return comm.AllReduceSum(g.T, val) }

// AllReduceMax returns the maximum of val across hosts on every host.
func (g *Gluon) AllReduceMax(val uint64) (uint64, error) { return comm.AllReduceMax(g.T, val) }

// Stats returns a snapshot of the substrate's communication counters.
func (g *Gluon) Stats() Stats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.stats
}

// ResetStats zeroes the communication counters (partition-time counters
// like MemoProxies are preserved).
func (g *Gluon) ResetStats() {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	memo := g.stats.MemoProxies
	g.stats = Stats{MemoProxies: memo}
}

// MirrorCount returns the total number of mirror proxies on this host.
func (g *Gluon) MirrorCount() uint32 { return g.Part.NumProxies() - g.Part.NumMasters }

// peersForReduce returns, for the given write location, the per-peer mirror
// orders this host must send during a reduce and the per-peer master orders
// it receives into, honoring or ignoring structural invariants per the
// explicit flag (callers pass g.Opt.StructuralInvariants except for full
// reconciliations like BroadcastAll).
func (g *Gluon) peersForReduce(write Location, structural bool) (sendMirrors, recvMasters orderSet) {
	if !structural {
		return g.mirrors, g.masters
	}
	switch write {
	case AtDestination:
		return g.mirrorsIn, g.mastersIn
	case AtSource:
		return g.mirrorsOut, g.mastersOut
	default:
		return g.mirrors, g.masters
	}
}

// peersForBroadcast returns, for the given read location, the per-peer
// master orders this host sends during a broadcast and the mirror orders it
// receives into.
func (g *Gluon) peersForBroadcast(read Location, structural bool) (sendMasters, recvMirrors orderSet) {
	if !structural {
		return g.masters, g.mirrors
	}
	switch read {
	case AtSource:
		return g.mastersOut, g.mirrorsOut
	case AtDestination:
		return g.mastersIn, g.mirrorsIn
	default:
		return g.masters, g.mirrors
	}
}

// BroadcastNeeded reports whether, under the current options and the
// field's read location, any broadcast communication exists for this host
// pair set. The distributed runners use it to skip no-op phases.
func (g *Gluon) BroadcastNeeded(read Location) bool {
	send, recv := g.peersForBroadcast(read, g.Opt.StructuralInvariants)
	return countAll(send.lists)+countAll(recv.lists) > 0
}

// ReduceNeeded is the reduce-side analogue of BroadcastNeeded.
func (g *Gluon) ReduceNeeded(write Location) bool {
	send, recv := g.peersForReduce(write, g.Opt.StructuralInvariants)
	return countAll(send.lists)+countAll(recv.lists) > 0
}

// Partners reports how many peers this host exchanges field values with
// for a (write, read) location pair under the current options — the §5.6
// metric ("UNOPT results in broadcasting updated values to at most 22
// hosts while OPT broadcasts to at most 7"): structural invariants shrink
// the partner sets, CVC bounds them to a grid row/column.
func (g *Gluon) Partners(write, read Location) (reducePeers, broadcastPeers int) {
	sendMirrors, recvMasters := g.peersForReduce(write, g.Opt.StructuralInvariants)
	sendMasters, recvMirrors := g.peersForBroadcast(read, g.Opt.StructuralInvariants)
	for h := 0; h < g.NumHosts(); h++ {
		if h == g.HostID() {
			continue
		}
		if len(sendMirrors.lists[h]) > 0 || len(recvMasters.lists[h]) > 0 {
			reducePeers++
		}
		if len(sendMasters.lists[h]) > 0 || len(recvMirrors.lists[h]) > 0 {
			broadcastPeers++
		}
	}
	return reducePeers, broadcastPeers
}

// VerifyMemoization cross-checks the memoized orders between all hosts by
// re-exchanging GID digests; used by tests and the partition inspector.
func (g *Gluon) VerifyMemoization() error {
	p := g.Part
	for h := 0; h < p.NumHosts; h++ {
		if h == p.HostID {
			continue
		}
		if !sort.SliceIsSorted(g.mirrors.lists[h], func(a, b int) bool {
			return p.GID(g.mirrors.lists[h][a]) < p.GID(g.mirrors.lists[h][b])
		}) {
			return fmt.Errorf("gluon: host %d: mirrors[%d] not in GID order", p.HostID, h)
		}
	}
	return nil
}
