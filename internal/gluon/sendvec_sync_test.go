package gluon_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"gluon/internal/algorithms/pr"
	"gluon/internal/autotune"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// Vectored-wire-path sync tests: compressed messages ride SendVec (wrapper
// header + untouched deflate payload), so these pin that the receiver-visible
// bytes are identical across transports and that results stay correct over
// both the in-process hub and real TCP sockets.

// wireHashTransport folds a digest of every outgoing message — as the
// receiver will see it, header and payload coalesced — into acc, commutative
// so send order is irrelevant.
type wireHashTransport struct {
	comm.Transport
	acc *atomic.Uint64
}

func (h wireHashTransport) digest(to int, tag comm.Tag, header, payload []byte) {
	f := fnv.New64a()
	var meta [16]byte
	put32 := func(off int, v uint32) {
		meta[off] = byte(v)
		meta[off+1] = byte(v >> 8)
		meta[off+2] = byte(v >> 16)
		meta[off+3] = byte(v >> 24)
	}
	put32(0, uint32(h.Transport.HostID()))
	put32(4, uint32(to))
	put32(8, uint32(tag))
	put32(12, uint32(len(header)+len(payload)))
	f.Write(meta[:])
	f.Write(header)
	f.Write(payload)
	h.acc.Add(f.Sum64())
}

func (h wireHashTransport) Send(to int, tag comm.Tag, payload []byte) error {
	h.digest(to, tag, nil, payload)
	return h.Transport.Send(to, tag, payload)
}

func (h wireHashTransport) SendVec(to int, tag comm.Tag, header, payload []byte) error {
	h.digest(to, tag, header, payload)
	return h.Transport.SendVec(to, tag, header, payload)
}

// tcpMesh dials a hosts-wide TCP mesh on loopback.
func tcpMesh(t *testing.T, hosts, basePort int) []comm.Transport {
	t.Helper()
	addrs := make([]string, hosts)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]comm.Transport, hosts)
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = comm.DialTCP(i, addrs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial host %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
	})
	return eps
}

func compressedRun(t *testing.T, ts []comm.Transport, parts []*partition.Partition,
	numNodes uint64, opt gluon.Options) *dsys.Result {
	t.Helper()
	res, err := dsys.RunWithTransports(parts, ts, dsys.RunConfig{
		Hosts: len(parts), Policy: partition.CVC, Opt: opt, MaxRounds: 30,
	}, pr.NewLigra(1e-6, 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompressedWireBytesMatchAcrossTransports: with the static threshold
// (deterministic per message), the exact receiver-visible wire bytes of a
// compressed run are identical over the in-process hub (coalescing SendVec)
// and TCP (vectored writev SendVec) — the transport choice never leaks into
// what is shipped.
func TestCompressedWireBytesMatchAcrossTransports(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 61}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const hosts = 4
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressThreshold = 128

	var inprocHash, tcpHash atomic.Uint64

	hub := comm.NewHub(hosts)
	defer hub.Close()
	inprocTs := make([]comm.Transport, hosts)
	for i, e := range hub.Endpoints() {
		inprocTs[i] = wireHashTransport{Transport: e, acc: &inprocHash}
	}
	inprocRes := compressedRun(t, inprocTs, parts, numNodes, opt)

	tcpEps := tcpMesh(t, hosts, 41400)
	tcpTs := make([]comm.Transport, hosts)
	for i, e := range tcpEps {
		tcpTs[i] = wireHashTransport{Transport: e, acc: &tcpHash}
	}
	tcpRes := compressedRun(t, tcpTs, parts, numNodes, opt)

	var compressed uint64
	for _, h := range inprocRes.Hosts {
		compressed += h.Gluon.CompressedMessages
	}
	if compressed == 0 {
		t.Fatal("run shipped nothing compressed; the test exercises no vectored sends")
	}
	if inprocRes.Rounds != tcpRes.Rounds {
		t.Fatalf("rounds differ: inproc %d, tcp %d", inprocRes.Rounds, tcpRes.Rounds)
	}
	if ih, th := inprocHash.Load(), tcpHash.Load(); ih != th {
		t.Fatalf("wire bytes differ across transports: inproc %#x, tcp %#x", ih, th)
	}
}

// TestCompressedSyncOverTCP: a compressed pagerank over real sockets — the
// full vectored path, writev through the kernel and back — converges to the
// reference ranks.
func TestCompressedSyncOverTCP(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 62}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, pr.Alpha, 1e-9, 100)

	const hosts = 3
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}

	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressThreshold = 128
	res, err := dsys.RunWithTransports(parts, tcpMesh(t, hosts, 41410), dsys.RunConfig{
		Hosts: hosts, Policy: partition.CVC, Opt: opt,
		CollectValues: true, MaxRounds: 100,
	}, pr.NewGalois(1e-9, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-6 {
			t.Fatalf("node %d: %g, want %g", i, res.Values[i], w)
		}
	}
	var compressed uint64
	for _, h := range res.Hosts {
		compressed += h.Gluon.CompressedMessages
	}
	if compressed == 0 {
		t.Fatal("no message went compressed over TCP")
	}
}

// TestAdaptiveCompressionPreservesResults: the CompressTuner policy decides
// per field and per host, and none of that affects correctness — a full
// pagerank matches the reference, with both shipped-compressed and skipped
// messages observed.
func TestAdaptiveCompressionPreservesResults(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 63}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, pr.Alpha, 1e-9, 100)

	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressPolicy = autotune.NewCompressTuner(autotune.CompressConfig{MinSize: 128})
	res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
		Hosts: 4, Policy: partition.CVC, Opt: opt,
		CollectValues: true, MaxRounds: 100,
	}, pr.NewGalois(1e-9, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-6 {
			t.Fatalf("node %d: %g, want %g", i, res.Values[i], w)
		}
	}
	var compressed, skipped, saved uint64
	for _, h := range res.Hosts {
		compressed += h.Gluon.CompressedMessages
		skipped += h.Gluon.CompressSkipped
		saved += h.Gluon.CompressionSaved
	}
	if compressed == 0 {
		t.Fatal("adaptive policy never shipped a compressed message")
	}
	if skipped == 0 {
		t.Fatal("adaptive policy never skipped a message (below-MinSize traffic should skip)")
	}
	t.Logf("adaptive: %d compressed / %d skipped, %d bytes saved", compressed, skipped, saved)
}
