package gluon_test

import (
	"math"
	"testing"

	"gluon/internal/algorithms/pr"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// TestCompressionPreservesResults: a full pagerank with compression on
// matches the reference, and actually compressed something.
func TestCompressionPreservesResults(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 52}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, pr.Alpha, 1e-9, 100)

	opt := gluon.Opt()
	opt.Compress = true
	opt.CompressThreshold = 256
	res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
		Hosts: 4, Policy: partition.CVC, Opt: opt,
		CollectValues: true, MaxRounds: 100,
	}, pr.NewGalois(1e-9, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-6 {
			t.Fatalf("node %d: %g, want %g", i, res.Values[i], w)
		}
	}
	var compressed, saved uint64
	for _, h := range res.Hosts {
		compressed += h.Gluon.CompressedMessages
		saved += h.Gluon.CompressionSaved
	}
	if compressed == 0 || saved == 0 {
		t.Fatalf("no compression happened: %d messages, %d saved", compressed, saved)
	}
	t.Logf("compressed %d messages, saved %d bytes", compressed, saved)
}

// TestCompressionReducesVolume: compression lowers the recorded wire bytes
// for a volume-heavy run.
func TestCompressionReducesVolume(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 53}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(compress bool) uint64 {
		opt := gluon.Opt()
		opt.Compress = compress
		opt.CompressThreshold = 256
		res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
			Hosts: 4, Policy: partition.CVC, Opt: opt, MaxRounds: 30,
		}, pr.NewGalois(1e-9, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCommBytes
	}
	plain := run(false)
	packed := run(true)
	if packed >= plain {
		t.Fatalf("compression did not reduce volume: %d vs %d", packed, plain)
	}
	t.Logf("volume %d → %d (%.1f%% saved)", plain, packed, 100*(1-float64(packed)/float64(plain)))
}
