package gluon

import (
	"encoding/binary"
	"fmt"
	"time"

	"gluon/internal/bitset"
	"gluon/internal/comm"
)

// Location says at which edge endpoint a field is written or read by the
// operator, the information the sync call carries in the paper's API
// (WriteAtDestination / ReadAtSource in Figure 4).
type Location uint8

// Endpoint locations.
const (
	// AtDestination: the operator touches the field at edge destinations
	// (push-style writes, pull-style writes to the active node).
	AtDestination Location = iota
	// AtSource: the operator touches the field at edge sources.
	AtSource
	// Anywhere: no structural restriction can be assumed.
	Anywhere
)

// ReduceSpec is the reduce synchronization structure of §3.3. Mirrors call
// Extract to read partial values; masters call Reduce to fold a received
// value in (returning whether the master's value changed); mirrors call
// Reset to return to the reduction identity after their value is shipped.
//
// Contract required by the dense encoding: Extract on a proxy that was not
// updated this round must yield a value that is a no-op under Reduce
// (i.e. the reduction identity, or an already-incorporated value of an
// idempotent reduction such as min).
type ReduceSpec[V Value] interface {
	Extract(lid uint32) V
	Reduce(lid uint32, v V) bool
	Reset(lid uint32)
}

// BroadcastSpec is the broadcast synchronization structure of §3.3.
// Masters call Extract; mirrors call Set with the canonical value, returning
// whether the mirror's stored value changed.
type BroadcastSpec[V Value] interface {
	Extract(lid uint32) V
	Set(lid uint32, v V) bool
}

// BulkExtractor is the optional bulk variant of Extract the paper provides
// for GPUs (§3.3): the runtime hands the whole memoized order (or the
// updated subset) at once, so a device engine can stage one device→host
// copy instead of per-node callbacks. Specs that implement it are detected
// dynamically; dst has the required capacity.
type BulkExtractor[V Value] interface {
	ExtractBulk(lids []uint32, dst []V) []V
}

// gatherFor builds the value-gather function for a spec, preferring the
// bulk variant when the spec provides one.
func gatherFor[V Value](spec interface{ Extract(lid uint32) V }) func(lids []uint32, dst []V) []V {
	if be, ok := spec.(BulkExtractor[V]); ok {
		return be.ExtractBulk
	}
	return func(lids []uint32, dst []V) []V {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = spec.Extract(lid)
		}
		return dst
	}
}

// Field describes one synchronizable node field: where the operator writes
// and reads it, and how to move its values. It corresponds to one
// sync<WriteLoc, ReadLoc, Reduce, Broadcast>() instantiation in the paper.
type Field[V Value] struct {
	// ID must be unique among concurrently synchronized fields; it
	// namespaces message tags.
	ID uint32
	// Name is used in diagnostics only.
	Name string
	// Write is where the operator writes the field; Read where it reads it.
	Write, Read Location
	Reduce      ReduceSpec[V]
	Broadcast   BroadcastSpec[V]
}

// Message encoding modes (§4.2).
const (
	modeEmpty   byte = 0 // no updates
	modeDense   byte = 1 // values for every proxy in the memoized order
	modeBitvec  byte = 2 // bit-vector over the order + packed updated values
	modeIndices byte = 3 // index list + packed updated values
	modeGIDs    byte = 4 // (global-ID, value) pairs; the pre-Gluon wire format
)

func (g *Gluon) reduceTag(fieldID uint32) comm.Tag {
	return comm.TagUser + comm.Tag(fieldID)*2
}

func (g *Gluon) broadcastTag(fieldID uint32) comm.Tag {
	return comm.TagUser + comm.Tag(fieldID)*2 + 1
}

// Sync synchronizes one field across all hosts: a reduce phase (mirror
// values folded into masters) followed by a broadcast phase (canonical
// values pushed back to mirrors), each restricted to the structurally
// necessary proxy subsets. For OEC partitions of push-style fields the
// broadcast phase is empty; for IEC the reduce phase is empty; CVC uses
// proper subsets of mirrors in both; unconstrained cuts use all mirrors.
//
// updated tracks which local proxies changed this round; Sync consumes
// mirror bits it ships (resetting those mirrors), adds bits for masters
// changed by reduce and mirrors changed by broadcast, so that on return
// updated holds exactly the proxies whose values are new — the engine's
// next frontier. A nil updated means "assume everything changed".
func Sync[V Value](g *Gluon, f Field[V], updated *bitset.Bitset) error {
	if f.Reduce != nil {
		if err := SyncReduce(g, f, updated); err != nil {
			return err
		}
	}
	if f.Broadcast != nil {
		if err := SyncBroadcast(g, f, updated); err != nil {
			return err
		}
	}
	return nil
}

// SyncReduce runs only the reduce pattern for f.
func SyncReduce[V Value](g *Gluon, f Field[V], updated *bitset.Bitset) error {
	start := time.Now()
	defer func() {
		g.stats.TimeInSync += time.Since(start)
		g.stats.Syncs++
	}()

	sendMirrors, recvMasters := g.peersForReduce(f.Write)
	tag := g.reduceTag(f.ID)
	me := g.HostID()
	gatherReduce := gatherFor[V](f.Reduce)

	// Ship mirror values to owners. Sends run in a goroutine so that large
	// bidirectional exchanges cannot deadlock on transport buffering.
	sendErr := make(chan error, 1)
	go func() {
		for h := 0; h < g.NumHosts(); h++ {
			order := sendMirrors[h]
			if h == me || len(order) == 0 {
				continue
			}
			payload, sent := encodeMsg(g, order, updated, gatherReduce)
			payload = g.maybeCompress(payload)
			// Mirrors whose value was shipped return to the reduction
			// identity, and their "changed" bit migrates to the master.
			for _, lid := range sent {
				f.Reduce.Reset(lid)
				if updated != nil {
					updated.Clear(lid)
				}
			}
			if err := g.T.Send(h, tag, payload); err != nil {
				sendErr <- fmt.Errorf("gluon: reduce %s to host %d: %w", f.Name, h, err)
				return
			}
		}
		sendErr <- nil
	}()

	// Fold received mirror values into masters.
	for h := 0; h < g.NumHosts(); h++ {
		order := recvMasters[h]
		if h == me || len(order) == 0 {
			continue
		}
		payload, err := g.T.Recv(h, tag)
		if err != nil {
			return fmt.Errorf("gluon: reduce %s from host %d: %w", f.Name, h, err)
		}
		err = decodeMsg(g, payload, order, func(lid uint32, v V) {
			if f.Reduce.Reduce(lid, v) && updated != nil {
				updated.Set(lid)
			}
		})
		if err != nil {
			return fmt.Errorf("gluon: reduce %s from host %d: %w", f.Name, h, err)
		}
	}
	return <-sendErr
}

// SyncBroadcast runs only the broadcast pattern for f.
func SyncBroadcast[V Value](g *Gluon, f Field[V], updated *bitset.Bitset) error {
	start := time.Now()
	defer func() {
		g.stats.TimeInSync += time.Since(start)
		g.stats.Syncs++
	}()

	sendMasters, recvMirrors := g.peersForBroadcast(f.Read)
	tag := g.broadcastTag(f.ID)
	me := g.HostID()
	gatherBcast := gatherFor[V](f.Broadcast)

	sendErr := make(chan error, 1)
	go func() {
		for h := 0; h < g.NumHosts(); h++ {
			order := sendMasters[h]
			if h == me || len(order) == 0 {
				continue
			}
			payload, _ := encodeMsg(g, order, updated, gatherBcast)
			payload = g.maybeCompress(payload)
			if err := g.T.Send(h, tag, payload); err != nil {
				sendErr <- fmt.Errorf("gluon: broadcast %s to host %d: %w", f.Name, h, err)
				return
			}
		}
		sendErr <- nil
	}()

	for h := 0; h < g.NumHosts(); h++ {
		order := recvMirrors[h]
		if h == me || len(order) == 0 {
			continue
		}
		payload, err := g.T.Recv(h, tag)
		if err != nil {
			return fmt.Errorf("gluon: broadcast %s from host %d: %w", f.Name, h, err)
		}
		err = decodeMsg(g, payload, order, func(lid uint32, v V) {
			f.Broadcast.Set(lid, v)
			// Delivery activates the mirror even when the value is
			// unchanged: the mirror that originated this round's best value
			// has the value already, but its outgoing edges have not been
			// processed with it yet (matters for unconstrained vertex cuts,
			// where a mirror can have both incoming and outgoing edges).
			if updated != nil {
				updated.Set(lid)
			}
		})
		if err != nil {
			return fmt.Errorf("gluon: broadcast %s from host %d: %w", f.Name, h, err)
		}
	}
	return <-sendErr
}

// BroadcastAll pushes masters' canonical values to every mirror regardless
// of structural pattern or update tracking: a full reconciliation, used to
// finalize results before output or verification.
func BroadcastAll[V Value](g *Gluon, f Field[V]) error {
	full := Field[V]{ID: f.ID, Name: f.Name, Write: Anywhere, Read: Anywhere, Broadcast: f.Broadcast}
	saved := g.Opt.StructuralInvariants
	g.Opt.StructuralInvariants = false
	err := SyncBroadcast(g, full, nil)
	g.Opt.StructuralInvariants = saved
	return err
}

// encodeMsg builds one field-sync message for the given memoized order,
// selecting the cheapest of the §4.2 encodings (or (GID, value) pairs when
// temporal invariance is off). Values are obtained through gather — one
// bulk call per message, matching the GPU plugin's staged transfers. It
// returns the payload and the slice of local IDs whose values were shipped.
func encodeMsg[V Value](g *Gluon, order []uint32, updated *bitset.Bitset, gather func(lids []uint32, dst []V) []V) (payload []byte, sent []uint32) {
	vs := valSize[V]()
	n := len(order)

	if !g.Opt.TemporalInvariance {
		// Pre-Gluon wire format: (global-ID, value) pairs for every updated
		// proxy. No memoized ordering is assumed by the receiver.
		for _, lid := range order {
			if updated == nil || updated.Test(lid) {
				sent = append(sent, lid)
			}
		}
		vals := gather(sent, make([]V, len(sent)))
		payload = make([]byte, 5+len(sent)*(8+vs))
		payload[0] = modeGIDs
		binary.LittleEndian.PutUint32(payload[1:], uint32(len(sent)))
		off := 5
		for i, lid := range sent {
			binary.LittleEndian.PutUint64(payload[off:], g.Part.GID(lid))
			putVal(payload[off+8:], vals[i])
			off += 8 + vs
		}
		g.stats.MessagesSent++
		g.stats.ModeCounts[modeGIDs]++
		g.stats.MetadataBytes += 5
		g.stats.GIDBytes += uint64(len(sent)) * 8
		g.stats.ValueBytes += uint64(len(sent)) * uint64(vs)
		return payload, sent
	}

	// Positions (into the memoized order) carrying an update this round.
	var positions []uint32
	if updated == nil {
		positions = make([]uint32, n)
		for i := range positions {
			positions[i] = uint32(i)
		}
		sent = order
	} else {
		for i, lid := range order {
			if updated.Test(lid) {
				positions = append(positions, uint32(i))
				sent = append(sent, lid)
			}
		}
	}
	k := len(positions)

	// Size each §4.2 encoding and pick the smallest.
	if k == 0 {
		g.stats.MessagesSent++
		g.stats.ModeCounts[modeEmpty]++
		g.stats.MetadataBytes++
		return []byte{modeEmpty}, nil
	}
	bvWords := (n + 63) / 64
	denseSize := 1 + n*vs
	bitvecSize := 1 + 4 + bvWords*8 + k*vs
	idxSize := 1 + 4 + k*4 + k*vs
	// A forced encoding disqualifies the others (ablation mode).
	switch g.Opt.ForceEncoding {
	case EncodingDense:
		bitvecSize, idxSize = 1<<30, 1<<30
	case EncodingBitvec:
		denseSize, idxSize = 1<<30, 1<<30
	case EncodingIndices:
		denseSize, bitvecSize = 1<<30, 1<<30
	}

	switch {
	case denseSize <= bitvecSize && denseSize <= idxSize:
		// Dense messages ship every proxy in the order.
		sent = order
		vals := gather(order, make([]V, n))
		payload = make([]byte, denseSize)
		payload[0] = modeDense
		off := 1
		for _, v := range vals {
			putVal(payload[off:], v)
			off += vs
		}
		g.stats.ModeCounts[modeDense]++
		g.stats.MetadataBytes++
		g.stats.ValueBytes += uint64(n) * uint64(vs)
	case bitvecSize <= idxSize:
		vals := gather(sent, make([]V, k))
		payload = make([]byte, bitvecSize)
		payload[0] = modeBitvec
		binary.LittleEndian.PutUint32(payload[1:], uint32(k))
		bv := bitset.New(uint32(n))
		for _, pos := range positions {
			bv.SetUnsync(pos)
		}
		off := 5
		for _, w := range bv.Words() {
			binary.LittleEndian.PutUint64(payload[off:], w)
			off += 8
		}
		for _, v := range vals {
			putVal(payload[off:], v)
			off += vs
		}
		g.stats.ModeCounts[modeBitvec]++
		g.stats.MetadataBytes += uint64(5 + bvWords*8)
		g.stats.ValueBytes += uint64(k) * uint64(vs)
	default:
		vals := gather(sent, make([]V, k))
		payload = make([]byte, idxSize)
		payload[0] = modeIndices
		binary.LittleEndian.PutUint32(payload[1:], uint32(k))
		off := 5
		for _, pos := range positions {
			binary.LittleEndian.PutUint32(payload[off:], pos)
			off += 4
		}
		for _, v := range vals {
			putVal(payload[off:], v)
			off += vs
		}
		g.stats.ModeCounts[modeIndices]++
		g.stats.MetadataBytes += uint64(5 + k*4)
		g.stats.ValueBytes += uint64(k) * uint64(vs)
	}
	g.stats.MessagesSent++
	return payload, sent
}

// decodeMsg applies one received field-sync message: apply is called with
// the local ID (resolved through the memoized order, or through global-ID
// translation for modeGIDs messages) and the value.
func decodeMsg[V Value](g *Gluon, payload []byte, order []uint32, apply func(lid uint32, v V)) error {
	payload, err := maybeDecompress(payload)
	if err != nil {
		return err
	}
	if len(payload) == 0 {
		return fmt.Errorf("empty payload")
	}
	vs := valSize[V]()
	mode := payload[0]
	body := payload[1:]
	switch mode {
	case modeEmpty:
		return nil
	case modeDense:
		if len(body) != len(order)*vs {
			return fmt.Errorf("dense message: %d bytes for %d proxies of size %d", len(body), len(order), vs)
		}
		off := 0
		for _, lid := range order {
			apply(lid, getVal[V](body[off:]))
			off += vs
		}
	case modeBitvec:
		if len(body) < 4 {
			return fmt.Errorf("short bitvec message")
		}
		k := binary.LittleEndian.Uint32(body)
		n := len(order)
		bvWords := (n + 63) / 64
		if len(body) != 4+bvWords*8+int(k)*vs {
			return fmt.Errorf("bitvec message: %d bytes, want %d", len(body), 4+bvWords*8+int(k)*vs)
		}
		words := make([]uint64, bvWords)
		off := 4
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(body[off:])
			off += 8
		}
		bv, err := bitset.FromWords(words, uint32(n))
		if err != nil {
			return err
		}
		applied := uint32(0)
		var derr error
		bv.ForEach(func(pos uint32) {
			if derr != nil {
				return
			}
			if applied >= k {
				derr = fmt.Errorf("bitvec message: more set bits than count %d", k)
				return
			}
			apply(order[pos], getVal[V](body[off:]))
			off += vs
			applied++
		})
		if derr != nil {
			return derr
		}
		if applied != k {
			return fmt.Errorf("bitvec message: %d set bits, count says %d", applied, k)
		}
	case modeIndices:
		if len(body) < 4 {
			return fmt.Errorf("short indices message")
		}
		k := int(binary.LittleEndian.Uint32(body))
		if len(body) != 4+k*4+k*vs {
			return fmt.Errorf("indices message: %d bytes, want %d", len(body), 4+k*4+k*vs)
		}
		idxOff, valOff := 4, 4+k*4
		for i := 0; i < k; i++ {
			pos := binary.LittleEndian.Uint32(body[idxOff:])
			if int(pos) >= len(order) {
				return fmt.Errorf("indices message: position %d out of %d", pos, len(order))
			}
			apply(order[pos], getVal[V](body[valOff:]))
			idxOff += 4
			valOff += vs
		}
	case modeGIDs:
		if len(body) < 4 {
			return fmt.Errorf("short gid-pairs message")
		}
		k := int(binary.LittleEndian.Uint32(body))
		if len(body) != 4+k*(8+vs) {
			return fmt.Errorf("gid-pairs message: %d bytes, want %d", len(body), 4+k*(8+vs))
		}
		off := 4
		for i := 0; i < k; i++ {
			gid := binary.LittleEndian.Uint64(body[off:])
			v := getVal[V](body[off+8:])
			off += 8 + vs
			lid, ok := g.Part.LID(gid)
			if !ok {
				return fmt.Errorf("gid-pairs message: gid %d has no local proxy", gid)
			}
			apply(lid, v)
		}
	default:
		return fmt.Errorf("unknown message mode %d", mode)
	}
	return nil
}
