package gluon

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/par"
	"gluon/internal/trace"
)

// Location says at which edge endpoint a field is written or read by the
// operator, the information the sync call carries in the paper's API
// (WriteAtDestination / ReadAtSource in Figure 4).
type Location uint8

// Endpoint locations.
const (
	// AtDestination: the operator touches the field at edge destinations
	// (push-style writes, pull-style writes to the active node).
	AtDestination Location = iota
	// AtSource: the operator touches the field at edge sources.
	AtSource
	// Anywhere: no structural restriction can be assumed.
	Anywhere
)

// ReduceSpec is the reduce synchronization structure of §3.3. Mirrors call
// Extract to read partial values; masters call Reduce to fold a received
// value in (returning whether the master's value changed); mirrors call
// Reset to return to the reduction identity after their value is shipped.
//
// Contract required by the dense encoding: Extract on a proxy that was not
// updated this round must yield a value that is a no-op under Reduce
// (i.e. the reduction identity, or an already-incorporated value of an
// idempotent reduction such as min).
//
// Messages for different peers are encoded by parallel workers, so Extract
// and Reset must be safe to call concurrently on distinct lids (per-element
// reads/writes of a label array qualify; the per-peer mirror sets they run
// over are disjoint).
type ReduceSpec[V Value] interface {
	Extract(lid uint32) V
	Reduce(lid uint32, v V) bool
	Reset(lid uint32)
}

// BroadcastSpec is the broadcast synchronization structure of §3.3.
// Masters call Extract; mirrors call Set with the canonical value, returning
// whether the mirror's stored value changed. Extract must be safe to call
// concurrently on the same lid (parallel workers encode overlapping master
// orders); pure reads qualify.
type BroadcastSpec[V Value] interface {
	Extract(lid uint32) V
	Set(lid uint32, v V) bool
}

// BulkExtractor is the optional bulk variant of Extract the paper provides
// for GPUs (§3.3): the runtime hands the whole memoized order (or the
// updated subset) at once, so a device engine can stage one device→host
// copy instead of per-node callbacks. Specs that implement it are detected
// dynamically; dst has the required capacity.
type BulkExtractor[V Value] interface {
	ExtractBulk(lids []uint32, dst []V) []V
}

// gatherFor builds the value-gather function for a spec, preferring the
// bulk variant when the spec provides one.
func gatherFor[V Value](spec interface{ Extract(lid uint32) V }) func(lids []uint32, dst []V) []V {
	if be, ok := spec.(BulkExtractor[V]); ok {
		return be.ExtractBulk
	}
	return func(lids []uint32, dst []V) []V {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = spec.Extract(lid)
		}
		return dst
	}
}

// Field describes one synchronizable node field: where the operator writes
// and reads it, and how to move its values. It corresponds to one
// sync<WriteLoc, ReadLoc, Reduce, Broadcast>() instantiation in the paper.
type Field[V Value] struct {
	// ID must be unique among concurrently synchronized fields; it
	// namespaces message tags.
	ID uint32
	// Name is used in diagnostics only.
	Name string
	// Write is where the operator writes the field; Read where it reads it.
	Write, Read Location
	Reduce      ReduceSpec[V]
	Broadcast   BroadcastSpec[V]
}

// Message encoding modes (§4.2).
const (
	modeEmpty   byte = 0 // no updates
	modeDense   byte = 1 // values for every proxy in the memoized order
	modeBitvec  byte = 2 // bit-vector over the order + packed updated values
	modeIndices byte = 3 // index list + packed updated values
	modeGIDs    byte = 4 // (global-ID, value) pairs; the pre-Gluon wire format
)

func (g *Gluon) reduceTag(fieldID uint32) comm.Tag {
	return comm.TagUser + comm.Tag(fieldID)*2
}

func (g *Gluon) broadcastTag(fieldID uint32) comm.Tag {
	return comm.TagUser + comm.Tag(fieldID)*2 + 1
}

// Sync synchronizes one field across all hosts: a reduce phase (mirror
// values folded into masters) followed by a broadcast phase (canonical
// values pushed back to mirrors), each restricted to the structurally
// necessary proxy subsets. For OEC partitions of push-style fields the
// broadcast phase is empty; for IEC the reduce phase is empty; CVC uses
// proper subsets of mirrors in both; unconstrained cuts use all mirrors.
//
// updated tracks which local proxies changed this round; Sync consumes
// mirror bits it ships (resetting those mirrors), adds bits for masters
// changed by reduce and mirrors changed by broadcast, so that on return
// updated holds exactly the proxies whose values are new — the engine's
// next frontier. A nil updated means "assume everything changed".
//
// Both phases are pipelined: per-peer messages are encoded by parallel
// workers (Options.SyncWorkers) into pooled buffers, and received messages
// are applied in arrival order (Transport.RecvAny), so one slow link never
// idles the host. Neither changes what is sent: per-peer payload bytes and
// encoding-mode choices are identical to a serial, fixed-order sync.
func Sync[V Value](g *Gluon, f Field[V], updated *bitset.Bitset) error {
	if f.Reduce != nil {
		if err := SyncReduce(g, f, updated); err != nil {
			return err
		}
	}
	if f.Broadcast != nil {
		if err := SyncBroadcast(g, f, updated); err != nil {
			return err
		}
	}
	return nil
}

// modeDelta returns the wire encoding mode of the one message encoded
// between the st0 snapshot and st (the ModeCounts slot that advanced).
func modeDelta(st, st0 *Stats) int8 {
	for i := range st.ModeCounts {
		if st.ModeCounts[i] != st0.ModeCounts[i] {
			return int8(i)
		}
	}
	return -1
}

// compDelta returns the trace compression tag of the one message encoded
// between the st0 snapshot and st: shipped compressed, considered but
// skipped, or not a candidate (compression off).
func compDelta(st, st0 *Stats) int8 {
	switch {
	case st.CompressedMessages != st0.CompressedMessages:
		return trace.CompShipped
	case st.CompressSkipped != st0.CompressSkipped:
		return trace.CompSkipped
	default:
		return trace.CompNone
	}
}

// sendMsg ships one encoded message: the vectored transport path when
// compression produced a separate wrapper header, the plain path otherwise.
func sendMsg(g *Gluon, h int, tag comm.Tag, hdr, payload []byte) error {
	if hdr == nil {
		return g.T.Send(h, tag, payload)
	}
	return g.T.SendVec(h, tag, hdr, payload)
}

// SyncReduce runs only the reduce pattern for f.
func SyncReduce[V Value](g *Gluon, f Field[V], updated *bitset.Bitset) error {
	g.syncBegin()
	rec := g.rec
	tr := rec.Enabled()
	var syncT0 int64
	if tr {
		syncT0 = rec.Now()
	}
	defer func() {
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseSync, Start: syncT0, Dur: rec.Now() - syncT0,
				Field: f.ID, Peer: -1, Detail: f.Name})
		}
		g.syncEnd()
	}()

	send, recv := g.peersForReduce(f.Write, g.Opt.StructuralInvariants)
	tag := g.reduceTag(f.ID)
	me := g.HostID()
	gatherReduce := gatherFor[V](f.Reduce)

	ps := getPeerScratch()
	sendPeers, recvPeers := ps.peerLists(g.NumHosts(), me, send, recv)

	// Ship mirror values to owners. Encoding fans out across workers — the
	// per-peer mirror sets are disjoint, so encode, Reset, and Clear for
	// different peers touch disjoint lids and words are read atomically.
	// Sends still run off the receive path so that large bidirectional
	// exchanges cannot deadlock on transport buffering.
	sendErr := ps.errChan()
	g.sendWG.Add(1)
	go func() {
		defer g.sendWG.Done()
		sendErr <- par.RangeWorkers(len(sendPeers), g.Opt.SyncWorkers, func(w, lo, hi int) error {
			defer trace.LabelPhase(trace.PhaseEncode)()
			sc := getEncodeScratch()
			defer putEncodeScratch(sc)
			var st Stats
			defer g.foldStats(&st)
			lane := int32(1 + w)
			for _, h := range sendPeers[lo:hi] {
				order := send.lists[h]
				var t0 int64
				var st0 Stats
				if tr {
					t0, st0 = rec.Now(), st
				}
				payload, sent := encodeMsg(g, order, send.masks[h], updated, gatherReduce, sc, &st)
				hdr, payload := g.maybeCompress(f.ID, payload, sc, &st)
				if tr {
					// Byte tags are the post-compression stats deltas of this
					// one message, so trace sums reproduce Stats exactly.
					rec.Emit(trace.Event{Phase: trace.PhaseEncode, Start: t0, Dur: rec.Now() - t0,
						Peer: int32(h), Field: f.ID, Lane: lane, Mode: modeDelta(&st, &st0),
						Value: st.ValueBytes - st0.ValueBytes, Meta: st.MetadataBytes - st0.MetadataBytes,
						GID:  st.GIDBytes - st0.GIDBytes,
						Comp: compDelta(&st, &st0), Saved: st.CompressionSaved - st0.CompressionSaved})
				}
				// Mirrors whose value was shipped return to the reduction
				// identity, and their "changed" bit migrates to the master.
				for _, lid := range sent {
					f.Reduce.Reset(lid)
					if updated != nil {
						updated.Clear(lid)
					}
				}
				if tr {
					t0 = rec.Now()
				}
				if err := sendMsg(g, h, tag, hdr, payload); err != nil {
					return fmt.Errorf("gluon: reduce %s to host %d: %w", f.Name, h, err)
				}
				if tr {
					rec.Emit(trace.Event{Phase: trace.PhaseSend, Start: t0, Dur: rec.Now() - t0,
						Peer: int32(h), Field: f.ID, Lane: lane})
				}
			}
			return nil
		})
	}()

	// Fold received mirror values into masters. Messages are received in
	// arrival order but folds run in ascending host order: a master receives
	// contributions from several peers, and order-sensitive reductions
	// (floating-point sums) must fold them in the same sequence every run to
	// keep later rounds' payload bytes deterministic. A message whose turn
	// has come folds straight out of its receive buffer — wire parsing and
	// apply are one pass, with no intermediate (lids, values) staging. A
	// message that arrives ahead of its turn is decompressed (so the CPU
	// work overlaps waiting on slower links) and parked as raw wire bytes;
	// its single decode-and-fold pass runs once its predecessors are in.
	apply := func(lid uint32, v V) {
		if f.Reduce.Reduce(lid, v) && updated != nil {
			updated.Set(lid)
		}
	}
	remaining := append(ps.rem[:0], recvPeers...)
	ps.rem = remaining
	stages := ps.hostStages(g.NumHosts())
	applyIdx := 0
	defer trace.LabelPhase(trace.PhaseFold)()
	for len(remaining) > 0 {
		var t0 int64
		if tr {
			t0 = rec.Now()
		}
		// The live-phase flips cost two atomic stores per message (nil-safe,
		// alloc-free); they let the watchdog tell a host blocked waiting on a
		// peer (a victim) from one still producing (a suspect).
		rec.SetLivePhase(trace.PhaseRecvWait)
		h, payload, err := g.T.RecvAny(tag, remaining)
		rec.SetLivePhase(trace.PhaseFold)
		if err != nil {
			releaseStages(stages)
			return fmt.Errorf("gluon: reduce %s from host %d: %w", f.Name, h, err)
		}
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseRecvWait, Start: t0, Dur: rec.Now() - t0,
				Peer: int32(h), Field: f.ID, Value: uint64(len(payload))})
			t0 = rec.Now()
		}
		remaining = removePeer(remaining, h)
		if applyIdx < len(recvPeers) && h == recvPeers[applyIdx] {
			err = decodeMsg(g, payload, recv.lists[h], apply)
			comm.PutBuf(payload)
			if err != nil {
				releaseStages(stages)
				g.dumpInvariant(h, err)
				return fmt.Errorf("gluon: reduce %s from host %d: %w", f.Name, h, err)
			}
			applyIdx++
			if tr {
				rec.Emit(trace.Event{Phase: trace.PhaseFold, Start: t0, Dur: rec.Now() - t0,
					Peer: int32(h), Field: f.ID})
			}
		} else {
			// Out of turn: pay decompression now, park the raw wire bytes in
			// their pooled buffer, and decode-and-fold in one pass later.
			body, pooled, derr := maybeDecompress(payload)
			if derr != nil {
				comm.PutBuf(payload)
				releaseStages(stages)
				g.dumpInvariant(h, derr)
				return fmt.Errorf("gluon: reduce %s from host %d: %w", f.Name, h, derr)
			}
			if pooled {
				comm.PutBuf(payload)
			}
			stages[h] = body
			if tr {
				rec.Emit(trace.Event{Phase: trace.PhaseFold, Start: t0, Dur: rec.Now() - t0,
					Peer: int32(h), Field: f.ID, Detail: "stage"})
			}
		}
		// Whatever is now unblocked folds while later messages are in flight.
		for applyIdx < len(recvPeers) && stages[recvPeers[applyIdx]] != nil {
			hp := recvPeers[applyIdx]
			body := stages[hp]
			stages[hp] = nil
			if tr {
				t0 = rec.Now()
			}
			derr := decodeBody(g, body, recv.lists[hp], apply)
			comm.PutBuf(body)
			if derr != nil {
				releaseStages(stages)
				g.dumpInvariant(hp, derr)
				return fmt.Errorf("gluon: reduce %s from host %d: %w", f.Name, hp, derr)
			}
			applyIdx++
			if tr {
				rec.Emit(trace.Event{Phase: trace.PhaseFold, Start: t0, Dur: rec.Now() - t0,
					Peer: int32(hp), Field: f.ID, Detail: "unstage"})
			}
		}
	}
	err := <-sendErr
	putPeerScratch(ps) // not pooled on the error returns above: senders may still hold the lists
	return err
}

// SyncBroadcast runs only the broadcast pattern for f.
func SyncBroadcast[V Value](g *Gluon, f Field[V], updated *bitset.Bitset) error {
	return syncBroadcast(g, f, updated, g.Opt.StructuralInvariants)
}

// syncBroadcast is SyncBroadcast with the structural-invariant choice made
// explicit, so BroadcastAll can run unconstrained without mutating shared
// options.
func syncBroadcast[V Value](g *Gluon, f Field[V], updated *bitset.Bitset, structural bool) error {
	g.syncBegin()
	rec := g.rec
	tr := rec.Enabled()
	var syncT0 int64
	if tr {
		syncT0 = rec.Now()
	}
	defer func() {
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseSync, Start: syncT0, Dur: rec.Now() - syncT0,
				Field: f.ID, Peer: -1, Detail: f.Name})
		}
		g.syncEnd()
	}()

	send, recv := g.peersForBroadcast(f.Read, structural)
	tag := g.broadcastTag(f.ID)
	me := g.HostID()
	gatherBcast := gatherFor[V](f.Broadcast)

	ps := getPeerScratch()
	sendPeers, recvPeers := ps.peerLists(g.NumHosts(), me, send, recv)

	// Master orders for different peers overlap, but broadcast encoding
	// only reads them, so the worker fan-out is safe.
	sendErr := ps.errChan()
	g.sendWG.Add(1)
	go func() {
		defer g.sendWG.Done()
		sendErr <- par.RangeWorkers(len(sendPeers), g.Opt.SyncWorkers, func(w, lo, hi int) error {
			defer trace.LabelPhase(trace.PhaseEncode)()
			sc := getEncodeScratch()
			defer putEncodeScratch(sc)
			var st Stats
			defer g.foldStats(&st)
			lane := int32(1 + w)
			for _, h := range sendPeers[lo:hi] {
				order := send.lists[h]
				var t0 int64
				var st0 Stats
				if tr {
					t0, st0 = rec.Now(), st
				}
				payload, _ := encodeMsg(g, order, send.masks[h], updated, gatherBcast, sc, &st)
				hdr, payload := g.maybeCompress(f.ID, payload, sc, &st)
				if tr {
					rec.Emit(trace.Event{Phase: trace.PhaseEncode, Start: t0, Dur: rec.Now() - t0,
						Peer: int32(h), Field: f.ID, Lane: lane, Mode: modeDelta(&st, &st0),
						Value: st.ValueBytes - st0.ValueBytes, Meta: st.MetadataBytes - st0.MetadataBytes,
						GID:  st.GIDBytes - st0.GIDBytes,
						Comp: compDelta(&st, &st0), Saved: st.CompressionSaved - st0.CompressionSaved})
					t0 = rec.Now()
				}
				if err := sendMsg(g, h, tag, hdr, payload); err != nil {
					return fmt.Errorf("gluon: broadcast %s to host %d: %w", f.Name, h, err)
				}
				if tr {
					rec.Emit(trace.Event{Phase: trace.PhaseSend, Start: t0, Dur: rec.Now() - t0,
						Peer: int32(h), Field: f.ID, Lane: lane})
				}
			}
			return nil
		})
	}()

	defer trace.LabelPhase(trace.PhaseApply)()
	for len(recvPeers) > 0 {
		var t0 int64
		if tr {
			t0 = rec.Now()
		}
		rec.SetLivePhase(trace.PhaseRecvWait)
		h, payload, err := g.T.RecvAny(tag, recvPeers)
		rec.SetLivePhase(trace.PhaseApply)
		if err != nil {
			return fmt.Errorf("gluon: broadcast %s from host %d: %w", f.Name, h, err)
		}
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseRecvWait, Start: t0, Dur: rec.Now() - t0,
				Peer: int32(h), Field: f.ID, Value: uint64(len(payload))})
			t0 = rec.Now()
		}
		recvPeers = removePeer(recvPeers, h)
		err = decodeMsg(g, payload, recv.lists[h], func(lid uint32, v V) {
			f.Broadcast.Set(lid, v)
			// Delivery activates the mirror even when the value is
			// unchanged: the mirror that originated this round's best value
			// has the value already, but its outgoing edges have not been
			// processed with it yet (matters for unconstrained vertex cuts,
			// where a mirror can have both incoming and outgoing edges).
			if updated != nil {
				updated.Set(lid)
			}
		})
		comm.PutBuf(payload)
		if err != nil {
			g.dumpInvariant(h, err)
			return fmt.Errorf("gluon: broadcast %s from host %d: %w", f.Name, h, err)
		}
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseApply, Start: t0, Dur: rec.Now() - t0,
				Peer: int32(h), Field: f.ID})
		}
	}
	err := <-sendErr
	putPeerScratch(ps)
	return err
}

// releaseStages returns parked out-of-order receive buffers to the pool.
// The receive loop's error paths deliberately do not pool the scratch
// itself (the send goroutine may still hold its lists), but the staged
// wire bytes are owned solely by the loop and would otherwise leak.
func releaseStages(stages [][]byte) {
	for i, b := range stages {
		if b != nil {
			comm.PutBuf(b)
			stages[i] = nil
		}
	}
}

// peerLists fills the scratch with the peers this sync sends to and
// receives from, skipping self and empty orders.
func (ps *peerScratch) peerLists(hosts, me int, send, recv orderSet) (sendPeers, recvPeers []int) {
	sendPeers, recvPeers = ps.send[:0], ps.recv[:0]
	for h := 0; h < hosts; h++ {
		if h == me {
			continue
		}
		if len(send.lists[h]) > 0 {
			sendPeers = append(sendPeers, h)
		}
		if len(recv.lists[h]) > 0 {
			recvPeers = append(recvPeers, h)
		}
	}
	ps.send, ps.recv = sendPeers, recvPeers
	return sendPeers, recvPeers
}

// removePeer deletes h from peers in place (order is irrelevant: RecvAny
// matches the set, not a sequence).
func removePeer(peers []int, h int) []int {
	for i, p := range peers {
		if p == h {
			peers[i] = peers[len(peers)-1]
			return peers[:len(peers)-1]
		}
	}
	return peers
}

// BroadcastAll pushes masters' canonical values to every mirror regardless
// of structural pattern or update tracking: a full reconciliation, used to
// finalize results before output or verification.
func BroadcastAll[V Value](g *Gluon, f Field[V]) error {
	full := Field[V]{ID: f.ID, Name: f.Name, Write: Anywhere, Read: Anywhere, Broadcast: f.Broadcast}
	return syncBroadcast(g, full, nil, false)
}

// encodeMsg builds one field-sync message for the given memoized order,
// selecting the cheapest of the §4.2 encodings (or (GID, value) pairs when
// temporal invariance is off). Values are obtained through gather — one
// bulk call per message, matching the GPU plugin's staged transfers. The
// payload comes from the comm buffer pool and is released per the
// Transport contract once sent; index and value staging live in sc, and
// stats are accumulated into st for a race-free fold after the worker
// joins. mask, when non-nil, must be the OrderMask of order; it replaces
// the per-lid updated probes with word-level intersection.
//
// It returns the payload and the slice of local IDs whose values were
// shipped; sent aliases either sc or order and is only valid until the
// next encode on the same scratch.
func encodeMsg[V Value](g *Gluon, order []uint32, mask *bitset.OrderMask, updated *bitset.Bitset, gather func(lids []uint32, dst []V) []V, sc *encodeScratch, st *Stats) (payload []byte, sent []uint32) {
	vs := valSize[V]()
	n := len(order)

	if !g.Opt.TemporalInvariance {
		// Pre-Gluon wire format: (global-ID, value) pairs for every updated
		// proxy. No memoized ordering is assumed by the receiver.
		sent = sc.sent[:0]
		switch {
		case updated == nil:
			sent = append(sent, order...)
		case mask != nil:
			sc.positions, sent = mask.IntersectAppend(updated, sc.positions[:0], sent)
		default:
			for _, lid := range order {
				if updated.Test(lid) {
					sent = append(sent, lid)
				}
			}
		}
		sc.sent = sent
		vals := gather(sent, scratchVals[V](sc, len(sent)))
		payload = comm.GetBuf(5 + len(sent)*(8+vs))
		payload[0] = modeGIDs
		binary.LittleEndian.PutUint32(payload[1:], uint32(len(sent)))
		off := 5
		for i, lid := range sent {
			binary.LittleEndian.PutUint64(payload[off:], g.Part.GID(lid))
			putVal(payload[off+8:], vals[i])
			off += 8 + vs
		}
		st.MessagesSent++
		st.ModeCounts[modeGIDs]++
		st.MetadataBytes += 5
		st.GIDBytes += uint64(len(sent)) * 8
		st.ValueBytes += uint64(len(sent)) * uint64(vs)
		return payload, sent
	}

	// Positions (into the memoized order) carrying an update this round.
	positions := sc.positions[:0]
	switch {
	case updated == nil:
		for i := 0; i < n; i++ {
			positions = append(positions, uint32(i))
		}
		sent = order
	case mask != nil:
		positions, sent = mask.IntersectAppend(updated, positions, sc.sent[:0])
		sc.sent = sent
	default:
		sent = sc.sent[:0]
		for i, lid := range order {
			if updated.Test(lid) {
				positions = append(positions, uint32(i))
				sent = append(sent, lid)
			}
		}
		sc.sent = sent
	}
	sc.positions = positions
	k := len(positions)

	// Size each §4.2 encoding and pick the smallest.
	if k == 0 {
		st.MessagesSent++
		st.ModeCounts[modeEmpty]++
		st.MetadataBytes++
		payload = comm.GetBuf(1)
		payload[0] = modeEmpty
		return payload, nil
	}
	bvWords := (n + 63) / 64
	denseSize := 1 + n*vs
	bitvecSize := 1 + 4 + bvWords*8 + k*vs
	idxSize := 1 + 4 + k*4 + k*vs
	// A forced encoding disqualifies the others (ablation mode).
	switch g.Opt.ForceEncoding {
	case EncodingDense:
		bitvecSize, idxSize = 1<<30, 1<<30
	case EncodingBitvec:
		denseSize, idxSize = 1<<30, 1<<30
	case EncodingIndices:
		denseSize, bitvecSize = 1<<30, 1<<30
	}

	switch {
	case denseSize <= bitvecSize && denseSize <= idxSize:
		// Dense messages ship every proxy in the order.
		sent = order
		vals := gather(order, scratchVals[V](sc, n))
		payload = comm.GetBuf(denseSize)
		payload[0] = modeDense
		off := 1
		for _, v := range vals {
			putVal(payload[off:], v)
			off += vs
		}
		st.ModeCounts[modeDense]++
		st.MetadataBytes++
		st.ValueBytes += uint64(n) * uint64(vs)
	case bitvecSize <= idxSize:
		vals := gather(sent, scratchVals[V](sc, k))
		payload = comm.GetBuf(bitvecSize)
		payload[0] = modeBitvec
		binary.LittleEndian.PutUint32(payload[1:], uint32(k))
		// Write the bit-vector straight into the payload: bit p of the
		// little-endian word stream is byte p/8, bit p%8.
		bv := payload[5 : 5+bvWords*8]
		for i := range bv {
			bv[i] = 0
		}
		for _, pos := range positions {
			bv[pos>>3] |= 1 << (pos & 7)
		}
		off := 5 + bvWords*8
		for _, v := range vals {
			putVal(payload[off:], v)
			off += vs
		}
		st.ModeCounts[modeBitvec]++
		st.MetadataBytes += uint64(5 + bvWords*8)
		st.ValueBytes += uint64(k) * uint64(vs)
	default:
		vals := gather(sent, scratchVals[V](sc, k))
		payload = comm.GetBuf(idxSize)
		payload[0] = modeIndices
		binary.LittleEndian.PutUint32(payload[1:], uint32(k))
		off := 5
		for _, pos := range positions {
			binary.LittleEndian.PutUint32(payload[off:], pos)
			off += 4
		}
		for _, v := range vals {
			putVal(payload[off:], v)
			off += vs
		}
		st.ModeCounts[modeIndices]++
		st.MetadataBytes += uint64(5 + k*4)
		st.ValueBytes += uint64(k) * uint64(vs)
	}
	st.MessagesSent++
	return payload, sent
}

// decodeMsg applies one received field-sync message: apply is called with
// the local ID (resolved through the memoized order, or through global-ID
// translation for modeGIDs messages) and the value. The input payload is
// not consumed — its owner releases it — but any decompression buffer
// decodeMsg creates is pooled internally.
func decodeMsg[V Value](g *Gluon, payload []byte, order []uint32, apply func(lid uint32, v V)) error {
	body, pooled, err := maybeDecompress(payload)
	if err != nil {
		return err
	}
	err = decodeBody(g, body, order, apply)
	if pooled {
		comm.PutBuf(body)
	}
	return err
}

func decodeBody[V Value](g *Gluon, payload []byte, order []uint32, apply func(lid uint32, v V)) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty payload")
	}
	vs := valSize[V]()
	mode := payload[0]
	body := payload[1:]
	switch mode {
	case modeEmpty:
		return nil
	case modeDense:
		if len(body) != len(order)*vs {
			return fmt.Errorf("dense message: %d bytes for %d proxies of size %d", len(body), len(order), vs)
		}
		off := 0
		for _, lid := range order {
			apply(lid, getVal[V](body[off:]))
			off += vs
		}
	case modeBitvec:
		if len(body) < 4 {
			return fmt.Errorf("short bitvec message")
		}
		k := binary.LittleEndian.Uint32(body)
		n := len(order)
		bvWords := (n + 63) / 64
		if len(body) != 4+bvWords*8+int(k)*vs {
			return fmt.Errorf("bitvec message: %d bytes, want %d", len(body), 4+bvWords*8+int(k)*vs)
		}
		valOff := 4 + bvWords*8
		applied := uint32(0)
		for wi := 0; wi < bvWords; wi++ {
			w := binary.LittleEndian.Uint64(body[4+wi*8:])
			base := wi * wordBits
			for w != 0 {
				pos := base + bits.TrailingZeros64(w)
				if applied >= k {
					return fmt.Errorf("bitvec message: more set bits than count %d", k)
				}
				if pos >= n {
					return fmt.Errorf("bitvec message: position %d out of %d", pos, n)
				}
				apply(order[pos], getVal[V](body[valOff:]))
				valOff += vs
				applied++
				w &= w - 1
			}
		}
		if applied != k {
			return fmt.Errorf("bitvec message: %d set bits, count says %d", applied, k)
		}
	case modeIndices:
		if len(body) < 4 {
			return fmt.Errorf("short indices message")
		}
		k := int(binary.LittleEndian.Uint32(body))
		if len(body) != 4+k*4+k*vs {
			return fmt.Errorf("indices message: %d bytes, want %d", len(body), 4+k*4+k*vs)
		}
		idxOff, valOff := 4, 4+k*4
		for i := 0; i < k; i++ {
			pos := binary.LittleEndian.Uint32(body[idxOff:])
			if int(pos) >= len(order) {
				return fmt.Errorf("indices message: position %d out of %d", pos, len(order))
			}
			apply(order[pos], getVal[V](body[valOff:]))
			idxOff += 4
			valOff += vs
		}
	case modeGIDs:
		if len(body) < 4 {
			return fmt.Errorf("short gid-pairs message")
		}
		k := int(binary.LittleEndian.Uint32(body))
		if len(body) != 4+k*(8+vs) {
			return fmt.Errorf("gid-pairs message: %d bytes, want %d", len(body), 4+k*(8+vs))
		}
		off := 4
		for i := 0; i < k; i++ {
			gid := binary.LittleEndian.Uint64(body[off:])
			v := getVal[V](body[off+8:])
			off += 8 + vs
			lid, ok := g.Part.LID(gid)
			if !ok {
				return fmt.Errorf("gid-pairs message: gid %d has no local proxy", gid)
			}
			apply(lid, v)
		}
	default:
		return fmt.Errorf("unknown message mode %d", mode)
	}
	return nil
}

// wordBits mirrors the bitset word width for inline bit-vector decoding.
const wordBits = 64
