package gluon_test

// BenchmarkSyncHotPath measures the full field-sync hot path end to end:
// per-peer encode, transport, any-order receive, decode, apply — the loop
// the engines drive every round. It runs one Sync per iteration across all
// hosts of an in-process hub, per encoding mode and host count, with
// b.ReportAllocs() so the steady-state allocation behaviour of the sync
// pipeline is tracked release to release (see BENCH_sync.json).

import (
	"fmt"
	"sync"
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// hotPathCluster is one benchmark cluster: per-host substrates, labels, and
// update bitsets over a CVC partitioning of a deterministic rmat graph.
type hotPathCluster struct {
	parts  []*partition.Partition
	gs     []*gluon.Gluon
	labels [][]uint32
	upds   []*bitset.Bitset
	close  func()
}

func newHotPathCluster(tb testing.TB, hosts int, opt gluon.Options) *hotPathCluster {
	tb.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 12, EdgeFactor: 8, Seed: 7}
	edges, err := generate.Edges(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		tb.Fatal(err)
	}
	hub := comm.NewHub(hosts)
	c := &hotPathCluster{parts: parts, close: hub.Close}
	c.gs = make([]*gluon.Gluon, hosts)
	c.labels = make([][]uint32, hosts)
	c.upds = make([]*bitset.Bitset, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			g, err := gluon.New(parts[h], hub.Endpoint(h), opt)
			if err != nil {
				panic(err)
			}
			c.gs[h] = g
		}(h)
	}
	wg.Wait()
	for h := 0; h < hosts; h++ {
		c.labels[h] = make([]uint32, parts[h].NumProxies())
		for i := range c.labels[h] {
			c.labels[h][i] = fields.InfinityU32
		}
		c.upds[h] = bitset.New(parts[h].NumProxies())
	}
	return c
}

// markUpdates sets a deterministic subset of each host's proxies updated
// (every stride-th proxy) and gives them fresh label values, emulating one
// round's frontier.
func (c *hotPathCluster) markUpdates(round int, stride uint32) {
	for h := range c.gs {
		c.upds[h].Reset()
		n := c.parts[h].NumProxies()
		for i := uint32(0); i < n; i += stride {
			c.upds[h].SetUnsync(i)
			c.labels[h][i] = uint32(round)
		}
	}
}

// syncAll runs one collective Sync on every host concurrently.
func (c *hotPathCluster) syncAll(tb testing.TB, fieldID uint32) {
	var wg sync.WaitGroup
	for h := range c.gs {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			f := gluon.Field[uint32]{
				ID:        fieldID,
				Name:      "hotpath",
				Write:     gluon.AtDestination,
				Read:      gluon.AtSource,
				Reduce:    fields.MinU32{Labels: c.labels[h]},
				Broadcast: fields.SetU32{Labels: c.labels[h]},
			}
			if err := gluon.Sync(c.gs[h], f, c.upds[h]); err != nil {
				tb.Errorf("host %d: %v", h, err)
			}
		}(h)
	}
	wg.Wait()
}

func BenchmarkSyncHotPath(b *testing.B) {
	encodings := []struct {
		name string
		enc  gluon.Encoding
	}{
		{"auto", gluon.EncodingAuto},
		{"dense", gluon.EncodingDense},
		{"bitvec", gluon.EncodingBitvec},
		{"indices", gluon.EncodingIndices},
	}
	for _, hosts := range []int{2, 8} {
		for _, e := range encodings {
			b.Run(fmt.Sprintf("hosts=%d/%s", hosts, e.name), func(b *testing.B) {
				opt := gluon.Opt()
				opt.ForceEncoding = e.enc
				c := newHotPathCluster(b, hosts, opt)
				defer c.close()
				// Warm one round so memoization and pools are primed.
				c.markUpdates(0, 5)
				c.syncAll(b, 90)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.markUpdates(i+1, 5)
					c.syncAll(b, 90)
				}
			})
		}
	}
}

// BenchmarkSyncHotPathTrace measures the tracing tax on the same hot path
// in its three states: off (no recorder attached — the default, must match
// BenchmarkSyncHotPath), disabled (recorders attached but the trace gated
// off — the cost of the atomic enabled check), and on (full span emission).
// The first two back the ≤5% overhead budget in DESIGN.md §4.3; `make
// check` enforces it via gluon-bench -sync-guard.
func BenchmarkSyncHotPathTrace(b *testing.B) {
	for _, hosts := range []int{2, 8} {
		for _, mode := range []string{"off", "disabled", "on"} {
			b.Run(fmt.Sprintf("hosts=%d/%s", hosts, mode), func(b *testing.B) {
				c := newHotPathCluster(b, hosts, gluon.Opt())
				defer c.close()
				if mode != "off" {
					tr := trace.New(trace.Config{Label: "bench"})
					tr.SetEnabled(mode == "on")
					for h, g := range c.gs {
						g.SetRecorder(tr.Recorder(h))
					}
				}
				c.markUpdates(0, 5)
				c.syncAll(b, 92)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.markUpdates(i+1, 5)
					c.syncAll(b, 92)
				}
			})
		}
	}
}

// BenchmarkSyncHotPathUnopt tracks the pre-Gluon (GID, value) wire format
// path, which the paper's UNOPT configuration exercises.
func BenchmarkSyncHotPathUnopt(b *testing.B) {
	for _, hosts := range []int{2, 8} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			c := newHotPathCluster(b, hosts, gluon.Unopt())
			defer c.close()
			c.markUpdates(0, 5)
			c.syncAll(b, 91)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.markUpdates(i+1, 5)
				c.syncAll(b, 91)
			}
		})
	}
}
