package gluon

import (
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

// mustSingleGluon builds a 1-host substrate for codec benchmarks.
func mustSingleGluon(tb testing.TB) *Gluon {
	tb.Helper()
	const n = 1 << 16
	edges := make([]graph.Edge, 0, n)
	for u := uint64(0); u+1 < n; u += 2 {
		edges = append(edges, graph.Edge{Src: u, Dst: u + 1})
	}
	pol, err := partition.NewPolicy(partition.OEC, n, 1, partition.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := partition.PartitionAll(n, edges, pol)
	if err != nil {
		tb.Fatal(err)
	}
	hub := comm.NewHub(1)
	tb.Cleanup(hub.Close)
	g, err := New(parts[0], hub.Endpoint(0), Opt())
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func benchGluon(b *testing.B) (*Gluon, []uint32, *bitset.Bitset, []uint32) {
	b.Helper()
	g := mustSingleGluon(b)
	n := g.Part.NumProxies()
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	vals := make([]uint32, n)
	upd := bitset.New(n)
	for i := uint32(0); i < n; i += 7 {
		upd.SetUnsync(i)
	}
	return g, order, upd, vals
}

func BenchmarkEncodeSparse(b *testing.B) {
	g, order, upd, vals := benchGluon(b)
	extract := func(lids []uint32, dst []uint32) []uint32 {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = vals[lid]
		}
		return dst
	}
	mask := bitset.NewOrderMask(order)
	sc := &encodeScratch{}
	var st Stats
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload, _ := encodeMsg(g, order, mask, upd, extract, sc, &st)
		b.SetBytes(int64(len(payload)))
		comm.PutBuf(payload)
	}
}

func BenchmarkEncodeDense(b *testing.B) {
	g, order, _, vals := benchGluon(b)
	extract := func(lids []uint32, dst []uint32) []uint32 {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = vals[lid]
		}
		return dst
	}
	mask := bitset.NewOrderMask(order)
	sc := &encodeScratch{}
	var st Stats
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload, _ := encodeMsg(g, order, mask, nil, extract, sc, &st)
		b.SetBytes(int64(len(payload)))
		comm.PutBuf(payload)
	}
}

func BenchmarkDecode(b *testing.B) {
	g, order, upd, vals := benchGluon(b)
	extract := func(lids []uint32, dst []uint32) []uint32 {
		dst = dst[:len(lids)]
		for i, lid := range lids {
			dst[i] = vals[lid]
		}
		return dst
	}
	var st Stats
	payload, _ := encodeMsg(g, order, bitset.NewOrderMask(order), upd, extract, &encodeScratch{}, &st)
	b.ResetTimer()
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := decodeMsg(g, payload, order, func(lid uint32, v uint32) {}); err != nil {
			b.Fatal(err)
		}
	}
}
