package gluon

// Optional message compression (§4.2: "Other compression or encoding
// techniques could be used ... as long as they are deterministic"). A
// compressed message wraps a normal encoded payload:
//
//	[modeCompressed][uncompressed length uint32][deflate stream]
//
// Compression runs after encoding-mode selection, so the adaptive
// dense/bitvec/indices choice still minimizes the pre-compression size.
//
// The wire path is zero-copy: the DEFLATE stream is produced directly in
// the pooled buffer that goes to the transport, and the 5-byte wrapper
// header travels as the separate header slice of Transport.SendVec (the
// caller-owned half of the vectored-send contract), so neither the raw nor
// the compressed payload is ever copied to glue the wrapper on.

import (
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"gluon/internal/comm"
)

// modeCompressed wraps any other mode's payload in a deflate stream.
const modeCompressed byte = 5

// compHdrLen is the compressed-message wrapper header:
// [modeCompressed][uncompressed length uint32].
const compHdrLen = 5

const defaultCompressThreshold = 1024

// CompressPolicy decides, per message, whether the DEFLATE wrapper should
// run, replacing the fixed CompressThreshold comparison with a measured
// choice. Implementations must be safe for concurrent use: parallel encode
// workers consult one shared policy, and several fields interleave.
//
// The autotune package provides the adaptive implementation
// (autotune.NewCompressTuner), which probes each field, tracks the observed
// compression ratio and encode-side cost, and skips fields that stopped
// paying for themselves — re-probing periodically so a field whose value
// distribution shifts (frontier collapse, convergence) is re-evaluated.
type CompressPolicy interface {
	// ShouldCompress reports whether a size-byte encoded payload of field
	// fieldID should attempt the DEFLATE wrapper.
	ShouldCompress(fieldID uint32, size int) bool
	// Observe feeds back the outcome of one send: rawBytes is the encoded
	// payload size, wireBytes the bytes actually shipped (equal to rawBytes
	// when the message went uncompressed), compressNs the CPU time spent
	// compressing (0 when the attempt was skipped), and shipped whether the
	// compressed form went to the wire.
	Observe(fieldID uint32, rawBytes, wireBytes int, compressNs int64, shipped bool)
}

// maybeCompress wraps payload if the options ask for it and it helps. On
// success the returned hdr is the 5-byte compressed wrapper (stored in sc,
// caller-owned per the SendVec contract), body is a fresh pooled buffer
// holding only the deflate stream, and the input payload has been released;
// the caller ships them with Transport.SendVec(to, tag, hdr, body). When
// compression is off, skipped, or unhelpful, hdr is nil and body is the
// untouched input payload for a plain Send. Stats are adjusted on st by the
// bytes saved (attributed to metadata first, since values and metadata are
// interleaved post-compression); skipped candidates count in
// st.CompressSkipped.
func (g *Gluon) maybeCompress(fieldID uint32, payload []byte, sc *encodeScratch, st *Stats) (hdr, body []byte) {
	if !g.Opt.Compress || !g.Opt.TemporalInvariance {
		return nil, payload
	}
	pol := g.Opt.CompressPolicy
	raw := len(payload)
	if pol != nil {
		if !pol.ShouldCompress(fieldID, raw) {
			st.CompressSkipped++
			pol.Observe(fieldID, raw, raw, 0, false)
			return nil, payload
		}
	} else {
		threshold := g.Opt.CompressThreshold
		if threshold <= 0 {
			threshold = defaultCompressThreshold
		}
		if raw < threshold {
			st.CompressSkipped++
			return nil, payload
		}
	}

	var t0 time.Time
	if pol != nil {
		t0 = time.Now()
	}
	c := compressorPool.Get().(*compressor)
	defer compressorPool.Put(c)
	// The deflate stream must beat raw by more than the wrapper header to be
	// worth shipping; bounding the output buffer at that margin makes an
	// incompressible message fail the Write instead of finishing a useless
	// stream.
	bound := raw - compHdrLen - 1
	if bound <= 0 {
		st.CompressSkipped++
		if pol != nil {
			pol.Observe(fieldID, raw, raw, time.Since(t0).Nanoseconds(), false)
		}
		return nil, payload
	}
	out := comm.GetBuf(bound)
	c.out = poolBuf{buf: out}
	if c.w == nil {
		// flate.BestSpeed: messages are latency-sensitive; level 1 already
		// captures most of the redundancy in packed label arrays.
		w, err := flate.NewWriter(&c.out, flate.BestSpeed)
		if err != nil {
			comm.PutBuf(out)
			return nil, payload // cannot happen with a valid level; fail open
		}
		c.w = w
	} else {
		c.w.Reset(&c.out)
	}
	_, err := c.w.Write(payload)
	if err == nil {
		err = c.w.Close()
	}
	if err != nil {
		// Incompressible (bound overflow) or a writer fault: ship raw.
		comm.PutBuf(out)
		st.CompressSkipped++
		if pol != nil {
			pol.Observe(fieldID, raw, raw, time.Since(t0).Nanoseconds(), false)
		}
		return nil, payload
	}
	n := c.out.n
	wire := compHdrLen + n
	saved := uint64(raw - wire)
	st.CompressedMessages++
	st.CompressionSaved += saved
	// The wire carries fewer bytes than the encoder accounted; correct the
	// split by shrinking metadata first, then values.
	if st.MetadataBytes >= saved {
		st.MetadataBytes -= saved
	} else {
		rem := saved - st.MetadataBytes
		st.MetadataBytes = 0
		if st.ValueBytes >= rem {
			st.ValueBytes -= rem
		} else {
			st.ValueBytes = 0
		}
	}
	sc.compHdr[0] = modeCompressed
	binary.LittleEndian.PutUint32(sc.compHdr[1:], uint32(raw))
	comm.PutBuf(payload)
	if pol != nil {
		pol.Observe(fieldID, raw, wire, time.Since(t0).Nanoseconds(), true)
	}
	return sc.compHdr[:], out[:n]
}

// maybeDecompress unwraps a compressed payload; other payloads pass
// through. pooled reports whether out is a fresh pool buffer the caller
// must release with comm.PutBuf (the input payload is never consumed).
func maybeDecompress(payload []byte) (out []byte, pooled bool, err error) {
	if len(payload) == 0 || payload[0] != modeCompressed {
		return payload, false, nil
	}
	if len(payload) < compHdrLen {
		return nil, false, fmt.Errorf("short compressed message")
	}
	want := binary.LittleEndian.Uint32(payload[1:])
	if want > 1<<30 {
		return nil, false, fmt.Errorf("implausible decompressed size %d", want)
	}
	inf := inflatorPool.Get().(*inflator)
	defer inflatorPool.Put(inf)
	inf.br.Reset(payload[compHdrLen:])
	if inf.fr == nil {
		inf.fr = flate.NewReader(&inf.br)
	} else if err := inf.fr.(flate.Resetter).Reset(&inf.br, nil); err != nil {
		return nil, false, fmt.Errorf("decompress: %w", err)
	}
	out = comm.GetBuf(int(want))
	if _, err := io.ReadFull(inf.fr, out); err != nil {
		comm.PutBuf(out)
		return nil, false, fmt.Errorf("decompress: %w", err)
	}
	return out, true, nil
}
