package gluon

// Optional message compression (§4.2: "Other compression or encoding
// techniques could be used ... as long as they are deterministic"). A
// compressed message wraps a normal encoded payload:
//
//	[modeCompressed][uncompressed length uint32][deflate stream]
//
// Compression runs after encoding-mode selection, so the adaptive
// dense/bitvec/indices choice still minimizes the pre-compression size.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// modeCompressed wraps any other mode's payload in a deflate stream.
const modeCompressed byte = 5

const defaultCompressThreshold = 1024

// maybeCompress wraps payload if the options ask for it and it helps.
// Stats are adjusted by the bytes saved (attributed to metadata, since
// values and metadata are interleaved post-compression).
func (g *Gluon) maybeCompress(payload []byte) []byte {
	if !g.Opt.Compress || !g.Opt.TemporalInvariance {
		return payload
	}
	threshold := g.Opt.CompressThreshold
	if threshold <= 0 {
		threshold = defaultCompressThreshold
	}
	if len(payload) < threshold {
		return payload
	}
	var buf bytes.Buffer
	buf.WriteByte(modeCompressed)
	var lenHdr [4]byte
	binary.LittleEndian.PutUint32(lenHdr[:], uint32(len(payload)))
	buf.Write(lenHdr[:])
	// flate.BestSpeed: messages are latency-sensitive; level 1 already
	// captures most of the redundancy in packed label arrays.
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return payload // cannot happen with a valid level; fail open
	}
	if _, err := w.Write(payload); err != nil {
		return payload
	}
	if err := w.Close(); err != nil {
		return payload
	}
	if buf.Len() >= len(payload) {
		return payload // incompressible; send as-is
	}
	saved := uint64(len(payload) - buf.Len())
	g.stats.CompressedMessages++
	g.stats.CompressionSaved += saved
	// The wire carries fewer bytes than the encoder accounted; correct the
	// split by shrinking metadata first, then values.
	if g.stats.MetadataBytes >= saved {
		g.stats.MetadataBytes -= saved
	} else {
		rem := saved - g.stats.MetadataBytes
		g.stats.MetadataBytes = 0
		if g.stats.ValueBytes >= rem {
			g.stats.ValueBytes -= rem
		} else {
			g.stats.ValueBytes = 0
		}
	}
	return buf.Bytes()
}

// maybeDecompress unwraps a compressed payload; other payloads pass
// through.
func maybeDecompress(payload []byte) ([]byte, error) {
	if len(payload) == 0 || payload[0] != modeCompressed {
		return payload, nil
	}
	if len(payload) < 5 {
		return nil, fmt.Errorf("short compressed message")
	}
	want := binary.LittleEndian.Uint32(payload[1:])
	if want > 1<<30 {
		return nil, fmt.Errorf("implausible decompressed size %d", want)
	}
	r := flate.NewReader(bytes.NewReader(payload[5:]))
	defer r.Close()
	out := make([]byte, want)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("decompress: %w", err)
	}
	return out, nil
}
