package gluon

// Optional message compression (§4.2: "Other compression or encoding
// techniques could be used ... as long as they are deterministic"). A
// compressed message wraps a normal encoded payload:
//
//	[modeCompressed][uncompressed length uint32][deflate stream]
//
// Compression runs after encoding-mode selection, so the adaptive
// dense/bitvec/indices choice still minimizes the pre-compression size.

import (
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"gluon/internal/comm"
)

// modeCompressed wraps any other mode's payload in a deflate stream.
const modeCompressed byte = 5

const defaultCompressThreshold = 1024

// maybeCompress wraps payload if the options ask for it and it helps. When
// it does, the input payload is released back to the buffer pool and the
// returned payload is a fresh pooled buffer; otherwise the input passes
// through untouched. Stats are adjusted on st by the bytes saved
// (attributed to metadata, since values and metadata are interleaved
// post-compression).
func (g *Gluon) maybeCompress(payload []byte, st *Stats) []byte {
	if !g.Opt.Compress || !g.Opt.TemporalInvariance {
		return payload
	}
	threshold := g.Opt.CompressThreshold
	if threshold <= 0 {
		threshold = defaultCompressThreshold
	}
	if len(payload) < threshold {
		return payload
	}
	c := compressorPool.Get().(*compressor)
	defer compressorPool.Put(c)
	c.buf.Reset()
	c.buf.WriteByte(modeCompressed)
	var lenHdr [4]byte
	binary.LittleEndian.PutUint32(lenHdr[:], uint32(len(payload)))
	c.buf.Write(lenHdr[:])
	if c.w == nil {
		// flate.BestSpeed: messages are latency-sensitive; level 1 already
		// captures most of the redundancy in packed label arrays.
		w, err := flate.NewWriter(&c.buf, flate.BestSpeed)
		if err != nil {
			return payload // cannot happen with a valid level; fail open
		}
		c.w = w
	} else {
		c.w.Reset(&c.buf)
	}
	if _, err := c.w.Write(payload); err != nil {
		return payload
	}
	if err := c.w.Close(); err != nil {
		return payload
	}
	if c.buf.Len() >= len(payload) {
		return payload // incompressible; send as-is
	}
	saved := uint64(len(payload) - c.buf.Len())
	st.CompressedMessages++
	st.CompressionSaved += saved
	// The wire carries fewer bytes than the encoder accounted; correct the
	// split by shrinking metadata first, then values.
	if st.MetadataBytes >= saved {
		st.MetadataBytes -= saved
	} else {
		rem := saved - st.MetadataBytes
		st.MetadataBytes = 0
		if st.ValueBytes >= rem {
			st.ValueBytes -= rem
		} else {
			st.ValueBytes = 0
		}
	}
	out := comm.GetBuf(c.buf.Len())
	copy(out, c.buf.Bytes())
	comm.PutBuf(payload)
	return out
}

// maybeDecompress unwraps a compressed payload; other payloads pass
// through. pooled reports whether out is a fresh pool buffer the caller
// must release with comm.PutBuf (the input payload is never consumed).
func maybeDecompress(payload []byte) (out []byte, pooled bool, err error) {
	if len(payload) == 0 || payload[0] != modeCompressed {
		return payload, false, nil
	}
	if len(payload) < 5 {
		return nil, false, fmt.Errorf("short compressed message")
	}
	want := binary.LittleEndian.Uint32(payload[1:])
	if want > 1<<30 {
		return nil, false, fmt.Errorf("implausible decompressed size %d", want)
	}
	inf := inflatorPool.Get().(*inflator)
	defer inflatorPool.Put(inf)
	inf.br.Reset(payload[5:])
	if inf.fr == nil {
		inf.fr = flate.NewReader(&inf.br)
	} else if err := inf.fr.(flate.Resetter).Reset(&inf.br, nil); err != nil {
		return nil, false, fmt.Errorf("decompress: %w", err)
	}
	out = comm.GetBuf(int(want))
	if _, err := io.ReadFull(inf.fr, out); err != nil {
		comm.PutBuf(out)
		return nil, false, fmt.Errorf("decompress: %w", err)
	}
	return out, true, nil
}
