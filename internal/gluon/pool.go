package gluon

// Scratch pools for the sync hot path. Steady-state syncs reuse, per
// worker: the position/sent index slices and gathered-value slice built
// during encoding, the DEFLATE compressor and its staging buffer, the
// DEFLATE reader used for decompression, and (via comm.GetBuf/PutBuf) every
// payload buffer. Pools are package-level because Gluon instances of many
// hosts share one process in the in-memory cluster.

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"sync"
)

// encodeScratch holds one encoder's reusable buffers. A worker checks one
// out for its whole chunk of peers; the slices grow to the largest message
// encoded and stay that size.
type encodeScratch struct {
	positions []uint32
	sent      []uint32
	// vals caches the gathered-value slice. It is typed any because the
	// value type is a per-call generic parameter; scratchVals re-types it
	// and replaces it when a differently-typed field syncs.
	vals any
	// compHdr is the 5-byte compressed-message header
	// ([modeCompressed][uncompressed length]) maybeCompress hands to
	// Transport.SendVec. It lives in the scratch — not the compressor, which
	// is pooled again before the send happens — because the header must stay
	// valid until SendVec consumes it.
	compHdr [compHdrLen]byte
}

var encodeScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}

func getEncodeScratch() *encodeScratch   { return encodeScratchPool.Get().(*encodeScratch) }
func putEncodeScratch(sc *encodeScratch) { encodeScratchPool.Put(sc) }

// scratchVals returns a length-n value slice backed by the scratch,
// allocating only when the cached slice is missing, too small, or of a
// different value type.
func scratchVals[V Value](sc *encodeScratch, n int) []V {
	if vs, ok := sc.vals.([]V); ok && cap(vs) >= n {
		return vs[:n]
	}
	c := n
	if c < 256 {
		c = 256
	}
	vs := make([]V, n, c)
	sc.vals = vs
	return vs
}

// peerScratch holds the per-sync peer work lists: the send and receive
// peer sets, the mutable remaining-peer set RecvAny consumes, and the
// per-host staging slots the reduce path parks early arrivals in. A staged
// entry is the raw (decompressed if needed) wire message of an out-of-order
// arrival, kept in its pooled buffer until its fold turn — no decoded
// (lids, values) materialization exists anywhere anymore.
type peerScratch struct {
	send, recv, rem []int
	stages          [][]byte
	errCh           chan error
}

var peerScratchPool = sync.Pool{New: func() any { return new(peerScratch) }}

func getPeerScratch() *peerScratch   { return peerScratchPool.Get().(*peerScratch) }
func putPeerScratch(ps *peerScratch) { peerScratchPool.Put(ps) }

// errChan returns the scratch's reusable one-slot error channel for the
// send-side goroutine join. It is empty whenever the scratch is pooled: the
// success path always drains it, and error paths leak the scratch instead
// of pooling it.
func (ps *peerScratch) errChan() chan error {
	if ps.errCh == nil {
		ps.errCh = make(chan error, 1)
	}
	return ps.errCh
}

// hostStages returns the per-host staging slot array, nil-cleared, sized to
// the host count.
func (ps *peerScratch) hostStages(hosts int) [][]byte {
	if cap(ps.stages) < hosts {
		ps.stages = make([][]byte, hosts)
	}
	ps.stages = ps.stages[:hosts]
	for i := range ps.stages {
		ps.stages[i] = nil
	}
	return ps.stages
}

// poolBuf is a bounded io.Writer over a caller-provided buffer: the DEFLATE
// writer streams straight into the pooled buffer that will go to the
// transport as the wire payload, so a compressed message is never copied
// between a staging area and the outgoing buffer. A write that would exceed
// the bound (len(buf)) fails with errIncompressible — the bound is the raw
// payload size, so overflow means compression is not paying for itself and
// the caller ships the raw payload instead.
type poolBuf struct {
	buf []byte // the future wire payload; len is the output bound
	n   int    // bytes written
}

var errIncompressible = errors.New("gluon: compressed output not smaller than input")

func (p *poolBuf) Write(q []byte) (int, error) {
	if p.n+len(q) > len(p.buf) {
		return 0, errIncompressible
	}
	copy(p.buf[p.n:], q)
	p.n += len(q)
	return len(q), nil
}

// compressor bundles a reusable DEFLATE writer with the bounded-output
// adapter it writes through.
type compressor struct {
	out poolBuf
	w   *flate.Writer
}

var compressorPool = sync.Pool{New: func() any { return new(compressor) }}

// inflator bundles a reusable DEFLATE reader with the bytes.Reader it
// draws from.
type inflator struct {
	br bytes.Reader
	fr io.ReadCloser
}

var inflatorPool = sync.Pool{New: func() any { return new(inflator) }}
