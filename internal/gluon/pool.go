package gluon

// Scratch pools for the sync hot path. Steady-state syncs reuse, per
// worker: the position/sent index slices and gathered-value slice built
// during encoding, the DEFLATE compressor and its staging buffer, the
// DEFLATE reader used for decompression, and (via comm.GetBuf/PutBuf) every
// payload buffer. Pools are package-level because Gluon instances of many
// hosts share one process in the in-memory cluster.

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// encodeScratch holds one encoder's reusable buffers. A worker checks one
// out for its whole chunk of peers; the slices grow to the largest message
// encoded and stay that size.
type encodeScratch struct {
	positions []uint32
	sent      []uint32
	// vals caches the gathered-value slice. It is typed any because the
	// value type is a per-call generic parameter; scratchVals re-types it
	// and replaces it when a differently-typed field syncs.
	vals any
}

var encodeScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}

func getEncodeScratch() *encodeScratch   { return encodeScratchPool.Get().(*encodeScratch) }
func putEncodeScratch(sc *encodeScratch) { encodeScratchPool.Put(sc) }

// scratchVals returns a length-n value slice backed by the scratch,
// allocating only when the cached slice is missing, too small, or of a
// different value type.
func scratchVals[V Value](sc *encodeScratch, n int) []V {
	if vs, ok := sc.vals.([]V); ok && cap(vs) >= n {
		return vs[:n]
	}
	c := n
	if c < 256 {
		c = 256
	}
	vs := make([]V, n, c)
	sc.vals = vs
	return vs
}

// peerScratch holds the per-sync peer work lists: the send and receive
// peer sets, the mutable remaining-peer set RecvAny consumes, and the
// per-host staging slots the reduce path parks early arrivals in.
type peerScratch struct {
	send, recv, rem []int
	stages          []*decodeStage
	errCh           chan error
}

var peerScratchPool = sync.Pool{New: func() any { return new(peerScratch) }}

func getPeerScratch() *peerScratch   { return peerScratchPool.Get().(*peerScratch) }
func putPeerScratch(ps *peerScratch) { peerScratchPool.Put(ps) }

// errChan returns the scratch's reusable one-slot error channel for the
// send-side goroutine join. It is empty whenever the scratch is pooled: the
// success path always drains it, and error paths leak the scratch instead
// of pooling it.
func (ps *peerScratch) errChan() chan error {
	if ps.errCh == nil {
		ps.errCh = make(chan error, 1)
	}
	return ps.errCh
}

// hostStages returns the per-host staging slot array, nil-cleared, sized to
// the host count.
func (ps *peerScratch) hostStages(hosts int) []*decodeStage {
	if cap(ps.stages) < hosts {
		ps.stages = make([]*decodeStage, hosts)
	}
	ps.stages = ps.stages[:hosts]
	for i := range ps.stages {
		ps.stages[i] = nil
	}
	return ps.stages
}

// decodeStage holds one decoded-but-unapplied reduce message: resolved
// lids in message order and their values. The reduce path decodes arrivals
// immediately but folds them into masters in ascending host order, so that
// order-sensitive reductions (floating-point sums) produce bit-identical
// results to a serial rank-order sync.
type decodeStage struct {
	lids []uint32
	vals any
}

var decodeStagePool = sync.Pool{New: func() any { return new(decodeStage) }}

func getDecodeStage() *decodeStage   { return decodeStagePool.Get().(*decodeStage) }
func putDecodeStage(st *decodeStage) { decodeStagePool.Put(st) }

// stageVals returns the stage's value slice emptied for appending,
// preserving a previously grown backing array of the same value type.
func stageVals[V Value](st *decodeStage) []V {
	if vs, ok := st.vals.([]V); ok {
		return vs[:0]
	}
	return nil
}

// compressor bundles a reusable DEFLATE writer with its staging buffer.
type compressor struct {
	buf bytes.Buffer
	w   *flate.Writer
}

var compressorPool = sync.Pool{New: func() any { return new(compressor) }}

// inflator bundles a reusable DEFLATE reader with the bytes.Reader it
// draws from.
type inflator struct {
	br bytes.Reader
	fr io.ReadCloser
}

var inflatorPool = sync.Pool{New: func() any { return new(inflator) }}
