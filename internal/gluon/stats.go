package gluon

import "time"

// Stats counts this host's substrate traffic, split the way the paper's
// Figure 10 reports it: value payload versus metadata (bit-vectors, index
// lists, global IDs), plus per-encoding-mode message counts.
type Stats struct {
	// Syncs is the number of Sync* calls completed.
	Syncs uint64
	// MessagesSent counts field-synchronization messages (not barriers or
	// memoization).
	MessagesSent uint64
	// ValueBytes is payload spent on field values.
	ValueBytes uint64
	// MetadataBytes is payload spent on encodings: mode bytes, counts,
	// bit-vectors, and index lists.
	MetadataBytes uint64
	// GIDBytes is payload spent sending global IDs (only nonzero when
	// temporal invariance is disabled).
	GIDBytes uint64
	// ModeCounts counts messages by encoding mode.
	ModeCounts [5]uint64
	// TimeInSync is wall time during which at least one Sync* call was
	// active on this host (communication time in the paper's breakdown).
	//
	// Contract: this is a wall-clock measure, not a sum of per-call
	// durations. Nested or concurrent Sync calls on the same instance
	// accumulate their overlapped wall time exactly once (the two notions
	// coincide in the common BSP case where syncs never overlap), so
	// TimeInSync never exceeds the host's elapsed run time.
	TimeInSync time.Duration
	// MemoProxies is the total number of (mirror + master) entries in the
	// memoized exchange orders — the one-time memory overhead of §4.1.
	MemoProxies uint64
	// CompressedMessages counts messages shipped through the optional
	// DEFLATE wrapper; CompressionSaved is the wire bytes it removed.
	CompressedMessages uint64
	CompressionSaved   uint64
	// CompressSkipped counts messages that went uncompressed while
	// compression was enabled: below the static threshold, declined by the
	// CompressPolicy, or attempted but incompressible.
	CompressSkipped uint64
}

// BytesSent returns total field-sync payload bytes.
func (s Stats) BytesSent() uint64 { return s.ValueBytes + s.MetadataBytes + s.GIDBytes }

// Add accumulates other into s and returns the sum, for cross-host rollups.
func (s Stats) Add(other Stats) Stats {
	s.Syncs += other.Syncs
	s.MessagesSent += other.MessagesSent
	s.ValueBytes += other.ValueBytes
	s.MetadataBytes += other.MetadataBytes
	s.GIDBytes += other.GIDBytes
	for i := range s.ModeCounts {
		s.ModeCounts[i] += other.ModeCounts[i]
	}
	s.TimeInSync += other.TimeInSync
	s.MemoProxies += other.MemoProxies
	s.CompressedMessages += other.CompressedMessages
	s.CompressionSaved += other.CompressionSaved
	s.CompressSkipped += other.CompressSkipped
	return s
}
