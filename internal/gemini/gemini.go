// Package gemini implements the baseline comparator system of the paper's
// evaluation: a monolithic, computation-centric distributed graph engine in
// the style of Gemini (Zhu et al., OSDI'16) as the paper uses it —
//
//   - chunk-based outgoing edge-cut partitioning only (no vertex cuts);
//   - computation and communication integrated in one engine (no substrate
//     reuse);
//   - synchronization ships (global-ID, value) pairs and the receiver
//     translates IDs on arrival — no memoized orders, no adaptive metadata
//     encodings, no structurally-pruned patterns.
//
// Tables 2-4 and Figure 8 compare the Gluon systems against this baseline;
// Table 5's "Gunrock-style" entry is this engine's communication discipline
// applied to device-engine runs.
package gemini

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/graph"
	"gluon/internal/par"
	"gluon/internal/partition"
)

// Algorithm selects a built-in benchmark.
type Algorithm string

// The four benchmarks.
const (
	BFS  Algorithm = "bfs"
	CC   Algorithm = "cc"
	SSSP Algorithm = "sssp"
	PR   Algorithm = "pr"
)

// Config configures a baseline run.
type Config struct {
	Hosts   int
	Workers int // per-host worker count; 0 means GOMAXPROCS
	// Source for bfs/sssp (global ID).
	Source uint64
	// Tolerance and MaxIters for pr.
	Tolerance float64
	MaxIters  int
	// CollectValues gathers converged values into Result.Values.
	CollectValues bool
	// Net adds simulated link costs (same model as the Gluon systems use,
	// so timing comparisons are apples-to-apples).
	Net comm.NetModel
}

// Result reports a baseline run.
type Result struct {
	Algorithm      Algorithm
	NumHosts       int
	Rounds         int
	Time           time.Duration
	PartitionTime  time.Duration
	TotalCommBytes uint64
	Values         []float64
}

const (
	tagLabel comm.Tag = comm.TagUser + 100 // mirror→master label pairs
	tagBcast comm.Tag = comm.TagUser + 101 // master→mirror label pairs
	tagRank  comm.Tag = comm.TagUser + 103 // pr rank pairs
	tagDeg   comm.Tag = comm.TagUser + 104 // pr out-degree pairs
)

// Partition builds the baseline's chunked outgoing edge-cut partitions.
// Exposed so Table 2 can time it separately from execution.
func Partition(numNodes uint64, edges []graph.Edge, hosts int, outDeg []uint32) ([]*partition.Partition, error) {
	pol, err := partition.NewPolicy(partition.OEC, numNodes, hosts, partition.Options{OutDegrees: outDeg})
	if err != nil {
		return nil, err
	}
	return partition.PartitionAll(numNodes, edges, pol)
}

// Run partitions (edge-cut only) and executes the algorithm to convergence.
func Run(numNodes uint64, edges []graph.Edge, alg Algorithm, cfg Config) (*Result, error) {
	pstart := time.Now()
	parts, err := Partition(numNodes, edges, cfg.Hosts, nil)
	if err != nil {
		return nil, err
	}
	res, err := RunPartitioned(parts, alg, cfg)
	if err != nil {
		return nil, err
	}
	res.PartitionTime = time.Since(pstart) - res.Time
	return res, nil
}

// RunPartitioned executes over pre-built partitions.
func RunPartitioned(parts []*partition.Partition, alg Algorithm, cfg Config) (*Result, error) {
	hosts := len(parts)
	hub := comm.NewHubWithModel(hosts, cfg.Net)
	defer hub.Close()

	type hostOut struct {
		rounds int
		bytes  uint64
		values map[uint64]float64
		err    error
	}
	outs := make([]hostOut, hosts)
	var wg sync.WaitGroup
	start := time.Now()
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			e := &engine{p: parts[h], t: hub.Endpoint(h), workers: cfg.Workers}
			var rounds int
			var err error
			switch alg {
			case BFS:
				rounds, err = e.runLabelPropagation(labelInitSource(cfg.Source), pushUnweighted)
			case CC:
				rounds, err = e.runLabelPropagation(labelInitGID, pushUnweightedCC)
			case SSSP:
				rounds, err = e.runLabelPropagation(labelInitSource(cfg.Source), pushWeighted)
			case PR:
				rounds, err = e.runPageRank(cfg.Tolerance, cfg.MaxIters)
			default:
				err = fmt.Errorf("gemini: unknown algorithm %q", alg)
			}
			if err != nil {
				outs[h].err = err
				return
			}
			outs[h].rounds = rounds
			outs[h].bytes = e.bytesSent
			if cfg.CollectValues {
				outs[h].values = e.collect()
			}
		}(h)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Algorithm: alg, NumHosts: hosts, Time: elapsed}
	for h := range outs {
		if outs[h].err != nil {
			return nil, fmt.Errorf("gemini: host %d: %w", h, outs[h].err)
		}
		res.TotalCommBytes += outs[h].bytes
		if outs[h].rounds > res.Rounds {
			res.Rounds = outs[h].rounds
		}
	}
	if cfg.CollectValues {
		res.Values = make([]float64, parts[0].GlobalNodes)
		for h := range outs {
			for gid, v := range outs[h].values {
				res.Values[gid] = v
			}
		}
	}
	return res, nil
}

// engine is one host's integrated compute+comm state.
type engine struct {
	p       *partition.Partition
	t       comm.Transport
	workers int

	labels    []uint32  // bfs/cc/sssp
	ranks     []float64 // pr
	bytesSent uint64

	isPR bool
}

// ---- label-propagation family (bfs, cc, sssp) ----

type labelInit func(e *engine)

func labelInitSource(source uint64) labelInit {
	return func(e *engine) {
		for i := range e.labels {
			e.labels[i] = fields.InfinityU32
		}
		if lid, ok := e.p.LID(source); ok {
			e.labels[lid] = 0
		}
	}
}

func labelInitGID(e *engine) {
	for lid := range e.labels {
		e.labels[lid] = uint32(e.p.GID(uint32(lid)))
	}
}

type pushOp func(e *engine, u uint32, updated *bitset.Bitset)

func pushUnweighted(e *engine, u uint32, updated *bitset.Bitset) {
	du := fields.AtomicLoadU32(&e.labels[u])
	if du == fields.InfinityU32 {
		return
	}
	for _, d := range e.p.Graph.Neighbors(u) {
		if fields.AtomicMinU32(&e.labels[d], du+1) {
			updated.Set(d)
		}
	}
}

func pushUnweightedCC(e *engine, u uint32, updated *bitset.Bitset) {
	cu := fields.AtomicLoadU32(&e.labels[u])
	for _, d := range e.p.Graph.Neighbors(u) {
		if fields.AtomicMinU32(&e.labels[d], cu) {
			updated.Set(d)
		}
	}
}

func pushWeighted(e *engine, u uint32, updated *bitset.Bitset) {
	du := fields.AtomicLoadU32(&e.labels[u])
	if du == fields.InfinityU32 {
		return
	}
	nbrs := e.p.Graph.Neighbors(u)
	ws := e.p.Graph.EdgeWeights(u)
	for i, d := range nbrs {
		nd := du + ws[i]
		if nd < du {
			nd = fields.InfinityU32 - 1
		}
		if fields.AtomicMinU32(&e.labels[d], nd) {
			updated.Set(d)
		}
	}
}

// runLabelPropagation is the baseline's BSP loop: level-synchronous push
// rounds; after each round every updated label is sent as a (gid, value)
// pair — mirrors to masters, then masters re-broadcast to every peer that
// might hold a proxy (the integrated GAS discipline, no structural pruning).
func (e *engine) runLabelPropagation(init labelInit, op pushOp) (int, error) {
	n := e.p.NumProxies()
	e.labels = make([]uint32, n)
	init(e)
	if err := comm.Barrier(e.t); err != nil {
		return 0, err
	}
	frontier := bitset.New(n)
	frontier.SetAll() // first round considers everything with a finite label
	rounds := 0
	for {
		updated := bitset.New(n)
		nn := int(n)
		par.Range(nn, e.workers, func(lo, hi int) {
			for u := frontier.NextSet(uint32(lo)); u < uint32(hi); u = frontier.NextSet(u + 1) {
				op(e, u, updated)
			}
		})
		if err := e.syncLabels(updated); err != nil {
			return rounds, err
		}
		rounds++
		active, err := comm.AllReduceSum(e.t, uint64(updated.Count()))
		if err != nil {
			return rounds, err
		}
		if active == 0 {
			break
		}
		frontier = updated
	}
	return rounds, nil
}

// syncLabels performs the two GID-pair exchanges of one round.
func (e *engine) syncLabels(updated *bitset.Bitset) error {
	// Phase 1: mirrors send updated labels to the owner.
	if err := e.exchangeU32(updated, tagLabel, true); err != nil {
		return err
	}
	// Phase 2: masters broadcast updated labels to all other hosts
	// (the baseline does not know which hosts hold mirrors' structural
	// roles, so it sends to every host that holds any proxy of the node —
	// derived from a full mirror map exchange it performs lazily here by
	// sending to all peers).
	return e.exchangeU32(updated, tagBcast, false)
}

// exchangeU32 sends (gid,label) pairs for updated proxies of the given role
// to all peers and folds in what it receives (min).
func (e *engine) exchangeU32(updated *bitset.Bitset, tag comm.Tag, fromMirrors bool) error {
	me := e.t.HostID()
	hosts := e.t.NumHosts()
	// Build per-peer payloads.
	payloads := make([][]byte, hosts)
	for h := 0; h < hosts; h++ {
		if h == me {
			continue
		}
		var buf []byte
		count := uint32(0)
		hdr := make([]byte, 4)
		buf = append(buf, hdr...)
		appendPair := func(lid uint32) {
			var pair [12]byte
			binary.LittleEndian.PutUint64(pair[:], e.p.GID(lid))
			binary.LittleEndian.PutUint32(pair[8:], e.labels[lid])
			buf = append(buf, pair[:]...)
			count++
		}
		if fromMirrors {
			// Updated mirrors owned by h.
			for lid := e.p.NumMasters; lid < e.p.NumProxies(); lid++ {
				if updated.Test(lid) && e.p.Policy.Owner(e.p.GID(lid)) == h {
					appendPair(lid)
				}
			}
		} else {
			// Updated masters, to every peer.
			for lid := uint32(0); lid < e.p.NumMasters; lid++ {
				if updated.Test(lid) {
					appendPair(lid)
				}
			}
		}
		binary.LittleEndian.PutUint32(buf[:4], count)
		payloads[h] = buf
	}
	errc := make(chan error, 1)
	go func() {
		for h := 0; h < hosts; h++ {
			if h == me {
				continue
			}
			e.bytesSent += uint64(len(payloads[h]))
			if err := e.t.Send(h, tag, payloads[h]); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for h := 0; h < hosts; h++ {
		if h == me {
			continue
		}
		payload, err := e.t.Recv(h, tag)
		if err != nil {
			return err
		}
		cnt := binary.LittleEndian.Uint32(payload)
		off := 4
		for i := uint32(0); i < cnt; i++ {
			gid := binary.LittleEndian.Uint64(payload[off:])
			val := binary.LittleEndian.Uint32(payload[off+8:])
			off += 12
			if lid, ok := e.p.LID(gid); ok {
				if val < e.labels[lid] {
					e.labels[lid] = val
					updated.Set(lid)
				}
			}
		}
	}
	return <-errc
}

// ---- pagerank ----

// runPageRank is the baseline's pull pagerank with GID-pair communication.
func (e *engine) runPageRank(tol float64, maxIters int) (int, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	e.isPR = true
	n := e.p.NumProxies()
	const alpha = 0.85
	e.ranks = make([]float64, n)
	outdeg := make([]float64, n)
	contrib := make([]float64, n)
	for lid := uint32(0); lid < n; lid++ {
		outdeg[lid] = float64(e.p.Graph.OutDegree(lid))
		e.ranks[lid] = 1 - alpha
	}
	if err := comm.Barrier(e.t); err != nil {
		return 0, err
	}
	// Global out-degrees: mirrors send local degrees, masters sum and
	// re-broadcast — as GID pairs, of course.
	if err := e.exchangeF64(outdeg, tagDeg, sumFold, true); err != nil {
		return 0, err
	}
	if err := e.exchangeF64(outdeg, tagDeg, setFold, false); err != nil {
		return 0, err
	}

	in := e.p.InGraph()
	rounds := 0
	for iter := 0; iter < maxIters; iter++ {
		par.Range(int(n), e.workers, func(lo, hi int) {
			for v := uint32(lo); v < uint32(hi); v++ {
				var sum float64
				for _, u := range in.Neighbors(v) {
					if outdeg[u] > 0 {
						sum += e.ranks[u] / outdeg[u]
					}
				}
				contrib[v] = sum
			}
		})
		// Mirrors ship partial contributions to masters (sum-fold).
		if err := e.exchangeF64(contrib, tagRank, sumFold, true); err != nil {
			return rounds, err
		}
		var moved uint64
		for m := uint32(0); m < e.p.NumMasters; m++ {
			newRank := (1 - alpha) + alpha*contrib[m]
			if absF(newRank-e.ranks[m]) > tol {
				moved++
			}
			e.ranks[m] = newRank
		}
		// Masters broadcast new ranks.
		if err := e.exchangeF64(e.ranks, tagRank, setFold, false); err != nil {
			return rounds, err
		}
		for i := range contrib {
			contrib[i] = 0
		}
		rounds++
		global, err := comm.AllReduceSum(e.t, moved)
		if err != nil {
			return rounds, err
		}
		if global == 0 {
			break
		}
	}
	return rounds, nil
}

type foldF64 func(dst *float64, v float64)

func sumFold(dst *float64, v float64) { *dst += v }
func setFold(dst *float64, v float64) { *dst = v }

// exchangeF64 ships every relevant (gid, value) pair each round — the
// baseline sends unconditionally (no update tracking for floats).
func (e *engine) exchangeF64(vals []float64, tag comm.Tag, fold foldF64, fromMirrors bool) error {
	me := e.t.HostID()
	hosts := e.t.NumHosts()
	payloads := make([][]byte, hosts)
	for h := 0; h < hosts; h++ {
		if h == me {
			continue
		}
		var buf []byte
		count := uint32(0)
		buf = append(buf, 0, 0, 0, 0)
		appendPair := func(lid uint32) {
			var pair [16]byte
			binary.LittleEndian.PutUint64(pair[:], e.p.GID(lid))
			binary.LittleEndian.PutUint64(pair[8:], f64bits(vals[lid]))
			buf = append(buf, pair[:]...)
			count++
		}
		if fromMirrors {
			for lid := e.p.NumMasters; lid < e.p.NumProxies(); lid++ {
				if e.p.Policy.Owner(e.p.GID(lid)) == h {
					appendPair(lid)
				}
			}
		} else {
			for lid := uint32(0); lid < e.p.NumMasters; lid++ {
				appendPair(lid)
			}
		}
		binary.LittleEndian.PutUint32(buf[:4], count)
		payloads[h] = buf
	}
	errc := make(chan error, 1)
	go func() {
		for h := 0; h < hosts; h++ {
			if h == me {
				continue
			}
			e.bytesSent += uint64(len(payloads[h]))
			if err := e.t.Send(h, tag, payloads[h]); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for h := 0; h < hosts; h++ {
		if h == me {
			continue
		}
		payload, err := e.t.Recv(h, tag)
		if err != nil {
			return err
		}
		cnt := binary.LittleEndian.Uint32(payload)
		off := 4
		for i := uint32(0); i < cnt; i++ {
			gid := binary.LittleEndian.Uint64(payload[off:])
			v := f64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
			off += 16
			if lid, ok := e.p.LID(gid); ok {
				fold(&vals[lid], v)
			}
		}
	}
	return <-errc
}

// collect returns master values by global ID.
func (e *engine) collect() map[uint64]float64 {
	out := make(map[uint64]float64, e.p.NumMasters)
	for lid := uint32(0); lid < e.p.NumMasters; lid++ {
		if e.isPR {
			out[e.p.GID(lid)] = e.ranks[lid]
		} else {
			out[e.p.GID(lid)] = float64(e.labels[lid])
		}
	}
	return out
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
