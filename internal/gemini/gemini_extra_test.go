package gemini_test

import (
	"testing"
	"time"

	"gluon/internal/comm"
	"gluon/internal/gemini"
)

func TestBaselinePartitionExposed(t *testing.T) {
	numNodes, edges, _ := testInput(t, false)
	parts, err := gemini.Partition(numNodes, edges, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("%d partitions", len(parts))
	}
	var total uint64
	for _, p := range parts {
		if p.Policy.Name() != "oec" {
			t.Fatalf("baseline uses %s, must be edge-cut only", p.Policy.Name())
		}
		total += p.Graph.NumEdges()
	}
	if total != uint64(len(edges)) {
		t.Fatalf("edges %d, want %d", total, len(edges))
	}
}

func TestBaselineRunPartitioned(t *testing.T) {
	numNodes, edges, g := testInput(t, false)
	parts, err := gemini.Partition(numNodes, edges, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gemini.RunPartitioned(parts, gemini.BFS, gemini.Config{
		Hosts: 2, Source: uint64(g.MaxOutDegreeNode()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.TotalCommBytes == 0 {
		t.Fatalf("result %+v looks empty", res)
	}
}

func TestBaselineUnknownAlgorithm(t *testing.T) {
	numNodes, edges, _ := testInput(t, false)
	if _, err := gemini.Run(numNodes, edges, "nope", gemini.Config{Hosts: 2}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestBaselineUnderNetModel: the baseline pays modeled link costs like the
// Gluon systems do (the comparison must be apples-to-apples).
func TestBaselineUnderNetModel(t *testing.T) {
	numNodes, edges, g := testInput(t, false)
	run := func(net comm.NetModel) time.Duration {
		res, err := gemini.Run(numNodes, edges, gemini.BFS, gemini.Config{
			Hosts: 3, Source: uint64(g.MaxOutDegreeNode()), Net: net,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	fast := run(comm.NetModel{})
	slow := run(comm.NetModel{Latency: 2 * time.Millisecond})
	if slow < fast+5*time.Millisecond {
		t.Fatalf("modeled %v not slower than unmodeled %v", slow, fast)
	}
}

func TestBaselinePartitionTimeRecorded(t *testing.T) {
	numNodes, edges, _ := testInput(t, false)
	res, err := gemini.Run(numNodes, edges, gemini.CC, gemini.Config{Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionTime <= 0 {
		t.Fatalf("partition time %v", res.PartitionTime)
	}
}
