package gemini_test

import (
	"fmt"
	"math"
	"testing"

	"gluon/internal/gemini"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/ref"
)

func testInput(t *testing.T, weighted bool) (uint64, []graph.Edge, *graph.CSR) {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 7, Weighted: weighted}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), edges, g
}

func TestBaselineBFS(t *testing.T) {
	numNodes, edges, g := testInput(t, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)
	for _, hosts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("h%d", hosts), func(t *testing.T) {
			res, err := gemini.Run(numNodes, edges, gemini.BFS,
				gemini.Config{Hosts: hosts, Source: uint64(source), CollectValues: true})
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want {
				if float64(w) != res.Values[i] {
					t.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
				}
			}
		})
	}
}

func TestBaselineSSSP(t *testing.T) {
	numNodes, edges, g := testInput(t, true)
	source := g.MaxOutDegreeNode()
	want := ref.SSSP(g, source)
	res, err := gemini.Run(numNodes, edges, gemini.SSSP,
		gemini.Config{Hosts: 3, Source: uint64(source), CollectValues: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
		}
	}
}

func TestBaselineCC(t *testing.T) {
	numNodes, edges, _ := testInput(t, false)
	sym := ref.Symmetrize(edges)
	symG, err := graph.FromEdges(numNodes, sym, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.CC(symG)
	res, err := gemini.Run(numNodes, sym, gemini.CC,
		gemini.Config{Hosts: 4, CollectValues: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
		}
	}
}

func TestBaselinePR(t *testing.T) {
	numNodes, edges, g := testInput(t, false)
	want := ref.PageRank(g, 0.85, 1e-9, 100)
	res, err := gemini.Run(numNodes, edges, gemini.PR,
		gemini.Config{Hosts: 4, Tolerance: 1e-9, MaxIters: 100, CollectValues: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-6 {
			t.Fatalf("node %d: got %v, want %v", i, res.Values[i], w)
		}
	}
}

// TestBaselineSendsMoreBytes checks the headline communication property the
// paper reports (Figure 8b): the GID-on-the-wire baseline moves about an
// order of magnitude more data than Gluon-optimized systems do. The
// comparison itself lives in the bench harness; here we just assert the
// baseline's volume accounting is nonzero and grows with host count.
func TestBaselineSendsMoreBytes(t *testing.T) {
	numNodes, edges, g := testInput(t, false)
	source := g.MaxOutDegreeNode()
	res2, err := gemini.Run(numNodes, edges, gemini.BFS,
		gemini.Config{Hosts: 2, Source: uint64(source)})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := gemini.Run(numNodes, edges, gemini.BFS,
		gemini.Config{Hosts: 8, Source: uint64(source)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalCommBytes == 0 || res8.TotalCommBytes <= res2.TotalCommBytes {
		t.Fatalf("comm bytes: h2=%d h8=%d, want growth", res2.TotalCommBytes, res8.TotalCommBytes)
	}
}
