package perfdb

import (
	"strings"
	"testing"
	"time"
)

// synthHistory builds a history of n records on fp, each benchmark at a
// fixed ns/op with ~1% recorded noise.
func synthHistory(fp Fingerprint, start time.Time, n int, ns map[string]int64) []Record {
	var recs []Record
	for i := 0; i < n; i++ {
		rec := Record{
			Schema:        Schema,
			Time:          start.Add(time.Duration(i) * time.Hour),
			Label:         "sync-guard",
			Fingerprint:   fp,
			FingerprintID: fp.ID(),
		}
		for _, name := range sortedKeys(ns) {
			rec.Benchmarks = append(rec.Benchmarks, BenchResult{
				Name: name, NsPerOp: ns[name], AllocsPerOp: 26, NoiseNs: ns[name] / 100, Reps: 8,
			})
		}
		recs = append(recs, rec)
	}
	return recs
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

var (
	fpOld = Fingerprint{CPUModel: "Old Xeon", Cores: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	fpNew = Fingerprint{CPUModel: "New Epyc", Cores: 32, GOMAXPROCS: 32, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
)

// TestCheckPassesAcrossMachineDrift: the history moves to a machine 2× as
// fast — every number halves — and the check must stay green, because
// comparison never crosses fingerprints.
func TestCheckPassesAcrossMachineDrift(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthHistory(fpOld, t0, 5, map[string]int64{"sync/h=2/auto": 21000, "sync/h=2/unopt": 37000})
	fast := synthHistory(fpNew, t0.Add(240*time.Hour), 1, map[string]int64{"sync/h=2/auto": 10500, "sync/h=2/unopt": 18500})
	recs = append(recs, fast...)
	if regs := Check(recs, CheckOptions{}); len(regs) != 0 {
		t.Fatalf("2x machine drift flagged as regression: %v", regs)
	}
	// And once the new machine has its own history, it gates on itself.
	recs = append(recs, synthHistory(fpNew, t0.Add(241*time.Hour), 3, map[string]int64{"sync/h=2/auto": 10400, "sync/h=2/unopt": 18600})...)
	if regs := Check(recs, CheckOptions{}); len(regs) != 0 {
		t.Fatalf("steady new-machine history flagged: %v", regs)
	}
}

// TestCheckFlagsSameFingerprintRegression: a 10% slowdown of the optimized
// path on the same machine must fail, naming the benchmark.
func TestCheckFlagsSameFingerprintRegression(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthHistory(fpOld, t0, 6, map[string]int64{"sync/h=2/auto": 21000, "sync/h=2/unopt": 37000})
	bad := synthHistory(fpOld, t0.Add(100*time.Hour), 1, map[string]int64{"sync/h=2/auto": 23100, "sync/h=2/unopt": 37000})
	recs = append(recs, bad...)
	regs := Check(recs, CheckOptions{})
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want exactly the injected one: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Name != "sync/h=2/auto" {
		t.Fatalf("flagged %q, want sync/h=2/auto", r.Name)
	}
	if r.AllocRegression {
		t.Fatal("misclassified as alloc regression")
	}
	if r.DeltaFrac < 0.09 || r.DeltaFrac > 0.11 {
		t.Fatalf("delta = %.3f, want ~0.10", r.DeltaFrac)
	}
	msg := r.String()
	if !strings.Contains(msg, "sync/h=2/auto") || !strings.Contains(msg, "REGRESSION") {
		t.Fatalf("message does not pin the benchmark: %q", msg)
	}
	if r.Trend == "" || !strings.ContainsAny(r.Trend, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no trend line rendered: %q", msg)
	}
}

// TestCheckFlagsAllocRegression: an allocs/op increase fails regardless of
// how wide the noise band is.
func TestCheckFlagsAllocRegression(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthHistory(fpOld, t0, 4, map[string]int64{"sync/h=2/auto": 21000})
	bad := synthHistory(fpOld, t0.Add(100*time.Hour), 1, map[string]int64{"sync/h=2/auto": 21000})
	bad[0].Benchmarks[0].AllocsPerOp = 27
	bad[0].Benchmarks[0].NoiseNs = 21000 // absurd noise must not excuse allocs
	recs = append(recs, bad...)
	regs := Check(recs, CheckOptions{})
	if len(regs) != 1 || !regs[0].AllocRegression {
		t.Fatalf("alloc regression not flagged: %v", regs)
	}
	if regs[0].BaseAllocs != 26 || regs[0].LatestAllocs != 27 {
		t.Fatalf("alloc counts wrong: %+v", regs[0])
	}
}

// TestCheckToleratesNoiseWithinBand: a 3% wobble on a series that records
// ~1% noise stays green under the default 5% tolerance.
func TestCheckToleratesNoiseWithinBand(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthHistory(fpOld, t0, 5, map[string]int64{"sync/h=2/auto": 21000})
	wobble := synthHistory(fpOld, t0.Add(100*time.Hour), 1, map[string]int64{"sync/h=2/auto": 21630})
	recs = append(recs, wobble...)
	if regs := Check(recs, CheckOptions{}); len(regs) != 0 {
		t.Fatalf("3%% wobble flagged: %v", regs)
	}
}

// TestCheckNoiseBandIsCapped: recorded noise cannot widen the band past
// MaxNoiseFrac and self-disable the gate.
func TestCheckNoiseBandIsCapped(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthHistory(fpOld, t0, 5, map[string]int64{"sync/h=2/auto": 21000})
	for i := range recs {
		recs[i].Benchmarks[0].NoiseNs = 50000 // garbage noise, > 100% of the value
	}
	bad := synthHistory(fpOld, t0.Add(100*time.Hour), 1, map[string]int64{"sync/h=2/auto": 30000}) // +43%
	bad[0].Benchmarks[0].NoiseNs = 50000
	recs = append(recs, bad...)
	regs := Check(recs, CheckOptions{})
	if len(regs) != 1 {
		t.Fatalf("capped band did not flag a +43%% regression: %v", regs)
	}
	if regs[0].BandFrac > 0.31 {
		t.Fatalf("band = %.2f, want <= tol+MaxNoiseFrac", regs[0].BandFrac)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]int64{10, 10, 10, 20}, 0)
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q has wrong width", s)
	}
	r := []rune(s)
	if r[0] != '▁' || r[3] != '█' {
		t.Fatalf("sparkline %q does not span min..max", s)
	}
	if Sparkline(nil, 5) != "" {
		t.Fatal("empty series should render empty")
	}
	if got := Sparkline([]int64{10, 20, 30, 40}, 2); len([]rune(got)) != 2 {
		t.Fatalf("window not applied: %q", got)
	}
}

func TestWriteTrendsSmoke(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthHistory(fpOld, t0, 5, map[string]int64{"sync/h=2/auto": 21000, "sync/h=2/unopt": 37000})
	recs[len(recs)-1].Comm = &Comm{BytesPerRound: 2048, CompressionRatio: 1.4, InvariantSkipShare: 0.33}
	recs = append(recs, synthHistory(fpNew, t0.Add(240*time.Hour), 2, map[string]int64{"sync/h=2/auto": 10500})...)
	var sb strings.Builder
	if err := WriteTrends(&sb, recs, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{fpOld.ID(), fpNew.ID(), "sync/h=2/auto", "sync/h=2/unopt", "bytes/round", "trend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trend output missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparklines in trend output:\n%s", out)
	}
}
