package perfdb

// Trend analysis over the append-only history: series extraction grouped
// by (fingerprint, benchmark), sparkline rendering, and the regression
// check behind `gluon-perf -check`. Comparison never crosses fingerprints
// — a 2× faster machine starts a fresh series instead of tripping (or
// masking) a gate — and the pass band widens with the series' own recorded
// noise, so a quiet machine gates tighter than a noisy one.

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Series is one benchmark's trajectory on one machine class, in append
// order.
type Series struct {
	FingerprintID string
	Fingerprint   Fingerprint
	Name          string
	Ns            []int64
	Noise         []int64
	Allocs        []int64
	Times         []time.Time
}

// Latest returns the newest point of the series.
func (s *Series) Latest() (ns, noise, allocs int64) {
	n := len(s.Ns)
	return s.Ns[n-1], s.Noise[n-1], s.Allocs[n-1]
}

// Trailing returns the ns/op values before the latest point, keeping at
// most window of them (0 = all).
func (s *Series) Trailing(window int) []int64 {
	prior := s.Ns[:len(s.Ns)-1]
	if window > 0 && len(prior) > window {
		prior = prior[len(prior)-window:]
	}
	return prior
}

// SeriesOf splits a history into per-(fingerprint, benchmark) series,
// ordered by first appearance in the file.
func SeriesOf(recs []Record) []*Series {
	byKey := map[[2]string]*Series{}
	var order []*Series
	for _, rec := range recs {
		for _, b := range rec.Benchmarks {
			k := [2]string{rec.FingerprintID, b.Name}
			s := byKey[k]
			if s == nil {
				s = &Series{FingerprintID: rec.FingerprintID, Fingerprint: rec.Fingerprint, Name: b.Name}
				byKey[k] = s
				order = append(order, s)
			}
			s.Ns = append(s.Ns, b.NsPerOp)
			s.Noise = append(s.Noise, b.NoiseNs)
			s.Allocs = append(s.Allocs, b.AllocsPerOp)
			s.Times = append(s.Times, rec.Time)
		}
	}
	return order
}

// sparkRunes are the eight levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ns values as a min–max normalized sparkline, keeping
// the trailing width points (0 = all). A flat series renders mid-height.
func Sparkline(ns []int64, width int) string {
	if width > 0 && len(ns) > width {
		ns = ns[len(ns)-width:]
	}
	if len(ns) == 0 {
		return ""
	}
	lo, hi := ns[0], ns[0]
	for _, v := range ns {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(ns))
	for i, v := range ns {
		lvl := len(sparkRunes) / 2
		if hi > lo {
			lvl = int(int64(len(sparkRunes)-1) * (v - lo) / (hi - lo))
		}
		out[i] = sparkRunes[lvl]
	}
	return string(out)
}

// CheckOptions parameterizes the regression check.
type CheckOptions struct {
	// Tol is the fractional ns/op regression allowed before noise widening
	// (default 0.05).
	Tol float64
	// Window caps how many trailing points form the reference median
	// (default 8).
	Window int
	// MaxNoiseFrac caps how far recorded noise may widen the band, so a
	// series that recorded garbage noise cannot disable its own gate
	// (default 0.25).
	MaxNoiseFrac float64
}

func (o *CheckOptions) defaults() {
	if o.Tol == 0 {
		o.Tol = 0.05
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.MaxNoiseFrac == 0 {
		o.MaxNoiseFrac = 0.25
	}
}

// Regression is one flagged series: the latest point against the trailing
// median, beyond the noise band (or an allocation increase, which no noise
// excuses).
type Regression struct {
	FingerprintID string
	Name          string
	LatestNs      int64
	MedianNs      int64
	// DeltaFrac is latest/median - 1; BandFrac the tolerance it exceeded
	// (tol + noise widening).
	DeltaFrac float64
	BandFrac  float64
	// AllocRegression marks an allocs/op increase over the trailing
	// minimum (deterministic, so always a real hot-path change).
	AllocRegression bool
	LatestAllocs    int64
	BaseAllocs      int64
	// Trend is the series sparkline, newest point last.
	Trend string
}

func (r Regression) String() string {
	if r.AllocRegression {
		return fmt.Sprintf("REGRESSION %s [fp %s]: allocs/op %d -> %d  %s",
			r.Name, r.FingerprintID, r.BaseAllocs, r.LatestAllocs, r.Trend)
	}
	return fmt.Sprintf("REGRESSION %s [fp %s]: latest %d ns/op vs trailing median %d (%+.1f%%, band +%.1f%%)  %s",
		r.Name, r.FingerprintID, r.LatestNs, r.MedianNs, 100*r.DeltaFrac, 100*r.BandFrac, r.Trend)
}

// Check flags regressions in the newest record against the trailing
// history of the same fingerprint. Benchmarks with no prior same-
// fingerprint point pass vacuously — a new machine establishes a baseline,
// it is not measured against someone else's.
func Check(recs []Record, o CheckOptions) []Regression {
	o.defaults()
	if len(recs) == 0 {
		return nil
	}
	latest := recs[len(recs)-1]
	var out []Regression
	for _, s := range SeriesOf(recs) {
		if s.FingerprintID != latest.FingerprintID || len(s.Ns) < 2 {
			continue
		}
		if !s.Times[len(s.Times)-1].Equal(latest.Time) {
			continue // series not present in the newest record
		}
		ns, noise, allocs := s.Latest()
		prior := s.Trailing(o.Window)
		med := median(prior)
		if med <= 0 {
			continue
		}
		reg := Regression{
			FingerprintID: s.FingerprintID,
			Name:          s.Name,
			LatestNs:      ns,
			MedianNs:      med,
			DeltaFrac:     float64(ns)/float64(med) - 1,
			Trend:         Sparkline(s.Ns, o.Window+1),
			LatestAllocs:  allocs,
		}
		// Noise widening: the larger of the latest point's own MAD and the
		// trailing points' median MAD, as a fraction of the median.
		trailNoise := s.Noise[:len(s.Noise)-1]
		if len(trailNoise) > o.Window {
			trailNoise = trailNoise[len(trailNoise)-o.Window:]
		}
		nf := float64(noise) / float64(med)
		if tn := float64(median(trailNoise)) / float64(med); tn > nf {
			nf = tn
		}
		if nf > o.MaxNoiseFrac {
			nf = o.MaxNoiseFrac
		}
		reg.BandFrac = o.Tol + nf
		minAllocs := s.Allocs[0]
		for _, a := range s.Allocs[:len(s.Allocs)-1] {
			if a < minAllocs {
				minAllocs = a
			}
		}
		reg.BaseAllocs = minAllocs
		switch {
		case allocs > minAllocs:
			reg.AllocRegression = true
			out = append(out, reg)
		case reg.DeltaFrac > reg.BandFrac:
			out = append(out, reg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeltaFrac > out[j].DeltaFrac })
	return out
}

// WriteTrends prints per-benchmark trend tables grouped by fingerprint,
// the `gluon-perf` default view. window caps the sparkline and median
// scope (0 = CheckOptions default).
func WriteTrends(w io.Writer, recs []Record, window int) error {
	if window == 0 {
		window = 8
	}
	series := SeriesOf(recs)
	if len(series) == 0 {
		_, err := fmt.Fprintln(w, "perfdb: history is empty")
		return err
	}
	byFP := map[string][]*Series{}
	var fpOrder []string
	for _, s := range series {
		if _, ok := byFP[s.FingerprintID]; !ok {
			fpOrder = append(fpOrder, s.FingerprintID)
		}
		byFP[s.FingerprintID] = append(byFP[s.FingerprintID], s)
	}
	for i, fp := range fpOrder {
		if i > 0 {
			fmt.Fprintln(w)
		}
		ss := byFP[fp]
		first, last := ss[0].Times[0], ss[0].Times[0]
		points := 0
		for _, s := range ss {
			if n := len(s.Times); n > points {
				points = n
			}
			for _, t := range s.Times {
				if t.Before(first) {
					first = t
				}
				if t.After(last) {
					last = t
				}
			}
		}
		fmt.Fprintf(w, "fingerprint %s — %d point(s), %s → %s\n", ss[0].Fingerprint,
			points, first.Format("2006-01-02"), last.Format("2006-01-02"))
		fmt.Fprintf(w, "  %-24s %12s %12s %8s %7s %7s  %s\n",
			"benchmark", "latest ns/op", "median ns/op", "delta", "noise", "allocs", "trend")
		for _, s := range ss {
			ns, noise, allocs := s.Latest()
			prior := s.Trailing(window)
			medStr, deltaStr := "n/a", "n/a"
			if med := median(prior); med > 0 {
				medStr = fmt.Sprintf("%d", med)
				deltaStr = fmt.Sprintf("%+.1f%%", 100*(float64(ns)/float64(med)-1))
			}
			noiseStr := "n/a"
			if ns > 0 {
				noiseStr = fmt.Sprintf("±%.1f%%", 100*float64(noise)/float64(ns))
			}
			if _, err := fmt.Fprintf(w, "  %-24s %12d %12s %8s %7s %7d  %s\n",
				s.Name, ns, medStr, deltaStr, noiseStr, allocs, Sparkline(s.Ns, window+1)); err != nil {
				return err
			}
		}
		if comm := latestComm(recs, fp); comm != nil {
			fmt.Fprintf(w, "  comm: %.0f bytes/round, compression %.2fx, invariant skips %.0f%%\n",
				comm.BytesPerRound, comm.CompressionRatio, 100*comm.InvariantSkipShare)
		}
	}
	return nil
}

func latestComm(recs []Record, fp string) *Comm {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].FingerprintID == fp && recs[i].Comm != nil {
			return recs[i].Comm
		}
	}
	return nil
}
