package perfdb

// Host fingerprinting. A benchmark number is only comparable to another
// number measured on the same class of machine; the fingerprint captures
// exactly the dimensions that move the sync hot path's absolute ns/op —
// CPU model, core count, the GOMAXPROCS the process actually ran with, and
// the Go toolchain — and hashes them into a short stable ID that history
// records and trend analysis group by. Everything else (load, thermals,
// noisy neighbors) is noise, which the records carry separately as a MAD
// estimate.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Fingerprint identifies the machine class a measurement was taken on.
type Fingerprint struct {
	// CPUModel is the hardware name ("model name" from /proc/cpuinfo on
	// linux; GOARCH elsewhere or when the probe fails).
	CPUModel string `json:"cpu_model"`
	// Cores is runtime.NumCPU at probe time.
	Cores int `json:"cores"`
	// GOMAXPROCS is the scheduler width the measuring process ran with —
	// it changes absolute timings even on identical hardware.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion is runtime.Version(): codegen changes shift baselines.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// Probe fingerprints the current host and process. Repeated probes on the
// same host in the same process configuration return identical values.
func Probe() Fingerprint {
	return Fingerprint{
		CPUModel:   cpuModel(),
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// ID is the short stable hash trend analysis and history grouping key on.
func (f Fingerprint) ID() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%d|%s|%s|%s",
		f.CPUModel, f.Cores, f.GOMAXPROCS, f.GoVersion, f.OS, f.Arch)))
	return hex.EncodeToString(h[:])[:12]
}

// String renders the fingerprint for CLI output and gate errors.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s (%s, %d cores, GOMAXPROCS=%d, %s %s/%s)",
		f.ID(), f.CPUModel, f.Cores, f.GOMAXPROCS, f.GoVersion, f.OS, f.Arch)
}

// cpuModel reads the hardware name from /proc/cpuinfo; on non-linux hosts
// (or a masked procfs) it degrades to the architecture, which still
// separates machine classes coarsely.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		// x86 says "model name", arm says "Processor" or per-core
		// "CPU part"; take the first name-like key.
		for _, key := range []string{"model name", "Processor", "Hardware"} {
			if strings.HasPrefix(line, key) {
				if _, val, ok := strings.Cut(line, ":"); ok {
					if v := strings.TrimSpace(val); v != "" {
						return v
					}
				}
			}
		}
	}
	return runtime.GOARCH
}
