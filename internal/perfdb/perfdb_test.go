package perfdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecord(fp Fingerprint, t0 time.Time, nsAuto, nsUnopt int64) *Record {
	return &Record{
		Time:        t0,
		Label:       "sync-guard",
		Fingerprint: fp,
		Graph:       "rmat scale=12 ef=8 seed=7 cvc",
		Benchmarks: []BenchResult{
			{Name: "sync/h=2/auto", Hosts: 2, Encoding: "auto", NsPerOp: nsAuto, AllocsPerOp: 26, NoiseNs: nsAuto / 100, Reps: 8},
			{Name: "sync/h=2/unopt", Hosts: 2, Encoding: "unopt", NsPerOp: nsUnopt, AllocsPerOp: 30, NoiseNs: nsUnopt / 100, Reps: 8},
		},
		Comm: &Comm{BytesPerRound: 2048, CompressionRatio: 1.4, InvariantSkipShare: 0.33},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	fp := Probe()
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	want := []*Record{
		testRecord(fp, t0, 21000, 37000),
		testRecord(fp, t0.Add(time.Hour), 21500, 37400),
	}
	for _, r := range want {
		if err := Append(path, r); err != nil {
			t.Fatal(err)
		}
	}
	got, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Schema != Schema {
			t.Errorf("record %d schema = %d, want %d", i, g.Schema, Schema)
		}
		if g.FingerprintID != fp.ID() {
			t.Errorf("record %d fp = %q, want %q", i, g.FingerprintID, fp.ID())
		}
		if !g.Time.Equal(w.Time) || g.Label != w.Label || g.Graph != w.Graph {
			t.Errorf("record %d header mismatch: %+v", i, g)
		}
		if len(g.Benchmarks) != 2 || g.Benchmarks[0] != w.Benchmarks[0] || g.Benchmarks[1] != w.Benchmarks[1] {
			t.Errorf("record %d benchmarks mismatch: %+v", i, g.Benchmarks)
		}
		if g.Comm == nil || *g.Comm != *w.Comm {
			t.Errorf("record %d comm mismatch: %+v", i, g.Comm)
		}
	}
}

// TestReadToleratesTornTrailingRecord simulates a crash mid-append: the
// final line is a truncated JSON object. Intact records must still load,
// with the tear counted, and a subsequent append must resume cleanly.
func TestReadToleratesTornTrailingRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	fp := Probe()
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	if err := Append(path, testRecord(fp, t0, 21000, 37000)); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testRecord(fp, t0.Add(time.Hour), 21100, 37100)); err != nil {
		t.Fatal(err)
	}
	// Tear: half of a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"time":"2026-08-01T14:0`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 1 {
		t.Fatalf("got %d records, %d skipped; want 2 records, 1 skipped", len(recs), skipped)
	}
	// The history must remain appendable after a tear: Append terminates
	// the torn fragment so the new record lands on its own line.
	if err := Append(path, testRecord(fp, t0.Add(2*time.Hour), 21200, 37200)); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err = Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || skipped != 1 {
		t.Fatalf("after resume: got %d records, %d skipped; want 3 records, 1 skipped", len(recs), skipped)
	}
}

// TestReadSkipsCorruptAndForeignLines: mid-file corruption and
// future-schema records skip without poisoning their neighbors.
func TestReadSkipsCorruptAndForeignLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	fp := Probe()
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	if err := Append(path, testRecord(fp, t0, 21000, 37000)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n")
	f.WriteString(`{"schema":999,"benchmarks":[]}` + "\n")
	f.Close()
	if err := Append(path, testRecord(fp, t0.Add(time.Hour), 21100, 37100)); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 2 {
		t.Fatalf("got %d records, %d skipped; want 2 records, 2 skipped", len(recs), skipped)
	}
	if !recs[1].Time.After(recs[0].Time) {
		t.Fatalf("records out of order: %v then %v", recs[0].Time, recs[1].Time)
	}
}

// TestFingerprintStability: repeated probes on the same host in the same
// process must agree — the ID is the history's grouping key, so any drift
// would shatter series.
func TestFingerprintStability(t *testing.T) {
	a, b := Probe(), Probe()
	if a != b {
		t.Fatalf("probe drift: %+v vs %+v", a, b)
	}
	if a.ID() != b.ID() {
		t.Fatalf("ID drift: %s vs %s", a.ID(), b.ID())
	}
	if a.ID() == "" || len(a.ID()) != 12 {
		t.Fatalf("bad ID %q", a.ID())
	}
	if a.Cores <= 0 || a.GOMAXPROCS <= 0 || a.GoVersion == "" || a.CPUModel == "" {
		t.Fatalf("incomplete fingerprint: %+v", a)
	}
	// Different hardware must produce a different ID.
	c := a
	c.Cores = a.Cores + 1
	if c.ID() == a.ID() {
		t.Fatal("core-count change did not change the ID")
	}
}

func TestMAD(t *testing.T) {
	if got := MAD([]int64{100, 102, 98, 101, 250}); got != 1 {
		t.Fatalf("MAD = %d, want 1 (robust to the 250 outlier)", got)
	}
	if got := MAD([]int64{100}); got != 0 {
		t.Fatalf("MAD of singleton = %d, want 0", got)
	}
}

func TestLatest(t *testing.T) {
	fp := Probe()
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	a := testRecord(fp, t0, 21000, 37000)
	a.Label = "sync-bench"
	b := testRecord(fp, t0.Add(time.Hour), 21100, 37100)
	recs := []Record{*a, *b}
	for i := range recs {
		recs[i].FingerprintID = fp.ID()
	}
	got, err := Latest(recs, "sync-bench", "")
	if err != nil || !got.Time.Equal(t0) {
		t.Fatalf("Latest(sync-bench) = %v, %v", got, err)
	}
	got, err = Latest(recs, "", fp.ID())
	if err != nil || !got.Time.Equal(t0.Add(time.Hour)) {
		t.Fatalf("Latest(fp) = %v, %v", got, err)
	}
	if _, err := Latest(recs, "nope", ""); err != ErrEmpty {
		t.Fatalf("Latest(nope) err = %v, want ErrEmpty", err)
	}
}
