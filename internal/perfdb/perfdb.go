// Package perfdb is the machine-fingerprinted, append-only benchmark
// history behind the perf observability plane: every gluon-bench sync
// measurement appends one schema-versioned JSONL record — host fingerprint,
// per-benchmark min-over-reps timing with a noise estimate, and the
// comm-volume counters lifted from the trace ledger — and cmd/gluon-perf
// reads the accumulated history back for trend tables, regression checks,
// and BENCH_sync.json snapshots. Appends are single-write lines so a crash
// mid-append tears at most the trailing record, which Read tolerates.
package perfdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Schema is the record format version this package writes. Readers skip
// records from newer schemas rather than misinterpreting them.
const Schema = 1

// BenchResult is one benchmark's measurement within a record.
type BenchResult struct {
	// Name identifies the benchmark series ("sync/h=2/auto").
	Name string `json:"name"`
	// Hosts and Encoding are the sync-bench coordinates behind Name, kept
	// structured so snapshots (BENCH_sync.json) can be rebuilt from a
	// record without parsing names.
	Hosts    int    `json:"hosts,omitempty"`
	Encoding string `json:"encoding,omitempty"`
	// NsPerOp is the min-over-reps wall time: load spikes only ever
	// inflate a rep, so the min estimates the true cost.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// NoiseNs is the median absolute deviation of ns/op across the reps —
	// the record's own estimate of how trustworthy NsPerOp is on this
	// machine at this moment. Gates widen their tolerance by it.
	NoiseNs int64 `json:"noise_ns,omitempty"`
	// Reps is how many repetitions the min and MAD were taken over.
	Reps int `json:"reps,omitempty"`
}

// Comm carries the comm-volume trajectory alongside the time trajectory:
// counters distilled from the trace ledger of an instrumented probe run
// (trace.Ledger.Counters), so the history shows when a change moved bytes
// as well as when it moved nanoseconds.
type Comm struct {
	// BytesPerRound is shipped wire bytes per attributed BSP round.
	BytesPerRound float64 `json:"bytes_per_round"`
	// CompressionRatio is raw/shipped (1 = compression saved nothing).
	CompressionRatio float64 `json:"compression_ratio"`
	// InvariantSkipShare is the fraction of channel-rounds that shipped
	// nothing (temporal invariance / empty updates), in [0,1].
	InvariantSkipShare float64 `json:"invariant_skip_share"`
}

// Record is one appended history entry: everything measured in one
// gluon-bench invocation on one machine.
type Record struct {
	Schema int       `json:"schema"`
	Time   time.Time `json:"time"`
	// Label names the producing path ("sync-bench" full snapshots,
	// "sync-guard" gate measurements).
	Label       string      `json:"label,omitempty"`
	Fingerprint Fingerprint `json:"fingerprint"`
	// FingerprintID is Fingerprint.ID(), denormalized so grep and jq can
	// group the raw file without recomputing hashes.
	FingerprintID string `json:"fp"`
	// Graph and Workers pin the measured configuration; series with
	// different configurations are not comparable.
	Graph      string        `json:"graph,omitempty"`
	Workers    int           `json:"sync_workers"`
	Benchmarks []BenchResult `json:"benchmarks"`
	Comm       *Comm         `json:"comm,omitempty"`
}

// Append writes rec as one JSONL line at the end of path, creating the
// file if needed. The line goes out in a single write on an O_APPEND
// descriptor, so concurrent appenders interleave at line granularity and a
// crash tears at most the final record.
func Append(path string, rec *Record) error {
	if rec.Schema == 0 {
		rec.Schema = Schema
	}
	if rec.FingerprintID == "" {
		rec.FingerprintID = rec.Fingerprint.ID()
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("perfdb: marshaling record: %w", err)
	}
	line = append(line, '\n')
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("perfdb: opening %s: %w", path, err)
	}
	// A crash mid-append leaves a torn, newline-less fragment at the tail.
	// Terminate it before writing so the new record lands on its own line
	// and only the fragment is lost, not this append.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			line = append([]byte{'\n'}, line...)
		}
	}
	_, werr := f.Write(line)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("perfdb: appending to %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("perfdb: closing %s: %w", path, cerr)
	}
	return nil
}

// Read loads every parseable record from path in append order and reports
// how many lines it had to skip: a torn trailing record (crash mid-append),
// stray corruption, or records written by a newer schema all skip rather
// than fail — an append-only history must stay readable after any single
// bad write. Only an unreadable file is an error.
func Read(path string) (recs []Record, skipped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("perfdb: reading %s: %w", path, err)
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Schema < 1 || rec.Schema > Schema {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped, nil
}

// ErrEmpty is returned by Latest when the history holds no usable record.
var ErrEmpty = errors.New("perfdb: no records")

// Latest returns the newest record (by file order) matching the optional
// filters: label "" matches any label, fingerprintID "" any machine.
func Latest(recs []Record, label, fingerprintID string) (*Record, error) {
	for i := len(recs) - 1; i >= 0; i-- {
		r := &recs[i]
		if label != "" && r.Label != label {
			continue
		}
		if fingerprintID != "" && r.FingerprintID != fingerprintID {
			continue
		}
		return r, nil
	}
	return nil, ErrEmpty
}

// MAD returns the median absolute deviation of ns samples — the noise
// estimate the records carry. Robust against the one-sided outliers load
// spikes produce, unlike a standard deviation.
func MAD(samples []int64) int64 {
	if len(samples) < 2 {
		return 0
	}
	med := median(samples)
	devs := make([]int64, len(samples))
	for i, s := range samples {
		d := s - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	return median(devs)
}

func median(samples []int64) int64 {
	s := append([]int64(nil), samples...)
	for i := 1; i < len(s); i++ { // insertion sort: rep counts are tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
