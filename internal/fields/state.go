// Checkpoint codecs for label arrays. A program's ExportState snapshots its
// per-host field slices into byte sections and ImportState restores them;
// the encoding is the raw little-endian element stream, so a round-trip is
// bit-exact (required for the byte-identical restore guarantee, DESIGN.md
// §4.6). Encoders copy — the caller may keep mutating the source slice
// while the checkpoint writer drains the section to disk.
package fields

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeF64s appends the little-endian bits of vals to dst.
func EncodeF64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeF64s fills dst from data; data must hold exactly len(dst) values.
func DecodeF64s(data []byte, dst []float64) error {
	if len(data) != 8*len(dst) {
		return fmt.Errorf("fields: f64 section is %d bytes, want %d", len(data), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return nil
}

// EncodeU64s appends the little-endian bytes of vals to dst.
func EncodeU64s(dst []byte, vals []uint64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeU64s fills dst from data; data must hold exactly len(dst) values.
func DecodeU64s(data []byte, dst []uint64) error {
	if len(data) != 8*len(dst) {
		return fmt.Errorf("fields: u64 section is %d bytes, want %d", len(data), 8*len(dst))
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return nil
}

// EncodeU32s appends the little-endian bytes of vals to dst.
func EncodeU32s(dst []byte, vals []uint32) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// DecodeU32s fills dst from data; data must hold exactly len(dst) values.
func DecodeU32s(data []byte, dst []uint32) error {
	if len(data) != 4*len(dst) {
		return fmt.Errorf("fields: u32 section is %d bytes, want %d", len(data), 4*len(dst))
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return nil
}
