package fields

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicAddF64Bits(t *testing.T) {
	var bits uint64
	AtomicAddF64Bits(&bits, 1.5)
	AtomicAddF64Bits(&bits, 2.25)
	if got := LoadF64Bits(&bits); got != 3.75 {
		t.Fatalf("sum %v", got)
	}
}

// TestAtomicAddF64BitsConcurrent: concurrent adds never lose mass.
func TestAtomicAddF64BitsConcurrent(t *testing.T) {
	var bits uint64
	var wg sync.WaitGroup
	const workers, adds = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				AtomicAddF64Bits(&bits, 0.5)
			}
		}()
	}
	wg.Wait()
	if got := LoadF64Bits(&bits); got != workers*adds*0.5 {
		t.Fatalf("sum %v, want %v", got, workers*adds*0.5)
	}
}

func TestAtomicSwapF64Bits(t *testing.T) {
	bits := math.Float64bits(7.5)
	old := AtomicSwapF64Bits(&bits, 0)
	if old != 7.5 || LoadF64Bits(&bits) != 0 {
		t.Fatalf("swap: old %v, now %v", old, LoadF64Bits(&bits))
	}
}

func TestSumF64BitsSpec(t *testing.T) {
	bits := make([]uint64, 2)
	a := SumF64Bits{Bits: bits}
	if a.Reduce(0, 0) {
		t.Fatal("zero add reported change")
	}
	if !a.Reduce(0, 2.5) || a.Extract(0) != 2.5 {
		t.Fatal("reduce/extract")
	}
	a.Reset(0)
	if a.Extract(0) != 0 {
		t.Fatal("reset")
	}
}

func TestSetF64BitsSpec(t *testing.T) {
	bits := make([]uint64, 1)
	s := SetF64Bits{Bits: bits}
	if !s.Set(0, 1.25) || s.Extract(0) != 1.25 {
		t.Fatal("set/extract")
	}
	if s.Set(0, 1.25) {
		t.Fatal("idempotent set reported change")
	}
}

// TestQuickBitsRoundTrip: any float survives the bits representation.
func TestQuickBitsRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true // NaN != NaN; representation still exact
		}
		var bits uint64
		AtomicAddF64Bits(&bits, v)
		return LoadF64Bits(&bits) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
