package fields

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicMinU32(t *testing.T) {
	v := uint32(10)
	if !AtomicMinU32(&v, 5) || v != 5 {
		t.Fatalf("min lower: %d", v)
	}
	if AtomicMinU32(&v, 5) {
		t.Fatal("min equal reported change")
	}
	if AtomicMinU32(&v, 7) || v != 5 {
		t.Fatalf("min higher changed value: %d", v)
	}
}

// TestAtomicMinU32Concurrent: under contention, the final value is the
// global minimum and exactly one goroutine observes each lowering.
func TestAtomicMinU32Concurrent(t *testing.T) {
	v := uint32(1 << 30)
	var changes int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := 0
			for i := 0; i < 1000; i++ {
				if AtomicMinU32(&v, uint32(1000-i+w)) {
					local++
				}
			}
			mu.Lock()
			changes += int64(local)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if v != 1 {
		t.Fatalf("final %d, want 1", v)
	}
	if changes < 1 || changes > 8*1000 {
		t.Fatalf("changes %d", changes)
	}
}

func TestMinU32Spec(t *testing.T) {
	labels := []uint32{5, 10}
	m := MinU32{Labels: labels}
	if m.Extract(0) != 5 {
		t.Fatal("extract")
	}
	if !m.Reduce(1, 3) || labels[1] != 3 {
		t.Fatal("reduce lower")
	}
	if m.Reduce(1, 9) || labels[1] != 3 {
		t.Fatal("reduce higher")
	}
	m.Reset(0)
	if labels[0] != 5 {
		t.Fatal("reset must keep label for min")
	}
}

func TestSetU32Spec(t *testing.T) {
	labels := []uint32{1}
	s := SetU32{Labels: labels}
	if s.Set(0, 1) {
		t.Fatal("set same value reported change")
	}
	if !s.Set(0, 2) || labels[0] != 2 {
		t.Fatal("set new value")
	}
	if s.Extract(0) != 2 {
		t.Fatal("extract")
	}
}

func TestSumF64Spec(t *testing.T) {
	vals := []float64{1.5}
	a := SumF64{Vals: vals}
	if a.Reduce(0, 0) {
		t.Fatal("adding zero reported change")
	}
	if !a.Reduce(0, 2.5) || vals[0] != 4.0 {
		t.Fatalf("reduce add: %v", vals[0])
	}
	a.Reset(0)
	if vals[0] != 0 {
		t.Fatal("reset must zero for sum")
	}
	if a.Extract(0) != 0 {
		t.Fatal("extract")
	}
}

func TestSumU64AndSetU64(t *testing.T) {
	vals := []uint64{7}
	a := SumU64{Vals: vals}
	if !a.Reduce(0, 3) || vals[0] != 10 {
		t.Fatal("sum")
	}
	a.Reset(0)
	if vals[0] != 0 {
		t.Fatal("reset")
	}
	s := SetU64{Vals: vals}
	if !s.Set(0, 9) || s.Extract(0) != 9 {
		t.Fatal("set/extract")
	}
	if s.Set(0, 9) {
		t.Fatal("idempotent set reported change")
	}
}

func TestSetF64Spec(t *testing.T) {
	vals := []float64{0}
	s := SetF64{Vals: vals}
	if !s.Set(0, 1.25) || s.Extract(0) != 1.25 {
		t.Fatal("set/extract")
	}
	if s.Set(0, 1.25) {
		t.Fatal("idempotent set reported change")
	}
}

// TestQuickMinReduceIdempotent: reducing any sequence twice gives the same
// result as once (the property Gluon's dense mode depends on).
func TestQuickMinReduceIdempotent(t *testing.T) {
	f := func(vals []uint32) bool {
		a := []uint32{InfinityU32}
		b := []uint32{InfinityU32}
		ma, mb := MinU32{Labels: a}, MinU32{Labels: b}
		for _, v := range vals {
			ma.Reduce(0, v)
			mb.Reduce(0, v)
			mb.Reduce(0, v) // duplicate delivery
		}
		return a[0] == b[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicStoreLoad(t *testing.T) {
	v := uint32(0)
	AtomicStoreU32(&v, 42)
	if AtomicLoadU32(&v) != 42 {
		t.Fatal("store/load")
	}
	u := uint64(1)
	if AtomicAddU64(&u, 2) != 3 {
		t.Fatal("add")
	}
}
