// Package fields provides the label-array primitives shared by the vertex
// programs: atomic update helpers for engine-side operators and ready-made
// Gluon reduce/broadcast synchronization structures over label slices
// (the Figure 5 structs of the paper, written once instead of per
// application).
package fields

import (
	"math"
	"sync/atomic"
)

// InfinityU32 is the "unreached" label for distance-style fields.
const InfinityU32 = math.MaxUint32

// AtomicMinU32 lowers *p to v if v is smaller, returning whether it changed.
func AtomicMinU32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// AtomicLoadU32 reads *p atomically.
func AtomicLoadU32(p *uint32) uint32 { return atomic.LoadUint32(p) }

// AtomicStoreU32 writes *p atomically. Single-writer loops use it so that
// concurrent readers in the same parallel pass see a well-defined value.
func AtomicStoreU32(p *uint32, v uint32) { atomic.StoreUint32(p, v) }

// AtomicAddU64 adds v to *p and returns the new value.
func AtomicAddU64(p *uint64, v uint64) uint64 { return atomic.AddUint64(p, v) }

// AtomicAddF64Bits adds v to the float64 stored as IEEE-754 bits in *p
// (CAS loop). Push-style operators use bit-typed float fields so that
// concurrent accumulation needs no locks.
func AtomicAddF64Bits(p *uint64, v float64) {
	for {
		old := atomic.LoadUint64(p)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, next) {
			return
		}
	}
}

// AtomicSwapF64Bits atomically replaces the float64 bits in *p and returns
// the previous value (used to consume a residual exactly once).
func AtomicSwapF64Bits(p *uint64, v float64) float64 {
	return math.Float64frombits(atomic.SwapUint64(p, math.Float64bits(v)))
}

// LoadF64Bits reads the float64 stored as bits in *p.
func LoadF64Bits(p *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(p))
}

// SumF64Bits is a Gluon reduce structure over a bit-typed float64 slice
// (push-style pagerank residuals): add-combined, reset to 0.
type SumF64Bits struct{ Bits []uint64 }

// Extract returns the value at lid.
func (a SumF64Bits) Extract(lid uint32) float64 { return LoadF64Bits(&a.Bits[lid]) }

// Reduce adds v into lid's value.
func (a SumF64Bits) Reduce(lid uint32, v float64) bool {
	if v == 0 {
		return false
	}
	AtomicAddF64Bits(&a.Bits[lid], v)
	return true
}

// Reset zeroes lid's value.
func (a SumF64Bits) Reset(lid uint32) { atomic.StoreUint64(&a.Bits[lid], 0) }

// SetF64Bits is the broadcast structure over a bit-typed float64 slice.
type SetF64Bits struct{ Bits []uint64 }

// Extract returns the value at lid.
func (s SetF64Bits) Extract(lid uint32) float64 { return LoadF64Bits(&s.Bits[lid]) }

// Set overwrites lid's value, reporting change.
func (s SetF64Bits) Set(lid uint32, v float64) bool {
	old := atomic.SwapUint64(&s.Bits[lid], math.Float64bits(v))
	return math.Float64frombits(old) != v
}

// MinU32 is a Gluon reduce structure for a min-combined uint32 label slice
// (bfs levels, sssp distances, cc component labels). Reset keeps the label:
// for an idempotent min reduction, a mirror's current label is already
// incorporated at the master, so re-sending it is a no-op — exactly the
// paper's sssp example where "keeping labels of mirror nodes unchanged is
// sufficient".
type MinU32 struct{ Labels []uint32 }

// Extract returns the label of lid.
func (m MinU32) Extract(lid uint32) uint32 { return m.Labels[lid] }

// Reduce lowers lid's label to v if smaller.
func (m MinU32) Reduce(lid uint32, v uint32) bool {
	if v < m.Labels[lid] {
		m.Labels[lid] = v
		return true
	}
	return false
}

// Reset is a no-op (min is idempotent).
func (m MinU32) Reset(lid uint32) {}

// SetU32 is the matching Gluon broadcast structure for a uint32 label slice.
type SetU32 struct{ Labels []uint32 }

// Extract returns the label of lid.
func (s SetU32) Extract(lid uint32) uint32 { return s.Labels[lid] }

// Set overwrites lid's label, reporting whether it changed.
func (s SetU32) Set(lid uint32, v uint32) bool {
	if s.Labels[lid] == v {
		return false
	}
	s.Labels[lid] = v
	return true
}

// SumF64 is a Gluon reduce structure for an additively-combined float64
// slice (pagerank contributions). Reset returns mirrors to the additive
// identity 0, the paper's push-style pagerank example.
type SumF64 struct{ Vals []float64 }

// Extract returns the partial value at lid.
func (a SumF64) Extract(lid uint32) float64 { return a.Vals[lid] }

// Reduce adds v into lid's value.
func (a SumF64) Reduce(lid uint32, v float64) bool {
	if v == 0 {
		return false
	}
	a.Vals[lid] += v
	return true
}

// Reset zeroes lid's value (the + identity).
func (a SumF64) Reset(lid uint32) { a.Vals[lid] = 0 }

// SetF64 is the broadcast structure for a float64 slice.
type SetF64 struct{ Vals []float64 }

// Extract returns the value at lid.
func (s SetF64) Extract(lid uint32) float64 { return s.Vals[lid] }

// Set overwrites lid's value, reporting whether it changed.
func (s SetF64) Set(lid uint32, v float64) bool {
	if s.Vals[lid] == v {
		return false
	}
	s.Vals[lid] = v
	return true
}

// SumU64 is a reduce structure for additively-combined uint64 fields
// (global out-degree accumulation for pull pagerank).
type SumU64 struct{ Vals []uint64 }

// Extract returns the partial value at lid.
func (a SumU64) Extract(lid uint32) uint64 { return a.Vals[lid] }

// Reduce adds v into lid's value.
func (a SumU64) Reduce(lid uint32, v uint64) bool {
	if v == 0 {
		return false
	}
	a.Vals[lid] += v
	return true
}

// Reset zeroes lid's value.
func (a SumU64) Reset(lid uint32) { a.Vals[lid] = 0 }

// SetU64 is the broadcast structure for a uint64 slice.
type SetU64 struct{ Vals []uint64 }

// Extract returns the value at lid.
func (s SetU64) Extract(lid uint32) uint64 { return s.Vals[lid] }

// Set overwrites lid's value, reporting whether it changed.
func (s SetU64) Set(lid uint32, v uint64) bool {
	if s.Vals[lid] == v {
		return false
	}
	s.Vals[lid] = v
	return true
}
