package trace

// Critical-path attribution. A BSP round ends when the last host arrives at
// the termination all-reduce — so the round's wall time is set by exactly
// one host, and within that host by whichever phase dominated its path to
// the barrier. The per-round and per-phase tables (analyze.go) show *sums*;
// they cannot answer the operator's actual question: "which host gated this
// round, and was it computing, encoding, on the wire, or waiting?" This
// file answers it from the spans the substrate already emits.
//
// Model (DESIGN.md §4.8):
//
//   - All events are first rebased onto one clock axis (the collector's,
//     via the sideband offsets; a single-process trace is already on one
//     axis). Comparing two hosts' aligned timestamps is then correct to
//     within the sum of their offset uncertainties; every verdict carries
//     that bound.
//   - Per (host, round) the driver emits three *sequential* spans — compute,
//     sync, barrier — so they tile the host's round wall time. The gating
//     host is the one whose barrier span *starts* last (the last arrival);
//     its margin is how much later it arrived than the runner-up.
//   - The gating phase refines the verdict with the sync sub-phase sums
//     (encode / wire / recvwait / fold / apply, plus compute and the
//     barrier's straggler-wait): the largest bucket on the gating host's
//     path. Encode/wire run on parallel worker lanes, so those buckets are
//     worker time, not wall time — good enough for dominance, and stated as
//     such.
//
// The optimization-effectiveness ledger models what the paper's Figure 10
// measures between configurations, from one run's trace alone: for every
// directed (sender, peer, field) channel, the dense capacity is estimated
// as the largest single pre-compression message ever observed on it; a
// naive substrate would broadcast that much on every channel every round.
// The gap to the bytes actually shipped splits into compression savings
// (the Saved tags), update-mask sparsity (messages smaller than the channel
// capacity), and invariant/empty-round skips (rounds where a known channel
// shipped nothing). Channels eliminated *entirely* by structural invariants
// never appear in a trace, so the model undercounts those — the caveat is
// printed with the table.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// CritPhase is the attribution taxonomy: where a gating host's round went.
type CritPhase uint8

const (
	CritCompute CritPhase = iota
	CritEncode
	CritWire
	CritRecvWait
	CritFold
	CritApply
	// CritWait is the straggler wait: time parked in the termination
	// barrier behind slower hosts.
	CritWait
	NumCritPhases
)

var critNames = [NumCritPhases]string{
	"compute", "encode", "wire", "recvwait", "fold", "apply", "straggler-wait",
}

// String returns the taxonomy name used in tables and JSON.
func (c CritPhase) String() string {
	if c < NumCritPhases {
		return critNames[c]
	}
	return "unknown"
}

// MarshalJSON writes the name, matching Phase's convention.
func (c CritPhase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON accepts a name or raw number.
func (c *CritPhase) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
		for i, n := range critNames {
			if n == s {
				*c = CritPhase(i)
				return nil
			}
		}
		*c = NumCritPhases
		return nil
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return err
	}
	*c = CritPhase(n)
	return nil
}

// critOf maps a span phase into the attribution taxonomy.
func critOf(p Phase) (CritPhase, bool) {
	switch p {
	case PhaseCompute:
		return CritCompute, true
	case PhaseEncode:
		return CritEncode, true
	case PhaseSend:
		return CritWire, true
	case PhaseRecvWait:
		return CritRecvWait, true
	case PhaseFold:
		return CritFold, true
	case PhaseApply:
		return CritApply, true
	case PhaseBarrier:
		return CritWait, true
	}
	return NumCritPhases, false
}

// HostRound is one host's accounting of one BSP round, on the aligned axis.
type HostRound struct {
	Host int32 `json:"host"`
	// StartNs/EndNs bound the host's recorded activity in the round.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// ArriveNs is when the host reached the termination barrier (the start
	// of its barrier span); EndNs when no barrier span was recorded.
	ArriveNs int64 `json:"arrive_ns"`
	// ComputeNs/SyncNs/BarrierNs are the sequential driver segments; they
	// tile the host's round wall time.
	ComputeNs int64 `json:"compute_ns"`
	SyncNs    int64 `json:"sync_ns"`
	BarrierNs int64 `json:"barrier_ns"`
	// SubNs are the taxonomy sums, indexed by CritPhase. Encode/wire are
	// summed worker-lane time and may exceed the wall segments.
	SubNs [NumCritPhases]int64 `json:"sub_ns"`
	// Bytes is the round's encode payload volume sent by this host.
	Bytes uint64 `json:"bytes"`

	arrived bool
}

// WallNs is the host's own round wall time.
func (h *HostRound) WallNs() int64 { return h.EndNs - h.StartNs }

// RoundPath is one round's critical-path verdict.
type RoundPath struct {
	Round int32 `json:"round"`
	// WallNs spans the earliest host activity to the latest, aligned.
	WallNs int64 `json:"wall_ns"`
	// UncertaintyNs bounds cross-host timestamp comparison for this round:
	// the two largest per-host clock uncertainties, summed.
	UncertaintyNs int64 `json:"uncertainty_ns,omitempty"`
	// Gate is the host whose barrier arrival came last; GatePhase the
	// largest bucket on its path; MarginNs its lead over the runner-up
	// (a margin below UncertaintyNs means the verdict is a coin toss).
	Gate      int32       `json:"gate"`
	GatePhase CritPhase   `json:"gate_phase"`
	MarginNs  int64       `json:"margin_ns"`
	Hosts     []HostRound `json:"hosts"`
}

// HostPath returns h's accounting, nil when the host is absent.
func (r *RoundPath) HostPath(h int32) *HostRound {
	for i := range r.Hosts {
		if r.Hosts[i].Host == h {
			return &r.Hosts[i]
		}
	}
	return nil
}

// Residual is the round wall time not explained by the gating host's
// sequential segments. |Residual| should stay within UncertaintyNs plus
// scheduling noise; a large residual means the trace is missing spans
// (ring overwrites) or the clocks disagree beyond their declared bounds.
func (r *RoundPath) Residual() int64 {
	g := r.HostPath(r.Gate)
	if g == nil {
		return r.WallNs
	}
	return r.WallNs - (g.ComputeNs + g.SyncNs + g.BarrierNs)
}

// GateCount is one host's share of the gating verdicts.
type GateCount struct {
	Host   int32          `json:"host"`
	Count  int            `json:"count"`
	Phases map[string]int `json:"phases,omitempty"`
}

// Verdict is the rolling cluster-level summary: who gates, doing what.
type Verdict struct {
	Rounds int         `json:"rounds"`
	Gates  []GateCount `json:"gates,omitempty"` // descending by Count
}

// String renders the one-line verdict gluon-top shows.
func (v Verdict) String() string {
	if v.Rounds == 0 || len(v.Gates) == 0 {
		return "no rounds attributed yet"
	}
	g := v.Gates[0]
	top, topN := "", 0
	for ph, n := range g.Phases {
		if n > topN || (n == topN && ph < top) {
			top, topN = ph, n
		}
	}
	return fmt.Sprintf("host %d gated %d/%d rounds, mostly %s", g.Host, g.Count, v.Rounds, top)
}

// HostPhaseSum is one host's cumulative taxonomy time over attributed
// rounds — the phase-breakdown bar gluon-top renders per host.
type HostPhaseSum struct {
	Host   int32                `json:"host"`
	Rounds int                  `json:"rounds"`
	SubNs  [NumCritPhases]int64 `json:"sub_ns"`
	Bytes  uint64               `json:"bytes"`
}

// TotalNs sums the host's buckets.
func (h *HostPhaseSum) TotalNs() int64 {
	var t int64
	for _, d := range h.SubNs {
		t += d
	}
	return t
}

// Ledger is the optimization-effectiveness model: bytes actually shipped
// against a modeled naive dense broadcast, split by mechanism.
type Ledger struct {
	// Rounds is the number of attributed rounds the baseline covers;
	// Channels the number of distinct (sender, peer, field) channels seen.
	Rounds   int    `json:"rounds"`
	Channels int    `json:"channels"`
	Messages uint64 `json:"messages"`
	// ShippedBytes went on the wire (post-compression); RawBytes is the
	// pre-compression payload (Shipped + CompressionSaved).
	ShippedBytes uint64 `json:"shipped_bytes"`
	RawBytes     uint64 `json:"raw_bytes"`
	// BaselineBytes is the modeled naive volume: every channel shipping its
	// dense capacity every round. The split below accounts the difference.
	BaselineBytes         uint64 `json:"baseline_bytes"`
	CompressionSavedBytes uint64 `json:"compression_saved_bytes"`
	// SparsitySavedBytes: messages smaller than their channel's capacity
	// (update-mask sparsity and the bitvec/indices/gid encodings).
	SparsitySavedBytes uint64 `json:"sparsity_saved_bytes"`
	// InvariantSavedBytes: rounds where a known channel shipped nothing
	// (temporal invariance, empty updates). SilentChannelRounds counts them.
	InvariantSavedBytes uint64 `json:"invariant_saved_bytes"`
	SilentChannelRounds uint64 `json:"silent_channel_rounds"`
	// WireNsPerByte is the observed send cost (Σ send-span ns / Σ shipped
	// bytes), the rate behind the modeled sync-time savings; 0 = unknown.
	WireNsPerByte float64 `json:"wire_ns_per_byte,omitempty"`
}

// SavedNs models the sync time a byte saving is worth at the observed wire
// rate (0 when the trace recorded no send spans).
func (l *Ledger) SavedNs(bytes uint64) int64 {
	return int64(l.WireNsPerByte * float64(bytes))
}

// chanStat accumulates one directed (sender, peer, field) channel.
type chanStat struct {
	msgs      uint64
	shipped   uint64
	raw       uint64
	saved     uint64
	capacity  uint64 // largest single pre-compression message
	present   int    // distinct rounds with >= 1 message
	lastRound int32
}

type chanKey struct {
	host, peer int32
	field      uint32
}

// CriticalPath is the full offline attribution of a trace.
type CriticalPath struct {
	Label string `json:"label,omitempty"`
	// UncertaintyNs is the worst cross-host comparison bound (see RoundPath).
	UncertaintyNs int64          `json:"uncertainty_ns,omitempty"`
	Rounds        []RoundPath    `json:"rounds"`
	Hosts         []HostPhaseSum `json:"hosts,omitempty"`
	Verdict       Verdict        `json:"verdict"`
	Ledger        Ledger         `json:"ledger"`
}

// CriticalBuilder folds aligned events into per-round attributions
// incrementally: the collector feeds it batch by batch and reads the
// trailing verdicts for live viewers; offline callers feed everything and
// FinalizeAll. Safe for concurrent use.
type CriticalBuilder struct {
	mu       sync.Mutex
	open     map[int32]map[int32]*HostRound // round -> host -> accounting
	maxSeen  map[int32]int32                // host -> newest round observed
	unc      map[int32]int64                // host -> clock uncertainty, ns
	channels map[chanKey]*chanStat
	totals   map[int32]*HostPhaseSum
	done     []RoundPath
	gates    map[int32]*GateCount
	sendNs   int64
	// floor is the lowest round not yet finalized: events for earlier rounds
	// arriving late (a host's ring drained on a different cadence) must not
	// re-open a closed round and double-attribute it.
	floor int32
}

// NewCriticalBuilder returns an empty builder.
func NewCriticalBuilder() *CriticalBuilder {
	return &CriticalBuilder{
		open:     make(map[int32]map[int32]*HostRound),
		maxSeen:  make(map[int32]int32),
		unc:      make(map[int32]int64),
		channels: make(map[chanKey]*chanStat),
		totals:   make(map[int32]*HostPhaseSum),
		gates:    make(map[int32]*GateCount),
	}
}

// SetHostClock declares a host's clock-offset uncertainty (the ±bound the
// sideband measured). Hosts never declared count as exact (local hosts).
func (b *CriticalBuilder) SetHostClock(host int32, uncertaintyNs int64) {
	b.mu.Lock()
	b.unc[host] = uncertaintyNs
	b.mu.Unlock()
}

// Ingest folds a batch of one or more hosts' events, rebasing each start
// time by offsetNs onto the reference axis. Events of a given host must
// arrive in emission order (which rings, batches, and Snapshot all
// preserve); rounds already finalized are ignored.
func (b *CriticalBuilder) Ingest(events []Event, offsetNs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range events {
		e := &events[i]
		cp, ok := critOf(e.Phase)
		if !ok && e.Phase != PhaseSync {
			continue // instants and ckpt spans don't attribute round time
		}
		start := e.Start + offsetNs
		if ms, seen := b.maxSeen[e.Host]; !seen || e.Round > ms {
			b.maxSeen[e.Host] = e.Round
		}
		if e.Phase == PhaseSend {
			b.sendNs += e.Dur
		}
		if e.Phase == PhaseEncode && e.Round >= 0 {
			b.channel(e).add(e)
		}
		if e.Round < 0 {
			continue // init/memoization time is not a BSP round
		}
		if e.Round < b.floor {
			continue // round already finalized; too late to attribute
		}
		hosts := b.open[e.Round]
		if hosts == nil {
			hosts = make(map[int32]*HostRound)
			b.open[e.Round] = hosts
		}
		hr := hosts[e.Host]
		if hr == nil {
			hr = &HostRound{Host: e.Host, StartNs: start, EndNs: start}
			hosts[e.Host] = hr
		}
		if start < hr.StartNs {
			hr.StartNs = start
		}
		if end := start + e.Dur; end > hr.EndNs {
			hr.EndNs = end
		}
		if ok {
			// PhaseSync has no taxonomy bucket of its own — its interior
			// (encode/wire/recvwait/fold/apply) is what attributes.
			hr.SubNs[cp] += e.Dur
		}
		switch e.Phase {
		case PhaseCompute:
			hr.ComputeNs += e.Dur
		case PhaseSync:
			hr.SyncNs += e.Dur
		case PhaseBarrier:
			hr.BarrierNs += e.Dur
			if !hr.arrived || start < hr.ArriveNs {
				hr.ArriveNs = start
			}
			hr.arrived = true
		case PhaseEncode:
			hr.Bytes += e.Bytes()
		}
	}
	b.finalizeReady()
}

func (b *CriticalBuilder) channel(e *Event) *chanStat {
	k := chanKey{host: e.Host, peer: e.Peer, field: e.Field}
	cs := b.channels[k]
	if cs == nil {
		cs = &chanStat{lastRound: -1}
		b.channels[k] = cs
	}
	return cs
}

func (cs *chanStat) add(e *Event) {
	shipped := e.Bytes()
	raw := shipped + e.Saved
	cs.msgs++
	cs.shipped += shipped
	cs.raw += raw
	cs.saved += e.Saved
	if raw > cs.capacity {
		cs.capacity = raw
	}
	if e.Round != cs.lastRound {
		cs.present++
		cs.lastRound = e.Round
	}
}

// finalizeReady closes every open round all known hosts have moved past.
// Caller holds b.mu.
func (b *CriticalBuilder) finalizeReady() {
	if len(b.maxSeen) == 0 {
		return
	}
	frontier := int32(1<<31 - 1)
	for _, r := range b.maxSeen {
		if r < frontier {
			frontier = r
		}
	}
	b.finalizeBelow(frontier)
}

// FinalizeAll closes every open round — end of trace, nothing more coming.
func (b *CriticalBuilder) FinalizeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.finalizeBelow(int32(1<<31 - 1))
}

func (b *CriticalBuilder) finalizeBelow(frontier int32) {
	var ready []int32
	for r := range b.open {
		if r < frontier {
			ready = append(ready, r)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, r := range ready {
		b.finalizeRound(r, b.open[r])
		delete(b.open, r)
		if r+1 > b.floor {
			b.floor = r + 1
		}
	}
}

func (b *CriticalBuilder) finalizeRound(round int32, hosts map[int32]*HostRound) {
	if len(hosts) == 0 {
		return
	}
	rp := RoundPath{Round: round, Gate: -1}
	var minStart, maxEnd int64
	first := true
	// Uncertainty bound: comparing two aligned stamps is off by at most the
	// sum of the two clocks' uncertainties; take the two largest.
	var u1, u2 int64
	for h, hr := range hosts {
		rp.Hosts = append(rp.Hosts, *hr)
		if first || hr.StartNs < minStart {
			minStart = hr.StartNs
		}
		if first || hr.EndNs > maxEnd {
			maxEnd = hr.EndNs
		}
		first = false
		if u := b.unc[h]; u >= u1 {
			u1, u2 = u, u1
		} else if u > u2 {
			u2 = u
		}
	}
	sort.Slice(rp.Hosts, func(i, j int) bool { return rp.Hosts[i].Host < rp.Hosts[j].Host })
	rp.WallNs = maxEnd - minStart
	rp.UncertaintyNs = u1 + u2
	// Gate: last barrier arrival (latest recorded activity when no host
	// recorded a barrier — a truncated tail round).
	arrive := func(hr *HostRound) int64 {
		if hr.arrived {
			return hr.ArriveNs
		}
		return hr.EndNs
	}
	var gate *HostRound
	var runnerUp int64
	for i := range rp.Hosts {
		hr := &rp.Hosts[i]
		a := arrive(hr)
		if gate == nil || a > arrive(gate) {
			if gate != nil {
				runnerUp = arrive(gate)
			}
			gate = hr
		} else if a > runnerUp {
			runnerUp = a
		}
	}
	rp.Gate = gate.Host
	if len(rp.Hosts) > 1 {
		rp.MarginNs = arrive(gate) - runnerUp
	}
	// Gating phase: the gate's largest taxonomy bucket.
	best := CritCompute
	for cp := CritPhase(0); cp < NumCritPhases; cp++ {
		if gate.SubNs[cp] > gate.SubNs[best] {
			best = cp
		}
	}
	rp.GatePhase = best
	b.done = append(b.done, rp)
	gc := b.gates[gate.Host]
	if gc == nil {
		gc = &GateCount{Host: gate.Host, Phases: make(map[string]int)}
		b.gates[gate.Host] = gc
	}
	gc.Count++
	gc.Phases[best.String()]++
	for i := range rp.Hosts {
		hr := &rp.Hosts[i]
		tot := b.totals[hr.Host]
		if tot == nil {
			tot = &HostPhaseSum{Host: hr.Host}
			b.totals[hr.Host] = tot
		}
		tot.Rounds++
		tot.Bytes += hr.Bytes
		for cp := CritPhase(0); cp < NumCritPhases; cp++ {
			tot.SubNs[cp] += hr.SubNs[cp]
		}
	}
}

// Rounds returns every finalized round, ascending.
func (b *CriticalBuilder) Rounds() []RoundPath {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]RoundPath(nil), b.done...)
}

// Tail returns the newest k finalized rounds, ascending.
func (b *CriticalBuilder) Tail(k int) []RoundPath {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k <= 0 || k > len(b.done) {
		k = len(b.done)
	}
	return append([]RoundPath(nil), b.done[len(b.done)-k:]...)
}

// Verdict summarizes the gating counts over all finalized rounds.
func (b *CriticalBuilder) Verdict() Verdict {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := Verdict{Rounds: len(b.done)}
	for _, gc := range b.gates {
		c := *gc
		c.Phases = make(map[string]int, len(gc.Phases))
		for k, n := range gc.Phases {
			c.Phases[k] = n
		}
		v.Gates = append(v.Gates, c)
	}
	sort.Slice(v.Gates, func(i, j int) bool {
		if v.Gates[i].Count != v.Gates[j].Count {
			return v.Gates[i].Count > v.Gates[j].Count
		}
		return v.Gates[i].Host < v.Gates[j].Host
	})
	return v
}

// HostTotals returns the cumulative per-host taxonomy sums, by host.
func (b *CriticalBuilder) HostTotals() []HostPhaseSum {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]HostPhaseSum, 0, len(b.totals))
	for _, t := range b.totals {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Ledger computes the effectiveness model over the rounds finalized so far.
// In live use the channel capacities are still evolving, so early snapshots
// under-estimate the baseline; the offline path (FinalizeAll first) is exact
// for the model.
func (b *CriticalBuilder) Ledger() Ledger {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := Ledger{Rounds: len(b.done), Channels: len(b.channels)}
	rounds := uint64(len(b.done))
	for _, cs := range b.channels {
		l.Messages += cs.msgs
		l.ShippedBytes += cs.shipped
		l.RawBytes += cs.raw
		l.CompressionSavedBytes += cs.saved
		if cs.capacity*cs.msgs > cs.raw {
			l.SparsitySavedBytes += cs.capacity*cs.msgs - cs.raw
		}
		present := uint64(cs.present)
		if present > rounds {
			present = rounds // messages of rounds not yet finalized
		}
		silent := rounds - present
		l.SilentChannelRounds += silent
		l.InvariantSavedBytes += silent * cs.capacity
	}
	l.BaselineBytes = l.ShippedBytes + l.CompressionSavedBytes +
		l.SparsitySavedBytes + l.InvariantSavedBytes
	if l.ShippedBytes > 0 && b.sendNs > 0 {
		l.WireNsPerByte = float64(b.sendNs) / float64(l.ShippedBytes)
	}
	return l
}

// uncertaintyBound returns the worst cross-host comparison bound declared.
func (b *CriticalBuilder) uncertaintyBound() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var u1, u2 int64
	for _, u := range b.unc {
		if u >= u1 {
			u1, u2 = u, u1
		} else if u > u2 {
			u2 = u
		}
	}
	return u1 + u2
}

// ComputeCriticalPath attributes a full trace offline. The events must share
// one time axis already — which both single-process exports and collector-
// merged exports do (the merge applies the sideband offsets); meta's clock
// table supplies the uncertainty bounds stamped on the verdicts.
func ComputeCriticalPath(meta Meta, events []Event) *CriticalPath {
	b := NewCriticalBuilder()
	for _, ci := range meta.Clocks {
		b.SetHostClock(ci.Host, ci.UncertaintyNs)
	}
	b.Ingest(events, 0)
	b.FinalizeAll()
	return &CriticalPath{
		Label:         meta.Label,
		UncertaintyNs: b.uncertaintyBound(),
		Rounds:        b.Rounds(),
		Hosts:         b.HostTotals(),
		Verdict:       b.Verdict(),
		Ledger:        b.Ledger(),
	}
}

// WriteTables prints the attribution the way gluon-trace -critical shows it.
func (cp *CriticalPath) WriteTables(w io.Writer) error {
	label := cp.Label
	if label != "" {
		label = " (" + label + ")"
	}
	if _, err := fmt.Fprintf(w, "critical path%s: %d attributed rounds, %d hosts, clock bound ±%v\n",
		label, len(cp.Rounds), len(cp.Hosts), round3(time.Duration(cp.UncertaintyNs))); err != nil {
		return err
	}
	if len(cp.Rounds) > 0 {
		fmt.Fprintf(w, "%6s %12s %6s %-15s %12s %12s %12s %12s %12s\n",
			"round", "wall", "gate", "gate-phase", "margin", "compute", "sync", "wait", "residual")
		for i := range cp.Rounds {
			r := &cp.Rounds[i]
			g := r.HostPath(r.Gate)
			var comp, syn, wait time.Duration
			if g != nil {
				comp, syn, wait = time.Duration(g.ComputeNs), time.Duration(g.SyncNs), time.Duration(g.BarrierNs)
			}
			fmt.Fprintf(w, "%6d %12v %6s %-15s %12v %12v %12v %12v %+12v\n",
				r.Round, round3(time.Duration(r.WallNs)), fmt.Sprintf("h%d", r.Gate), r.GatePhase,
				round3(time.Duration(r.MarginNs)), round3(comp), round3(syn), round3(wait),
				round3(time.Duration(r.Residual())))
		}
		fmt.Fprintln(w)
	}
	if len(cp.Hosts) > 0 {
		fmt.Fprintln(w, "per-host path breakdown (worker-lane sums over attributed rounds):")
		fmt.Fprintf(w, "%6s %10s", "host", "bytes")
		for cpx := CritPhase(0); cpx < NumCritPhases; cpx++ {
			fmt.Fprintf(w, " %14s", cpx)
		}
		fmt.Fprintln(w)
		for i := range cp.Hosts {
			h := &cp.Hosts[i]
			fmt.Fprintf(w, "%6d %10s", h.Host, fmtBytes(h.Bytes))
			for cpx := CritPhase(0); cpx < NumCritPhases; cpx++ {
				fmt.Fprintf(w, " %14v", round3(time.Duration(h.SubNs[cpx])))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	if v := cp.Verdict; len(v.Gates) > 0 {
		fmt.Fprint(w, "gating verdict:")
		for _, g := range v.Gates {
			fmt.Fprintf(w, " host %d ×%d (%s);", g.Host, g.Count, phaseCountList(g.Phases))
		}
		fmt.Fprintf(w, " — %s\n\n", v.String())
	}
	return cp.Ledger.WriteTable(w)
}

// phaseCountList renders a phase histogram compactly, largest first.
func phaseCountList(phases map[string]int) string {
	type pc struct {
		name string
		n    int
	}
	list := make([]pc, 0, len(phases))
	for n, c := range phases {
		list = append(list, pc{n, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].name < list[j].name
	})
	s := ""
	for i, p := range list {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s ×%d", p.name, p.n)
	}
	return s
}

// WriteTable prints the paper-style "sync volume/time saved by optimization
// X" ledger.
func (l *Ledger) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "optimization ledger (modeled vs naive dense broadcast, %d channels × %d rounds):\n",
		l.Channels, l.Rounds); err != nil {
		return err
	}
	rate := ""
	if l.WireNsPerByte > 0 {
		rate = fmt.Sprintf("   (wire observed at %.1fns/B)", l.WireNsPerByte)
	}
	fmt.Fprintf(w, "  %-28s %10s%s\n", "shipped on the wire", fmtBytes(l.ShippedBytes), rate)
	fmt.Fprintf(w, "  %-28s %10s\n", "naive-broadcast baseline", fmtBytes(l.BaselineBytes))
	row := func(name string, bytes uint64, extra string) {
		saved := ""
		if l.WireNsPerByte > 0 {
			saved = fmt.Sprintf("   (~%v sync time)", round3(time.Duration(l.SavedNs(bytes))))
		}
		fmt.Fprintf(w, "  %-28s %10s%s%s\n", name, fmtBytes(bytes), saved, extra)
	}
	row("saved by update sparsity", l.SparsitySavedBytes, "")
	row("saved by invariant skips", l.InvariantSavedBytes,
		fmt.Sprintf("   [%d silent channel-rounds]", l.SilentChannelRounds))
	row("saved by compression", l.CompressionSavedBytes, "")
	fmt.Fprintln(w, "  (channels structurally elided never appear in a trace; the model undercounts those)")
	return nil
}

// CommCounters is the compact comm-volume summary a perf-history record
// carries alongside its timings: the ledger distilled to three trajectory
// numbers, so `gluon-perf` can show whether a change moved bytes as well
// as nanoseconds (DESIGN.md §4.9).
type CommCounters struct {
	// BytesPerRound is shipped wire bytes per attributed round.
	BytesPerRound float64 `json:"bytes_per_round"`
	// CompressionRatio is raw/shipped (1 = compression saved nothing).
	CompressionRatio float64 `json:"compression_ratio"`
	// InvariantSkipShare is the fraction of channel-rounds that shipped
	// nothing, in [0,1].
	InvariantSkipShare float64 `json:"invariant_skip_share"`
}

// Counters distills the ledger into its perf-history record form.
func (l *Ledger) Counters() CommCounters {
	var c CommCounters
	if l.Rounds > 0 {
		c.BytesPerRound = float64(l.ShippedBytes) / float64(l.Rounds)
	}
	if l.ShippedBytes > 0 {
		c.CompressionRatio = float64(l.RawBytes) / float64(l.ShippedBytes)
	}
	if cr := uint64(l.Channels) * uint64(l.Rounds); cr > 0 {
		c.InvariantSkipShare = float64(l.SilentChannelRounds) / float64(cr)
	}
	return c
}

// LedgerOf attributes a live single-process session offline and returns
// its effectiveness ledger — the plumbing from an instrumented probe run
// to a perf-history record.
func LedgerOf(t *Trace) Ledger {
	events, _ := t.Snapshot()
	b := NewCriticalBuilder()
	b.Ingest(events, 0)
	b.FinalizeAll()
	return b.Ledger()
}
