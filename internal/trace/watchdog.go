package trace

// Straggler/stall watchdog. BSP clusters fail in two characteristic ways a
// flat error path never explains: a straggler host stretches every round
// (the skew behind the paper's CVC-vs-OEC analysis), or a host stops making
// progress entirely and the cluster hangs at the next rendezvous. The
// watchdog turns both into a named diagnosis: hosts publish compact
// heartbeats (round, live phase, byte counters) into a Health table — local
// hosts straight from their Recorders, remote ones via transport gossip or
// the collection sideband — and a monitor goroutine flags any round that
// exceeds Factor× the trailing-median round time, naming the suspect host
// and the phase it is stuck in, dumping goroutine stacks and the trace
// tail. If the stall persists past StallTimeout the report escalates, and
// the dsys runner feeds it into the comm.PeerError path so the cluster
// fails loudly with the diagnosis attached instead of hanging.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Heartbeat is one host's compact liveness record.
type Heartbeat struct {
	Host  int32  `json:"host"`
	Round int32  `json:"round"`
	Phase Phase  `json:"phase"`
	Bytes uint64 `json:"bytes"` // cumulative encode payload bytes
	// BeatNs is the emitter's session-clock time of its last liveness touch.
	BeatNs int64 `json:"beat_ns"`
	// AtNs is the observer's clock when the heartbeat was recorded locally.
	AtNs int64 `json:"at_ns,omitempty"`
}

// HeartbeatOf reads a recorder's liveness atomics into a Heartbeat.
func HeartbeatOf(r *Recorder) Heartbeat {
	return Heartbeat{
		Host:   r.Host(),
		Round:  r.Round(),
		Phase:  r.LivePhase(),
		Bytes:  r.LiveBytes(),
		BeatNs: r.LastBeat(),
	}
}

// Health is the cluster-wide heartbeat table a watchdog monitors: one slot
// per host, updated lock-free by whoever observes that host (the host's own
// gossip loop, a drain loop receiving remote heartbeats, or the collector's
// sideband sessions).
type Health struct {
	mu    sync.RWMutex
	slots map[int32]Heartbeat
	clock func() int64 // observer clock, ns
}

// NewHealth creates an empty table stamping receipt times from clock (nil
// means a wall-clock-based monotonic source).
func NewHealth(clock func() int64) *Health {
	if clock == nil {
		epoch := time.Now()
		clock = func() int64 { return int64(time.Since(epoch)) }
	}
	return &Health{slots: make(map[int32]Heartbeat), clock: clock}
}

// Update records a host's latest heartbeat. Stale updates (an older round
// than the slot already holds) are ignored so out-of-order gossip cannot
// roll a host backwards.
func (h *Health) Update(hb Heartbeat) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cur, ok := h.slots[hb.Host]; ok && (hb.Round < cur.Round || (hb.Round == cur.Round && hb.BeatNs < cur.BeatNs)) {
		return
	}
	hb.AtNs = h.clock()
	h.slots[hb.Host] = hb
}

// Snapshot returns the current table, ordered by host.
func (h *Health) Snapshot() []Heartbeat {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Heartbeat, 0, len(h.slots))
	for _, hb := range h.slots {
		out = append(out, hb)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tables are tiny
		for j := i; j > 0 && out[j-1].Host > out[j].Host; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Reset clears the table. A checkpoint rollback legitimately moves every
// host's round backwards; without a reset, Update's stale-gossip filter
// would discard all post-rollback heartbeats and the watchdog would starve
// on pre-rollback state.
func (h *Health) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	clear(h.slots)
}

// Now returns the table's observer clock reading.
func (h *Health) Now() int64 { return h.clock() }

// WatchdogConfig tunes stall detection. The zero value gets the defaults
// noted per field.
type WatchdogConfig struct {
	// Factor flags a round running longer than Factor× the trailing-median
	// round time (default 8).
	Factor float64
	// MinRound is the floor below which a round is never flagged, and the
	// threshold used before any round has completed (default 2s).
	MinRound time.Duration
	// Poll is the monitor's sampling interval (default 50ms).
	Poll time.Duration
	// StallTimeout escalates a flagged stall that persists this long past
	// the flag (Escalated=true on the report, which the dsys runner turns
	// into a PeerError). Zero never escalates — warn-only.
	StallTimeout time.Duration
	// Window is how many completed round durations feed the trailing median
	// (default 32).
	Window int
	// TraceTail is how many merged trace events the report carries
	// (default 64; 0 keeps the default, negative disables the tail).
	TraceTail int
	// OnReport receives every stall report: once when a round is flagged and
	// once more with Escalated=true if it persists past StallTimeout. Called
	// from the monitor goroutine.
	OnReport func(*StallReport)
	// Log, when non-nil, gets a one-paragraph rendering of every report.
	Log io.Writer
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Factor <= 0 {
		c.Factor = 8
	}
	if c.MinRound <= 0 {
		c.MinRound = 2 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.TraceTail == 0 {
		c.TraceTail = 64
	}
	return c
}

// StallReport names a suspected straggler or stall.
type StallReport struct {
	// Round is the cluster round (minimum across hosts) that is overdue.
	Round int32 `json:"round"`
	// Suspect is the host the evidence points at; Phase is the live phase it
	// was last seen executing.
	Suspect int32 `json:"suspect"`
	Phase   Phase `json:"phase"`
	// Waited is how long the round has been running; Threshold what it was
	// allowed; Median the trailing-median round time it derives from (0
	// before any round completed).
	Waited    time.Duration `json:"waited_ns"`
	Threshold time.Duration `json:"threshold_ns"`
	Median    time.Duration `json:"median_ns"`
	// Escalated marks the second-stage report of a persisting stall.
	Escalated bool `json:"escalated"`
	// Heartbeats is the table the diagnosis was made from.
	Heartbeats []Heartbeat `json:"heartbeats"`
	// Stacks is the monitoring process's goroutine dump (includes the
	// suspect's goroutines when it shares the process, i.e. always for
	// in-process clusters and for self-detection in multi-process ones).
	Stacks []byte `json:"stacks,omitempty"`
	// TraceTail is the tail of the suspect host's recorded events at flag
	// time, newest last — what it was doing when progress stopped.
	TraceTail []Event `json:"trace_tail,omitempty"`
}

func (r *StallReport) String() string {
	kind := "straggler"
	if r.Escalated {
		kind = "stall"
	}
	return fmt.Sprintf("watchdog: %s: round %d overdue (%v > %v, median %v): suspect host %d in phase %q",
		kind, r.Round, r.Waited.Round(time.Millisecond), r.Threshold.Round(time.Millisecond),
		r.Median.Round(time.Millisecond), r.Suspect, r.Phase)
}

// StallError is the error the runner attaches to the PeerError path when a
// watchdog escalates: the cluster is failed deliberately, with the diagnosis
// as the cause.
type StallError struct {
	Report *StallReport
}

func (e *StallError) Error() string {
	return e.Report.String()
}

// Watchdog monitors a Health table. Create with StartWatchdog; stop with
// Stop (idempotent, waits for the monitor goroutine).
type Watchdog struct {
	cfg    WatchdogConfig
	health *Health
	trace  *Trace // may be nil: reports then carry no trace tail

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// suspended counts declared checkpoint/rejoin windows (see Suspend).
	suspended atomic.Int32

	mu      sync.Mutex
	reports []*StallReport
}

// Suspend pauses stall detection for a declared checkpoint barrier or
// rejoin window: rounds deliberately stop advancing there, and flagging —
// let alone escalating StallError — would kill a recovering cluster.
// Suspensions nest (hosts sharing one watchdog may overlap their windows);
// detection resumes when every Suspend has been matched by a Resume.
func (w *Watchdog) Suspend() { w.suspended.Add(1) }

// Resume re-arms stall detection after Suspend. Round timing restarts from
// scratch — the time spent inside the window never counts against the
// current round — but the trailing-median history is kept, since completed
// pre-window rounds remain representative.
func (w *Watchdog) Resume() {
	if w.suspended.Add(-1) < 0 {
		panic("trace: Watchdog.Resume without matching Suspend")
	}
}

// StartWatchdog begins monitoring health. tr, when non-nil, supplies the
// trace tail attached to reports; it is not otherwise required.
func StartWatchdog(tr *Trace, health *Health, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		cfg:    cfg.withDefaults(),
		health: health,
		trace:  tr,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go w.run()
	return w
}

// Stop terminates the monitor and waits for it.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Reports returns every report raised so far, in order.
func (w *Watchdog) Reports() []*StallReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]*StallReport(nil), w.reports...)
}

// run is the monitor loop: track the cluster round (minimum across hosts),
// time its advances, flag when the current round exceeds the threshold.
func (w *Watchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Poll)
	defer tick.Stop()

	var (
		durations  []time.Duration // completed round times, trailing window
		curRound   = int32(-2)     // cluster round being timed; -2 = not started
		roundStart int64           // health clock ns when curRound began
		flagged    bool            // current round already reported
		flaggedAt  int64           // health clock ns of the flag
		escalated  bool
	)
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
		if w.suspended.Load() > 0 {
			// Inside a declared checkpoint/rejoin window: drop the current
			// round timing (it restarts fresh on resume) and never flag.
			curRound = -2
			flagged, escalated = false, false
			continue
		}
		hbs := w.health.Snapshot()
		if len(hbs) == 0 {
			continue
		}
		minRound := hbs[0].Round
		for _, hb := range hbs[1:] {
			if hb.Round < minRound {
				minRound = hb.Round
			}
		}
		if minRound < 0 {
			continue // init/memoization; rounds have not started
		}
		now := w.health.Now()
		if minRound != curRound {
			if curRound >= 0 {
				durations = append(durations, time.Duration(now-roundStart))
				if len(durations) > w.cfg.Window {
					durations = durations[len(durations)-w.cfg.Window:]
				}
			}
			curRound, roundStart = minRound, now
			flagged, escalated = false, false
			continue
		}
		waited := time.Duration(now - roundStart)
		median := medianDuration(durations)
		threshold := time.Duration(float64(median) * w.cfg.Factor)
		if threshold < w.cfg.MinRound {
			threshold = w.cfg.MinRound
		}
		if waited <= threshold {
			continue
		}
		if !flagged {
			flagged, flaggedAt = true, now
			w.report(curRound, waited, threshold, median, hbs, false)
		} else if !escalated && w.cfg.StallTimeout > 0 && time.Duration(now-flaggedAt) > w.cfg.StallTimeout {
			escalated = true
			w.report(curRound, waited, threshold, median, hbs, true)
		}
	}
}

// report assembles and dispatches one StallReport.
func (w *Watchdog) report(round int32, waited, threshold, median time.Duration, hbs []Heartbeat, escalated bool) {
	suspect := SuspectHost(hbs)
	r := &StallReport{
		Round:      round,
		Suspect:    suspect.Host,
		Phase:      suspect.Phase,
		Waited:     waited,
		Threshold:  threshold,
		Median:     median,
		Escalated:  escalated,
		Heartbeats: append([]Heartbeat(nil), hbs...),
	}
	buf := make([]byte, 1<<20)
	r.Stacks = buf[:runtime.Stack(buf, true)]
	if w.trace != nil && w.cfg.TraceTail > 0 {
		events, _ := w.trace.Snapshot()
		var tail []Event
		for _, e := range events {
			if e.Host == suspect.Host {
				tail = append(tail, e)
			}
		}
		if len(tail) > w.cfg.TraceTail {
			tail = tail[len(tail)-w.cfg.TraceTail:]
		}
		r.TraceTail = tail
	}
	w.mu.Lock()
	w.reports = append(w.reports, r)
	w.mu.Unlock()
	if w.cfg.Log != nil {
		fmt.Fprintln(w.cfg.Log, r)
	}
	if w.cfg.OnReport != nil {
		w.cfg.OnReport(r)
	}
}

// SuspectHost picks the host most likely responsible for a stalled round: a
// host blocked in recvwait or barrier is waiting on somebody else (a
// victim), so the suspect is the host still executing — lowest round first,
// then non-waiting phase, then the oldest liveness beat. When every host is
// waiting (a true deadlock or a silently dead process) the oldest beat
// decides: the host that stopped touching its heartbeat first.
func SuspectHost(hbs []Heartbeat) Heartbeat {
	if len(hbs) == 0 {
		return Heartbeat{Host: -1, Phase: NumPhases}
	}
	waiting := func(p Phase) bool { return p == PhaseRecvWait || p == PhaseBarrier }
	best := hbs[0]
	for _, hb := range hbs[1:] {
		switch {
		case hb.Round != best.Round:
			if hb.Round < best.Round {
				best = hb
			}
		case waiting(best.Phase) != waiting(hb.Phase):
			if waiting(best.Phase) {
				best = hb
			}
		case hb.BeatNs < best.BeatNs:
			best = hb
		}
	}
	return best
}

// medianDuration returns the median of a small sample (0 when empty).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s[len(s)/2]
}
