package trace

// Black-box flight recorder and postmortem bundles (DESIGN.md §4.7).
//
// The trace ring is already a flight recorder in the aviation sense: a
// bounded window of the most recent events, cheap enough to leave on.
// What was missing is the crash half of the discipline — when a run dies
// (a peer poisons, a watchdog escalates, a goroutine panics, a restore
// fails, a sync invariant breaks), the window is lost with the process.
// The FlightRecorder closes that gap: trigger sites call Dump, which
// freezes everything a postmortem needs into one JSON bundle written
// with ckpt's tmp+fsync+rename discipline, so surviving hosts of a
// crashed cluster each leave an artifact `gluon-doctor` can align and
// explain.
//
// Arming is process-global (Arm/Armed): failure paths live deep in comm
// and dsys where threading a recorder handle through every call would
// contaminate APIs that otherwise never care about observability. The
// cost when disarmed is one atomic pointer load on failure paths only —
// the sync hot path never consults it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gluon/internal/ckpt"
)

// Trigger classifies what killed (or wounded) a run. The taxonomy matches
// the failure paths wired through comm, dsys, and gluon; doctor groups and
// orders bundles by it.
type Trigger string

const (
	// TriggerPeerPoison: a transport poisoned a peer's mailbox organically
	// (connection lost, malformed frame, send failure) — the local view of a
	// remote death.
	TriggerPeerPoison Trigger = "peer-poison"
	// TriggerDeadHost: a host was declared dead cluster-wide through
	// PeerFailer.FailPeer — the propagated view.
	TriggerDeadHost Trigger = "dead-host"
	// TriggerInjectedFault: a FaultTransport injection fired (kill-after-N,
	// truncation).
	TriggerInjectedFault Trigger = "injected-fault"
	// TriggerStall: the watchdog escalated a persisting stall.
	TriggerStall Trigger = "stall"
	// TriggerPanic: the BSP round loop recovered a panic.
	TriggerPanic Trigger = "panic"
	// TriggerRestoreFailed: a checkpoint restore or rejoin rendezvous failed.
	TriggerRestoreFailed Trigger = "restore-failed"
	// TriggerSyncInvariant: gluon detected a broken sync invariant (undecodable
	// message, unknown mode, mirror/memo mismatch).
	TriggerSyncInvariant Trigger = "sync-invariant"
	// TriggerManual: an operator- or test-requested dump.
	TriggerManual Trigger = "manual"
)

// Triggers enumerates the taxonomy (stable order, used by the Prometheus
// exposition so every label value exists from the first scrape).
var Triggers = []Trigger{
	TriggerPeerPoison, TriggerDeadHost, TriggerInjectedFault, TriggerStall,
	TriggerPanic, TriggerRestoreFailed, TriggerSyncInvariant, TriggerManual,
}

func triggerIndex(tr Trigger) int {
	for i, t := range Triggers {
		if t == tr {
			return i
		}
	}
	return len(Triggers) - 1 // unknown triggers count as manual
}

// BundleVersion is the postmortem bundle format version; bumped when the
// JSON shape changes incompatibly.
const BundleVersion = 1

// Bundle is one host's frozen postmortem: everything Dump could gather at
// trigger time, serialized to JSON and installed atomically.
type Bundle struct {
	Version int     `json:"version"`
	Trigger Trigger `json:"trigger"`
	// Cause is the rendered error or reason behind the trigger.
	Cause string `json:"cause,omitempty"`
	// Detail carries trigger-specific extra context (stall report text,
	// panic value, invariant description).
	Detail string `json:"detail,omitempty"`
	// Host is the rank that dumped; Peer the other rank of the failure
	// (-1 when not applicable).
	Host int32 `json:"host"`
	Peer int32 `json:"peer"`
	// Round and Phase locate the failure on the BSP timeline.
	Round int32  `json:"round"`
	Phase string `json:"phase,omitempty"`

	// Label and RunConfig describe what was running.
	Label     string `json:"label,omitempty"`
	RunConfig string `json:"run_config,omitempty"`

	// TraceID identifies the tracing session (process) this bundle froze, so
	// doctor can dedup ring events shared by several bundles of one process.
	TraceID string `json:"trace_id"`
	// WallUnixNano is the wall clock at dump time; SessionNs the session
	// clock at dump time. Together they place the session's time axis on the
	// wall clock (epochWall = WallUnixNano - SessionNs), which is doctor's
	// fallback alignment when no measured Clock is present.
	WallUnixNano int64 `json:"wall_unix_nano"`
	SessionNs    int64 `json:"session_ns"`
	// Clock, when Samples > 0, is the sideband-measured offset of this
	// session's clock relative to the collector — tighter than wall-clock
	// alignment by orders of magnitude.
	Clock ClockInfo `json:"clock,omitempty"`

	// Events is the trace-ring tail (across all hosts of this process's
	// session), Start-ordered; Dropped counts ring overwrites before the
	// window.
	Events  []Event `json:"events,omitempty"`
	Dropped uint64  `json:"dropped"`

	// Stacks is the full goroutine dump at trigger time.
	Stacks string `json:"stacks,omitempty"`
	// Heartbeats is the watchdog Health table (cluster view) when one is
	// wired, else the local session's liveness snapshot.
	Heartbeats []Heartbeat `json:"heartbeats,omitempty"`
	// Live is the atomic rollup at dump time.
	Live LiveStats `json:"live"`
	// PoolGets/PoolPuts are the bufpool accounting counters (equal in a
	// leak-free run; only meaningful when accounting was enabled).
	PoolGets int64 `json:"pool_gets"`
	PoolPuts int64 `json:"pool_puts"`
	// LastCkptEpoch is the newest checkpoint epoch this process completed
	// (-1: none / checkpointing off) — with Round it bounds recomputation.
	LastCkptEpoch int64 `json:"last_ckpt_epoch"`
	// RecentLogs is the tail of structured log lines the slog handler teed
	// into the recorder, oldest first.
	RecentLogs []string `json:"recent_logs,omitempty"`
}

// DumpInfo is what a trigger site knows at the moment of failure.
type DumpInfo struct {
	Trigger Trigger
	// Host is the failing rank's local view (-1 lets the recorder fall back
	// to its configured default host).
	Host int
	// Peer is the other rank involved (-1 when not applicable).
	Peer int
	// Round and Phase locate the failure; Round -2 lets the recorder read
	// them from the host's live recorder instead.
	Round int
	Phase Phase
	// Cause is the error behind the trigger (rendered into the bundle).
	Cause error
	// Detail carries extra context (stall report text, panic value).
	Detail string
}

// FlightConfig parameterizes a FlightRecorder.
type FlightConfig struct {
	// Dir is where bundles are written (required).
	Dir string
	// TailEvents bounds the ring tail a bundle carries (0 = 4096).
	TailEvents int
	// MaxDumps caps the bundles one recorder writes — failure cascades
	// (every surviving peer poisoning at once) must not flood the disk
	// (0 = 16).
	MaxDumps int
	// Trace is the session to freeze. Nil creates a private enabled session
	// (flight-recorder mode: a modest always-on ring even when full tracing
	// is off).
	Trace *Trace
	// FlightCapacity sizes the private session's ring when Trace is nil
	// (0 = 1<<14 events ≈ 1.4 MB — cheap enough to leave armed).
	FlightCapacity int
	// Host is the default rank stamped on bundles whose DumpInfo carries
	// none (multi-host in-process sessions pass per-dump hosts instead).
	Host int
}

// numTriggers must equal len(Triggers); pinned by a test so the per-trigger
// dump counters can live in a fixed-size atomic array.
const numTriggers = 8

// FlightRecorder freezes postmortem bundles on demand. All methods are safe
// on a nil receiver and safe for concurrent use.
type FlightRecorder struct {
	cfg   FlightConfig
	trace *Trace
	id    string

	lastCkpt atomic.Int64
	dumps    [numTriggers]atomic.Uint64

	mu         sync.Mutex
	runConfig  string
	health     *Health
	pool       func() (gets, puts int64)
	clock      ClockInfo
	logs       []string // bounded recent-log ring (slog tee)
	logNext    int      // overwrite cursor once the log ring is full
	seen       map[string]bool
	written    int
	suppressed int
}

// recentLogCap bounds the slog tee ring a bundle carries.
const recentLogCap = 64

// NewFlightRecorder arms a recorder writing bundles under cfg.Dir.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.TailEvents <= 0 {
		cfg.TailEvents = 4096
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 16
	}
	tr := cfg.Trace
	if tr == nil {
		capacity := cfg.FlightCapacity
		if capacity <= 0 {
			capacity = 1 << 14
		}
		tr = New(Config{Capacity: capacity, Label: "flight-recorder"})
	}
	fr := &FlightRecorder{
		cfg:   cfg,
		trace: tr,
		logs:  make([]string, 0, recentLogCap),
	}
	fr.id = fmt.Sprintf("%d-h%d-%x", os.Getpid(), cfg.Host, uint64(time.Now().UnixNano()))
	fr.lastCkpt.Store(-1)
	return fr
}

// Trace returns the session the recorder freezes — callers running without
// explicit tracing pass this as their RunConfig.Trace so the ring fills.
func (fr *FlightRecorder) Trace() *Trace {
	if fr == nil {
		return nil
	}
	return fr.trace
}

// SetRunConfig records a human-readable description of the run for bundles.
func (fr *FlightRecorder) SetRunConfig(desc string) {
	if fr != nil {
		fr.mu.Lock()
		fr.runConfig = desc
		fr.mu.Unlock()
	}
}

// SetHealth wires the watchdog's cluster-wide heartbeat table; bundles then
// carry the cluster view instead of only the local one.
func (fr *FlightRecorder) SetHealth(h *Health) {
	if fr != nil {
		fr.mu.Lock()
		fr.health = h
		fr.mu.Unlock()
	}
}

// SetPoolCounters wires the bufpool accounting read (comm.PoolCounters —
// injected to keep trace free of a comm dependency).
func (fr *FlightRecorder) SetPoolCounters(fn func() (gets, puts int64)) {
	if fr != nil {
		fr.mu.Lock()
		fr.pool = fn
		fr.mu.Unlock()
	}
}

// SetClock records the sideband-measured clock relation for bundles.
func (fr *FlightRecorder) SetClock(ci ClockInfo) {
	if fr != nil {
		fr.mu.Lock()
		fr.clock = ci
		fr.mu.Unlock()
	}
}

// SetLastCheckpoint records the newest completed checkpoint epoch.
func (fr *FlightRecorder) SetLastCheckpoint(epoch uint64) {
	if fr != nil {
		fr.lastCkpt.Store(int64(epoch))
	}
}

// appendLog tees one rendered slog line into the bounded recent-log ring.
func (fr *FlightRecorder) appendLog(line string) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	if len(fr.logs) < cap(fr.logs) {
		fr.logs = append(fr.logs, line)
	} else if len(fr.logs) > 0 {
		fr.logs[fr.logNext%len(fr.logs)] = line
		fr.logNext++
	}
	fr.mu.Unlock()
}

// recentLogs returns the teed log tail, oldest first.
func (fr *FlightRecorder) recentLogs() []string {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.logNext == 0 {
		return append([]string(nil), fr.logs...)
	}
	n := fr.logNext % len(fr.logs)
	out := make([]string, 0, len(fr.logs))
	out = append(out, fr.logs[n:]...)
	out = append(out, fr.logs[:n]...)
	return out
}

// DumpCounts returns per-trigger bundle-write counts (the Prometheus
// gluon_postmortem_dumps_total series), indexed like Triggers.
func (fr *FlightRecorder) DumpCounts() []uint64 {
	out := make([]uint64, len(Triggers))
	if fr == nil {
		return out
	}
	for i := range out {
		out[i] = fr.dumps[i].Load()
	}
	return out
}

// Dump freezes a bundle for info and writes it atomically, returning the
// bundle path. Repeated dumps for the same (trigger, peer) pair and dumps
// past MaxDumps are suppressed (a poison cascade on an 8-host cluster must
// leave a handful of bundles, not hundreds); suppressed dumps return ""
// with a nil error. Dump never panics; it is called from paths that are
// already failing.
func (fr *FlightRecorder) Dump(info DumpInfo) (string, error) {
	if fr == nil {
		return "", nil
	}
	host := int32(info.Host)
	if info.Host < 0 {
		host = int32(fr.cfg.Host)
	}
	key := fmt.Sprintf("%s/%d/%d", info.Trigger, host, info.Peer)
	fr.mu.Lock()
	if fr.seen == nil {
		fr.seen = make(map[string]bool)
	}
	if fr.seen[key] || fr.written >= fr.cfg.MaxDumps {
		fr.suppressed++
		fr.mu.Unlock()
		return "", nil
	}
	fr.seen[key] = true
	fr.written++
	seq := fr.written
	runConfig, health, pool, clock := fr.runConfig, fr.health, fr.pool, fr.clock
	fr.mu.Unlock()

	round := int32(info.Round)
	phase := info.Phase
	if info.Round == RoundFromRecorder {
		rec := fr.trace.Recorder(int(host))
		round = rec.Round()
		phase = rec.LivePhase()
	}
	b := &Bundle{
		Version:       BundleVersion,
		Trigger:       info.Trigger,
		Host:          host,
		Peer:          int32(info.Peer),
		Round:         round,
		Label:         fr.trace.Label(),
		RunConfig:     runConfig,
		TraceID:       fr.id,
		WallUnixNano:  time.Now().UnixNano(),
		SessionNs:     fr.trace.Now(),
		Clock:         clock,
		Live:          fr.trace.Live(),
		LastCkptEpoch: fr.lastCkpt.Load(),
		RecentLogs:    fr.recentLogs(),
		Detail:        info.Detail,
	}
	if phase < NumPhases {
		b.Phase = phase.String()
	}
	if info.Cause != nil {
		b.Cause = info.Cause.Error()
	}
	events, dropped := fr.trace.Snapshot()
	if len(events) > fr.cfg.TailEvents {
		dropped += uint64(len(events) - fr.cfg.TailEvents)
		events = events[len(events)-fr.cfg.TailEvents:]
	}
	b.Events, b.Dropped = events, dropped
	buf := make([]byte, 1<<20)
	b.Stacks = string(buf[:runtime.Stack(buf, true)])
	if health != nil {
		b.Heartbeats = health.Snapshot()
	} else {
		b.Heartbeats = fr.trace.Heartbeats()
	}
	if pool != nil {
		b.PoolGets, b.PoolPuts = pool()
	}

	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return "", fmt.Errorf("trace: encode postmortem bundle: %w", err)
	}
	path := filepath.Join(fr.cfg.Dir, bundleFileName(int(host), info.Trigger, seq))
	if err := ckpt.AtomicWriteFile(path, data); err != nil {
		return "", fmt.Errorf("trace: write postmortem bundle: %w", err)
	}
	fr.dumps[triggerIndex(info.Trigger)].Add(1)
	return path, nil
}

// RoundFromRecorder, passed as DumpInfo.Round, asks Dump to read round and
// phase from the host's live recorder instead of the caller.
const RoundFromRecorder = -2

// bundleFileName is the canonical bundle name; doctor globs the prefix.
func bundleFileName(host int, tr Trigger, seq int) string {
	return fmt.Sprintf("postmortem-h%03d-%s-%02d.json", host, tr, seq)
}

// isBundleFileName reports whether name is a bundle file.
func isBundleFileName(name string) bool {
	return strings.HasPrefix(name, "postmortem-") && strings.HasSuffix(name, ".json")
}

// armed is the process-global flight recorder; see Arm.
var armed atomic.Pointer[FlightRecorder]

// Arm installs fr as the process's flight recorder — the instance failure
// paths in comm, dsys, and gluon dump through. Passing nil disarms.
func Arm(fr *FlightRecorder) { armed.Store(fr) }

// Armed returns the process's flight recorder, or nil when disarmed. The
// disarmed cost at a trigger site is this one atomic load.
func Armed() *FlightRecorder { return armed.Load() }

// Crash dumps a bundle through the armed recorder, if any. It is the one
// call trigger sites make; disarmed processes pay an atomic load and
// return. The bundle path is returned for logging ("" when disarmed or
// suppressed).
func Crash(info DumpInfo) string {
	fr := armed.Load()
	if fr == nil {
		return ""
	}
	path, err := fr.Dump(info)
	if err != nil {
		// A failing dump must not mask the original failure; leave a line on
		// stderr and move on.
		crashLogger.Error("postmortem dump failed", "err", err, "trigger", string(info.Trigger))
		return ""
	}
	return path
}

// crashLogger reports dump failures; sharing the slog handler keeps even
// these lines in other recorders' recent-log rings.
var crashLogger = NewLogger("gluon")
