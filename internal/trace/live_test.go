package trace

import (
	"bytes"
	"errors"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// emitLiveRound drives one recorder through a full BSP round shape the
// attribution engine understands: compute, sync (with one encode message
// inside), then the termination barrier.
func emitLiveRound(r *Recorder, round int32, base int64) {
	r.SetRound(round)
	r.Emit(Event{Start: base, Dur: 100, Phase: PhaseCompute, Peer: -1})
	r.Emit(Event{Start: base + 100, Dur: 60, Phase: PhaseSync, Peer: -1})
	r.Emit(Event{Start: base + 100, Dur: 40, Phase: PhaseEncode, Peer: (r.Host() + 1) % 4, Value: 64, Mode: 1, Lane: 1})
	r.Emit(Event{Start: base + 160, Dur: 40, Phase: PhaseBarrier, Peer: -1, Detail: "termination"})
}

// TestLiveWatcherMidRunAttach attaches a watcher to a collector mid-run and
// checks the protocol's core promise: the first update is a consistent
// snapshot of everything attributed so far, and later updates stream in
// incrementally as the run advances.
func TestLiveWatcherMidRunAttach(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	tr := New(Config{Capacity: 1 << 12, Label: "live-attach"})
	rec := tr.Recorder(0)
	// Rounds 0..4 before the watcher exists; rounds 0..3 are attributable
	// (round 4 stays open until the host moves past it).
	for r := int32(0); r <= 4; r++ {
		emitLiveRound(rec, r, int64(r)*1000)
	}
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: tr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	w, err := AttachWatcher(col.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	u, ok := <-w.Updates()
	if !ok {
		t.Fatalf("updates closed immediately: %v", w.Err())
	}
	if !u.Snapshot {
		t.Fatal("first update is not marked as the snapshot")
	}
	lastSeq := u.Seq

	// The pre-attach history must arrive — in the snapshot itself if the
	// shipper had flushed by then, otherwise in the next few updates.
	deadline := time.After(10 * time.Second)
	for len(u.Rounds) < 4 || u.Stats.MaxRound < 4 {
		select {
		case nu, ok := <-w.Updates():
			if !ok {
				t.Fatalf("updates closed while waiting for history: %v", w.Err())
			}
			if nu.Seq < lastSeq {
				t.Fatalf("seq went backwards: %d after %d", nu.Seq, lastSeq)
			}
			if nu.Snapshot {
				t.Fatal("snapshot flag on a non-first update")
			}
			lastSeq, u = nu.Seq, nu
		case <-deadline:
			t.Fatalf("no update with pre-attach history: %d rounds, max round %d", len(u.Rounds), u.Stats.MaxRound)
		}
	}
	if u.Rounds[0].Round != 0 || u.Rounds[len(u.Rounds)-1].Round < 3 {
		t.Fatalf("history rounds span %d..%d, want 0..3", u.Rounds[0].Round, u.Rounds[len(u.Rounds)-1].Round)
	}
	if u.Verdict.Rounds < 4 {
		t.Fatalf("verdict covers %d rounds, want >= 4", u.Verdict.Rounds)
	}
	if len(u.Sessions) != 1 || u.Sessions[0].State != "active" {
		t.Fatalf("sessions in update = %+v, want one active", u.Sessions)
	}

	// Advance the run: the already-attached watcher must see the new rounds
	// arrive incrementally.
	for r := int32(5); r <= 6; r++ {
		emitLiveRound(rec, r, int64(r)*1000)
	}
	for u.Stats.MaxRound < 6 || len(u.Rounds) == 0 || u.Rounds[len(u.Rounds)-1].Round < 5 {
		select {
		case nu, ok := <-w.Updates():
			if !ok {
				t.Fatalf("updates closed while waiting for progress: %v", w.Err())
			}
			u = nu
		case <-deadline:
			t.Fatalf("watcher never saw the run advance past round 4: max %d", u.Stats.MaxRound)
		}
	}
	if u.Snapshot {
		t.Fatal("incremental update carries the snapshot flag")
	}
}

// TestLiveSlowViewerDropped pins the bounded fan-out contract: a viewer that
// stops reading is dropped (connection closed, queue freed) while a healthy
// viewer and the shipper keep flowing.
func TestLiveSlowViewerDropped(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	col.SetViewerQueue(1) // one queued update is all the slack a viewer gets

	// Big per-update payloads (many hosts, full tail window) so the slow
	// viewer's socket buffers fill fast.
	tr := New(Config{Capacity: 1 << 12, Label: "live-slow"})
	for r := int32(0); r <= 40; r++ {
		for h := 0; h < 4; h++ {
			emitLiveRound(tr.Recorder(h), r, int64(r)*1000)
		}
	}
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: tr, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	// Healthy viewer: drains frames as fast as they come.
	healthy, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := writeFrame(healthy, sbWatch, nil); err != nil {
		t.Fatal(err)
	}
	var drained atomic.Int64
	go func() {
		for {
			if _, _, err := readFrame(healthy); err != nil {
				return
			}
			drained.Add(1)
		}
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("the healthy viewer to attach and flow", func() bool { return drained.Load() > 0 })

	// Slow viewer: registered through the same addViewer the sbWatch handler
	// uses, but over an unbuffered pipe whose far end never reads — its writer
	// goroutine blocks on the very first frame, so the bounded queue overflows
	// as soon as updates keep coming (a TCP conn behaves the same once the
	// kernel buffers fill; the pipe just removes the megabytes of slack).
	// Registration is synchronous, so the count is 2 the moment it returns;
	// the drop back to 1 can follow within one update tick.
	slowServer, slowClient := net.Pipe()
	defer slowClient.Close()
	if v := col.addViewer(slowServer); v == nil {
		t.Fatal("addViewer refused the slow viewer")
	}
	// The 1ms stats cadence kicks an update per flush; each is tens of KB, so
	// the non-reading viewer's queue overflows and it gets dropped.
	waitFor("the slow viewer to be dropped", func() bool { return col.Viewers() == 1 })

	// The drop closed the slow viewer's connection, not just its queue.
	slowClient.SetReadDeadline(time.Now().Add(5 * time.Second))
	junk := make([]byte, 64<<10)
	var readErr error
	for readErr == nil {
		_, readErr = slowClient.Read(junk) // drain the write in flight, then EOF
	}
	if errors.Is(readErr, os.ErrDeadlineExceeded) {
		t.Fatal("slow viewer's conn still open after drop")
	}

	// The healthy viewer keeps receiving after the drop.
	base := drained.Load()
	waitFor("the healthy viewer to keep receiving", func() bool { return drained.Load() > base })

	// And the shipper never stalled or errored on account of the viewer.
	if err := sh.Err(); err != nil {
		t.Fatalf("shipper hit an error: %v", err)
	}
	if err := sh.Close(); err != nil {
		t.Fatalf("shipper close: %v", err)
	}
	waitFor("the shipper's bye to land", func() bool {
		acc, done := col.Sessions()
		return acc == 1 && done == 1
	})
}

// TestLiveShipperDisconnect pins the satellite fix: a shipper connection that
// drops mid-run (no bye) leaves the session in a terminal "error" state with
// a reason — visible to SessionInfos, to attached viewers, and in the
// analyzer header — instead of stranding it "active" forever.
func TestLiveShipperDisconnect(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	tr := New(Config{Capacity: 1 << 10, Label: "live-drop"})
	rec := tr.Recorder(2)
	for r := int32(0); r <= 2; r++ {
		emitLiveRound(rec, r, int64(r)*1000)
	}
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: tr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("the hello to land", func() bool { acc, _ := col.Sessions(); return acc == 1 })
	waitFor("a batch to land", func() bool {
		for _, si := range col.SessionInfos() {
			if len(si.Hosts) > 0 {
				return true
			}
		}
		return false
	})

	// Kill the TCP conn out from under the session — the moral equivalent of
	// kill -9 on the host process. No bye will ever come.
	sh.conn.Close()
	waitFor("the session to reach its terminal state", func() bool {
		return col.SessionInfos()[0].State == "error"
	})
	si := col.SessionInfos()[0]
	if !strings.Contains(si.Error, "connection lost before bye") {
		t.Fatalf("session error = %q, want a connection-lost reason", si.Error)
	}
	if len(si.Hosts) == 0 || si.Hosts[0] != 2 {
		t.Fatalf("session hosts = %v, want [2]", si.Hosts)
	}

	// A viewer attaching now sees the disconnected session in its snapshot —
	// what gluon-top renders as DISCONNECTED.
	w, err := AttachWatcher(col.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := <-w.Updates()
	if !ok {
		t.Fatalf("no snapshot from watcher: %v", w.Err())
	}
	if len(u.Sessions) != 1 || u.Sessions[0].State != "error" {
		t.Fatalf("viewer sees sessions %+v, want one errored", u.Sessions)
	}
	w.Close()

	// The terminal state rides through Merged into the analyzer header.
	events, meta := col.Merged()
	if len(meta.Sessions) != 1 || meta.Sessions[0].State != "error" {
		t.Fatalf("meta.Sessions = %+v, want one errored", meta.Sessions)
	}
	var buf bytes.Buffer
	if err := SummarizeMeta(meta, events).WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DISCONNECTED") {
		t.Fatalf("analyzer header does not surface the disconnect:\n%s", buf.String())
	}
	if acc, done := col.Sessions(); acc != 1 || done != 0 {
		t.Fatalf("sessions = (%d, %d), want (1, 0): no bye means not completed", acc, done)
	}
}
