package trace

// Structured logging for the substrate (DESIGN.md §4.7). One vocabulary
// for console diagnostics and postmortem bundles: every CLI and every
// comm/dsys failure path logs through a *slog.Logger backed by this
// handler, which
//
//   - renders compact single-line records ("15:04:05.000 WARN gluon-run:
//     msg key=val ..."), hoisting the well-known host/round/phase attrs
//     into a bracketed position prefix ("[h2 r17 fold]") so a human can
//     read a failure cascade the way doctor orders it;
//   - tees every rendered line into the armed flight recorder's bounded
//     recent-log ring, so bundles carry the last console lines even when
//     the operator's terminal scrolled away.
//
// The handler holds no per-record allocations beyond the line buffer and
// is safe for concurrent use.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"
)

// Well-known attr keys the handler hoists into the position prefix.
const (
	LogKeyHost  = "host"
	LogKeyRound = "round"
	LogKeyPhase = "phase"
)

// LogHandler is a slog.Handler rendering compact single-line records and
// teeing them into the armed flight recorder.
type LogHandler struct {
	w         io.Writer
	mu        *sync.Mutex
	level     slog.Leveler
	component string
	attrs     []slog.Attr // pre-resolved WithAttrs accumulation
	groups    []string
}

// NewLogHandler creates a handler writing to w. component prefixes every
// line (conventionally the CLI or subsystem name); level nil means
// slog.LevelInfo.
func NewLogHandler(w io.Writer, component string, level slog.Leveler) *LogHandler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &LogHandler{w: w, mu: &sync.Mutex{}, level: level, component: component}
}

// NewLogger is the convenience constructor every CLI uses: a logger on
// stderr tagged with the component name.
func NewLogger(component string) *slog.Logger {
	return slog.New(NewLogHandler(os.Stderr, component, nil))
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// WithAttrs implements slog.Handler.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		nh.attrs = append(nh.attrs, h.qualify(a))
	}
	return &nh
}

// WithGroup implements slog.Handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

// qualify prefixes an attr's key with the open groups.
func (h *LogHandler) qualify(a slog.Attr) slog.Attr {
	if len(h.groups) > 0 {
		a.Key = strings.Join(h.groups, ".") + "." + a.Key
	}
	return a
}

// Handle implements slog.Handler: render, write, tee.
func (h *LogHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.Grow(128)
	if !r.Time.IsZero() {
		b.WriteString(r.Time.Format("15:04:05.000"))
		b.WriteByte(' ')
	}
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	if h.component != "" {
		b.WriteString(h.component)
		b.WriteString(": ")
	}

	// Collect attrs: handler-bound first, then record attrs; hoist the
	// well-known position keys.
	var host, round, phase string
	var rest []slog.Attr
	consider := func(a slog.Attr) {
		if a.Equal(slog.Attr{}) {
			return
		}
		switch a.Key {
		case LogKeyHost:
			host = a.Value.String()
		case LogKeyRound:
			round = a.Value.String()
		case LogKeyPhase:
			phase = a.Value.String()
		default:
			rest = append(rest, a)
		}
	}
	for _, a := range h.attrs {
		consider(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		consider(h.qualify(a))
		return true
	})
	if host != "" || round != "" || phase != "" {
		b.WriteByte('[')
		sep := ""
		if host != "" {
			fmt.Fprintf(&b, "h%s", host)
			sep = " "
		}
		if round != "" {
			fmt.Fprintf(&b, "%sr%s", sep, round)
			sep = " "
		}
		if phase != "" {
			b.WriteString(sep)
			b.WriteString(phase)
		}
		b.WriteString("] ")
	}
	b.WriteString(r.Message)
	for _, a := range rest {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		writeLogValue(&b, a.Value)
	}
	line := b.String()

	h.mu.Lock()
	_, err := fmt.Fprintln(h.w, line)
	h.mu.Unlock()
	Armed().appendLog(line)
	return err
}

// writeLogValue renders one attr value, quoting strings that contain
// whitespace so lines stay machine-splittable.
func writeLogValue(b *strings.Builder, v slog.Value) {
	v = v.Resolve()
	switch v.Kind() {
	case slog.KindString:
		s := v.String()
		if strings.ContainsAny(s, " \t\n\"=") {
			fmt.Fprintf(b, "%q", s)
		} else {
			b.WriteString(s)
		}
	case slog.KindDuration:
		b.WriteString(v.Duration().Round(time.Microsecond).String())
	default:
		s := v.String()
		if strings.ContainsAny(s, " \t\n\"=") {
			fmt.Fprintf(b, "%q", s)
		} else {
			b.WriteString(s)
		}
	}
}

// logWriter adapts a *slog.Logger to the io.Writer sinks that predate
// structured logging (the watchdog's report paragraph): every Write becomes
// one record at the given level, trailing newline stripped.
type logWriter struct {
	log   *slog.Logger
	level slog.Level
}

// LogWriter returns an io.Writer whose writes become records on log.
func LogWriter(log *slog.Logger, level slog.Level) io.Writer {
	return logWriter{log: log, level: level}
}

func (lw logWriter) Write(p []byte) (int, error) {
	lw.log.Log(context.Background(), lw.level, strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// LogDropped is the one shared dropped-events warning (satellite of
// DESIGN.md §4.7): every CLI previously phrased this differently, which
// meant an operator grepping for one wording missed the other. The line
// states both the consequence and the remedy.
func LogDropped(log *slog.Logger, dropped uint64) {
	if dropped == 0 || log == nil {
		return
	}
	log.Warn("trace ring overflowed; oldest events were overwritten — totals undercount the run",
		"dropped", dropped,
		"remedy", "raise trace.Config.Capacity (gluon-run/gluon-bench -trace keeps the default 1<<17 per host)")
}
