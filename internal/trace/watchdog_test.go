package trace

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSuspectHost(t *testing.T) {
	cases := []struct {
		name string
		hbs  []Heartbeat
		want int32
	}{
		{"empty", nil, -1},
		{
			// Host stuck in encode while the others wait for it.
			"waiters-are-victims",
			[]Heartbeat{
				{Host: 0, Round: 6, Phase: PhaseRecvWait},
				{Host: 1, Round: 6, Phase: PhaseEncode},
				{Host: 2, Round: 6, Phase: PhaseBarrier},
			},
			1,
		},
		{
			// A host a round behind is the straggler even if it is waiting.
			"min-round-first",
			[]Heartbeat{
				{Host: 0, Round: 7, Phase: PhaseRecvWait},
				{Host: 1, Round: 6, Phase: PhaseRecvWait},
				{Host: 2, Round: 7, Phase: PhaseCompute},
			},
			1,
		},
		{
			// Everyone waiting: the host that went quiet first.
			"oldest-beat-breaks-ties",
			[]Heartbeat{
				{Host: 0, Round: 3, Phase: PhaseRecvWait, BeatNs: 900},
				{Host: 1, Round: 3, Phase: PhaseBarrier, BeatNs: 100},
				{Host: 2, Round: 3, Phase: PhaseRecvWait, BeatNs: 500},
			},
			1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := SuspectHost(c.hbs).Host; got != c.want {
				t.Fatalf("suspect = %d, want %d", got, c.want)
			}
		})
	}
}

func TestHealthStaleUpdatesIgnored(t *testing.T) {
	h := NewHealth(nil)
	h.Update(Heartbeat{Host: 0, Round: 5, Phase: PhaseCompute, BeatNs: 100})
	h.Update(Heartbeat{Host: 0, Round: 3, Phase: PhaseEncode, BeatNs: 200}) // out-of-order gossip
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Round != 5 {
		t.Fatalf("stale round must not roll the slot back: %+v", snap)
	}
	h.Update(Heartbeat{Host: 0, Round: 5, Phase: PhaseRecvWait, BeatNs: 300})
	if got := h.Snapshot()[0].Phase; got != PhaseRecvWait {
		t.Fatalf("same-round newer beat should update, phase = %v", got)
	}
}

// TestWatchdogFlagsStall drives a synthetic cluster: fast rounds build the
// trailing median, then host 1 stops in encode while the others park in
// recvwait. The watchdog must name host 1 and its phase, then escalate.
func TestWatchdogFlagsStall(t *testing.T) {
	var clock atomic.Int64
	h := NewHealth(func() int64 { return clock.Load() })
	reports := make(chan *StallReport, 4)
	w := StartWatchdog(nil, h, WatchdogConfig{
		Factor:       4,
		MinRound:     10 * time.Millisecond,
		Poll:         time.Millisecond,
		StallTimeout: 20 * time.Millisecond,
		OnReport:     func(r *StallReport) { reports <- r },
	})
	defer w.Stop()

	beat := func(host, round int32, p Phase) {
		h.Update(Heartbeat{Host: host, Round: round, Phase: p, BeatNs: clock.Load()})
	}
	// Rounds 0..4 complete briskly (2ms of synthetic time each).
	for round := int32(0); round < 5; round++ {
		for host := int32(0); host < 3; host++ {
			beat(host, round, PhaseCompute)
		}
		for i := 0; i < 2; i++ {
			clock.Add(int64(time.Millisecond))
			time.Sleep(2 * time.Millisecond) // let the poller observe the round
		}
	}
	// Round 5: host 1 wedges in encode, hosts 0 and 2 wait on it.
	beat(0, 5, PhaseRecvWait)
	beat(1, 5, PhaseEncode)
	beat(2, 5, PhaseRecvWait)
	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		clock.Add(int64(5 * time.Millisecond))
		select {
		case r := <-reports:
			if r.Suspect != 1 || r.Phase != PhaseEncode {
				t.Fatalf("report names host %d phase %v, want host 1 phase encode", r.Suspect, r.Phase)
			}
			if r.Round != 5 {
				t.Fatalf("report round = %d, want 5", r.Round)
			}
			if r.Escalated {
				t.Fatal("first report must not be escalated")
			}
			if len(r.Stacks) == 0 || !strings.Contains(string(r.Stacks), "goroutine") {
				t.Fatal("report should carry a goroutine dump")
			}
			if r.Median <= 0 || r.Threshold < 4*r.Median {
				t.Fatalf("threshold %v should derive from median %v", r.Threshold, r.Median)
			}
			goto escalation
		case <-deadline:
			t.Fatal("watchdog never flagged the stall")
		default:
			time.Sleep(time.Millisecond)
		}
	}
escalation:
	deadline = time.After(5 * time.Second)
	for {
		clock.Add(int64(5 * time.Millisecond))
		select {
		case r := <-reports:
			if !r.Escalated {
				t.Fatalf("second report should be the escalation, got %+v", r)
			}
			err := &StallError{Report: r}
			if !strings.Contains(err.Error(), "suspect host 1") || !strings.Contains(err.Error(), `"encode"`) {
				t.Fatalf("StallError should name host and phase: %q", err.Error())
			}
			if len(w.Reports()) != 2 {
				t.Fatalf("Reports() = %d entries, want 2", len(w.Reports()))
			}
			return
		case <-deadline:
			t.Fatal("watchdog never escalated")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestWatchdogSuspendedNeverReports: a wedged-looking cluster inside a
// declared quiet window (checkpoint barrier, rejoin rendezvous) must not be
// flagged or escalated — suspension pauses stall tracking entirely, and
// resuming restarts the round timer from scratch instead of charging the
// suspended time to the current round.
func TestWatchdogSuspendedNeverReports(t *testing.T) {
	var clock atomic.Int64
	h := NewHealth(func() int64 { return clock.Load() })
	reports := make(chan *StallReport, 4)
	w := StartWatchdog(nil, h, WatchdogConfig{
		Factor:       4,
		MinRound:     10 * time.Millisecond,
		Poll:         time.Millisecond,
		StallTimeout: 20 * time.Millisecond,
		OnReport:     func(r *StallReport) { reports <- r },
	})
	defer w.Stop()

	beat := func(host, round int32, p Phase) {
		h.Update(Heartbeat{Host: host, Round: round, Phase: p, BeatNs: clock.Load()})
	}
	// Fast rounds build a small trailing median.
	for round := int32(0); round < 5; round++ {
		for host := int32(0); host < 3; host++ {
			beat(host, round, PhaseCompute)
		}
		clock.Add(int64(2 * time.Millisecond))
		time.Sleep(3 * time.Millisecond)
	}
	// Suspension nests: two overlapping windows (a checkpoint barrier on
	// one local host, a rendezvous on another).
	w.Suspend()
	w.Suspend()
	w.Resume()
	// The cluster now looks wedged for far longer than threshold+timeout.
	beat(0, 5, PhaseRecvWait)
	beat(1, 5, PhaseEncode)
	beat(2, 5, PhaseRecvWait)
	for i := 0; i < 40; i++ {
		clock.Add(int64(10 * time.Millisecond))
		time.Sleep(time.Millisecond)
	}
	select {
	case r := <-reports:
		t.Fatalf("suspended watchdog reported a stall: %+v", r)
	default:
	}
	// After a rollback the hosts gossip smaller rounds; Reset lets the
	// table accept them (Update ignores round regressions otherwise).
	h.Reset()
	w.Resume()
	beat(0, 2, PhaseCompute)
	if snap := h.Snapshot(); len(snap) != 1 || snap[0].Round != 2 {
		t.Fatalf("post-Reset rollback heartbeat not accepted: %+v", snap)
	}
	// Resumed and genuinely stalled: the watchdog must report again.
	beat(0, 2, PhaseRecvWait)
	beat(1, 2, PhaseEncode)
	beat(2, 2, PhaseRecvWait)
	deadline := time.After(5 * time.Second)
	for {
		clock.Add(int64(5 * time.Millisecond))
		select {
		case r := <-reports:
			if r.Suspect != 1 {
				t.Fatalf("post-resume report names host %d, want 1", r.Suspect)
			}
			return
		case <-deadline:
			t.Fatal("resumed watchdog never reported a real stall")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestWatchdogQuietOnProgress: rounds that keep advancing within the
// threshold never produce a report.
func TestWatchdogQuietOnProgress(t *testing.T) {
	var clock atomic.Int64
	h := NewHealth(func() int64 { return clock.Load() })
	w := StartWatchdog(nil, h, WatchdogConfig{Factor: 8, MinRound: 50 * time.Millisecond, Poll: time.Millisecond})
	for round := int32(0); round < 10; round++ {
		h.Update(Heartbeat{Host: 0, Round: round, Phase: PhaseCompute, BeatNs: clock.Load()})
		h.Update(Heartbeat{Host: 1, Round: round, Phase: PhaseSync, BeatNs: clock.Load()})
		clock.Add(int64(2 * time.Millisecond))
		time.Sleep(2 * time.Millisecond)
	}
	w.Stop()
	if n := len(w.Reports()); n != 0 {
		t.Fatalf("healthy cluster produced %d stall reports", n)
	}
}

func TestWatchdogTraceTail(t *testing.T) {
	tr := New(Config{Capacity: 64})
	r1 := tr.Recorder(1)
	r1.SetRound(2)
	r1.Emit(Event{Start: 10, Dur: 5, Phase: PhaseEncode, Peer: 0, Value: 99})
	tr.Recorder(0).Emit(Event{Start: 11, Dur: 5, Phase: PhaseFold, Peer: 1})

	var clock atomic.Int64
	h := NewHealth(func() int64 { return clock.Load() })
	reports := make(chan *StallReport, 1)
	w := StartWatchdog(tr, h, WatchdogConfig{MinRound: time.Millisecond, Poll: time.Millisecond, TraceTail: 8,
		OnReport: func(r *StallReport) {
			select {
			case reports <- r:
			default:
			}
		}})
	defer w.Stop()
	h.Update(Heartbeat{Host: 0, Round: 2, Phase: PhaseRecvWait})
	h.Update(Heartbeat{Host: 1, Round: 2, Phase: PhaseEncode})
	deadline := time.After(5 * time.Second)
	for {
		clock.Add(int64(time.Millisecond))
		select {
		case r := <-reports:
			if len(r.TraceTail) != 1 || r.TraceTail[0].Host != 1 || r.TraceTail[0].Value != 99 {
				t.Fatalf("trace tail should hold the suspect's events only: %+v", r.TraceTail)
			}
			return
		case <-deadline:
			t.Fatal("no report")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
