package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSidebandRoundTrip ships a two-host trace to a collector and checks the
// merged timeline carries every event, the exact byte tags, the declared
// clock table, and the shipped heartbeats.
func TestSidebandRoundTrip(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	tr := New(Config{Capacity: 1 << 10, Label: "sideband-rt"})
	for host := 0; host < 2; host++ {
		r := tr.Recorder(host)
		r.SetRound(0)
		r.Emit(Event{Start: r.Now(), Dur: 10, Phase: PhaseEncode, Peer: int32(1 - host), Value: 100, Meta: 7, Mode: 1})
	}
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: tr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Clock().Samples == 0 {
		t.Fatal("shipper measured no clock samples")
	}
	// Emit more after the handshake so the periodic flush path runs too.
	for host := 0; host < 2; host++ {
		r := tr.Recorder(host)
		r.SetRound(1)
		r.SetLivePhase(PhaseCompute)
		r.Emit(Event{Start: r.Now(), Dur: 10, Phase: PhaseEncode, Peer: int32(1 - host), Value: 50, GID: 3, Mode: 3})
	}
	time.Sleep(25 * time.Millisecond) // let at least one ticker flush happen
	if err := sh.Close(); err != nil {
		t.Fatalf("shipper close: %v", err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if errs := col.Errs(); len(errs) != 0 {
		t.Fatalf("collector errors: %v", errs)
	}
	if acc, done := col.Sessions(); acc != 1 || done != 1 {
		t.Fatalf("sessions = (%d accepted, %d completed), want (1, 1)", acc, done)
	}

	events, meta := col.Merged()
	if len(events) != 4 {
		t.Fatalf("merged %d events, want 4", len(events))
	}
	var value, metaB, gid uint64
	for _, e := range events {
		value, metaB, gid = value+e.Value, metaB+e.Meta, gid+e.GID
	}
	if value != 300 || metaB != 14 || gid != 6 {
		t.Fatalf("merged byte tags = %d/%d/%d, want 300/14/6", value, metaB, gid)
	}
	if meta.Label != "sideband-rt" {
		t.Fatalf("merged label = %q", meta.Label)
	}
	if len(meta.Clocks) != 2 {
		t.Fatalf("clock table has %d hosts, want 2: %+v", len(meta.Clocks), meta.Clocks)
	}
	for _, ci := range meta.Clocks {
		if ci.Samples == 0 {
			t.Fatalf("clock entry without samples: %+v", ci)
		}
	}
	// Heartbeats made it into the collector's health table.
	hbs := col.Health().Snapshot()
	if len(hbs) != 2 {
		t.Fatalf("health table has %d hosts, want 2", len(hbs))
	}
	for _, hb := range hbs {
		if hb.Round != 1 {
			t.Fatalf("host %d heartbeat round = %d, want 1", hb.Host, hb.Round)
		}
	}
	// Ordering holds on the merged axis.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("merged events out of order")
		}
	}
}

// TestSidebandAppliesOffsets: the merge must rebase remote timestamps by
// exactly the declared offset.
func TestSidebandAppliesOffsets(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	tr := New(Config{Capacity: 64})
	tr.Recorder(0).Emit(Event{Start: 1000, Dur: 1, Phase: PhaseCompute})
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: tr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	col.Close()
	events, meta := col.Merged()
	if len(events) != 1 || len(meta.Clocks) != 1 {
		t.Fatalf("got %d events, %d clocks", len(events), len(meta.Clocks))
	}
	if want := 1000 + meta.Clocks[0].OffsetNs; events[0].Start != want {
		t.Fatalf("merged start = %d, want %d (1000 + declared offset %d)",
			events[0].Start, want, meta.Clocks[0].OffsetNs)
	}
}

// TestSidebandLocalTrace: the embedded-collector mode merges the collector
// process's own events without any clock correction.
func TestSidebandLocalTrace(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	local := New(Config{Capacity: 64, Label: "local"})
	col.SetLocal(local)
	local.Recorder(0).Emit(Event{Start: 500, Dur: 1, Phase: PhaseCompute})

	remote := New(Config{Capacity: 64})
	remote.Recorder(1).Emit(Event{Start: 600, Dur: 1, Phase: PhaseCompute})
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: remote, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sh.Close()
	col.Close()
	events, meta := col.Merged()
	if len(events) != 2 {
		t.Fatalf("merged %d events, want 2", len(events))
	}
	var sawLocal bool
	for _, e := range events {
		if e.Host == 0 {
			sawLocal = true
			if e.Start != 500 {
				t.Fatalf("local event rebased to %d; must stay on the reference axis", e.Start)
			}
		}
	}
	if !sawLocal {
		t.Fatal("local event missing from merge")
	}
	if meta.Label != "local" {
		t.Fatalf("label = %q, want the local trace's", meta.Label)
	}
}

func TestSidebandFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, sbBatch, []byte(`{"host":3}`)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(&buf)
	if err != nil || typ != sbBatch || string(body) != `{"host":3}` {
		t.Fatalf("round trip = (%d, %q, %v)", typ, body, err)
	}
	// Zero-length and oversized frames are rejected, not allocated.
	if _, _, err := readFrame(strings.NewReader("\x00\x00\x00\x00")); err == nil {
		t.Fatal("zero-length frame should error")
	}
	if _, _, err := readFrame(strings.NewReader("\xff\xff\xff\xff")); err == nil {
		t.Fatal("oversized frame should error")
	}
	// Truncated payload errors instead of hanging.
	if _, _, err := readFrame(strings.NewReader("\x05\x00\x00\x00\x04ab")); err == nil {
		t.Fatal("truncated frame should error")
	}
}

// TestShipperMissedCounts: a ring smaller than the emission burst reports
// the overwritten prefix as missed, which the collector folds into dropped.
func TestShipperMissedCounts(t *testing.T) {
	col, err := ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	tr := New(Config{Capacity: 8})
	r := tr.Recorder(0)
	for i := 0; i < 20; i++ { // 12 events overwritten before the first drain
		r.Emit(Event{Start: int64(i), Dur: 1, Phase: PhaseCompute})
	}
	sh, err := StartShipper(ShipperConfig{Addr: col.Addr(), Trace: tr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sh.Close()
	col.Close()
	events, meta := col.Merged()
	if len(events) != 8 {
		t.Fatalf("merged %d events, want the 8 ring survivors", len(events))
	}
	// Dropped counts the wrap both via batch.Missed and the shipped
	// LiveStats rollup; it must at least cover the 12 lost events.
	if meta.Dropped < 12 {
		t.Fatalf("meta.Dropped = %d, want >= 12", meta.Dropped)
	}
}
