package trace

// Collection sideband. A multi-process cluster has one Trace per OS process,
// each on its own clock, each invisible to the others — so the per-round
// breakdowns the analyzer produces for in-process runs simply don't exist
// for the deployment mode the TCP transport was built for. The sideband
// fixes that: every process runs a Shipper that drains its Trace
// incrementally (ring cursors, so a flush only carries what's new) to a
// Collector — embedded in the host-0 process or standalone behind
// `gluon-trace -serve` — over a dedicated length-prefixed TCP stream,
// separate from the substrate's data plane so observability never competes
// with sync traffic for a transport mailbox.
//
// Wire format (DESIGN.md §4.4): every frame is
//
//	[4B little-endian length n] [1B type] [n-1 bytes payload]
//
// with types
//
//	sbPing  (2): 8B LE t0, client clock — clock probe request
//	sbPong  (3): 24B LE t0,t1,t2 — t0 echoed; t1 recv, t2 send on collector clock
//	sbHello (1): JSON shipperHello — label + the client's measured ClockInfo
//	sbBatch (4): JSON HostBatch — one host's new events since the last flush
//	sbStats (5): JSON statsFrame — LiveStats rollup + per-host heartbeats
//	sbBye   (6): empty — orderly end of session
//	sbWatch (7): empty — the connection is a viewer, not a shipper (live.go)
//	sbUpdate(8): JSON ViewUpdate — collector→viewer dashboard push (live.go)
//
// A shipper session is: pings (clock probes, answered statelessly), hello,
// then any interleaving of batch/stats frames, then bye. The client measures
// the collector-minus-client clock offset from the minimum-RTT probe
// (clock.go) and declares it in the hello; the collector rebases that
// session's event timestamps and heartbeats by the declared offset when
// merging, so spans from different processes land on one time axis within
// ±uncertainty. A viewer session (gluon-top) is one sbWatch frame, then
// sbUpdate pushes from the collector until either side closes (live.go).
//
// Every shipper session ends in a terminal state: "done" after an orderly
// bye, "error" when the connection drops or a frame is malformed mid-run —
// so a kill -9'd host shows up as a disconnected session with a reason, not
// a silently frozen one. The states ride in Meta.Sessions through exports
// and the analyzer header.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

const (
	sbHello  byte = 1
	sbPing   byte = 2
	sbPong   byte = 3
	sbBatch  byte = 4
	sbStats  byte = 5
	sbBye    byte = 6
	sbWatch  byte = 7
	sbUpdate byte = 8
)

// maxSidebandFrame bounds a single frame; a flush larger than this is split
// into per-host batches well below it, so the limit only rejects corruption.
const maxSidebandFrame = 256 << 20

// writeFrame writes one [len][type][payload] frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxSidebandFrame {
		return 0, nil, fmt.Errorf("trace: sideband frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// shipperHello opens a session after the clock probes.
type shipperHello struct {
	Label string    `json:"label,omitempty"`
	Clock ClockInfo `json:"clock"`
}

// statsFrame is the periodic rollup a shipper sends alongside event batches.
type statsFrame struct {
	Stats      LiveStats   `json:"stats"`
	Heartbeats []Heartbeat `json:"heartbeats,omitempty"`
}

// ShipperConfig parameterizes StartShipper.
type ShipperConfig struct {
	// Addr is the collector's TCP address.
	Addr string
	// Trace is the local session to drain. Must be non-nil.
	Trace *Trace
	// Interval between incremental flushes (default 500ms).
	Interval time.Duration
	// Probes is the number of clock-offset ping-pongs (default 8).
	Probes int
	// DialTimeout bounds the initial connect (default 5s).
	DialTimeout time.Duration
}

// Shipper streams one process's Trace to a collector: clock handshake and
// hello at start, an incremental flush every Interval, and a final drain plus
// bye on Close.
type Shipper struct {
	tr    *Trace
	conn  net.Conn
	clock ClockInfo

	cur  Cursor
	stop chan struct{}
	done chan struct{}

	mu  sync.Mutex
	err error
}

// StartShipper dials the collector, runs the clock handshake, announces the
// session, and begins periodic flushes. The returned Shipper must be Closed
// to drain the tail of the trace.
func StartShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("trace: shipper needs a trace")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("trace: dialing collector %s: %w", cfg.Addr, err)
	}
	s := &Shipper{tr: cfg.Trace, conn: conn, stop: make(chan struct{}), done: make(chan struct{})}
	clock, err := EstimateOffset(cfg.Probes, func() (t0, t1, t2, t3 int64, err error) {
		var ping [8]byte
		t0 = s.tr.Now()
		binary.LittleEndian.PutUint64(ping[:], uint64(t0))
		if err = writeFrame(conn, sbPing, ping[:]); err != nil {
			return
		}
		typ, body, rerr := readFrame(conn)
		t3 = s.tr.Now()
		if rerr != nil {
			err = rerr
			return
		}
		if typ != sbPong || len(body) != 24 {
			err = fmt.Errorf("trace: bad pong frame (type %d, %d bytes)", typ, len(body))
			return
		}
		if echo := int64(binary.LittleEndian.Uint64(body[0:8])); echo != t0 {
			err = fmt.Errorf("trace: pong echoes t0=%d, want %d", echo, t0)
			return
		}
		t1 = int64(binary.LittleEndian.Uint64(body[8:16]))
		t2 = int64(binary.LittleEndian.Uint64(body[16:24]))
		return
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	s.clock = clock
	hello, err := json.Marshal(shipperHello{Label: cfg.Trace.Label(), Clock: clock})
	if err == nil {
		err = writeFrame(conn, sbHello, hello)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("trace: shipper hello: %w", err)
	}
	go s.run(cfg.Interval)
	return s, nil
}

// Clock returns the measured collector-minus-local clock offset.
func (s *Shipper) Clock() ClockInfo { return s.clock }

func (s *Shipper) run(interval time.Duration) {
	defer close(s.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if err := s.flush(); err != nil {
				s.setErr(err)
				return
			}
		}
	}
}

// flush ships everything emitted since the previous flush plus a fresh
// rollup/heartbeat frame.
func (s *Shipper) flush() error {
	for _, b := range s.tr.SnapshotNew(&s.cur) {
		body, err := json.Marshal(&b)
		if err != nil {
			return err
		}
		if err := writeFrame(s.conn, sbBatch, body); err != nil {
			return err
		}
	}
	body, err := json.Marshal(&statsFrame{Stats: s.tr.Live(), Heartbeats: s.tr.Heartbeats()})
	if err != nil {
		return err
	}
	return writeFrame(s.conn, sbStats, body)
}

func (s *Shipper) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the first flush error, if any.
func (s *Shipper) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the flush loop, drains the trace tail, sends bye, and closes
// the connection. It returns the first error the session hit.
func (s *Shipper) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	if s.Err() == nil {
		if err := s.flush(); err != nil {
			s.setErr(err)
		} else if err := writeFrame(s.conn, sbBye, nil); err != nil {
			s.setErr(err)
		}
	}
	if err := s.conn.Close(); err != nil && s.Err() == nil {
		s.setErr(err)
	}
	return s.Err()
}

// Collector accepts sideband sessions and accumulates their events,
// rollups, and heartbeats into one cluster-wide view. A process that also
// records locally (the embedded host-0 collector) registers its own Trace
// with SetLocal; local events need no clock correction because the collector
// answers probes on that same session clock.
type Collector struct {
	ln    net.Listener
	local *Trace
	epoch time.Time // probe clock when no local trace is set

	wg sync.WaitGroup

	mu     sync.Mutex
	events []Event
	clocks map[int32]ClockInfo // by host, offset applied at merge
	sess   []*sbSession        // shipper sessions in hello order
	health *Health
	label  string
	missed uint64
	errs   []error

	// Live plane (live.go): incremental attribution + viewer fan-out.
	builder   *CriticalBuilder
	localCur  Cursor
	viewers   map[*sbViewer]struct{}
	viewerCap int
	seq       int64
	stop      chan struct{}
	stopOnce  sync.Once
	loopOnce  sync.Once
	kick      chan struct{}
}

// sbSession is one shipper's lifecycle record, created at hello.
type sbSession struct {
	id     int
	addr   string
	label  string
	hosts  map[int32]struct{}
	state  string // "active", "done", "error"
	errMsg string
	stats  LiveStats
	lastNs int64 // collector clock at the last frame received
}

// SessionInfo is the exported view of a shipper session's state; it rides in
// Meta.Sessions and in live ViewUpdates so the analyzer and gluon-top can
// tell a finished host from a disconnected one.
type SessionInfo struct {
	ID    int     `json:"id"`
	Addr  string  `json:"addr,omitempty"`
	Label string  `json:"label,omitempty"`
	Hosts []int32 `json:"hosts,omitempty"`
	// State is "active", "done" (orderly bye), or "error" (conn dropped or
	// malformed frame mid-run); Error carries the reason for "error".
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// LastNs is the collector clock when the session's last frame arrived.
	LastNs int64 `json:"last_ns,omitempty"`
}

// NewCollector creates a collector that is not yet listening; combine with
// Serve, or use ListenAndCollect.
func NewCollector() *Collector {
	c := &Collector{
		epoch:     time.Now(),
		clocks:    make(map[int32]ClockInfo),
		builder:   NewCriticalBuilder(),
		viewers:   make(map[*sbViewer]struct{}),
		viewerCap: defaultViewerQueue,
		stop:      make(chan struct{}),
		kick:      make(chan struct{}, 1),
	}
	c.health = NewHealth(c.now)
	return c
}

// ListenAndCollect starts a collector on addr (e.g. ":9123" or
// "127.0.0.1:0") and begins accepting sessions in the background.
func ListenAndCollect(addr string) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: collector listen %s: %w", addr, err)
	}
	c := NewCollector()
	c.ln = ln
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.Serve(ln)
	}()
	return c, nil
}

// SetLocal registers the collector process's own Trace: its events join the
// merge uncorrected and its clock becomes the reference the probes answer
// with.
func (c *Collector) SetLocal(tr *Trace) {
	c.mu.Lock()
	c.local = tr
	if tr != nil && c.label == "" {
		c.label = tr.Label()
	}
	c.mu.Unlock()
}

// now is the collector's reference clock: the local trace's session clock
// when one is registered, its own epoch otherwise.
func (c *Collector) now() int64 {
	c.mu.Lock()
	tr := c.local
	c.mu.Unlock()
	if tr != nil {
		return tr.Now()
	}
	return int64(time.Since(c.epoch))
}

// Addr returns the listening address ("" before Serve/ListenAndCollect).
func (c *Collector) Addr() string {
	c.mu.Lock()
	ln := c.ln
	c.mu.Unlock()
	if ln == nil {
		return ""
	}
	return ln.Addr().String()
}

// Serve accepts sessions until the listener is closed.
func (c *Collector) Serve(ln net.Listener) {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	// The live plane runs for the listener's whole life so the attribution
	// engine sees local events even before any viewer attaches.
	c.loopOnce.Do(func() {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.updateLoop()
		}()
	})
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serveSession(conn)
		}()
	}
}

// serveSession runs one connection to completion — a shipper's session, or
// a viewer's subscription once it sends sbWatch.
func (c *Collector) serveSession(conn net.Conn) {
	defer conn.Close()
	var clock ClockInfo
	var sess *sbSession
	haveClock := false
	sawBye := false
	var viewer *sbViewer
	// fail marks the session errored with a reason; the record is the
	// terminal state gluon-top renders as "disconnected" and the analyzer
	// surfaces in its header.
	fail := func(reason string) {
		if sess == nil {
			return
		}
		c.mu.Lock()
		if sess.state == "active" {
			sess.state = "error"
			sess.errMsg = reason
		}
		c.mu.Unlock()
		c.kickLive()
	}
	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			if viewer != nil {
				c.dropViewer(viewer)
				return
			}
			if !sawBye {
				fail(fmt.Sprintf("connection lost before bye: %v", err))
				if err != io.EOF {
					c.addErr(fmt.Errorf("trace: sideband session %s: %w", conn.RemoteAddr(), err))
				}
			}
			break
		}
		if sess != nil {
			now := c.now() // before taking c.mu: now() locks it too
			c.mu.Lock()
			sess.lastNs = now
			c.mu.Unlock()
		}
		switch typ {
		case sbPing:
			if len(body) != 8 {
				c.addErr(fmt.Errorf("trace: bad ping frame (%d bytes)", len(body)))
				fail("malformed ping frame")
				return
			}
			t1 := c.now()
			var pong [24]byte
			copy(pong[0:8], body)
			binary.LittleEndian.PutUint64(pong[8:16], uint64(t1))
			binary.LittleEndian.PutUint64(pong[16:24], uint64(c.now()))
			if err := writeFrame(conn, sbPong, pong[:]); err != nil {
				c.addErr(err)
				fail("pong write failed")
				return
			}
		case sbHello:
			var h shipperHello
			if err := json.Unmarshal(body, &h); err != nil {
				c.addErr(fmt.Errorf("trace: bad hello: %w", err))
				return
			}
			// The client measured collector-minus-client; adding that offset
			// to client timestamps rebases them onto the collector clock.
			clock, haveClock = h.Clock, true
			now := c.now()
			c.mu.Lock()
			if c.label == "" {
				c.label = h.Label
			}
			sess = &sbSession{
				id:     len(c.sess),
				addr:   conn.RemoteAddr().String(),
				label:  h.Label,
				hosts:  make(map[int32]struct{}),
				state:  "active",
				lastNs: now,
			}
			c.sess = append(c.sess, sess)
			c.mu.Unlock()
		case sbBatch:
			var b HostBatch
			if err := json.Unmarshal(body, &b); err != nil {
				c.addErr(fmt.Errorf("trace: bad batch: %w", err))
				fail("malformed batch frame")
				return
			}
			c.mu.Lock()
			c.events = append(c.events, b.Events...)
			c.missed += b.Missed
			if haveClock {
				ci := clock
				ci.Host = b.Host
				c.clocks[b.Host] = ci
			}
			if sess != nil {
				sess.hosts[b.Host] = struct{}{}
			}
			c.mu.Unlock()
			// Feed the live attribution engine on the collector's time axis.
			// Ingest reads e.Start+offset without mutating, so the raw copy
			// kept for Merged() is untouched.
			c.builder.SetHostClock(b.Host, clock.UncertaintyNs)
			c.builder.Ingest(b.Events, clock.OffsetNs)
		case sbStats:
			var f statsFrame
			if err := json.Unmarshal(body, &f); err != nil {
				c.addErr(fmt.Errorf("trace: bad stats: %w", err))
				fail("malformed stats frame")
				return
			}
			c.mu.Lock()
			if sess != nil {
				sess.stats = f.Stats
			}
			c.mu.Unlock()
			for _, hb := range f.Heartbeats {
				if haveClock {
					hb.BeatNs += clock.OffsetNs
					if ci, ok := c.clocks[hb.Host]; !ok || ci.Samples == 0 {
						ci = clock
						ci.Host = hb.Host
						c.mu.Lock()
						c.clocks[hb.Host] = ci
						c.mu.Unlock()
					}
				}
				c.health.Update(hb)
			}
			c.kickLive()
		case sbBye:
			sawBye = true
			c.mu.Lock()
			if sess != nil {
				sess.state = "done"
			}
			c.mu.Unlock()
			c.kickLive()
			return
		case sbWatch:
			if sess != nil {
				c.addErr(fmt.Errorf("trace: sideband session %s sent watch after hello", conn.RemoteAddr()))
				fail("watch frame on shipper session")
				return
			}
			// The conn is a viewer: register it, push a snapshot, and keep
			// reading only to notice when it goes away.
			viewer = c.addViewer(conn)
			if viewer == nil {
				return // collector shutting down
			}
		default:
			c.addErr(fmt.Errorf("trace: unknown sideband frame type %d", typ))
			fail(fmt.Sprintf("unknown frame type %d", typ))
			return
		}
	}
}

func (c *Collector) addErr(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
}

// Errs returns the session errors observed so far.
func (c *Collector) Errs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// Sessions returns (announced, cleanly completed) shipper session counts.
// A session is counted when its hello arrives — viewer subscriptions
// (gluon-top) never count — and completes on an orderly bye.
func (c *Collector) Sessions() (accepted, completed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.sess {
		if s.state == "done" {
			completed++
		}
	}
	return len(c.sess), completed
}

// SessionInfos returns every shipper session's lifecycle record, in arrival
// order. Sessions in state "error" carry the disconnect reason.
func (c *Collector) SessionInfos() []SessionInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionInfosLocked()
}

func (c *Collector) sessionInfosLocked() []SessionInfo {
	out := make([]SessionInfo, 0, len(c.sess))
	for _, s := range c.sess {
		si := SessionInfo{
			ID: s.id, Addr: s.addr, Label: s.label,
			State: s.state, Error: s.errMsg, LastNs: s.lastNs,
		}
		for h := range s.hosts {
			si.Hosts = append(si.Hosts, h)
		}
		sort.Slice(si.Hosts, func(i, j int) bool { return si.Hosts[i] < si.Hosts[j] })
		out = append(out, si)
	}
	return out
}

// Health returns the cluster heartbeat table fed by shipped stats frames
// (remote hosts only; register local hosts' heartbeats separately if the
// collector process also runs hosts).
func (c *Collector) Health() *Health { return c.health }

// Close stops accepting, detaches every live viewer, and waits for in-flight
// sessions to finish. Call after the shippers have Closed (each Close drains
// and says bye).
func (c *Collector) Close() error {
	c.mu.Lock()
	ln := c.ln
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	c.stopOnce.Do(func() { close(c.stop) })
	c.dropAllViewers()
	c.wg.Wait()
	return nil
}

// Merged returns the cluster-wide timeline: local events (if a local trace
// is registered) plus every shipped batch, remote timestamps rebased by the
// declared per-session clock offsets, sorted on the collector time axis.
// Meta carries the label, the cluster-wide dropped/missed total, and the
// per-host clock table.
func (c *Collector) Merged() ([]Event, Meta) {
	c.mu.Lock()
	local := c.local
	c.mu.Unlock()
	var localEvents []Event
	var localDropped uint64
	if local != nil {
		localEvents, localDropped = local.Snapshot()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	events := make([]Event, 0, len(localEvents)+len(c.events))
	events = append(events, c.events...)
	offsets := make(map[int32]int64, len(c.clocks))
	clocks := make([]ClockInfo, 0, len(c.clocks))
	for h, ci := range c.clocks {
		offsets[h] = ci.OffsetNs
		clocks = append(clocks, ci)
	}
	AlignEvents(events, offsets)
	// Local events are already on the reference axis; merge after alignment.
	events = append(events, localEvents...)
	sortEventsByStart(events)
	for i := 1; i < len(clocks); i++ {
		for j := i; j > 0 && clocks[j-1].Host > clocks[j].Host; j-- {
			clocks[j-1], clocks[j] = clocks[j], clocks[j-1]
		}
	}
	dropped := localDropped + c.missed
	for _, s := range c.sess {
		dropped += s.stats.Dropped
	}
	return events, Meta{Label: c.label, Dropped: dropped, Clocks: clocks, Sessions: c.sessionInfosLocked()}
}

// WriteFile exports the merged cluster timeline, format by extension as in
// Trace.WriteFile.
func (c *Collector) WriteFile(path string) error {
	events, meta := c.Merged()
	return WriteFileMeta(path, meta, events)
}
