package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Prometheus text exposition of the live rollup, served by the metrics
// endpoint next to the JSON view so a standard scraper can chart a run
// without a sidecar translator. Only counters and gauges derived from the
// atomic rollup — nothing here touches the event rings.

// WritePrometheus renders s in the Prometheus text exposition format
// (version 0.0.4).
func WritePrometheus(w io.Writer, s *LiveStats) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }

	p("# HELP gluon_trace_events_total Trace events recorded this session.\n")
	p("# TYPE gluon_trace_events_total counter\n")
	p("gluon_trace_events_total %d\n", s.Events)

	p("# HELP gluon_trace_dropped_total Trace events lost to ring overwrites.\n")
	p("# TYPE gluon_trace_dropped_total counter\n")
	p("gluon_trace_dropped_total %d\n", s.Dropped)

	p("# HELP gluon_round Highest BSP round observed (-1 before the first round).\n")
	p("# TYPE gluon_round gauge\n")
	p("gluon_round %d\n", s.MaxRound)

	p("# HELP gluon_sync_messages_total Sync messages encoded (one per peer per field sync).\n")
	p("# TYPE gluon_sync_messages_total counter\n")
	p("gluon_sync_messages_total %d\n", s.Messages)

	p("# HELP gluon_sync_bytes_total Post-compression sync payload bytes by kind.\n")
	p("# TYPE gluon_sync_bytes_total counter\n")
	p("gluon_sync_bytes_total{kind=\"value\"} %d\n", s.ValueBytes)
	p("gluon_sync_bytes_total{kind=\"metadata\"} %d\n", s.MetaBytes)
	p("gluon_sync_bytes_total{kind=\"gid\"} %d\n", s.GIDBytes)

	p("# HELP gluon_compress_messages_total Sync messages by compression outcome.\n")
	p("# TYPE gluon_compress_messages_total counter\n")
	p("gluon_compress_messages_total{outcome=\"compressed\"} %d\n", s.Compressed)
	p("gluon_compress_messages_total{outcome=\"skipped\"} %d\n", s.CompressSkipped)

	p("# HELP gluon_compression_saved_bytes_total Wire bytes removed by the DEFLATE wrapper.\n")
	p("# TYPE gluon_compression_saved_bytes_total counter\n")
	p("gluon_compression_saved_bytes_total %d\n", s.CompressionSaved)

	var faults uint64
	if ph, ok := s.Phases[PhaseFault.String()]; ok {
		faults = ph.Count
	}
	p("# HELP gluon_faults_total Fault events (poisonings, injected faults, dead hosts).\n")
	p("# TYPE gluon_faults_total counter\n")
	p("gluon_faults_total %d\n", faults)

	p("# HELP gluon_ckpt_writes_total Completed checkpoint writes.\n")
	p("# TYPE gluon_ckpt_writes_total counter\n")
	p("gluon_ckpt_writes_total %d\n", s.CkptWrites)

	p("# HELP gluon_ckpt_bytes_total Checkpoint bytes persisted to disk.\n")
	p("# TYPE gluon_ckpt_bytes_total counter\n")
	p("gluon_ckpt_bytes_total %d\n", s.CkptBytes)

	p("# HELP gluon_ckpt_errors_total Failed checkpoint writes.\n")
	p("# TYPE gluon_ckpt_errors_total counter\n")
	p("gluon_ckpt_errors_total %d\n", s.CkptErrors)

	p("# HELP gluon_ckpt_restores_total Restores performed from checkpoint.\n")
	p("# TYPE gluon_ckpt_restores_total counter\n")
	p("gluon_ckpt_restores_total %d\n", s.CkptRestores)

	p("# HELP gluon_phase_events_total Trace events by phase.\n")
	p("# TYPE gluon_phase_events_total counter\n")
	p("# HELP gluon_phase_duration_seconds_total Time spent in each phase, summed over hosts.\n")
	p("# TYPE gluon_phase_duration_seconds_total counter\n")
	for _, name := range sortedKeys(s.Phases) {
		ph := s.Phases[name]
		p("gluon_phase_events_total{phase=%q} %d\n", name, ph.Count)
		p("gluon_phase_duration_seconds_total{phase=%q} %.9f\n", name, float64(ph.DurNs)/1e9)
	}

	p("# HELP gluon_encode_mode_total Sync messages by wire encoding mode.\n")
	p("# TYPE gluon_encode_mode_total counter\n")
	for _, name := range sortedKeys(s.Modes) {
		p("gluon_encode_mode_total{mode=%q} %d\n", name, s.Modes[name])
	}
	return bw.Flush()
}

// sortedKeys returns a map's keys in lexical order so scrapes are stable.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
