package trace

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
)

// Prometheus text exposition of the live rollup, served by the metrics
// endpoint next to the JSON view so a standard scraper can chart a run
// without a sidecar translator. Only counters and gauges derived from the
// atomic rollup — nothing here touches the event rings.

// WritePrometheus renders s in the Prometheus text exposition format
// (version 0.0.4).
func WritePrometheus(w io.Writer, s *LiveStats) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }

	p("# HELP gluon_build_info Build metadata as constant-1 labels.\n")
	p("# TYPE gluon_build_info gauge\n")
	p("gluon_build_info{version=%q,goversion=%q} 1\n", buildVersion(), runtime.Version())

	p("# HELP gluon_trace_events_total Trace events recorded this session.\n")
	p("# TYPE gluon_trace_events_total counter\n")
	p("gluon_trace_events_total %d\n", s.Events)

	p("# HELP gluon_trace_dropped_total Trace events lost to ring overwrites.\n")
	p("# TYPE gluon_trace_dropped_total counter\n")
	p("gluon_trace_dropped_total %d\n", s.Dropped)

	p("# HELP gluon_round Highest BSP round observed (-1 before the first round).\n")
	p("# TYPE gluon_round gauge\n")
	p("gluon_round %d\n", s.MaxRound)

	p("# HELP gluon_sync_messages_total Sync messages encoded (one per peer per field sync).\n")
	p("# TYPE gluon_sync_messages_total counter\n")
	p("gluon_sync_messages_total %d\n", s.Messages)

	p("# HELP gluon_sync_bytes_total Post-compression sync payload bytes by kind.\n")
	p("# TYPE gluon_sync_bytes_total counter\n")
	p("gluon_sync_bytes_total{kind=\"value\"} %d\n", s.ValueBytes)
	p("gluon_sync_bytes_total{kind=\"metadata\"} %d\n", s.MetaBytes)
	p("gluon_sync_bytes_total{kind=\"gid\"} %d\n", s.GIDBytes)

	p("# HELP gluon_compress_messages_total Sync messages by compression outcome.\n")
	p("# TYPE gluon_compress_messages_total counter\n")
	p("gluon_compress_messages_total{outcome=\"compressed\"} %d\n", s.Compressed)
	p("gluon_compress_messages_total{outcome=\"skipped\"} %d\n", s.CompressSkipped)

	p("# HELP gluon_compression_saved_bytes_total Wire bytes removed by the DEFLATE wrapper.\n")
	p("# TYPE gluon_compression_saved_bytes_total counter\n")
	p("gluon_compression_saved_bytes_total %d\n", s.CompressionSaved)

	var faults uint64
	if ph, ok := s.Phases[PhaseFault.String()]; ok {
		faults = ph.Count
	}
	p("# HELP gluon_faults_total Fault events (poisonings, injected faults, dead hosts).\n")
	p("# TYPE gluon_faults_total counter\n")
	p("gluon_faults_total %d\n", faults)

	p("# HELP gluon_ckpt_writes_total Completed checkpoint writes.\n")
	p("# TYPE gluon_ckpt_writes_total counter\n")
	p("gluon_ckpt_writes_total %d\n", s.CkptWrites)

	p("# HELP gluon_ckpt_bytes_total Checkpoint bytes persisted to disk.\n")
	p("# TYPE gluon_ckpt_bytes_total counter\n")
	p("gluon_ckpt_bytes_total %d\n", s.CkptBytes)

	p("# HELP gluon_ckpt_errors_total Failed checkpoint writes.\n")
	p("# TYPE gluon_ckpt_errors_total counter\n")
	p("gluon_ckpt_errors_total %d\n", s.CkptErrors)

	p("# HELP gluon_ckpt_restores_total Restores performed from checkpoint.\n")
	p("# TYPE gluon_ckpt_restores_total counter\n")
	p("gluon_ckpt_restores_total %d\n", s.CkptRestores)

	p("# HELP gluon_phase_events_total Trace events by phase.\n")
	p("# TYPE gluon_phase_events_total counter\n")
	p("# HELP gluon_phase_duration_seconds_total Time spent in each phase, summed over hosts.\n")
	p("# TYPE gluon_phase_duration_seconds_total counter\n")
	for _, name := range sortedKeys(s.Phases) {
		ph := s.Phases[name]
		p("gluon_phase_events_total{phase=%q} %d\n", name, ph.Count)
		p("gluon_phase_duration_seconds_total{phase=%q} %.9f\n", name, float64(ph.DurNs)/1e9)
	}

	p("# HELP gluon_encode_mode_total Sync messages by wire encoding mode.\n")
	p("# TYPE gluon_encode_mode_total counter\n")
	for _, name := range sortedKeys(s.Modes) {
		p("gluon_encode_mode_total{mode=%q} %d\n", name, s.Modes[name])
	}

	p("# HELP gluon_postmortem_dumps_total Postmortem bundles written, by trigger.\n")
	p("# TYPE gluon_postmortem_dumps_total counter\n")
	dumps := Armed().DumpCounts()
	for i, tr := range Triggers {
		p("gluon_postmortem_dumps_total{trigger=%q} %d\n", string(tr), dumps[i])
	}

	writeHistogram(p, "gluon_round_latency_seconds",
		"BSP round wall time distribution (dsys runner, completed rounds).", s.RoundLatency)
	writeHistogram(p, "gluon_sync_message_bytes",
		"Per-message sync payload byte distribution (encode spans).", s.SyncMsgBytes)
	return bw.Flush()
}

// writeHistogram renders one HistLive as a Prometheus histogram: cumulative
// le buckets, +Inf, sum, count. A nil snapshot still emits HELP/TYPE and an
// empty histogram so the series exists from the first scrape.
func writeHistogram(p func(string, ...any), name, help string, h *HistLive) {
	p("# HELP %s %s\n", name, help)
	p("# TYPE %s histogram\n", name)
	var cum uint64
	if h != nil {
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		p("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		p("%s_sum %g\n", name, h.Sum)
		p("%s_count %d\n", name, h.Count)
		return
	}
	p("%s_bucket{le=\"+Inf\"} 0\n", name)
	p("%s_sum 0\n", name)
	p("%s_count 0\n", name)
}

// formatBound renders a bucket bound the way Prometheus expects (no
// exponent for round numbers, minimal digits otherwise).
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// buildVersion reads the main module's version from the embedded build info
// ("(devel)" for plain source builds, a tag or pseudo-version otherwise).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// sortedKeys returns a map's keys in lexical order so scrapes are stable.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
