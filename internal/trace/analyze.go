package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Summary is the offline rollup of a trace: the paper-style tables —
// per-round communication volume, per-peer skew, phase time breakdown, and
// the encoding-mode histogram — that otherwise require hand-instrumenting a
// run. Build one with Summarize; print it with WriteTables.
type Summary struct {
	Label   string `json:"label,omitempty"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
	Hosts   int    `json:"hosts"`
	// Clocks is the per-host offset table of a merged multi-process trace
	// (empty for single-process traces).
	Clocks []ClockInfo `json:"clocks,omitempty"`
	// Sessions are the sideband shipper lifecycle records of a collector
	// merge; a session in state "error" disconnected without an orderly bye.
	Sessions []SessionInfo `json:"sessions,omitempty"`
	// PeerCap caps the per-peer skew table WriteTables prints (0 = all
	// rows). The full Peers list is always kept, e.g. for JSON output.
	PeerCap int `json:"-"`
	// WallNs spans the earliest event start to the latest event end.
	WallNs int64 `json:"wall_ns"`

	// Totals over all PhaseEncode events (i.e. every sync message sent).
	Messages   uint64 `json:"messages"`
	ValueBytes uint64 `json:"value_bytes"`
	MetaBytes  uint64 `json:"metadata_bytes"`
	GIDBytes   uint64 `json:"gid_bytes"`
	// Compressed/CompressSkipped split the messages the compression stage
	// considered (Comp tags on encode events); CompressionSaved is the wire
	// bytes the DEFLATE wrapper removed.
	Compressed       uint64 `json:"compressed_messages,omitempty"`
	CompressSkipped  uint64 `json:"compress_skipped,omitempty"`
	CompressionSaved uint64 `json:"compression_saved_bytes,omitempty"`

	Rounds []RoundStat      `json:"rounds"`
	Phases []PhaseStat      `json:"phases"`
	Peers  []PeerStat       `json:"peers"`
	Modes  [NumModes]uint64 `json:"modes"`
	Faults []Event          `json:"faults,omitempty"`
}

// RoundStat aggregates one BSP round. Byte columns come from encode spans;
// the time columns are maxima across hosts (each host's time is the sum of
// its spans of that phase in the round), matching the paper's
// max-across-hosts breakdown.
type RoundStat struct {
	Round     int32  `json:"round"`
	Messages  uint64 `json:"messages"`
	Value     uint64 `json:"value"`
	Meta      uint64 `json:"meta"`
	GID       uint64 `json:"gid"`
	SyncNs    int64  `json:"sync_ns"`
	ComputeNs int64  `json:"compute_ns"`
	BarrierNs int64  `json:"barrier_ns"`
}

// PhaseStat is one phase's global count and time.
type PhaseStat struct {
	Phase   Phase  `json:"phase"`
	Count   uint64 `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

// PeerStat is one directed (sender, receiver) pair's volume, the per-peer
// skew table.
type PeerStat struct {
	Host     int32  `json:"host"`
	Peer     int32  `json:"peer"`
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
}

// Summarize rolls events up into a Summary. The dropped count is carried
// through for display.
func Summarize(label string, events []Event, dropped uint64) *Summary {
	return SummarizeMeta(Meta{Label: label, Dropped: dropped}, events)
}

// SummarizeMeta rolls events up into a Summary, carrying the export metadata
// (label, dropped count, clock table) through for display.
func SummarizeMeta(meta Meta, events []Event) *Summary {
	s := &Summary{Label: meta.Label, Events: len(events), Dropped: meta.Dropped, Clocks: meta.Clocks, Sessions: meta.Sessions}
	if len(events) == 0 {
		return s
	}
	type hostRound struct {
		host  int32
		round int32
	}
	rounds := map[int32]*RoundStat{}
	perHostRound := map[hostRound]*[3]int64{} // sync, compute, barrier sums
	peers := map[[2]int32]*PeerStat{}
	hosts := map[int32]bool{}
	var phases [NumPhases]PhaseStat
	minStart, maxEnd := events[0].Start, events[0].Start
	for i := range events {
		e := &events[i]
		hosts[e.Host] = true
		if e.Start < minStart {
			minStart = e.Start
		}
		if end := e.Start + e.Dur; end > maxEnd {
			maxEnd = end
		}
		if e.Phase < NumPhases {
			phases[e.Phase].Count++
			phases[e.Phase].TotalNs += e.Dur
		}
		r := rounds[e.Round]
		if r == nil {
			r = &RoundStat{Round: e.Round}
			rounds[e.Round] = r
		}
		switch e.Phase {
		case PhaseEncode:
			r.Messages++
			r.Value += e.Value
			r.Meta += e.Meta
			r.GID += e.GID
			s.Messages++
			s.ValueBytes += e.Value
			s.MetaBytes += e.Meta
			s.GIDBytes += e.GID
			if e.Mode >= 0 && e.Mode < NumModes {
				s.Modes[e.Mode]++
			}
			switch e.Comp {
			case CompShipped:
				s.Compressed++
				s.CompressionSaved += e.Saved
			case CompSkipped:
				s.CompressSkipped++
			}
			p := peers[[2]int32{e.Host, e.Peer}]
			if p == nil {
				p = &PeerStat{Host: e.Host, Peer: e.Peer}
				peers[[2]int32{e.Host, e.Peer}] = p
			}
			p.Messages++
			p.Bytes += e.Bytes()
		case PhaseSync, PhaseCompute, PhaseBarrier:
			hr := perHostRound[hostRound{e.Host, e.Round}]
			if hr == nil {
				hr = &[3]int64{}
				perHostRound[hostRound{e.Host, e.Round}] = hr
			}
			switch e.Phase {
			case PhaseSync:
				hr[0] += e.Dur
			case PhaseCompute:
				hr[1] += e.Dur
			case PhaseBarrier:
				hr[2] += e.Dur
			}
		case PhaseFault:
			s.Faults = append(s.Faults, *e)
		}
	}
	// Max across hosts per round.
	for hr, sums := range perHostRound {
		r := rounds[hr.round]
		if r == nil {
			continue
		}
		if sums[0] > r.SyncNs {
			r.SyncNs = sums[0]
		}
		if sums[1] > r.ComputeNs {
			r.ComputeNs = sums[1]
		}
		if sums[2] > r.BarrierNs {
			r.BarrierNs = sums[2]
		}
	}
	s.Hosts = len(hosts)
	s.WallNs = maxEnd - minStart
	for _, r := range rounds {
		s.Rounds = append(s.Rounds, *r)
	}
	sort.Slice(s.Rounds, func(i, j int) bool { return s.Rounds[i].Round < s.Rounds[j].Round })
	for p := Phase(0); p < NumPhases; p++ {
		if phases[p].Count > 0 {
			phases[p].Phase = p
			s.Phases = append(s.Phases, phases[p])
		}
	}
	for _, p := range peers {
		s.Peers = append(s.Peers, *p)
	}
	// The peer table is a skew table: the point is the heaviest channels, so
	// sort by volume descending (rank order buries the outliers on wide
	// clusters); ties fall back to (host, peer) for determinism.
	sort.Slice(s.Peers, func(i, j int) bool {
		if s.Peers[i].Bytes != s.Peers[j].Bytes {
			return s.Peers[i].Bytes > s.Peers[j].Bytes
		}
		if s.Peers[i].Host != s.Peers[j].Host {
			return s.Peers[i].Host < s.Peers[j].Host
		}
		return s.Peers[i].Peer < s.Peers[j].Peer
	})
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Start < s.Faults[j].Start })
	return s
}

// TotalBytes is the summed payload volume over all messages.
func (s *Summary) TotalBytes() uint64 { return s.ValueBytes + s.MetaBytes + s.GIDBytes }

// WriteTables prints the summary as the paper-style tables.
func (s *Summary) WriteTables(w io.Writer) error {
	label := s.Label
	if label != "" {
		label = " (" + label + ")"
	}
	if _, err := fmt.Fprintf(w, "trace%s: %d events, %d hosts, %d rounds, %d dropped, wall %v\n",
		label, s.Events, s.Hosts, len(s.Rounds), s.Dropped, round3(time.Duration(s.WallNs))); err != nil {
		return err
	}
	fmt.Fprintf(w, "totals: %d messages, %s (value %s / metadata %s / gids %s)\n",
		s.Messages, fmtBytes(s.TotalBytes()), fmtBytes(s.ValueBytes), fmtBytes(s.MetaBytes), fmtBytes(s.GIDBytes))
	if s.Compressed > 0 || s.CompressSkipped > 0 {
		fmt.Fprintf(w, "compression: %d shipped compressed / %d raw, %s saved on the wire\n",
			s.Compressed, s.CompressSkipped, fmtBytes(s.CompressionSaved))
	}
	if len(s.Clocks) > 0 {
		fmt.Fprint(w, "clock offsets (applied at merge):")
		for _, ci := range s.Clocks {
			fmt.Fprintf(w, " host %d %+v ±%v;", ci.Host,
				round3(time.Duration(ci.OffsetNs)), round3(time.Duration(ci.UncertaintyNs)))
		}
		fmt.Fprintln(w)
	}
	if len(s.Sessions) > 0 {
		fmt.Fprint(w, "sideband sessions:")
		for _, si := range s.Sessions {
			name := si.Addr
			if len(si.Hosts) > 0 {
				name = fmt.Sprintf("hosts %v", si.Hosts)
			}
			switch si.State {
			case "error":
				fmt.Fprintf(w, " #%d %s DISCONNECTED (%s);", si.ID, name, si.Error)
			default:
				fmt.Fprintf(w, " #%d %s %s;", si.ID, name, si.State)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	if len(s.Rounds) > 0 {
		fmt.Fprintln(w, "per-round volume & time (time columns are max across hosts):")
		fmt.Fprintf(w, "%6s %8s %10s %10s %10s %12s %12s %12s\n",
			"round", "msgs", "value", "meta", "gids", "sync", "compute", "barrier")
		for _, r := range s.Rounds {
			name := fmt.Sprintf("%d", r.Round)
			if r.Round < 0 {
				name = "init"
			}
			fmt.Fprintf(w, "%6s %8d %10s %10s %10s %12v %12v %12v\n",
				name, r.Messages, fmtBytes(r.Value), fmtBytes(r.Meta), fmtBytes(r.GID),
				round3(time.Duration(r.SyncNs)), round3(time.Duration(r.ComputeNs)), round3(time.Duration(r.BarrierNs)))
		}
		fmt.Fprintln(w)
	}

	if len(s.Peers) > 0 {
		rows := s.Peers
		if s.PeerCap > 0 && len(rows) > s.PeerCap {
			rows = rows[:s.PeerCap]
		}
		fmt.Fprintln(w, "per-peer volume (sender -> receiver, heaviest first):")
		fmt.Fprintf(w, "%6s %6s %8s %10s\n", "host", "peer", "msgs", "bytes")
		for _, p := range rows {
			fmt.Fprintf(w, "%6d %6d %8d %10s\n", p.Host, p.Peer, p.Messages, fmtBytes(p.Bytes))
		}
		if n := len(s.Peers) - len(rows); n > 0 {
			fmt.Fprintf(w, "  … %d lighter pairs elided (-top to adjust)\n", n)
		}
		fmt.Fprintln(w)
	}

	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "phase time breakdown (all hosts):")
		fmt.Fprintf(w, "%-10s %10s %12s %12s\n", "phase", "count", "total", "mean")
		for _, p := range s.Phases {
			mean := time.Duration(0)
			if p.Count > 0 {
				mean = time.Duration(p.TotalNs / int64(p.Count))
			}
			fmt.Fprintf(w, "%-10s %10d %12v %12v\n", p.Phase, p.Count, round3(time.Duration(p.TotalNs)), round3(mean))
		}
		fmt.Fprintln(w)
	}

	if s.Messages > 0 {
		fmt.Fprintln(w, "encoding modes:")
		fmt.Fprintf(w, "%-10s %8s\n", "mode", "msgs")
		for m := 0; m < NumModes; m++ {
			if s.Modes[m] > 0 {
				fmt.Fprintf(w, "%-10s %8d\n", ModeName(int8(m)), s.Modes[m])
			}
		}
		fmt.Fprintln(w)
	}

	if len(s.Faults) > 0 {
		fmt.Fprintln(w, "fault timeline:")
		for _, f := range s.Faults {
			fmt.Fprintf(w, "  t=%-12v host %-3d peer %-3d %s\n",
				round3(time.Duration(f.Start)), f.Host, f.Peer, f.Detail)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// round3 trims a duration to ~3 significant sub-unit digits for tables.
func round3(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}

// fmtBytes renders byte counts with binary-prefix units.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
