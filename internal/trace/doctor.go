package trace

// Postmortem diagnosis (DESIGN.md §4.7): load the bundles a crashed
// cluster left behind, place them on one time axis, and explain the death
// causally — which rank failed first, how the poison propagated, what the
// survivors were doing when they gave up, and how much work a restore
// would lose. cmd/gluon-doctor is a thin CLI over this.
//
// Time axes. Every process's session clock is unrelated to every other's.
// Two alignment sources, best first:
//
//   - sideband-measured ClockInfo (EstimateOffset, recorded into each
//     bundle when the run shipped traces): maps each session onto the
//     collector's clock with ±minRTT/2 uncertainty;
//   - the wall-clock fallback: each bundle records (WallUnixNano,
//     SessionNs) at dump time, so epochWall = WallUnixNano - SessionNs
//     places the session's epoch on the wall clock, good to NTP drift.
//
// The measured path is used only when every session has one; mixing axes
// would be worse than wall everywhere.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// LoadBundles reads every postmortem bundle under dir (non-recursive),
// ordered by file name. Unreadable or undecodable bundles are skipped and
// reported in the second return; an empty directory is an error — doctor
// must not diagnose "healthy" from a mistyped path.
func LoadBundles(dir string) ([]*Bundle, []error, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var bundles []*Bundle
	var bad []error
	for _, ent := range ents {
		if ent.IsDir() || !isBundleFileName(ent.Name()) {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			bad = append(bad, fmt.Errorf("%s: %w", ent.Name(), err))
			continue
		}
		b := &Bundle{}
		if err := json.Unmarshal(data, b); err != nil {
			bad = append(bad, fmt.Errorf("%s: %w", ent.Name(), err))
			continue
		}
		bundles = append(bundles, b)
	}
	if len(bundles) == 0 {
		if len(bad) > 0 {
			return nil, bad, fmt.Errorf("trace: no readable postmortem bundles in %s (%d corrupt)", dir, len(bad))
		}
		return nil, nil, fmt.Errorf("trace: no postmortem bundles in %s", dir)
	}
	return bundles, bad, nil
}

// ChainEntry is one link of the failure cascade, on the aligned time axis.
type ChainEntry struct {
	AtNs    int64 // aligned ns since the first entry
	Host    int32
	Peer    int32
	Trigger Trigger
	Round   int32
	Phase   string
	Cause   string
}

// StallSummary condenses a stall bundle for the report.
type StallSummary struct {
	Suspect int32
	Phase   string
	Detail  string
	Stack   string // excerpt of the suspect-side goroutine dump
}

// Diagnosis is doctor's structured verdict.
type Diagnosis struct {
	Bundles  int
	Hosts    []int32 // hosts that left bundles, ascending
	Sessions int     // distinct tracing sessions (processes)
	// ClockSource is "sideband" when every session had a measured offset,
	// else "wall"; ClockNote renders the alignment quality.
	ClockSource string
	ClockNote   string

	// FailedRank is the rank diagnosed as the original failure (-1 if the
	// evidence is inconclusive). SilentDeath is true when that rank left no
	// bundle of its own (kill -9, power loss) and was inferred from the
	// survivors naming it.
	FailedRank  int32
	SilentDeath bool
	// RootTrigger/RootCause/RootRound describe the first failure event.
	RootTrigger Trigger
	RootCause   string
	RootRound   int32
	RootPhase   string

	Chain []ChainEntry
	Stall *StallSummary

	// LastCkptEpoch is the newest checkpoint any host completed (-1 none);
	// RoundsLost is the recompute distance from there to the failure round.
	LastCkptEpoch int64
	RoundsLost    int64

	// Merged is the union of ring events across sessions, aligned and
	// Start-ordered on the chosen axis; MergedDropped sums ring overwrites.
	Merged        []Event
	MergedDropped uint64
	MergedClocks  []ClockInfo
}

// Diagnose builds a Diagnosis from loaded bundles.
func Diagnose(bundles []*Bundle) *Diagnosis {
	d := &Diagnosis{Bundles: len(bundles), FailedRank: -1, LastCkptEpoch: -1, RootRound: -1}
	if len(bundles) == 0 {
		return d
	}

	// Group by session; pick each session's latest bundle as its event
	// source (same ring, frozen latest = largest window).
	bySession := map[string]*Bundle{}
	hosts := map[int32]bool{}
	for _, b := range bundles {
		hosts[b.Host] = true
		cur := bySession[b.TraceID]
		if cur == nil || b.SessionNs > cur.SessionNs {
			bySession[b.TraceID] = b
		}
		if b.LastCkptEpoch > d.LastCkptEpoch {
			d.LastCkptEpoch = b.LastCkptEpoch
		}
	}
	for h := range hosts {
		d.Hosts = append(d.Hosts, h)
	}
	sort.Slice(d.Hosts, func(i, j int) bool { return d.Hosts[i] < d.Hosts[j] })
	d.Sessions = len(bySession)

	// Choose the axis: sideband offsets when every session measured one.
	measured := true
	for _, b := range bySession {
		if b.Clock.Samples == 0 {
			measured = false
			break
		}
	}
	// sessionOffset maps a session's clock onto the common axis (add to a
	// session timestamp). Wall axis: offset = epochWall = Wall - SessionNs,
	// which lands timestamps on UnixNano. Sideband axis: the collector's
	// clock, offset = measured OffsetNs.
	sessionOffset := map[string]int64{}
	if measured {
		d.ClockSource = "sideband"
		var worst int64
		for id, b := range bySession {
			sessionOffset[id] = b.Clock.OffsetNs
			if b.Clock.UncertaintyNs > worst {
				worst = b.Clock.UncertaintyNs
			}
		}
		d.ClockNote = fmt.Sprintf("sideband-measured offsets, worst uncertainty ±%v", time.Duration(worst))
	} else {
		d.ClockSource = "wall"
		for id, b := range bySession {
			sessionOffset[id] = b.WallUnixNano - b.SessionNs
		}
		d.ClockNote = "wall-clock alignment (no measured offsets in every session; trust to NTP drift)"
	}

	// Merge events: one source bundle per session, host offsets fed through
	// AlignEvents so merged timelines stay ordered.
	var merged []Event
	offsets := map[int32]int64{}
	for id, b := range bySession {
		off := sessionOffset[id]
		for _, e := range b.Events {
			offsets[e.Host] = off
		}
		merged = append(merged, b.Events...)
		d.MergedDropped += b.Dropped
		if b.Clock.Samples > 0 {
			d.MergedClocks = append(d.MergedClocks, b.Clock)
		}
	}
	AlignEvents(merged, offsets)
	d.Merged = merged

	// Build the cascade: one entry per bundle at its aligned dump moment.
	for _, b := range bundles {
		d.Chain = append(d.Chain, ChainEntry{
			AtNs:    b.SessionNs + sessionOffset[b.TraceID],
			Host:    b.Host,
			Peer:    b.Peer,
			Trigger: b.Trigger,
			Round:   b.Round,
			Phase:   b.Phase,
			Cause:   b.Cause,
		})
	}
	sort.Slice(d.Chain, func(i, j int) bool { return d.Chain[i].AtNs < d.Chain[j].AtNs })
	base := d.Chain[0].AtNs
	for i := range d.Chain {
		d.Chain[i].AtNs -= base
	}

	// Root cause. Primary failures carry their own trigger classes; the
	// earliest of those wins. Absent any, the cluster's survivors only saw
	// the death secondhand (dead-host/peer-poison naming a peer): the rank
	// most often named as peer that left no bundle died silently.
	primary := func(t Trigger) bool {
		switch t {
		case TriggerInjectedFault, TriggerPanic, TriggerSyncInvariant, TriggerRestoreFailed, TriggerStall:
			return true
		}
		return false
	}
	for _, c := range d.Chain {
		if primary(c.Trigger) {
			d.FailedRank = c.Host
			if c.Trigger == TriggerStall && c.Peer >= 0 {
				// A stall bundle is written by the detector; the suspect is
				// the peer it names.
				d.FailedRank = c.Peer
			}
			d.RootTrigger, d.RootCause, d.RootRound, d.RootPhase = c.Trigger, c.Cause, c.Round, c.Phase
			break
		}
	}
	if d.FailedRank < 0 {
		named := map[int32]int{}
		firstNamed := map[int32]int64{}
		for _, c := range d.Chain {
			if (c.Trigger == TriggerDeadHost || c.Trigger == TriggerPeerPoison) && c.Peer >= 0 && !hosts[c.Peer] {
				named[c.Peer]++
				if _, ok := firstNamed[c.Peer]; !ok {
					firstNamed[c.Peer] = c.AtNs
				}
			}
		}
		best, bestVotes := int32(-1), 0
		for h, votes := range named {
			if votes > bestVotes || (votes == bestVotes && best >= 0 && firstNamed[h] < firstNamed[best]) {
				best, bestVotes = h, votes
			}
		}
		if best >= 0 {
			d.FailedRank, d.SilentDeath = best, true
			for _, c := range d.Chain {
				if c.Peer == best {
					d.RootTrigger, d.RootCause, d.RootRound, d.RootPhase = c.Trigger, c.Cause, c.Round, c.Phase
					break
				}
			}
		} else if len(d.Chain) > 0 {
			// Everyone who failed left a bundle; the earliest is the root.
			c := d.Chain[0]
			d.FailedRank, d.RootTrigger, d.RootCause, d.RootRound, d.RootPhase = c.Host, c.Trigger, c.Cause, c.Round, c.Phase
		}
	}

	// Stall summary: the first stall bundle, with a stack excerpt.
	for _, b := range bundles {
		if b.Trigger != TriggerStall {
			continue
		}
		d.Stall = &StallSummary{Suspect: b.Peer, Phase: b.Phase, Detail: b.Detail, Stack: stackExcerpt(b.Stacks, 24)}
		break
	}
	if d.Stall == nil {
		// No stall: still surface what phase the stalled/failed round was in
		// from the root bundle's heartbeats, if a bundle for the failed rank
		// exists.
		for _, b := range bundles {
			if b.Host == d.FailedRank && b.Stacks != "" {
				d.Stall = &StallSummary{Suspect: b.Host, Phase: b.Phase, Stack: stackExcerpt(b.Stacks, 24)}
				break
			}
		}
	}

	// Recompute distance.
	var maxRound int32 = -1
	for _, b := range bundles {
		if b.Round > maxRound {
			maxRound = b.Round
		}
		if b.Live.MaxRound > maxRound {
			maxRound = b.Live.MaxRound
		}
	}
	if d.LastCkptEpoch >= 0 && maxRound >= 0 {
		d.RoundsLost = int64(maxRound) - d.LastCkptEpoch
		if d.RoundsLost < 0 {
			d.RoundsLost = 0
		}
	} else if maxRound >= 0 {
		d.RoundsLost = int64(maxRound) + 1
	}
	return d
}

// stackExcerpt returns the first maxLines lines of a goroutine dump,
// preferring the first non-idle goroutine block.
func stackExcerpt(stacks string, maxLines int) string {
	if stacks == "" {
		return ""
	}
	lines := strings.Split(stacks, "\n")
	if len(lines) > maxLines {
		lines = lines[:maxLines]
		lines = append(lines, "... (truncated)")
	}
	return strings.Join(lines, "\n")
}

// FinalWindow trims merged, aligned events to the window ending at the last
// event — "the final seconds" Chrome trace a postmortem wants.
func FinalWindow(events []Event, window time.Duration) []Event {
	if len(events) == 0 || window <= 0 {
		return events
	}
	end := events[len(events)-1].Start + events[len(events)-1].Dur
	cut := end - int64(window)
	i := sort.Search(len(events), func(i int) bool { return events[i].Start >= cut })
	return events[i:]
}

// WriteReport renders the diagnosis transcript the way an operator reads
// it: verdict first, then the cascade, then the forensic details.
func (d *Diagnosis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "gluon-doctor: %d bundle(s) from host(s) %s across %d process session(s)\n",
		d.Bundles, joinHosts(d.Hosts), d.Sessions)
	fmt.Fprintf(w, "clock: %s\n", d.ClockNote)
	fmt.Fprintln(w)
	if d.FailedRank >= 0 {
		death := "left its own bundle"
		if d.SilentDeath {
			death = "died silently — no bundle of its own; inferred from survivors"
		}
		fmt.Fprintf(w, "verdict: host %d failed first (%s)\n", d.FailedRank, death)
		fmt.Fprintf(w, "  trigger: %s", d.RootTrigger)
		if d.RootCause != "" {
			fmt.Fprintf(w, " — %s", d.RootCause)
		}
		fmt.Fprintln(w)
		if d.RootRound >= 0 {
			fmt.Fprintf(w, "  at: round %d", d.RootRound)
			if d.RootPhase != "" {
				fmt.Fprintf(w, ", phase %s", d.RootPhase)
			}
			fmt.Fprintln(w)
		}
	} else {
		fmt.Fprintln(w, "verdict: inconclusive — no primary failure and no silently missing rank")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "failure cascade (aligned):")
	for _, c := range d.Chain {
		at := time.Duration(c.AtNs)
		line := fmt.Sprintf("  +%-12s host %d  %-15s", at.Round(time.Microsecond), c.Host, c.Trigger)
		if c.Peer >= 0 {
			line += fmt.Sprintf(" peer %d", c.Peer)
		}
		if c.Round >= 0 {
			line += fmt.Sprintf(" (round %d", c.Round)
			if c.Phase != "" {
				line += ", " + c.Phase
			}
			line += ")"
		}
		if c.Cause != "" {
			line += ": " + c.Cause
		}
		fmt.Fprintln(w, line)
	}
	if d.Stall != nil {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "last known activity of host %d", d.Stall.Suspect)
		if d.Stall.Phase != "" {
			fmt.Fprintf(w, " (phase %s)", d.Stall.Phase)
		}
		fmt.Fprintln(w, ":")
		if d.Stall.Detail != "" {
			fmt.Fprintf(w, "  %s\n", d.Stall.Detail)
		}
		if d.Stall.Stack != "" {
			for _, l := range strings.Split(d.Stall.Stack, "\n") {
				fmt.Fprintf(w, "    %s\n", l)
			}
		}
	}
	fmt.Fprintln(w)
	switch {
	case d.LastCkptEpoch >= 0:
		fmt.Fprintf(w, "checkpoint: last completed epoch %d — a restore replays %d round(s)\n",
			d.LastCkptEpoch, d.RoundsLost)
	default:
		fmt.Fprintf(w, "checkpoint: none taken — a restart recomputes all %d round(s) from scratch\n", d.RoundsLost)
	}
	if len(d.Merged) > 0 {
		span := time.Duration(d.Merged[len(d.Merged)-1].Start - d.Merged[0].Start)
		fmt.Fprintf(w, "merged trace: %d event(s) spanning %v (%d dropped to ring wrap before the window)\n",
			len(d.Merged), span.Round(time.Millisecond), d.MergedDropped)
	}
}

func joinHosts(hs []int32) string {
	if len(hs) == 0 {
		return "none"
	}
	parts := make([]string, len(hs))
	for i, h := range hs {
		parts[i] = fmt.Sprint(h)
	}
	return strings.Join(parts, ",")
}
