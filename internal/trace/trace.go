// Package trace is the substrate's observability layer: a low-overhead,
// ring-buffered span recorder that gluon (sync phases), dsys (BSP round
// boundaries), and comm (frame-level transport traffic, fault injection)
// instrument, so a run can be replayed as a timeline instead of a flat
// end-of-run Stats rollup.
//
// Design constraints, in order:
//
//   - Near-zero cost when disabled. Instrumentation sites guard on
//     (*Recorder).Enabled() — a nil check plus one atomic load — and emit
//     nothing else. A nil *Recorder (the default everywhere) is a valid,
//     always-disabled recorder, so the hot path needs no wiring to opt out.
//   - No allocations on the hot path when enabled. Emit copies the Event
//     value into a preallocated ring slot under a per-host mutex; Detail
//     strings at hot sites are constants.
//   - Race-free merging. Each host owns one Recorder; goroutines of that
//     host share its mutex, and Trace.Snapshot merges the per-host rings
//     into one Start-ordered slice without stopping the run.
//   - Monotonic timestamps. Event times are nanoseconds since the Trace's
//     epoch, measured with the runtime's monotonic clock, so spans from
//     different hosts of one Trace are directly comparable.
//
// Bounded memory comes from the ring: when a host emits more than its ring
// capacity, the oldest events are overwritten and counted as dropped —
// tracing degrades to a suffix window rather than growing without bound.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase tags what an event measures. Span phases (PhaseSync through
// PhaseBarrier) carry a duration; the frame and fault phases are instants.
type Phase uint8

// Event taxonomy. The gluon sync pipeline emits PhaseSync (one whole Sync*
// call) containing PhaseEncode/PhaseSend per peer message on the sender
// side and PhaseRecvWait/PhaseFold (reduce) or PhaseApply (broadcast) per
// message on the receiver side. dsys emits PhaseCompute per BSP round and
// PhaseBarrier around termination detection (straggler wait). Transports
// emit PhaseFrameSend/PhaseFrameRecv instants per frame — including
// collectives that gluon spans don't cover — and PhaseFault instants for
// poisonings, dead-host declarations, and injected faults.
const (
	PhaseSync Phase = iota
	PhaseEncode
	PhaseSend
	PhaseRecvWait
	PhaseFold
	PhaseApply
	PhaseCompute
	PhaseBarrier
	PhaseFrameSend
	PhaseFrameRecv
	PhaseFault
	// PhaseCkpt spans cover checkpoint capture and the asynchronous write
	// (DESIGN.md §4.6). Appended after the instants so existing numeric
	// phase values stay stable across trace versions.
	PhaseCkpt
	NumPhases
)

var phaseNames = [NumPhases]string{
	"sync", "encode", "send", "recvwait", "fold", "apply",
	"compute", "barrier", "framesend", "framerecv", "fault", "ckpt",
}

// String returns the phase's wire name (used in exports and analyzer tables).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// ParsePhase inverts String.
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return NumPhases, false
}

// Instant reports whether the phase is an instantaneous marker rather than
// a span (frame-level and fault events). PhaseCkpt sits after the instants
// numerically but is a span (capture/write durations matter), so the set
// is enumerated explicitly.
func (p Phase) Instant() bool {
	return p == PhaseFrameSend || p == PhaseFrameRecv || p == PhaseFault
}

// Event is one trace record. Span events have Dur > 0 (or a span Phase with
// measured zero duration); instants have Dur == 0 by construction.
//
// Byte tags: on PhaseEncode events, Value/Meta/GID are the exact post-
// compression payload byte deltas this message added to gluon.Stats, so
// summing them over a trace reproduces the run's final Stats split. On
// PhaseRecvWait and frame events, Value holds the received/sent wire length.
type Event struct {
	// Start is nanoseconds since the owning Trace's epoch (monotonic).
	Start int64 `json:"ts"`
	// Dur is the span length in nanoseconds; 0 for instants.
	Dur int64 `json:"dur,omitempty"`
	// Value, Meta, GID are payload byte counts (see type comment).
	Value uint64 `json:"value,omitempty"`
	Meta  uint64 `json:"meta,omitempty"`
	GID   uint64 `json:"gid,omitempty"`
	// Field is the synchronized field ID (gluon events) or the message tag
	// (frame events).
	Field uint32 `json:"field,omitempty"`
	// Host is the emitting host's rank; stamped by the Recorder.
	Host int32 `json:"host"`
	// Round is the BSP round the event belongs to; -1 during init/memoize,
	// stamped by the Recorder from SetRound.
	Round int32 `json:"round"`
	// Peer is the other host of a message or fault (-1 when not applicable).
	Peer int32 `json:"peer"`
	// Lane separates concurrent timelines within a host (0 = the driver,
	// 1+w = encode worker w); it becomes the Chrome-trace thread ID.
	Lane int32 `json:"lane,omitempty"`
	// Phase tags what was measured.
	Phase Phase `json:"phase"`
	// Mode is the wire encoding mode of a PhaseEncode event (0 empty,
	// 1 dense, 2 bitvec, 3 indices, 4 gid-pairs); meaningless elsewhere.
	Mode int8 `json:"mode,omitempty"`
	// Comp is the compression outcome of a PhaseEncode event: CompNone when
	// compression was off for the message, CompShipped when the DEFLATE
	// wrapper went to the wire, CompSkipped when compression was enabled but
	// the message shipped raw (below threshold, declined by the policy, or
	// incompressible). Meaningless elsewhere.
	Comp int8 `json:"comp,omitempty"`
	// Saved is the wire bytes compression removed from this message (0
	// unless Comp == CompShipped).
	Saved uint64 `json:"saved,omitempty"`
	// Detail is a free-form annotation (field name, fault cause).
	Detail string `json:"detail,omitempty"`
}

// Compression outcome tags for Event.Comp.
const (
	// CompNone: compression was not enabled for this message.
	CompNone int8 = 0
	// CompShipped: the message went to the wire DEFLATE-compressed.
	CompShipped int8 = 1
	// CompSkipped: compression was enabled but the message shipped raw.
	CompSkipped int8 = 2
)

// CompName names a compression outcome for tables and exports.
func CompName(c int8) string {
	switch c {
	case CompNone:
		return "off"
	case CompShipped:
		return "compressed"
	case CompSkipped:
		return "skipped"
	default:
		return "unknown"
	}
}

// Bytes returns the event's total payload byte tag.
func (e *Event) Bytes() uint64 { return e.Value + e.Meta + e.GID }

// ModeName names a wire encoding mode for tables and exports.
func ModeName(m int8) string {
	switch m {
	case 0:
		return "empty"
	case 1:
		return "dense"
	case 2:
		return "bitvec"
	case 3:
		return "indices"
	case 4:
		return "gids"
	default:
		return "unknown"
	}
}

// NumModes is the number of wire encoding modes (matches gluon's ModeCounts).
const NumModes = 5

// DefaultCapacity is the per-host ring capacity when Config.Capacity is 0:
// 128Ki events ≈ 11 MB per host, enough for ~1000 rounds of an 8-host sync
// before the ring wraps.
const DefaultCapacity = 1 << 17

// Config parameterizes a Trace session.
type Config struct {
	// Capacity is the per-host ring capacity in events (0 = DefaultCapacity).
	Capacity int
	// Label annotates exports (e.g. the benchmark spec being traced).
	Label string
}

// Trace is one tracing session shared by all hosts of a run (or several
// runs back to back). It hands out per-host Recorders, maintains the live
// rollup counters behind the metrics endpoint, and merges recorded events
// for export. A nil *Trace is valid and permanently disabled.
type Trace struct {
	cfg     Config
	epoch   time.Time
	enabled atomic.Bool

	mu   sync.Mutex
	recs []*Recorder // indexed by host, grown lazily

	// Live rollup counters, updated by Emit; see Live().
	events     atomic.Uint64
	value      atomic.Uint64
	meta       atomic.Uint64
	gid        atomic.Uint64
	maxRound   atomic.Int32
	phaseCount [NumPhases]atomic.Uint64
	phaseDur   [NumPhases]atomic.Int64
	modeCount  [NumModes]atomic.Uint64
	compressed atomic.Uint64
	compSkip   atomic.Uint64
	compSaved  atomic.Uint64

	// Checkpoint plane counters (gluon_ckpt_* in the Prometheus export).
	ckptWrites   atomic.Uint64
	ckptBytes    atomic.Uint64
	ckptErrors   atomic.Uint64
	ckptRestores atomic.Uint64

	// Histograms rendered by the Prometheus exposition: BSP round latency
	// (observed by dsys once per round) and per-message sync payload bytes
	// (observed in Emit on encode spans). Fixed exponential buckets, one
	// atomic add per observation; the last slot is the overflow (+Inf).
	roundHist  [numRoundBuckets + 1]atomic.Uint64
	roundSumNs atomic.Int64
	roundCount atomic.Uint64
	msgHist    [numMsgBuckets + 1]atomic.Uint64
	msgSum     atomic.Uint64
	msgCount   atomic.Uint64
}

// Round-latency buckets: 1ms·2^i for i in [0,16) — 1ms up to ~33s, then
// overflow. Sync-message-bytes buckets: 64B·4^i for i in [0,9) — 64B up to
// 4MiB, then overflow.
const (
	numRoundBuckets = 16
	numMsgBuckets   = 9
)

// RoundBucketNs returns round-latency bucket i's upper bound in nanoseconds.
func RoundBucketNs(i int) int64 { return int64(time.Millisecond) << i }

// MsgBucketBytes returns sync-message-bytes bucket i's upper bound.
func MsgBucketBytes(i int) uint64 { return 64 << (2 * i) }

// ObserveRound records one completed BSP round's wall time into the
// round-latency histogram. Safe on a nil Trace; called once per round by
// the dsys runner (not on the sync hot path).
func (t *Trace) ObserveRound(d time.Duration) {
	if t == nil {
		return
	}
	i := 0
	for i < numRoundBuckets && int64(d) > RoundBucketNs(i) {
		i++
	}
	t.roundHist[i].Add(1)
	t.roundSumNs.Add(int64(d))
	t.roundCount.Add(1)
}

// observeMsgBytes records one encode span's payload bytes.
func (t *Trace) observeMsgBytes(n uint64) {
	i := 0
	for i < numMsgBuckets && n > MsgBucketBytes(i) {
		i++
	}
	t.msgHist[i].Add(1)
	t.msgSum.Add(n)
	t.msgCount.Add(1)
}

// HistLive is one histogram's live snapshot: per-bucket counts (not
// cumulative; the final slot is the overflow bucket) with upper Bounds in
// base units (seconds or bytes).
type HistLive struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// CountCkptWrite records one completed checkpoint write of the given size
// (err non-nil counts an error instead). Safe on a nil Trace.
func (t *Trace) CountCkptWrite(bytes int, err error) {
	if t == nil {
		return
	}
	if err != nil {
		t.ckptErrors.Add(1)
		return
	}
	t.ckptWrites.Add(1)
	t.ckptBytes.Add(uint64(bytes))
}

// CountCkptRestore records one successful restore from checkpoint. Safe on
// a nil Trace.
func (t *Trace) CountCkptRestore() {
	if t == nil {
		return
	}
	t.ckptRestores.Add(1)
}

// New creates an enabled tracing session whose clock starts now.
func New(cfg Config) *Trace {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Trace{cfg: cfg, epoch: time.Now()}
	t.enabled.Store(true)
	t.maxRound.Store(-1)
	return t
}

// Label returns the session's label.
func (t *Trace) Label() string {
	if t == nil {
		return ""
	}
	return t.cfg.Label
}

// SetEnabled gates all recorders of the session at once. Events emitted
// while disabled are discarded before touching any ring.
func (t *Trace) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether the session is recording.
func (t *Trace) Enabled() bool { return t != nil && t.enabled.Load() }

// Recorder returns host's recorder, creating it on first use. It is safe to
// call concurrently from every host's driver. On a nil Trace it returns
// nil — a valid, permanently disabled recorder.
func (t *Trace) Recorder(host int) *Recorder {
	if t == nil || host < 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.recs) <= host {
		t.recs = append(t.recs, nil)
	}
	if t.recs[host] == nil {
		t.recs[host] = &Recorder{t: t, host: int32(host), buf: make([]Event, 0, t.cfg.Capacity)}
		t.recs[host].round.Store(-1)
		t.recs[host].phase.Store(int32(NumPhases))
	}
	return t.recs[host]
}

// Snapshot merges all hosts' rings into one slice ordered by Start, plus
// the total number of events dropped to ring overwrites. It does not stop
// recording; events emitted during the merge may or may not be included.
func (t *Trace) Snapshot() ([]Event, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	var out []Event
	var dropped uint64
	for _, r := range recs {
		if r == nil {
			continue
		}
		ev, d := r.snapshot()
		out = append(out, ev...)
		dropped += d
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, dropped
}

// Dropped returns the total events lost to ring overwrites so far.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	var dropped uint64
	for _, r := range recs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		dropped += r.dropped
		r.mu.Unlock()
	}
	return dropped
}

// Recorder is one host's event sink: a mutex-guarded ring the host's driver
// and its sync worker goroutines share. The nil *Recorder is valid and
// permanently disabled, so instrumented code never needs a wiring check
// beyond Enabled().
//
// Beyond the ring, a Recorder keeps a few liveness atomics — the current BSP
// round, the phase the host is executing right now, cumulative encode bytes,
// and the time of the last touch — which together form the compact heartbeat
// the cluster watchdog and the sideband gossip read without locking the ring.
type Recorder struct {
	t     *Trace
	host  int32
	round atomic.Int32
	phase atomic.Int32  // live phase (-1 = idle/unknown), see SetLivePhase
	bytes atomic.Uint64 // cumulative encode payload bytes (heartbeat counter)
	beat  atomic.Int64  // session-clock ns of the last liveness touch

	mu      sync.Mutex
	buf     []Event // ring storage; len grows to cap, then next wraps
	next    int     // overwrite cursor once len(buf) == cap(buf)
	seq     uint64  // total events ever emitted (ring-independent cursor)
	dropped uint64
}

// Host returns the rank this recorder stamps onto events.
func (r *Recorder) Host() int32 {
	if r == nil {
		return -1
	}
	return r.host
}

// Enabled reports whether emitting is worthwhile. Instrumentation sites
// hoist this guard so the disabled cost is one nil check + one atomic load.
func (r *Recorder) Enabled() bool { return r != nil && r.t.enabled.Load() }

// Now returns nanoseconds since the session epoch on the monotonic clock.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.t.epoch))
}

// SetRound stamps the BSP round onto subsequently emitted events (-1 means
// init/memoization time). Safe concurrently with Emit.
func (r *Recorder) SetRound(round int32) {
	if r != nil {
		r.round.Store(round)
		r.beat.Store(int64(time.Since(r.t.epoch)))
	}
}

// Round returns the currently stamped BSP round.
func (r *Recorder) Round() int32 {
	if r == nil {
		return -1
	}
	return r.round.Load()
}

// SetLivePhase publishes the phase the host is executing right now — the
// heartbeat the straggler watchdog reads. It is a nil check plus two atomic
// stores, alloc-free, so phase-boundary sites can call it unguarded.
func (r *Recorder) SetLivePhase(p Phase) {
	if r != nil {
		r.phase.Store(int32(p))
		r.beat.Store(int64(time.Since(r.t.epoch)))
	}
}

// LivePhase returns the last published live phase (NumPhases when the host
// has not published one yet).
func (r *Recorder) LivePhase() Phase {
	if r == nil {
		return NumPhases
	}
	return Phase(r.phase.Load())
}

// LiveBytes returns the cumulative encode payload bytes this host has
// emitted — the heartbeat's progress counter.
func (r *Recorder) LiveBytes() uint64 {
	if r == nil {
		return 0
	}
	return r.bytes.Load()
}

// LastBeat returns the session-clock time of the host's last liveness touch
// (SetRound, SetLivePhase, or Emit).
func (r *Recorder) LastBeat() int64 {
	if r == nil {
		return 0
	}
	return r.beat.Load()
}

// Emit records one event, stamping Host and Round. When the session is
// disabled it is a no-op; when the ring is full the oldest event is
// overwritten and counted as dropped. Emit does not allocate.
func (r *Recorder) Emit(e Event) {
	if r == nil || !r.t.enabled.Load() {
		return
	}
	e.Host = r.host
	e.Round = r.round.Load()
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
		r.dropped++
	}
	r.seq++
	r.mu.Unlock()
	r.beat.Store(e.Start + e.Dur)

	t := r.t
	t.events.Add(1)
	t.phaseCount[e.Phase].Add(1)
	t.phaseDur[e.Phase].Add(e.Dur)
	// Byte and mode rollups count encode spans only: their tags are Stats
	// deltas, so the live totals match the run's volume accounting. Other
	// phases reuse Value for wire lengths, which would double-count.
	if e.Phase == PhaseEncode {
		r.bytes.Add(e.Value + e.Meta + e.GID)
		t.value.Add(e.Value)
		t.meta.Add(e.Meta)
		t.gid.Add(e.GID)
		t.observeMsgBytes(e.Value + e.Meta + e.GID)
		if e.Mode >= 0 && e.Mode < NumModes {
			t.modeCount[e.Mode].Add(1)
		}
		switch e.Comp {
		case CompShipped:
			t.compressed.Add(1)
			t.compSaved.Add(e.Saved)
		case CompSkipped:
			t.compSkip.Add(1)
		}
	}
	for {
		cur := t.maxRound.Load()
		if e.Round <= cur || t.maxRound.CompareAndSwap(cur, e.Round) {
			break
		}
	}
}

// snapshot copies the ring out in emission order.
func (r *Recorder) snapshot() ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.dropped > 0 {
		// Ring has wrapped: oldest surviving event is at the cursor.
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out, r.dropped
}

// snapshotSince copies the events emitted after sequence number since (the
// value a previous call returned), in emission order. When the ring has
// wrapped past the cursor, the overwritten prefix is unrecoverable and is
// reported in missed. It is the incremental drain behind the sideband's
// periodic flushes.
func (r *Recorder) snapshotSince(since uint64) (out []Event, newSeq, missed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if since > r.seq {
		since = r.seq // cursor from another session; resynchronize
	}
	oldest := r.seq - uint64(len(r.buf))
	if since < oldest {
		missed = oldest - since
		since = oldest
	}
	n := int(r.seq - since)
	if n == 0 {
		return nil, r.seq, missed
	}
	out = make([]Event, 0, n)
	// Ring layout: emission order is buf[next:] ++ buf[:next] once wrapped,
	// plain buf before. The newest n events are the tail of that order.
	if r.dropped > 0 {
		start := r.next - n
		if start < 0 {
			out = append(out, r.buf[len(r.buf)+start:]...)
			out = append(out, r.buf[:r.next]...)
		} else {
			out = append(out, r.buf[start:r.next]...)
		}
	} else {
		out = append(out, r.buf[len(r.buf)-n:]...)
	}
	return out, r.seq, missed
}

// Cursor tracks how far a sideband shipper has drained each host's ring.
// The zero value starts from the beginning of the session.
type Cursor struct {
	seq map[int32]uint64
}

// HostBatch is one host's increment between two SnapshotNew calls.
type HostBatch struct {
	Host   int32   `json:"host"`
	Missed uint64  `json:"missed,omitempty"` // events lost to ring wrap since the last drain
	Events []Event `json:"events"`
}

// SnapshotNew drains the events emitted since the cursor's last position,
// one batch per host, and advances the cursor. Hosts with no new events are
// omitted. Safe concurrently with Emit; events emitted during the call land
// in this batch or the next.
func (t *Trace) SnapshotNew(c *Cursor) []HostBatch {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	if c.seq == nil {
		c.seq = make(map[int32]uint64)
	}
	var out []HostBatch
	for _, r := range recs {
		if r == nil {
			continue
		}
		ev, seq, missed := r.snapshotSince(c.seq[r.host])
		c.seq[r.host] = seq
		if len(ev) > 0 || missed > 0 {
			out = append(out, HostBatch{Host: r.host, Events: ev, Missed: missed})
		}
	}
	return out
}

// Now returns nanoseconds since the session epoch on the monotonic clock —
// the time base every recorder of this session stamps events with.
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Heartbeats snapshots every host's liveness atomics — the local view the
// watchdog and the sideband gossip publish.
func (t *Trace) Heartbeats() []Heartbeat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	out := make([]Heartbeat, 0, len(recs))
	for _, r := range recs {
		if r == nil {
			continue
		}
		out = append(out, HeartbeatOf(r))
	}
	return out
}

// PhaseLive is one phase's live rollup.
type PhaseLive struct {
	Count uint64 `json:"count"`
	DurNs int64  `json:"dur_ns"`
}

// LiveStats is the running rollup behind the metrics endpoint and the
// periodic stderr summary: cheap atomic counters updated on every Emit,
// readable without touching the rings.
type LiveStats struct {
	Label      string `json:"label,omitempty"`
	Events     uint64 `json:"events"`
	Dropped    uint64 `json:"dropped"`
	MaxRound   int32  `json:"max_round"`
	Messages   uint64 `json:"messages"`
	ValueBytes uint64 `json:"value_bytes"`
	MetaBytes  uint64 `json:"metadata_bytes"`
	GIDBytes   uint64 `json:"gid_bytes"`
	// Compressed/CompressSkipped split the messages compression considered;
	// CompressionSaved is the wire bytes the DEFLATE wrapper removed.
	Compressed       uint64 `json:"compressed_messages"`
	CompressSkipped  uint64 `json:"compress_skipped"`
	CompressionSaved uint64 `json:"compression_saved_bytes"`
	// Checkpoint plane: completed/failed checkpoint writes, bytes persisted,
	// and restores performed (DESIGN.md §4.6).
	CkptWrites   uint64               `json:"ckpt_writes,omitempty"`
	CkptBytes    uint64               `json:"ckpt_bytes,omitempty"`
	CkptErrors   uint64               `json:"ckpt_errors,omitempty"`
	CkptRestores uint64               `json:"ckpt_restores,omitempty"`
	Phases       map[string]PhaseLive `json:"phases"`
	Modes        map[string]uint64    `json:"modes"`
	// RoundLatency (seconds) and SyncMsgBytes (bytes) are the histogram
	// snapshots behind the Prometheus gluon_round_latency_seconds and
	// gluon_sync_message_bytes series.
	RoundLatency *HistLive `json:"round_latency,omitempty"`
	SyncMsgBytes *HistLive `json:"sync_message_bytes,omitempty"`
}

// TotalBytes returns the live payload byte total.
func (s *LiveStats) TotalBytes() uint64 { return s.ValueBytes + s.MetaBytes + s.GIDBytes }

// Live snapshots the rollup counters.
func (t *Trace) Live() LiveStats {
	if t == nil {
		return LiveStats{Phases: map[string]PhaseLive{}, Modes: map[string]uint64{}}
	}
	s := LiveStats{
		Label:            t.cfg.Label,
		Events:           t.events.Load(),
		Dropped:          t.Dropped(),
		MaxRound:         t.maxRound.Load(),
		Messages:         t.phaseCount[PhaseEncode].Load(),
		ValueBytes:       t.value.Load(),
		MetaBytes:        t.meta.Load(),
		GIDBytes:         t.gid.Load(),
		Compressed:       t.compressed.Load(),
		CompressSkipped:  t.compSkip.Load(),
		CompressionSaved: t.compSaved.Load(),
		CkptWrites:       t.ckptWrites.Load(),
		CkptBytes:        t.ckptBytes.Load(),
		CkptErrors:       t.ckptErrors.Load(),
		CkptRestores:     t.ckptRestores.Load(),
		Phases:           make(map[string]PhaseLive, NumPhases),
		Modes:            make(map[string]uint64, NumModes),
	}
	for p := Phase(0); p < NumPhases; p++ {
		if c := t.phaseCount[p].Load(); c > 0 {
			s.Phases[p.String()] = PhaseLive{Count: c, DurNs: t.phaseDur[p].Load()}
		}
	}
	for m := 0; m < NumModes; m++ {
		if c := t.modeCount[m].Load(); c > 0 {
			s.Modes[ModeName(int8(m))] = c
		}
	}
	if t.roundCount.Load() > 0 {
		h := &HistLive{
			Bounds: make([]float64, numRoundBuckets),
			Counts: make([]uint64, numRoundBuckets+1),
			Sum:    float64(t.roundSumNs.Load()) / 1e9,
			Count:  t.roundCount.Load(),
		}
		for i := 0; i < numRoundBuckets; i++ {
			h.Bounds[i] = float64(RoundBucketNs(i)) / 1e9
		}
		for i := range h.Counts {
			h.Counts[i] = t.roundHist[i].Load()
		}
		s.RoundLatency = h
	}
	if t.msgCount.Load() > 0 {
		h := &HistLive{
			Bounds: make([]float64, numMsgBuckets),
			Counts: make([]uint64, numMsgBuckets+1),
			Sum:    float64(t.msgSum.Load()),
			Count:  t.msgCount.Load(),
		}
		for i := 0; i < numMsgBuckets; i++ {
			h.Bounds[i] = float64(MsgBucketBytes(i))
		}
		for i := range h.Counts {
			h.Counts[i] = t.msgHist[i].Load()
		}
		s.SyncMsgBytes = h
	}
	return s
}
