package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: the nil *Trace and nil *Recorder are valid, permanently
// disabled objects — every instrumentation site relies on this.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Error("nil Trace reports enabled")
	}
	tr.SetEnabled(true)
	if tr.Label() != "" {
		t.Error("nil Trace has a label")
	}
	if r := tr.Recorder(3); r != nil {
		t.Error("nil Trace handed out a recorder")
	}
	if ev, d := tr.Snapshot(); ev != nil || d != 0 {
		t.Error("nil Trace snapshot not empty")
	}
	if tr.Dropped() != 0 {
		t.Error("nil Trace dropped != 0")
	}
	live := tr.Live()
	if live.Events != 0 || live.Phases == nil || live.Modes == nil {
		t.Error("nil Trace Live() not an initialized zero rollup")
	}

	var r *Recorder
	if r.Enabled() {
		t.Error("nil Recorder reports enabled")
	}
	if r.Now() != 0 {
		t.Error("nil Recorder Now() != 0")
	}
	r.SetRound(7)
	r.Emit(Event{Phase: PhaseSync}) // must not panic
}

// TestDisabledDiscards: a disabled session drops events before they reach
// any ring or counter.
func TestDisabledDiscards(t *testing.T) {
	tr := New(Config{})
	r := tr.Recorder(0)
	tr.SetEnabled(false)
	if r.Enabled() {
		t.Error("recorder enabled while session disabled")
	}
	r.Emit(Event{Phase: PhaseEncode, Value: 100, Mode: 1})
	if ev, _ := tr.Snapshot(); len(ev) != 0 {
		t.Errorf("disabled emit recorded %d events", len(ev))
	}
	if tr.Live().Events != 0 {
		t.Error("disabled emit bumped live counters")
	}
	tr.SetEnabled(true)
	r.Emit(Event{Phase: PhaseEncode, Value: 100, Mode: 1})
	if ev, _ := tr.Snapshot(); len(ev) != 1 {
		t.Errorf("re-enabled emit recorded %d events, want 1", len(ev))
	}
}

// TestRingOverflow: past capacity, old events are overwritten (counted as
// dropped) and snapshot returns the suffix window in emission order.
func TestRingOverflow(t *testing.T) {
	tr := New(Config{Capacity: 4})
	r := tr.Recorder(0)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Phase: PhaseSend, Start: int64(i)})
	}
	ev, dropped := tr.Snapshot()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
	if len(ev) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.Start != want {
			t.Errorf("ev[%d].Start = %d, want %d (oldest-first suffix)", i, e.Start, want)
		}
	}
	if live := tr.Live(); live.Events != 10 {
		t.Errorf("live events = %d, want 10 (rollup counts all emits)", live.Events)
	}
}

// TestSnapshotMergeOrder: events from several hosts come back sorted by
// Start, stamped with their host and round.
func TestSnapshotMergeOrder(t *testing.T) {
	tr := New(Config{})
	r0, r1 := tr.Recorder(0), tr.Recorder(1)
	if tr.Recorder(0) != r0 {
		t.Fatal("Recorder(0) not memoized")
	}
	r1.SetRound(2)
	r1.Emit(Event{Phase: PhaseCompute, Start: 30})
	r0.Emit(Event{Phase: PhaseSync, Start: 10})
	r1.Emit(Event{Phase: PhaseSync, Start: 20})
	ev, _ := tr.Snapshot()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Start != 10 || ev[1].Start != 20 || ev[2].Start != 30 {
		t.Errorf("events not Start-ordered: %+v", ev)
	}
	if ev[0].Host != 0 || ev[1].Host != 1 {
		t.Error("host stamping wrong")
	}
	if ev[0].Round != -1 {
		t.Errorf("default round = %d, want -1", ev[0].Round)
	}
	if ev[1].Round != 2 || ev[2].Round != 2 {
		t.Error("SetRound not stamped")
	}
}

// TestLiveRollup: the atomic counters behind the metrics endpoint track
// emits, byte tags, phase durations, and the encode-only mode histogram.
func TestLiveRollup(t *testing.T) {
	tr := New(Config{Label: "roll"})
	r := tr.Recorder(0)
	r.SetRound(3)
	r.Emit(Event{Phase: PhaseEncode, Dur: 5, Value: 10, Meta: 4, GID: 2, Mode: 2})
	r.Emit(Event{Phase: PhaseEncode, Dur: 7, Value: 20, Mode: 2})
	// A non-encode event's Value is a wire length and its Mode slot is
	// meaningless — neither may pollute the byte or mode rollups.
	r.Emit(Event{Phase: PhaseRecvWait, Dur: 100, Value: 34, Mode: 1})
	s := tr.Live()
	if s.Label != "roll" || s.Events != 3 || s.MaxRound != 3 || s.Messages != 2 {
		t.Errorf("rollup header wrong: %+v", s)
	}
	if s.ValueBytes != 30 || s.MetaBytes != 4 || s.GIDBytes != 2 {
		t.Errorf("byte rollup wrong: %+v", s)
	}
	if s.Modes["bitvec"] != 2 || s.Modes["dense"] != 0 {
		t.Errorf("mode rollup wrong: %v", s.Modes)
	}
	if p := s.Phases["encode"]; p.Count != 2 || p.DurNs != 12 {
		t.Errorf("encode phase rollup wrong: %+v", p)
	}
}

// TestConcurrentEmit: many goroutines on one recorder plus snapshots in
// flight; meant for -race.
func TestConcurrentEmit(t *testing.T) {
	tr := New(Config{Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := tr.Recorder(g % 2)
			for i := 0; i < 500; i++ {
				r.SetRound(int32(i))
				r.Emit(Event{Phase: PhaseSend, Start: r.Now()})
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		tr.Snapshot()
		tr.Live()
	}
	wg.Wait()
	if got := tr.Live().Events; got != 2000 {
		t.Errorf("events = %d, want 2000", got)
	}
}

func TestPhaseNames(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := ParsePhase(p.String())
		if !ok || got != p {
			t.Errorf("ParsePhase(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePhase("bogus"); ok {
		t.Error("ParsePhase accepted bogus name")
	}
	if !PhaseFrameSend.Instant() || !PhaseFault.Instant() || PhaseBarrier.Instant() {
		t.Error("Instant() classification wrong")
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase name")
	}
}

// testEvents is a fixture exercising every field that must round-trip.
func testEvents() []Event {
	return []Event{
		{Start: 1000, Dur: 500, Phase: PhaseSync, Host: 0, Round: -1, Peer: -1, Field: 90, Detail: "dist"},
		{Start: 1100, Dur: 50, Phase: PhaseEncode, Host: 0, Round: 0, Peer: 1, Lane: 1, Field: 90, Mode: 2, Value: 128, Meta: 16},
		{Start: 1150, Dur: 10, Phase: PhaseEncode, Host: 0, Round: 0, Peer: 2, Lane: 2, Field: 90, Mode: 0},
		{Start: 1200, Phase: PhaseFrameSend, Host: 0, Round: 0, Peer: 1, Field: 3, Value: 144},
		{Start: 1300, Dur: 80, Phase: PhaseEncode, Host: 1, Round: 0, Peer: 0, Lane: 1, Field: 90, Mode: 4, GID: 64, Value: 32},
		{Start: 1400, Dur: 200, Phase: PhaseCompute, Host: 1, Round: 0, Peer: -1},
		{Start: 1500, Dur: 90, Phase: PhaseBarrier, Host: 1, Round: 0, Peer: -1, Detail: "termination"},
		{Start: 1600, Phase: PhaseFault, Host: 1, Round: 0, Peer: 0, Detail: "injected delay 5ms"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := testEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "rt", events, 7); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 7 {
		t.Errorf("dropped = %d, want 7", dropped)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	events := testEvents()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "rt", events, 3); err != nil {
		t.Fatal(err)
	}
	// The document must be valid JSON with the trace_event shape.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("chrome export missing traceEvents")
	}
	got, dropped, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d (metadata records must be skipped)", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestWriteFileFormats(t *testing.T) {
	tr := New(Config{Label: "file"})
	r := tr.Recorder(0)
	r.Emit(Event{Phase: PhaseEncode, Dur: 10, Peer: 1, Value: 5, Mode: 1})

	dir := t.TempDir()
	for _, name := range []string{"out.json", "out.jsonl"} {
		path := dir + "/" + name
		if err := tr.WriteFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, _, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || got[0].Phase != PhaseEncode || got[0].Value != 5 {
			t.Errorf("%s: round-trip lost the event: %+v", name, got)
		}
	}
}

func TestReadEventsErrors(t *testing.T) {
	if _, _, err := ReadEvents(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ReadEvents(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	// Valid JSON that is not a gluon export must not parse as zero events.
	if _, _, err := ReadEvents(strings.NewReader(`{"garbage": true}`)); err == nil {
		t.Error("foreign JSON accepted as a trace")
	}
	if _, _, err := ReadEvents(strings.NewReader("{\"host\":1,\"phase\":\"encode\"}\n")); err == nil {
		t.Error("headerless JSONL accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize("sum", testEvents(), 2)
	if s.Events != 8 || s.Dropped != 2 || s.Hosts != 2 {
		t.Errorf("header wrong: %+v", s)
	}
	if s.Messages != 3 || s.ValueBytes != 160 || s.MetaBytes != 16 || s.GIDBytes != 64 {
		t.Errorf("totals wrong: %+v", s)
	}
	if s.TotalBytes() != 240 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
	if s.Modes[0] != 1 || s.Modes[2] != 1 || s.Modes[4] != 1 {
		t.Errorf("modes wrong: %v", s.Modes)
	}
	// Rounds: -1 (the sync span) and 0.
	if len(s.Rounds) != 2 || s.Rounds[0].Round != -1 || s.Rounds[1].Round != 0 {
		t.Fatalf("rounds wrong: %+v", s.Rounds)
	}
	r0 := s.Rounds[1]
	if r0.Messages != 3 || r0.ComputeNs != 200 || r0.BarrierNs != 90 {
		t.Errorf("round 0 wrong: %+v", r0)
	}
	// Peer skew: host0 sent to peers 1 and 2, host1 to peer 0.
	if len(s.Peers) != 3 {
		t.Fatalf("peers wrong: %+v", s.Peers)
	}
	if p := s.Peers[0]; p.Host != 0 || p.Peer != 1 || p.Bytes != 144 {
		t.Errorf("peer[0] wrong: %+v", p)
	}
	if len(s.Faults) != 1 || s.Faults[0].Detail != "injected delay 5ms" {
		t.Errorf("faults wrong: %+v", s.Faults)
	}

	var buf bytes.Buffer
	if err := s.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per-round volume", "per-peer volume", "phase time breakdown", "encoding modes", "fault timeline", "bitvec", "injected delay 5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
}

// TestSummarizeMaxAcrossHosts: round time columns take the max of per-host
// sums, not the global sum.
func TestSummarizeMaxAcrossHosts(t *testing.T) {
	s := Summarize("", []Event{
		{Phase: PhaseSync, Host: 0, Round: 0, Dur: 10},
		{Phase: PhaseSync, Host: 0, Round: 0, Dur: 15}, // host 0 sums to 25
		{Phase: PhaseSync, Host: 1, Round: 0, Dur: 40}, // host 1 is the max
	}, 0)
	if len(s.Rounds) != 1 || s.Rounds[0].SyncNs != 40 {
		t.Errorf("sync max = %+v, want 40", s.Rounds)
	}
}

func TestMetricsServer(t *testing.T) {
	tr := New(Config{Label: "http"})
	tr.Recorder(0).Emit(Event{Phase: PhaseEncode, Value: 42, Mode: 1, Dur: 9})
	ms, err := ServeMetrics("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	for _, path := range []string{"/", "/metrics", "/debug/vars"} {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var s LiveStats
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		if s.Label != "http" || s.Events != 1 || s.ValueBytes != 42 {
			t.Errorf("GET %s: rollup wrong: %+v", path, s)
		}
	}
}

// TestMetricsPrometheus: /metrics content-negotiates the Prometheus text
// exposition alongside the JSON default — via ?format= and via Accept.
func TestMetricsPrometheus(t *testing.T) {
	tr := New(Config{Label: "prom"})
	tr.Recorder(0).SetRound(3)
	tr.Recorder(0).Emit(Event{Phase: PhaseEncode, Value: 42, Meta: 7, Mode: 1, Dur: 9})
	tr.Recorder(0).Emit(Event{Phase: PhaseFault, Detail: "boom"})
	ms, err := ServeMetrics("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	get := func(path string, accept string) (string, string) {
		req, _ := http.NewRequest("GET", "http://"+ms.Addr()+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body), resp.Header.Get("Content-Type")
	}

	for _, req := range []struct{ path, accept string }{
		{"/metrics?format=prometheus", ""},
		{"/metrics", "text/plain"},
	} {
		body, ctype := get(req.path, req.accept)
		if !strings.Contains(ctype, "version=0.0.4") {
			t.Errorf("%s Accept=%q: content type %q, want Prometheus text exposition", req.path, req.accept, ctype)
		}
		for _, want := range []string{
			`gluon_sync_bytes_total{kind="value"} 42`,
			`gluon_sync_bytes_total{kind="metadata"} 7`,
			"gluon_round 3",
			"gluon_sync_messages_total 1",
			"gluon_faults_total 1",
			"gluon_trace_dropped_total 0",
			`gluon_encode_mode_total{mode=`,
			"# TYPE gluon_round gauge",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s Accept=%q: missing %q in:\n%s", req.path, req.accept, want, body)
			}
		}
	}

	// JSON stays the default and is forceable even with a text Accept.
	body, _ := get("/metrics?format=json", "text/plain")
	var s LiveStats
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("?format=json: bad JSON: %v", err)
	}
	if s.ValueBytes != 42 {
		t.Errorf("?format=json rollup wrong: %+v", s)
	}
}

// TestMetricsPprof: the profiling handlers ride the metrics mux so CPU/heap
// capture is available wherever metrics are served.
func TestMetricsPprof(t *testing.T) {
	tr := New(Config{})
	ms, err := ServeMetrics("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
	}
}

// TestLabelPhase: the phase-label gate is allocation-free when off (the
// default) and round-trips goroutine labels when on.
func TestLabelPhase(t *testing.T) {
	if PhaseLabelsEnabled() {
		t.Fatal("phase labels enabled by default")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		done := LabelPhase(PhaseEncode)
		done()
	}); allocs != 0 {
		t.Errorf("disabled LabelPhase allocates %.0f/op, want 0", allocs)
	}
	SetPhaseLabels(true)
	defer SetPhaseLabels(false)
	if !PhaseLabelsEnabled() {
		t.Error("SetPhaseLabels(true) not visible")
	}
	// Goroutine label sets are only observable through profiles; assert the
	// enabled path applies and restores without panicking.
	done := LabelPhase(PhaseFold)
	done()
}

func TestStartSummary(t *testing.T) {
	tr := New(Config{})
	tr.Recorder(0).Emit(Event{Phase: PhaseEncode, Value: 10, Dur: 3})
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartSummary(w, tr, time.Hour) // no tick fires; stop prints the final line
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "msgs=1") || !strings.Contains(out, "events=1") {
		t.Errorf("final summary line missing: %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestEmitNoAlloc pins the hot-path allocation contract: an enabled Emit
// with a constant Detail performs zero heap allocations.
func TestEmitNoAlloc(t *testing.T) {
	tr := New(Config{Capacity: 1 << 12})
	r := tr.Recorder(0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Event{Phase: PhaseSend, Start: 1, Dur: 2, Peer: 1, Detail: "hot"})
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.1f per call, want 0", allocs)
	}
}

func TestModeNames(t *testing.T) {
	want := []string{"empty", "dense", "bitvec", "indices", "gids"}
	for m, name := range want {
		if ModeName(int8(m)) != name {
			t.Errorf("ModeName(%d) = %q, want %q", m, ModeName(int8(m)), name)
		}
	}
	if ModeName(9) != "unknown" {
		t.Error("ModeName(9) should be unknown")
	}
}

func ExampleSummary_WriteTables() {
	s := Summarize("example", []Event{
		{Phase: PhaseEncode, Host: 0, Round: 0, Peer: 1, Value: 100, Mode: 1, Dur: 10},
	}, 0)
	fmt.Println(s.Messages, s.TotalBytes())
	// Output: 1 100
}
