package trace

// Live subscription plane. The sideband already streams every host's spans
// to one collector; this file lets viewers tap that stream while the run is
// still going. A viewer (gluon-top, or AttachWatcher programmatically) dials
// the collector's sideband port, sends one sbWatch frame, and receives a
// stream of sbUpdate frames — each a self-contained ViewUpdate snapshot of
// the cluster: merged rollup counters, per-host heartbeats, shipper session
// states, and the critical-path verdict the collector computes incrementally
// as batches arrive. Self-contained updates make the attach semantics
// trivial: the first frame IS the consistent snapshot (it carries every
// round attributed so far), and each later frame supersedes the previous
// one, so a viewer can never observe a torn state.
//
// Fan-out is bounded: each viewer gets a small queue of marshaled updates,
// and a viewer that falls behind (stalled terminal, dead TCP peer) is
// dropped — its connection closed — rather than ever back-pressuring the
// collector or the shippers. The updates are pushed on a fixed cadence
// (sbUpdateInterval) plus an immediate kick whenever a stats frame or a
// session state change lands, so the dashboard tracks round progress at
// shipper-flush latency, not polling latency.

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// sbUpdateInterval is the fan-out cadence between kicks.
const sbUpdateInterval = 250 * time.Millisecond

// defaultViewerQueue bounds each viewer's marshaled-update queue; a viewer
// this far behind is dropped.
const defaultViewerQueue = 8

// snapshotRounds caps the rounds a fresh viewer's first update replays;
// steady-state updates carry tailRounds.
const (
	snapshotRounds = 512
	tailRounds     = 32
)

// ViewUpdate is one push to a live viewer: the whole dashboard state.
type ViewUpdate struct {
	// Seq increases by one per collector-side update; gaps mean this viewer
	// had updates dropped (it was slow but survived inside its queue).
	Seq int64 `json:"seq"`
	// Snapshot marks a viewer's first update, which replays the attributed
	// round history (up to snapshotRounds) instead of just the tail.
	Snapshot bool `json:"snapshot,omitempty"`
	// NowNs is the collector clock at build time — subtract a heartbeat's
	// BeatNs from it for staleness.
	NowNs int64  `json:"now_ns"`
	Label string `json:"label,omitempty"`
	// Sessions are the shipper lifecycle records; a session in state
	// "error" is a disconnected host, not a frozen one.
	Sessions []SessionInfo `json:"sessions,omitempty"`
	// Hearts is the latest heartbeat per host, on the collector clock.
	Hearts []Heartbeat `json:"heartbeats,omitempty"`
	// Stats merges the collector-local rollup with every session's last
	// shipped rollup (histograms omitted; counters summed, MaxRound maxed).
	Stats LiveStats `json:"stats"`
	// Hosts / Rounds / Verdict / Ledger come from the incremental
	// critical-path engine (critical.go).
	Hosts   []HostPhaseSum `json:"hosts,omitempty"`
	Rounds  []RoundPath    `json:"rounds,omitempty"`
	Verdict Verdict        `json:"verdict"`
	Ledger  Ledger         `json:"ledger"`
}

// sbViewer is one attached viewer: a bounded queue of marshaled updates and
// a writer goroutine draining it to the conn.
type sbViewer struct {
	conn net.Conn
	ch   chan []byte
	quit chan struct{}
	once sync.Once
}

func (v *sbViewer) close() {
	v.once.Do(func() {
		close(v.quit)
		v.conn.Close()
	})
}

// SetViewerQueue overrides the per-viewer update queue depth (default 8).
// Affects viewers attached after the call; tests use 1 to force slow-viewer
// drops deterministically.
func (c *Collector) SetViewerQueue(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.viewerCap = n
	c.mu.Unlock()
}

// Viewers returns the number of currently attached live viewers.
func (c *Collector) Viewers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.viewers)
}

// kickLive requests an immediate fan-out (coalesced; never blocks).
func (c *Collector) kickLive() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// addViewer registers a watching connection, queues its snapshot update, and
// starts its writer. Returns nil if the collector is shutting down.
func (c *Collector) addViewer(conn net.Conn) *sbViewer {
	c.drainLocal()
	snap, err := json.Marshal(c.buildUpdate(true))
	if err != nil {
		return nil
	}
	c.mu.Lock()
	select {
	case <-c.stop:
		// Registration and the stop check share the critical section so a
		// closing collector either sees this viewer in dropAllViewers or
		// refuses it here — never a registered-but-unswept leak.
		c.mu.Unlock()
		return nil
	default:
	}
	v := &sbViewer{conn: conn, ch: make(chan []byte, c.viewerCap), quit: make(chan struct{})}
	c.viewers[v] = struct{}{}
	c.mu.Unlock()
	v.ch <- snap // fresh queue; cannot block
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-v.quit:
				return
			case b := <-v.ch:
				if err := writeFrame(conn, sbUpdate, b); err != nil {
					c.dropViewer(v)
					return
				}
			}
		}
	}()
	return v
}

// dropViewer detaches a viewer and closes its connection.
func (c *Collector) dropViewer(v *sbViewer) {
	c.mu.Lock()
	delete(c.viewers, v)
	c.mu.Unlock()
	v.close()
}

func (c *Collector) dropAllViewers() {
	c.mu.Lock()
	vs := make([]*sbViewer, 0, len(c.viewers))
	for v := range c.viewers {
		vs = append(vs, v)
	}
	c.viewers = make(map[*sbViewer]struct{})
	c.mu.Unlock()
	for _, v := range vs {
		v.close()
	}
}

// updateLoop drains the local trace into the attribution engine and fans
// updates out to viewers until the collector closes. It runs for the whole
// listener lifetime (started by Serve) so local rounds are attributed even
// before the first viewer attaches.
func (c *Collector) updateLoop() {
	tick := time.NewTicker(sbUpdateInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		case <-c.kick:
		}
		c.drainLocal()
		c.mu.Lock()
		nViewers := len(c.viewers)
		c.mu.Unlock()
		if nViewers == 0 {
			continue
		}
		b, err := json.Marshal(c.buildUpdate(false))
		if err != nil {
			continue
		}
		c.mu.Lock()
		var slow []*sbViewer
		for v := range c.viewers {
			select {
			case v.ch <- b:
			default:
				// Queue full: this viewer can't keep up. Drop it rather
				// than stall the fan-out (and with it, nothing — shippers
				// never wait on viewers, but memory would).
				slow = append(slow, v)
			}
		}
		for _, v := range slow {
			delete(c.viewers, v)
		}
		c.mu.Unlock()
		for _, v := range slow {
			v.close()
		}
	}
}

// drainLocal feeds the collector-local trace (if any) into the attribution
// engine and the health table. Local events are already on the reference
// clock, so the offset is zero and the uncertainty exact.
func (c *Collector) drainLocal() {
	c.mu.Lock()
	local := c.local
	c.mu.Unlock()
	if local == nil {
		return
	}
	c.mu.Lock()
	batches := local.SnapshotNew(&c.localCur)
	c.mu.Unlock()
	for _, b := range batches {
		c.builder.SetHostClock(b.Host, 0)
		c.builder.Ingest(b.Events, 0)
	}
	for _, hb := range local.Heartbeats() {
		c.health.Update(hb)
	}
}

// buildUpdate assembles the current dashboard state.
func (c *Collector) buildUpdate(snapshot bool) *ViewUpdate {
	c.mu.Lock()
	c.seq++
	u := &ViewUpdate{
		Seq:      c.seq,
		Snapshot: snapshot,
		Label:    c.label,
		Sessions: c.sessionInfosLocked(),
		Stats:    c.mergedStatsLocked(),
	}
	local := c.local
	c.mu.Unlock()
	if local != nil && u.Label == "" {
		u.Label = local.Label()
	}
	u.NowNs = c.now()
	u.Hearts = c.health.Snapshot()
	u.Hosts = c.builder.HostTotals()
	if snapshot {
		u.Rounds = c.builder.Tail(snapshotRounds)
	} else {
		u.Rounds = c.builder.Tail(tailRounds)
	}
	u.Verdict = c.builder.Verdict()
	u.Ledger = c.builder.Ledger()
	return u
}

// mergedStatsLocked sums the local rollup with every session's last shipped
// rollup. Counters add, MaxRound takes the max, histograms are omitted
// (their bucket layouts are per-process). Caller holds c.mu.
func (c *Collector) mergedStatsLocked() LiveStats {
	var out LiveStats
	out.Label = c.label
	add := func(s LiveStats) {
		out.Events += s.Events
		out.Dropped += s.Dropped
		if s.MaxRound > out.MaxRound {
			out.MaxRound = s.MaxRound
		}
		out.Messages += s.Messages
		out.ValueBytes += s.ValueBytes
		out.MetaBytes += s.MetaBytes
		out.GIDBytes += s.GIDBytes
		out.Compressed += s.Compressed
		out.CompressSkipped += s.CompressSkipped
		out.CompressionSaved += s.CompressionSaved
		out.CkptWrites += s.CkptWrites
		out.CkptBytes += s.CkptBytes
		out.CkptErrors += s.CkptErrors
		out.CkptRestores += s.CkptRestores
		for name, pl := range s.Phases {
			if out.Phases == nil {
				out.Phases = make(map[string]PhaseLive)
			}
			agg := out.Phases[name]
			agg.Count += pl.Count
			agg.DurNs += pl.DurNs
			out.Phases[name] = agg
		}
		for name, n := range s.Modes {
			if out.Modes == nil {
				out.Modes = make(map[string]uint64)
			}
			out.Modes[name] += n
		}
	}
	if c.local != nil {
		add(c.local.Live())
	}
	for _, s := range c.sess {
		add(s.stats)
	}
	out.Dropped += c.missed
	return out
}

// Watcher is a live subscription to a collector, as used by gluon-top.
type Watcher struct {
	conn net.Conn
	ch   chan ViewUpdate
	done chan struct{}

	mu  sync.Mutex
	err error
}

// AttachWatcher dials a collector's sideband address and subscribes to live
// updates. The first update received is the consistent snapshot; every later
// one supersedes it. If this watcher falls behind the collector drops it and
// Updates closes (Err tells why).
func AttachWatcher(addr string, dialTimeout time.Duration) (*Watcher, error) {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("trace: dialing collector %s: %w", addr, err)
	}
	if err := writeFrame(conn, sbWatch, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("trace: watch handshake: %w", err)
	}
	w := &Watcher{conn: conn, ch: make(chan ViewUpdate, 4), done: make(chan struct{})}
	go w.readLoop()
	return w, nil
}

func (w *Watcher) readLoop() {
	defer close(w.done)
	defer close(w.ch)
	for {
		typ, body, err := readFrame(w.conn)
		if err != nil {
			w.setErr(err)
			return
		}
		if typ != sbUpdate {
			w.setErr(fmt.Errorf("trace: unexpected frame type %d on watch stream", typ))
			return
		}
		var u ViewUpdate
		if err := json.Unmarshal(body, &u); err != nil {
			w.setErr(fmt.Errorf("trace: bad update frame: %w", err))
			return
		}
		// Never block on a slow consumer: shed the oldest queued update —
		// each one supersedes its predecessors anyway.
		for {
			select {
			case w.ch <- u:
			default:
				select {
				case <-w.ch:
				default:
				}
				continue
			}
			break
		}
	}
}

// Updates streams ViewUpdates; the channel closes when the subscription
// ends (collector gone, watcher dropped, or Close called).
func (w *Watcher) Updates() <-chan ViewUpdate { return w.ch }

func (w *Watcher) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// Err reports why the subscription ended (nil while healthy or after Close).
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close detaches from the collector.
func (w *Watcher) Close() error {
	w.mu.Lock()
	if w.err == nil {
		w.err = net.ErrClosed
	}
	w.mu.Unlock()
	err := w.conn.Close()
	<-w.done
	if err == nil || w.Err() == net.ErrClosed {
		return nil
	}
	return err
}
