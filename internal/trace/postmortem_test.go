package trace

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestTriggersPinned pins the fixed-size dump-counter array to the trigger
// taxonomy: anyone adding a Trigger must grow numTriggers with it.
func TestTriggersPinned(t *testing.T) {
	if len(Triggers) != numTriggers {
		t.Fatalf("Triggers has %d entries but numTriggers = %d — update both together", len(Triggers), numTriggers)
	}
	seen := map[Trigger]bool{}
	for _, tr := range Triggers {
		if seen[tr] {
			t.Errorf("duplicate trigger %q", tr)
		}
		seen[tr] = true
	}
	for i, tr := range Triggers {
		if triggerIndex(tr) != i {
			t.Errorf("triggerIndex(%q) = %d, want %d", tr, triggerIndex(tr), i)
		}
	}
}

// TestRingWraparoundConcurrent drives concurrent emitters on two hosts well
// past ring capacity: Dropped must stay exact (retained + dropped = emitted)
// and Snapshot must come back Start-ordered across the wrapped rings.
func TestRingWraparoundConcurrent(t *testing.T) {
	const (
		capacity   = 256
		hosts      = 2
		goroutines = 4 // per host
		perG       = 500
	)
	tr := New(Config{Capacity: capacity})
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		r := tr.Recorder(h)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					r.Emit(Event{Phase: PhaseSync, Start: r.Now(), Peer: -1})
				}
			}()
		}
	}
	wg.Wait()

	events, dropped := tr.Snapshot()
	total := uint64(hosts * goroutines * perG)
	if uint64(len(events))+dropped != total {
		t.Fatalf("retained %d + dropped %d != emitted %d", len(events), dropped, total)
	}
	if len(events) != hosts*capacity {
		t.Fatalf("snapshot holds %d events, want %d (capacity %d × %d hosts)",
			len(events), hosts*capacity, capacity, hosts)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, events[i].Start, events[i-1].Start)
		}
	}
	if got := tr.Dropped(); got != dropped {
		t.Fatalf("Dropped() = %d after Snapshot reported %d", got, dropped)
	}
}

// TestFlightRecorderDumpAndLoad: Dump freezes a parseable bundle carrying
// the ring tail, stacks, and the dump context; a second dump for the same
// (trigger, host, peer) key is suppressed.
func TestFlightRecorderDumpAndLoad(t *testing.T) {
	dir := t.TempDir()
	tr := New(Config{Capacity: 64, Label: "dump-test"})
	r := tr.Recorder(2)
	r.SetRound(7)
	r.Emit(Event{Phase: PhaseEncode, Start: r.Now(), Peer: 1})

	fr := NewFlightRecorder(FlightConfig{Dir: dir, Trace: tr, Host: 2})
	fr.SetRunConfig("unit test")
	fr.SetLastCheckpoint(4)
	info := DumpInfo{Trigger: TriggerManual, Host: 2, Peer: -1, Round: 7,
		Phase: PhaseEncode, Cause: errors.New("operator asked")}
	path, err := fr.Dump(info)
	if err != nil || path == "" {
		t.Fatalf("Dump: path=%q err=%v", path, err)
	}
	if p2, err := fr.Dump(info); err != nil || p2 != "" {
		t.Fatalf("duplicate dump not suppressed: path=%q err=%v", p2, err)
	}

	bundles, bad, err := LoadBundles(dir)
	if err != nil || len(bad) != 0 {
		t.Fatalf("LoadBundles: bundles=%d bad=%v err=%v", len(bundles), bad, err)
	}
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Version != BundleVersion || b.Trigger != TriggerManual || b.Host != 2 || b.Round != 7 {
		t.Errorf("bundle header wrong: %+v", b)
	}
	if b.LastCkptEpoch != 4 {
		t.Errorf("LastCkptEpoch = %d, want 4", b.LastCkptEpoch)
	}
	if b.RunConfig != "unit test" {
		t.Errorf("RunConfig = %q", b.RunConfig)
	}
	if !strings.Contains(b.Cause, "operator asked") {
		t.Errorf("Cause = %q", b.Cause)
	}
	if len(b.Events) != 1 {
		t.Errorf("bundle carries %d ring events, want 1", len(b.Events))
	}
	if b.Stacks == "" || !strings.Contains(b.Stacks, "goroutine") {
		t.Error("bundle carries no goroutine dump")
	}
	if b.TraceID == "" {
		t.Error("bundle has no trace id")
	}
	if counts := fr.DumpCounts(); counts[triggerIndex(TriggerManual)] != 1 {
		t.Errorf("DumpCounts = %v", counts)
	}
}

// TestFlightRecorderMaxDumps caps cascade flooding.
func TestFlightRecorderMaxDumps(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Dir: t.TempDir(), MaxDumps: 2})
	triggers := []Trigger{TriggerPeerPoison, TriggerDeadHost, TriggerStall}
	var written int
	for i, tg := range triggers {
		path, err := fr.Dump(DumpInfo{Trigger: tg, Host: 0, Peer: i, Round: -1, Phase: NumPhases})
		if err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		if path != "" {
			written++
		}
	}
	if written != 2 {
		t.Fatalf("wrote %d bundles, want MaxDumps = 2", written)
	}
}

// TestDiagnoseSilentDeath: survivors naming a peer that left no bundle of
// its own yield a silent-death verdict against that rank (the kill -9 /
// power-loss case).
func TestDiagnoseSilentDeath(t *testing.T) {
	mk := func(host int32, sess string, at int64) *Bundle {
		return &Bundle{Version: BundleVersion, Trigger: TriggerDeadHost, Host: host, Peer: 2,
			Round: 3, Phase: "recvwait", TraceID: sess, WallUnixNano: 1_000_000_000 + at,
			SessionNs: at, Cause: "peer declared dead: connection reset"}
	}
	d := Diagnose([]*Bundle{mk(0, "s0", 100), mk(1, "s1", 200)})
	if d.FailedRank != 2 || !d.SilentDeath {
		t.Fatalf("FailedRank=%d SilentDeath=%v, want 2/true", d.FailedRank, d.SilentDeath)
	}
	if d.ClockSource != "wall" {
		t.Errorf("ClockSource = %q, want wall (no measured offsets)", d.ClockSource)
	}
	if d.Sessions != 2 || len(d.Chain) != 2 {
		t.Errorf("Sessions=%d Chain=%d", d.Sessions, len(d.Chain))
	}
	var buf bytes.Buffer
	d.WriteReport(&buf)
	out := buf.String()
	if !strings.Contains(out, "host 2 failed first") || !strings.Contains(out, "died silently") {
		t.Errorf("report missing silent-death verdict:\n%s", out)
	}
}

// TestLogHandlerPrefixAndTee: the slog handler hoists host/round/phase into
// the bracket prefix and tees rendered lines into the armed recorder.
func TestLogHandlerPrefixAndTee(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(NewLogHandler(&buf, "testcomp", nil))
	fr := NewFlightRecorder(FlightConfig{Dir: t.TempDir()})
	Arm(fr)
	defer Arm(nil)

	log.Warn("something broke", LogKeyHost, 2, LogKeyRound, 17, LogKeyPhase, "fold", "peer", 1)
	line := buf.String()
	for _, want := range []string{"WARN testcomp:", "[h2 r17 fold]", "something broke", "peer=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
	logs := fr.recentLogs()
	if len(logs) != 1 || !strings.Contains(logs[0], "something broke") {
		t.Errorf("armed recorder tee = %v", logs)
	}

	buf.Reset()
	LogDropped(slog.New(NewLogHandler(&buf, "c", nil)), 0)
	if buf.Len() != 0 {
		t.Errorf("LogDropped(0) wrote %q", buf.String())
	}
	LogDropped(slog.New(NewLogHandler(&buf, "c", nil)), 42)
	if !strings.Contains(buf.String(), "dropped=42") || !strings.Contains(buf.String(), "remedy=") {
		t.Errorf("LogDropped line = %q", buf.String())
	}
}
