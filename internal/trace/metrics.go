package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Live metrics exposure: an expvar-style HTTP endpoint serving the running
// rollup counters as flat JSON, and a periodic one-line stderr summary.
// Both read only the atomic counters, never the event rings, so they are
// safe to poll at any rate while a run is in flight.

// MetricsServer serves a Trace's live counters over HTTP.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics starts an HTTP server on addr (e.g. "localhost:6060" or
// ":0") exposing the session's live counters at "/", "/metrics", and
// "/debug/vars" — JSON by default, Prometheus text exposition when the
// request asks for it (?format=prometheus, or a text/plain / openmetrics
// Accept header, i.e. a standard Prometheus scrape) — plus the
// net/http/pprof capture tree under /debug/pprof/ for on-demand CPU and
// heap profiles. The server runs until Close.
func ServeMetrics(addr string, t *Trace) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, r *http.Request) {
		live := t.Live()
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, &live)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(live)
	}
	mux.HandleFunc("/", handler)
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/debug/vars", handler)
	registerPprof(mux)
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln)
	return ms, nil
}

// wantsPrometheus decides the exposition format: an explicit
// ?format=prometheus|json wins, then a scrape-style Accept header
// (text/plain or OpenMetrics). JSON stays the default for browsers and
// curl-without-headers.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// Addr returns the bound address (resolves ":0" requests).
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close stops the server.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// StartSummary prints a one-line rollup of the session to w every interval,
// plus one final line when the returned stop function is called. Stop is
// idempotent and waits for the printer goroutine to exit.
func StartSummary(w io.Writer, t *Trace, every time.Duration) (stop func()) {
	if every <= 0 {
		every = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				writeSummaryLine(w, t)
			case <-done:
				writeSummaryLine(w, t)
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

func writeSummaryLine(w io.Writer, t *Trace) {
	s := t.Live()
	sync := s.Phases[PhaseSync.String()]
	enc := s.Phases[PhaseEncode.String()]
	fmt.Fprintf(w, "trace: round=%d events=%d dropped=%d msgs=%d bytes=%s (val %s / meta %s / gid %s) sync=%v encode=%v\n",
		s.MaxRound, s.Events, s.Dropped, s.Messages,
		fmtBytes(s.TotalBytes()), fmtBytes(s.ValueBytes), fmtBytes(s.MetaBytes), fmtBytes(s.GIDBytes),
		round3(time.Duration(sync.DurNs)), round3(time.Duration(enc.DurNs)))
}
