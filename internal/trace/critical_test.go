package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// synthRound appends one host's spans for one round: sequential compute /
// sync / barrier on lane 0 (tiling [start, start+compute+sync+barrier]),
// with the sync interior split across the taxonomy sub-phases.
type synthRound struct {
	host    int32
	round   int32
	start   int64
	compute int64
	// sync interior, all on worker/receiver lanes inside the sync span
	encode, wire, recvwait, fold, apply int64
	barrier                             int64
	// one encode message host -> peer with these byte tags
	peer  int32
	value uint64
	saved uint64
}

func (s synthRound) events() []Event {
	syncDur := s.encode + s.wire + s.recvwait + s.fold + s.apply
	t := s.start
	ev := []Event{
		{Start: t, Dur: s.compute, Host: s.host, Round: s.round, Phase: PhaseCompute, Peer: -1},
		{Start: t + s.compute, Dur: syncDur, Host: s.host, Round: s.round, Phase: PhaseSync, Peer: -1},
	}
	u := t + s.compute
	add := func(ph Phase, dur int64, lane int32) {
		if dur == 0 {
			return
		}
		e := Event{Start: u, Dur: dur, Host: s.host, Round: s.round, Phase: ph, Peer: s.peer, Lane: lane}
		if ph == PhaseEncode {
			e.Value, e.Saved, e.Mode = s.value, s.saved, 1
			if s.saved > 0 {
				e.Comp = CompShipped
			}
		}
		ev = append(ev, e)
		u += dur
	}
	add(PhaseEncode, s.encode, 1)
	add(PhaseSend, s.wire, 1)
	add(PhaseRecvWait, s.recvwait, 0)
	add(PhaseFold, s.fold, 0)
	add(PhaseApply, s.apply, 0)
	ev = append(ev, Event{Start: t + s.compute + syncDur, Dur: s.barrier,
		Host: s.host, Round: s.round, Phase: PhaseBarrier, Peer: -1, Detail: "termination"})
	return ev
}

// goldenTimeline is a hand-built 3-host, 2-round cluster with known gating:
// round 0 is gated by host 2 (recv-wait dominated), round 1 by host 0
// (compute dominated). All hosts share one clock (offsets 0).
func goldenTimeline() []Event {
	rounds := []synthRound{
		// round 0: everyone [0, 1000]
		{host: 0, round: 0, start: 0, compute: 100, encode: 20, wire: 10, recvwait: 10, fold: 5, apply: 5, barrier: 850, peer: 1, value: 200, saved: 0},
		{host: 1, round: 0, start: 0, compute: 600, encode: 40, wire: 20, recvwait: 20, fold: 10, apply: 10, barrier: 300, peer: 2, value: 150, saved: 50},
		{host: 2, round: 0, start: 0, compute: 200, encode: 50, wire: 30, recvwait: 500, fold: 80, apply: 40, barrier: 100, peer: 0, value: 100, saved: 0},
		// round 1: everyone [1000, 2000]
		{host: 0, round: 1, start: 1000, compute: 800, encode: 30, wire: 20, recvwait: 30, fold: 10, apply: 10, barrier: 100, peer: 1, value: 120, saved: 0},
		{host: 1, round: 1, start: 1000, compute: 100, encode: 20, wire: 10, recvwait: 10, fold: 5, apply: 5, barrier: 850, peer: 2, value: 80, saved: 0},
		{host: 2, round: 1, start: 1000, compute: 300, encode: 40, wire: 20, recvwait: 20, fold: 10, apply: 10, barrier: 600, peer: 0, value: 60, saved: 0},
	}
	var ev []Event
	for _, r := range rounds {
		ev = append(ev, r.events()...)
	}
	return ev
}

// TestCriticalPathGolden pins the attribution of the hand-built timeline:
// gate host, gate phase, margin, wall, and a zero residual (the synthetic
// spans tile perfectly and share one clock).
func TestCriticalPathGolden(t *testing.T) {
	cp := ComputeCriticalPath(Meta{Label: "golden"}, goldenTimeline())
	if len(cp.Rounds) != 2 {
		t.Fatalf("attributed %d rounds, want 2", len(cp.Rounds))
	}
	want := []struct {
		gate   int32
		phase  CritPhase
		wall   int64
		margin int64
	}{
		// r0: arrivals at 150 (h0), 700 (h1), 900 (h2) -> gate h2, margin 200,
		// recv-wait (500) dominates its buckets.
		{gate: 2, phase: CritRecvWait, wall: 1000, margin: 200},
		// r1: arrivals at 1900 (h0), 1150 (h1), 1400 (h2) -> gate h0, margin
		// 500, compute (800) dominates.
		{gate: 0, phase: CritCompute, wall: 1000, margin: 500},
	}
	for i, w := range want {
		r := &cp.Rounds[i]
		if r.Round != int32(i) {
			t.Fatalf("rounds out of order: got %d at index %d", r.Round, i)
		}
		if r.Gate != w.gate || r.GatePhase != w.phase {
			t.Errorf("round %d: gate = host %d/%v, want host %d/%v", i, r.Gate, r.GatePhase, w.gate, w.phase)
		}
		if r.WallNs != w.wall {
			t.Errorf("round %d: wall = %d, want %d", i, r.WallNs, w.wall)
		}
		if r.MarginNs != w.margin {
			t.Errorf("round %d: margin = %d, want %d", i, r.MarginNs, w.margin)
		}
		// Acceptance criterion: the gating host's sequential phases sum to
		// the round wall time (exactly, on a shared clock).
		if res := r.Residual(); res != 0 {
			t.Errorf("round %d: residual = %d, want 0", i, res)
		}
		if len(r.Hosts) != 3 {
			t.Errorf("round %d: %d hosts, want 3", i, len(r.Hosts))
		}
	}
	v := cp.Verdict
	if v.Rounds != 2 || len(v.Gates) != 2 {
		t.Fatalf("verdict = %+v, want 2 rounds over 2 gates", v)
	}
	// Equal counts break ties by host: host 0 leads.
	if v.Gates[0].Host != 0 || v.Gates[0].Count != 1 || v.Gates[0].Phases["compute"] != 1 {
		t.Fatalf("verdict gates[0] = %+v", v.Gates[0])
	}
	if got := v.String(); !strings.Contains(got, "host 0") || !strings.Contains(got, "1/2") {
		t.Fatalf("verdict string = %q", got)
	}
}

// TestCriticalLedgerModel pins the naive-broadcast decomposition: with every
// channel's capacity known, baseline == capacity × rounds summed over
// channels, and shipped + compression + sparsity + invariant == baseline.
func TestCriticalLedgerModel(t *testing.T) {
	cp := ComputeCriticalPath(Meta{}, goldenTimeline())
	l := cp.Ledger
	if l.Rounds != 2 {
		t.Fatalf("ledger rounds = %d, want 2", l.Rounds)
	}
	// Each host sends to a fixed peer on field 0 in both rounds: channels
	// h0->1, h1->2, h2->0, two messages each.
	if l.Channels != 3 || l.Messages != 6 {
		t.Fatalf("ledger channels/messages = %d/%d, want 3/6", l.Channels, l.Messages)
	}
	wantShipped := uint64(200 + 150 + 100 + 120 + 80 + 60)
	if l.ShippedBytes != wantShipped {
		t.Fatalf("shipped = %d, want %d", l.ShippedBytes, wantShipped)
	}
	if l.CompressionSavedBytes != 50 {
		t.Fatalf("compression saved = %d, want 50", l.CompressionSavedBytes)
	}
	// Capacities (max raw per channel): h0->1: max(200,120)=200; h1->2:
	// max(150+50,80)=200; h2->0: max(100,60)=100. All channels present both
	// rounds => no invariant savings; baseline = sum of caps × 2 rounds.
	if l.SilentChannelRounds != 0 || l.InvariantSavedBytes != 0 {
		t.Fatalf("invariant = %d bytes / %d silent rounds, want 0/0", l.InvariantSavedBytes, l.SilentChannelRounds)
	}
	wantBaseline := uint64((200 + 200 + 100) * 2)
	if l.BaselineBytes != wantBaseline {
		t.Fatalf("baseline = %d, want %d (sum of caps × rounds)", l.BaselineBytes, wantBaseline)
	}
	if got := l.ShippedBytes + l.CompressionSavedBytes + l.SparsitySavedBytes + l.InvariantSavedBytes; got != l.BaselineBytes {
		t.Fatalf("ledger does not decompose: %d != baseline %d", got, l.BaselineBytes)
	}
	if l.WireNsPerByte <= 0 {
		t.Fatalf("wire rate = %v, want > 0 (send spans present)", l.WireNsPerByte)
	}
}

// TestCriticalLedgerInvariantSkips: a channel silent in one of two rounds is
// charged one round of its capacity as invariant savings.
func TestCriticalLedgerInvariantSkips(t *testing.T) {
	ev := goldenTimeline()
	// Add a 4th channel h0 -> 2 (field 7) that only ships in round 0.
	ev = append(ev, Event{Start: 120, Dur: 5, Host: 0, Round: 0, Phase: PhaseEncode,
		Peer: 2, Field: 7, Lane: 2, Value: 500, Mode: 1})
	cp := ComputeCriticalPath(Meta{}, ev)
	l := cp.Ledger
	if l.Channels != 4 {
		t.Fatalf("channels = %d, want 4", l.Channels)
	}
	if l.SilentChannelRounds != 1 {
		t.Fatalf("silent channel-rounds = %d, want 1", l.SilentChannelRounds)
	}
	if l.InvariantSavedBytes != 500 {
		t.Fatalf("invariant saved = %d, want 500 (one skipped round at cap)", l.InvariantSavedBytes)
	}
}

// TestCriticalIncrementalMatchesOffline: feeding the same events through the
// incremental builder in ragged per-host batches (with per-host clock
// offsets applied at ingest) finalizes the same rounds, gates, and phases as
// the offline one-shot path.
func TestCriticalIncrementalMatchesOffline(t *testing.T) {
	events := goldenTimeline()
	offline := ComputeCriticalPath(Meta{}, events)

	// Skew each host's raw timestamps by a fixed offset, then hand the
	// builder the inverse — the attribution must land identically.
	offsets := map[int32]int64{0: 0, 1: -5_000, 2: 9_999}
	byHost := map[int32][]Event{}
	for _, e := range events {
		e.Start -= offsets[e.Host] // skewed local clock
		byHost[e.Host] = append(byHost[e.Host], e)
	}
	b := NewCriticalBuilder()
	for h := range byHost {
		b.SetHostClock(h, 0)
	}
	// Ragged interleave: hosts advance in different-sized chunks, like
	// shipper flushes landing in arbitrary order.
	chunk := map[int32]int{0: 1, 1: 3, 2: 2}
	pos := map[int32]int{}
	for {
		progressed := false
		for _, h := range []int32{2, 0, 1} {
			evs := byHost[h]
			if pos[h] >= len(evs) {
				continue
			}
			end := pos[h] + chunk[h]
			if end > len(evs) {
				end = len(evs)
			}
			b.Ingest(evs[pos[h]:end], offsets[h])
			pos[h] = end
			progressed = true
		}
		if !progressed {
			break
		}
	}
	b.FinalizeAll()

	rounds := b.Rounds()
	if len(rounds) != len(offline.Rounds) {
		t.Fatalf("incremental finalized %d rounds, offline %d", len(rounds), len(offline.Rounds))
	}
	for i := range rounds {
		got, want := rounds[i], offline.Rounds[i]
		if got.Round != want.Round || got.Gate != want.Gate || got.GatePhase != want.GatePhase ||
			got.WallNs != want.WallNs || got.MarginNs != want.MarginNs {
			t.Errorf("round %d: incremental %+v != offline %+v", want.Round,
				[]any{got.Gate, got.GatePhase, got.WallNs, got.MarginNs},
				[]any{want.Gate, want.GatePhase, want.WallNs, want.MarginNs})
		}
	}
	if lv, lo := b.Ledger(), offline.Ledger; lv.BaselineBytes != lo.BaselineBytes || lv.ShippedBytes != lo.ShippedBytes {
		t.Fatalf("incremental ledger %+v != offline %+v", lv, lo)
	}
}

// TestCriticalFinalizeFrontier: a round only finalizes once every known host
// has moved past it, and late events for a finalized round are dropped
// rather than double-attributed.
func TestCriticalFinalizeFrontier(t *testing.T) {
	b := NewCriticalBuilder()
	mk := func(h, r int32, start int64) []Event {
		return synthRound{host: h, round: r, start: start, compute: 10, barrier: 10, peer: 1 - h}.events()
	}
	// Two hosts in round 0: nothing can finalize yet.
	b.Ingest(mk(0, 0, 0), 0)
	b.Ingest(mk(1, 0, 5), 0)
	if n := len(b.Rounds()); n != 0 {
		t.Fatalf("finalized %d rounds before any host left round 0", n)
	}
	// Host 0 advances alone: host 1 still holds round 0 open.
	b.Ingest(mk(0, 1, 100), 0)
	if n := len(b.Rounds()); n != 0 {
		t.Fatalf("finalized %d rounds while host 1 is still in round 0", n)
	}
	// Host 1 advances too: round 0 closes, both hosts attributed.
	b.Ingest(mk(1, 1, 105), 0)
	rounds := b.Rounds()
	if len(rounds) != 1 || rounds[0].Round != 0 || len(rounds[0].Hosts) != 2 {
		t.Fatalf("after both hosts advanced: %d rounds %+v", len(rounds), rounds)
	}
	// A late host appearing with round-0 events cannot re-open the closed
	// round or double-attribute it.
	b.Ingest(mk(2, 0, 0), 0)
	b.FinalizeAll()
	rounds = b.Rounds()
	seen := map[int32]int{}
	for _, r := range rounds {
		seen[r.Round]++
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("round %d finalized %d times", r, n)
		}
	}
	if hp := rounds[0].HostPath(2); hp != nil {
		t.Fatal("late host 2 events leaked into already-finalized round 0")
	}
}

// TestCriticalPathJSONRoundTrip: the attribution (with its CritPhase names)
// survives JSON, which gluon-trace -critical -json and gluon-top -o jsonl
// both rely on.
func TestCriticalPathJSONRoundTrip(t *testing.T) {
	cp := ComputeCriticalPath(Meta{Label: "rt"}, goldenTimeline())
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back CriticalPath
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rounds) != len(cp.Rounds) {
		t.Fatalf("round trip lost rounds: %d != %d", len(back.Rounds), len(cp.Rounds))
	}
	for i := range back.Rounds {
		if back.Rounds[i].GatePhase != cp.Rounds[i].GatePhase {
			t.Fatalf("round %d: phase %v != %v after round trip", i, back.Rounds[i].GatePhase, cp.Rounds[i].GatePhase)
		}
	}
	if !strings.Contains(string(blob), `"gate_phase":"recvwait"`) {
		t.Fatalf("CritPhase not serialized by name: %s", blob)
	}
}

// TestCriticalWriteTables smoke-checks the human rendering: header, gating
// verdict, and the ledger rows all present.
func TestCriticalWriteTables(t *testing.T) {
	cp := ComputeCriticalPath(Meta{Label: "tbl"}, goldenTimeline())
	var buf bytes.Buffer
	if err := cp.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"critical path (tbl):",
		"gate-phase",
		"recvwait",
		"gating verdict:",
		"optimization ledger",
		"naive-broadcast baseline",
		"saved by compression",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
}

// TestLedgerCounters: the perf-history distillation of the ledger —
// bytes/round, raw/shipped compression ratio, and the silent share over
// channel-rounds — matches the golden timeline's hand-computed model.
func TestLedgerCounters(t *testing.T) {
	ev := goldenTimeline()
	// 4th channel h0 -> 2 (field 7) shipping only in round 0, as in the
	// invariant-skip test, so the skip share is nonzero.
	ev = append(ev, Event{Start: 120, Dur: 5, Host: 0, Round: 0, Phase: PhaseEncode,
		Peer: 2, Field: 7, Lane: 2, Value: 500, Mode: 1})
	l := ComputeCriticalPath(Meta{}, ev).Ledger
	c := l.Counters()
	wantBPR := float64(l.ShippedBytes) / 2
	if c.BytesPerRound != wantBPR {
		t.Fatalf("bytes/round = %v, want %v", c.BytesPerRound, wantBPR)
	}
	wantComp := float64(l.RawBytes) / float64(l.ShippedBytes)
	if c.CompressionRatio != wantComp || c.CompressionRatio <= 1 {
		t.Fatalf("compression ratio = %v, want %v (> 1)", c.CompressionRatio, wantComp)
	}
	// 4 channels × 2 rounds, 1 silent.
	if want := 1.0 / 8.0; c.InvariantSkipShare != want {
		t.Fatalf("invariant skip share = %v, want %v", c.InvariantSkipShare, want)
	}
	var empty Ledger
	if z := empty.Counters(); z != (CommCounters{}) {
		t.Fatalf("zero ledger counters = %+v, want zeros", z)
	}
}

// TestLedgerOf: the Trace -> Ledger convenience path used by the perf
// probe attributes a live session the same as the offline compute.
func TestLedgerOf(t *testing.T) {
	tr := New(Config{Label: "ledgerof"})
	for _, e := range goldenTimeline() {
		rec := tr.Recorder(int(e.Host))
		rec.SetRound(e.Round)
		rec.Emit(e)
	}
	l := LedgerOf(tr)
	events, _ := tr.Snapshot()
	want := ComputeCriticalPath(Meta{}, events).Ledger
	if l != want {
		t.Fatalf("LedgerOf = %+v, want %+v", l, want)
	}
	if l.ShippedBytes == 0 || l.Rounds != 2 {
		t.Fatalf("LedgerOf missed the session: %+v", l)
	}
}
