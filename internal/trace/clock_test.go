package trace

import (
	"fmt"
	"testing"
)

// fakeExchange simulates one NTP probe between a local clock and a remote
// clock running trueOffset ahead, with independently chosen forward and
// backward wire delays per probe.
type fakeExchange struct {
	local      int64 // local clock now
	trueOffset int64 // remote clock = local clock + trueOffset
	delays     [][2]int64
	i          int
	errAt      map[int]error
}

func (f *fakeExchange) exchange() (t0, t1, t2, t3 int64, err error) {
	if e := f.errAt[f.i]; e != nil {
		f.i++
		return 0, 0, 0, 0, e
	}
	d := f.delays[f.i%len(f.delays)]
	f.i++
	fwd, back := d[0], d[1]
	t0 = f.local
	t1 = t0 + fwd + f.trueOffset
	t2 = t1 + 100 // remote processing time
	t3 = t0 + fwd + 100 + back
	f.local = t3 + 1000 // time passes between probes
	return
}

func TestEstimateOffsetSymmetric(t *testing.T) {
	// Symmetric legs: the estimate is exact whatever the delay magnitude.
	f := &fakeExchange{trueOffset: 7_000_000, delays: [][2]int64{{50_000, 50_000}, {900_000, 900_000}, {10_000, 10_000}}}
	info, err := EstimateOffset(6, f.exchange)
	if err != nil {
		t.Fatal(err)
	}
	if info.OffsetNs != 7_000_000 {
		t.Fatalf("offset = %d, want exactly 7000000 under symmetric delays", info.OffsetNs)
	}
	// Min-RTT sample is the 10µs probe: rtt = fwd + back.
	if info.RTTNs != 20_000 {
		t.Fatalf("rtt = %d, want 20000 (min-RTT sample)", info.RTTNs)
	}
	if info.UncertaintyNs != 10_000 {
		t.Fatalf("uncertainty = %d, want rtt/2", info.UncertaintyNs)
	}
	if info.Samples != 6 {
		t.Fatalf("samples = %d, want 6", info.Samples)
	}
}

func TestEstimateOffsetAsymmetricBounded(t *testing.T) {
	// Injected asymmetric delays: for legs (fwd, back) the estimate is off by
	// (fwd-back)/2, which must stay within the reported uncertainty
	// (fwd+back)/2. Exercise several asymmetry ratios including the extremes.
	const trueOffset = -3_000_000
	cases := [][2]int64{
		{100_000, 900_000}, // back-loaded
		{900_000, 100_000}, // front-loaded
		{500_000, 500_000},
		{1, 999_999}, // nearly all delay on one leg
		{250_000, 750_000},
	}
	for _, d := range cases {
		d := d
		t.Run(fmt.Sprintf("fwd=%d/back=%d", d[0], d[1]), func(t *testing.T) {
			f := &fakeExchange{trueOffset: trueOffset, delays: [][2]int64{d}}
			info, err := EstimateOffset(4, f.exchange)
			if err != nil {
				t.Fatal(err)
			}
			errNs := info.OffsetNs - trueOffset
			if errNs < 0 {
				errNs = -errNs
			}
			if errNs > info.UncertaintyNs {
				t.Fatalf("estimation error %dns exceeds reported uncertainty %dns", errNs, info.UncertaintyNs)
			}
			wantErr := (d[0] - d[1]) / 2
			if wantErr < 0 {
				wantErr = -wantErr
			}
			if errNs != wantErr {
				t.Fatalf("estimation error %dns, analytic asymmetry bias %dns", errNs, wantErr)
			}
		})
	}
}

func TestEstimateOffsetPicksMinRTT(t *testing.T) {
	// A wildly asymmetric slow probe followed by a fast clean one: the fast
	// probe's estimate must win.
	f := &fakeExchange{trueOffset: 1_000_000, delays: [][2]int64{{5_000_000, 100_000}, {10_000, 10_000}}}
	info, err := EstimateOffset(2, f.exchange)
	if err != nil {
		t.Fatal(err)
	}
	if info.OffsetNs != 1_000_000 {
		t.Fatalf("offset = %d: min-RTT probe should have given the exact offset", info.OffsetNs)
	}
}

func TestEstimateOffsetErrors(t *testing.T) {
	fail := fmt.Errorf("boom")
	// All probes failing is fatal.
	f := &fakeExchange{delays: [][2]int64{{1, 1}}, errAt: map[int]error{0: fail, 1: fail, 2: fail}}
	if _, err := EstimateOffset(3, f.exchange); err == nil {
		t.Fatal("want error when every probe fails")
	}
	// A late failure after a good sample keeps the measurement.
	f = &fakeExchange{trueOffset: 42, delays: [][2]int64{{10, 10}}, errAt: map[int]error{1: fail}}
	info, err := EstimateOffset(5, f.exchange)
	if err != nil {
		t.Fatal(err)
	}
	if info.Samples != 1 || info.OffsetNs != 42 {
		t.Fatalf("late probe failure should keep the first sample, got %+v", info)
	}
}

func TestAlignEvents(t *testing.T) {
	events := []Event{
		{Host: 1, Start: 100, Phase: PhaseCompute}, // runs 50ns behind host 0
		{Host: 0, Start: 120, Phase: PhaseCompute},
		{Host: 2, Start: 130, Phase: PhaseCompute}, // no offset entry: untouched
	}
	AlignEvents(events, map[int32]int64{1: 50})
	if events[0].Host != 0 || events[1].Host != 2 || events[2].Host != 1 {
		t.Fatalf("aligned order = %d,%d,%d, want hosts 0,2,1", events[0].Host, events[1].Host, events[2].Host)
	}
	for _, e := range events {
		if e.Host == 1 && e.Start != 150 {
			t.Fatalf("host 1 start = %d, want 150 after +50 rebase", e.Start)
		}
		if e.Host == 2 && e.Start != 130 {
			t.Fatalf("host 2 start = %d, want untouched 130", e.Start)
		}
	}
	// Empty offset table is a no-op, including ordering.
	before := append([]Event(nil), events...)
	AlignEvents(events, nil)
	for i := range events {
		if events[i] != before[i] {
			t.Fatal("AlignEvents with no offsets must not modify events")
		}
	}
}
