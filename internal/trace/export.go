package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Export formats. JSONL is the native format: a header line identifying the
// trace, then one Event object per line — easy to stream, grep, and append.
// Chrome is the trace_event JSON array format, loadable directly in
// chrome://tracing and https://ui.perfetto.dev: hosts become processes,
// lanes become threads, spans become complete ("X") events and frame/fault
// markers become instants ("i"). Both formats round-trip through ReadEvents
// without losing any Event field (Chrome carries them in args).

// MarshalJSON writes the phase as its string name.
func (p Phase) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON accepts a phase name (or a raw number, for robustness).
func (p *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if ph, ok := ParsePhase(s); ok {
			*p = ph
			return nil
		}
		if s == "unknown" {
			// The idle/unset live phase (NumPhases) round-trips through its
			// String form — heartbeats of hosts that have not published a
			// phase yet carry it.
			*p = NumPhases
			return nil
		}
		return fmt.Errorf("trace: unknown phase %q", s)
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*p = Phase(n)
	return nil
}

// Meta is the non-event payload of an export: the session label, the
// cluster-wide count of events lost to ring overwrites or sideband ring
// wraps, and — for merged multi-process traces — the measured per-host clock
// offsets the timestamps were rebased by, each with its error bound.
type Meta struct {
	Label   string      `json:"label,omitempty"`
	Dropped uint64      `json:"dropped"`
	Clocks  []ClockInfo `json:"clocks,omitempty"`
	// Sessions are the sideband shipper lifecycle records of a collector
	// merge (empty for single-process traces); a session that never said
	// bye is preserved here with its disconnect reason.
	Sessions []SessionInfo `json:"sessions,omitempty"`
}

// jsonlHeader is the first line of a JSONL export.
type jsonlHeader struct {
	Trace    string        `json:"trace"`
	Version  int           `json:"version"`
	Label    string        `json:"label,omitempty"`
	Events   int           `json:"events"`
	Dropped  uint64        `json:"dropped"`
	Clocks   []ClockInfo   `json:"clocks,omitempty"`
	Sessions []SessionInfo `json:"sessions,omitempty"`
}

const formatVersion = 1

// WriteJSONL writes the session's merged events as JSONL.
func (t *Trace) WriteJSONL(w io.Writer) error {
	events, dropped := t.Snapshot()
	return WriteJSONL(w, t.Label(), events, dropped)
}

// WriteJSONL writes a header line followed by one event per line.
func WriteJSONL(w io.Writer, label string, events []Event, dropped uint64) error {
	return WriteJSONLMeta(w, Meta{Label: label, Dropped: dropped}, events)
}

// WriteJSONLMeta writes a header line carrying meta followed by one event
// per line.
func WriteJSONLMeta(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := jsonlHeader{Trace: "gluon", Version: formatVersion, Label: meta.Label, Events: len(events), Dropped: meta.Dropped, Clocks: meta.Clocks, Sessions: meta.Sessions}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one trace_event record. Args carries every Event field the
// top-level record can't, so Chrome exports round-trip losslessly.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"` // microseconds
	Dur  float64     `json:"dur,omitempty"`
	Pid  int32       `json:"pid"`
	Tid  int32       `json:"tid"`
	S    string      `json:"s,omitempty"` // instant scope
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Round  int32  `json:"round"`
	Peer   int32  `json:"peer"`
	Field  uint32 `json:"field,omitempty"`
	Mode   *int8  `json:"mode,omitempty"`
	Comp   int8   `json:"comp,omitempty"`
	Saved  uint64 `json:"saved,omitempty"`
	Value  uint64 `json:"value,omitempty"`
	Meta   uint64 `json:"meta,omitempty"`
	GID    uint64 `json:"gid,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Name carries process names on "M" metadata records.
	Name string `json:"name,omitempty"`
}

type chromeOther struct {
	Trace    string        `json:"trace"`
	Version  int           `json:"version"`
	Label    string        `json:"label,omitempty"`
	Dropped  uint64        `json:"dropped"`
	Clocks   []ClockInfo   `json:"clocks,omitempty"`
	Sessions []SessionInfo `json:"sessions,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	OtherData       *chromeOther  `json:"otherData,omitempty"`
}

// WriteChrome writes the session's merged events in Chrome trace_event
// format.
func (t *Trace) WriteChrome(w io.Writer) error {
	events, dropped := t.Snapshot()
	return WriteChrome(w, t.Label(), events, dropped)
}

// WriteChrome writes events as a trace_event JSON document.
func WriteChrome(w io.Writer, label string, events []Event, dropped uint64) error {
	return WriteChromeMeta(w, Meta{Label: label, Dropped: dropped}, events)
}

// WriteChromeMeta writes events as a trace_event JSON document, streaming
// one record per line so multi-million-event traces don't need a second copy
// in memory. meta lands in otherData, where Perfetto surfaces it.
func WriteChromeMeta(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	other, err := json.Marshal(&chromeOther{Trace: "gluon", Version: formatVersion, Label: meta.Label, Dropped: meta.Dropped, Clocks: meta.Clocks, Sessions: meta.Sessions})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "{\"otherData\":%s,\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", other); err != nil {
		return err
	}
	first := true
	emit := func(ce *chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	// Name each host's process once, so Perfetto shows "host N" tracks.
	seen := map[int32]bool{}
	for i := range events {
		h := events[i].Host
		if !seen[h] {
			seen[h] = true
			if err := emit(&chromeEvent{Name: "process_name", Ph: "M", Pid: h, Args: &chromeArgs{Name: fmt.Sprintf("host %d", h)}}); err != nil {
				return err
			}
		}
	}
	for i := range events {
		e := &events[i]
		ce := chromeEvent{
			Name: e.Phase.String(),
			Cat:  "gluon",
			Ts:   float64(e.Start) / 1e3,
			Pid:  e.Host,
			Tid:  e.Lane,
			Args: &chromeArgs{Round: e.Round, Peer: e.Peer, Field: e.Field, Value: e.Value, Meta: e.Meta, GID: e.GID, Comp: e.Comp, Saved: e.Saved, Detail: e.Detail},
		}
		if e.Phase == PhaseEncode {
			m := e.Mode
			ce.Args.Mode = &m
		}
		if e.Phase.Instant() {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		}
		if err := emit(&ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile exports the session to path, choosing the format by extension:
// ".jsonl" writes JSONL, anything else the Chrome trace_event format.
func (t *Trace) WriteFile(path string) error {
	events, dropped := t.Snapshot()
	return WriteFileMeta(path, Meta{Label: t.Label(), Dropped: dropped}, events)
}

// WriteFileMeta exports events with meta to path, format by extension as in
// Trace.WriteFile.
func WriteFileMeta(path string, meta Meta, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".jsonl") {
		werr = WriteJSONLMeta(f, meta, events)
	} else {
		werr = WriteChromeMeta(f, meta, events)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadEvents parses either export format, auto-detected, and returns the
// events in file order plus the recorded dropped count.
func ReadEvents(r io.Reader) ([]Event, uint64, error) {
	events, meta, err := ReadEventsMeta(r)
	return events, meta.Dropped, err
}

// ReadEventsMeta parses either export format, auto-detected, returning the
// events in file order plus the full recorded metadata.
func ReadEventsMeta(r io.Reader) ([]Event, Meta, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, Meta{}, err
	}
	var probe map[string]json.RawMessage
	if json.Unmarshal(data, &probe) == nil {
		if _, ok := probe["traceEvents"]; ok {
			return readChrome(data)
		}
	}
	return readJSONL(data)
}

// ReadFile parses a trace export from disk.
func ReadFile(path string) ([]Event, uint64, error) {
	events, meta, err := ReadFileMeta(path)
	return events, meta.Dropped, err
}

// ReadFileMeta parses a trace export from disk, metadata included.
func ReadFileMeta(path string) ([]Event, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	return ReadEventsMeta(f)
}

// sortEventsByStart orders events on the (shared or aligned) time axis.
func sortEventsByStart(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
}

func readChrome(data []byte) ([]Event, Meta, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, Meta{}, fmt.Errorf("trace: parsing chrome trace: %w", err)
	}
	var meta Meta
	if doc.OtherData != nil {
		meta = Meta{Label: doc.OtherData.Label, Dropped: doc.OtherData.Dropped, Clocks: doc.OtherData.Clocks, Sessions: doc.OtherData.Sessions}
	}
	events := make([]Event, 0, len(doc.TraceEvents))
	for _, ce := range doc.TraceEvents {
		if ce.Ph == "M" {
			continue
		}
		ph, ok := ParsePhase(ce.Name)
		if !ok {
			continue // foreign record; tolerate mixed traces
		}
		e := Event{
			Start: int64(math.Round(ce.Ts * 1e3)),
			Dur:   int64(math.Round(ce.Dur * 1e3)),
			Host:  ce.Pid,
			Lane:  ce.Tid,
			Phase: ph,
		}
		if ce.Args != nil {
			e.Round, e.Peer, e.Field = ce.Args.Round, ce.Args.Peer, ce.Args.Field
			e.Value, e.Meta, e.GID = ce.Args.Value, ce.Args.Meta, ce.Args.GID
			e.Comp, e.Saved = ce.Args.Comp, ce.Args.Saved
			e.Detail = ce.Args.Detail
			if ce.Args.Mode != nil {
				e.Mode = *ce.Args.Mode
			}
		}
		events = append(events, e)
	}
	return events, meta, nil
}

func readJSONL(data []byte) ([]Event, Meta, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	var meta Meta
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		lineNo++
		if line == "" {
			continue
		}
		if !sawHeader {
			// The first record must be the gluon header: without it,
			// arbitrary JSON would silently parse as zero-valued events and
			// a corrupt file would masquerade as an empty-but-valid trace.
			var hdr jsonlHeader
			if err := json.Unmarshal([]byte(line), &hdr); err != nil || hdr.Trace != "gluon" {
				return nil, Meta{}, fmt.Errorf("trace: line %d: not a gluon trace export (missing header)", lineNo)
			}
			meta = Meta{Label: hdr.Label, Dropped: hdr.Dropped, Clocks: hdr.Clocks, Sessions: hdr.Sessions}
			sawHeader = true
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, Meta{}, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, Meta{}, err
	}
	if !sawHeader {
		return nil, Meta{}, fmt.Errorf("trace: empty input")
	}
	return events, meta, nil
}
