package trace

// Profiling hooks. Two pieces: goroutine phase labels, so CPU profiles
// attribute samples to substrate stages (encode vs fold vs apply vs user
// compute) instead of one undifferentiated runSync blob; and HTTP capture
// endpoints, so a live run can hand over CPU/heap profiles on demand.
//
// The labels must cost nothing when profiling is off — LabelPhase at a hot
// site is one atomic load returning a shared no-op closure, and the label
// contexts are built once up front, so even the enabled path allocates
// nothing per call.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	rpprof "runtime/pprof"
	"sync/atomic"
)

// phaseLabels gates goroutine phase labelling; off by default.
var phaseLabels atomic.Bool

// phaseLabelCtx[p] carries the pprof label set {gluon_phase: p.String()},
// prebuilt so the enabled path performs no allocation.
var phaseLabelCtx [NumPhases]context.Context

func init() {
	for p := Phase(0); p < NumPhases; p++ {
		phaseLabelCtx[p] = rpprof.WithLabels(context.Background(), rpprof.Labels("gluon_phase", p.String()))
	}
}

// SetPhaseLabels turns goroutine phase labelling on or off for the whole
// process. Enable it alongside CPU profiling (-pprof-addr) to see profile
// samples split by substrate stage.
func SetPhaseLabels(on bool) { phaseLabels.Store(on) }

// PhaseLabelsEnabled reports the current gate.
func PhaseLabelsEnabled() bool { return phaseLabels.Load() }

var (
	noopRestore = func() {}
	clearLabels = func() { rpprof.SetGoroutineLabels(context.Background()) }
)

// LabelPhase tags the calling goroutine with gluon_phase=<p> for CPU-profile
// attribution and returns the function that removes the tag. When labelling
// is disabled (the default) it is an atomic load returning a shared no-op —
// zero allocations, safe on the sync hot path.
//
//	defer LabelPhase(PhaseFold)()
func LabelPhase(p Phase) func() {
	if !phaseLabels.Load() {
		return noopRestore
	}
	rpprof.SetGoroutineLabels(phaseLabelCtx[p])
	return clearLabels
}

// registerPprof mounts the net/http/pprof capture handlers on mux:
// /debug/pprof/ (index incl. heap, goroutine, block...), profile (CPU),
// cmdline, symbol, trace.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// ServePprof starts a standalone profiling server on addr (the -pprof-addr
// flag) serving the /debug/pprof/ tree, and enables phase labels so CPU
// captures are stage-attributed. Close the returned server to stop.
func ServePprof(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	registerPprof(mux)
	SetPhaseLabels(true)
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln)
	return ms, nil
}
