package trace

// Cross-process clock alignment. Each tracing session stamps events with
// nanoseconds since its own epoch, so two processes' traces live on two
// unrelated time axes. The sideband aligns them with an NTP-style offset
// handshake: the client sends its clock reading t0; the server replies with
// its receive time t1 and send time t2; the client notes its receive time
// t3. For one exchange,
//
//	offset = ((t1 - t0) + (t2 - t3)) / 2   (server clock minus client clock)
//	rtt    = (t3 - t0) - (t2 - t1)         (time actually spent on the wire)
//
// The offset estimate is exact when the two network legs are symmetric; an
// asymmetric split of the RTT biases it by at most rtt/2 in either
// direction. Taking the sample with the minimum RTT over several probes
// therefore bounds the alignment error by minRTT/2 — the uncertainty the
// merge records next to each measured offset (DESIGN.md §4.4 derives this).

import (
	"fmt"
	"sort"
)

// ClockInfo is one measured clock relation: adding Offset to a source-clock
// timestamp maps it onto the reference (collector) clock, with the true
// offset inside ±Uncertainty. Host is -1 when the measurement covers a whole
// process session rather than one host.
type ClockInfo struct {
	Host int32 `json:"host"`
	// OffsetNs is reference-clock minus source-clock, nanoseconds.
	OffsetNs int64 `json:"offset_ns"`
	// UncertaintyNs bounds the offset estimation error: minRTT/2.
	UncertaintyNs int64 `json:"uncertainty_ns"`
	// RTTNs is the minimum round-trip time among the probes.
	RTTNs int64 `json:"rtt_ns"`
	// Samples is the number of successful probe exchanges.
	Samples int `json:"samples"`
}

func (c ClockInfo) String() string {
	return fmt.Sprintf("host %d offset %+dns ±%dns (min rtt %dns over %d probes)",
		c.Host, c.OffsetNs, c.UncertaintyNs, c.RTTNs, c.Samples)
}

// EstimateOffset runs `probes` ping-pong exchanges and returns the offset of
// the remote clock relative to the local one, taken from the minimum-RTT
// sample. exchange performs one round trip and reports the four NTP
// timestamps: t0 local send, t1 remote receive, t2 remote send, t3 local
// receive (t0/t3 on the local clock, t1/t2 on the remote one).
func EstimateOffset(probes int, exchange func() (t0, t1, t2, t3 int64, err error)) (ClockInfo, error) {
	if probes <= 0 {
		probes = 1
	}
	info := ClockInfo{Host: -1}
	bestRTT := int64(-1)
	for i := 0; i < probes; i++ {
		t0, t1, t2, t3, err := exchange()
		if err != nil {
			if info.Samples > 0 {
				break // keep what we have; a flaky late probe is not fatal
			}
			return info, fmt.Errorf("trace: clock probe %d: %w", i, err)
		}
		rtt := (t3 - t0) - (t2 - t1)
		if rtt < 0 {
			continue // clock stepped mid-probe; sample is meaningless
		}
		info.Samples++
		if bestRTT < 0 || rtt < bestRTT {
			bestRTT = rtt
			info.OffsetNs = ((t1 - t0) + (t2 - t3)) / 2
			info.RTTNs = rtt
			info.UncertaintyNs = rtt / 2
		}
	}
	if info.Samples == 0 {
		return info, fmt.Errorf("trace: no usable clock probes (all %d rejected)", probes)
	}
	return info, nil
}

// AlignEvents rebases events onto the reference clock by adding each host's
// measured offset to its event start times, in place. Hosts without an entry
// are left untouched (they already run on the reference clock — the
// collector's own process). The slice is re-sorted by Start so merged
// timelines stay ordered after rebasing.
func AlignEvents(events []Event, offsets map[int32]int64) {
	if len(offsets) == 0 {
		return
	}
	for i := range events {
		if off, ok := offsets[events[i].Host]; ok {
			events[i].Start += off
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
}
