package partition

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gluon/internal/bitset"
	"gluon/internal/graph"
)

// Partition is one host's view of the partitioned graph: invariant (b) of
// the paper holds — every local edge connects proxies on this host — so a
// shared-memory engine can run on Graph oblivious of other hosts.
type Partition struct {
	HostID   int
	NumHosts int
	Policy   Policy

	// Graph is the local out-CSR over local IDs. Local IDs number masters
	// first ([0, NumMasters)) then mirrors, each group sorted by global ID.
	Graph *graph.CSR
	// GIDs maps local ID → global ID.
	GIDs []uint64
	// NumMasters is the count of master proxies; lid < NumMasters ⇔ master.
	NumMasters uint32

	// HasOut / HasIn are the structural flags of §3.2: whether the proxy has
	// any outgoing/incoming local edges. Gluon derives the reduce/broadcast
	// mirror subsets from these.
	HasOut *bitset.Bitset
	HasIn  *bitset.Bitset

	// GlobalNodes is the node count of the original graph.
	GlobalNodes uint64

	lidMap map[uint64]uint32

	inGraphOnce sync.Once
	inGraph     *graph.CSR
}

// LID translates a global ID to this host's local ID.
func (p *Partition) LID(gid uint64) (uint32, bool) {
	lid, ok := p.lidMap[gid]
	return lid, ok
}

// GID translates a local ID to the global ID.
func (p *Partition) GID(lid uint32) uint64 { return p.GIDs[lid] }

// IsMaster reports whether lid is a master proxy.
func (p *Partition) IsMaster(lid uint32) bool { return lid < p.NumMasters }

// NumProxies returns the number of proxies (masters + mirrors) on this host.
func (p *Partition) NumProxies() uint32 { return uint32(len(p.GIDs)) }

// InGraph returns the transpose of the local graph, built on first use.
// Pull-style operators iterate over it.
func (p *Partition) InGraph() *graph.CSR {
	p.inGraphOnce.Do(func() { p.inGraph = p.Graph.Transpose() })
	return p.inGraph
}

// MirrorGIDsByOwner groups this host's mirror global IDs by their master's
// host, each group sorted ascending. This is the "mirrors" array each host
// sends during Gluon's memoization exchange (§4.1).
func (p *Partition) MirrorGIDsByOwner() [][]uint64 {
	out := make([][]uint64, p.NumHosts)
	for lid := p.NumMasters; lid < p.NumProxies(); lid++ {
		g := p.GIDs[lid]
		h := p.Policy.Owner(g)
		out[h] = append(out[h], g)
	}
	// Mirrors are already sorted by GID within the local ID order, but be
	// explicit: the wire order is part of the memoization contract.
	for _, s := range out {
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	}
	return out
}

// Stats summarizes a set of partitions.
type Stats struct {
	Policy            string
	NumHosts          int
	GlobalNodes       uint64
	GlobalEdges       uint64
	TotalProxies      uint64
	ReplicationFactor float64 // average proxies per node
	MaxEdgeLoad       uint64  // max edges on any host
	MinEdgeLoad       uint64
	EdgeImbalance     float64 // max/mean
	TotalMirrors      uint64
}

// ComputeStats aggregates partition statistics across hosts.
func ComputeStats(parts []*Partition) Stats {
	if len(parts) == 0 {
		return Stats{}
	}
	s := Stats{
		Policy:      parts[0].Policy.Name(),
		NumHosts:    len(parts),
		GlobalNodes: parts[0].GlobalNodes,
		MinEdgeLoad: ^uint64(0),
	}
	for _, p := range parts {
		e := p.Graph.NumEdges()
		s.GlobalEdges += e
		s.TotalProxies += uint64(p.NumProxies())
		s.TotalMirrors += uint64(p.NumProxies() - p.NumMasters)
		if e > s.MaxEdgeLoad {
			s.MaxEdgeLoad = e
		}
		if e < s.MinEdgeLoad {
			s.MinEdgeLoad = e
		}
	}
	if s.GlobalNodes > 0 {
		s.ReplicationFactor = float64(s.TotalProxies) / float64(s.GlobalNodes)
	}
	if mean := float64(s.GlobalEdges) / float64(len(parts)); mean > 0 {
		s.EdgeImbalance = float64(s.MaxEdgeLoad) / mean
	}
	return s
}

// PartitionAll partitions the edge list for every host of the policy and
// builds all local partitions. numNodes is the global node count (IDs in
// [0, numNodes)). Every node gets a master proxy on its owner host even if
// no edge assigned there mentions it, so isolated nodes and remote-only
// nodes still have a canonical location.
func PartitionAll(numNodes uint64, edges []graph.Edge, pol Policy) ([]*Partition, error) {
	hosts := pol.NumHosts()
	buckets, err := bucketEdges(edges, pol)
	if err != nil {
		return nil, err
	}
	// Decide weightedness globally so every host builds the same schema.
	weighted := hasAnyWeight(edges)
	parts := make([]*Partition, hosts)
	var wg sync.WaitGroup
	errs := make([]error, hosts)
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			parts[h], errs[h] = buildLocal(h, numNodes, buckets[h], pol, weighted)
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// bucketEdges routes every edge to its assigned host's bucket, in parallel
// over edge chunks with per-worker sub-buckets merged at the end.
func bucketEdges(edges []graph.Edge, pol Policy) ([][]graph.Edge, error) {
	hosts := pol.NumHosts()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(edges)/1024+1 {
		workers = len(edges)/1024 + 1
	}
	sub := make([][][]graph.Edge, workers)
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			mine := make([][]graph.Edge, hosts)
			for _, e := range edges[lo:hi] {
				h := pol.EdgeHost(e.Src, e.Dst)
				mine[h] = append(mine[h], e)
			}
			sub[w] = mine
		}(w, lo, hi)
	}
	wg.Wait()
	buckets := make([][]graph.Edge, hosts)
	for h := 0; h < hosts; h++ {
		var total int
		for w := range sub {
			if sub[w] != nil {
				total += len(sub[w][h])
			}
		}
		buckets[h] = make([]graph.Edge, 0, total)
		for w := range sub {
			if sub[w] != nil {
				buckets[h] = append(buckets[h], sub[w][h]...)
			}
		}
	}
	return buckets, nil
}

// buildLocal constructs host h's Partition from the edges assigned to it.
func buildLocal(h int, numNodes uint64, edges []graph.Edge, pol Policy, weighted bool) (*Partition, error) {
	// Masters: every node this host owns. With chunked owners this is a
	// contiguous global-ID range, but we only rely on Owner().
	var masters []uint64
	lo, hi := ownedRange(numNodes, pol, h)
	for g := lo; g < hi; g++ {
		if pol.Owner(g) == h {
			masters = append(masters, g)
		}
	}
	// Mirrors: endpoints of local edges owned elsewhere.
	mirrorSet := make(map[uint64]struct{})
	for _, e := range edges {
		if pol.Owner(e.Src) != h {
			mirrorSet[e.Src] = struct{}{}
		}
		if pol.Owner(e.Dst) != h {
			mirrorSet[e.Dst] = struct{}{}
		}
	}
	mirrors := make([]uint64, 0, len(mirrorSet))
	for g := range mirrorSet {
		mirrors = append(mirrors, g)
	}
	sort.Slice(mirrors, func(a, b int) bool { return mirrors[a] < mirrors[b] })

	numProxies := uint64(len(masters) + len(mirrors))
	if numProxies > 1<<32-1 {
		return nil, fmt.Errorf("partition: host %d has %d proxies, exceeding 32-bit local IDs", h, numProxies)
	}
	gids := make([]uint64, 0, numProxies)
	gids = append(gids, masters...)
	gids = append(gids, mirrors...)
	lidMap := make(map[uint64]uint32, len(gids))
	for lid, g := range gids {
		lidMap[g] = uint32(lid)
	}

	local := make([]graph.LocalEdge, len(edges))
	hasOut := bitset.New(uint32(numProxies))
	hasIn := bitset.New(uint32(numProxies))
	for i, e := range edges {
		s, ok := lidMap[e.Src]
		if !ok {
			return nil, fmt.Errorf("partition: host %d: no proxy for source %d", h, e.Src)
		}
		d, ok := lidMap[e.Dst]
		if !ok {
			return nil, fmt.Errorf("partition: host %d: no proxy for destination %d", h, e.Dst)
		}
		local[i] = graph.LocalEdge{Src: s, Dst: d, Weight: e.Weight}
		hasOut.SetUnsync(s)
		hasIn.SetUnsync(d)
	}
	g := graph.Build(uint32(numProxies), local, weighted)

	return &Partition{
		HostID:      h,
		NumHosts:    pol.NumHosts(),
		Policy:      pol,
		Graph:       g,
		GIDs:        gids,
		NumMasters:  uint32(len(masters)),
		HasOut:      hasOut,
		HasIn:       hasIn,
		GlobalNodes: numNodes,
		lidMap:      lidMap,
	}, nil
}

// ownedRange returns a conservative [lo, hi) global-ID range containing all
// nodes host h owns. Block owners make this a tight range; the fallback is
// the full ID space.
func ownedRange(numNodes uint64, pol Policy, h int) (uint64, uint64) {
	if b, ok := Bounds(pol); ok {
		return b[h], b[h+1]
	}
	return 0, numNodes
}

type boundsProvider interface{ ownerBounds() []uint64 }

func (b *base) ownerBounds() []uint64 { return b.own.bounds }

// Bounds extracts the chunk boundaries of a chunk-based policy's node
// owner map (bounds[h]..bounds[h+1] is host h's owned ID range). The
// second result is false for policies without chunked owners.
func Bounds(pol Policy) ([]uint64, bool) {
	if bp, ok := pol.(boundsProvider); ok {
		return bp.ownerBounds(), true
	}
	if fp, ok := pol.(*frozenPolicy); ok {
		return fp.own.bounds, true
	}
	return nil, false
}

// frozenPolicy is a policy reconstructed from serialized chunk bounds: it
// answers Owner queries (all a loaded partition needs) but cannot assign
// new edges.
type frozenPolicy struct {
	name  string
	hosts int
	own   blockOwner
}

func (p *frozenPolicy) Name() string         { return p.name }
func (p *frozenPolicy) NumHosts() int        { return p.hosts }
func (p *frozenPolicy) Owner(gid uint64) int { return p.own.owner(gid) }

// EdgeHost panics: frozen policies describe an existing partitioning; use
// NewPolicy to partition fresh edges.
func (p *frozenPolicy) EdgeHost(src, dst uint64) int {
	panic("partition: frozen policy cannot assign edges; re-create with NewPolicy")
}

// Frozen reconstructs a Policy from a serialized name and chunk bounds.
func Frozen(name string, bounds []uint64) (Policy, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("partition: frozen policy needs at least 2 bounds, got %d", len(bounds))
	}
	return &frozenPolicy{name: name, hosts: len(bounds) - 1, own: blockOwner{bounds: bounds}}, nil
}

// Reassemble rebuilds a Partition from its serialized parts, recomputing
// the global→local map and the structural flags from the local graph.
func Reassemble(hostID int, pol Policy, g *graph.CSR, gids []uint64, numMasters uint32, globalNodes uint64) (*Partition, error) {
	if uint32(len(gids)) != g.NumNodes() {
		return nil, fmt.Errorf("partition: %d GIDs for %d local nodes", len(gids), g.NumNodes())
	}
	if numMasters > uint32(len(gids)) {
		return nil, fmt.Errorf("partition: %d masters among %d proxies", numMasters, len(gids))
	}
	lidMap := make(map[uint64]uint32, len(gids))
	for lid, gid := range gids {
		if _, dup := lidMap[gid]; dup {
			return nil, fmt.Errorf("partition: duplicate GID %d", gid)
		}
		lidMap[gid] = uint32(lid)
	}
	n := uint32(len(gids))
	hasOut := bitset.New(n)
	hasIn := bitset.New(n)
	for u := uint32(0); u < n; u++ {
		if g.OutDegree(u) > 0 {
			hasOut.SetUnsync(u)
		}
	}
	for _, d := range g.Dst {
		hasIn.SetUnsync(d)
	}
	return &Partition{
		HostID:      hostID,
		NumHosts:    pol.NumHosts(),
		Policy:      pol,
		Graph:       g,
		GIDs:        gids,
		NumMasters:  numMasters,
		HasOut:      hasOut,
		HasIn:       hasIn,
		GlobalNodes: globalNodes,
		lidMap:      lidMap,
	}, nil
}

func hasAnyWeight(edges []graph.Edge) bool {
	for _, e := range edges {
		if e.Weight != 0 {
			return true
		}
	}
	return false
}
