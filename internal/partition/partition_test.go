package partition

import (
	"fmt"
	"testing"
	"testing/quick"

	"gluon/internal/generate"
	"gluon/internal/graph"
)

func genEdges(t testing.TB, scale uint) (uint64, []graph.Edge, *graph.CSR) {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 17}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), edges, g
}

func options(g *graph.CSR, numNodes uint64) Options {
	out := make([]uint32, numNodes)
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	return Options{OutDegrees: out, InDegrees: g.InDegrees()}
}

// TestEveryEdgeAssignedOnce: across all hosts, the partitioned graphs
// contain exactly the input edges (as (srcGID, dstGID) multiset).
func TestEveryEdgeAssignedOnce(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	for _, kind := range AllKinds() {
		for _, hosts := range []int{1, 3, 4, 8} {
			t.Run(fmt.Sprintf("%s/h%d", kind, hosts), func(t *testing.T) {
				pol, err := NewPolicy(kind, numNodes, hosts, opt)
				if err != nil {
					t.Fatal(err)
				}
				parts, err := PartitionAll(numNodes, edges, pol)
				if err != nil {
					t.Fatal(err)
				}
				want := map[[2]uint64]int{}
				for _, e := range edges {
					want[[2]uint64{e.Src, e.Dst}]++
				}
				got := map[[2]uint64]int{}
				for _, p := range parts {
					for u := uint32(0); u < p.Graph.NumNodes(); u++ {
						for _, v := range p.Graph.Neighbors(u) {
							got[[2]uint64{p.GID(u), p.GID(v)}]++
						}
					}
				}
				if len(got) != len(want) {
					t.Fatalf("distinct edges: got %d, want %d", len(got), len(want))
				}
				for k, c := range want {
					if got[k] != c {
						t.Fatalf("edge %v: got %d copies, want %d", k, got[k], c)
					}
				}
			})
		}
	}
}

// TestMasterCompleteness: every global node has exactly one master across
// hosts, on the host the policy owns it to.
func TestMasterCompleteness(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	for _, kind := range AllKinds() {
		pol, err := NewPolicy(kind, numNodes, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := PartitionAll(numNodes, edges, pol)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, numNodes)
		for _, p := range parts {
			for lid := uint32(0); lid < p.NumMasters; lid++ {
				gid := p.GID(lid)
				seen[gid]++
				if pol.Owner(gid) != p.HostID {
					t.Fatalf("%s: master of %d on host %d, owner is %d",
						kind, gid, p.HostID, pol.Owner(gid))
				}
			}
		}
		for gid, c := range seen {
			if c != 1 {
				t.Fatalf("%s: node %d has %d masters", kind, gid, c)
			}
		}
	}
}

// TestStructuralInvariants verifies the §3.2 properties the communication
// optimizer relies on, per policy.
func TestStructuralInvariants(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	const hosts = 6
	for _, kind := range AllKinds() {
		pol, err := NewPolicy(kind, numNodes, hosts, opt)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := PartitionAll(numNodes, edges, pol)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			for lid := p.NumMasters; lid < p.NumProxies(); lid++ {
				hasOut := p.HasOut.Test(lid)
				hasIn := p.HasIn.Test(lid)
				switch kind {
				case OEC:
					// Mirrors hold only incoming edges.
					if hasOut {
						t.Fatalf("oec: mirror %d on host %d has outgoing edges", p.GID(lid), p.HostID)
					}
				case IEC:
					if hasIn {
						t.Fatalf("iec: mirror %d on host %d has incoming edges", p.GID(lid), p.HostID)
					}
				case CVC:
					// Mirrors have incoming or outgoing edges, not both.
					if hasIn && hasOut {
						t.Fatalf("cvc: mirror %d on host %d has both edge kinds", p.GID(lid), p.HostID)
					}
				}
			}
			// Structural flags must reflect the actual local graph.
			in := p.Graph.InDegrees()
			for lid := uint32(0); lid < p.NumProxies(); lid++ {
				if p.HasOut.Test(lid) != (p.Graph.OutDegree(lid) > 0) {
					t.Fatalf("%s: HasOut flag wrong for %d", kind, lid)
				}
				if p.HasIn.Test(lid) != (in[lid] > 0) {
					t.Fatalf("%s: HasIn flag wrong for %d", kind, lid)
				}
			}
		}
	}
}

// TestLocalIDLayout: masters occupy [0, NumMasters) and LID/GID are
// inverse bijections.
func TestLocalIDLayout(t *testing.T) {
	numNodes, edges, g := genEdges(t, 8)
	opt := options(g, numNodes)
	pol, err := NewPolicy(CVC, numNodes, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		for lid := uint32(0); lid < p.NumProxies(); lid++ {
			back, ok := p.LID(p.GID(lid))
			if !ok || back != lid {
				t.Fatalf("LID(GID(%d)) = %d, %v", lid, back, ok)
			}
			if p.IsMaster(lid) != (lid < p.NumMasters) {
				t.Fatalf("IsMaster(%d) inconsistent", lid)
			}
		}
	}
}

// TestMirrorGIDsByOwnerSorted: memoization order is ascending GIDs per
// owner, and all mirrors are covered.
func TestMirrorGIDsByOwnerSorted(t *testing.T) {
	numNodes, edges, g := genEdges(t, 8)
	opt := options(g, numNodes)
	pol, err := NewPolicy(HVC, numNodes, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		byOwner := p.MirrorGIDsByOwner()
		total := 0
		for h, gids := range byOwner {
			for i, gid := range gids {
				if pol.Owner(gid) != h {
					t.Fatalf("mirror %d listed under host %d, owner %d", gid, h, pol.Owner(gid))
				}
				if i > 0 && gids[i-1] >= gid {
					t.Fatalf("mirrors for host %d not ascending", h)
				}
			}
			total += len(gids)
		}
		if total != int(p.NumProxies()-p.NumMasters) {
			t.Fatalf("mirror cover: %d of %d", total, p.NumProxies()-p.NumMasters)
		}
	}
}

func TestComputeStats(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	pol, err := NewPolicy(OEC, numNodes, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(parts)
	if s.GlobalEdges != uint64(len(edges)) {
		t.Fatalf("global edges %d, want %d", s.GlobalEdges, len(edges))
	}
	if s.ReplicationFactor < 1 {
		t.Fatalf("replication factor %f < 1", s.ReplicationFactor)
	}
	if s.EdgeImbalance < 1 {
		t.Fatalf("imbalance %f < 1", s.EdgeImbalance)
	}
	if ComputeStats(nil).NumHosts != 0 {
		t.Fatal("empty stats")
	}
}

// TestDegreeBalancedChunks: edge-balanced boundaries give each host a
// total degree within a reasonable factor of the mean.
func TestDegreeBalancedChunks(t *testing.T) {
	numNodes, _, g := genEdges(t, 11)
	out := make([]uint32, numNodes)
	var total uint64
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
		total += uint64(out[u])
	}
	const hosts = 8
	owner := newDegreeBalancedOwner(out, hosts)
	loads := make([]uint64, hosts)
	for u := uint64(0); u < numNodes; u++ {
		loads[owner.owner(u)] += uint64(out[u])
	}
	mean := float64(total) / hosts
	for h, l := range loads {
		if float64(l) > 3*mean {
			t.Errorf("host %d load %d vs mean %.0f", h, l, mean)
		}
	}
}

// TestQuickBlockOwnerCoversAll: the chunked owner maps every ID to a valid
// host and boundaries are monotone.
func TestQuickBlockOwnerCoversAll(t *testing.T) {
	f := func(nRaw uint16, hostsRaw uint8) bool {
		n := uint64(nRaw)%1000 + 1
		hosts := int(hostsRaw)%16 + 1
		o := newNodeBalancedOwner(n, hosts)
		prev := 0
		for gid := uint64(0); gid < n; gid++ {
			h := o.owner(gid)
			if h < 0 || h >= hosts || h < prev {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4},
		9: {3, 3}, 12: {3, 4}, 16: {4, 4}, 7: {1, 7},
	}
	for hosts, want := range cases {
		r, c := gridShape(hosts)
		if r != want[0] || c != want[1] {
			t.Errorf("gridShape(%d) = (%d,%d), want %v", hosts, r, c, want)
		}
		if r*c != hosts {
			t.Errorf("gridShape(%d) does not multiply back", hosts)
		}
	}
}

func TestPolicyErrors(t *testing.T) {
	if _, err := NewPolicy(OEC, 10, 0, Options{}); err == nil {
		t.Fatal("0 hosts accepted")
	}
	if _, err := NewPolicy(HVC, 10, 2, Options{}); err == nil {
		t.Fatal("HVC without in-degrees accepted")
	}
	if _, err := NewPolicy("bogus", 10, 2, Options{}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestSingleHostPartitionIsWholeGraph(t *testing.T) {
	numNodes, edges, _ := genEdges(t, 8)
	pol, err := NewPolicy(OEC, numNodes, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	p := parts[0]
	if uint64(p.NumMasters) != numNodes || p.NumProxies() != p.NumMasters {
		t.Fatalf("single host: %d masters, %d proxies", p.NumMasters, p.NumProxies())
	}
	if p.Graph.NumEdges() != uint64(len(edges)) {
		t.Fatalf("single host edges %d", p.Graph.NumEdges())
	}
}

func BenchmarkPartitionCVC8(b *testing.B) {
	numNodes, edges, g := genEdges(b, 14)
	opt := options(g, numNodes)
	pol, err := NewPolicy(CVC, numNodes, 8, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionAll(numNodes, edges, pol); err != nil {
			b.Fatal(err)
		}
	}
}
