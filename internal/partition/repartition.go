package partition

import (
	"fmt"

	"gluon/internal/graph"
)

// CollectEdges reassembles the global edge list from a consistent set of
// partitions (each edge lives on exactly one host, so concatenating local
// edges in global-ID space restores the input multiset).
func CollectEdges(parts []*Partition) []graph.Edge {
	var total uint64
	for _, p := range parts {
		total += p.Graph.NumEdges()
	}
	out := make([]graph.Edge, 0, total)
	for _, p := range parts {
		g := p.Graph
		for u := uint32(0); u < g.NumNodes(); u++ {
			ws := g.EdgeWeights(u)
			for i, v := range g.Neighbors(u) {
				e := graph.Edge{Src: p.GID(u), Dst: p.GID(v)}
				if ws != nil {
					e.Weight = ws[i]
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// Repartition redistributes an existing partitioning under a new policy —
// the workflow behind the paper's §4.1 footnote: "If the graph is
// re-partitioned, then memoization can be done soon after partitioning to
// amortize the communication costs until the next re-partitioning."
// Gluon instances built over the result re-run the memoization exchange.
//
// Field state migration is the program's concern: collect master values by
// global ID before repartitioning and re-install them after (values are
// policy-independent; only proxy placement changes).
func Repartition(parts []*Partition, newPol Policy) ([]*Partition, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("partition: repartition of empty set")
	}
	numNodes := parts[0].GlobalNodes
	edges := CollectEdges(parts)
	return PartitionAll(numNodes, edges, newPol)
}
