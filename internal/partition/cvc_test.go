package partition

import (
	"testing"
	"testing/quick"

	"gluon/internal/graph"
)

// TestQuickCVCGridPlacement: the Cartesian vertex-cut assigns every edge to
// the host at (row of owner(src), column of owner(dst)) — the 2-D property
// that bounds communication partners to one row plus one column.
func TestQuickCVCGridPlacement(t *testing.T) {
	const numNodes = 1 << 12
	for _, hosts := range []int{4, 6, 8, 12, 16} {
		pol, err := NewPolicy(CVC, numNodes, hosts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cvc := pol.(*cvcPolicy)
		rows, cols := cvc.rows, cvc.cols
		if rows*cols != hosts {
			t.Fatalf("hosts %d: grid %dx%d", hosts, rows, cols)
		}
		f := func(src, dst uint16) bool {
			s, d := uint64(src)%numNodes, uint64(dst)%numNodes
			h := pol.EdgeHost(s, d)
			// Same row as the source's owner, same column as the
			// destination's owner.
			return h/cols == pol.Owner(s)/cols && h%cols == pol.Owner(d)%cols
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("hosts %d: %v", hosts, err)
		}
	}
}

// TestQuickCVCCommunicationPartners: under CVC, the hosts an owner
// exchanges proxies with lie in its own grid row and column — at most
// rows+cols-2 partners rather than hosts-1 (why CVC wins at scale, §3.2).
func TestQuickCVCCommunicationPartners(t *testing.T) {
	const numNodes = 1 << 12
	const hosts = 16
	pol, err := NewPolicy(CVC, numNodes, hosts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cvc := pol.(*cvcPolicy)
	f := func(src, dst uint16) bool {
		s, d := uint64(src)%numNodes, uint64(dst)%numNodes
		h := pol.EdgeHost(s, d)
		srcOwner, dstOwner := pol.Owner(s), pol.Owner(d)
		// The edge host shares a row with src's owner and a column with
		// dst's owner, so any proxy↔master pair shares a row or column.
		sameRowSrc := h/cvc.cols == srcOwner/cvc.cols
		sameColDst := h%cvc.cols == dstOwner%cvc.cols
		return sameRowSrc && sameColDst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHVCEdgePlacement: the hybrid vertex-cut routes low-in-degree
// destinations to their owner and spreads high-in-degree hubs by source.
func TestQuickHVCEdgePlacement(t *testing.T) {
	const numNodes = 256
	inDeg := make([]uint32, numNodes)
	for i := range inDeg {
		if i%10 == 0 {
			inDeg[i] = 1000 // hubs
		} else {
			inDeg[i] = 2
		}
	}
	pol, err := NewPolicy(HVC, numNodes, 4, Options{InDegrees: inDeg, HVCThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	f := func(src, dst uint8) bool {
		s, d := uint64(src)%numNodes, uint64(dst)%numNodes
		h := pol.EdgeHost(s, d)
		if inDeg[d] <= 100 {
			return h == pol.Owner(d)
		}
		return h == pol.Owner(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenPolicy: frozen policies answer Owner but refuse EdgeHost.
func TestFrozenPolicy(t *testing.T) {
	orig, err := NewPolicy(OEC, 100, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds, ok := Bounds(orig)
	if !ok {
		t.Fatal("no bounds from chunked policy")
	}
	frozen, err := Frozen("oec", bounds)
	if err != nil {
		t.Fatal(err)
	}
	for gid := uint64(0); gid < 100; gid++ {
		if frozen.Owner(gid) != orig.Owner(gid) {
			t.Fatalf("owner of %d differs", gid)
		}
	}
	if fb, ok := Bounds(frozen); !ok || len(fb) != len(bounds) {
		t.Fatal("frozen bounds not recoverable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EdgeHost on frozen policy did not panic")
		}
	}()
	frozen.EdgeHost(0, 1)
}

func TestFrozenRejectsBadBounds(t *testing.T) {
	if _, err := Frozen("oec", []uint64{5}); err == nil {
		t.Fatal("single bound accepted")
	}
}

// TestReassembleValidation: corrupted inputs are rejected.
func TestReassembleValidation(t *testing.T) {
	pol, _ := NewPolicy(OEC, 4, 2, Options{})
	g := graph.Build(3, []graph.LocalEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if _, err := Reassemble(0, pol, g, []uint64{1, 2}, 1, 4); err == nil {
		t.Fatal("short GID vector accepted")
	}
	if _, err := Reassemble(0, pol, g, []uint64{1, 2, 2}, 1, 4); err == nil {
		t.Fatal("duplicate GIDs accepted")
	}
	if _, err := Reassemble(0, pol, g, []uint64{1, 2, 3}, 9, 4); err == nil {
		t.Fatal("masters > proxies accepted")
	}
	p, err := Reassemble(0, pol, g, []uint64{0, 1, 3}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasOut.Test(0) || !p.HasIn.Test(1) || p.HasIn.Test(0) {
		t.Fatal("structural flags wrong after reassembly")
	}
}
