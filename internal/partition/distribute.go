package partition

// Distributed graph construction: the paper's loading path (§4.1 — "each
// host reads from disk a subset of edges assigned to it and receives from
// other hosts the rest of the edges assigned to it"). Each host starts
// with an arbitrary shard of the edge list (e.g. a contiguous byte range
// of the input file), routes every edge to the host the policy assigns it
// to through the transport, and builds its local partition from what it
// keeps plus what it receives.

import (
	"encoding/binary"
	"fmt"

	"gluon/internal/comm"
	"gluon/internal/graph"
)

const tagEdges comm.Tag = comm.TagUser + 9000

// edgeWire is the on-the-wire size of one edge (src, dst uint64 + weight
// uint32).
const edgeWire = 20

// Distribute builds this host's partition from an arbitrary local edge
// shard: edges are exchanged so each lands on the host the policy assigns
// it to. All hosts must call Distribute collectively with the same policy
// and node count; the union of shards must be the whole graph. The
// weighted flag must be agreed globally (it cannot be inferred from a
// shard that happens to hold only zero-weight edges).
func Distribute(numNodes uint64, shard []graph.Edge, pol Policy, t comm.Transport, weighted bool) (*Partition, error) {
	hosts := pol.NumHosts()
	if t.NumHosts() != hosts {
		return nil, fmt.Errorf("partition: policy for %d hosts on a %d-host transport", hosts, t.NumHosts())
	}
	me := t.HostID()

	// Route local shard edges into per-destination buffers.
	outbound := make([][]graph.Edge, hosts)
	var mine []graph.Edge
	for _, e := range shard {
		h := pol.EdgeHost(e.Src, e.Dst)
		if h == me {
			mine = append(mine, e)
		} else {
			outbound[h] = append(outbound[h], e)
		}
	}

	// Exchange: one message per peer (possibly empty), sends overlapped
	// with receives.
	sendErr := make(chan error, 1)
	go func() {
		for h := 0; h < hosts; h++ {
			if h == me {
				continue
			}
			if err := t.Send(h, tagEdges, encodeEdges(outbound[h])); err != nil {
				sendErr <- fmt.Errorf("partition: shipping edges to host %d: %w", h, err)
				return
			}
		}
		sendErr <- nil
	}()
	for h := 0; h < hosts; h++ {
		if h == me {
			continue
		}
		payload, err := t.Recv(h, tagEdges)
		if err != nil {
			return nil, fmt.Errorf("partition: receiving edges from host %d: %w", h, err)
		}
		got, err := decodeEdges(payload)
		if err != nil {
			return nil, fmt.Errorf("partition: edges from host %d: %w", h, err)
		}
		mine = append(mine, got...)
	}
	if err := <-sendErr; err != nil {
		return nil, err
	}
	return buildLocal(me, numNodes, mine, pol, weighted)
}

// DistributeAll is the in-process convenience: splits edges into contiguous
// shards (simulating per-host disk ranges) and runs Distribute on every
// host of the hub concurrently.
func DistributeAll(numNodes uint64, edges []graph.Edge, pol Policy, hub *comm.Hub, weighted bool) ([]*Partition, error) {
	hosts := pol.NumHosts()
	parts := make([]*Partition, hosts)
	errs := make([]error, hosts)
	done := make(chan int, hosts)
	chunk := (len(edges) + hosts - 1) / hosts
	for h := 0; h < hosts; h++ {
		lo := h * chunk
		hi := lo + chunk
		if lo > len(edges) {
			lo = len(edges)
		}
		if hi > len(edges) {
			hi = len(edges)
		}
		go func(h, lo, hi int) {
			parts[h], errs[h] = Distribute(numNodes, edges[lo:hi], pol, hub.Endpoint(h), weighted)
			done <- h
		}(h, lo, hi)
	}
	for i := 0; i < hosts; i++ {
		<-done
	}
	for h, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition: host %d: %w", h, err)
		}
	}
	return parts, nil
}

func encodeEdges(edges []graph.Edge) []byte {
	buf := make([]byte, 4+len(edges)*edgeWire)
	binary.LittleEndian.PutUint32(buf, uint32(len(edges)))
	off := 4
	for _, e := range edges {
		binary.LittleEndian.PutUint64(buf[off:], e.Src)
		binary.LittleEndian.PutUint64(buf[off+8:], e.Dst)
		binary.LittleEndian.PutUint32(buf[off+16:], e.Weight)
		off += edgeWire
	}
	return buf
}

func decodeEdges(payload []byte) ([]graph.Edge, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("short edge batch")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+n*edgeWire {
		return nil, fmt.Errorf("edge batch: %d bytes for %d edges", len(payload), n)
	}
	edges := make([]graph.Edge, n)
	off := 4
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    binary.LittleEndian.Uint64(payload[off:]),
			Dst:    binary.LittleEndian.Uint64(payload[off+8:]),
			Weight: binary.LittleEndian.Uint32(payload[off+16:]),
		}
		off += edgeWire
	}
	return edges, nil
}
