// Package partition distributes a graph's edges between hosts and builds
// each host's local partition: a CSR over local IDs, the local→global ID
// vector, the master/mirror split, and the per-proxy structural flags that
// Gluon's communication optimizer consumes (paper §3).
//
// The paper's unified formulation (§3.1): a policy assigns every edge to a
// host; a proxy is created on a host for every endpoint of an edge assigned
// there; the proxy on the node's owner host is the master, all others are
// mirrors. The four strategies differ only in the edge-assignment rule:
//
//	OEC  edge (u,v) → owner(u)   (mirrors have only incoming edges)
//	IEC  edge (u,v) → owner(v)   (mirrors have only outgoing edges)
//	CVC  edge (u,v) → grid(row(owner(u)), col(owner(v)))
//	HVC  low-in-degree v: → owner(v); high-in-degree v: → owner(u)
//	     (an unconstrained vertex cut, the paper's UVC instance)
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Policy assigns nodes (masters) and edges to hosts.
type Policy interface {
	// Name is the short policy identifier ("oec", "iec", "cvc", "hvc").
	Name() string
	// NumHosts returns the number of hosts the policy partitions for.
	NumHosts() int
	// Owner returns the host owning the master proxy of gid.
	Owner(gid uint64) int
	// EdgeHost returns the host an edge is assigned to.
	EdgeHost(src, dst uint64) int
}

// Kind names a partitioning strategy.
type Kind string

// The four partitioning strategies of the paper.
const (
	OEC Kind = "oec"
	IEC Kind = "iec"
	CVC Kind = "cvc"
	HVC Kind = "hvc"
)

// AllKinds lists every supported strategy.
func AllKinds() []Kind { return []Kind{OEC, IEC, CVC, HVC} }

// blockOwner maps global IDs to hosts by contiguous chunks, the paper's
// chunk-based assignment (§5.2). Boundaries may be node-balanced or
// edge-balanced (degree-weighted).
type blockOwner struct {
	bounds []uint64 // bounds[h] .. bounds[h+1] owned by host h
}

func newNodeBalancedOwner(numNodes uint64, hosts int) blockOwner {
	b := make([]uint64, hosts+1)
	for h := 0; h <= hosts; h++ {
		b[h] = numNodes * uint64(h) / uint64(hosts)
	}
	return blockOwner{bounds: b}
}

// newDegreeBalancedOwner picks chunk boundaries so each host gets roughly
// equal total degree, matching the paper's "chunk-based edge-cut that
// balances outgoing (OEC) or incoming (IEC) edges".
func newDegreeBalancedOwner(degrees []uint32, hosts int) blockOwner {
	var total uint64
	for _, d := range degrees {
		total += uint64(d)
	}
	b := make([]uint64, hosts+1)
	b[hosts] = uint64(len(degrees))
	var acc uint64
	h := 1
	target := func(h int) uint64 { return total * uint64(h) / uint64(hosts) }
	for i, d := range degrees {
		acc += uint64(d)
		for h < hosts && acc >= target(h) {
			b[h] = uint64(i + 1)
			h++
		}
	}
	for ; h < hosts; h++ {
		b[h] = uint64(len(degrees))
	}
	return blockOwner{bounds: b}
}

func (o blockOwner) owner(gid uint64) int {
	// Binary search the chunk containing gid.
	return sort.Search(len(o.bounds)-1, func(h int) bool { return o.bounds[h+1] > gid })
}

// oecPolicy assigns each edge to its source's owner.
type oecPolicy struct{ base }

func (p *oecPolicy) Name() string                 { return string(OEC) }
func (p *oecPolicy) EdgeHost(src, dst uint64) int { return p.Owner(src) }

// iecPolicy assigns each edge to its destination's owner.
type iecPolicy struct{ base }

func (p *iecPolicy) Name() string                 { return string(IEC) }
func (p *iecPolicy) EdgeHost(src, dst uint64) int { return p.Owner(dst) }

// base carries the node-owner map shared by all policies.
type base struct {
	own   blockOwner
	hosts int
}

func (b *base) NumHosts() int        { return b.hosts }
func (b *base) Owner(gid uint64) int { return b.own.owner(gid) }

// cvcPolicy is the Cartesian vertex-cut: hosts form an R×C grid
// (host h sits at row h/C, column h%C); edge (u,v) goes to the host at
// (row of owner(u), column of owner(v)). Only the master (at the
// intersection) can have both incoming and outgoing edges.
type cvcPolicy struct {
	base
	rows, cols int
}

func (p *cvcPolicy) Name() string { return string(CVC) }

func (p *cvcPolicy) EdgeHost(src, dst uint64) int {
	r := p.Owner(src) / p.cols
	c := p.Owner(dst) % p.cols
	return r*p.cols + c
}

// gridShape factors hosts into the most square R×C grid with R*C == hosts.
func gridShape(hosts int) (rows, cols int) {
	rows = int(math.Sqrt(float64(hosts)))
	for rows > 1 && hosts%rows != 0 {
		rows--
	}
	if rows < 1 {
		rows = 1
	}
	return rows, hosts / rows
}

// hvcPolicy is the hybrid vertex-cut of PowerLyra: edges into low-in-degree
// nodes are placed at the destination's owner (local aggregation), edges
// into high-in-degree nodes at the source's owner (spreading hub traffic).
// Because both the in- and out-edges of a node can land on arbitrary hosts,
// this is an unconstrained vertex cut (UVC) in the paper's taxonomy.
type hvcPolicy struct {
	base
	inDeg     []uint32
	threshold uint32
}

func (p *hvcPolicy) Name() string { return string(HVC) }

func (p *hvcPolicy) EdgeHost(src, dst uint64) int {
	if p.inDeg[dst] <= p.threshold {
		return p.Owner(dst)
	}
	return p.Owner(src)
}

// Options configures policy construction.
type Options struct {
	// OutDegrees / InDegrees enable degree-balanced chunking and the HVC
	// threshold. They are indexed by global ID. InDegrees is required for
	// HVC; both are optional otherwise (node-balanced chunks are used when
	// absent).
	OutDegrees []uint32
	InDegrees  []uint32
	// HVCThreshold separates low- from high-in-degree nodes. 0 means
	// "4 × average degree", PowerLyra's recommended regime.
	HVCThreshold uint32
}

// NewPolicy constructs the named policy for a graph of numNodes nodes.
func NewPolicy(kind Kind, numNodes uint64, hosts int, opt Options) (Policy, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("partition: need at least 1 host, got %d", hosts)
	}
	nodeOwner := func(deg []uint32) blockOwner {
		if deg != nil {
			return newDegreeBalancedOwner(deg, hosts)
		}
		return newNodeBalancedOwner(numNodes, hosts)
	}
	switch kind {
	case OEC:
		return &oecPolicy{base{own: nodeOwner(opt.OutDegrees), hosts: hosts}}, nil
	case IEC:
		return &iecPolicy{base{own: nodeOwner(opt.InDegrees), hosts: hosts}}, nil
	case CVC:
		r, c := gridShape(hosts)
		return &cvcPolicy{base: base{own: nodeOwner(opt.OutDegrees), hosts: hosts}, rows: r, cols: c}, nil
	case HVC:
		if opt.InDegrees == nil {
			return nil, fmt.Errorf("partition: HVC requires in-degrees")
		}
		th := opt.HVCThreshold
		if th == 0 {
			var total uint64
			for _, d := range opt.InDegrees {
				total += uint64(d)
			}
			avg := uint32(1)
			if numNodes > 0 {
				avg = uint32(total / numNodes)
				if avg == 0 {
					avg = 1
				}
			}
			th = 4 * avg
		}
		return &hvcPolicy{
			base:      base{own: nodeOwner(opt.InDegrees), hosts: hosts},
			inDeg:     opt.InDegrees,
			threshold: th,
		}, nil
	default:
		return nil, fmt.Errorf("partition: unknown policy kind %q", kind)
	}
}
