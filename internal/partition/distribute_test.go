package partition

import (
	"fmt"
	"testing"

	"gluon/internal/comm"
	"gluon/internal/graph"
)

// TestDistributeMatchesCentralized: distributed construction from
// arbitrary shards produces partitions identical in structure to the
// centralized PartitionAll.
func TestDistributeMatchesCentralized(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	for _, kind := range AllKinds() {
		for _, hosts := range []int{2, 4, 5} {
			t.Run(fmt.Sprintf("%s/h%d", kind, hosts), func(t *testing.T) {
				pol, err := NewPolicy(kind, numNodes, hosts, opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := PartitionAll(numNodes, edges, pol)
				if err != nil {
					t.Fatal(err)
				}
				hub := comm.NewHub(hosts)
				defer hub.Close()
				got, err := DistributeAll(numNodes, edges, pol, hub, false)
				if err != nil {
					t.Fatal(err)
				}
				for h := range want {
					if got[h].NumMasters != want[h].NumMasters {
						t.Fatalf("host %d: masters %d vs %d", h, got[h].NumMasters, want[h].NumMasters)
					}
					if got[h].NumProxies() != want[h].NumProxies() {
						t.Fatalf("host %d: proxies %d vs %d", h, got[h].NumProxies(), want[h].NumProxies())
					}
					if got[h].Graph.NumEdges() != want[h].Graph.NumEdges() {
						t.Fatalf("host %d: edges %d vs %d", h, got[h].Graph.NumEdges(), want[h].Graph.NumEdges())
					}
					for lid := uint32(0); lid < want[h].NumProxies(); lid++ {
						if got[h].GID(lid) != want[h].GID(lid) {
							t.Fatalf("host %d lid %d: gid %d vs %d", h, lid, got[h].GID(lid), want[h].GID(lid))
						}
					}
					// Edge multisets per host match (order may differ).
					if !sameEdgeMultiset(got[h], want[h]) {
						t.Fatalf("host %d: local edge multisets differ", h)
					}
				}
			})
		}
	}
}

func sameEdgeMultiset(a, b *Partition) bool {
	count := func(p *Partition) map[[2]uint64]int {
		m := map[[2]uint64]int{}
		for u := uint32(0); u < p.Graph.NumNodes(); u++ {
			for _, v := range p.Graph.Neighbors(u) {
				m[[2]uint64{p.GID(u), p.GID(v)}]++
			}
		}
		return m
	}
	ca, cb := count(a), count(b)
	if len(ca) != len(cb) {
		return false
	}
	for k, v := range ca {
		if cb[k] != v {
			return false
		}
	}
	return true
}

// TestDistributeWeighted: weights survive the shuffle.
func TestDistributeWeighted(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 3, Weight: 7},
		{Src: 3, Dst: 1, Weight: 9},
		{Src: 1, Dst: 2, Weight: 11},
	}
	pol, err := NewPolicy(OEC, 4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(2)
	defer hub.Close()
	parts, err := DistributeAll(4, edges, pol, hub, true)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, p := range parts {
		if !p.Graph.HasWeights {
			t.Fatal("weights dropped")
		}
		for _, w := range p.Graph.Weights {
			total += uint64(w)
		}
	}
	if total != 27 {
		t.Fatalf("weight sum %d, want 27", total)
	}
}

// TestDistributeHostMismatch: policy/transport size disagreement errors.
func TestDistributeHostMismatch(t *testing.T) {
	pol, _ := NewPolicy(OEC, 4, 3, Options{})
	hub := comm.NewHub(2)
	defer hub.Close()
	if _, err := Distribute(4, nil, pol, hub.Endpoint(0), false); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
}

func TestEdgeCodecRoundTrip(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 2, Weight: 3}, {Src: 1 << 40, Dst: 9, Weight: 0}}
	got, err := decodeEdges(encodeEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Fatalf("roundtrip %v", got)
	}
	if _, err := decodeEdges([]byte{1, 2}); err == nil {
		t.Fatal("short batch accepted")
	}
	if _, err := decodeEdges([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated batch accepted")
	}
	empty, err := decodeEdges(encodeEdges(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}
