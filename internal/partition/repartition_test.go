package partition

import (
	"testing"

	"gluon/internal/graph"
)

func TestCollectEdgesRestoresMultiset(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	pol, err := NewPolicy(CVC, numNodes, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	got := CollectEdges(parts)
	if len(got) != len(edges) {
		t.Fatalf("collected %d edges, want %d", len(got), len(edges))
	}
	count := func(es []graph.Edge) map[graph.Edge]int {
		m := make(map[graph.Edge]int, len(es))
		for _, e := range es {
			m[e]++
		}
		return m
	}
	want := count(edges)
	have := count(got)
	for e, c := range want {
		if have[e] != c {
			t.Fatalf("edge %v: %d copies, want %d", e, have[e], c)
		}
	}
}

func TestRepartitionChangesPolicyPreservesGraph(t *testing.T) {
	numNodes, edges, g := genEdges(t, 9)
	opt := options(g, numNodes)
	oec, err := NewPolicy(OEC, numNodes, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAll(numNodes, edges, oec)
	if err != nil {
		t.Fatal(err)
	}
	cvc, err := NewPolicy(CVC, numNodes, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	reparts, err := Repartition(parts, cvc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reparts) != 8 {
		t.Fatalf("repartitioned into %d hosts", len(reparts))
	}
	var edgeSum uint64
	for _, p := range reparts {
		edgeSum += p.Graph.NumEdges()
		if p.Policy.Name() != "cvc" {
			t.Fatalf("policy %s", p.Policy.Name())
		}
	}
	if edgeSum != uint64(len(edges)) {
		t.Fatalf("edges %d, want %d", edgeSum, len(edges))
	}
	// Masters complete under the new policy.
	seen := make([]int, numNodes)
	for _, p := range reparts {
		for lid := uint32(0); lid < p.NumMasters; lid++ {
			seen[p.GID(lid)]++
		}
	}
	for gid, c := range seen {
		if c != 1 {
			t.Fatalf("node %d has %d masters after repartition", gid, c)
		}
	}
}

func TestRepartitionEmpty(t *testing.T) {
	pol, _ := NewPolicy(OEC, 4, 2, Options{})
	if _, err := Repartition(nil, pol); err == nil {
		t.Fatal("empty repartition accepted")
	}
}
