// Package bitset provides a fixed-size bitset with optional atomic updates.
//
// Gluon uses bitsets in two roles described in the paper (§4.2): engines
// track which node fields changed during a computation round, and the
// communication runtime encodes "which proxies in the memoized order carry a
// value in this message" metadata. Both roles need fast parallel Set and a
// fast popcount/iteration path, which this package provides.
package bitset

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitset is a fixed-capacity set of bit indices in [0, Len).
// The zero value is an empty bitset of length 0; use New for a sized one.
//
// Concurrent use: Set, Clear and Test on distinct or identical indices are
// safe when performed through the atomic variants (Set uses atomic OR).
// Bulk operations (Reset, Union, words access) are not safe to run
// concurrently with mutators.
type Bitset struct {
	words []uint64
	n     uint32
}

// New returns an empty bitset capable of holding n bits.
func New(n uint32) *Bitset {
	return &Bitset{words: make([]uint64, (int(n)+wordBits-1)/wordBits), n: n}
}

// FromWords constructs a bitset of length n backed by the given words.
// The slice is used directly, not copied. It must contain at least
// ceil(n/64) words.
func FromWords(words []uint64, n uint32) (*Bitset, error) {
	need := (int(n) + wordBits - 1) / wordBits
	if len(words) < need {
		return nil, fmt.Errorf("bitset: need %d words for %d bits, got %d", need, n, len(words))
	}
	return &Bitset{words: words[:need], n: n}, nil
}

// Len returns the number of bits the set can hold.
func (b *Bitset) Len() uint32 { return b.n }

// Words exposes the backing words (read-only by convention) for wire encoding.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i. It is safe for concurrent use.
func (b *Bitset) Set(i uint32) {
	w := &b.words[i/wordBits]
	mask := uint64(1) << (i % wordBits)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// SetUnsync sets bit i without atomic operations. Only use when the caller
// guarantees exclusive access to the word containing i.
func (b *Bitset) SetUnsync(i uint32) {
	b.words[i/wordBits] |= uint64(1) << (i % wordBits)
}

// TestAndSet sets bit i and reports whether this call changed it from 0 to
// 1 (exactly one concurrent caller wins). Worklists use it to suppress
// duplicate scheduling.
func (b *Bitset) TestAndSet(i uint32) bool {
	w := &b.words[i/wordBits]
	mask := uint64(1) << (i % wordBits)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Clear clears bit i. It is safe for concurrent use.
func (b *Bitset) Clear(i uint32) {
	w := &b.words[i/wordBits]
	mask := uint64(1) << (i % wordBits)
	for {
		old := atomic.LoadUint64(w)
		if old&mask == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old&^mask) {
			return
		}
	}
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i uint32) bool {
	return atomic.LoadUint64(&b.words[i/wordBits])&(uint64(1)<<(i%wordBits)) != 0
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// trimTail zeroes the bits beyond Len in the final word so Count stays exact.
func (b *Bitset) trimTail() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << rem) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() uint32 {
	var c int
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return uint32(c)
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Union ORs other into b. Both must have the same length.
func (b *Bitset) Union(other *Bitset) error {
	if other.n != b.n {
		return fmt.Errorf("bitset: union length mismatch %d != %d", b.n, other.n)
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
	return nil
}

// CopyFrom copies the contents of other into b. Both must have the same length.
func (b *Bitset) CopyFrom(other *Bitset) error {
	if other.n != b.n {
		return fmt.Errorf("bitset: copy length mismatch %d != %d", b.n, other.n)
	}
	copy(b.words, other.words)
	return nil
}

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i uint32)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(uint32(wi*wordBits + tz))
			w &= w - 1
		}
	}
}

// AppendIndices appends the indices of all set bits to dst and returns it.
func (b *Bitset) AppendIndices(dst []uint32) []uint32 {
	b.ForEach(func(i uint32) { dst = append(dst, i) })
	return dst
}

// NextSet returns the index of the first set bit at or after i,
// or Len() if there is none.
func (b *Bitset) NextSet(i uint32) uint32 {
	if i >= b.n {
		return b.n
	}
	wi := int(i / wordBits)
	w := b.words[wi] >> (i % wordBits)
	if w != 0 {
		return i + uint32(bits.TrailingZeros64(w))
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return uint32(wi*wordBits + bits.TrailingZeros64(b.words[wi]))
		}
	}
	return b.n
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountRange(lo, hi uint32) uint32 {
	if hi > b.n {
		hi = b.n
	}
	var c uint32
	for i := b.NextSet(lo); i < hi; i = b.NextSet(i + 1) {
		c++
	}
	return c
}

// String renders small bitsets for debugging, e.g. "{1,5,9}/16".
func (b *Bitset) String() string {
	s := "{"
	first := true
	b.ForEach(func(i uint32) {
		if !first {
			s += ","
		}
		s += fmt.Sprint(i)
		first = false
	})
	return fmt.Sprintf("%s}/%d", s, b.n)
}
