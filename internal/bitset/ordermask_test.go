package bitset

import (
	"math/rand"
	"testing"
)

// refIntersect is the per-lid scan OrderMask replaces.
func refIntersect(order []uint32, upd *Bitset, positions, members []uint32) ([]uint32, []uint32) {
	for pos, lid := range order {
		if upd.Test(lid) {
			positions = append(positions, uint32(pos))
			members = append(members, lid)
		}
	}
	return positions, members
}

func TestOrderMaskMatchesPerLidScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := uint32(1 + rng.Intn(500))
		// Random strictly ascending order over [0, n).
		var order []uint32
		for lid := uint32(0); lid < n; lid++ {
			if rng.Intn(3) == 0 {
				order = append(order, lid)
			}
		}
		upd := New(n)
		for lid := uint32(0); lid < n; lid++ {
			if rng.Intn(2) == 0 {
				upd.Set(lid)
			}
		}
		m := NewOrderMask(order)
		if m == nil {
			t.Fatalf("trial %d: ascending order rejected", trial)
		}
		if m.Len() != uint32(len(order)) {
			t.Fatalf("trial %d: Len %d != %d", trial, m.Len(), len(order))
		}
		wantPos, wantMem := refIntersect(order, upd, nil, nil)
		gotPos, gotMem := m.IntersectAppend(upd, nil, nil)
		if len(gotPos) != len(wantPos) || len(gotMem) != len(wantMem) {
			t.Fatalf("trial %d: got %d/%d entries, want %d/%d",
				trial, len(gotPos), len(gotMem), len(wantPos), len(wantMem))
		}
		for i := range wantPos {
			if gotPos[i] != wantPos[i] || gotMem[i] != wantMem[i] {
				t.Fatalf("trial %d entry %d: got (%d,%d), want (%d,%d)",
					trial, i, gotPos[i], gotMem[i], wantPos[i], wantMem[i])
			}
		}
	}
}

func TestOrderMaskAppendsToPrefix(t *testing.T) {
	order := []uint32{2, 5, 64, 130}
	upd := New(200)
	upd.Set(5)
	upd.Set(130)
	m := NewOrderMask(order)
	pos := []uint32{99}
	mem := []uint32{98}
	pos, mem = m.IntersectAppend(upd, pos, mem)
	if len(pos) != 3 || pos[0] != 99 || mem[0] != 98 {
		t.Fatalf("prefix clobbered: pos=%v mem=%v", pos, mem)
	}
	if pos[1] != 1 || mem[1] != 5 || pos[2] != 3 || mem[2] != 130 {
		t.Fatalf("wrong entries: pos=%v mem=%v", pos, mem)
	}
}

func TestOrderMaskRejectsUnsorted(t *testing.T) {
	if NewOrderMask([]uint32{3, 1}) != nil {
		t.Fatal("descending order accepted")
	}
	if NewOrderMask([]uint32{1, 1}) != nil {
		t.Fatal("duplicate order accepted")
	}
	if NewOrderMask(nil) == nil {
		t.Fatal("empty order rejected")
	}
	if got, _ := NewOrderMask(nil).IntersectAppend(New(10), nil, nil); len(got) != 0 {
		t.Fatalf("empty mask produced %d entries", len(got))
	}
}
