package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCountAndAny(t *testing.T) {
	b := New(200)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	idx := []uint32{3, 64, 65, 199}
	for _, i := range idx {
		b.Set(i)
	}
	if got := b.Count(); got != uint32(len(idx)) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	if !b.Any() {
		t.Fatal("Any = false with bits set")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSetAllTrimsTail(t *testing.T) {
	for _, n := range []uint32{1, 63, 64, 65, 100, 128} {
		b := New(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Count after SetAll = %d", n, got)
		}
	}
}

func TestForEachOrderAndIndices(t *testing.T) {
	b := New(300)
	want := []uint32{0, 7, 64, 128, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	got := b.AppendIndices(nil)
	if len(got) != len(want) {
		t.Fatalf("indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("indices[%d] = %d, want %d (ascending order)", i, got[i], want[i])
		}
	}
}

func TestNextSet(t *testing.T) {
	b := New(200)
	b.Set(5)
	b.Set(64)
	b.Set(199)
	cases := []struct{ from, want uint32 }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, 200},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := b.NextSet(1000); got != 200 {
		t.Errorf("NextSet past end = %d, want Len", got)
	}
}

func TestUnionAndClone(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	b.Set(2)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test(1) || !a.Test(2) {
		t.Fatal("union missing bits")
	}
	c := a.Clone()
	c.Set(50)
	if a.Test(50) {
		t.Fatal("Clone shares storage")
	}
	if err := a.Union(New(99)); err == nil {
		t.Fatal("Union with mismatched length did not error")
	}
	if err := a.CopyFrom(New(99)); err == nil {
		t.Fatal("CopyFrom with mismatched length did not error")
	}
}

func TestFromWords(t *testing.T) {
	if _, err := FromWords([]uint64{1}, 128); err == nil {
		t.Fatal("FromWords accepted too-short slice")
	}
	b, err := FromWords([]uint64{0b101}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Test(0) || b.Test(1) || !b.Test(2) {
		t.Fatal("FromWords bits wrong")
	}
}

func TestCountRange(t *testing.T) {
	b := New(128)
	for _, i := range []uint32{0, 10, 63, 64, 127} {
		b.Set(i)
	}
	if got := b.CountRange(0, 128); got != 5 {
		t.Fatalf("CountRange full = %d", got)
	}
	if got := b.CountRange(1, 64); got != 2 {
		t.Fatalf("CountRange(1,64) = %d, want 2", got)
	}
	if got := b.CountRange(64, 64); got != 0 {
		t.Fatalf("CountRange empty = %d", got)
	}
	if got := b.CountRange(100, 500); got != 1 {
		t.Fatalf("CountRange clamped = %d, want 1", got)
	}
}

func TestString(t *testing.T) {
	b := New(16)
	b.Set(1)
	b.Set(5)
	if got := b.String(); got != "{1,5}/16" {
		t.Fatalf("String = %q", got)
	}
}

// TestQuickCountMatchesNaive: for arbitrary index sets, Count equals the
// size of the deduplicated set and Test matches membership.
func TestQuickCountMatchesNaive(t *testing.T) {
	f := func(indices []uint32) bool {
		const n = 512
		b := New(n)
		member := map[uint32]bool{}
		for _, i := range indices {
			i %= n
			b.Set(i)
			member[i] = true
		}
		if b.Count() != uint32(len(member)) {
			return false
		}
		for i := uint32(0); i < n; i++ {
			if b.Test(i) != member[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForEachIsSortedMembership: ForEach visits exactly the member
// set in strictly ascending order.
func TestQuickForEachIsSortedMembership(t *testing.T) {
	f := func(indices []uint32) bool {
		const n = 1024
		b := New(n)
		for _, i := range indices {
			b.Set(i % n)
		}
		prev := -1
		ok := true
		b.ForEach(func(i uint32) {
			if int(i) <= prev || !b.Test(i) {
				ok = false
			}
			prev = int(i)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSet(t *testing.T) {
	const n = 1 << 14
	b := New(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4096; i++ {
				b.Set(uint32(r.Intn(n)))
			}
		}(w)
	}
	wg.Wait()
	// Every set bit must be testable; count must equal ForEach visits.
	var visits uint32
	b.ForEach(func(i uint32) { visits++ })
	if visits != b.Count() {
		t.Fatalf("ForEach visits %d != Count %d", visits, b.Count())
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(uint32(i) & (1<<20 - 1))
	}
}

func BenchmarkForEachSparse(b *testing.B) {
	s := New(1 << 20)
	for i := uint32(0); i < 1<<20; i += 997 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ForEach(func(uint32) {})
	}
}
