package bitset

import (
	"math/bits"
	"sync/atomic"
)

// OrderMask is a word-level view of a memoized exchange order: the members
// of a strictly ascending lid list, stored as sparse (word index, member
// mask) pairs with a per-word running rank. It turns the sync hot path's
// per-lid "is this proxy in the updated set?" probes into one AND per
// 64-bit word.
//
// The rank bookkeeping relies on the order being strictly ascending, so a
// member's position in the order list equals its rank among all members —
// rank[k] (members in earlier words) plus a popcount of the lower member
// bits in its own word. NewOrderMask refuses (returns nil) any other input;
// callers fall back to the per-lid scan.
type OrderMask struct {
	wordIdx []uint32 // words of the bit space holding at least one member
	words   []uint64 // member bits within that word
	rank    []uint32 // members in earlier words
	n       uint32   // total members, == len(order)
}

// NewOrderMask builds the mask for a strictly ascending order list.
// It returns nil if the list is not strictly ascending.
func NewOrderMask(order []uint32) *OrderMask {
	m := &OrderMask{n: uint32(len(order))}
	lastWI := ^uint32(0)
	var count uint32
	for i, lid := range order {
		if i > 0 && lid <= order[i-1] {
			return nil
		}
		wi := lid / wordBits
		if wi != lastWI {
			m.wordIdx = append(m.wordIdx, wi)
			m.words = append(m.words, 0)
			m.rank = append(m.rank, count)
			lastWI = wi
		}
		m.words[len(m.words)-1] |= uint64(1) << (lid % wordBits)
		count++
	}
	return m
}

// Len returns the number of members (the length of the original order list).
func (m *OrderMask) Len() uint32 { return m.n }

// IntersectAppend appends, for every member of the order present in
// updated, its position in the order list to positions and its lid to
// members, both in ascending order, and returns the extended slices. It is
// the word-at-a-time equivalent of
//
//	for pos, lid := range order {
//	    if updated.Test(lid) { positions = append(positions, pos); ... }
//	}
//
// updated must span every member lid. Words are read with atomic loads, so
// concurrent Set/Clear on bits outside the order's members (e.g. a receive
// loop marking masters while mirrors encode) cannot race; concurrent
// mutation of member bits yields the same torn-read semantics as the
// per-lid scan.
func (m *OrderMask) IntersectAppend(updated *Bitset, positions, members []uint32) ([]uint32, []uint32) {
	uw := updated.Words()
	for k, wi := range m.wordIdx {
		mask := m.words[k]
		w := atomic.LoadUint64(&uw[wi]) & mask
		if w == 0 {
			continue
		}
		base := wi * wordBits
		r := m.rank[k]
		for w != 0 {
			tz := uint(bits.TrailingZeros64(w))
			positions = append(positions, r+uint32(bits.OnesCount64(mask&(uint64(1)<<tz-1))))
			members = append(members, base+uint32(tz))
			w &= w - 1
		}
	}
	return positions, members
}
