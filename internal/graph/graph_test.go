package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func smallGraph(t *testing.T) *CSR {
	t.Helper()
	// 0→1, 0→2, 1→2, 2→0, 3 isolated
	g := Build(4, []LocalEdge{
		{Src: 0, Dst: 1, Weight: 10},
		{Src: 0, Dst: 2, Weight: 20},
		{Src: 1, Dst: 2, Weight: 30},
		{Src: 2, Dst: 0, Weight: 40},
	}, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := smallGraph(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.OutDegree(0), g.OutDegree(3))
	}
	if !reflect.DeepEqual(g.Neighbors(0), []uint32{1, 2}) {
		t.Fatalf("neighbors(0) = %v", g.Neighbors(0))
	}
	if !reflect.DeepEqual(g.EdgeWeights(0), []uint32{10, 20}) {
		t.Fatalf("weights(0) = %v", g.EdgeWeights(0))
	}
	if g.Weight(1, 0) != 30 {
		t.Fatalf("Weight(1,0) = %d", g.Weight(1, 0))
	}
}

func TestUnweightedWeightIsOne(t *testing.T) {
	g := Build(2, []LocalEdge{{Src: 0, Dst: 1}}, false)
	if g.EdgeWeights(0) != nil {
		t.Fatal("unweighted graph has weights")
	}
	if g.Weight(0, 0) != 1 {
		t.Fatalf("Weight = %d, want 1", g.Weight(0, 0))
	}
}

func TestTranspose(t *testing.T) {
	g := smallGraph(t)
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edge count %d", tr.NumEdges())
	}
	// In-edges of 2 are from 0 (w 20) and 1 (w 30).
	tr.SortNeighbors()
	if !reflect.DeepEqual(tr.Neighbors(2), []uint32{0, 1}) {
		t.Fatalf("transpose neighbors(2) = %v", tr.Neighbors(2))
	}
	if !reflect.DeepEqual(tr.EdgeWeights(2), []uint32{20, 30}) {
		t.Fatalf("transpose weights(2) = %v", tr.EdgeWeights(2))
	}
}

func TestInDegrees(t *testing.T) {
	g := smallGraph(t)
	if !reflect.DeepEqual(g.InDegrees(), []uint32{1, 1, 2, 0}) {
		t.Fatalf("in-degrees = %v", g.InDegrees())
	}
}

func TestStats(t *testing.T) {
	g := smallGraph(t)
	s := g.Stats()
	if s.NumNodes != 4 || s.NumEdges != 4 || s.MaxOutDeg != 2 || s.MaxInDeg != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 1.0 {
		t.Fatalf("avg degree = %f", s.AvgDegree)
	}
	if g.MaxOutDegreeNode() != 0 {
		t.Fatalf("max out-degree node = %d", g.MaxOutDegreeNode())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := smallGraph(t)
	g.Dst[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range destination")
	}
	g = smallGraph(t)
	g.Offsets[1] = 100
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted non-monotone offsets")
	}
	g = smallGraph(t)
	g.Weights = g.Weights[:2]
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted short weights")
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{Src: 5, Dst: 0}}, false); err == nil {
		t.Fatal("FromEdges accepted out-of-range edge")
	}
	if _, err := FromEdges(1<<33, nil, false); err == nil {
		t.Fatal("FromEdges accepted >32-bit node count")
	}
}

func TestEmptyGraph(t *testing.T) {
	var g CSR
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("zero CSR not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.NumNodes != 0 || s.AvgDegree != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

// TestQuickTransposeInvolution: transposing twice and sorting restores the
// original sorted adjacency structure, for arbitrary small graphs.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		edges := make([]LocalEdge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, LocalEdge{
				Src:    uint32(raw[i]) % n,
				Dst:    uint32(raw[i+1]) % n,
				Weight: uint32(i),
			})
		}
		g := Build(n, edges, true)
		tt := g.Transpose().Transpose()
		g.SortNeighbors()
		tt.SortNeighbors()
		if !reflect.DeepEqual(g.Offsets, tt.Offsets) || !reflect.DeepEqual(g.Dst, tt.Dst) {
			return false
		}
		// Weight multisets per node must match (order may differ for
		// parallel edges with equal destinations).
		for u := uint32(0); u < n; u++ {
			if weightSum(g, u) != weightSum(tt, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func weightSum(g *CSR, u uint32) uint64 {
	var s uint64
	for _, w := range g.EdgeWeights(u) {
		s += uint64(w)
	}
	return s
}

// TestQuickDegreeConservation: sum of out-degrees equals sum of in-degrees
// equals the edge count.
func TestQuickDegreeConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		edges := make([]LocalEdge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, LocalEdge{Src: uint32(raw[i]) % n, Dst: uint32(raw[i+1]) % n})
		}
		g := Build(n, edges, false)
		var outSum, inSum uint64
		for u := uint32(0); u < n; u++ {
			outSum += uint64(g.OutDegree(u))
		}
		for _, d := range g.InDegrees() {
			inSum += uint64(d)
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	const n = 1 << 14
	edges := make([]LocalEdge, 8*n)
	for i := range edges {
		edges[i] = LocalEdge{Src: uint32(i*2654435761) % n, Dst: uint32(i*40503) % n}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(n, edges, false)
	}
}

func BenchmarkTranspose(b *testing.B) {
	const n = 1 << 14
	edges := make([]LocalEdge, 8*n)
	for i := range edges {
		edges[i] = LocalEdge{Src: uint32(i*2654435761) % n, Dst: uint32(i*40503) % n}
	}
	g := Build(n, edges, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Transpose()
	}
}
