// Package graph provides the in-memory graph representation used throughout
// the repository: a Compressed-Sparse-Row (CSR) adjacency structure over
// 32-bit local node IDs with optional 32-bit edge weights, plus the builder
// and transpose utilities the partitioner and engines need.
//
// Global node IDs (the IDs in the original, unpartitioned graph) are uint64;
// local IDs within a host's partition are uint32, matching the paper's setup
// where each host stores its proxies contiguously regardless of global ID.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a single directed edge in global-ID space, the unit the
// partitioner distributes between hosts.
type Edge struct {
	Src, Dst uint64
	Weight   uint32
}

// CSR is a directed graph in compressed-sparse-row form over local IDs.
// Node u's outgoing edges are Dst[Offsets[u]:Offsets[u+1]], with parallel
// weights in Weights when HasWeights.
//
// The zero value is an empty graph.
type CSR struct {
	Offsets    []uint64 // length NumNodes+1
	Dst        []uint32 // length NumEdges
	Weights    []uint32 // length NumEdges when HasWeights, else nil
	HasWeights bool
}

// NumNodes returns the number of nodes.
func (g *CSR) NumNodes() uint32 {
	if len(g.Offsets) == 0 {
		return 0
	}
	return uint32(len(g.Offsets) - 1)
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() uint64 { return uint64(len(g.Dst)) }

// OutDegree returns the out-degree of node u.
func (g *CSR) OutDegree(u uint32) uint32 {
	return uint32(g.Offsets[u+1] - g.Offsets[u])
}

// Neighbors returns the destination slice for node u's outgoing edges.
// The slice aliases the graph's storage; callers must not modify it.
func (g *CSR) Neighbors(u uint32) []uint32 {
	return g.Dst[g.Offsets[u]:g.Offsets[u+1]]
}

// EdgeWeights returns the weight slice parallel to Neighbors(u).
// It returns nil for unweighted graphs.
func (g *CSR) EdgeWeights(u uint32) []uint32 {
	if !g.HasWeights {
		return nil
	}
	return g.Weights[g.Offsets[u]:g.Offsets[u+1]]
}

// Weight returns the weight of the i'th edge of node u (1 if unweighted).
func (g *CSR) Weight(u uint32, i int) uint32 {
	if !g.HasWeights {
		return 1
	}
	return g.Weights[g.Offsets[u]+uint64(i)]
}

// LocalEdge is an edge in local-ID space, used when constructing partitions.
type LocalEdge struct {
	Src, Dst uint32
	Weight   uint32
}

// Build constructs a CSR with numNodes nodes from the given local edges.
// Edges may arrive in any order; within a node, destination order follows
// input order after a stable counting-sort by source. Set weighted when
// edge weights are meaningful.
func Build(numNodes uint32, edges []LocalEdge, weighted bool) *CSR {
	g := &CSR{
		Offsets:    make([]uint64, numNodes+1),
		Dst:        make([]uint32, len(edges)),
		HasWeights: weighted,
	}
	if weighted {
		g.Weights = make([]uint32, len(edges))
	}
	for _, e := range edges {
		g.Offsets[e.Src+1]++
	}
	for i := uint32(0); i < numNodes; i++ {
		g.Offsets[i+1] += g.Offsets[i]
	}
	cursor := make([]uint64, numNodes)
	copy(cursor, g.Offsets[:numNodes])
	for _, e := range edges {
		p := cursor[e.Src]
		cursor[e.Src]++
		g.Dst[p] = e.Dst
		if weighted {
			g.Weights[p] = e.Weight
		}
	}
	return g
}

// Transpose returns the graph with every edge reversed (CSC of g). Weights
// carry over. The result is independent of g's storage.
func (g *CSR) Transpose() *CSR {
	n := g.NumNodes()
	t := &CSR{
		Offsets:    make([]uint64, n+1),
		Dst:        make([]uint32, g.NumEdges()),
		HasWeights: g.HasWeights,
	}
	if g.HasWeights {
		t.Weights = make([]uint32, g.NumEdges())
	}
	for _, d := range g.Dst {
		t.Offsets[d+1]++
	}
	for i := uint32(0); i < n; i++ {
		t.Offsets[i+1] += t.Offsets[i]
	}
	cursor := make([]uint64, n)
	copy(cursor, t.Offsets[:n])
	for u := uint32(0); u < n; u++ {
		for i, v := range g.Neighbors(u) {
			p := cursor[v]
			cursor[v]++
			t.Dst[p] = u
			if g.HasWeights {
				t.Weights[p] = g.Weights[g.Offsets[u]+uint64(i)]
			}
		}
	}
	return t
}

// InDegrees returns the in-degree of every node.
func (g *CSR) InDegrees() []uint32 {
	in := make([]uint32, g.NumNodes())
	for _, d := range g.Dst {
		in[d]++
	}
	return in
}

// Validate checks structural invariants: monotone offsets, destinations in
// range, weight array length. It returns a descriptive error on the first
// violation found.
func (g *CSR) Validate() error {
	n := g.NumNodes()
	if len(g.Offsets) == 0 {
		if len(g.Dst) != 0 {
			return fmt.Errorf("graph: %d edges but no offset array", len(g.Dst))
		}
		return nil
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	for i := uint32(0); i < n; i++ {
		if g.Offsets[i+1] < g.Offsets[i] {
			return fmt.Errorf("graph: offsets not monotone at node %d", i)
		}
	}
	if g.Offsets[n] != uint64(len(g.Dst)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.Offsets[n], len(g.Dst))
	}
	for i, d := range g.Dst {
		if d >= n {
			return fmt.Errorf("graph: edge %d destination %d out of range (n=%d)", i, d, n)
		}
	}
	if g.HasWeights && len(g.Weights) != len(g.Dst) {
		return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Dst))
	}
	return nil
}

// SortNeighbors sorts each node's adjacency list by destination (weights
// follow). Useful for canonical comparisons in tests.
func (g *CSR) SortNeighbors() {
	for u := uint32(0); u < g.NumNodes(); u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		if g.HasWeights {
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = int(lo) + i
			}
			sort.Slice(idx, func(a, b int) bool { return g.Dst[idx[a]] < g.Dst[idx[b]] })
			ds := make([]uint32, hi-lo)
			ws := make([]uint32, hi-lo)
			for i, j := range idx {
				ds[i], ws[i] = g.Dst[j], g.Weights[j]
			}
			copy(g.Dst[lo:hi], ds)
			copy(g.Weights[lo:hi], ws)
		} else {
			s := g.Dst[lo:hi]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		}
	}
}

// Properties summarizes a graph the way the paper's Table 1 does.
type Properties struct {
	NumNodes   uint64
	NumEdges   uint64
	AvgDegree  float64
	MaxOutDeg  uint64
	MaxInDeg   uint64
	MaxOutNode uint64 // node achieving MaxOutDeg
	MaxInNode  uint64 // node achieving MaxInDeg
}

// Stats computes the Table 1 style property summary of g.
func (g *CSR) Stats() Properties {
	p := Properties{NumNodes: uint64(g.NumNodes()), NumEdges: g.NumEdges()}
	if p.NumNodes > 0 {
		p.AvgDegree = float64(p.NumEdges) / float64(p.NumNodes)
	}
	for u := uint32(0); u < g.NumNodes(); u++ {
		if d := uint64(g.OutDegree(u)); d > p.MaxOutDeg {
			p.MaxOutDeg, p.MaxOutNode = d, uint64(u)
		}
	}
	for u, d := range g.InDegrees() {
		if uint64(d) > p.MaxInDeg {
			p.MaxInDeg, p.MaxInNode = uint64(d), uint64(u)
		}
	}
	return p
}

// MaxOutDegreeNode returns the node with the largest out-degree, the source
// node the paper uses for bfs and sssp.
func (g *CSR) MaxOutDegreeNode() uint32 {
	var best uint32
	var bestDeg uint32
	for u := uint32(0); u < g.NumNodes(); u++ {
		if d := g.OutDegree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// FromEdges builds a CSR directly from global-ID edges, assuming global IDs
// are already dense in [0, numNodes). Used for single-host (shared-memory)
// runs where no partitioning happens.
func FromEdges(numNodes uint64, edges []Edge, weighted bool) (*CSR, error) {
	if numNodes > 1<<32-1 {
		return nil, fmt.Errorf("graph: %d nodes exceeds 32-bit local ID space", numNodes)
	}
	local := make([]LocalEdge, len(edges))
	for i, e := range edges {
		if e.Src >= numNodes || e.Dst >= numNodes {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, numNodes)
		}
		local[i] = LocalEdge{Src: uint32(e.Src), Dst: uint32(e.Dst), Weight: e.Weight}
	}
	return Build(uint32(numNodes), local, weighted), nil
}
