package gio_test

import (
	"bytes"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gio"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

func buildParts(t *testing.T, hosts int) (uint64, []graph.Edge, *graph.CSR, []*partition.Partition) {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 14}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, cfg.NumNodes())
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	pol, err := partition.NewPolicy(partition.CVC, cfg.NumNodes(), hosts,
		partition.Options{OutDegrees: out, InDegrees: g.InDegrees()})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(cfg.NumNodes(), edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), edges, g, parts
}

// TestPartitionRoundTrip: serialized partitions reload with identical
// structure.
func TestPartitionRoundTrip(t *testing.T) {
	_, _, _, parts := buildParts(t, 4)
	for _, p := range parts {
		var buf bytes.Buffer
		if err := gio.WritePartition(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := gio.ReadPartition(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.HostID != p.HostID || got.NumHosts != p.NumHosts ||
			got.NumMasters != p.NumMasters || got.GlobalNodes != p.GlobalNodes {
			t.Fatalf("header mismatch: %+v vs %+v", got, p)
		}
		if got.Policy.Name() != p.Policy.Name() {
			t.Fatalf("policy %s vs %s", got.Policy.Name(), p.Policy.Name())
		}
		if got.Graph.NumEdges() != p.Graph.NumEdges() {
			t.Fatalf("edges %d vs %d", got.Graph.NumEdges(), p.Graph.NumEdges())
		}
		for lid := uint32(0); lid < p.NumProxies(); lid++ {
			if got.GID(lid) != p.GID(lid) {
				t.Fatalf("gid[%d] differs", lid)
			}
			if got.HasIn.Test(lid) != p.HasIn.Test(lid) || got.HasOut.Test(lid) != p.HasOut.Test(lid) {
				t.Fatalf("structural flags differ at %d", lid)
			}
		}
		// Owner queries must survive through the frozen policy.
		for lid := uint32(0); lid < p.NumProxies(); lid++ {
			if got.Policy.Owner(got.GID(lid)) != p.Policy.Owner(p.GID(lid)) {
				t.Fatalf("owner of %d differs", p.GID(lid))
			}
		}
	}
}

// TestLoadedPartitionsRun: a full distributed bfs over reloaded partitions
// produces correct results — the offline-partitioning workflow end to end.
func TestLoadedPartitionsRun(t *testing.T) {
	numNodes, _, g, parts := buildParts(t, 4)
	_ = numNodes
	reloaded := make([]*partition.Partition, len(parts))
	for i, p := range parts {
		var buf bytes.Buffer
		if err := gio.WritePartition(&buf, p); err != nil {
			t.Fatal(err)
		}
		rp, err := gio.ReadPartition(&buf)
		if err != nil {
			t.Fatal(err)
		}
		reloaded[i] = rp
	}
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)
	res, err := dsys.RunPartitioned(reloaded, dsys.RunConfig{
		Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, bfs.NewGalois(uint64(source), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
		}
	}
}

func TestReadPartitionRejectsGarbage(t *testing.T) {
	if _, err := gio.ReadPartition(bytes.NewReader([]byte("junkjunkjunkjunkjunkjunk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	_, _, _, parts := buildParts(t, 2)
	var buf bytes.Buffer
	if err := gio.WritePartition(&buf, parts[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := gio.ReadPartition(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated partition accepted")
	}
}
