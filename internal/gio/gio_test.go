package gio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gluon/internal/generate"
	"gluon/internal/graph"
)

func TestEdgeListRoundTrip(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 5}, {Src: 7, Dst: 3, Weight: 9}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, edges, true); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("implied node count = %d, want 8", n)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Fatalf("roundtrip = %v", got)
	}
}

func TestEdgeListUnweighted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, []graph.Edge{{Src: 1, Dst: 2}}, false); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Weight != 0 {
		t.Fatalf("weight = %d", got[0].Weight)
	}
}

func TestEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n% matrix-market style\n1 2\n 3 4 7 \n"
	got, n, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || n != 5 {
		t.Fatalf("got %v, n=%d", got, n)
	}
	if got[1].Weight != 7 {
		t.Fatalf("weight = %d", got[1].Weight)
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{"1\n", "a b\n", "1 b\n", "1 2 x\n"}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEmptyEdgeList(t *testing.T) {
	got, n, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || n != 0 {
		t.Fatalf("got %v, n=%d", got, n)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 4, Weighted: true}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch")
	}
	for i := range g.Offsets {
		if g.Offsets[i] != got.Offsets[i] {
			t.Fatalf("offset %d differs", i)
		}
	}
	for i := range g.Dst {
		if g.Dst[i] != got.Dst[i] || g.Weights[i] != got.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid magic, wrong version.
	var buf bytes.Buffer
	g := graph.Build(2, []graph.LocalEdge{{Src: 0, Dst: 1}}, false)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	g := graph.Build(4, []graph.LocalEdge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, false)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{8, 20, len(data) - 2} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestQuickTextRoundTrip: arbitrary edge lists survive the text format.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		edges := make([]graph.Edge, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, graph.Edge{
				Src: uint64(raw[i]), Dst: uint64(raw[i+1]), Weight: uint32(raw[i+2]),
			})
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, edges, true); err != nil {
			return false
		}
		got, _, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	cfg := generate.Config{Kind: "rmat", Scale: 12, EdgeFactor: 8, Seed: 4}
	edges, _ := generate.Edges(cfg)
	g, _ := graph.FromEdges(cfg.NumNodes(), edges, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}
