// Package gio reads and writes graphs in two on-disk formats:
//
//   - a text edge list: one "src dst [weight]" per line, '#' comments, the
//     lingua franca of SNAP-style datasets; and
//   - a binary format modeled on Galois' .gr files: a fixed little-endian
//     header (magic, version, flags, node and edge counts) followed by the
//     CSR offset, destination, and optional weight arrays.
//
// The binary format is what the distributed loaders use; the paper's Table 2
// measures loading+partitioning+construction time, which cmd/gluon-bench
// reproduces over these readers.
package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gluon/internal/graph"
)

// Magic identifies the binary graph format ("GLGR" little-endian).
const Magic uint32 = 0x52474c47

// Version of the binary format.
const Version uint32 = 1

const flagWeighted uint32 = 1

// WriteEdgeList writes edges as "src dst [weight]" lines.
func WriteEdgeList(w io.Writer, edges []graph.Edge, weighted bool) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		var err error
		if weighted {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", e.Src, e.Dst, e.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list. Lines starting with '#' or '%' are
// comments; fields are whitespace-separated. The third field, when present,
// is the edge weight. It returns the edges and the implied node count
// (max ID + 1).
func ReadEdgeList(r io.Reader) ([]graph.Edge, uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	var maxID uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("gio: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("gio: line %d: bad src: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("gio: line %d: bad dst: %v", lineNo, err)
		}
		e := graph.Edge{Src: src, Dst: dst}
		if len(fields) >= 3 {
			w, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, 0, fmt.Errorf("gio: line %d: bad weight: %v", lineNo, err)
			}
			e.Weight = uint32(w)
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	n := uint64(0)
	if len(edges) > 0 {
		n = maxID + 1
	}
	return edges, n, nil
}

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	flags := uint32(0)
	if g.HasWeights {
		flags |= flagWeighted
	}
	hdr := []uint32{Magic, Version, flags}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumNodes())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.NumEdges()); err != nil {
		return err
	}
	if err := writeUint64s(bw, g.Offsets); err != nil {
		return err
	}
	if err := writeUint32s(bw, g.Dst); err != nil {
		return err
	}
	if g.HasWeights {
		if err := writeUint32s(bw, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*graph.CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version, flags uint32
	for _, p := range []*uint32{&magic, &version, &flags} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("gio: reading header: %w", err)
		}
	}
	if magic != Magic {
		return nil, fmt.Errorf("gio: bad magic %#x", magic)
	}
	if version != Version {
		return nil, fmt.Errorf("gio: unsupported version %d", version)
	}
	var numNodes, numEdges uint64
	if err := binary.Read(br, binary.LittleEndian, &numNodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &numEdges); err != nil {
		return nil, err
	}
	if numNodes > 1<<32-1 {
		return nil, fmt.Errorf("gio: %d nodes exceeds local ID space", numNodes)
	}
	g := &graph.CSR{
		Offsets:    make([]uint64, numNodes+1),
		Dst:        make([]uint32, numEdges),
		HasWeights: flags&flagWeighted != 0,
	}
	if err := readUint64s(br, g.Offsets); err != nil {
		return nil, err
	}
	if err := readUint32s(br, g.Dst); err != nil {
		return nil, err
	}
	if g.HasWeights {
		g.Weights = make([]uint32, numEdges)
		if err := readUint32s(br, g.Weights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gio: corrupt graph: %w", err)
	}
	return g, nil
}

func writeUint64s(w io.Writer, vals []uint64) error {
	buf := make([]byte, 8*4096)
	for len(vals) > 0 {
		n := len(vals)
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], vals[i])
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeUint32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*8192)
	for len(vals) > 0 {
		n := len(vals)
		if n > 8192 {
			n = 8192
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], vals[i])
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func readUint64s(r io.Reader, dst []uint64) error {
	buf := make([]byte, 8*4096)
	for len(dst) > 0 {
		n := len(dst)
		if n > 4096 {
			n = 4096
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		dst = dst[n:]
	}
	return nil
}

func readUint32s(r io.Reader, dst []uint32) error {
	buf := make([]byte, 4*8192)
	for len(dst) > 0 {
		n := len(dst)
		if n > 8192 {
			n = 8192
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint32(buf[i*4:])
		}
		dst = dst[n:]
	}
	return nil
}
