package gio

// Partition serialization: real deployments partition once, offline, and
// each host loads only its own partition at startup (the workflow behind
// the paper's Table 2 timings). The format is little-endian:
//
//	magic "GLPT", version, hostID, numHosts, numMasters  (uint32 each)
//	globalNodes (uint64)
//	policy name (uint32 length + bytes)
//	owner chunk bounds (uint32 count + uint64s)
//	local→global ID vector (uint64s, count = local node count, from graph)
//	local graph in the WriteBinary CSR format

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gluon/internal/partition"
)

// PartitionMagic identifies the partition format ("GLPT" little-endian).
const PartitionMagic uint32 = 0x54504c47

// WritePartition serializes one host's partition.
func WritePartition(w io.Writer, p *partition.Partition) error {
	bounds, ok := partition.Bounds(p.Policy)
	if !ok {
		return fmt.Errorf("gio: policy %s has no serializable owner bounds", p.Policy.Name())
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, v := range []uint32{PartitionMagic, Version, uint32(p.HostID), uint32(p.NumHosts), p.NumMasters} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, p.GlobalNodes); err != nil {
		return err
	}
	name := p.Policy.Name()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(bounds))); err != nil {
		return err
	}
	if err := writeUint64s(bw, bounds); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.GIDs))); err != nil {
		return err
	}
	if err := writeUint64s(bw, p.GIDs); err != nil {
		return err
	}
	if err := WriteBinary(bw, p.Graph); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPartition loads a partition written by WritePartition. The returned
// partition carries a frozen policy: it can run programs but not assign
// new edges.
func ReadPartition(r io.Reader) (*partition.Partition, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version, hostID, numHosts, numMasters uint32
	for _, p := range []*uint32{&magic, &version, &hostID, &numHosts, &numMasters} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("gio: partition header: %w", err)
		}
	}
	if magic != PartitionMagic {
		return nil, fmt.Errorf("gio: bad partition magic %#x", magic)
	}
	if version != Version {
		return nil, fmt.Errorf("gio: unsupported partition version %d", version)
	}
	var globalNodes uint64
	if err := binary.Read(br, binary.LittleEndian, &globalNodes); err != nil {
		return nil, err
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 64 {
		return nil, fmt.Errorf("gio: implausible policy name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	var boundsLen uint32
	if err := binary.Read(br, binary.LittleEndian, &boundsLen); err != nil {
		return nil, err
	}
	if boundsLen != numHosts+1 {
		return nil, fmt.Errorf("gio: %d bounds for %d hosts", boundsLen, numHosts)
	}
	bounds := make([]uint64, boundsLen)
	if err := readUint64s(br, bounds); err != nil {
		return nil, err
	}
	pol, err := partition.Frozen(string(nameBuf), bounds)
	if err != nil {
		return nil, err
	}

	var gidCount uint32
	if err := binary.Read(br, binary.LittleEndian, &gidCount); err != nil {
		return nil, err
	}
	gids := make([]uint64, gidCount)
	if err := readUint64s(br, gids); err != nil {
		return nil, err
	}
	g, err := ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("gio: partition graph: %w", err)
	}
	return partition.Reassemble(int(hostID), pol, g, gids, numMasters, globalNodes)
}
