package galois

import (
	"sync/atomic"
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/ref"
)

func rmatCSR(t testing.TB, scale uint, weighted bool) *graph.CSR {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 44, Weighted: weighted}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAsyncBFSMatchesSequential: a single DoAll drives BFS to completion
// (chaotic relaxation converges to the fixed point).
func TestAsyncBFSMatchesSequential(t *testing.T) {
	g := rmatCSR(t, 10, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)

	e := New(g, 4)
	dist := make([]uint32, g.NumNodes())
	for i := range dist {
		dist[i] = fields.InfinityU32
	}
	dist[source] = 0
	e.DoAll([]uint32{source}, func(e *Engine, u uint32, push func(uint32)) {
		du := fields.AtomicLoadU32(&dist[u])
		for _, d := range e.Graph.Neighbors(u) {
			if fields.AtomicMinU32(&dist[d], du+1) {
				push(d)
			}
		}
	})
	for u := range want {
		if dist[u] != want[u] {
			t.Fatalf("node %d: %d, want %d", u, dist[u], want[u])
		}
	}
}

// TestAsyncSSSPMatchesDijkstra: chaotic relaxation with weights.
func TestAsyncSSSPMatchesDijkstra(t *testing.T) {
	g := rmatCSR(t, 10, true)
	source := g.MaxOutDegreeNode()
	want := ref.SSSP(g, source)

	e := New(g, 4)
	dist := make([]uint32, g.NumNodes())
	for i := range dist {
		dist[i] = fields.InfinityU32
	}
	dist[source] = 0
	e.DoAll([]uint32{source}, func(e *Engine, u uint32, push func(uint32)) {
		du := fields.AtomicLoadU32(&dist[u])
		if du == fields.InfinityU32 {
			return
		}
		ws := e.Graph.EdgeWeights(u)
		for i, d := range e.Graph.Neighbors(u) {
			if fields.AtomicMinU32(&dist[d], du+ws[i]) {
				push(d)
			}
		}
	})
	for u := range want {
		if dist[u] != want[u] {
			t.Fatalf("node %d: %d, want %d", u, dist[u], want[u])
		}
	}
}

func TestDoAllFrontier(t *testing.T) {
	g := rmatCSR(t, 8, false)
	e := New(g, 2)
	f := bitset.New(g.NumNodes())
	f.Set(1)
	f.Set(5)
	var visits atomic.Uint64
	e.DoAllFrontier(f, func(e *Engine, u uint32, push func(uint32)) {
		if u != 1 && u != 5 {
			t.Errorf("unexpected item %d", u)
		}
		visits.Add(1)
	})
	if visits.Load() != 2 {
		t.Fatalf("visits %d", visits.Load())
	}
}

func TestForEachNode(t *testing.T) {
	g := rmatCSR(t, 8, false)
	e := New(g, 4)
	seen := make([]uint32, g.NumNodes())
	e.ForEachNode(func(u uint32) { atomic.AddUint32(&seen[u], 1) })
	for u, c := range seen {
		if c != 1 {
			t.Fatalf("node %d visited %d times", u, c)
		}
	}
}

func TestActiveNodes(t *testing.T) {
	f := bitset.New(10)
	f.Set(2)
	f.Set(7)
	got := ActiveNodes(f)
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("ActiveNodes = %v", got)
	}
}

func BenchmarkAsyncBFS(b *testing.B) {
	g := rmatCSR(b, 13, false)
	source := g.MaxOutDegreeNode()
	e := New(g, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := make([]uint32, g.NumNodes())
		for j := range dist {
			dist[j] = fields.InfinityU32
		}
		dist[source] = 0
		e.DoAll([]uint32{source}, func(e *Engine, u uint32, push func(uint32)) {
			du := fields.AtomicLoadU32(&dist[u])
			for _, d := range e.Graph.Neighbors(u) {
				if fields.AtomicMinU32(&dist[d], du+1) {
					push(d)
				}
			}
		})
	}
}
