// Package galois implements a Galois-style shared-memory engine: parallel
// do_all over an asynchronous chunked worklist. Unlike the level-synchronous
// Ligra engine, operator applications may generate new work consumed in the
// same round (chaotic relaxation), so label updates propagate transitively
// within a host before any communication happens. The paper's §5.4
// attributes D-Galois' advantage over D-Ligra on high-diameter inputs to
// exactly this property. Interfaced with Gluon this becomes D-Galois.
package galois

import (
	"gluon/internal/bitset"
	"gluon/internal/graph"
	"gluon/internal/par"
	"gluon/internal/worklist"
)

// Engine holds the local graph and scheduling configuration.
type Engine struct {
	Graph *graph.CSR
	// Workers sizes the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// New returns an engine over the local graph.
func New(g *graph.CSR, workers int) *Engine {
	return &Engine{Graph: g, Workers: workers}
}

// Operator is a push-style vertex operator: applied to active node u, it
// may update u's out-neighbors and activate them by calling push. All label
// updates must be performed with atomics (multiple workers may target the
// same destination concurrently).
type Operator func(e *Engine, u uint32, push func(uint32))

// DoAll drains the initial active set plus all transitively generated work
// through op, asynchronously, until local quiescence. It returns the number
// of operator applications.
func (e *Engine) DoAll(initial []uint32, op Operator) uint64 {
	ex := &worklist.Executor{Workers: e.Workers}
	return ex.Run(initial, func(u uint32, push func(uint32)) {
		op(e, u, push)
	})
}

// DoAllFrontier is DoAll with a bitset initial frontier.
func (e *Engine) DoAllFrontier(frontier *bitset.Bitset, op Operator) uint64 {
	return e.DoAll(frontier.AppendIndices(nil), op)
}

// ForEachNode applies fn to every node in parallel (a topology-driven
// do_all, used for initialization and pull-style rounds).
func (e *Engine) ForEachNode(fn func(u uint32)) {
	par.For(int(e.Graph.NumNodes()), e.Workers, func(i int) { fn(uint32(i)) })
}

// ActiveNodes materializes a frontier bitset into a slice.
func ActiveNodes(frontier *bitset.Bitset) []uint32 {
	return frontier.AppendIndices(make([]uint32, 0, frontier.Count()))
}
