// Package ligra implements a Ligra-style shared-memory engine: computation
// proceeds over a frontier of active vertices through edgeMap/vertexMap,
// with Ligra's signature direction optimization — sparse frontiers push
// along out-edges, dense frontiers pull along in-edges (Shun & Blelloch,
// PPoPP'13). Interfaced with Gluon this becomes D-Ligra.
//
// The engine is oblivious to distribution: it runs on whatever local CSR it
// is given (invariant (b) of the paper — all local edges connect local
// proxies), exactly how Gluon reuses shared-memory systems out of the box.
package ligra

import (
	"gluon/internal/bitset"
	"gluon/internal/graph"
	"gluon/internal/par"
)

// Graph bundles the out-CSR with its transpose for pull traversals.
type Graph struct {
	Out *graph.CSR
	In  *graph.CSR // required for pull mode; may be nil to disable pulling
}

// NewGraph wraps a CSR, building the transpose eagerly when pull is wanted.
func NewGraph(out *graph.CSR, buildIn bool) *Graph {
	g := &Graph{Out: out}
	if buildIn {
		g.In = out.Transpose()
	}
	return g
}

// EdgeMapConfig configures one edgeMap application.
type EdgeMapConfig struct {
	// Push is invoked in sparse (push) mode for each edge (s, d, weight)
	// with s in the frontier. It must be thread-safe across destinations
	// (use CAS on the destination field) and return true when d became
	// active for the next frontier.
	Push func(s, d uint32, w uint32) bool
	// Pull is invoked in dense (pull) mode for each edge (d, s, weight)
	// with d any vertex passing Cond; only one goroutine touches a given d,
	// so no atomics are needed on d's field. It returns true when d became
	// active.
	// Nil disables direction optimization (always push).
	Pull func(d, s uint32, w uint32) bool
	// Cond filters destinations; nil means all pass. In pull mode,
	// scanning d's in-edges stops early once Cond(d) is false.
	Cond func(d uint32) bool
	// DenseThreshold is the fraction of |E| above which the frontier's
	// outgoing edge count triggers dense mode. 0 means Ligra's 1/20.
	DenseThreshold float64
	// Workers sizes the parallel loops; 0 means GOMAXPROCS.
	Workers int
}

// EdgeMap applies cfg over the frontier and returns the next frontier.
// It implements Ligra's direction optimization when cfg.Pull is available.
func EdgeMap(g *Graph, frontier *bitset.Bitset, cfg EdgeMapConfig) *bitset.Bitset {
	n := g.Out.NumNodes()
	next := bitset.New(n)
	if frontier == nil || !frontier.Any() {
		return next
	}
	useDense := false
	if cfg.Pull != nil && g.In != nil {
		threshold := cfg.DenseThreshold
		if threshold == 0 {
			threshold = 1.0 / 20.0
		}
		if float64(frontierEdges(g, frontier, cfg.Workers)) > threshold*float64(g.Out.NumEdges()) {
			useDense = true
		}
	}
	if useDense {
		edgeMapDense(g, frontier, next, cfg)
	} else {
		edgeMapSparse(g, frontier, next, cfg)
	}
	return next
}

// frontierEdges counts out-edges incident to the frontier, the quantity
// Ligra compares against |E|/20.
func frontierEdges(g *Graph, frontier *bitset.Bitset, workers int) uint64 {
	n := int(g.Out.NumNodes())
	return par.SumUint64(n, workers, func(lo, hi int) uint64 {
		var sum uint64
		for u := frontier.NextSet(uint32(lo)); u < uint32(hi); u = frontier.NextSet(u + 1) {
			sum += uint64(g.Out.OutDegree(u))
		}
		return sum
	})
}

func edgeMapSparse(g *Graph, frontier, next *bitset.Bitset, cfg EdgeMapConfig) {
	n := int(g.Out.NumNodes())
	par.Range(n, cfg.Workers, func(lo, hi int) {
		for s := frontier.NextSet(uint32(lo)); s < uint32(hi); s = frontier.NextSet(s + 1) {
			nbrs := g.Out.Neighbors(s)
			ws := g.Out.EdgeWeights(s)
			for i, d := range nbrs {
				if cfg.Cond != nil && !cfg.Cond(d) {
					continue
				}
				w := uint32(1)
				if ws != nil {
					w = ws[i]
				}
				if cfg.Push(s, d, w) {
					next.Set(d)
				}
			}
		}
	})
}

func edgeMapDense(g *Graph, frontier, next *bitset.Bitset, cfg EdgeMapConfig) {
	n := int(g.In.NumNodes())
	par.Range(n, cfg.Workers, func(lo, hi int) {
		for d := uint32(lo); d < uint32(hi); d++ {
			if cfg.Cond != nil && !cfg.Cond(d) {
				continue
			}
			nbrs := g.In.Neighbors(d)
			ws := g.In.EdgeWeights(d)
			became := false
			for i, s := range nbrs {
				if !frontier.Test(s) {
					continue
				}
				w := uint32(1)
				if ws != nil {
					w = ws[i]
				}
				if cfg.Pull(d, s, w) {
					became = true
				}
				if cfg.Cond != nil && !cfg.Cond(d) {
					break // early exit once d no longer accepts updates
				}
			}
			if became {
				next.Set(d)
			}
		}
	})
}

// VertexMap applies fn to every vertex in the frontier in parallel.
func VertexMap(frontier *bitset.Bitset, workers int, fn func(u uint32)) {
	n := int(frontier.Len())
	par.Range(n, workers, func(lo, hi int) {
		for u := frontier.NextSet(uint32(lo)); u < uint32(hi); u = frontier.NextSet(u + 1) {
			fn(u)
		}
	})
}

// VertexFilter returns the subset of the frontier passing keep.
func VertexFilter(frontier *bitset.Bitset, workers int, keep func(u uint32) bool) *bitset.Bitset {
	out := bitset.New(frontier.Len())
	n := int(frontier.Len())
	par.Range(n, workers, func(lo, hi int) {
		for u := frontier.NextSet(uint32(lo)); u < uint32(hi); u = frontier.NextSet(u + 1) {
			if keep(u) {
				out.Set(u)
			}
		}
	})
	return out
}
