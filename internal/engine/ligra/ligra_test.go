package ligra

import (
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/ref"
)

func rmatCSR(t testing.TB, scale uint) *graph.CSR {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 33}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// bfsWith runs a full BFS through EdgeMap with the given dense threshold
// (negative forces pure push by disabling Pull).
func bfsWith(g *Graph, source uint32, threshold float64, pull bool) []uint32 {
	dist := make([]uint32, g.Out.NumNodes())
	for i := range dist {
		dist[i] = fields.InfinityU32
	}
	dist[source] = 0
	frontier := bitset.New(g.Out.NumNodes())
	frontier.Set(source)
	cfg := EdgeMapConfig{
		Workers:        4,
		DenseThreshold: threshold,
		Cond:           func(d uint32) bool { return fields.AtomicLoadU32(&dist[d]) == fields.InfinityU32 },
		Push: func(s, d, w uint32) bool {
			return fields.AtomicMinU32(&dist[d], fields.AtomicLoadU32(&dist[s])+1)
		},
	}
	if pull {
		cfg.Pull = func(d, s, w uint32) bool {
			if dist[s] != fields.InfinityU32 && dist[d] > dist[s]+1 {
				dist[d] = dist[s] + 1
				return true
			}
			return false
		}
	}
	for frontier.Any() {
		frontier = EdgeMap(g, frontier, cfg)
	}
	return dist
}

// TestPushPullEquivalence: BFS results are identical whether edgeMap runs
// pure push, pure pull-when-possible, or the hybrid direction optimizer,
// and all match sequential BFS.
func TestPushPullEquivalence(t *testing.T) {
	csr := rmatCSR(t, 10)
	source := csr.MaxOutDegreeNode()
	want := ref.BFS(csr, source)

	gPushOnly := NewGraph(csr, false)
	gBoth := NewGraph(csr, true)

	push := bfsWith(gPushOnly, source, 0, false)
	hybrid := bfsWith(gBoth, source, 0, true)        // Ligra default 1/20
	denseHappy := bfsWith(gBoth, source, 1e-9, true) // dense almost always

	for u := range want {
		if push[u] != want[u] {
			t.Fatalf("push: node %d = %d, want %d", u, push[u], want[u])
		}
		if hybrid[u] != want[u] {
			t.Fatalf("hybrid: node %d = %d, want %d", u, hybrid[u], want[u])
		}
		if denseHappy[u] != want[u] {
			t.Fatalf("dense: node %d = %d, want %d", u, denseHappy[u], want[u])
		}
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := NewGraph(rmatCSR(t, 8), false)
	next := EdgeMap(g, bitset.New(g.Out.NumNodes()), EdgeMapConfig{
		Push: func(s, d, w uint32) bool { t.Fatal("push called"); return false },
	})
	if next.Any() {
		t.Fatal("empty frontier produced output")
	}
	if next := EdgeMap(g, nil, EdgeMapConfig{}); next.Any() {
		t.Fatal("nil frontier produced output")
	}
}

func TestVertexMapVisitsFrontierOnly(t *testing.T) {
	f := bitset.New(100)
	f.Set(3)
	f.Set(97)
	visited := map[uint32]bool{}
	VertexMap(f, 1, func(u uint32) { visited[u] = true })
	if len(visited) != 2 || !visited[3] || !visited[97] {
		t.Fatalf("visited %v", visited)
	}
}

func TestVertexFilter(t *testing.T) {
	f := bitset.New(50)
	for i := uint32(0); i < 50; i++ {
		f.Set(i)
	}
	kept := VertexFilter(f, 4, func(u uint32) bool { return u%5 == 0 })
	if kept.Count() != 10 {
		t.Fatalf("kept %d", kept.Count())
	}
}

// TestCondEarlyExit: in dense mode, scanning stops once Cond flips; the
// result must still be correct (first-writer wins in bfs terms).
func TestCondEarlyExit(t *testing.T) {
	// star-in graph: all nodes point at node 0.
	var edges []graph.LocalEdge
	const n = 64
	for i := uint32(1); i < n; i++ {
		edges = append(edges, graph.LocalEdge{Src: i, Dst: 0})
	}
	csr := graph.Build(n, edges, false)
	g := NewGraph(csr, true)

	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = fields.InfinityU32
	}
	frontier := bitset.New(n)
	for i := uint32(1); i < n; i++ {
		frontier.Set(i)
	}
	pulls := 0
	next := EdgeMap(g, frontier, EdgeMapConfig{
		Workers:        1,
		DenseThreshold: 1e-9, // force dense
		Cond:           func(d uint32) bool { return parent[d] == fields.InfinityU32 },
		Push:           func(s, d, w uint32) bool { panic("unused") },
		Pull: func(d, s, w uint32) bool {
			pulls++
			if parent[d] == fields.InfinityU32 {
				parent[d] = s
				return true
			}
			return false
		},
	})
	if !next.Test(0) || parent[0] == fields.InfinityU32 {
		t.Fatal("node 0 not claimed")
	}
	if pulls != 1 {
		t.Fatalf("pulled %d edges; early exit after first claim expected", pulls)
	}
}

func BenchmarkEdgeMapPush(b *testing.B) {
	csr := rmatCSR(b, 12)
	g := NewGraph(csr, false)
	frontier := bitset.New(csr.NumNodes())
	for i := uint32(0); i < csr.NumNodes(); i += 16 {
		frontier.Set(i)
	}
	val := make([]uint32, csr.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeMap(g, frontier, EdgeMapConfig{
			Workers: 4,
			Push: func(s, d, w uint32) bool {
				fields.AtomicMinU32(&val[d], s)
				return false
			},
		})
	}
}
