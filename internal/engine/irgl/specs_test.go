package irgl_test

import (
	"sync"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/bitset"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/engine/irgl"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

func TestBufferSpecsSatisfyGluonInterfaces(t *testing.T) {
	g := graph.Build(4, []graph.LocalEdge{{Src: 0, Dst: 1}}, false)
	d := irgl.New(g, 1)
	u32 := irgl.NewBuffer[uint32](d, 4)
	f64 := irgl.NewBuffer[float64](d, 4)
	var _ gluon.ReduceSpec[uint32] = irgl.MinU32Buf{B: u32}
	var _ gluon.BroadcastSpec[uint32] = irgl.SetU32Buf{B: u32}
	var _ gluon.BulkExtractor[uint32] = irgl.MinU32Buf{B: u32}
	var _ gluon.ReduceSpec[float64] = irgl.SumF64Buf{B: f64}
	var _ gluon.BroadcastSpec[float64] = irgl.SetF64Buf{B: f64}
	var _ gluon.BulkExtractor[float64] = irgl.SetF64Buf{B: f64}
}

func TestBufferSpecSemantics(t *testing.T) {
	g := graph.Build(4, []graph.LocalEdge{{Src: 0, Dst: 1}}, false)
	d := irgl.New(g, 1)
	buf := irgl.NewBuffer[uint32](d, 4)
	for i := uint32(0); i < 4; i++ {
		buf.Data()[i] = 100
	}
	min := irgl.MinU32Buf{B: buf}
	if !min.Reduce(1, 50) || buf.Data()[1] != 50 {
		t.Fatal("reduce lower")
	}
	if min.Reduce(1, 60) {
		t.Fatal("reduce higher changed")
	}
	min.Reset(1)
	if buf.Data()[1] != 50 {
		t.Fatal("min reset must keep value")
	}
	set := irgl.SetU32Buf{B: buf}
	if !set.Set(2, 5) || set.Set(2, 5) {
		t.Fatal("set semantics")
	}
	out := min.ExtractBulk([]uint32{0, 1}, make([]uint32, 2))
	if out[0] != 100 || out[1] != 50 {
		t.Fatalf("bulk extract %v", out)
	}

	fbuf := irgl.NewBuffer[float64](d, 4)
	sum := irgl.SumF64Buf{B: fbuf}
	if sum.Reduce(0, 0) {
		t.Fatal("sum of zero changed")
	}
	sum.Reduce(0, 1.5)
	sum.Reduce(0, 2.5)
	if fbuf.Data()[0] != 4.0 {
		t.Fatal("sum")
	}
	sum.Reset(0)
	if fbuf.Data()[0] != 0 {
		t.Fatal("sum reset must zero")
	}
}

// TestDeviceTransfersAccountedDuringSync: a real distributed run with the
// device engine must register host/device traffic via the bulk path.
func TestDeviceTransfersAccountedDuringSync(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 23}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)
	res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
		Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, bfs.NewIrGL(uint64(source), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d wrong", i)
		}
	}
	// Transfer counters are internal to each program's Device; correctness
	// of the run plus nonzero comm implies the bulk path executed. The
	// direct accounting check lives below with a hand-driven sync.
	if res.TotalCommBytes == 0 {
		t.Fatal("no communication")
	}
}

// TestBulkExtractUsedBySync: hand-drive one sync over device buffers and
// confirm device→host bytes were counted (the bulk gather ran).
func TestBulkExtractUsedBySync(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 2}, {Src: 2, Dst: 1}, {Src: 1, Dst: 3}, {Src: 3, Dst: 0}}
	pol, err := partition.NewPolicy(partition.OEC, 4, 2, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(4, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(2)
	defer hub.Close()

	type host struct {
		g   *gluon.Gluon
		dev *irgl.Device
		buf *irgl.Buffer[uint32]
	}
	hosts := make([]host, 2)
	var wg sync.WaitGroup
	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			gl, err := gluon.New(parts[h], hub.Endpoint(h), gluon.Opt())
			if err != nil {
				panic(err)
			}
			dev := irgl.New(parts[h].Graph, 1)
			buf := irgl.NewBuffer[uint32](dev, parts[h].NumProxies())
			for i := range buf.Data() {
				buf.Data()[i] = 1000
			}
			hosts[h] = host{g: gl, dev: dev, buf: buf}
		}(h)
	}
	wg.Wait()

	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			field := gluon.Field[uint32]{
				ID: 31, Name: "dev", Write: gluon.AtDestination, Read: gluon.AtSource,
				Reduce:    irgl.MinU32Buf{B: hosts[h].buf},
				Broadcast: irgl.SetU32Buf{B: hosts[h].buf},
			}
			upd := bitset.New(parts[h].NumProxies())
			// Mark every mirror updated so every host ships something.
			for lid := parts[h].NumMasters; lid < parts[h].NumProxies(); lid++ {
				hosts[h].buf.Data()[lid] = uint32(h + 1)
				upd.SetUnsync(lid)
			}
			if err := gluon.Sync(hosts[h].g, field, upd); err != nil {
				panic(err)
			}
		}(h)
	}
	wg.Wait()

	var fromDev uint64
	for h := range hosts {
		fromDev += hosts[h].dev.Stats().BytesFromDevice
	}
	if fromDev == 0 {
		t.Fatal("no device→host staging recorded; bulk extract not used")
	}
}
