package irgl

import (
	"sync/atomic"
	"testing"

	"gluon/internal/bitset"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/ref"
)

func rmatCSR(t testing.TB) *graph.CSR {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 55}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKernelVisitsAllNodes(t *testing.T) {
	g := rmatCSR(t)
	d := New(g, 4)
	var visits atomic.Uint64
	d.Kernel(func(u uint32) { visits.Add(1) })
	if visits.Load() != uint64(g.NumNodes()) {
		t.Fatalf("visits %d, nodes %d", visits.Load(), g.NumNodes())
	}
	if d.Stats().KernelLaunches != 1 {
		t.Fatalf("launches %d", d.Stats().KernelLaunches)
	}
}

func TestKernelMasked(t *testing.T) {
	g := rmatCSR(t)
	d := New(g, 4)
	active := bitset.New(g.NumNodes())
	active.Set(0)
	active.Set(100)
	var visits atomic.Uint64
	d.KernelMasked(active, func(u uint32) {
		if u != 0 && u != 100 {
			t.Errorf("visited inactive node %d", u)
		}
		visits.Add(1)
	})
	if visits.Load() != 2 {
		t.Fatalf("visits %d", visits.Load())
	}
}

// TestLevelSyncBFS: repeated masked kernels implement level-by-level BFS.
func TestLevelSyncBFS(t *testing.T) {
	g := rmatCSR(t)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)

	d := New(g, 4)
	buf := NewBuffer[uint32](d, g.NumNodes())
	dist := buf.Data()
	for i := range dist {
		dist[i] = fields.InfinityU32
	}
	dist[source] = 0
	frontier := bitset.New(g.NumNodes())
	frontier.Set(source)
	for frontier.Any() {
		next := bitset.New(g.NumNodes())
		d.KernelMasked(frontier, func(u uint32) {
			du := fields.AtomicLoadU32(&dist[u])
			for _, v := range g.Neighbors(u) {
				if fields.AtomicMinU32(&dist[v], du+1) {
					next.Set(v)
				}
			}
		})
		frontier = next
	}
	for u := range want {
		if dist[u] != want[u] {
			t.Fatalf("node %d: %d, want %d", u, dist[u], want[u])
		}
	}
}

func TestBufferBulkTransfersAccounted(t *testing.T) {
	g := rmatCSR(t)
	d := New(g, 2)
	buf := NewBuffer[uint32](d, 100)
	if buf.Len() != 100 {
		t.Fatalf("len %d", buf.Len())
	}
	lids := []uint32{1, 5, 9}
	buf.BulkScatter(lids, []uint32{10, 50, 90})
	st := d.Stats()
	if st.BytesToDevice != 12 {
		t.Fatalf("to-device %d, want 12", st.BytesToDevice)
	}
	out := buf.BulkGather(lids, make([]uint32, 3))
	if out[0] != 10 || out[1] != 50 || out[2] != 90 {
		t.Fatalf("gathered %v", out)
	}
	st = d.Stats()
	if st.BytesFromDevice != 12 {
		t.Fatalf("from-device %d, want 12", st.BytesFromDevice)
	}
}

func TestBufferSingleElementOps(t *testing.T) {
	d := New(rmatCSR(t), 1)
	buf := NewBuffer[float64](d, 10)
	buf.Set(3, 2.5)
	if got := buf.Get(3); got != 2.5 {
		t.Fatalf("Get = %v", got)
	}
	st := d.Stats()
	if st.BytesToDevice != 8 || st.BytesFromDevice != 8 {
		t.Fatalf("stats %+v", st)
	}
}

func BenchmarkKernel(b *testing.B) {
	cfg := generate.Config{Kind: "rmat", Scale: 13, EdgeFactor: 8, Seed: 55}
	edges, _ := generate.Edges(cfg)
	g, _ := graph.FromEdges(cfg.NumNodes(), edges, false)
	d := New(g, 4)
	val := NewBuffer[uint32](d, g.NumNodes()).Data()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Kernel(func(u uint32) {
			var acc uint32
			for _, v := range g.Neighbors(u) {
				acc += v
			}
			val[u] = acc
		})
	}
}
