// Package irgl implements an IrGL-style device engine: bulk-synchronous
// data-parallel kernels over flat field buffers, the execution model of the
// paper's GPU backend. The original D-IrGL runs CUDA kernels compiled by
// the IrGL compiler on real GPUs; here the "device" is simulated (see
// DESIGN.md §2): kernels are data-parallel loops over device-resident
// buffers, and every byte moved across the host/device boundary is counted,
// because what Gluon needs from a device engine — and what this engine
// reproduces — is the bulk extract/set code path: field values cross to the
// host as flat arrays gathered by local ID, with no per-node callbacks and
// no address-translation structures on the device (§4.1).
package irgl

import (
	"sync/atomic"

	"gluon/internal/bitset"
	"gluon/internal/graph"
	"gluon/internal/par"
)

// Device models one accelerator: its local graph in device memory and
// transfer accounting for the host/device boundary.
type Device struct {
	Graph *graph.CSR
	// Workers models the device's parallelism; 0 means GOMAXPROCS.
	Workers int

	bytesToDevice  atomic.Uint64
	bytesFromDev   atomic.Uint64
	kernelLaunches atomic.Uint64
}

// New creates a device holding the local graph.
func New(g *graph.CSR, workers int) *Device {
	return &Device{Graph: g, Workers: workers}
}

// TransferStats reports simulated PCIe traffic and kernel launches.
type TransferStats struct {
	BytesToDevice   uint64
	BytesFromDevice uint64
	KernelLaunches  uint64
}

// Stats returns a snapshot of the transfer counters.
func (d *Device) Stats() TransferStats {
	return TransferStats{
		BytesToDevice:   d.bytesToDevice.Load(),
		BytesFromDevice: d.bytesFromDev.Load(),
		KernelLaunches:  d.kernelLaunches.Load(),
	}
}

// Kernel launches a data-parallel kernel over all nodes (topology-driven,
// the IrGL default). body must use atomics for cross-node writes.
func (d *Device) Kernel(body func(u uint32)) {
	d.kernelLaunches.Add(1)
	par.For(int(d.Graph.NumNodes()), d.Workers, func(i int) { body(uint32(i)) })
}

// KernelMasked launches a kernel over the nodes set in active only
// (data-driven filtering, IrGL's worklist-free form: every thread checks
// its node's active bit).
func (d *Device) KernelMasked(active *bitset.Bitset, body func(u uint32)) {
	d.kernelLaunches.Add(1)
	n := int(d.Graph.NumNodes())
	par.Range(n, d.Workers, func(lo, hi int) {
		for u := active.NextSet(uint32(lo)); u < uint32(hi); u = active.NextSet(u + 1) {
			body(u)
		}
	})
}

// Buffer is a device-resident field buffer of a fixed-width element type.
// Algorithms allocate their node fields as Buffers; Gluon's sync specs go
// through the bulk gather/scatter methods below, which model the staging
// copies a real GPU plugin performs.
type Buffer[V any] struct {
	dev  *Device
	data []V
}

// NewBuffer allocates a device buffer of n elements.
func NewBuffer[V any](d *Device, n uint32) *Buffer[V] {
	return &Buffer[V]{dev: d, data: make([]V, n)}
}

// Data exposes the device array to kernels. Host code must use the bulk
// methods instead so transfers are accounted.
func (b *Buffer[V]) Data() []V { return b.data }

// Len returns the element count.
func (b *Buffer[V]) Len() int { return len(b.data) }

// BulkGather copies the elements at the given local IDs into dst (which
// must have len(lids) capacity), modeling a device→host staging copy of a
// memoized sync order. Returns dst.
func (b *Buffer[V]) BulkGather(lids []uint32, dst []V) []V {
	dst = dst[:len(lids)]
	for i, lid := range lids {
		dst[i] = b.data[lid]
	}
	b.dev.bytesFromDev.Add(uint64(len(lids)) * uint64(elemSize[V]()))
	return dst
}

// BulkScatter copies src into the elements at the given local IDs,
// modeling a host→device staging copy.
func (b *Buffer[V]) BulkScatter(lids []uint32, src []V) {
	for i, lid := range lids {
		b.data[lid] = src[i]
	}
	b.dev.bytesToDevice.Add(uint64(len(lids)) * uint64(elemSize[V]()))
}

// Get reads one element from the host side (accounted as a 1-element
// transfer; sync specs prefer the bulk forms).
func (b *Buffer[V]) Get(lid uint32) V {
	b.dev.bytesFromDev.Add(uint64(elemSize[V]()))
	return b.data[lid]
}

// Set writes one element from the host side.
func (b *Buffer[V]) Set(lid uint32, v V) {
	b.dev.bytesToDevice.Add(uint64(elemSize[V]()))
	b.data[lid] = v
}

func elemSize[V any]() int {
	var v V
	switch any(v).(type) {
	case uint32, int32, float32:
		return 4
	case uint64, int64, float64:
		return 8
	default:
		return 8
	}
}
