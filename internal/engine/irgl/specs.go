package irgl

// Gluon synchronization structures over device Buffers. They satisfy the
// substrate's ReduceSpec/BroadcastSpec interfaces structurally and
// additionally provide the bulk extract variant (§3.3 "bulk-variants for
// GPUs"), so a whole memoized order crosses the simulated device boundary
// in one accounted staging copy instead of per-node callbacks.
//
// Scatter-side operations (Reduce, Set, Reset) are accounted as host→device
// traffic per element, modeling the staging buffer a GPU plugin scatters
// after receiving a message.

// MinU32Buf is the min-reduce structure over a uint32 device buffer
// (bfs levels, sssp distances, cc labels).
type MinU32Buf struct{ B *Buffer[uint32] }

// Extract reads one element (accounted single-element transfer).
func (m MinU32Buf) Extract(lid uint32) uint32 { return m.B.Get(lid) }

// ExtractBulk stages one device→host copy of the given order.
func (m MinU32Buf) ExtractBulk(lids []uint32, dst []uint32) []uint32 {
	return m.B.BulkGather(lids, dst)
}

// Reduce folds v into the device element with a min.
func (m MinU32Buf) Reduce(lid uint32, v uint32) bool {
	m.B.dev.bytesToDevice.Add(4)
	if v < m.B.data[lid] {
		m.B.data[lid] = v
		return true
	}
	return false
}

// Reset is a no-op: min is idempotent, mirrors keep their labels.
func (m MinU32Buf) Reset(lid uint32) {}

// SetU32Buf is the broadcast structure over a uint32 device buffer.
type SetU32Buf struct{ B *Buffer[uint32] }

// Extract reads one element.
func (s SetU32Buf) Extract(lid uint32) uint32 { return s.B.Get(lid) }

// ExtractBulk stages one device→host copy.
func (s SetU32Buf) ExtractBulk(lids []uint32, dst []uint32) []uint32 {
	return s.B.BulkGather(lids, dst)
}

// Set overwrites the device element, reporting change.
func (s SetU32Buf) Set(lid uint32, v uint32) bool {
	s.B.dev.bytesToDevice.Add(4)
	if s.B.data[lid] == v {
		return false
	}
	s.B.data[lid] = v
	return true
}

// SumF64Buf is the add-reduce structure over a float64 device buffer
// (pagerank contributions).
type SumF64Buf struct{ B *Buffer[float64] }

// Extract reads one element.
func (a SumF64Buf) Extract(lid uint32) float64 { return a.B.Get(lid) }

// ExtractBulk stages one device→host copy.
func (a SumF64Buf) ExtractBulk(lids []uint32, dst []float64) []float64 {
	return a.B.BulkGather(lids, dst)
}

// Reduce adds v into the device element.
func (a SumF64Buf) Reduce(lid uint32, v float64) bool {
	a.B.dev.bytesToDevice.Add(8)
	if v == 0 {
		return false
	}
	a.B.data[lid] += v
	return true
}

// Reset zeroes the device element.
func (a SumF64Buf) Reset(lid uint32) { a.B.data[lid] = 0 }

// SetF64Buf is the broadcast structure over a float64 device buffer.
type SetF64Buf struct{ B *Buffer[float64] }

// Extract reads one element.
func (s SetF64Buf) Extract(lid uint32) float64 { return s.B.Get(lid) }

// ExtractBulk stages one device→host copy.
func (s SetF64Buf) ExtractBulk(lids []uint32, dst []float64) []float64 {
	return s.B.BulkGather(lids, dst)
}

// Set overwrites the device element.
func (s SetF64Buf) Set(lid uint32, v float64) bool {
	s.B.dev.bytesToDevice.Add(8)
	if s.B.data[lid] == v {
		return false
	}
	s.B.data[lid] = v
	return true
}
