package vprog

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"gluon/internal/gluon"
)

func ssspGenSpec() GenSpec {
	op := SSSPOperator()
	return GenSpec{
		Package:  "ssspgen",
		Operator: op,
		Fields: []GenField{{
			FieldUse: op.Fields[0],
			GoType:   "uint32",
			Op:       ReduceMin,
			ID:       42,
		}},
	}
}

// TestGenerateParses: the generated source is syntactically valid Go with
// the expected declarations.
func TestGenerateParses(t *testing.T) {
	src, err := Generate(ssspGenSpec())
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "gen.go", src, 0)
	if err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	if file.Name.Name != "ssspgen" {
		t.Fatalf("package %s", file.Name.Name)
	}
	wantDecls := map[string]bool{
		"DistState": false, "DistReduce": false, "DistBroadcast": false,
	}
	wantFuncs := map[string]bool{
		"Extract": false, "Reduce": false, "Reset": false, "Set": false,
		"NewDistField": false,
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.TypeSpec:
			if _, ok := wantDecls[d.Name.Name]; ok {
				wantDecls[d.Name.Name] = true
			}
		case *ast.FuncDecl:
			if _, ok := wantFuncs[d.Name.Name]; ok {
				wantFuncs[d.Name.Name] = true
			}
		}
		return true
	})
	for name, seen := range wantDecls {
		if !seen {
			t.Errorf("generated code missing type %s", name)
		}
	}
	for name, seen := range wantFuncs {
		if !seen {
			t.Errorf("generated code missing func %s", name)
		}
	}
}

// TestGenerateMinVsAddSemantics: the reduction choice shapes Reduce/Reset.
func TestGenerateMinVsAddSemantics(t *testing.T) {
	spec := ssspGenSpec()
	src, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "if v < r.S.Vals[lid]") {
		t.Error("min reduce body missing")
	}
	if strings.Contains(string(src), "r.S.Vals[lid] += v") {
		t.Error("min code contains add body")
	}

	spec.Fields[0].Op = ReduceAdd
	spec.Fields[0].GoType = "float64"
	src, err = Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "r.S.Vals[lid] += v") {
		t.Error("add reduce body missing")
	}
	if !strings.Contains(string(src), "r.S.Vals[lid] = 0") {
		t.Error("add reset body missing")
	}
}

// TestGenerateLocationsWired: the Field literal carries the operator's
// write/read locations.
func TestGenerateLocationsWired(t *testing.T) {
	spec := ssspGenSpec()
	spec.Fields[0].WrittenAt = gluon.AtSource
	spec.Fields[0].ReadAt = gluon.Anywhere
	src, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := string(src)
	if !strings.Contains(s, "Write:     gluon.AtSource") {
		t.Error("write location not wired")
	}
	if !strings.Contains(s, "Read:      gluon.Anywhere") {
		t.Error("read location not wired")
	}
	if !strings.Contains(s, "ID:        42") {
		t.Error("field ID not wired")
	}
}

func TestGenerateErrors(t *testing.T) {
	spec := ssspGenSpec()
	spec.Package = ""
	if _, err := Generate(spec); err == nil {
		t.Error("empty package accepted")
	}
	spec = ssspGenSpec()
	spec.Fields[0].Op = "xor"
	if _, err := Generate(spec); err == nil {
		t.Error("unsupported reduction accepted")
	}
	spec = ssspGenSpec()
	spec.Fields[0].GoType = "string"
	if _, err := Generate(spec); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestExportName(t *testing.T) {
	cases := map[string]string{
		"bfs-dist":   "BfsDist",
		"rank":       "Rank",
		"pr_contrib": "PrContrib",
		"":           "Field",
	}
	for in, want := range cases {
		if got := exportName(in); got != want {
			t.Errorf("exportName(%q) = %q, want %q", in, got, want)
		}
	}
}
