package vprog

import (
	"fmt"
	"sync"
	"testing"

	"gluon/internal/comm"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

// pullPR is the paper's pull-pagerank shape: contributions reduce at the
// active node (a sum), ranks are read at sources.
func pullPR() Operator {
	return Operator{
		Name:  "pr-pull",
		Style: Pull,
		Fields: []FieldUse{
			{Name: "contrib", WrittenAt: gluon.AtDestination, ReadAt: gluon.AtDestination, Reduction: true},
			{Name: "rank", WrittenAt: gluon.AtDestination, ReadAt: gluon.AtSource, Reduction: true, SameValuePushed: true},
		},
	}
}

// nonReducingPull models a pull operator whose update is order-dependent
// (e.g. overwriting with the first in-neighbor's value).
func nonReducingPull() Operator {
	return Operator{
		Name:  "first-wins",
		Style: Pull,
		Fields: []FieldUse{
			{Name: "label", WrittenAt: gluon.AtDestination, ReadAt: gluon.AtSource, Reduction: false},
		},
	}
}

// aggregatePush models a push operator whose pushed value needs an
// aggregate only the master has.
func aggregatePush() Operator {
	return Operator{
		Name:  "agg-push",
		Style: Push,
		Fields: []FieldUse{
			{Name: "x", WrittenAt: gluon.AtDestination, ReadAt: gluon.AtSource, Reduction: true, SameValuePushed: false},
		},
	}
}

// TestLegalityMatrix encodes §3.1's operator–policy interaction.
func TestLegalityMatrix(t *testing.T) {
	cases := []struct {
		op   Operator
		want []partition.Kind
	}{
		{SSSPOperator(), partition.AllKinds()},
		{pullPR(), partition.AllKinds()},
		{nonReducingPull(), []partition.Kind{partition.IEC}},
		{aggregatePush(), []partition.Kind{partition.OEC}},
	}
	for _, c := range cases {
		got := LegalPolicies(c.op)
		if len(got) != len(c.want) {
			t.Fatalf("%s: legal = %v, want %v", c.op.Name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: legal = %v, want %v", c.op.Name, got, c.want)
			}
		}
	}
	if PolicyLegal(nonReducingPull(), partition.CVC) {
		t.Fatal("CVC accepted for non-reducing pull")
	}
	if !PolicyLegal(SSSPOperator(), partition.HVC) {
		t.Fatal("HVC rejected for sssp")
	}
}

// TestPlanPerPolicy encodes §3.2's pattern table for a push-style field.
func TestPlanPerPolicy(t *testing.T) {
	op := SSSPOperator()
	cases := map[partition.Kind]Pattern{
		partition.OEC: {Field: "dist", NeedsReduce: true, NeedsBroadcast: false},
		partition.IEC: {Field: "dist", NeedsReduce: false, NeedsBroadcast: true},
		partition.CVC: {Field: "dist", NeedsReduce: true, NeedsBroadcast: true, SubsetMirrors: true},
		partition.HVC: {Field: "dist", NeedsReduce: true, NeedsBroadcast: true},
	}
	for kind, want := range cases {
		plans, err := Plan(op, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(plans) != 1 || plans[0] != want {
			t.Fatalf("%s: plan %+v, want %+v", kind, plans[0], want)
		}
	}
}

func TestPlanRejectsIllegal(t *testing.T) {
	if _, err := Plan(nonReducingPull(), partition.OEC); err == nil {
		t.Fatal("illegal plan accepted")
	}
}

// TestPlanMatchesRuntime: the statically derived plan agrees with what the
// runtime substrate actually does on real partitions — for each policy,
// the plan's NeedsReduce/NeedsBroadcast matches whether any host has
// non-empty reduce/broadcast pair lists for the field's locations.
func TestPlanMatchesRuntime(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 8, EdgeFactor: 8, Seed: 31}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, cfg.NumNodes())
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	popt := partition.Options{OutDegrees: out, InDegrees: g.InDegrees()}
	op := SSSPOperator()
	field := op.Fields[0]

	for _, kind := range partition.AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			pol, err := partition.NewPolicy(kind, cfg.NumNodes(), 4, popt)
			if err != nil {
				t.Fatal(err)
			}
			parts, err := partition.PartitionAll(cfg.NumNodes(), edges, pol)
			if err != nil {
				t.Fatal(err)
			}
			hub := comm.NewHub(4)
			defer hub.Close()
			gs := make([]*gluon.Gluon, 4)
			var wg sync.WaitGroup
			for h := 0; h < 4; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					gg, err := gluon.New(parts[h], hub.Endpoint(h), gluon.Opt())
					if err != nil {
						panic(fmt.Sprintf("host %d: %v", h, err))
					}
					gs[h] = gg
				}(h)
			}
			wg.Wait()

			anyReduce, anyBcast := false, false
			for _, gg := range gs {
				if gg.ReduceNeeded(field.WrittenAt) {
					anyReduce = true
				}
				if gg.BroadcastNeeded(field.ReadAt) {
					anyBcast = true
				}
			}
			plans, err := Plan(op, kind)
			if err != nil {
				t.Fatal(err)
			}
			if plans[0].NeedsReduce != anyReduce {
				t.Errorf("plan reduce=%v, runtime=%v", plans[0].NeedsReduce, anyReduce)
			}
			if plans[0].NeedsBroadcast != anyBcast {
				t.Errorf("plan broadcast=%v, runtime=%v", plans[0].NeedsBroadcast, anyBcast)
			}
		})
	}
}
