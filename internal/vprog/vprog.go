// Package vprog models vertex programs declaratively: an operator is
// described by its style (push/pull), the fields it touches and where, and
// whether its updates are reductions. From that description the package
//
//   - decides which partitioning strategies are legal (§3.1's
//     operator–policy interaction: "for a pull-style operator, UVC, CVC, or
//     OEC can be used only if the update made by the operator to the active
//     node label is a reduction; otherwise IEC must be used... For a
//     push-style operator, UVC, CVC, or IEC can be used only if the node
//     pushes the same value along its outgoing edges and uses a reduction
//     to combine...; otherwise OEC must be used"), and
//   - derives the synchronization plan for each field — which of
//     reduce/broadcast a Gluon sync call must perform, the analysis the
//     paper implements in a compiler for Galois (§3.3).
//
// The runtime equivalent of the derived plan is what gluon.Sync executes;
// TestPlanMatchesRuntime in this package's tests checks the two agree on
// real partitions.
package vprog

import (
	"fmt"

	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Style classifies the operator.
type Style int

// Operator styles.
const (
	// Push: reads the active node's label, conditionally updates its
	// out-neighbors.
	Push Style = iota
	// Pull: reads the in-neighbors' labels, conditionally updates the
	// active node.
	Pull
)

func (s Style) String() string {
	if s == Push {
		return "push"
	}
	return "pull"
}

// FieldUse describes one node field an operator touches.
type FieldUse struct {
	Name string
	// WrittenAt / ReadAt are the edge endpoints where the operator writes
	// and reads the field (gluon.Anywhere if never written/read).
	WrittenAt gluon.Location
	ReadAt    gluon.Location
	// Reduction: remote partial updates combine associatively and
	// commutatively (min, sum, ...). Non-reduction writes cannot be merged
	// from multiple proxies.
	Reduction bool
	// SameValuePushed (push style): what the operator pushes along an
	// outgoing edge derives only from the active node's label and that
	// edge's own data (so any proxy holding a subset of the out-edges can
	// perform its pushes independently). sssp pushes l(v)+weight(v,w):
	// per-edge values, but derived purely from the label and the edge, so
	// this holds. A counterexample would be a push depending on an
	// aggregate over all out-edges that only the master could compute.
	SameValuePushed bool
}

// Operator is the declarative description of a vertex operator.
type Operator struct {
	Name   string
	Style  Style
	Fields []FieldUse
}

// LegalPolicies returns the partitioning strategies the operator admits,
// per the paper's §3.1 interaction rules.
func LegalPolicies(op Operator) []partition.Kind {
	constrained := false
	for _, f := range op.Fields {
		if f.WrittenAt == gluon.Anywhere && f.ReadAt == gluon.Anywhere {
			continue
		}
		switch op.Style {
		case Pull:
			// Master must see all incoming edges unless updates reduce.
			if !f.Reduction {
				constrained = true
			}
		case Push:
			// Master must own all outgoing edges unless the pushed value is
			// uniform and combines by reduction.
			if !f.Reduction || !f.SameValuePushed {
				constrained = true
			}
		}
	}
	if !constrained {
		return partition.AllKinds()
	}
	if op.Style == Pull {
		return []partition.Kind{partition.IEC}
	}
	return []partition.Kind{partition.OEC}
}

// PolicyLegal reports whether one strategy is admissible.
func PolicyLegal(op Operator, kind partition.Kind) bool {
	for _, k := range LegalPolicies(op) {
		if k == kind {
			return true
		}
	}
	return false
}

// Pattern is the communication a field needs in one sync call.
type Pattern struct {
	Field string
	// NeedsReduce / NeedsBroadcast: which of the two basic patterns (§3.2)
	// apply for the policy. Subsets of mirrors are chosen by the runtime
	// from structural flags; the plan records whether subsetting applies.
	NeedsReduce    bool
	NeedsBroadcast bool
	// SubsetMirrors: the pattern runs on a proper subset of mirrors (CVC);
	// false means all mirrors participate (UVC) or the pattern is empty.
	SubsetMirrors bool
}

// Plan derives, for each field of the operator, the §3.2 synchronization
// pattern under the given partitioning strategy. It errors if the strategy
// is illegal for the operator.
func Plan(op Operator, kind partition.Kind) ([]Pattern, error) {
	if !PolicyLegal(op, kind) {
		return nil, fmt.Errorf("vprog: policy %s illegal for %s operator %q", kind, op.Style, op.Name)
	}
	var out []Pattern
	for _, f := range op.Fields {
		p := Pattern{Field: f.Name}
		switch kind {
		case partition.OEC:
			// Mirrors have only incoming edges: writable, never read.
			p.NeedsReduce = f.WrittenAt == gluon.AtDestination
			p.NeedsBroadcast = f.ReadAt == gluon.AtDestination // only in-side proxies read
			if f.ReadAt == gluon.AtSource {
				p.NeedsBroadcast = false // sources are masters under OEC
			}
			if f.WrittenAt == gluon.AtSource {
				p.NeedsReduce = false // sources are masters; no mirror writes
			}
		case partition.IEC:
			// Mirrors have only outgoing edges: readable, never written.
			p.NeedsReduce = f.WrittenAt == gluon.AtSource
			p.NeedsBroadcast = f.ReadAt == gluon.AtSource
			if f.WrittenAt == gluon.AtDestination {
				p.NeedsReduce = false
			}
			if f.ReadAt == gluon.AtDestination {
				p.NeedsBroadcast = false
			}
		case partition.CVC:
			p.NeedsReduce = true
			p.NeedsBroadcast = true
			p.SubsetMirrors = true
		default: // unconstrained vertex cuts
			p.NeedsReduce = true
			p.NeedsBroadcast = true
		}
		out = append(out, p)
	}
	return out, nil
}

// SSSPOperator describes the paper's running example (push-style
// relaxation): useful as a template and in tests.
func SSSPOperator() Operator {
	return Operator{
		Name:  "sssp-relax",
		Style: Push,
		Fields: []FieldUse{{
			Name:            "dist",
			WrittenAt:       gluon.AtDestination,
			ReadAt:          gluon.AtSource,
			Reduction:       true, // min
			SameValuePushed: true, // l(v)+weight: label + edge-local data
		}},
	}
}
