package worklist

import (
	"sync/atomic"
	"testing"
)

func TestBagPushPop(t *testing.T) {
	var b Bag
	if !b.Empty() || b.Len() != 0 {
		t.Fatal("zero bag not empty")
	}
	b.PushChunk([]uint32{1, 2, 3})
	b.PushChunk(nil) // no-op
	if b.Empty() || b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	c := b.PopChunk()
	if len(c) != 3 {
		t.Fatalf("chunk = %v", c)
	}
	if b.PopChunk() != nil {
		t.Fatal("pop from empty returned chunk")
	}
}

func TestRunDrainsInitial(t *testing.T) {
	e := &Executor{Workers: 4}
	var sum atomic.Uint64
	initial := make([]uint32, 1000)
	for i := range initial {
		initial[i] = uint32(i)
	}
	applied := e.Run(initial, func(item uint32, push func(uint32)) {
		sum.Add(uint64(item))
	})
	if applied != 1000 {
		t.Fatalf("applied %d", applied)
	}
	if sum.Load() != 999*1000/2 {
		t.Fatalf("sum %d", sum.Load())
	}
}

func TestRunTransitivePush(t *testing.T) {
	// Each item i < 1000 pushes i+1000; those push nothing.
	e := &Executor{Workers: 4}
	var count atomic.Uint64
	initial := make([]uint32, 1000)
	for i := range initial {
		initial[i] = uint32(i)
	}
	applied := e.Run(initial, func(item uint32, push func(uint32)) {
		count.Add(1)
		if item < 1000 {
			push(item + 1000)
		}
	})
	if applied != 2000 || count.Load() != 2000 {
		t.Fatalf("applied %d count %d", applied, count.Load())
	}
}

func TestRunDeepChain(t *testing.T) {
	// A single chain of 100k pushes must fully drain (tests the pending
	// counter under minimal parallelism).
	e := &Executor{Workers: 2}
	var depth atomic.Uint64
	e.Run([]uint32{0}, func(item uint32, push func(uint32)) {
		depth.Add(1)
		if item < 100000 {
			push(item + 1)
		}
	})
	if depth.Load() != 100001 {
		t.Fatalf("chain depth %d", depth.Load())
	}
}

func TestRunEmptyInitial(t *testing.T) {
	e := &Executor{Workers: 4}
	if applied := e.Run(nil, func(uint32, func(uint32)) {
		t.Fatal("op called with no work")
	}); applied != 0 {
		t.Fatalf("applied %d", applied)
	}
}

func TestRunFanOut(t *testing.T) {
	// One seed pushes 64 children; each child pushes 8 grandchildren.
	e := &Executor{Workers: 8}
	var total atomic.Uint64
	e.Run([]uint32{1 << 20}, func(item uint32, push func(uint32)) {
		total.Add(1)
		switch {
		case item == 1<<20:
			for i := uint32(0); i < 64; i++ {
				push(i)
			}
		case item < 64:
			for i := uint32(0); i < 8; i++ {
				push(1000 + item*8 + i)
			}
		}
	})
	want := uint64(1 + 64 + 64*8)
	if total.Load() != want {
		t.Fatalf("applied %d, want %d", total.Load(), want)
	}
}

func BenchmarkRunThroughput(b *testing.B) {
	e := &Executor{Workers: 4}
	initial := make([]uint32, 1<<14)
	for i := range initial {
		initial[i] = uint32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(initial, func(item uint32, push func(uint32)) {})
	}
}
