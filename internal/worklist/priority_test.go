package worklist

import (
	"sync/atomic"
	"testing"

	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/graph"
	"gluon/internal/ref"
)

func TestPriorityDrainsAll(t *testing.T) {
	e := &PriorityExecutor{Workers: 4, MaxBucket: 8}
	var sum atomic.Uint64
	items := make([]uint32, 100)
	prios := make([]int, 100)
	for i := range items {
		items[i] = uint32(i)
		prios[i] = i % 9
	}
	applied := e.Run(items, prios, func(item uint32, push func(uint32, int)) {
		sum.Add(uint64(item))
	})
	if applied != 100 || sum.Load() != 99*100/2 {
		t.Fatalf("applied %d sum %d", applied, sum.Load())
	}
}

// TestPriorityBucketOrdering: an item processed in bucket b never runs
// before all of bucket b-1's initial items (waves are barriers).
func TestPriorityBucketOrdering(t *testing.T) {
	e := &PriorityExecutor{Workers: 4, MaxBucket: 4}
	var order []int
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	items := []uint32{0, 1, 2, 3, 4}
	prios := []int{4, 3, 2, 1, 0}
	e.Run(items, prios, func(item uint32, push func(uint32, int)) {
		<-mu
		order = append(order, int(item))
		mu <- struct{}{}
	})
	// Reverse priorities mean processing order must be 4,3,2,1,0.
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestPriorityPushEarlierJoinsCurrentWave: pushes with priority below the
// current bucket still get processed (clamped into the current wave).
func TestPriorityPushEarlierJoinsCurrentWave(t *testing.T) {
	e := &PriorityExecutor{Workers: 2, MaxBucket: 4}
	var processed atomic.Uint64
	e.Run([]uint32{10}, []int{3}, func(item uint32, push func(uint32, int)) {
		processed.Add(1)
		if item == 10 {
			push(20, 0) // earlier bucket: must still run
		}
	})
	if processed.Load() != 2 {
		t.Fatalf("processed %d, want 2", processed.Load())
	}
}

func TestPriorityClamping(t *testing.T) {
	e := &PriorityExecutor{Workers: 2, MaxBucket: 2}
	var processed atomic.Uint64
	e.Run([]uint32{1, 2}, []int{-5, 999}, func(item uint32, push func(uint32, int)) {
		processed.Add(1)
		if item == 1 {
			push(3, 1<<30)
		}
	})
	if processed.Load() != 3 {
		t.Fatalf("processed %d, want 3", processed.Load())
	}
}

// TestDeltaSteppingFewerRelaxationsThanFIFO: on a weighted scale-free
// graph, bucketed sssp performs no more operator applications than FIFO
// chaotic relaxation (usually far fewer) while producing identical
// distances.
func TestDeltaSteppingFewerRelaxationsThanFIFO(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 11, EdgeFactor: 8, Seed: 77, Weighted: true, MaxWeight: 100}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, true)
	if err != nil {
		t.Fatal(err)
	}
	source := g.MaxOutDegreeNode()
	want := ref.SSSP(g, source)

	relaxAll := func(dist []uint32, u uint32, push func(uint32, int)) {
		du := fields.AtomicLoadU32(&dist[u])
		if du == fields.InfinityU32 {
			return
		}
		ws := g.EdgeWeights(u)
		for i, d := range g.Neighbors(u) {
			nd := du + ws[i]
			if fields.AtomicMinU32(&dist[d], nd) {
				push(d, int(nd/16))
			}
		}
	}

	// FIFO baseline.
	distF := make([]uint32, g.NumNodes())
	for i := range distF {
		distF[i] = fields.InfinityU32
	}
	distF[source] = 0
	fifo := &Executor{Workers: 4}
	fifoApplied := fifo.Run([]uint32{source}, func(u uint32, push func(uint32)) {
		relaxAll(distF, u, func(d uint32, _ int) { push(d) })
	})

	// Delta-stepping.
	distD := make([]uint32, g.NumNodes())
	for i := range distD {
		distD[i] = fields.InfinityU32
	}
	distD[source] = 0
	pe := &PriorityExecutor{Workers: 4, MaxBucket: 4096}
	deltaApplied := pe.Run([]uint32{source}, []int{0}, func(u uint32, push func(uint32, int)) {
		relaxAll(distD, u, push)
	})

	for u := range want {
		if distF[u] != want[u] {
			t.Fatalf("fifo node %d: %d, want %d", u, distF[u], want[u])
		}
		if distD[u] != want[u] {
			t.Fatalf("delta node %d: %d, want %d", u, distD[u], want[u])
		}
	}
	t.Logf("operator applications: fifo=%d delta=%d (%.2fx)",
		fifoApplied, deltaApplied, float64(fifoApplied)/float64(deltaApplied))
	if deltaApplied > fifoApplied*12/10 {
		t.Fatalf("delta-stepping applied %d ops vs fifo %d; expected no worse than ~1.2x", deltaApplied, fifoApplied)
	}
}
