package worklist

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// PriorityExecutor processes work in ascending priority buckets —
// delta-stepping-style scheduling (Meyer & Sanders), the discipline
// Galois' ordered worklists approximate for sssp. All items of bucket b
// (including items pushed back into b while it drains) are processed
// before bucket b+1 opens, which avoids most of the wasted relaxations a
// FIFO worklist performs on weighted graphs.
type PriorityExecutor struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// MaxBucket bounds the priority space; pushes beyond it clamp into the
	// final bucket. 0 means 1024.
	MaxBucket int
}

// Run processes initial items (at their given priorities), plus pushed
// items, bucket by bucket. op receives the item and a push function taking
// (item, priority); pushes to the current or earlier buckets are processed
// in the current wave. Returns the number of operator applications.
func (e *PriorityExecutor) Run(initial []uint32, priorities []int, op func(item uint32, push func(uint32, int))) uint64 {
	maxBucket := e.MaxBucket
	if maxBucket <= 0 {
		maxBucket = 1024
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	buckets := make([]*Bag, maxBucket+1)
	for i := range buckets {
		buckets[i] = &Bag{}
	}
	clamp := func(p int) int {
		if p < 0 {
			p = 0
		}
		if p > maxBucket {
			p = maxBucket
		}
		return p
	}
	// pending[b] counts items of bucket b not yet fully processed.
	pending := make([]atomic.Int64, maxBucket+1)
	byBucket := make(map[int][]uint32)
	for i, item := range initial {
		b := clamp(priorities[i])
		byBucket[b] = append(byBucket[b], item)
	}
	for b, items := range byBucket {
		pending[b].Add(int64(len(items)))
		for lo := 0; lo < len(items); lo += ChunkSize {
			hi := lo + ChunkSize
			if hi > len(items) {
				hi = len(items)
			}
			chunk := make([]uint32, hi-lo)
			copy(chunk, items[lo:hi])
			buckets[b].PushChunk(chunk)
		}
	}

	var applied atomic.Uint64
	for cur := 0; cur <= maxBucket; cur++ {
		if pending[cur].Load() == 0 {
			continue
		}
		cur := cur
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make(map[int][]uint32, 4)
				flush := func() {
					for b, items := range local {
						if len(items) > 0 {
							buckets[b].PushChunk(items)
						}
						delete(local, b)
					}
				}
				push := func(item uint32, prio int) {
					b := clamp(prio)
					if b < cur {
						b = cur // earlier-bucket pushes join the current wave
					}
					pending[b].Add(1)
					local[b] = append(local[b], item)
					if len(local[b]) >= ChunkSize {
						buckets[b].PushChunk(local[b])
						local[b] = nil
					}
				}
				for {
					chunk := buckets[cur].PopChunk()
					if chunk == nil {
						flush()
						if pending[cur].Load() == 0 {
							return
						}
						runtime.Gosched()
						continue
					}
					for _, item := range chunk {
						op(item, push)
						applied.Add(1)
						pending[cur].Add(-1)
					}
					flush()
				}
			}()
		}
		wg.Wait()
	}
	return applied.Load()
}
