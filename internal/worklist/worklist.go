// Package worklist provides the chunked parallel worklist backing the
// Galois-style asynchronous engine. Work items (node IDs) are held in
// fixed-size chunks; workers pop chunks from a shared bag, process items,
// and push newly generated items into a worker-local chunk that is flushed
// to the bag when full. Processing continues until no items remain anywhere,
// so updates generated inside a round are consumed in the same round — the
// "asynchronous within a host" behaviour the paper credits for D-Galois
// needing fewer BSP rounds than level-synchronous systems.
package worklist

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ChunkSize is the number of items per chunk. Chunks amortize bag
// synchronization; 128 matches Galois' default order of magnitude.
const ChunkSize = 128

// Bag is an unordered pool of uint32 work items supporting concurrent
// chunked push/pop. The zero value is an empty bag ready for use.
type Bag struct {
	mu     sync.Mutex
	chunks [][]uint32
}

// PushChunk adds a chunk of items to the bag. The bag takes ownership.
func (b *Bag) PushChunk(chunk []uint32) {
	if len(chunk) == 0 {
		return
	}
	b.mu.Lock()
	b.chunks = append(b.chunks, chunk)
	b.mu.Unlock()
}

// PopChunk removes and returns a chunk, or nil if the bag is empty.
func (b *Bag) PopChunk() []uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.chunks)
	if n == 0 {
		return nil
	}
	c := b.chunks[n-1]
	b.chunks = b.chunks[:n-1]
	return c
}

// Empty reports whether the bag currently has no chunks.
func (b *Bag) Empty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.chunks) == 0
}

// Len returns the total number of items across all chunks.
func (b *Bag) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, c := range b.chunks {
		total += len(c)
	}
	return total
}

// Executor runs operator applications over a Bag until quiescence.
type Executor struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
}

// Run processes every item in initial, plus every item pushed during
// processing, using op. op receives the item and a push function that
// schedules more work in the same invocation (push is only safe to call
// from inside op, on the worker that received it). Run returns the number
// of operator applications performed and blocks until the worklist is
// fully drained (local quiescence).
//
// Termination is tracked by a precise pending-item counter: an item counts
// as pending from the moment it is pushed until its operator application
// finishes, so pending==0 means no work exists anywhere.
func (e *Executor) Run(initial []uint32, op func(item uint32, push func(uint32))) uint64 {
	bag := &Bag{}
	var pending atomic.Int64
	pending.Store(int64(len(initial)))
	for lo := 0; lo < len(initial); lo += ChunkSize {
		hi := lo + ChunkSize
		if hi > len(initial) {
			hi = len(initial)
		}
		chunk := make([]uint32, hi-lo)
		copy(chunk, initial[lo:hi])
		bag.PushChunk(chunk)
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var applied atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint32, 0, ChunkSize)
			push := func(item uint32) {
				pending.Add(1)
				local = append(local, item)
				if len(local) >= ChunkSize {
					bag.PushChunk(local)
					local = make([]uint32, 0, ChunkSize)
				}
			}
			for {
				chunk := bag.PopChunk()
				if chunk == nil {
					if pending.Load() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				for _, item := range chunk {
					op(item, push)
					applied.Add(1)
					pending.Add(-1)
				}
				if len(local) > 0 {
					bag.PushChunk(local)
					local = make([]uint32, 0, ChunkSize)
				}
			}
		}()
	}
	wg.Wait()
	return applied.Load()
}
