package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleSnapshot(epoch uint64) *Snapshot {
	return &Snapshot{
		Algorithm: "pr",
		Host:      1,
		NumHosts:  3,
		Epoch:     epoch,
		Sections: []Section{
			{Name: "pr-rank", Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Name: "pr-outdeg", Data: []byte{9, 10}},
			{Name: "empty", Data: nil},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot(42)
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != s.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), s.EncodedSize())
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "pr" || got.Host != 1 || got.NumHosts != 3 || got.Epoch != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Sections) != 3 {
		t.Fatalf("got %d sections, want 3", len(got.Sections))
	}
	if string(got.Section("pr-rank")) != string(s.Sections[0].Data) {
		t.Fatalf("pr-rank round-trip mismatch")
	}
	if got.Section("no-such") != nil {
		t.Fatal("lookup of a missing section returned data")
	}
}

// Every corrupted byte must be caught by the CRC (or a structural check) —
// never silently decoded.
func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := sampleSnapshot(7).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xA5
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(data))
		}
	}
	if _, err := Decode(data[:len(data)-1]); err == nil {
		t.Fatal("truncated checkpoint went undetected")
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

func TestWriteLoadLatest(t *testing.T) {
	dir := t.TempDir()
	for _, epoch := range []uint64{0, 4, 8} {
		if _, err := WriteFile(dir, sampleSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Load(dir, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 4 {
		t.Fatalf("Load(4) returned epoch %d", s.Epoch)
	}
	latest, err := Latest(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Epoch != 8 {
		t.Fatalf("Latest returned epoch %d, want 8", latest.Epoch)
	}
	// No files for host 2.
	if _, err := Latest(dir, 2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest for absent host: %v, want ErrNoCheckpoint", err)
	}
}

// Latest must skip a corrupt newest file and fall back to the previous
// complete checkpoint — that is the whole point of retention.
func TestLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	for _, epoch := range []uint64{2, 4} {
		if _, err := WriteFile(dir, sampleSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, fileName(1, 4))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	latest, err := Latest(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Epoch != 2 {
		t.Fatalf("Latest returned epoch %d, want fallback to 2", latest.Epoch)
	}
}

func TestPruneRetention(t *testing.T) {
	dir := t.TempDir()
	for epoch := uint64(1); epoch <= 6; epoch++ {
		if _, err := WriteFile(dir, sampleSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign host's file must survive host 1's pruning.
	other := sampleSnapshot(1)
	other.Host = 2
	if _, err := WriteFile(dir, other); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 1, 3); err != nil {
		t.Fatal(err)
	}
	got, err := epochs(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("after prune host 1 has epochs %v, want [4 5 6]", got)
	}
	if e2, _ := epochs(dir, 2); len(e2) != 1 {
		t.Fatalf("pruning host 1 touched host 2's files: %v", e2)
	}
}

func TestFileNameOrdering(t *testing.T) {
	a := fileName(3, 99)
	b := fileName(3, 100)
	if !(a < b) {
		t.Fatalf("lexical order broken: %q !< %q", a, b)
	}
	host, epoch, ok := parseFileName(b)
	if !ok || host != 3 || epoch != 100 {
		t.Fatalf("parseFileName(%q) = %d,%d,%v", b, host, epoch, ok)
	}
	for _, bad := range []string{"ckpt-h003-e000000000100.tmp", "other.gl", "ckpt-hx-ey.gl"} {
		if _, _, ok := parseFileName(bad); ok {
			t.Fatalf("parseFileName accepted %q", bad)
		}
	}
}

func TestWriterAsync(t *testing.T) {
	dir := t.TempDir()
	var wrote int
	w := NewWriter(Options{Dir: dir, Keep: 2}, 1, func(n int, err error) {
		if err == nil {
			wrote += n
		}
	})
	for epoch := uint64(0); epoch < 5; epoch++ {
		if err := w.Submit(sampleSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if wrote == 0 {
		t.Fatal("onDone never reported a completed write")
	}
	got, err := epochs(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 4 {
		t.Fatalf("writer retention left epochs %v, want [3 4]", got)
	}
}

// A writer pointed at an unwritable directory must fail sticky and loud.
func TestWriterStickyError(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Dir's parent is a regular file: MkdirAll and every write must fail.
	w := NewWriter(Options{Dir: filepath.Join(blocker, "deep")}, 0, nil)
	_ = w.Submit(sampleSnapshot(1))
	if err := w.Close(); err == nil {
		t.Fatal("write into a missing directory reported no error")
	}
}
