// Package ckpt implements per-host checkpoints of master field state plus
// the BSP round cursor, so a cluster can survive the loss of a rank
// (ROADMAP "self-healing clusters", DESIGN.md §4.6).
//
// A checkpoint is taken at a round boundary: every host captures its own
// master-owned field sections (the program's ExportState), the current
// frontier, and the memoized address-translation tables, all stamped with
// the round cursor as the epoch. Capture is synchronous and cheap (a copy
// of the per-host arrays); the write happens on a dedicated goroutine so
// compute never waits on the filesystem ("asynchronous" in the Gemini
// sense of chunk-based state shipping staying off the hot path).
//
// On-disk format (versioned, little-endian):
//
//	magic   [8]byte  "GLUCKPT\x01"
//	epoch   u64      round cursor the snapshot was taken at
//	host    u32      writing host
//	hosts   u32      cluster size
//	alg     u8 len + bytes
//	nsec    u32      section count
//	per section: u8 name len + name bytes, u32 data len, data bytes
//	crc     u32      IEEE CRC-32 of everything before it
//
// Files are written to "<name>.tmp" and atomically renamed into place, so
// a reader never observes a torn checkpoint; the CRC additionally rejects
// files truncated by the host dying mid-write before the rename. Retention
// keeps the last K complete epochs per host.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var magic = [8]byte{'G', 'L', 'U', 'C', 'K', 'P', 'T', 1}

// ErrNoCheckpoint reports that no complete checkpoint exists for a host.
var ErrNoCheckpoint = errors.New("ckpt: no complete checkpoint found")

// Section is one named blob inside a snapshot: a program field array, the
// frontier bitset, or the memoized translation tables. Names must be
// non-empty and at most 255 bytes.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is the in-memory form of one host's checkpoint at one epoch.
type Snapshot struct {
	Algorithm string
	Host      int
	NumHosts  int
	Epoch     uint64
	Sections  []Section
}

// Section returns the named section's data, or nil if absent.
func (s *Snapshot) Section(name string) []byte {
	for _, sec := range s.Sections {
		if sec.Name == name {
			return sec.Data
		}
	}
	return nil
}

// EncodedSize returns the number of bytes Encode will produce.
func (s *Snapshot) EncodedSize() int {
	n := 8 + 8 + 4 + 4 + 1 + len(s.Algorithm) + 4 + 4
	for _, sec := range s.Sections {
		n += 1 + len(sec.Name) + 4 + len(sec.Data)
	}
	return n
}

// Encode serializes the snapshot, including the trailing CRC.
func (s *Snapshot) Encode() ([]byte, error) {
	if len(s.Algorithm) > 255 {
		return nil, fmt.Errorf("ckpt: algorithm name too long (%d bytes)", len(s.Algorithm))
	}
	buf := make([]byte, 0, s.EncodedSize())
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Host))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.NumHosts))
	buf = append(buf, byte(len(s.Algorithm)))
	buf = append(buf, s.Algorithm...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Sections)))
	for _, sec := range s.Sections {
		if sec.Name == "" || len(sec.Name) > 255 {
			return nil, fmt.Errorf("ckpt: bad section name %q", sec.Name)
		}
		buf = append(buf, byte(len(sec.Name)))
		buf = append(buf, sec.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec.Data)))
		buf = append(buf, sec.Data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode parses and CRC-checks an encoded snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < 8+8+4+4+1+4+4 {
		return nil, errors.New("ckpt: short checkpoint")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("ckpt: CRC mismatch")
	}
	if [8]byte(body[:8]) != magic {
		return nil, errors.New("ckpt: bad magic or unsupported version")
	}
	s := &Snapshot{}
	s.Epoch = binary.LittleEndian.Uint64(body[8:])
	s.Host = int(binary.LittleEndian.Uint32(body[16:]))
	s.NumHosts = int(binary.LittleEndian.Uint32(body[20:]))
	p := 24
	alen := int(body[p])
	p++
	if p+alen+4 > len(body) {
		return nil, errors.New("ckpt: truncated algorithm name")
	}
	s.Algorithm = string(body[p : p+alen])
	p += alen
	nsec := int(binary.LittleEndian.Uint32(body[p:]))
	p += 4
	s.Sections = make([]Section, 0, nsec)
	for i := 0; i < nsec; i++ {
		if p+1 > len(body) {
			return nil, errors.New("ckpt: truncated section header")
		}
		nlen := int(body[p])
		p++
		if p+nlen+4 > len(body) {
			return nil, errors.New("ckpt: truncated section name")
		}
		name := string(body[p : p+nlen])
		p += nlen
		dlen := int(binary.LittleEndian.Uint32(body[p:]))
		p += 4
		if p+dlen > len(body) {
			return nil, errors.New("ckpt: truncated section data")
		}
		s.Sections = append(s.Sections, Section{Name: name, Data: body[p : p+dlen]})
		p += dlen
	}
	if p != len(body) {
		return nil, errors.New("ckpt: trailing bytes after sections")
	}
	return s, nil
}

// fileName is the canonical per-host, per-epoch checkpoint name. Epochs are
// zero-padded so lexical order matches numeric order.
func fileName(host int, epoch uint64) string {
	return fmt.Sprintf("ckpt-h%03d-e%012d.gl", host, epoch)
}

// parseFileName inverts fileName; ok is false for foreign files.
func parseFileName(name string) (host int, epoch uint64, ok bool) {
	if !strings.HasPrefix(name, "ckpt-h") || !strings.HasSuffix(name, ".gl") {
		return 0, 0, false
	}
	rest := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-h"), ".gl")
	hs, es, found := strings.Cut(rest, "-e")
	if !found {
		return 0, 0, false
	}
	h, err1 := strconv.Atoi(hs)
	e, err2 := strconv.ParseUint(es, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return h, e, true
}

// AtomicWriteFile installs data at path using the package's torn-write
// discipline: write to "<path>.tmp", fsync, close, rename. A reader never
// observes a partial file, and a crash mid-write leaves at most a stale
// .tmp behind. Parent directories are created as needed. The postmortem
// plane (internal/trace's flight recorder) shares this writer so crash
// bundles get the same durability as checkpoints.
func AtomicWriteFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteFile encodes the snapshot and atomically installs it under dir,
// returning the number of bytes written.
func WriteFile(dir string, s *Snapshot) (int, error) {
	data, err := s.Encode()
	if err != nil {
		return 0, err
	}
	final := filepath.Join(dir, fileName(s.Host, s.Epoch))
	if err := AtomicWriteFile(final, data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// epochs returns the complete (renamed) epochs present for host, ascending.
func epochs(dir string, host int) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		if h, e, ok := parseFileName(ent.Name()); ok && h == host {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Load reads the checkpoint for (host, epoch). The snapshot must decode and
// pass its CRC.
func Load(dir string, host int, epoch uint64) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, fileName(host, epoch)))
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s epoch %d: %w", fileName(host, epoch), epoch, err)
	}
	if s.Host != host || s.Epoch != epoch {
		return nil, fmt.Errorf("ckpt: file %s claims host %d epoch %d", fileName(host, epoch), s.Host, s.Epoch)
	}
	return s, nil
}

// Latest returns the newest checkpoint for host that decodes cleanly,
// or ErrNoCheckpoint.
func Latest(dir string, host int) (*Snapshot, error) {
	eps, err := epochs(dir, host)
	if err != nil {
		return nil, err
	}
	for i := len(eps) - 1; i >= 0; i-- {
		s, err := Load(dir, host, eps[i])
		if err == nil {
			return s, nil
		}
	}
	return nil, ErrNoCheckpoint
}

// Prune removes all but the newest keep epochs for host. keep <= 0 keeps
// everything.
func Prune(dir string, host int, keep int) error {
	if keep <= 0 {
		return nil
	}
	eps, err := epochs(dir, host)
	if err != nil {
		return err
	}
	for i := 0; i < len(eps)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, fileName(host, eps[i]))); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Options configures periodic checkpointing for a run.
type Options struct {
	// Dir is the checkpoint directory (shared or per-host; files embed the
	// host rank so a shared directory is safe).
	Dir string
	// Every takes a checkpoint at round boundaries where round%Every == 0.
	// 0 means every 8 rounds.
	Every int
	// Keep retains the last Keep complete epochs per host (0 = 3).
	Keep int
}

// EveryOrDefault returns the effective checkpoint cadence.
func (o Options) EveryOrDefault() int {
	if o.Every <= 0 {
		return 8
	}
	return o.Every
}

// KeepOrDefault returns the effective retention depth.
func (o Options) KeepOrDefault() int {
	if o.Keep <= 0 {
		return 3
	}
	return o.Keep
}

// Writer drains captured snapshots onto disk on its own goroutine, so the
// BSP loop hands off a snapshot and keeps computing. The first write error
// is sticky and surfaces on the next Submit or on Close, so a checkpointed
// run fails loudly rather than running un-protected.
type Writer struct {
	dir    string
	host   int
	keep   int
	ch     chan *Snapshot
	done   chan struct{}
	onDone func(bytes int, err error)

	mu  sync.Mutex
	err error

	closeOnce sync.Once
}

// NewWriter starts the single-writer goroutine. onDone, if non-nil, is
// called after each write attempt with the byte count (trace accounting).
func NewWriter(opt Options, host int, onDone func(bytes int, err error)) *Writer {
	w := &Writer{
		dir:    opt.Dir,
		host:   host,
		keep:   opt.KeepOrDefault(),
		ch:     make(chan *Snapshot, 1),
		done:   make(chan struct{}),
		onDone: onDone,
	}
	go w.run()
	return w
}

func (w *Writer) run() {
	defer close(w.done)
	for s := range w.ch {
		n, err := WriteFile(w.dir, s)
		if err == nil {
			err = Prune(w.dir, w.host, w.keep)
		}
		if err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.mu.Unlock()
		}
		if w.onDone != nil {
			w.onDone(n, err)
		}
	}
}

// Submit hands a snapshot to the writer goroutine. It blocks only if the
// previous write is still in flight (the channel holds one pending
// snapshot), and returns any earlier sticky write error.
func (w *Writer) Submit(s *Snapshot) error {
	if err := w.Err(); err != nil {
		return err
	}
	w.ch <- s
	return nil
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close drains pending writes, stops the goroutine, and returns the first
// write error. Safe to call more than once (callers defer it for error
// paths and also close explicitly to surface the final write's outcome).
func (w *Writer) Close() error {
	w.closeOnce.Do(func() { close(w.ch) })
	<-w.done
	return w.Err()
}
