package dsys_test

import (
	"hash/fnv"
	"sync/atomic"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/algorithms/pr"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// TestGoldenCommVolumes pins the communication behavior of the Figure 10
// workloads: total bytes, encoding-mode counts, message counts, and a hash
// over every message's (src, dst, tag, len, payload). The golden numbers
// were captured from a serial, fixed-order sync; the pipelined sync path
// (parallel per-peer encode, any-order receive with rank-order reduce
// folds, pooled buffers, word-level update scans) must reproduce them
// byte-for-byte — the whole point of the rework is that only time and
// allocations change, never what goes on the wire.
//
// The payload hash is folded with a commutative add, so message *ordering*
// is free to vary; the bytes of each individual message are not. Note this
// hash covers payload contents, which for PageRank depend on the reduce
// fold order at masters (float sums are not associative): it pins not just
// the codec but the deterministic rank-order application of reduce
// messages.

// hashingTransport wraps a Transport and folds a digest of every sent
// message into acc. RecvAny and the rest of the interface pass through.
type hashingTransport struct {
	comm.Transport
	acc *atomic.Uint64
}

// digest hashes one message as the receiver will see it: src, dst, tag, the
// total length, and the contiguous header+payload bytes.
func (h hashingTransport) digest(to int, tag comm.Tag, header, payload []byte) {
	f := fnv.New64a()
	var hdr [16]byte
	put32 := func(off int, v uint32) {
		hdr[off] = byte(v)
		hdr[off+1] = byte(v >> 8)
		hdr[off+2] = byte(v >> 16)
		hdr[off+3] = byte(v >> 24)
	}
	put32(0, uint32(h.Transport.HostID()))
	put32(4, uint32(to))
	put32(8, uint32(tag))
	put32(12, uint32(len(header)+len(payload)))
	f.Write(hdr[:])
	f.Write(header)
	f.Write(payload)
	h.acc.Add(f.Sum64()) // commutative fold: send order is irrelevant
}

func (h hashingTransport) Send(to int, tag comm.Tag, payload []byte) error {
	h.digest(to, tag, nil, payload)
	return h.Transport.Send(to, tag, payload)
}

// SendVec keeps the digest identical to an equivalent Send of the coalesced
// message, so goldens are invariant to which wire path a message took.
func (h hashingTransport) SendVec(to int, tag comm.Tag, header, payload []byte) error {
	h.digest(to, tag, header, payload)
	return h.Transport.SendVec(to, tag, header, payload)
}

type goldenRow struct {
	alg     string
	policy  partition.Kind
	config  string
	rounds  int
	bytes   uint64
	modes   [5]uint64
	msgs    uint64
	payload uint64
}

// Captured at rmat scale 10, edge factor 8, seed 42, 8 hosts, MaxRounds 50,
// bfs.NewLigra(0, 1) / pr.NewLigra(1e-6, 1).
var goldenRows = []goldenRow{
	{"bfs", "cvc", "unopt", 5, 52748, [5]uint64{0, 0, 0, 0, 352}, 352, 0x722355fad0d35cb6},
	{"bfs", "cvc", "osi", 5, 45996, [5]uint64{0, 0, 0, 0, 192}, 192, 0xbe5c2782a5f46785},
	{"bfs", "cvc", "oti", 5, 18848, [5]uint64{219, 36, 76, 21, 0}, 352, 0x24888c61e4a4e0e8},
	{"bfs", "cvc", "osti", 5, 16412, [5]uint64{76, 38, 60, 18, 0}, 192, 0x526fa21e920e8ba8},
	{"bfs", "oec", "unopt", 5, 72776, [5]uint64{0, 0, 0, 0, 616}, 616, 0xc355fdf58fbccb4d},
	{"bfs", "oec", "osi", 5, 56736, [5]uint64{0, 0, 0, 0, 336}, 336, 0xe8aaa4232a2d6cca},
	{"bfs", "oec", "oti", 5, 26484, [5]uint64{353, 65, 169, 29, 0}, 616, 0xd141b65bb27d735c},
	{"bfs", "oec", "osti", 5, 19920, [5]uint64{171, 80, 71, 14, 0}, 336, 0x2dea4801d782dc70},
	{"pr", "cvc", "unopt", 50, 2024960, [5]uint64{0, 0, 0, 0, 3296}, 3296, 0x1cb43be18329e75b},
	{"pr", "cvc", "osi", 50, 1534784, [5]uint64{0, 0, 0, 0, 1680}, 1680, 0x797ecb8dc6ce90ac},
	{"pr", "cvc", "oti", 50, 1020744, [5]uint64{1200, 1434, 662, 0, 0}, 3296, 0xef4281e2804f3fe8},
	{"pr", "cvc", "osti", 50, 777492, [5]uint64{0, 1027, 653, 0, 0}, 1680, 0xd799d786856a65db},
	{"pr", "oec", "unopt", 50, 3828008, [5]uint64{0, 0, 0, 0, 5768}, 5768, 0x314de107c0446434},
	{"pr", "oec", "osi", 50, 1896792, [5]uint64{0, 0, 0, 0, 2856}, 2856, 0x225e694fe84a2efa},
	{"pr", "oec", "oti", 50, 1906688, [5]uint64{0, 5760, 8, 0, 0}, 5768, 0x553db223da572d21},
	{"pr", "oec", "osti", 50, 944112, [5]uint64{0, 2856, 0, 0, 0}, 2856, 0x8f887b1f2e1cafcb},
}

func goldenOpt(config string) gluon.Options {
	return gluon.Options{
		StructuralInvariants: config == "osi" || config == "osti",
		TemporalInvariance:   config == "oti" || config == "osti",
	}
}

func TestGoldenCommVolumes(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	popt := partition.Options{OutDegrees: outDeg, InDegrees: inDeg}

	// Partition once per policy; the per-config runs share the parts.
	parts := map[partition.Kind][]*partition.Partition{}
	for _, kind := range []partition.Kind{partition.CVC, partition.OEC} {
		pol, err := partition.NewPolicy(kind, numNodes, 8, popt)
		if err != nil {
			t.Fatal(err)
		}
		p, err := partition.PartitionAll(numNodes, edges, pol)
		if err != nil {
			t.Fatal(err)
		}
		parts[kind] = p
	}

	for _, row := range goldenRows {
		row := row
		t.Run(row.alg+"/"+string(row.policy)+"/"+row.config, func(t *testing.T) {
			if testing.Short() && row.alg == "pr" {
				t.Skip("pr golden runs are slow; skipped under -short")
			}
			var factory dsys.ProgramFactory
			switch row.alg {
			case "bfs":
				factory = bfs.NewLigra(0, 1)
			case "pr":
				factory = pr.NewLigra(1e-6, 1)
			}
			var acc atomic.Uint64
			p := parts[row.policy]
			hub := comm.NewHub(len(p))
			defer hub.Close()
			ts := make([]comm.Transport, len(p))
			for i, e := range hub.Endpoints() {
				ts[i] = hashingTransport{Transport: e, acc: &acc}
			}
			res, err := dsys.RunWithTransports(p, ts, dsys.RunConfig{
				Hosts: 8, Policy: row.policy, Opt: goldenOpt(row.config), MaxRounds: 50,
			}, factory)
			if err != nil {
				t.Fatal(err)
			}
			var modes [5]uint64
			var msgs uint64
			for _, h := range res.Hosts {
				for i := range modes {
					modes[i] += h.Gluon.ModeCounts[i]
				}
				msgs += h.Gluon.MessagesSent
			}
			if res.Rounds != row.rounds {
				t.Errorf("rounds = %d, golden %d", res.Rounds, row.rounds)
			}
			if res.TotalCommBytes != row.bytes {
				t.Errorf("TotalCommBytes = %d, golden %d", res.TotalCommBytes, row.bytes)
			}
			if modes != row.modes {
				t.Errorf("ModeCounts = %v, golden %v", modes, row.modes)
			}
			if msgs != row.msgs {
				t.Errorf("MessagesSent = %d, golden %d", msgs, row.msgs)
			}
			if got := acc.Load(); got != row.payload {
				t.Errorf("payload hash = %#x, golden %#x (per-message bytes changed)", got, row.payload)
			}
		})
	}
}
